package heapsim

import (
	"fmt"
	"math/bits"
	"strings"
)

// FragmentationReport describes the free list's shape: how usable the free
// memory actually is. Mark-sweep collectors without compaction live and die
// by this (the paper's base collector goes to great lengths for "compaction
// avoidance"), and the incremental compactor's effect is measured with it.
type FragmentationReport struct {
	FreeBytes    int64
	Chunks       int
	LargestBytes int64
	// ChunkSizeHist counts chunks by power-of-two size class:
	// bucket i holds chunks of [2^i, 2^(i+1)) bytes.
	ChunkSizeHist [32]int
	// DarkMatterBytes is free space too fragmented for the free list.
	DarkMatterBytes int64
}

// Fragmentation computes the report from the current free list.
func (h *Heap) Fragmentation() FragmentationReport {
	r := FragmentationReport{
		FreeBytes:       h.FreeBytes(),
		DarkMatterBytes: h.Stats.DarkMatterWords * WordBytes,
	}
	for _, c := range h.FreeChunks() {
		r.Chunks++
		b := c.Bytes()
		if b > r.LargestBytes {
			r.LargestBytes = b
		}
		bucket := bits.Len64(uint64(b)) - 1
		if bucket >= 0 && bucket < len(r.ChunkSizeHist) {
			r.ChunkSizeHist[bucket]++
		}
	}
	return r
}

// FragmentationIndex returns 1 − largest/free: 0 means all free memory is
// one chunk; values near 1 mean the free memory is confetti.
func (r FragmentationReport) FragmentationIndex() float64 {
	if r.FreeBytes == 0 {
		return 0
	}
	return 1 - float64(r.LargestBytes)/float64(r.FreeBytes)
}

// String renders the report with a compact histogram.
func (r FragmentationReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "free=%dKB in %d chunks, largest=%dKB, dark=%dB, fragmentation index=%.3f\n",
		r.FreeBytes>>10, r.Chunks, r.LargestBytes>>10, r.DarkMatterBytes, r.FragmentationIndex())
	for i, n := range r.ChunkSizeHist {
		if n == 0 {
			continue
		}
		lo := int64(1) << i
		fmt.Fprintf(&b, "  [%6dB..%6dB): %d\n", lo, lo<<1, n)
	}
	return b.String()
}

// ObjectSizeHistogram counts published objects by power-of-two size class.
func (h *Heap) ObjectSizeHistogram() (hist [24]int, objects int, liveBytes int64) {
	h.ForEachObject(func(a Addr) {
		b := int64(h.SizeOf(a)) * WordBytes
		objects++
		liveBytes += b
		bucket := bits.Len64(uint64(b)) - 1
		if bucket >= 0 && bucket < len(hist) {
			hist[bucket]++
		}
	})
	return hist, objects, liveBytes
}

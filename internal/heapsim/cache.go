package heapsim

import "fmt"

// AllocCache is a thread-local allocation cache (a "TLH"): a contiguous
// region carved from the heap that one mutator bump-allocates small objects
// from. Cache refill is the collector's pacing point — each refill is where
// an increment of concurrent tracing is performed (Section 3) — and the
// cache is the batching unit for the allocation-bit publication protocol of
// Section 5.2: objects are laid down with no allocation bit, and only when
// the cache is exhausted does the mutator issue one fence and publish all of
// the cache's allocation bits.
type AllocCache struct {
	h *Heap

	base Addr // start of the current cache region
	cur  Addr // next free word
	end  Addr // first word past the region

	published Addr // objects in [base, published) have allocation bits set

	// ReturnTail, when set, receives the unused tail of a region on
	// Refill/Retire instead of the heap free list. The generational
	// extension uses it: nursery space must never leak into the old
	// generation's free list.
	ReturnTail func(Chunk)

	// Unpublished is incremented for every object allocated and not yet
	// published; tests use it to observe the protocol.
	Unpublished int
}

// NewAllocCache returns an empty cache bound to h. The first allocation
// attempt will fail, prompting the caller to Refill.
func NewAllocCache(h *Heap) *AllocCache {
	return &AllocCache{h: h}
}

// Remaining returns the words left in the cache.
func (c *AllocCache) Remaining() int { return int(c.end) - int(c.cur) }

// Bounds returns the cache's current region, for tests.
func (c *AllocCache) Bounds() (base, cur, end Addr) { return c.base, c.cur, c.end }

// TryAlloc bump-allocates an object of the given shape. It returns Nil when
// the object does not fit in the remaining cache space; the caller then
// refills (doing its increment of tracing work first) and retries.
//
// The returned object is initialized (header written, body zeroed) but not
// yet published: its allocation bit stays clear until Flush.
func (c *AllocCache) TryAlloc(words, refs int) Addr {
	checkObjectShape(words, refs)
	if int(c.cur)+words > int(c.end) {
		return Nil
	}
	a := c.cur
	c.h.writeObject(a, words, refs, 0)
	c.cur += Addr(words)
	c.Unpublished++
	c.h.Stats.BytesAllocated += int64(words) * WordBytes
	c.h.Stats.ObjectsAllocated++
	return a
}

// Flush publishes every object allocated since the previous flush: one fence
// (counted in heap stats), then the allocation bits for all of them. It
// returns the number of objects published. Mutators flush when a cache
// empties and when stopped for the stop-the-world phase.
func (c *AllocCache) Flush() int {
	if c.published == c.cur {
		return 0
	}
	c.h.Stats.AllocFences++ // the single fence for the whole batch
	n := 0
	for a := c.published; a < c.cur; {
		c.h.AllocBits.Set(int(a))
		words := c.h.SizeOf(a)
		if words <= 0 {
			panic(fmt.Sprintf("heapsim: corrupt header at %d during flush", a))
		}
		a += Addr(words)
		n++
	}
	c.published = c.cur
	c.Unpublished = 0
	return n
}

// Refill flushes any unpublished objects, returns the unused tail of the old
// region to the heap, and installs the new region.
func (c *AllocCache) Refill(chunk Chunk) {
	c.Flush()
	c.releaseTail()
	c.base, c.cur, c.end = chunk.Addr, chunk.Addr, chunk.End()
	c.published = chunk.Addr
}

// Retire flushes and releases the cache region entirely. The collector
// retires all caches when stopping the world so that sweep sees a heap where
// every word is either a published object or free-list space.
func (c *AllocCache) Retire() {
	c.Flush()
	c.releaseTail()
	c.base, c.cur, c.end, c.published = Nil, Nil, Nil, Nil
}

func (c *AllocCache) releaseTail() {
	if c.cur < c.end {
		tail := Chunk{Addr: c.cur, Words: int(c.end - c.cur)}
		if c.ReturnTail != nil {
			c.ReturnTail(tail)
		} else {
			c.h.ReturnChunk(tail)
		}
	}
	c.end = c.cur
}

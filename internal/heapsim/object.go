// Package heapsim implements the simulated heap the collectors manage: a
// word-addressed arena with an object model, a free-list allocator,
// thread-local allocation caches, and the allocation bit vector with the
// batched publication protocol of Section 5.2 of the paper.
//
// The substitution this package embodies is recorded in DESIGN.md: the IBM
// JVM's heap of Java objects becomes an arena of 8-byte words holding
// objects with explicit headers and reference slots. Tracing, sweeping and
// card marking operate on these real data structures; only elapsed time is
// accounted virtually by internal/machine.
package heapsim

import "fmt"

// WordBytes is the size of a heap word. Both bit vectors hold one bit per
// word, matching the paper's "one bit per 8 bytes".
const WordBytes = 8

// Addr is a heap address: an index of a word in the arena. The zero Addr is
// the nil reference; the arena's word 0 is a reserved sentinel so that no
// object ever has address 0.
type Addr uint32

// Nil is the null reference.
const Nil Addr = 0

// Object header layout (one word at the object's address):
//
//	bits  0..23  total size in words, including the header
//	bits 24..47  number of reference slots (slots 1..refs hold Addrs)
//	bits 48..63  flags
//
// Reference slots come first so tracers scan a prefix; remaining slots are
// opaque payload words the workloads use for application data.
const (
	sizeShift  = 0
	sizeBits   = 24
	refsShift  = 24
	refsBits   = 24
	flagsShift = 48

	sizeMask = 1<<sizeBits - 1
	refsMask = 1<<refsBits - 1

	// MaxObjectWords is the largest encodable object size.
	MaxObjectWords = sizeMask
)

// Object flag bits.
const (
	// FlagLarge marks objects allocated directly from the heap rather
	// than from an allocation cache.
	FlagLarge uint16 = 1 << iota
)

func packHeader(words, refs int, flags uint16) uint64 {
	return uint64(words)<<sizeShift | uint64(refs)<<refsShift | uint64(flags)<<flagsShift
}

// HeaderWords is the per-object header overhead in words.
const HeaderWords = 1

// ObjectWords returns the total object size in words for an object with the
// given number of reference and payload slots.
func ObjectWords(refs, payload int) int { return HeaderWords + refs + payload }

func checkObjectShape(words, refs int) {
	if words < HeaderWords || words > MaxObjectWords {
		panic(fmt.Sprintf("heapsim: bad object size %d words", words))
	}
	if refs < 0 || refs > words-HeaderWords {
		panic(fmt.Sprintf("heapsim: %d ref slots do not fit in %d words", refs, words))
	}
}

package heapsim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newTestHeap(t *testing.T, bytes int64) *Heap {
	t.Helper()
	return NewHeap(bytes)
}

func TestNewHeapGeometry(t *testing.T) {
	h := newTestHeap(t, 1<<20)
	if h.SizeWords() != 1<<17 {
		t.Fatalf("SizeWords = %d, want %d", h.SizeWords(), 1<<17)
	}
	if h.UsableBytes() != (1<<20)-WordBytes {
		t.Fatalf("UsableBytes = %d", h.UsableBytes())
	}
	if h.FreeBytes() != h.UsableBytes() {
		t.Fatalf("fresh heap FreeBytes = %d, want %d", h.FreeBytes(), h.UsableBytes())
	}
	if h.OccupiedBytes() != 0 {
		t.Fatalf("fresh heap OccupiedBytes = %d, want 0", h.OccupiedBytes())
	}
}

func TestAllocLargeBasics(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	a := h.AllocLarge(10, 3)
	if a == Nil {
		t.Fatal("AllocLarge failed on fresh heap")
	}
	words, refs := h.Header(a)
	if words != 10 || refs != 3 {
		t.Fatalf("Header = (%d,%d), want (10,3)", words, refs)
	}
	if h.Flags(a)&FlagLarge == 0 {
		t.Fatal("large object missing FlagLarge")
	}
	if !h.AllocBits.Test(int(a)) {
		t.Fatal("large object allocation bit not published immediately")
	}
	for i := 0; i < 3; i++ {
		if h.RefAt(a, i) != Nil {
			t.Fatalf("ref slot %d not zeroed", i)
		}
	}
	// Payload slots: words=10, header=1, refs=3 => 6 payload words.
	h.SetPayload(a, 5, 0xdead)
	if h.PayloadAt(a, 5) != 0xdead {
		t.Fatal("payload round trip failed")
	}
	if h.FreeBytes() != h.UsableBytes()-10*WordBytes {
		t.Fatalf("FreeBytes = %d after 10-word alloc", h.FreeBytes())
	}
}

func TestAllocLargeExhaustion(t *testing.T) {
	h := newTestHeap(t, 4096) // 512 words, 511 usable
	var got []Addr
	for {
		a := h.AllocLarge(64, 0)
		if a == Nil {
			break
		}
		got = append(got, a)
	}
	if len(got) != 7 { // 7*64 = 448; remaining 63 words cannot hold 64
		t.Fatalf("allocated %d objects, want 7", len(got))
	}
	if h.AllocLarge(64, 0) != Nil {
		t.Fatal("allocation succeeded after exhaustion")
	}
	// A smaller allocation still fits in the tail.
	if h.AllocLarge(32, 1) == Nil {
		t.Fatal("small allocation failed despite free tail")
	}
}

func TestAllocLargeSwallowsFragment(t *testing.T) {
	// When the remainder of a chunk is below MinChunkWords the object
	// absorbs it rather than leaking it.
	h := newTestHeap(t, 512) // 64 words, 63 usable
	a := h.AllocLarge(61, 0) // leaves 2 < MinChunkWords
	if a == Nil {
		t.Fatal("alloc failed")
	}
	if got := h.SizeOf(a); got != 61+2 {
		t.Fatalf("object size = %d, want 63 (fragment absorbed)", got)
	}
	if h.FreeBytes() != 0 {
		t.Fatalf("FreeBytes = %d, want 0", h.FreeBytes())
	}
}

func TestSetRefRawAndBounds(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	a := h.AllocLarge(5, 2)
	b := h.AllocLarge(3, 0)
	h.SetRefRaw(a, 0, b)
	h.SetRefRaw(a, 1, Nil)
	if h.RefAt(a, 0) != b || h.RefAt(a, 1) != Nil {
		t.Fatal("ref slots wrong after SetRefRaw")
	}
	mustPanic(t, func() { h.RefAt(a, 2) })
	mustPanic(t, func() { h.SetRefRaw(a, -1, b) })
	mustPanic(t, func() { h.SetRefRaw(b, 0, a) }) // b has no ref slots
	mustPanic(t, func() { h.PayloadAt(b, 2) })    // b has 2 payload words: 0,1 ok
	if h.PayloadAt(b, 1) != 0 {
		t.Fatal("payload not zeroed")
	}
}

func TestCarveCacheAndReturnChunk(t *testing.T) {
	h := newTestHeap(t, 1<<16) // 8192 words
	c1, ok := h.CarveCache(1024)
	if !ok || c1.Words != 1024 {
		t.Fatalf("CarveCache = %+v, %v", c1, ok)
	}
	free1 := h.FreeBytes()
	if free1 != h.UsableBytes()-1024*WordBytes {
		t.Fatalf("FreeBytes = %d after carve", free1)
	}
	// Returning it restores the bytes.
	h.ReturnChunk(c1)
	if h.FreeBytes() != h.UsableBytes() {
		t.Fatalf("FreeBytes = %d after return, want all", h.FreeBytes())
	}
}

func TestCarveCacheGivesLargestWhenShort(t *testing.T) {
	h := newTestHeap(t, 2048) // 256 words, 255 usable
	c, ok := h.CarveCache(1 << 20)
	if !ok {
		t.Fatal("CarveCache failed with free space available")
	}
	if c.Words != 255 {
		t.Fatalf("short carve got %d words, want 255", c.Words)
	}
	if _, ok := h.CarveCache(8); ok {
		t.Fatal("CarveCache succeeded on empty free list")
	}
}

func TestInstallFreeList(t *testing.T) {
	h := newTestHeap(t, 1<<14)
	chunks := []Chunk{{Addr: 1, Words: 100}, {Addr: 300, Words: 50}}
	h.InstallFreeList(chunks, 7)
	if h.FreeBytes() != 150*WordBytes {
		t.Fatalf("FreeBytes = %d, want %d", h.FreeBytes(), 150*WordBytes)
	}
	if h.Stats.DarkMatterWords != 7 {
		t.Fatalf("DarkMatterWords = %d, want 7", h.Stats.DarkMatterWords)
	}
	mustPanic(t, func() {
		h.InstallFreeList([]Chunk{{Addr: 1, Words: 100}, {Addr: 50, Words: 100}}, 0)
	})
	mustPanic(t, func() {
		h.InstallFreeList([]Chunk{{Addr: 1, Words: 2}}, 0)
	})
}

func TestObjectsInWalk(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	var want []Addr
	for i := 0; i < 10; i++ {
		want = append(want, h.AllocLarge(8, 1))
	}
	var got []Addr
	h.ForEachObject(func(a Addr) { got = append(got, a) })
	if len(got) != len(want) {
		t.Fatalf("walked %d objects, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("object %d at %d, want %d", i, got[i], want[i])
		}
	}
	// Restricted window.
	var windowed []Addr
	h.ObjectsIn(want[3], want[6], func(a Addr) { windowed = append(windowed, a) })
	if len(windowed) != 3 {
		t.Fatalf("window walk found %d, want 3", len(windowed))
	}
}

func TestAllocCacheBumpAndPublish(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	cache := NewAllocCache(h)
	if a := cache.TryAlloc(4, 1); a != Nil {
		t.Fatal("empty cache allocated")
	}
	chunk, ok := h.CarveCache(64)
	if !ok {
		t.Fatal("carve failed")
	}
	cache.Refill(chunk)

	a := cache.TryAlloc(4, 1)
	b := cache.TryAlloc(6, 2)
	if a == Nil || b == Nil {
		t.Fatal("cache alloc failed")
	}
	if b != a+4 {
		t.Fatalf("bump allocation not contiguous: %d then %d", a, b)
	}
	// Not yet published.
	if h.AllocBits.Test(int(a)) || h.AllocBits.Test(int(b)) {
		t.Fatal("allocation bits set before flush")
	}
	if cache.Unpublished != 2 {
		t.Fatalf("Unpublished = %d, want 2", cache.Unpublished)
	}
	fences := h.Stats.AllocFences
	if n := cache.Flush(); n != 2 {
		t.Fatalf("Flush published %d, want 2", n)
	}
	if h.Stats.AllocFences != fences+1 {
		t.Fatalf("Flush issued %d fences, want exactly 1", h.Stats.AllocFences-fences)
	}
	if !h.AllocBits.Test(int(a)) || !h.AllocBits.Test(int(b)) {
		t.Fatal("allocation bits missing after flush")
	}
	// Second flush with nothing new is free.
	if n := cache.Flush(); n != 0 {
		t.Fatalf("empty Flush published %d", n)
	}
	if h.Stats.AllocFences != fences+1 {
		t.Fatal("empty Flush issued a fence")
	}
}

func TestAllocCacheRetireReturnsTail(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	cache := NewAllocCache(h)
	chunk, _ := h.CarveCache(128)
	cache.Refill(chunk)
	cache.TryAlloc(8, 0)
	freeBefore := h.FreeBytes()
	cache.Retire()
	wantBack := int64(120 * WordBytes)
	if h.FreeBytes() != freeBefore+wantBack {
		t.Fatalf("Retire returned %d bytes, want %d", h.FreeBytes()-freeBefore, wantBack)
	}
	if a := cache.TryAlloc(2, 0); a != Nil {
		t.Fatal("retired cache allocated")
	}
}

func TestAllocCacheRefillFlushesOldRegion(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	cache := NewAllocCache(h)
	c1, _ := h.CarveCache(32)
	cache.Refill(c1)
	a := cache.TryAlloc(8, 0)
	c2, _ := h.CarveCache(32)
	cache.Refill(c2)
	if !h.AllocBits.Test(int(a)) {
		t.Fatal("refill did not publish previous region's objects")
	}
}

func TestAllocCacheExactFit(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	cache := NewAllocCache(h)
	chunk, _ := h.CarveCache(16)
	cache.Refill(chunk)
	if a := cache.TryAlloc(16, 0); a == Nil {
		t.Fatal("exact-fit allocation failed")
	}
	if cache.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", cache.Remaining())
	}
	if a := cache.TryAlloc(1, 0); a != Nil {
		t.Fatal("allocation from full cache succeeded")
	}
}

// Property: any interleaving of cache allocations and flushes keeps the
// walkable object sequence consistent with what was allocated, and byte
// accounting exact.
func TestQuickCacheWalkConsistency(t *testing.T) {
	f := func(sizes []uint8, flushMask uint16) bool {
		h := NewHeap(1 << 18)
		cache := NewAllocCache(h)
		chunk, _ := h.CarveCache(1 << 12)
		cache.Refill(chunk)
		var allocated []Addr
		for i, s := range sizes {
			words := int(s)%13 + 1
			refs := 0
			if words > 2 {
				refs = words / 3
			}
			a := cache.TryAlloc(words, refs)
			if a == Nil {
				break
			}
			allocated = append(allocated, a)
			if flushMask&(1<<(uint(i)%16)) != 0 {
				cache.Flush()
			}
		}
		cache.Flush()
		var walked []Addr
		h.ForEachObject(func(a Addr) { walked = append(walked, a) })
		if len(walked) != len(allocated) {
			return false
		}
		for i := range walked {
			if walked[i] != allocated[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: free byte accounting is conserved across random carve/return
// cycles.
func TestQuickFreeByteConservation(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		h := NewHeap(1 << 18)
		r := rand.New(rand.NewSource(seed))
		total := h.FreeBytes()
		var held []Chunk
		for i := 0; i < int(ops); i++ {
			if r.Intn(2) == 0 || len(held) == 0 {
				c, ok := h.CarveCache(r.Intn(512) + MinChunkWords)
				if ok {
					held = append(held, c)
				}
			} else {
				k := r.Intn(len(held))
				h.ReturnChunk(held[k])
				held = append(held[:k], held[k+1:]...)
			}
		}
		var out int64
		for _, c := range held {
			out += c.Bytes()
		}
		return h.FreeBytes()+out == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPanicsOnBadAddr(t *testing.T) {
	h := newTestHeap(t, 4096)
	mustPanic(t, func() { h.Header(Nil) })
	mustPanic(t, func() { h.Header(Addr(h.SizeWords())) })
	mustPanic(t, func() { h.AllocLarge(0, 0) })
	mustPanic(t, func() { h.AllocLarge(4, 5) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestAllocAvoiding(t *testing.T) {
	h := newTestHeap(t, 1<<16) // 8192 words
	// Carve the free list into two chunks: [1,1000) stays free after we
	// return it, [1000,8192) remains.
	c1, _ := h.CarveCache(999)
	c2, _ := h.CarveCache(3000)
	h.ReturnChunk(c1)
	h.ReturnChunk(c2)
	// Avoid the low region: the allocation must come from >= 1000.
	a := h.AllocAvoiding(100, 0, 1000)
	if a == Nil {
		t.Fatal("AllocAvoiding failed")
	}
	if a < 1000 {
		t.Fatalf("allocated at %d inside the avoided region", a)
	}
	// Avoiding everything fails.
	if got := h.AllocAvoiding(100, 0, Addr(h.SizeWords())); got != Nil {
		t.Fatalf("AllocAvoiding returned %d despite covering the whole heap", got)
	}
	// Free-byte accounting is maintained.
	free := h.FreeBytes()
	b := h.AllocAvoiding(50, 0, 10)
	if b == Nil {
		t.Fatal("second AllocAvoiding failed")
	}
	if h.FreeBytes() != free-50*WordBytes {
		t.Fatalf("free bytes %d, want %d", h.FreeBytes(), free-50*WordBytes)
	}
	mustPanic(t, func() { h.AllocAvoiding(0, 0, 10) })
}

func TestMoveObject(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	src := h.AllocLarge(8, 2)
	other := h.AllocLarge(4, 0)
	h.SetRefRaw(src, 0, other)
	h.SetPayload(src, 3, 0xfeed)
	dst := h.AllocAvoiding(8, 0, 1)
	h.MoveObject(src, dst)
	if !h.AllocBits.Test(int(dst)) {
		t.Fatal("destination not published")
	}
	w, r := h.Header(dst)
	if w != 8 || r != 2 {
		t.Fatalf("moved header = (%d,%d)", w, r)
	}
	if h.RefAt(dst, 0) != other {
		t.Fatal("moved ref slot wrong")
	}
	if h.PayloadAt(dst, 3) != 0xfeed {
		t.Fatal("moved payload wrong")
	}
	// Source left intact for the caller to free.
	if h.PayloadAt(src, 3) != 0xfeed {
		t.Fatal("source clobbered before fixup")
	}
}

func TestReserveTop(t *testing.T) {
	h := newTestHeap(t, 1<<16) // 8192 words
	top := h.ReserveTop(1024)
	if top.Addr != heapsim_reserveWant(8192, 1024) {
		t.Fatalf("reserved at %d", top.Addr)
	}
	if top.Words != 1024 {
		t.Fatalf("reserved %d words", top.Words)
	}
	if h.FreeBytes() != int64(8192-1-1024)*WordBytes {
		t.Fatalf("FreeBytes = %d after reservation", h.FreeBytes())
	}
	// Allocations never land in the reserved region.
	for {
		a := h.AllocLarge(64, 0)
		if a == Nil {
			break
		}
		if a >= top.Addr {
			t.Fatalf("allocation at %d intrudes into the reserved top", a)
		}
	}
	// Reservation requires a fresh heap.
	mustPanic(t, func() { h.ReserveTop(16) })
	h2 := newTestHeap(t, 1<<12)
	mustPanic(t, func() { h2.ReserveTop(0) })
	mustPanic(t, func() { h2.ReserveTop(1 << 12) })
}

// heapsim_reserveWant keeps the expectation readable.
func heapsim_reserveWant(words, reserve int) Addr { return Addr(words - reserve) }

func TestCacheReturnTailSink(t *testing.T) {
	h := newTestHeap(t, 1<<14)
	cache := NewAllocCache(h)
	var sunk []Chunk
	cache.ReturnTail = func(c Chunk) { sunk = append(sunk, c) }
	chunk, _ := h.CarveCache(64)
	free := h.FreeBytes()
	cache.Refill(chunk)
	cache.TryAlloc(8, 0)
	cache.Retire()
	if len(sunk) != 1 || sunk[0].Words != 56 {
		t.Fatalf("sink received %v, want one 56-word tail", sunk)
	}
	if h.FreeBytes() != free {
		t.Fatal("tail leaked into the heap free list despite the sink")
	}
}

func TestFragmentationReport(t *testing.T) {
	h := newTestHeap(t, 1<<16) // 8192 words
	// Carve out holes: keep objects so the free list splits.
	var keep []Addr
	for i := 0; i < 8; i++ {
		a := h.AllocLarge(512, 0) // 4KB objects
		keep = append(keep, a)
		h.AllocLarge(512, 0) // will become a hole
	}
	// Free every second object by rebuilding the free list around them.
	// Simpler: report on the current state first.
	r := h.Fragmentation()
	if r.FreeBytes != h.FreeBytes() {
		t.Fatalf("FreeBytes mismatch")
	}
	if r.Chunks == 0 || r.LargestBytes == 0 {
		t.Fatalf("report empty: %+v", r)
	}
	if r.FragmentationIndex() < 0 || r.FragmentationIndex() > 1 {
		t.Fatalf("index out of range: %v", r.FragmentationIndex())
	}
	// One single free chunk => index 0.
	h2 := newTestHeap(t, 1<<14)
	if got := h2.Fragmentation().FragmentationIndex(); got != 0 {
		t.Fatalf("fresh heap index = %v, want 0", got)
	}
	// Histogram buckets sum to chunk count.
	sum := 0
	for _, n := range r.ChunkSizeHist {
		sum += n
	}
	if sum != r.Chunks {
		t.Fatalf("histogram sums to %d, chunks %d", sum, r.Chunks)
	}
	if !strings.Contains(r.String(), "fragmentation index") {
		t.Fatal("String misses index")
	}
	_ = keep
}

func TestObjectSizeHistogram(t *testing.T) {
	h := newTestHeap(t, 1<<16)
	h.AllocLarge(4, 0)  // 32B -> bucket 5
	h.AllocLarge(4, 0)  // 32B
	h.AllocLarge(64, 0) // 512B -> bucket 9
	hist, objects, live := h.ObjectSizeHistogram()
	if objects != 3 {
		t.Fatalf("objects = %d", objects)
	}
	if live != (4+4+64)*WordBytes {
		t.Fatalf("liveBytes = %d", live)
	}
	if hist[5] != 2 || hist[9] != 1 {
		t.Fatalf("histogram wrong: %v", hist)
	}
}

func TestExtractFreeRange(t *testing.T) {
	h := newTestHeap(t, 1<<14) // 2048 words, free [1,2048)
	// Split the free list: [1,100) obj, free [100,200), obj [200,300), rest free.
	a := h.AllocLarge(99, 0)  // [1,100)
	b, _ := h.CarveCache(100) // [100,200)
	c := h.AllocLarge(100, 0) // [200,300)
	h.ReturnChunk(b)          // free list: [100,200), [300,2048)
	_ = a
	_ = c
	before := h.FreeBytes()

	// Extract [150, 400): clips [100,200) to [100,150) and [300,2048) to [400,2048).
	removed := h.ExtractFreeRange(150, 400)
	wantRemoved := int64((200 - 150) + (400 - 300))
	if removed != wantRemoved {
		t.Fatalf("removed %d words, want %d", removed, wantRemoved)
	}
	if h.FreeBytes() != before-wantRemoved*WordBytes {
		t.Fatalf("free accounting off: %d", h.FreeBytes())
	}
	chunks := h.FreeChunks()
	if len(chunks) != 2 || chunks[0] != (Chunk{Addr: 100, Words: 50}) || chunks[1] != (Chunk{Addr: 400, Words: 1648}) {
		t.Fatalf("chunks after extract: %+v", chunks)
	}
	// Extracting an empty region is a no-op.
	if got := h.ExtractFreeRange(150, 400); got != 0 {
		t.Fatalf("second extract removed %d", got)
	}
}

package heapsim

import (
	"fmt"

	"mcgc/internal/bitvec"
)

// MinChunkWords is the smallest free range the free list tracks. Smaller
// fragments are "dark matter": unusable until a neighbouring object dies and
// sweep coalesces them into a larger range.
const MinChunkWords = 4

// Chunk describes a contiguous free range of the heap.
type Chunk struct {
	Addr  Addr
	Words int
}

// Bytes returns the chunk size in bytes.
func (c Chunk) Bytes() int64 { return int64(c.Words) * WordBytes }

// End returns the first word past the chunk.
func (c Chunk) End() Addr { return c.Addr + Addr(c.Words) }

// Stats aggregates heap-level counters the experiments report.
type Stats struct {
	BytesAllocated   int64 // cumulative, all time
	ObjectsAllocated int64
	LargeAllocated   int64 // count of large-object allocations
	CacheRefills     int64 // count of allocation-cache refills
	AllocFences      int64 // fences issued by the Section 5.2 batching protocol
	DarkMatterWords  int64 // free words too small for the free list, current
}

// Heap is the simulated heap: the arena, the allocation and mark bit
// vectors, and the free-list allocator rebuilt by each sweep.
//
// Heap methods are not internally synchronized. Under the machine simulator
// all accesses are interleaved at step granularity on one OS thread; tests
// that exercise real parallelism synchronize externally or go through the
// atomic bit-vector operations.
type Heap struct {
	arena []uint64

	// AllocBits has one bit per word, set on the first word (header) of
	// every published object. MarkBits is the collector's mark vector.
	AllocBits *bitvec.Vector
	MarkBits  *bitvec.Vector

	words     int
	freeWords int64

	// freeChunks is kept in address order; allocCursor avoids rescanning
	// chunks already consumed since the last sweep.
	freeChunks  []Chunk
	allocCursor int

	Stats Stats
}

// NewHeap creates a heap of the given size. Sizes are rounded down to whole
// words; the first word is a reserved sentinel so no object has address 0.
func NewHeap(sizeBytes int64) *Heap {
	words := int(sizeBytes / WordBytes)
	if words < MinChunkWords+1 {
		panic(fmt.Sprintf("heapsim: heap of %d bytes is too small", sizeBytes))
	}
	h := &Heap{
		arena:     make([]uint64, words),
		AllocBits: bitvec.New(words),
		MarkBits:  bitvec.New(words),
		words:     words,
	}
	h.freeChunks = []Chunk{{Addr: 1, Words: words - 1}}
	h.freeWords = int64(words - 1)
	return h
}

// SizeWords returns the arena length in words (including the sentinel).
func (h *Heap) SizeWords() int { return h.words }

// SizeBytes returns the heap size in bytes.
func (h *Heap) SizeBytes() int64 { return int64(h.words) * WordBytes }

// UsableBytes returns the allocatable heap size (excluding the sentinel).
func (h *Heap) UsableBytes() int64 { return int64(h.words-1) * WordBytes }

// FreeBytes returns the bytes currently on the free list.
func (h *Heap) FreeBytes() int64 { return h.freeWords * WordBytes }

// OccupiedBytes returns usable size minus free-list bytes. It includes dark
// matter and floating garbage, mirroring how the paper measures occupancy.
func (h *Heap) OccupiedBytes() int64 { return h.UsableBytes() - h.FreeBytes() }

func (h *Heap) checkAddr(a Addr) {
	if a == Nil || int(a) >= h.words {
		panic(fmt.Sprintf("heapsim: address %d out of range (heap %d words)", a, h.words))
	}
}

// Header returns the object's total size in words and its reference slot
// count.
func (h *Heap) Header(a Addr) (words, refs int) {
	h.checkAddr(a)
	hd := h.arena[a]
	return int(hd >> sizeShift & sizeMask), int(hd >> refsShift & refsMask)
}

// SizeOf returns the object's total size in words.
func (h *Heap) SizeOf(a Addr) int {
	h.checkAddr(a)
	return int(h.arena[a] >> sizeShift & sizeMask)
}

// RefCount returns the object's number of reference slots.
func (h *Heap) RefCount(a Addr) int {
	h.checkAddr(a)
	return int(h.arena[a] >> refsShift & refsMask)
}

// Flags returns the object's flag bits.
func (h *Heap) Flags(a Addr) uint16 {
	h.checkAddr(a)
	return uint16(h.arena[a] >> flagsShift)
}

// RefAt returns reference slot i of the object at a.
func (h *Heap) RefAt(a Addr, i int) Addr {
	h.checkAddr(a)
	if i < 0 || i >= h.RefCount(a) {
		panic(fmt.Sprintf("heapsim: ref slot %d out of range for object %d", i, a))
	}
	return Addr(h.arena[int(a)+HeaderWords+i])
}

// SetRefRaw stores v into reference slot i of the object at a with no write
// barrier. Only the mutator runtime (which performs the barrier) and the
// collector (fixing up after compaction) may call it.
func (h *Heap) SetRefRaw(a Addr, i int, v Addr) {
	h.checkAddr(a)
	if i < 0 || i >= h.RefCount(a) {
		panic(fmt.Sprintf("heapsim: ref slot %d out of range for object %d", i, a))
	}
	if v != Nil {
		h.checkAddr(v)
	}
	h.arena[int(a)+HeaderWords+i] = uint64(v)
}

// PayloadAt returns payload word i (counted after the reference slots).
func (h *Heap) PayloadAt(a Addr, i int) uint64 {
	h.checkAddr(a)
	words, refs := h.Header(a)
	if i < 0 || HeaderWords+refs+i >= words {
		panic(fmt.Sprintf("heapsim: payload slot %d out of range for object %d", i, a))
	}
	return h.arena[int(a)+HeaderWords+refs+i]
}

// SetPayload stores v into payload word i. Payload writes take no write
// barrier: the mostly-concurrent barrier only tracks reference stores.
func (h *Heap) SetPayload(a Addr, i int, v uint64) {
	h.checkAddr(a)
	words, refs := h.Header(a)
	if i < 0 || HeaderWords+refs+i >= words {
		panic(fmt.Sprintf("heapsim: payload slot %d out of range for object %d", i, a))
	}
	h.arena[int(a)+HeaderWords+refs+i] = v
}

// writeObject lays down a header and zeroes the body. The allocation bit is
// NOT set here: publication is the caller's job (immediately for large
// objects, batched per cache for small ones — Section 5.2).
func (h *Heap) writeObject(a Addr, words, refs int, flags uint16) {
	checkObjectShape(words, refs)
	h.arena[a] = packHeader(words, refs, flags)
	body := h.arena[int(a)+1 : int(a)+words]
	clear(body)
}

// CarveCache removes a chunk of at least want words from the free list for
// use as an allocation cache. It returns the largest available chunk if none
// reaches want, and ok=false only when the free list is empty.
func (h *Heap) CarveCache(want int) (Chunk, bool) {
	for i := h.allocCursor; i < len(h.freeChunks); i++ {
		c := h.freeChunks[i]
		if c.Words >= want {
			taken := Chunk{Addr: c.Addr, Words: want}
			rest := Chunk{Addr: c.Addr + Addr(want), Words: c.Words - want}
			if rest.Words >= MinChunkWords {
				h.freeChunks[i] = rest
			} else {
				// Give the fragment to the cache rather than losing it.
				taken.Words += rest.Words
				h.removeChunk(i)
			}
			h.freeWords -= int64(taken.Words)
			h.Stats.CacheRefills++
			return taken, true
		}
	}
	// No chunk big enough: hand out the largest remaining one.
	best, bestIdx := -1, -1
	for i := h.allocCursor; i < len(h.freeChunks); i++ {
		if h.freeChunks[i].Words > best {
			best, bestIdx = h.freeChunks[i].Words, i
		}
	}
	if bestIdx < 0 {
		return Chunk{}, false
	}
	taken := h.freeChunks[bestIdx]
	h.removeChunk(bestIdx)
	h.freeWords -= int64(taken.Words)
	h.Stats.CacheRefills++
	return taken, true
}

// AllocLarge allocates a large object directly from the free list (first
// fit), publishing its allocation bit immediately. It returns Nil when no
// chunk can satisfy the request — an allocation failure that triggers GC.
func (h *Heap) AllocLarge(words, refs int) Addr {
	checkObjectShape(words, refs)
	for i := h.allocCursor; i < len(h.freeChunks); i++ {
		c := h.freeChunks[i]
		if c.Words < words {
			continue
		}
		rest := Chunk{Addr: c.Addr + Addr(words), Words: c.Words - words}
		if rest.Words >= MinChunkWords {
			h.freeChunks[i] = rest
		} else {
			// Absorb the sub-minimum fragment into the object so sweep
			// never sees an unaccounted gap.
			words += rest.Words
			h.removeChunk(i)
		}
		h.freeWords -= int64(words)
		h.writeObject(c.Addr, words, refs, FlagLarge)
		h.AllocBits.Set(int(c.Addr))
		h.Stats.BytesAllocated += int64(words) * WordBytes
		h.Stats.ObjectsAllocated++
		h.Stats.LargeAllocated++
		return c.Addr
	}
	return Nil
}

func (h *Heap) removeChunk(i int) {
	h.freeChunks = append(h.freeChunks[:i], h.freeChunks[i+1:]...)
	if h.allocCursor > i {
		h.allocCursor--
	}
}

// ReserveTop permanently removes the top `words` of a fresh heap from the
// free list and returns the reserved region. The generational extension
// uses it to carve out the nursery. It must be called before any
// allocation: the free list must still be the single full-heap chunk.
func (h *Heap) ReserveTop(words int) Chunk {
	if len(h.freeChunks) != 1 || h.freeChunks[0].Addr != 1 || h.freeChunks[0].Words != h.words-1 {
		panic("heapsim: ReserveTop requires a fresh heap")
	}
	if words <= 0 || words >= h.words-1-MinChunkWords {
		panic(fmt.Sprintf("heapsim: bad reservation of %d words from a %d-word heap", words, h.words))
	}
	top := Chunk{Addr: Addr(h.words - words), Words: words}
	h.freeChunks[0].Words -= words
	h.freeWords -= int64(words)
	return top
}

// AllocAvoiding reserves a words-sized region from a free chunk lying
// entirely outside [avoidFrom, avoidTo) — the incremental compactor's
// evacuation allocator. The region's contents are NOT initialized (the
// caller copies an object into it) and no allocation bit is set (MoveObject
// does that). Returns Nil when no suitable chunk exists.
func (h *Heap) AllocAvoiding(words int, avoidFrom, avoidTo Addr) Addr {
	if words <= 0 {
		panic(fmt.Sprintf("heapsim: bad evacuation size %d", words))
	}
	for i := h.allocCursor; i < len(h.freeChunks); i++ {
		c := h.freeChunks[i]
		if c.Words < words {
			continue
		}
		if c.Addr < avoidTo && c.End() > avoidFrom {
			continue // overlaps the area being evacuated
		}
		rest := Chunk{Addr: c.Addr + Addr(words), Words: c.Words - words}
		taken := words
		if rest.Words >= MinChunkWords {
			h.freeChunks[i] = rest
		} else {
			taken += rest.Words
			h.Stats.DarkMatterWords += int64(rest.Words)
			h.removeChunk(i)
		}
		h.freeWords -= int64(taken)
		return c.Addr
	}
	return Nil
}

// MoveObject copies the object at src (header and body) to dst and
// publishes dst's allocation bit. The source is left intact; the caller
// clears its bits and frees its space after fixup.
func (h *Heap) MoveObject(src, dst Addr) {
	h.checkAddr(src)
	h.checkAddr(dst)
	words := h.SizeOf(src)
	if words <= 0 {
		panic(fmt.Sprintf("heapsim: moving object at %d with corrupt header", src))
	}
	copy(h.arena[dst:int(dst)+words], h.arena[src:int(src)+words])
	h.AllocBits.Set(int(dst))
}

// ReturnChunk puts an unused region (for example the tail of a retired
// allocation cache) back on the free list, keeping address order.
func (h *Heap) ReturnChunk(c Chunk) {
	if c.Words == 0 {
		return
	}
	if c.Words < MinChunkWords {
		h.Stats.DarkMatterWords += int64(c.Words)
		return
	}
	// Binary search for the insertion point.
	lo, hi := 0, len(h.freeChunks)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.freeChunks[mid].Addr < c.Addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.freeChunks = append(h.freeChunks, Chunk{})
	copy(h.freeChunks[lo+1:], h.freeChunks[lo:])
	h.freeChunks[lo] = c
	h.freeWords += int64(c.Words)
	if h.allocCursor > lo {
		h.allocCursor = lo
	}
}

// InstallFreeList replaces the free list with the chunks produced by a
// sweep. The chunks must be address-ordered and non-overlapping; dark-matter
// accounting is reset because sweep re-derives it.
func (h *Heap) InstallFreeList(chunks []Chunk, darkWords int64) {
	var free int64
	for i, c := range chunks {
		if c.Words < MinChunkWords {
			panic(fmt.Sprintf("heapsim: sweep chunk %d words below minimum", c.Words))
		}
		if i > 0 && c.Addr < chunks[i-1].End() {
			panic("heapsim: sweep chunks overlap or out of order")
		}
		free += int64(c.Words)
	}
	h.freeChunks = chunks
	h.allocCursor = 0
	h.freeWords = free
	h.Stats.DarkMatterWords = darkWords
}

// FreeChunks returns the current free list (shared slice; callers must not
// modify it).
func (h *Heap) FreeChunks() []Chunk { return h.freeChunks[h.allocCursor:] }

// LargestFreeChunk returns the size in words of the largest free chunk, or
// zero when the free list is empty.
func (h *Heap) LargestFreeChunk() int {
	best := 0
	for i := h.allocCursor; i < len(h.freeChunks); i++ {
		if h.freeChunks[i].Words > best {
			best = h.freeChunks[i].Words
		}
	}
	return best
}

// ObjectsIn calls fn for every published object whose header lies in
// [from, to), in address order. Card cleaning and sweep verification use it.
func (h *Heap) ObjectsIn(from, to Addr, fn func(Addr)) {
	if from == Nil {
		from = 1
	}
	for i := h.AllocBits.NextSet(int(from)); i >= 0 && i < int(to); i = h.AllocBits.NextSet(i + 1) {
		fn(Addr(i))
	}
}

// ForEachObject calls fn for every published object in the heap.
func (h *Heap) ForEachObject(fn func(Addr)) {
	h.ObjectsIn(1, Addr(h.words), fn)
}

// ExtractFreeRange removes the parts of free chunks lying inside [from, to)
// from the free list, splitting chunks that straddle the boundaries, and
// returns the words removed. The incremental compactor uses it before
// rebuilding a vacated area's free runs as maximal coalesced chunks.
func (h *Heap) ExtractFreeRange(from, to Addr) int64 {
	var removed int64
	var kept []Chunk
	for _, c := range h.freeChunks {
		if c.End() <= from || c.Addr >= to {
			kept = append(kept, c)
			continue
		}
		// Overlap: keep the outside parts (if any survive the minimum).
		if c.Addr < from {
			left := Chunk{Addr: c.Addr, Words: int(from - c.Addr)}
			if left.Words >= MinChunkWords {
				kept = append(kept, left)
			} else {
				h.Stats.DarkMatterWords += int64(left.Words)
				removed += int64(left.Words) // accounted out of the free list
			}
		}
		if c.End() > to {
			right := Chunk{Addr: to, Words: int(c.End() - to)}
			if right.Words >= MinChunkWords {
				kept = append(kept, right)
			} else {
				h.Stats.DarkMatterWords += int64(right.Words)
				removed += int64(right.Words)
			}
		}
		inFrom, inTo := c.Addr, c.End()
		if inFrom < from {
			inFrom = from
		}
		if inTo > to {
			inTo = to
		}
		removed += int64(inTo - inFrom)
	}
	h.freeChunks = kept
	h.allocCursor = 0
	h.freeWords -= removed
	return removed
}

package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func squareJobs(n int) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Name: fmt.Sprintf("square-%d", i),
			Run:  func() (int, error) { return i * i, nil },
		}
	}
	return jobs
}

func TestSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		results, stats := Run(workers, squareJobs(33))
		if len(results) != 33 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i {
				t.Errorf("workers=%d: result %d = %d, want %d (order not preserved)", workers, i, r.Value, i*i)
			}
			if r.Name != fmt.Sprintf("square-%d", i) {
				t.Errorf("workers=%d: result %d named %q", workers, i, r.Name)
			}
		}
		if len(stats.Jobs) != 33 {
			t.Errorf("workers=%d: stats recorded %d jobs", workers, len(stats.Jobs))
		}
	}
}

func TestPanicCapturedAsError(t *testing.T) {
	jobs := []Job[int]{
		{Name: "ok", Run: func() (int, error) { return 7, nil }},
		{Name: "boom", Run: func() (int, error) { panic("kapow") }},
		{Name: "after", Run: func() (int, error) { return 9, nil }},
	}
	results, _ := Run(2, jobs)
	if results[0].Err != nil || results[0].Value != 7 {
		t.Errorf("job 0: %+v", results[0])
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "kapow") {
		t.Errorf("panic not captured: %v", results[1].Err)
	}
	if !strings.Contains(results[1].Err.Error(), `"boom"`) {
		t.Errorf("error does not name the job: %v", results[1].Err)
	}
	if results[2].Err != nil || results[2].Value != 9 {
		t.Errorf("sibling of a panicking job affected: %+v", results[2])
	}
}

func TestErrorsWrappedWithJobName(t *testing.T) {
	sentinel := errors.New("sentinel")
	results, _ := Run(1, []Job[int]{
		{Name: "failing", Run: func() (int, error) { return 0, sentinel }},
	})
	if !errors.Is(results[0].Err, sentinel) {
		t.Fatalf("wrapped error lost the cause: %v", results[0].Err)
	}
	if !strings.Contains(results[0].Err.Error(), `"failing"`) {
		t.Fatalf("error does not name the job: %v", results[0].Err)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, max atomic.Int64
	var mu sync.Mutex
	jobs := make([]Job[struct{}], 24)
	for i := range jobs {
		jobs[i] = Job[struct{}]{
			Name: "n",
			Run: func() (struct{}, error) {
				n := cur.Add(1)
				mu.Lock()
				if n > max.Load() {
					max.Store(n)
				}
				mu.Unlock()
				defer cur.Add(-1)
				return struct{}{}, nil
			},
		}
	}
	Run(workers, jobs)
	if m := max.Load(); m > workers {
		t.Fatalf("observed %d concurrent jobs, bound is %d", m, workers)
	}
}

func TestValuesPanicsOnError(t *testing.T) {
	results, _ := Run(1, []Job[int]{
		{Name: "bad", Run: func() (int, error) { return 0, errors.New("nope") }},
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Values did not panic on a failed job")
		}
		if !strings.Contains(fmt.Sprint(r), "bad") {
			t.Fatalf("panic does not name the job: %v", r)
		}
	}()
	Values(results)
}

func TestEmptyBatch(t *testing.T) {
	results, stats := Run[int](4, nil)
	if len(results) != 0 || stats.WallSeconds != 0 {
		t.Fatalf("empty batch: %d results, stats %+v", len(results), stats)
	}
	if vs := Values(results); len(vs) != 0 {
		t.Fatalf("Values on empty batch = %v", vs)
	}
}

func TestTelemetryRecorded(t *testing.T) {
	jobs := []Job[int]{{Name: "alloc", Run: func() (int, error) {
		buf := make([]byte, 1<<20)
		return int(buf[0]) + len(buf), nil
	}}}
	results, stats := Run(1, jobs)
	if results[0].WallSeconds < 0 {
		t.Errorf("negative wall-clock %v", results[0].WallSeconds)
	}
	if results[0].AllocBytes < 1<<20 {
		t.Errorf("AllocBytes = %d, want >= 1 MiB", results[0].AllocBytes)
	}
	if stats.JobSeconds < results[0].WallSeconds {
		t.Errorf("JobSeconds %v below the single job's wall %v", stats.JobSeconds, results[0].WallSeconds)
	}
	if stats.PeakHeapBytes <= 0 {
		t.Errorf("PeakHeapBytes = %d", stats.PeakHeapBytes)
	}
	if stats.Speedup() <= 0 {
		t.Errorf("Speedup = %v on a non-empty batch", stats.Speedup())
	}
}

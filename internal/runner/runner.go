// Package runner is the host-parallel experiment harness. The evaluation
// suite replays dozens of independent, deterministic VM configurations;
// each one is single-goroutine and shares no state with its siblings, so
// the configuration matrix is embarrassingly parallel across host cores.
// The runner executes a slice of named, self-contained jobs on a bounded
// worker pool and returns the results in submission order, so a parallel
// run produces byte-identical output to a sequential one.
//
// Beyond scheduling, the runner records the telemetry the perf trajectory
// needs: per-job wall-clock, approximate per-job host allocation, and the
// pool-wide peak live heap sampled at job boundaries.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"time"
)

// Job is one named, self-contained unit of work. Run must not share
// mutable state with any other job in the batch: each job constructs its
// own VM (or other world) from scratch.
type Job[T any] struct {
	Name string
	Run  func() (T, error)
}

// JobStat is the telemetry recorded for one executed job. AllocBytes is
// the host bytes allocated while the job ran on its worker; with more than
// one worker it includes sibling jobs' allocations and is only an upper
// bound, so treat it as indicative rather than exact under parallelism.
type JobStat struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
	AllocBytes  int64   `json:"alloc_bytes"`
}

// Result is the outcome of one job. A panic inside Job.Run is captured
// into Err (with its stack) rather than tearing down sibling jobs.
type Result[T any] struct {
	JobStat
	Value T
	Err   error
}

// Stats summarizes one batch.
type Stats struct {
	Workers       int       `json:"workers"`
	WallSeconds   float64   `json:"wall_seconds"`    // batch wall-clock
	JobSeconds    float64   `json:"job_seconds"`     // sum of per-job wall-clock (≈ sequential cost)
	PeakHeapBytes int64     `json:"peak_heap_bytes"` // max live heap sampled at job boundaries
	Jobs          []JobStat `json:"jobs,omitempty"`
}

// Speedup returns the parallel speedup the batch achieved: the sum of the
// per-job wall-clocks over the batch wall-clock. It is 0 when the batch
// did no measurable work.
func (s Stats) Speedup() float64 {
	if s.WallSeconds <= 0 {
		return 0
	}
	return s.JobSeconds / s.WallSeconds
}

const (
	metricAllocBytes = "/gc/heap/allocs:bytes"
	metricLiveBytes  = "/memory/classes/heap/objects:bytes"
)

func readMem() (allocs, live int64) {
	samples := []metrics.Sample{{Name: metricAllocBytes}, {Name: metricLiveBytes}}
	metrics.Read(samples)
	for i := range samples {
		if samples[i].Value.Kind() != metrics.KindUint64 {
			continue
		}
		v := int64(samples[i].Value.Uint64())
		if samples[i].Name == metricAllocBytes {
			allocs = v
		} else {
			live = v
		}
	}
	return allocs, live
}

// Run executes jobs on at most workers concurrent goroutines (workers <= 0
// means runtime.GOMAXPROCS(0)) and returns one Result per job, in
// submission order. Panics are recovered into the job's Err. Run never
// reorders, drops, or merges results, so output rendered from them is
// byte-identical whatever the worker count.
func Run[T any](workers int, jobs []Job[T]) ([]Result[T], Stats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	stats := Stats{Workers: workers}
	if len(jobs) == 0 {
		return nil, stats
	}

	results := make([]Result[T], len(jobs))
	start := time.Now()

	var mu sync.Mutex // guards peak-heap sampling
	var peakHeap int64
	samplePeak := func() {
		_, live := readMem()
		mu.Lock()
		if live > peakHeap {
			peakHeap = live
		}
		mu.Unlock()
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = runOne(jobs[i])
				samplePeak()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	stats.WallSeconds = time.Since(start).Seconds()
	stats.PeakHeapBytes = peakHeap
	stats.Jobs = make([]JobStat, len(results))
	for i := range results {
		stats.Jobs[i] = results[i].JobStat
		stats.JobSeconds += results[i].WallSeconds
	}
	return results, stats
}

// runOne executes a single job, capturing panics and telemetry.
func runOne[T any](job Job[T]) (res Result[T]) {
	res.Name = job.Name
	allocsBefore, _ := readMem()
	start := time.Now()
	defer func() {
		res.WallSeconds = time.Since(start).Seconds()
		allocsAfter, _ := readMem()
		res.AllocBytes = allocsAfter - allocsBefore
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("job %q panicked: %v\n%s", job.Name, r, debug.Stack())
		}
	}()
	res.Value, res.Err = job.Run()
	if res.Err != nil {
		res.Err = fmt.Errorf("job %q: %w", job.Name, res.Err)
	}
	return res
}

// Values unwraps a batch's values, preserving order. It panics on the
// first failed job: experiment configurations are deterministic, so a
// failure is a bug in the simulator or the configuration, not a runtime
// condition to retry.
func Values[T any](results []Result[T]) []T {
	out := make([]T, len(results))
	for i := range results {
		if results[i].Err != nil {
			panic(results[i].Err.Error())
		}
		out[i] = results[i].Value
	}
	return out
}

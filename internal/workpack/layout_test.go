package workpack

import (
	"testing"
	"unsafe"
)

// TestPoolStatsLayout pins the memory layout the padding comments promise.
// The Stats block's counters live at fixed offsets from the start of Pool so
// the hot words stay on the cache lines the comments describe; the faults
// pointer and the local-tier accounting words sit strictly after the whole
// Stats block, so arming fault injection or registering local caches cannot
// shift a counter's line. If a field is added or reordered, this test fails
// before a benchmark silently regresses.
func TestPoolStatsLayout(t *testing.T) {
	var s PoolStats
	for _, f := range []struct {
		name string
		off  uintptr
		want uintptr
	}{
		{"CASAttempts", unsafe.Offsetof(s.CASAttempts), 0},
		{"CASRetries", unsafe.Offsetof(s.CASRetries), 8},
		{"Gets", unsafe.Offsetof(s.Gets), 16},
		{"Puts", unsafe.Offsetof(s.Puts), 24},
		{"ReturnFences", unsafe.Offsetof(s.ReturnFences), 32},
		{"MaxInUse", unsafe.Offsetof(s.MaxInUse), 40},
		{"MaxSlotsInUse", unsafe.Offsetof(s.MaxSlotsInUse), 48},
		{"entriesInUse", unsafe.Offsetof(s.entriesInUse), 56},
	} {
		if f.off != f.want {
			t.Errorf("PoolStats.%s at offset %d, want %d", f.name, f.off, f.want)
		}
	}
	if size := unsafe.Sizeof(s); size != 64 {
		t.Errorf("PoolStats size %d, want 64 (one cache line)", size)
	}

	var p Pool
	stats := unsafe.Offsetof(p.Stats)
	if faults := unsafe.Offsetof(p.faults); faults < stats+unsafe.Sizeof(s) {
		t.Errorf("faults at %d overlaps or precedes the Stats block [%d, %d)",
			faults, stats, stats+unsafe.Sizeof(s))
	}
	for _, f := range []struct {
		name string
		off  uintptr
	}{
		{"localEmpty", unsafe.Offsetof(p.localEmpty)},
		{"localReady", unsafe.Offsetof(p.localReady)},
		{"steals", unsafe.Offsetof(p.steals)},
	} {
		if f.off < stats+unsafe.Sizeof(s) {
			t.Errorf("local-tier word %s at %d shifts the Stats block [%d, %d)",
				f.name, f.off, stats, stats+unsafe.Sizeof(s))
		}
	}

	// Each sub-pool occupies one full cache line so adjacent heads never
	// false-share.
	var sp subPool
	if size := unsafe.Sizeof(sp); size != 64 {
		t.Errorf("subPool size %d, want 64", size)
	}
}

package workpack

import (
	"testing"
	"unsafe"

	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

// TestLedgerAccounting drives one instrumented tracer through a
// produce/consume cycle and checks the ledger agrees with the pool's own
// aggregate counters.
func TestLedgerAccounting(t *testing.T) {
	p := NewPool(8, 4)
	led := &Ledger{}
	tr := NewTracer(p)
	tr.SetLedger(led)

	// Produce: push enough work to cycle several output packets.
	for i := 1; i <= 10; i++ {
		if !tr.Push(heapsim.Addr(i)) {
			t.Fatalf("Push %d overflowed with an idle pool", i)
		}
	}
	tr.Release()

	// Consume: pop everything back, charging traced words.
	for {
		_, ok := tr.Pop()
		if !ok {
			break
		}
		led.NoteTraced(2)
	}
	tr.Release()

	s := led.Snap()
	if s.AcqLocal != 0 || s.AcqSteal != 0 {
		t.Fatalf("local/steal acquisitions %d/%d on a tracer with no local tier", s.AcqLocal, s.AcqSteal)
	}
	if gets := p.Stats.Gets.Load(); s.AcqGlobal != gets {
		t.Fatalf("ledger AcqGlobal %d != pool Gets %d", s.AcqGlobal, gets)
	}
	if s.Produced == 0 {
		t.Fatal("no Produced packets recorded after pushing 10 refs across 4-cap packets")
	}
	if s.Objects != 10 || s.Words != 20 {
		t.Fatalf("traced %d objects / %d words, want 10 / 20", s.Objects, s.Words)
	}
	if s.PoolNs <= 0 {
		t.Fatal("PoolNs never charged on an instrumented tracer")
	}
	// The final failed Pop reached the steal scan (no locals registered, so
	// no hit is possible).
	if s.StealAttempts == 0 {
		t.Fatal("steal scan never attempted")
	}
	if s.StealHits != 0 {
		t.Fatalf("%d steal hits without sibling caches", s.StealHits)
	}
	checkQuiescent(t, p, 8)
}

// TestLedgerStealClassification parks work in one worker's steal window and
// has a sibling acquire it: the sibling's ledger must classify the packet as
// stolen, the owner's as locally produced.
func TestLedgerStealClassification(t *testing.T) {
	p := NewPool(8, 4)
	victim := p.NewLocal(4)
	vled := &Ledger{}
	vtr := NewLocalTracer(victim)
	vtr.SetLedger(vled)
	for i := 1; i <= 4; i++ {
		if !vtr.Push(heapsim.Addr(i)) {
			t.Fatalf("Push %d failed", i)
		}
	}
	vtr.Release() // full output parks in the victim's steal window

	thief := p.NewLocal(4)
	tled := &Ledger{}
	ttr := NewLocalTracer(thief)
	ttr.SetLedger(tled)
	if _, ok := ttr.Pop(); !ok {
		t.Fatal("thief found no work with a loaded sibling window")
	}
	ts := tled.Snap()
	if ts.AcqSteal != 1 || ts.StealHits != 1 || ts.StealAttempts != 1 {
		t.Fatalf("thief snap %+v, want one steal attempt, hit and acquisition", ts)
	}
	if vs := vled.Snap(); vs.Produced != 1 {
		t.Fatalf("victim Produced %d, want 1", vs.Produced)
	}
	ttr.Release()
	flushAll(p)
	checkQuiescent(t, p, 8)
}

// TestLedgerLocalClassification checks that cache hits are charged to
// SrcLocal and batch refills to SrcGlobal.
func TestLedgerLocalClassification(t *testing.T) {
	p := NewPool(8, 4)
	lp := p.NewLocal(4)
	led := &Ledger{}
	tr := NewLocalTracer(lp)
	tr.SetLedger(led)

	// First acquisition misses the empty cache and batch-refills: global.
	if !tr.Push(1) {
		t.Fatal("Push failed")
	}
	s := led.Snap()
	if s.AcqGlobal != 1 || s.AcqLocal != 0 {
		t.Fatalf("first acquisition global/local = %d/%d, want 1/0 (refill)", s.AcqGlobal, s.AcqLocal)
	}
	// Fill the output; its replacement should come from the refilled cache.
	for i := 2; i <= 6; i++ {
		if !tr.Push(heapsim.Addr(i)) {
			t.Fatalf("Push %d failed", i)
		}
	}
	s = led.Snap()
	if s.AcqLocal == 0 {
		t.Fatal("no SrcLocal acquisition after a batch refill primed the cache")
	}
	tr.Release()
	lp.Flush()
	checkQuiescent(t, p, 8)
}

// TestLedgerDisabledZeroAlloc pins the zero-perturbation guarantee: a tracer
// without a ledger allocates nothing and reads only one extra pointer on its
// packet paths.
func TestLedgerDisabledZeroAlloc(t *testing.T) {
	p := NewPool(8, 8)
	tr := NewTracer(p)
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 1; i <= 12; i++ {
			tr.Push(heapsim.Addr(i))
		}
		for {
			if _, ok := tr.Pop(); !ok {
				break
			}
		}
		tr.Release()
	}); allocs != 0 {
		t.Fatalf("uninstrumented tracer cycle allocates %.1f objects per run, want 0", allocs)
	}
	// Nil-receiver methods must be safe no-ops.
	var nl *Ledger
	nl.noteAcq(SrcGlobal)
	nl.NoteTraced(8)
	nl.NoteIdle(100)
	if s := nl.Snap(); s.Active() {
		t.Fatalf("nil ledger snapshots active: %+v", s)
	}
}

// TestHoardFaultConservation arms pool.hoard on one tracer and checks the
// degradation contract: packets are withheld (skewing the flow), but the
// hoarder self-serves from its hoard when the pool runs dry, and Release
// restores full pool conservation — Gets==Puts and every packet walkable.
func TestHoardFaultConservation(t *testing.T) {
	const packets, cap = 12, 4
	p := NewPool(packets, cap)
	plan := faultinject.MustParse("pool.hoard=on", 7)
	led := &Ledger{}
	tr := NewTracer(p)
	tr.SetLedger(led)
	tr.InjectHoard(plan.Point(faultinject.PoolHoard))

	pushed := 0
	for i := 1; i <= packets*cap; i++ {
		if tr.Push(heapsim.Addr(i)) {
			pushed++
		}
	}
	if tr.HoardHeld() == 0 {
		t.Fatal("pool.hoard=on never hoarded a full output packet")
	}
	if got := led.HoardHeld.Load(); got != int64(tr.HoardHeld()) {
		t.Fatalf("ledger HoardHeld %d != tracer hoard %d", got, tr.HoardHeld())
	}

	// Drain: the hoarder must eventually self-serve every withheld packet,
	// so no pushed reference is lost. Self-serve starts only after a
	// sustained dry streak, so a failed Pop with a non-empty hoard means
	// "try again", not "done".
	popped := 0
	for {
		if _, ok := tr.Pop(); !ok {
			// Swap exception may leave work in the output packet.
			if tr.out != nil && !tr.out.Empty() {
				tr.in, tr.out = tr.out, tr.in
				continue
			}
			if tr.HoardHeld() > 0 {
				continue
			}
			break
		}
		popped++
	}
	if popped != pushed {
		t.Fatalf("popped %d of %d pushed refs through a hoarding tracer", popped, pushed)
	}
	tr.Release()
	tr.DrainHoard()
	if tr.HoardHeld() != 0 || led.HoardHeld.Load() != 0 {
		t.Fatalf("hoard not drained: tracer %d, ledger %d", tr.HoardHeld(), led.HoardHeld.Load())
	}
	if led.Hoarded.Load() == 0 {
		t.Fatal("cumulative Hoarded counter empty after observed hoarding")
	}
	checkQuiescent(t, p, packets)
}

// TestLedgerLayout pins the Ledger field order so trace tooling and the
// accounting flush can rely on a stable block of owner-written counters.
func TestLedgerLayout(t *testing.T) {
	var l Ledger
	want := []struct {
		name string
		off  uintptr
	}{
		{"AcqGlobal", unsafe.Offsetof(l.AcqGlobal)},
		{"AcqLocal", unsafe.Offsetof(l.AcqLocal)},
		{"AcqSteal", unsafe.Offsetof(l.AcqSteal)},
		{"Produced", unsafe.Offsetof(l.Produced)},
		{"Objects", unsafe.Offsetof(l.Objects)},
		{"Words", unsafe.Offsetof(l.Words)},
		{"StealAttempts", unsafe.Offsetof(l.StealAttempts)},
		{"StealHits", unsafe.Offsetof(l.StealHits)},
		{"IdleNs", unsafe.Offsetof(l.IdleNs)},
		{"PoolNs", unsafe.Offsetof(l.PoolNs)},
		{"Hoarded", unsafe.Offsetof(l.Hoarded)},
		{"HoardHeld", unsafe.Offsetof(l.HoardHeld)},
	}
	for i, f := range want {
		if got, exp := f.off, uintptr(i*8); got != exp {
			t.Errorf("Ledger.%s at offset %d, want %d", f.name, got, exp)
		}
	}
	if size := unsafe.Sizeof(l); size != 96 {
		t.Errorf("Ledger size %d, want 96 (12 packed words)", size)
	}
}

package workpack

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

// PoolStats counts the synchronization and space costs the paper evaluates
// in Sections 6.3 (Table 4 and the watermark measurements).
type PoolStats struct {
	CASAttempts   atomic.Int64 // compare-and-swap operations, including retries
	CASRetries    atomic.Int64 // failed CAS operations (contention on a sub-pool head)
	Gets          atomic.Int64 // successful pops from any sub-pool
	Puts          atomic.Int64 // pushes to any sub-pool
	ReturnFences  atomic.Int64 // fences before returning a non-empty packet (Section 5.1)
	MaxInUse      atomic.Int64 // high-water mark of packets held by threads
	MaxSlotsInUse atomic.Int64 // high-water mark of occupied entries across all packets
	entriesInUse  atomic.Int64
}

// subPool is a lock-free LIFO of packets. The head word packs a 32-bit
// version tag (ABA avoidance) with a 32-bit packet index biased by one so
// that zero means "empty list with version 0".
type subPool struct {
	head  atomic.Uint64
	count atomic.Int64
	_     [6]int64 // keep the hot words of adjacent sub-pools apart
}

func packHead(version uint32, idx int32) uint64 {
	return uint64(version)<<32 | uint64(uint32(idx+1))
}

func unpackHead(h uint64) (version uint32, idx int32) {
	return uint32(h >> 32), int32(uint32(h)) - 1
}

// PoolFaults is the pool's set of optional fault-injection points. Each nil
// point is an individually disabled site; a nil *PoolFaults (the default)
// disables the whole layer at the cost of one pointer test per operation.
type PoolFaults struct {
	// CAS amplifies head-CAS contention: a firing hit is treated as a lost
	// CAS (counted in Stats.CASRetries) and the loop retries.
	CAS *faultinject.Point
	// Exhaust forces GetInput/GetOutput/GetEmpty to report an empty pool,
	// driving the callers' overflow degradations.
	Exhaust *faultinject.Point
	// GetStall stalls at the top of the Get paths.
	GetStall *faultinject.Point
	// PutStall stalls at the top of Put/PutDeferred.
	PutStall *faultinject.Point
	// DeferStall stalls between packets inside DrainDeferred.
	DeferStall *faultinject.Point
	// LocalSpill forces a LocalPool to spill to the global pool even when
	// its cache has room, degrading the local tier back to global traffic.
	LocalSpill *faultinject.Point
	// StealMiss forces stealReady to report no stealable packets.
	StealMiss *faultinject.Point
	// RefillStall stalls a LocalPool's batch refill from the Empty sub-pool.
	RefillStall *faultinject.Point
}

// Pool is the global shared pool of work packets, divided into sub-pools by
// occupancy range. All methods are safe for concurrent use.
type Pool struct {
	packets []Packet
	sub     [NumSubPools]subPool
	total   int

	Stats PoolStats

	// faults sits after the hot Stats block so arming the (rarely consulted
	// when nil) pointer does not shift the counters' cache-line offsets.
	faults *PoolFaults

	// Local-tier accounting lives after faults for the same reason: these
	// words are touched only on cache transitions, steals and termination
	// tests, never on the global fast path.
	localEmpty atomic.Int64 // empty packets parked in local caches
	_          [7]int64
	localReady atomic.Int64 // non-empty packets parked in local caches
	_          [7]int64
	steals     atomic.Int64 // packets claimed from sibling local caches
	_          [7]int64

	localsMu sync.Mutex
	locals   atomic.Pointer[[]*LocalPool]
}

// NewPool creates a pool of n packets with the given per-packet capacity
// (DefaultCapacity if capacity is zero). All packets start in the Empty
// sub-pool.
func NewPool(n, capacity int) *Pool {
	if n <= 0 {
		panic(fmt.Sprintf("workpack: pool needs at least one packet, got %d", n))
	}
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if capacity < 1 {
		panic(fmt.Sprintf("workpack: bad packet capacity %d", capacity))
	}
	p := &Pool{packets: make([]Packet, n), total: n}
	for i := range p.packets {
		pkt := &p.packets[i]
		pkt.id = int32(i)
		pkt.entries = make([]heapsim.Addr, 0, capacity)
		pkt.pool = p
		p.pushTo(Empty, pkt)
	}
	return p
}

// InjectFaults installs fault-injection points. Call before the pool is
// shared between goroutines; passing nil restores the disabled state.
func (p *Pool) InjectFaults(f *PoolFaults) { p.faults = f }

// TotalPackets returns the number of packets the pool was created with.
func (p *Pool) TotalPackets() int { return p.total }

// Capacity returns the per-packet capacity.
func (p *Pool) Capacity() int { return cap(p.packets[0].entries) }

// Count returns the (racy but monotonic-per-op) packet count of a sub-pool.
// Per Section 4.3 the counter is an estimate at any instant but exact when
// the system is quiescent.
func (p *Pool) Count(s SubPool) int { return int(p.sub[s].count.Load()) }

// casBackoff bounds the cost of a contended head-CAS loop: the first few
// retries spin (natural contention resolves in a try or two), after which the
// loser yields the processor so the winner can finish — without this, fault-
// amplified contention turns the loop into a scheduler-hostile busy spin.
func casBackoff(retries int) {
	if retries >= 4 {
		runtime.Gosched()
	}
}

// pushTo links a packet onto a sub-pool with a versioned-head CAS.
func (p *Pool) pushTo(s SubPool, pkt *Packet) {
	sp := &p.sub[s]
	for retries := 0; ; retries++ {
		old := sp.head.Load()
		ver, idx := unpackHead(old)
		pkt.next.Store(idx)
		p.Stats.CASAttempts.Add(1)
		if f := p.faults; f != nil && f.CAS.Fire() {
			// Amplified contention: this attempt loses as if another thread
			// won the head.
			p.Stats.CASRetries.Add(1)
			casBackoff(retries)
			continue
		}
		if sp.head.CompareAndSwap(old, packHead(ver+1, pkt.id)) {
			sp.count.Add(1)
			return
		}
		p.Stats.CASRetries.Add(1)
		casBackoff(retries)
	}
}

// popFrom unlinks a packet from a sub-pool, or returns nil if it is empty.
func (p *Pool) popFrom(s SubPool) *Packet {
	sp := &p.sub[s]
	for retries := 0; ; retries++ {
		old := sp.head.Load()
		ver, idx := unpackHead(old)
		if idx < 0 {
			return nil
		}
		pkt := &p.packets[idx]
		next := pkt.next.Load()
		p.Stats.CASAttempts.Add(1)
		if f := p.faults; f != nil && f.CAS.Fire() {
			p.Stats.CASRetries.Add(1)
			casBackoff(retries)
			continue
		}
		if sp.head.CompareAndSwap(old, packHead(ver+1, next)) {
			sp.count.Add(-1)
			return pkt
		}
		p.Stats.CASRetries.Add(1)
		casBackoff(retries)
	}
}

// popBatchFrom unlinks up to k packets from a sub-pool with a single
// versioned-head CAS: it walks the next links of the head snapshot and then
// swings the head past the whole run. The version tag makes the walk safe —
// if any push or pop touched the sub-pool since the head was loaded, the
// final CAS fails and the (possibly garbage) walk is discarded. The result
// slice aliases into's backing array.
func (p *Pool) popBatchFrom(s SubPool, k int, into []*Packet) []*Packet {
	sp := &p.sub[s]
	for retries := 0; ; retries++ {
		into = into[:0]
		old := sp.head.Load()
		ver, idx := unpackHead(old)
		if idx < 0 {
			return into
		}
		next := idx
		for len(into) < k && next >= 0 {
			pkt := &p.packets[next]
			into = append(into, pkt)
			next = pkt.next.Load()
		}
		p.Stats.CASAttempts.Add(1)
		if f := p.faults; f != nil && f.CAS.Fire() {
			p.Stats.CASRetries.Add(1)
			casBackoff(retries)
			continue
		}
		if sp.head.CompareAndSwap(old, packHead(ver+1, next)) {
			sp.count.Add(-int64(len(into)))
			return into
		}
		p.Stats.CASRetries.Add(1)
		casBackoff(retries)
	}
}

// pushBatchTo links a chain of packets onto a sub-pool with a single CAS.
// The internal links are written once; only the tail link is rewritten per
// retry.
func (p *Pool) pushBatchTo(s SubPool, pkts []*Packet) {
	if len(pkts) == 0 {
		return
	}
	for i := 0; i < len(pkts)-1; i++ {
		pkts[i].next.Store(pkts[i+1].id)
	}
	sp := &p.sub[s]
	for retries := 0; ; retries++ {
		old := sp.head.Load()
		ver, idx := unpackHead(old)
		pkts[len(pkts)-1].next.Store(idx)
		p.Stats.CASAttempts.Add(1)
		if f := p.faults; f != nil && f.CAS.Fire() {
			p.Stats.CASRetries.Add(1)
			casBackoff(retries)
			continue
		}
		if sp.head.CompareAndSwap(old, packHead(ver+1, pkts[0].id)) {
			sp.count.Add(int64(len(pkts)))
			return
		}
		p.Stats.CASRetries.Add(1)
		casBackoff(retries)
	}
}

// GetInput obtains a packet to trace from: the highest-occupancy sub-pool
// that has one (Section 4.2), falling back to stealing from sibling local
// caches so no thread idles — or terminates tracing — while a local tier
// hoards ready work. It returns nil when no tracing work is available.
func (p *Pool) GetInput() *Packet { return p.getInput(nil) }

// getInput is GetInput with work-flow accounting: a non-nil ledger is
// charged for the acquisition source and for steal attempts vs. hits. The
// led == nil path is byte-for-byte the uninstrumented behavior.
func (p *Pool) getInput(led *Ledger) *Packet {
	if f := p.faults; f != nil {
		f.GetStall.Stall()
		if f.Exhaust.Fire() {
			return nil
		}
	}
	for _, s := range [...]SubPool{AlmostFull, Nonempty} {
		if pkt := p.popFrom(s); pkt != nil {
			p.Stats.Gets.Add(1)
			p.noteUsage()
			led.noteAcq(SrcGlobal)
			return pkt
		}
	}
	if led != nil {
		led.StealAttempts.Add(1)
	}
	pkt := p.stealReady()
	if pkt != nil && led != nil {
		led.StealHits.Add(1)
		led.AcqSteal.Add(1)
	}
	return pkt
}

// stealReady claims a cached non-empty packet from any registered local
// cache. A steal is not a global get: the packet never re-entered the
// global sub-pools, so Gets/Puts symmetry is preserved by the victim's
// original Get and the thief's eventual Put.
func (p *Pool) stealReady() *Packet {
	lps := p.locals.Load()
	if lps == nil {
		return nil
	}
	if f := p.faults; f != nil && f.StealMiss.Fire() {
		return nil
	}
	for _, lp := range *lps {
		for i := range lp.ready {
			id := lp.ready[i].Load()
			if id != 0 && lp.ready[i].CompareAndSwap(id, 0) {
				p.localReady.Add(-1)
				p.steals.Add(1)
				lp.Stats.Stolen.Add(1)
				return &p.packets[id-1]
			}
		}
	}
	return nil
}

// GetOutput obtains a packet to push new work into: the lowest-occupancy
// sub-pool that has one. It returns nil only when every packet is checked
// out or deferred.
func (p *Pool) GetOutput() *Packet { return p.getOutput(nil) }

func (p *Pool) getOutput(led *Ledger) *Packet {
	if f := p.faults; f != nil {
		f.GetStall.Stall()
		if f.Exhaust.Fire() {
			return nil
		}
	}
	for _, s := range [...]SubPool{Empty, Nonempty, AlmostFull} {
		if pkt := p.popFrom(s); pkt != nil {
			p.Stats.Gets.Add(1)
			p.noteUsage()
			led.noteAcq(SrcGlobal)
			return pkt
		}
	}
	return nil
}

// GetEmpty obtains a packet from the Empty sub-pool only.
func (p *Pool) GetEmpty() *Packet { return p.getEmpty(nil) }

func (p *Pool) getEmpty(led *Ledger) *Packet {
	if f := p.faults; f != nil {
		f.GetStall.Stall()
		if f.Exhaust.Fire() {
			return nil
		}
	}
	if pkt := p.popFrom(Empty); pkt != nil {
		p.Stats.Gets.Add(1)
		p.noteUsage()
		led.noteAcq(SrcGlobal)
		return pkt
	}
	return nil
}

// Put returns a packet to the sub-pool matching its occupancy. Returning a
// non-empty packet publishes its entries to other processors, so it is
// preceded by one fence for the whole group of objects (Section 5.1) —
// counted in Stats.ReturnFences. The thread that later gets the packet
// needs no fence: the load of the packet pointer and the loads of its
// entries are data-dependent.
func (p *Pool) Put(pkt *Packet) {
	p.putTo(classify(pkt), pkt)
}

// PutDeferred returns a packet holding deferred "unsafe" objects to the
// Deferred sub-pool (Section 5.2).
func (p *Pool) PutDeferred(pkt *Packet) {
	if pkt.Empty() {
		p.putTo(Empty, pkt)
		return
	}
	p.putTo(Deferred, pkt)
}

func (p *Pool) putTo(s SubPool, pkt *Packet) {
	if pkt.pool != p {
		panic("workpack: packet returned to a foreign pool")
	}
	if f := p.faults; f != nil {
		f.PutStall.Stall()
	}
	if !pkt.Empty() {
		p.Stats.ReturnFences.Add(1)
	}
	p.Stats.Puts.Add(1)
	p.pushTo(s, pkt)
}

// DrainDeferred moves every packet currently in the Deferred sub-pool back
// into the regular sub-pools, giving its objects another chance to be
// traced ("periodically, we return all packets in the Deferred Pool to the
// other sub-pools"). It returns the number of packets moved.
func (p *Pool) DrainDeferred() int {
	n := 0
	for {
		pkt := p.popFrom(Deferred)
		if pkt == nil {
			return n
		}
		if f := p.faults; f != nil {
			// A stall here holds a deferred packet outside every sub-pool,
			// stretching the window where TracingDone and DeferredEmpty race
			// with the recirculation.
			f.DeferStall.Stall()
		}
		p.pushTo(classify(pkt), pkt)
		n++
	}
}

// DeferredEmpty reports whether the Deferred sub-pool holds no packets.
func (p *Pool) DeferredEmpty() bool { return p.sub[Deferred].count.Load() == 0 }

// TracingDone implements the Section 4.3 termination test: tracing work is
// complete when every packet is empty — in the Empty sub-pool or parked
// empty in a local cache. Threads in the middle of getting an empty packet
// cannot find objects to trace, so the test is safe given the
// get-before-return replacement discipline that Tracer enforces; the local
// tier preserves it by decrementing localEmpty before handing out a cached
// empty packet (conservative: a transient undercount can only delay
// termination, never fake it) and by never counting cached ready packets.
func (p *Pool) TracingDone() bool {
	return p.sub[Empty].count.Load()+p.localEmpty.Load() == int64(p.total)
}

// HasTracingWork reports whether any non-empty packet is available in the
// regular sub-pools or stealable from a local cache (it ignores Deferred).
func (p *Pool) HasTracingWork() bool {
	return p.sub[Nonempty].count.Load() > 0 || p.sub[AlmostFull].count.Load() > 0 ||
		p.localReady.Load() > 0
}

// noteUsage updates the "packets in use" high-water mark. Following the
// paper's upper-bound watermark, a packet counts as in use when it is
// checked out by a thread or holds entries — i.e. everything outside the
// Empty sub-pool and the local empty caches.
func (p *Pool) noteUsage() {
	inUse := int64(p.total) - p.sub[Empty].count.Load() - p.localEmpty.Load()
	atomicMax(&p.Stats.MaxInUse, inUse)
}

// noteEntries tracks the global occupied-slot count for the Section 6.3
// watermark measurement.
func (p *Pool) noteEntries(delta int64) {
	v := p.Stats.entriesInUse.Add(delta)
	if delta > 0 {
		atomicMax(&p.Stats.MaxSlotsInUse, v)
	}
}

// EntriesInUse returns the current number of occupied slots across all
// packets.
func (p *Pool) EntriesInUse() int64 { return p.Stats.entriesInUse.Load() }

// Occupancy snapshots the per-sub-pool packet counts, indexed by SubPool.
// Like Count, each entry is an estimate while threads are active and exact
// at quiescence; the telemetry layer samples it at phase boundaries.
func (p *Pool) Occupancy() [NumSubPools]int {
	var occ [NumSubPools]int
	for s := range occ {
		occ[s] = int(p.sub[s].count.Load())
	}
	return occ
}

func atomicMax(m *atomic.Int64, v int64) {
	for {
		old := m.Load()
		if v <= old || m.CompareAndSwap(old, v) {
			return
		}
	}
}

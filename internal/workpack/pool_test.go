package workpack

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"mcgc/internal/heapsim"
)

func TestPacketPushPop(t *testing.T) {
	p := NewPool(4, 8)
	pkt := p.GetEmpty()
	if pkt == nil {
		t.Fatal("GetEmpty failed on fresh pool")
	}
	for i := 1; i <= 8; i++ {
		if !pkt.Push(heapsim.Addr(i)) {
			t.Fatalf("Push %d failed", i)
		}
	}
	if pkt.Push(9) {
		t.Fatal("Push succeeded on full packet")
	}
	if !pkt.Full() || pkt.Len() != 8 {
		t.Fatalf("Full=%v Len=%d", pkt.Full(), pkt.Len())
	}
	if a, ok := pkt.Peek(); !ok || a != 8 {
		t.Fatalf("Peek = %d,%v", a, ok)
	}
	for i := 8; i >= 1; i-- {
		a, ok := pkt.Pop()
		if !ok || a != heapsim.Addr(i) {
			t.Fatalf("Pop = %d,%v, want %d (LIFO)", a, ok, i)
		}
	}
	if _, ok := pkt.Pop(); ok {
		t.Fatal("Pop succeeded on empty packet")
	}
}

func TestClassify(t *testing.T) {
	p := NewPool(1, 10)
	pkt := p.GetEmpty()
	if got := classify(pkt); got != Empty {
		t.Fatalf("classify(empty) = %v", got)
	}
	pkt.Push(1)
	if got := classify(pkt); got != Nonempty {
		t.Fatalf("classify(1/10) = %v", got)
	}
	for i := 0; i < 4; i++ {
		pkt.Push(1)
	}
	if got := classify(pkt); got != AlmostFull { // 5/10 is at least half
		t.Fatalf("classify(5/10) = %v", got)
	}
	for i := 0; i < 5; i++ {
		pkt.Push(1)
	}
	if got := classify(pkt); got != AlmostFull {
		t.Fatalf("classify(full) = %v", got)
	}
}

func TestPoolRouting(t *testing.T) {
	p := NewPool(3, 10)
	a, b, c := p.GetEmpty(), p.GetEmpty(), p.GetEmpty()
	for i := 0; i < 8; i++ {
		a.Push(1) // almost full
	}
	b.Push(1) // non-empty
	p.Put(a)
	p.Put(b)
	p.Put(c) // empty
	if p.Count(Empty) != 1 || p.Count(Nonempty) != 1 || p.Count(AlmostFull) != 1 {
		t.Fatalf("counts = %d/%d/%d", p.Count(Empty), p.Count(Nonempty), p.Count(AlmostFull))
	}
	// Input prefers the fullest; output prefers the emptiest.
	in := p.GetInput()
	if in != a {
		t.Fatalf("GetInput returned %v, want the almost-full packet", in.ID())
	}
	out := p.GetOutput()
	if out != c {
		t.Fatalf("GetOutput returned %v, want the empty packet", out.ID())
	}
}

func TestTracingDone(t *testing.T) {
	p := NewPool(4, 8)
	if !p.TracingDone() {
		t.Fatal("fresh pool should report tracing done")
	}
	pkt := p.GetEmpty()
	if p.TracingDone() {
		t.Fatal("tracing done while a packet is checked out")
	}
	pkt.Push(7)
	p.Put(pkt)
	if p.TracingDone() {
		t.Fatal("tracing done with a non-empty packet pooled")
	}
	in := p.GetInput()
	in.Pop()
	p.Put(in)
	if !p.TracingDone() {
		t.Fatal("tracing not done after all packets returned empty")
	}
}

func TestDeferredPool(t *testing.T) {
	p := NewPool(4, 8)
	pkt := p.GetEmpty()
	pkt.Push(42)
	p.PutDeferred(pkt)
	if p.DeferredEmpty() {
		t.Fatal("deferred pool empty after PutDeferred")
	}
	if p.HasTracingWork() {
		t.Fatal("deferred work must not count as tracing work")
	}
	if p.TracingDone() {
		t.Fatal("tracing done with deferred work outstanding")
	}
	if n := p.DrainDeferred(); n != 1 {
		t.Fatalf("DrainDeferred = %d, want 1", n)
	}
	if !p.HasTracingWork() {
		t.Fatal("drained packet not recirculated")
	}
	// An empty packet put via PutDeferred goes to the Empty pool.
	e := p.GetEmpty()
	p.PutDeferred(e)
	if p.Count(Deferred) != 0 {
		t.Fatal("empty packet filed under Deferred")
	}
}

func TestReturnFenceAccounting(t *testing.T) {
	p := NewPool(2, 8)
	pkt := p.GetEmpty()
	p.Put(pkt) // empty: no fence
	if got := p.Stats.ReturnFences.Load(); got != 0 {
		t.Fatalf("fences after empty put = %d", got)
	}
	pkt = p.GetEmpty()
	pkt.Push(1)
	pkt.Push(2)
	p.Put(pkt) // one fence for the whole group
	if got := p.Stats.ReturnFences.Load(); got != 1 {
		t.Fatalf("fences after non-empty put = %d, want 1", got)
	}
}

func TestWatermarks(t *testing.T) {
	p := NewPool(4, 8)
	a := p.GetEmpty()
	b := p.GetEmpty()
	if got := p.Stats.MaxInUse.Load(); got != 2 {
		t.Fatalf("MaxInUse = %d, want 2", got)
	}
	a.Push(1)
	a.Push(2)
	b.Push(3)
	if got := p.Stats.MaxSlotsInUse.Load(); got != 3 {
		t.Fatalf("MaxSlotsInUse = %d, want 3", got)
	}
	a.Pop()
	a.Pop()
	b.Pop()
	if got := p.EntriesInUse(); got != 0 {
		t.Fatalf("EntriesInUse = %d, want 0", got)
	}
	if got := p.Stats.MaxSlotsInUse.Load(); got != 3 {
		t.Fatalf("watermark regressed to %d", got)
	}
}

func TestHeadPacking(t *testing.T) {
	for _, tc := range []struct {
		ver uint32
		idx int32
	}{{0, -1}, {0, 0}, {7, 12345}, {^uint32(0), 1 << 30}} {
		h := packHead(tc.ver, tc.idx)
		ver, idx := unpackHead(h)
		if ver != tc.ver || idx != tc.idx {
			t.Fatalf("pack/unpack(%d,%d) = (%d,%d)", tc.ver, tc.idx, ver, idx)
		}
	}
}

// Packet conservation: after any storm of concurrent gets and puts, every
// packet is back in exactly one sub-pool and none is duplicated or lost.
func TestConcurrentPacketConservation(t *testing.T) {
	const (
		packets = 32
		workers = 8
		rounds  = 2000
	)
	p := NewPool(packets, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var pkt *Packet
				switch (seed + r) % 3 {
				case 0:
					pkt = p.GetEmpty()
				case 1:
					pkt = p.GetOutput()
				default:
					pkt = p.GetInput()
				}
				if pkt == nil {
					continue
				}
				// Mutate while held: only the owner touches entries.
				if !pkt.Full() {
					pkt.Push(heapsim.Addr(seed + 1))
				}
				if (seed+r)%2 == 0 {
					pkt.Pop()
				}
				p.Put(pkt)
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		total += p.Count(s)
	}
	if total != packets {
		t.Fatalf("sub-pool counts sum to %d, want %d", total, packets)
	}
	// At quiescence every successful get was matched by a put: no packet is
	// outstanding, so the two counters must agree exactly.
	if gets, puts := p.Stats.Gets.Load(), p.Stats.Puts.Load(); gets != puts {
		t.Fatalf("gets %d != puts %d at quiescence", gets, puts)
	}
	// Walk the lists and verify each packet appears exactly once.
	seen := make(map[int32]bool)
	n := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		for pkt := p.popFrom(s); pkt != nil; pkt = p.popFrom(s) {
			if seen[pkt.id] {
				t.Fatalf("packet %d linked twice", pkt.id)
			}
			seen[pkt.id] = true
			n++
		}
	}
	if n != packets {
		t.Fatalf("walked %d packets, want %d", n, packets)
	}
}

// Entries survive a concurrent producer/consumer handoff intact: whatever
// producers push is exactly what consumers pop, across packet transfers.
func TestConcurrentHandoffIntegrity(t *testing.T) {
	const (
		producers = 4
		perProd   = 5000
	)
	p := NewPool(64, 32)
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := NewTracer(p)
			for i := 0; i < perProd; i++ {
				v := heapsim.Addr(w*perProd + i + 1)
				for !tr.Push(v) {
					// Pool exhausted by backlog; release our buffered
					// work so the consumers can drain it, then retry.
					tr.Release()
					runtime.Gosched()
				}
			}
			tr.Release()
		}(w)
	}
	var mu sync.Mutex
	got := make(map[heapsim.Addr]int)
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < 3; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			tr := NewTracer(p)
			local := make(map[heapsim.Addr]int)
			for {
				a, ok := tr.Pop()
				if !ok {
					tr.Release()
					select {
					case <-done:
						mu.Lock()
						for k, v := range local {
							got[k] += v
						}
						mu.Unlock()
						return
					default:
						continue
					}
				}
				local[a]++
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	// Drain anything left in the pool single-threaded.
	tr := NewTracer(p)
	for {
		a, ok := tr.Pop()
		if !ok {
			break
		}
		got[a]++
	}
	tr.Release()
	want := producers * perProd
	if len(got) != want {
		t.Fatalf("received %d distinct values, want %d", len(got), want)
	}
	for k, v := range got {
		if v != 1 {
			t.Fatalf("value %d received %d times", k, v)
		}
	}
	if !p.TracingDone() {
		t.Fatal("pool not quiescent after full drain")
	}
	// Quiescence invariants: the termination condition holds structurally
	// (every packet back in the Empty sub-pool) and every get was matched by
	// a put.
	if p.Count(Empty) != p.TotalPackets() {
		t.Fatalf("empty sub-pool holds %d packets, want all %d", p.Count(Empty), p.TotalPackets())
	}
	if gets, puts := p.Stats.Gets.Load(), p.Stats.Puts.Load(); gets != puts {
		t.Fatalf("gets %d != puts %d at quiescence", gets, puts)
	}
}

// Property: for any sequence of pushes through a Tracer, popping yields a
// permutation of the pushed values plus overflow fallbacks.
func TestQuickTracerNoLoss(t *testing.T) {
	f := func(vals []uint16) bool {
		p := NewPool(8, 4)
		tr := NewTracer(p)
		pushed := make(map[heapsim.Addr]int)
		overflowed := 0
		for _, v := range vals {
			a := heapsim.Addr(v) + 1
			if tr.Push(a) {
				pushed[a]++
			} else {
				overflowed++
			}
		}
		// Drain fully: a failed Pop may leave work buffered in the
		// tracer's own output packet, so release and retry until the
		// pool is quiescent — the same quit-and-reacquire dance real
		// tracing threads do.
		for {
			a, ok := tr.Pop()
			if !ok {
				tr.Release()
				if p.TracingDone() {
					break
				}
				continue
			}
			if pushed[a] == 0 {
				return false
			}
			pushed[a]--
		}
		for _, n := range pushed {
			if n != 0 {
				return false
			}
		}
		return p.TracingDone()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSwapException(t *testing.T) {
	// With a tiny pool the tracer must fall back to swapping roles and
	// finally to overflow.
	p := NewPool(2, 2)
	tr := NewTracer(p)
	if !tr.Push(1) || !tr.Push(2) { // fills output
		t.Fatal("initial pushes failed")
	}
	// Third push: replacement output available (second packet).
	if !tr.Push(3) {
		t.Fatal("push with replacement failed")
	}
	if !tr.Push(4) {
		t.Fatal("push 4 failed")
	}
	// Both packets now out of the pool: one full returned, one held full.
	// Pool holds the full one; GetOutput returns it, tracer puts it back,
	// then swap is impossible (no input) -> overflow.
	if tr.Push(5) {
		t.Fatal("push 5 should overflow")
	}
	if tr.Overflows != 1 {
		t.Fatalf("Overflows = %d, want 1", tr.Overflows)
	}
	// Popping creates input space; a push that finds the output full can
	// now swap into the input.
	if a, ok := tr.Pop(); !ok || a == 0 {
		t.Fatal("pop failed")
	}
	if !tr.Push(6) {
		t.Fatal("push after pop failed")
	}
	if tr.Swaps == 0 {
		t.Fatal("expected a swap to have occurred")
	}
	tr.Release()
}

func TestTracerDeferred(t *testing.T) {
	p := NewPool(4, 2)
	tr := NewTracer(p)
	if !tr.PushDeferred(11) || !tr.PushDeferred(12) || !tr.PushDeferred(13) {
		t.Fatal("deferred pushes failed")
	}
	tr.Release()
	if p.Count(Deferred) != 2 {
		t.Fatalf("Deferred count = %d, want 2", p.Count(Deferred))
	}
	if p.DrainDeferred() != 2 {
		t.Fatal("drain count wrong")
	}
	seen := 0
	tr2 := NewTracer(p)
	for {
		_, ok := tr2.Pop()
		if !ok {
			break
		}
		seen++
	}
	tr2.Release()
	if seen != 3 {
		t.Fatalf("recirculated %d deferred entries, want 3", seen)
	}
}

func TestNewPoolValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewPool(0, 8) },
		func() { NewPool(4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	p := NewPool(2, 0)
	if p.Capacity() != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", p.Capacity(), DefaultCapacity)
	}
}

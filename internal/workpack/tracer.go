package workpack

import (
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

// hoardCap bounds the pool.hoard fault so the hoard slice cannot grow without
// limit. The bound is deliberately larger than any realistic pool: the fault
// is only convincing when the hoarder can absorb the whole tracing frontier —
// sibling tracers then starve mid-phase exactly as a real work-hogging thread
// would starve them, and the pool's exhaustion degradations (overflow to
// mark+dirty-card) carry the cycle.
const hoardCap = 256

// hoardDrainStreak is how many consecutive dry input acquisitions a hoarding
// tracer waits before it starts serving its own hoard. Transient mid-phase
// dry spells (refilled within a driver poll by barrier or recirculated work)
// stay below the streak, so the hoard survives to the end of the phase and
// drains as a solo stalled tail — the shape a real work-hogging thread gives
// the termination detector.
const hoardDrainStreak = 8

// Tracer enforces the per-thread work packet discipline of Sections 4.1 and
// 4.3: pops come only from the input packet, pushes go only to the output
// packet, replacement always gets the new packet before returning the old
// one (so termination detection never observes a transient all-empty
// state), and a full-output/full-input condition degrades to the overflow
// fallback instead of blocking.
//
// A Tracer belongs to a single thread. Mutators create one per tracing
// increment (or keep one per thread and Release between increments);
// background threads keep one for as long as they trace.
type Tracer struct {
	pool  *Pool
	local *LocalPool // optional per-worker cache; nil routes straight to pool

	in  *Packet // pops only
	out *Packet // pushes only
	def *Packet // deferred "unsafe" objects (Section 5.2), pushes only

	// Overflows counts pushes that failed because both packets were full
	// and the pool had no usable output; the caller treats each by marking
	// the object and dirtying its card (Section 4.3).
	Overflows int64
	// Swaps counts input/output role swaps (the one exception to the
	// no-swap rule).
	Swaps int64

	// led is the optional work-flow ledger (nil: accounting off, hot paths
	// cost one pointer test). Set before the tracer does work.
	led *Ledger

	// hoardPt arms the pool.hoard fault: a firing hit on a non-empty put
	// withholds the packet in hoard instead of returning it. The hoard is
	// invisible to the sub-pools and the steal windows; Pop falls back to
	// it only when no other work exists, so the hoarder eventually does the
	// withheld work itself and Release drains any remainder — Gets==Puts
	// and packet conservation still close at quiescence.
	hoardPt *faultinject.Point
	hoard   []*Packet
	// dryStreak counts consecutive dry input acquisitions; the hoard only
	// drains once it reaches hoardDrainStreak (any global hit resets it).
	dryStreak int
}

// NewTracer returns a tracer drawing packets from pool. It acquires nothing
// until work demands it.
func NewTracer(pool *Pool) *Tracer { return &Tracer{pool: pool} }

// NewLocalTracer returns a tracer that routes packet traffic through a
// worker's LocalPool cache; misses fall through to the shared pool.
func NewLocalTracer(lp *LocalPool) *Tracer {
	return &Tracer{pool: lp.Pool(), local: lp}
}

// Pool returns the pool this tracer draws from.
func (t *Tracer) Pool() *Pool { return t.pool }

// Local returns the tracer's local cache, or nil.
func (t *Tracer) Local() *LocalPool { return t.local }

// SetLedger attaches a work-flow ledger (nil detaches). Owner-only; call
// before the tracer is used.
func (t *Tracer) SetLedger(l *Ledger) { t.led = l }

// Ledger returns the attached ledger, or nil.
func (t *Tracer) Ledger() *Ledger { return t.led }

// InjectHoard arms the pool.hoard fault point on this tracer (nil leaves it
// disabled). Owner-only; call before the tracer is used.
func (t *Tracer) InjectHoard(p *faultinject.Point) { t.hoardPt = p }

// HoardHeld returns how many packets the tracer currently withholds.
func (t *Tracer) HoardHeld() int { return len(t.hoard) }

func (t *Tracer) getInput() *Packet {
	led := t.led
	if led == nil {
		if t.local != nil {
			return t.local.GetInput()
		}
		return t.pool.GetInput()
	}
	start := time.Now()
	var pkt *Packet
	if t.local != nil {
		pkt = t.local.getInput(led)
	} else {
		pkt = t.pool.getInput(led)
	}
	led.PoolNs.Add(time.Since(start).Nanoseconds())
	return pkt
}

func (t *Tracer) getOutput() *Packet {
	led := t.led
	if led == nil {
		if t.local != nil {
			return t.local.GetOutput()
		}
		return t.pool.GetOutput()
	}
	start := time.Now()
	var pkt *Packet
	if t.local != nil {
		pkt = t.local.getOutput(led)
	} else {
		pkt = t.pool.getOutput(led)
	}
	led.PoolNs.Add(time.Since(start).Nanoseconds())
	return pkt
}

func (t *Tracer) getEmpty() *Packet {
	led := t.led
	if led == nil {
		if t.local != nil {
			return t.local.GetEmpty()
		}
		return t.pool.GetEmpty()
	}
	start := time.Now()
	var pkt *Packet
	if t.local != nil {
		pkt = t.local.getEmpty(led)
	} else {
		pkt = t.pool.getEmpty(led)
	}
	led.PoolNs.Add(time.Since(start).Nanoseconds())
	return pkt
}

func (t *Tracer) put(pkt *Packet) {
	if t.hoardPt != nil && !pkt.Empty() && len(t.hoard) < hoardCap && t.hoardPt.Fire() {
		t.hoardPacket(pkt)
		return
	}
	t.putThrough(pkt)
}

func (t *Tracer) hoardPacket(pkt *Packet) {
	t.hoard = append(t.hoard, pkt)
	if led := t.led; led != nil {
		led.Hoarded.Add(1)
		led.HoardHeld.Add(1)
	}
}

// putThrough returns a packet to the tier without consulting the hoard fault
// (Release drains the hoard through here, so a firing point cannot re-hoard
// its own drain).
func (t *Tracer) putThrough(pkt *Packet) {
	led := t.led
	if led == nil {
		if t.local != nil {
			t.local.Put(pkt)
			return
		}
		t.pool.Put(pkt)
		return
	}
	if !pkt.Empty() {
		led.Produced.Add(1)
	}
	start := time.Now()
	if t.local != nil {
		t.local.Put(pkt)
	} else {
		t.pool.Put(pkt)
	}
	led.PoolNs.Add(time.Since(start).Nanoseconds())
}

func (t *Tracer) putDeferred(pkt *Packet) {
	led := t.led
	if led == nil {
		if t.local != nil {
			t.local.PutDeferred(pkt)
			return
		}
		t.pool.PutDeferred(pkt)
		return
	}
	if !pkt.Empty() {
		led.Produced.Add(1)
	}
	start := time.Now()
	if t.local != nil {
		t.local.PutDeferred(pkt)
	} else {
		t.pool.PutDeferred(pkt)
	}
	led.PoolNs.Add(time.Since(start).Nanoseconds())
}

// takeHoard returns the most recently withheld packet, if any.
func (t *Tracer) takeHoard() *Packet {
	n := len(t.hoard)
	if n == 0 {
		return nil
	}
	pkt := t.hoard[n-1]
	t.hoard = t.hoard[:n-1]
	if led := t.led; led != nil {
		led.HoardHeld.Add(-1)
	}
	return pkt
}

// acquireForPop is Pop's packet source. The hoard-armed path models the
// Section 6.3 load-balance failure: whenever the hoarder needs input it
// batch-claims every packet it can see into its private hoard — work that
// becomes invisible to the sub-pools and steal windows and keeps TracingDone
// false. The hoard is only traced back out once the shared tier has been dry
// for a sustained streak (the end of the phase, in practice), by the hoarder
// alone, with an optional per-packet stall from the fault spec
// ("pool.hoard=on:100us") — so the phase ends in a solo stalled tail that
// the termination detector must wait out while the siblings idle.
func (t *Tracer) acquireForPop() *Packet {
	pkt := t.getInput()
	if pkt != nil {
		t.dryStreak = 0
		if t.hoardPt != nil && len(t.hoard) < hoardCap && t.hoardPt.Fire() {
			for len(t.hoard) < hoardCap {
				vp := t.getInput()
				if vp == nil {
					break
				}
				t.hoardPacket(vp)
			}
		}
		return pkt
	}
	if t.dryStreak++; t.dryStreak >= hoardDrainStreak {
		if pkt = t.takeHoard(); pkt != nil {
			t.hoardPt.Sleep()
		}
	}
	return pkt
}

// HoldsPackets reports whether the tracer currently owns any packet.
func (t *Tracer) HoldsPackets() bool {
	return t.in != nil || t.out != nil || t.def != nil || len(t.hoard) > 0
}

// Input exposes the current input packet (may be nil); the Section 5.2
// allocation-bit pre-scan reads it wholesale before popping.
func (t *Tracer) Input() *Packet { return t.in }

// Pop returns the next reference to trace. It replaces an exhausted input
// packet by first getting a new non-empty packet and only then returning
// the old empty one. It reports false when the pool has no tracing work;
// the caller then does other concurrent tasks (card cleaning), quits, or
// yields (Section 4.3). A hoarding tracer (pool.hoard) serves its own hoard
// first, so withheld work is done by the hoarder itself rather than lost.
func (t *Tracer) Pop() (heapsim.Addr, bool) {
	for {
		if t.in == nil {
			t.in = t.acquireForPop()
			if t.in == nil {
				return heapsim.Nil, false
			}
		}
		if a, ok := t.in.Pop(); ok {
			return a, true
		}
		// Input exhausted: get-new-before-return-old.
		np := t.acquireForPop()
		if np == nil {
			// Keep the empty input; if the output has work we may swap
			// into it on the caller's next attempt, and Release will
			// return it.
			return heapsim.Nil, false
		}
		t.put(t.in)
		t.in = np
	}
}

// Push records a newly marked reference for later tracing. It reports false
// on overflow — both packets full and no usable pool packet — in which case
// the caller must dirty the object's card so the card-cleaning pass retraces
// it.
func (t *Tracer) Push(a heapsim.Addr) bool {
	if t.out == nil {
		t.out = t.getOutput()
		if t.out == nil {
			return t.pushBySwap(a)
		}
	}
	if t.out.Push(a) {
		return true
	}
	// Output full: get a replacement first, then return the full one.
	if np := t.getOutput(); np != nil {
		if !np.Full() {
			t.put(t.out)
			t.out = np
			return t.out.Push(a)
		}
		// The pool could only offer another full packet; give it back.
		t.put(np)
	}
	return t.pushBySwap(a)
}

// pushBySwap tries the input/output swap exception; failing that it records
// an overflow.
func (t *Tracer) pushBySwap(a heapsim.Addr) bool {
	if t.in != nil && !t.in.Full() {
		// After the swap the new output is the old (non-full) input, so
		// this push always succeeds.
		t.in, t.out = t.out, t.in
		t.Swaps++
		return t.out.Push(a)
	}
	t.Overflows++
	return false
}

// PushDeferred stores a reference whose object's allocation bit was not yet
// visible (Section 5.2). Deferred entries collect in a dedicated packet that
// Release files into the Deferred sub-pool; DrainDeferred later recirculates
// them.
func (t *Tracer) PushDeferred(a heapsim.Addr) bool {
	if t.def != nil && t.def.Full() {
		np := t.getEmpty()
		if np != nil {
			t.putDeferred(t.def)
			t.def = np
		}
	}
	if t.def == nil {
		t.def = t.getEmpty()
		if t.def == nil {
			return false
		}
	}
	return t.def.Push(a)
}

// Release returns the working packets (input, output, deferred) to the pool.
// Mutators call it at the end of each tracing increment so their buffered
// work becomes available to the other threads competing for input. A hoard
// deliberately survives Release — releasing on every dry spell would hand the
// withheld work straight back — so a worker that is done for good must also
// call DrainHoard.
func (t *Tracer) Release() {
	if t.in != nil {
		t.put(t.in)
		t.in = nil
	}
	if t.out != nil {
		t.put(t.out)
		t.out = nil
	}
	if t.def != nil {
		t.putDeferred(t.def)
		t.def = nil
	}
}

// DrainHoard returns every hoarded packet to the pool, bypassing the hoard
// fault. Workers call it on shutdown (after the final Release) so every exit
// path — including a wedge abort — restores pool conservation.
func (t *Tracer) DrainHoard() {
	for {
		pkt := t.takeHoard()
		if pkt == nil {
			return
		}
		t.putThrough(pkt)
	}
}

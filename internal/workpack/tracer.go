package workpack

import "mcgc/internal/heapsim"

// Tracer enforces the per-thread work packet discipline of Sections 4.1 and
// 4.3: pops come only from the input packet, pushes go only to the output
// packet, replacement always gets the new packet before returning the old
// one (so termination detection never observes a transient all-empty
// state), and a full-output/full-input condition degrades to the overflow
// fallback instead of blocking.
//
// A Tracer belongs to a single thread. Mutators create one per tracing
// increment (or keep one per thread and Release between increments);
// background threads keep one for as long as they trace.
type Tracer struct {
	pool  *Pool
	local *LocalPool // optional per-worker cache; nil routes straight to pool

	in  *Packet // pops only
	out *Packet // pushes only
	def *Packet // deferred "unsafe" objects (Section 5.2), pushes only

	// Overflows counts pushes that failed because both packets were full
	// and the pool had no usable output; the caller treats each by marking
	// the object and dirtying its card (Section 4.3).
	Overflows int64
	// Swaps counts input/output role swaps (the one exception to the
	// no-swap rule).
	Swaps int64
}

// NewTracer returns a tracer drawing packets from pool. It acquires nothing
// until work demands it.
func NewTracer(pool *Pool) *Tracer { return &Tracer{pool: pool} }

// NewLocalTracer returns a tracer that routes packet traffic through a
// worker's LocalPool cache; misses fall through to the shared pool.
func NewLocalTracer(lp *LocalPool) *Tracer {
	return &Tracer{pool: lp.Pool(), local: lp}
}

// Pool returns the pool this tracer draws from.
func (t *Tracer) Pool() *Pool { return t.pool }

// Local returns the tracer's local cache, or nil.
func (t *Tracer) Local() *LocalPool { return t.local }

func (t *Tracer) getInput() *Packet {
	if t.local != nil {
		return t.local.GetInput()
	}
	return t.pool.GetInput()
}

func (t *Tracer) getOutput() *Packet {
	if t.local != nil {
		return t.local.GetOutput()
	}
	return t.pool.GetOutput()
}

func (t *Tracer) getEmpty() *Packet {
	if t.local != nil {
		return t.local.GetEmpty()
	}
	return t.pool.GetEmpty()
}

func (t *Tracer) put(pkt *Packet) {
	if t.local != nil {
		t.local.Put(pkt)
		return
	}
	t.pool.Put(pkt)
}

func (t *Tracer) putDeferred(pkt *Packet) {
	if t.local != nil {
		t.local.PutDeferred(pkt)
		return
	}
	t.pool.PutDeferred(pkt)
}

// HoldsPackets reports whether the tracer currently owns any packet.
func (t *Tracer) HoldsPackets() bool { return t.in != nil || t.out != nil || t.def != nil }

// Input exposes the current input packet (may be nil); the Section 5.2
// allocation-bit pre-scan reads it wholesale before popping.
func (t *Tracer) Input() *Packet { return t.in }

// Pop returns the next reference to trace. It replaces an exhausted input
// packet by first getting a new non-empty packet and only then returning
// the old empty one. It reports false when the pool has no tracing work;
// the caller then does other concurrent tasks (card cleaning), quits, or
// yields (Section 4.3).
func (t *Tracer) Pop() (heapsim.Addr, bool) {
	for {
		if t.in == nil {
			t.in = t.getInput()
			if t.in == nil {
				return heapsim.Nil, false
			}
		}
		if a, ok := t.in.Pop(); ok {
			return a, true
		}
		// Input exhausted: get-new-before-return-old.
		np := t.getInput()
		if np == nil {
			// Keep the empty input; if the output has work we may swap
			// into it on the caller's next attempt, and Release will
			// return it.
			return heapsim.Nil, false
		}
		t.put(t.in)
		t.in = np
	}
}

// Push records a newly marked reference for later tracing. It reports false
// on overflow — both packets full and no usable pool packet — in which case
// the caller must dirty the object's card so the card-cleaning pass retraces
// it.
func (t *Tracer) Push(a heapsim.Addr) bool {
	if t.out == nil {
		t.out = t.getOutput()
		if t.out == nil {
			return t.pushBySwap(a)
		}
	}
	if t.out.Push(a) {
		return true
	}
	// Output full: get a replacement first, then return the full one.
	if np := t.getOutput(); np != nil {
		if !np.Full() {
			t.put(t.out)
			t.out = np
			return t.out.Push(a)
		}
		// The pool could only offer another full packet; give it back.
		t.put(np)
	}
	return t.pushBySwap(a)
}

// pushBySwap tries the input/output swap exception; failing that it records
// an overflow.
func (t *Tracer) pushBySwap(a heapsim.Addr) bool {
	if t.in != nil && !t.in.Full() {
		// After the swap the new output is the old (non-full) input, so
		// this push always succeeds.
		t.in, t.out = t.out, t.in
		t.Swaps++
		return t.out.Push(a)
	}
	t.Overflows++
	return false
}

// PushDeferred stores a reference whose object's allocation bit was not yet
// visible (Section 5.2). Deferred entries collect in a dedicated packet that
// Release files into the Deferred sub-pool; DrainDeferred later recirculates
// them.
func (t *Tracer) PushDeferred(a heapsim.Addr) bool {
	if t.def != nil && t.def.Full() {
		np := t.getEmpty()
		if np != nil {
			t.putDeferred(t.def)
			t.def = np
		}
	}
	if t.def == nil {
		t.def = t.getEmpty()
		if t.def == nil {
			return false
		}
	}
	return t.def.Push(a)
}

// Release returns every held packet to the pool. Mutators call it at the
// end of each tracing increment so their buffered work becomes available to
// the other threads competing for input.
func (t *Tracer) Release() {
	if t.in != nil {
		t.put(t.in)
		t.in = nil
	}
	if t.out != nil {
		t.put(t.out)
		t.out = nil
	}
	if t.def != nil {
		t.putDeferred(t.def)
		t.def = nil
	}
}

// Package workpack implements the work packet load-balancing mechanism of
// Section 4 of the paper: fixed-capacity packets of grey references,
// organised in a global pool of occupancy-ranged sub-pools accessed with
// lock-free versioned-head lists.
//
// The mechanism's three key points, all implemented here:
//
//  1. a tracing thread's input is separated from its output and threads
//     compete for input, which yields load balancing by construction;
//  2. synchronization is a single compare-and-swap per get/put (the ABA
//     problem is avoided with a version tag in the list head, following
//     the paper's reference to z/Architecture appendix A);
//  3. the sub-pool packet counters identify the global tracing state —
//     termination is detected when the empty sub-pool holds every packet.
//
// The package is safe for real concurrent use and is exercised by
// goroutine stress tests; under the machine simulator its atomics are
// uncontended and cheap.
package workpack

import (
	"fmt"
	"sync/atomic"

	"mcgc/internal/heapsim"
)

// DefaultCapacity is the per-packet entry capacity used in the paper's
// evaluation ("each packet holds up to 493 entries").
const DefaultCapacity = 493

// Packet is a small bounded stack of grey object references. A packet is
// owned by at most one thread at a time; only its owner may push or pop.
// Ownership transfers through the Pool.
type Packet struct {
	id   int32
	next atomic.Int32 // sub-pool list link: packet index, or -1

	n       int
	entries []heapsim.Addr

	pool *Pool
}

// ID returns the packet's index within its pool.
func (p *Packet) ID() int32 { return p.id }

// Len returns the number of entries in the packet.
func (p *Packet) Len() int { return p.n }

// Cap returns the packet's capacity.
func (p *Packet) Cap() int { return cap(p.entries) }

// Empty reports whether the packet holds no entries.
func (p *Packet) Empty() bool { return p.n == 0 }

// Full reports whether the packet is at capacity.
func (p *Packet) Full() bool { return p.n == cap(p.entries) }

// Push appends a reference; it reports false when the packet is full.
func (p *Packet) Push(a heapsim.Addr) bool {
	if p.n == cap(p.entries) {
		return false
	}
	p.entries = p.entries[:p.n+1]
	p.entries[p.n] = a
	p.n++
	p.pool.noteEntries(1)
	return true
}

// Pop removes and returns the most recently pushed reference.
func (p *Packet) Pop() (heapsim.Addr, bool) {
	if p.n == 0 {
		return heapsim.Nil, false
	}
	p.n--
	a := p.entries[p.n]
	p.entries = p.entries[:p.n]
	p.pool.noteEntries(-1)
	return a, true
}

// Peek returns the entry that the next Pop will yield without removing it.
// Work packets make the next object to trace known in advance, which the
// paper exploits for prefetching; Peek models that property.
func (p *Packet) Peek() (heapsim.Addr, bool) {
	if p.n == 0 {
		return heapsim.Nil, false
	}
	return p.entries[p.n-1], true
}

// Entries exposes the live entries for read-only iteration (the Section 5.2
// allocation-bit pre-scan walks a whole input packet before popping).
func (p *Packet) Entries() []heapsim.Addr { return p.entries[:p.n] }

// SubPool identifies one of the pool's occupancy-ranged sub-pools.
type SubPool int

// The sub-pools of Section 4.2, plus the Deferred pool of Section 5.2 that
// holds packets of objects whose allocation bits were not yet visible.
const (
	Empty      SubPool = iota // no entries
	Nonempty                  // under half full
	AlmostFull                // at least half full, including totally full
	Deferred                  // deferred "unsafe" objects (weak ordering protocol)
	// NumSubPools bounds the SubPool values; Pool.Occupancy is indexed by it.
	NumSubPools
)

// String returns the sub-pool's name.
func (s SubPool) String() string {
	switch s {
	case Empty:
		return "empty"
	case Nonempty:
		return "non-empty"
	case AlmostFull:
		return "almost-full"
	case Deferred:
		return "deferred"
	default:
		return fmt.Sprintf("subpool(%d)", int(s))
	}
}

// classify returns the sub-pool a packet belongs in by occupancy.
func classify(p *Packet) SubPool {
	switch {
	case p.n == 0:
		return Empty
	case p.n*2 < cap(p.entries):
		return Nonempty
	default:
		return AlmostFull
	}
}

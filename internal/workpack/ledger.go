package workpack

// The per-tracer work-flow ledger: Section 6.3 evaluates load balancing by
// how evenly tracing work spreads across parallel threads and how quickly
// termination is detected, which the pool's aggregate counters cannot show —
// a pool where one tracer does all the work and seven idle has the same
// Gets/Puts totals as a perfectly balanced one. A Ledger is one worker's
// account of where its packets came from (the global sub-pools, its own
// local cache, or a steal from a sibling's window), what it produced and
// traced, and where its time went (idle spin between pops, synchronization
// inside the shared pool). The live engine snapshots ledgers per cycle and
// the gcstats -balance view reduces them to skew, idle fraction, steal-hit
// rate and termination latency.
//
// The ledger follows the telemetry layer's nil discipline: a nil *Ledger is
// the disabled state, every method no-ops on it, and an uninstrumented
// Tracer carries exactly one extra pointer test on its hot paths — no
// timestamps, no atomics, no allocation.

import "sync/atomic"

// AcqSrc classifies where a packet acquisition was satisfied.
type AcqSrc uint8

const (
	// SrcNone marks a failed acquisition (no packet anywhere).
	SrcNone AcqSrc = iota
	// SrcGlobal is a pop from the shared sub-pools (including a local
	// cache's batch refill, which is global traffic by another name).
	SrcGlobal
	// SrcLocal is a hit in the worker's own LocalPool cache.
	SrcLocal
	// SrcSteal is a claim from a sibling worker's steal window.
	SrcSteal
)

// Ledger is one worker's work-flow account. All fields are atomics because
// the owner keeps writing while the driver snapshots mid-run (tracers are
// never parked, even during a pause); owner writes are uncontended, so each
// costs an uncontended atomic add only when the ledger is armed.
type Ledger struct {
	AcqGlobal atomic.Int64 // packets acquired from the global sub-pools
	AcqLocal  atomic.Int64 // packets acquired from the worker's own cache
	AcqSteal  atomic.Int64 // packets claimed from sibling steal windows

	Produced atomic.Int64 // non-empty packets returned for others to trace
	Objects  atomic.Int64 // objects this worker scanned
	Words    atomic.Int64 // reference slots this worker traced

	StealAttempts atomic.Int64 // times the steal scan was reached
	StealHits     atomic.Int64 // steal scans that claimed a packet

	IdleNs atomic.Int64 // time spent sleeping because Pop found no work
	PoolNs atomic.Int64 // time spent inside shared-pool get/put operations

	Hoarded   atomic.Int64 // packets withheld by the pool.hoard fault (cumulative)
	HoardHeld atomic.Int64 // packets currently withheld (rises and falls)
}

// noteAcq charges one packet acquisition to its source. Nil-safe.
func (l *Ledger) noteAcq(src AcqSrc) {
	if l == nil {
		return
	}
	switch src {
	case SrcGlobal:
		l.AcqGlobal.Add(1)
	case SrcLocal:
		l.AcqLocal.Add(1)
	case SrcSteal:
		l.AcqSteal.Add(1)
	}
}

// NoteTraced charges one scanned object and its traced slot words. Nil-safe.
func (l *Ledger) NoteTraced(words int64) {
	if l == nil {
		return
	}
	l.Objects.Add(1)
	l.Words.Add(words)
}

// NoteIdle charges idle-spin time spent waiting for tracing work. Nil-safe.
func (l *Ledger) NoteIdle(ns int64) {
	if l == nil {
		return
	}
	l.IdleNs.Add(ns)
}

// LedgerSnap is a plain-integer snapshot of a Ledger, safe to copy, subtract
// and aggregate without atomics.
type LedgerSnap struct {
	AcqGlobal, AcqLocal, AcqSteal int64
	Produced, Objects, Words      int64
	StealAttempts, StealHits      int64
	IdleNs, PoolNs                int64
	Hoarded, HoardHeld            int64
}

// Snap reads every counter once. The fields are loaded individually, so a
// snapshot taken mid-run is per-field consistent, not cross-field atomic —
// the same contract every other racy estimate in the pool offers. Nil-safe:
// a nil ledger snapshots to zeros.
func (l *Ledger) Snap() LedgerSnap {
	if l == nil {
		return LedgerSnap{}
	}
	return LedgerSnap{
		AcqGlobal:     l.AcqGlobal.Load(),
		AcqLocal:      l.AcqLocal.Load(),
		AcqSteal:      l.AcqSteal.Load(),
		Produced:      l.Produced.Load(),
		Objects:       l.Objects.Load(),
		Words:         l.Words.Load(),
		StealAttempts: l.StealAttempts.Load(),
		StealHits:     l.StealHits.Load(),
		IdleNs:        l.IdleNs.Load(),
		PoolNs:        l.PoolNs.Load(),
		Hoarded:       l.Hoarded.Load(),
		HoardHeld:     l.HoardHeld.Load(),
	}
}

// Sub returns the per-field difference s - prev (the delta of one cycle).
func (s LedgerSnap) Sub(prev LedgerSnap) LedgerSnap {
	return LedgerSnap{
		AcqGlobal:     s.AcqGlobal - prev.AcqGlobal,
		AcqLocal:      s.AcqLocal - prev.AcqLocal,
		AcqSteal:      s.AcqSteal - prev.AcqSteal,
		Produced:      s.Produced - prev.Produced,
		Objects:       s.Objects - prev.Objects,
		Words:         s.Words - prev.Words,
		StealAttempts: s.StealAttempts - prev.StealAttempts,
		StealHits:     s.StealHits - prev.StealHits,
		IdleNs:        s.IdleNs - prev.IdleNs,
		PoolNs:        s.PoolNs - prev.PoolNs,
		Hoarded:       s.Hoarded - prev.Hoarded,
		HoardHeld:     s.HoardHeld - prev.HoardHeld,
	}
}

// Acquired returns the total packets acquired from any source.
func (s LedgerSnap) Acquired() int64 { return s.AcqGlobal + s.AcqLocal + s.AcqSteal }

// Active reports whether the snapshot records any activity at all.
func (s LedgerSnap) Active() bool {
	return s.Acquired() != 0 || s.Produced != 0 || s.Objects != 0 || s.Words != 0 ||
		s.StealAttempts != 0 || s.IdleNs != 0 || s.PoolNs != 0 || s.Hoarded != 0
}

package workpack

import (
	"runtime"
	"sync"
	"testing"

	"mcgc/internal/heapsim"
)

// flushAll returns every registered local cache's packets to the global pool.
func flushAll(p *Pool) {
	if lps := p.locals.Load(); lps != nil {
		for _, lp := range *lps {
			lp.Flush()
		}
	}
}

// checkLocalQuiescent asserts the extended quiescence invariants of a pool
// with local caches still holding packets: every packet is in exactly one
// place (a global sub-pool or a local cache), and after flushing the locals
// the classic global invariants (all packets pooled, Gets == Puts) hold.
func checkLocalQuiescent(t *testing.T, p *Pool, packets int) {
	t.Helper()
	inPools := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		inPools += p.Count(s)
	}
	cachedEmpty, cachedReady := p.LocalCached()
	if got := int64(inPools) + cachedEmpty + cachedReady; got != int64(packets) {
		t.Fatalf("pooled %d + cached %d empty + %d ready = %d, want %d",
			inPools, cachedEmpty, cachedReady, got, packets)
	}
	flushAll(p)
	checkQuiescent(t, p, packets)
}

// TestLocalPoolCacheCycle drives the owner-only fast path: after the first
// refill, a get/put cycle of empty packets never touches the global pool.
func TestLocalPoolCacheCycle(t *testing.T) {
	p := NewPool(16, 8)
	lp := p.NewLocal(4)

	pkt := lp.GetOutput() // first get: batch refill from the global Empty pool
	if pkt == nil {
		t.Fatal("GetOutput failed on fresh pool")
	}
	if lp.Stats.Refills.Load() != 1 {
		t.Fatalf("refills = %d, want 1", lp.Stats.Refills.Load())
	}
	if lp.CachedEmpty() == 0 {
		t.Fatal("batch refill cached nothing beyond the returned packet")
	}
	lp.Put(pkt)

	getsBefore := p.Stats.Gets.Load()
	for i := 0; i < 100; i++ {
		pkt := lp.GetOutput()
		if pkt == nil {
			t.Fatal("cached GetOutput failed")
		}
		lp.Put(pkt)
	}
	if got := p.Stats.Gets.Load(); got != getsBefore {
		t.Fatalf("cached cycle did %d global gets, want 0", got-getsBefore)
	}
	if lp.Stats.Hits.Load() < 100 {
		t.Fatalf("hits = %d, want >= 100", lp.Stats.Hits.Load())
	}
	checkLocalQuiescent(t, p, 16)
}

// TestLocalPoolTracingDoneAccounting pins the termination accounting: cached
// empty packets count toward TracingDone, cached ready packets hold it false.
func TestLocalPoolTracingDoneAccounting(t *testing.T) {
	p := NewPool(8, 4)
	lp := p.NewLocal(4)

	// An empty packet parked in the cache still counts as "empty" for the
	// termination test.
	pkt := lp.GetEmpty()
	lp.Put(pkt)
	if lp.CachedEmpty() == 0 {
		t.Fatal("empty packet not cached")
	}
	if !p.TracingDone() {
		t.Fatal("TracingDone false with all packets empty (some cached)")
	}

	// A non-empty packet in the steal window must hold termination off.
	pkt = lp.GetOutput()
	pkt.Push(heapsim.Addr(1))
	lp.Put(pkt)
	if lp.CachedReady() != 1 {
		t.Fatalf("ready window holds %d, want 1", lp.CachedReady())
	}
	if p.TracingDone() {
		t.Fatal("TracingDone true with a ready packet cached locally")
	}
	if !p.HasTracingWork() {
		t.Fatal("HasTracingWork false with a stealable packet cached")
	}

	// Draining it (via the owner's own GetInput) and returning it empty
	// re-enables termination.
	in := lp.GetInput()
	if in == nil {
		t.Fatal("owner could not reclaim its own ready packet")
	}
	in.Pop()
	lp.Put(in)
	if !p.TracingDone() {
		t.Fatal("TracingDone false after all work drained")
	}
	checkLocalQuiescent(t, p, 8)
}

// TestLocalPoolSiblingSteal verifies the steal window end to end: work parked
// in one worker's cache is claimable by a sibling through the plain global
// Pool.GetInput, and the steal is not double-counted as a global get.
func TestLocalPoolSiblingSteal(t *testing.T) {
	p := NewPool(8, 4)
	victim := p.NewLocal(4)

	pkt := victim.GetOutput()
	pkt.Push(heapsim.Addr(42))
	victim.Put(pkt)
	if victim.CachedReady() != 1 {
		t.Fatalf("victim caches %d ready, want 1", victim.CachedReady())
	}

	getsBefore := p.Stats.Gets.Load()
	stolen := p.GetInput() // a thief with no local cache of its own
	if stolen != pkt {
		t.Fatalf("GetInput stole %v, want packet %d", stolen, pkt.ID())
	}
	if got := p.Stats.Gets.Load(); got != getsBefore {
		t.Fatal("steal counted as a global get — Gets/Puts symmetry broken")
	}
	if p.steals.Load() != 1 || victim.Stats.Stolen.Load() != 1 {
		t.Fatalf("steals = %d, victim stolen = %d, want 1/1",
			p.steals.Load(), victim.Stats.Stolen.Load())
	}
	if a, ok := stolen.Pop(); !ok || a != 42 {
		t.Fatalf("stolen packet pops %d,%v, want 42", a, ok)
	}
	p.Put(stolen)
	checkLocalQuiescent(t, p, 8)
}

// TestLocalTracerConservation runs the full concurrent storm through
// local-tier tracers and checks the extended conservation identity: at
// quiescence every packet is pooled or cached, and after the workers' exit
// flushes the global invariants close exactly.
func TestLocalTracerConservation(t *testing.T) {
	const (
		packets = 32
		workers = 8
		rounds  = 2000
	)
	p := NewPool(packets, 16)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			lp := p.NewLocal(4)
			tr := NewLocalTracer(lp)
			for r := 0; r < rounds; r++ {
				v := heapsim.Addr(seed*rounds + r + 1)
				if (seed+r)%2 == 0 {
					if !tr.Push(v) {
						tr.Release()
						runtime.Gosched()
					}
				} else {
					tr.Pop()
				}
			}
			tr.Release()
			lp.Flush()
		}(w)
	}
	wg.Wait()

	total := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		total += p.Count(s)
	}
	cachedEmpty, cachedReady := p.LocalCached()
	if cachedEmpty != 0 || cachedReady != 0 {
		t.Fatalf("caches hold %d empty + %d ready after flush, want 0",
			cachedEmpty, cachedReady)
	}
	if total != packets {
		t.Fatalf("sub-pool counts sum to %d, want %d", total, packets)
	}
	if gets, puts := p.Stats.Gets.Load(), p.Stats.Puts.Load(); gets != puts {
		t.Fatalf("gets %d != puts %d at quiescence", gets, puts)
	}
	checkQuiescent(t, p, packets)
}

// TestLocalTracerDrainTerminates is the termination-safety test: two local
// tracers pushing through their caches must still reach TracingDone once
// everything is popped and released, with no packet hiding in a cache.
func TestLocalTracerDrainTerminates(t *testing.T) {
	p := NewPool(8, 4)
	a := p.NewLocal(2)
	b := p.NewLocal(2)
	ta, tb := NewLocalTracer(a), NewLocalTracer(b)

	for i := 1; i <= 20; i++ {
		if !ta.Push(heapsim.Addr(i)) {
			break
		}
	}
	ta.Release()

	// b drains everything a produced — through steals where needed.
	seen := 0
	for {
		_, ok := tb.Pop()
		if !ok {
			tb.Release()
			if !p.HasTracingWork() {
				break
			}
			continue
		}
		seen++
	}
	if seen == 0 {
		t.Fatal("b drained nothing")
	}
	a.Flush()
	b.Flush()
	if !p.TracingDone() {
		cachedEmpty, cachedReady := p.LocalCached()
		t.Fatalf("tracing not done after full drain (cached %d empty, %d ready)",
			cachedEmpty, cachedReady)
	}
	checkQuiescent(t, p, 8)
}

// TestLocalPoolSpillBounded fills the cache past capacity and checks the
// batch spill: the cache never exceeds cap and the spilled packets land in
// the global Empty sub-pool with Puts accounted.
func TestLocalPoolSpillBounded(t *testing.T) {
	p := NewPool(32, 4)
	lp := p.NewLocal(4)

	// Check out more empties than the cache can hold, then return them all.
	var held []*Packet
	for i := 0; i < 12; i++ {
		pkt := p.GetEmpty()
		if pkt == nil {
			t.Fatalf("pool ran out at %d", i)
		}
		held = append(held, pkt)
	}
	for _, pkt := range held {
		lp.Put(pkt)
		if lp.CachedEmpty() > lp.Cap() {
			t.Fatalf("cache holds %d > cap %d", lp.CachedEmpty(), lp.Cap())
		}
	}
	if lp.Stats.Spills.Load() == 0 {
		t.Fatal("overfull cache never spilled")
	}
	checkLocalQuiescent(t, p, 32)
}

// TestLocalPoolZeroAllocSteadyState pins the steady-state get/put cycle —
// the hot path the tier exists for — at zero heap allocations.
func TestLocalPoolZeroAllocSteadyState(t *testing.T) {
	p := NewPool(16, 8)
	lp := p.NewLocal(4)
	// Warm the cache so the measured loop is pure cache traffic.
	pkt := lp.GetOutput()
	lp.Put(pkt)

	if avg := testing.AllocsPerRun(200, func() {
		pkt := lp.GetOutput()
		pkt.Push(heapsim.Addr(1))
		pkt.Pop()
		lp.Put(pkt)
	}); avg != 0 {
		t.Fatalf("steady-state local cycle allocates %.1f per op, want 0", avg)
	}
	// Refill/spill batches reuse the scratch buffer: a cold get (cache
	// emptied by Flush) must not allocate either once scratch has grown.
	lp.Flush()
	if avg := testing.AllocsPerRun(50, func() {
		pkt := lp.GetOutput()
		lp.Put(pkt)
		lp.Flush()
	}); avg != 0 {
		t.Fatalf("refill+flush cycle allocates %.1f per op, want 0", avg)
	}
	checkLocalQuiescent(t, p, 16)
}

// TestDisabledLocalTierZeroPerturbation pins the no-perturbation guarantee:
// a pool with no local caches registered runs the global get/put cycle with
// zero heap allocations and zero motion on the local-tier counters — the
// pre-sharding fast path is untouched by the tier's existence.
func TestDisabledLocalTierZeroPerturbation(t *testing.T) {
	p := NewPool(16, 8)
	if avg := testing.AllocsPerRun(200, func() {
		pkt := p.GetOutput()
		pkt.Push(heapsim.Addr(1))
		pkt.Pop()
		p.Put(pkt)
		if in := p.GetInput(); in != nil { // exercises the stealReady nil path
			p.Put(in)
		}
	}); avg != 0 {
		t.Fatalf("global cycle allocates %.1f per op with locals disabled, want 0", avg)
	}
	ls := p.LocalStatsSum()
	cachedEmpty, cachedReady := p.LocalCached()
	if ls != (LocalStatsSum{}) || cachedEmpty != 0 || cachedReady != 0 {
		t.Fatalf("local-tier counters moved without locals: %+v, cached %d/%d",
			ls, cachedEmpty, cachedReady)
	}
	checkQuiescent(t, p, 16)
}

// TestBatchPopPushRoundTrip exercises the batch primitives directly: a batch
// pop of k packets takes exactly min(k, available) and a batch push returns
// them, preserving the walk invariants checkQuiescent verifies.
func TestBatchPopPushRoundTrip(t *testing.T) {
	const packets = 8
	p := NewPool(packets, 4)
	for _, k := range []int{1, 3, packets, packets + 5} {
		got := p.popBatchFrom(Empty, k, nil)
		want := k
		if want > packets {
			want = packets
		}
		if len(got) != want {
			t.Fatalf("popBatchFrom(k=%d) returned %d, want %d", k, len(got), want)
		}
		if p.Count(Empty) != packets-want {
			t.Fatalf("count after batch pop = %d, want %d", p.Count(Empty), packets-want)
		}
		p.pushBatchTo(Empty, got)
		if p.Count(Empty) != packets {
			t.Fatalf("count after batch push = %d, want %d", p.Count(Empty), packets)
		}
	}
	// Gets/Puts untouched: the batch primitives are accounting-free; the
	// callers (refill, spill) own the counter updates.
	if g, pu := p.Stats.Gets.Load(), p.Stats.Puts.Load(); g != 0 || pu != 0 {
		t.Fatalf("batch primitives touched Gets/Puts: %d/%d", g, pu)
	}
	checkQuiescent(t, p, packets)
}

package workpack

// The local packet tier: a bounded per-worker cache in front of the global
// sub-pools. The paper's occupancy-ranged sub-pool split (Section 4.2)
// generalises per worker — each tracing or allocating thread keeps a few
// empty packets (its private Empty class) and a few non-empty packets (its
// private Nonempty/AlmostFull class), so the common get/put cycle touches no
// shared cache line at all. The global pool stays the home of every packet:
// locals refill and spill in batches of K packets per CAS, and cached
// non-empty packets are exposed in per-slot steal windows that any thread can
// claim through Pool.GetInput, so no worker idles — or declares termination —
// while a sibling hoards work.

import "sync/atomic"

// DefaultLocalCache is the per-class cache capacity a LocalPool gets when
// the caller does not choose one.
const DefaultLocalCache = 4

// maxReadySlots bounds the per-worker steal window: non-empty packets beyond
// this many go straight back to the global pool.
const maxReadySlots = 4

// LocalStats counts one worker's local-tier traffic. All fields are written
// by the owner (except Stolen, written by thieves), so the atomics are
// uncontended; Pool.LocalStatsSum aggregates across workers.
type LocalStats struct {
	Hits    atomic.Int64 // gets satisfied from this worker's own cache
	Spills  atomic.Int64 // packets batch-returned to the global pool
	Refills atomic.Int64 // batch refills taken from the global Empty sub-pool
	Stolen  atomic.Int64 // packets siblings claimed from this cache
}

// LocalStatsSum is the pool-wide aggregate of the local tier's counters.
type LocalStatsSum struct {
	Hits    int64 // local cache hits across all workers
	Steals  int64 // packets claimed from sibling caches
	Spills  int64 // packets batch-spilled to the global pool
	Refills int64 // batch refills from the global Empty sub-pool
}

// LocalPool is one worker's bounded packet cache. All methods except the
// steal window are owner-only; the ready slots are single-producer (the
// owner stores) and multi-consumer (owner and thieves claim by CAS).
type LocalPool struct {
	pool *Pool
	cap  int

	// empty is the owner-only LIFO of cached empty packets.
	empty []*Packet
	// scratch is the owner-only batch buffer for refills and spills.
	scratch []*Packet
	// ready exposes cached non-empty packets to thieves: each slot holds a
	// packet index biased by one, zero meaning free. The owner's entry
	// writes happen-before the slot store, and a claimant's CAS
	// happens-before its entry reads, so packet contents transfer safely.
	ready []atomic.Int32

	Stats LocalStats
}

// NewLocal creates a local cache of the given per-class capacity
// (DefaultLocalCache if capacity is zero or negative) and registers it for
// stealing. Locals are never unregistered; a flushed local is an empty steal
// window, so long-lived pools should create one per worker, not per task.
func (p *Pool) NewLocal(capacity int) *LocalPool {
	if capacity < 1 {
		capacity = DefaultLocalCache
	}
	slots := capacity
	if slots > maxReadySlots {
		slots = maxReadySlots
	}
	lp := &LocalPool{
		pool:    p,
		cap:     capacity,
		empty:   make([]*Packet, 0, capacity+1),
		scratch: make([]*Packet, 0, capacity+1),
		ready:   make([]atomic.Int32, slots),
	}
	p.localsMu.Lock()
	old := p.locals.Load()
	var next []*LocalPool
	if old != nil {
		next = append(next, *old...)
	}
	next = append(next, lp)
	p.locals.Store(&next)
	p.localsMu.Unlock()
	return lp
}

// Pool returns the global pool this cache fronts.
func (lp *LocalPool) Pool() *Pool { return lp.pool }

// Cap returns the per-class cache capacity.
func (lp *LocalPool) Cap() int { return lp.cap }

// takeReady claims a packet from the owner's own steal window (the owner
// competes with thieves by the same CAS).
func (lp *LocalPool) takeReady() *Packet {
	for i := range lp.ready {
		id := lp.ready[i].Load()
		if id != 0 && lp.ready[i].CompareAndSwap(id, 0) {
			lp.pool.localReady.Add(-1)
			return &lp.pool.packets[id-1]
		}
	}
	return nil
}

// takeEmpty pops a cached empty packet. The pool-level counter is
// decremented before the packet leaves the cache so TracingDone can only
// undercount (delay), never overcount (fake) termination.
func (lp *LocalPool) takeEmpty() *Packet {
	n := len(lp.empty)
	if n == 0 {
		return nil
	}
	lp.pool.localEmpty.Add(-1)
	pkt := lp.empty[n-1]
	lp.empty = lp.empty[:n-1]
	return pkt
}

// refill batch-pops up to cap/2+1 packets from the global Empty sub-pool
// with one CAS, returning the first and caching the rest.
func (lp *LocalPool) refill() *Packet {
	p := lp.pool
	if f := p.faults; f != nil {
		f.RefillStall.Stall()
		if f.Exhaust.Fire() {
			return nil
		}
	}
	want := lp.cap/2 + 1
	if room := lp.cap - len(lp.empty); want > room+1 {
		want = room + 1
	}
	lp.scratch = p.popBatchFrom(Empty, want, lp.scratch[:0])
	got := len(lp.scratch)
	if got == 0 {
		return nil
	}
	p.Stats.Gets.Add(int64(got))
	lp.Stats.Refills.Add(1)
	pkt := lp.scratch[0]
	lp.empty = append(lp.empty, lp.scratch[1:]...)
	if got > 1 {
		p.localEmpty.Add(int64(got - 1))
	}
	p.noteUsage()
	return pkt
}

// GetInput obtains a packet to trace from: the worker's own steal window
// first, then the global pool (which itself falls back to stealing from
// siblings).
func (lp *LocalPool) GetInput() *Packet { return lp.getInput(nil) }

func (lp *LocalPool) getInput(led *Ledger) *Packet {
	if pkt := lp.takeReady(); pkt != nil {
		lp.Stats.Hits.Add(1)
		led.noteAcq(SrcLocal)
		return pkt
	}
	return lp.pool.getInput(led)
}

// GetOutput obtains a packet to push new work into: the local empty cache,
// then a batch refill from the global Empty sub-pool, then the global
// lowest-occupancy scan.
func (lp *LocalPool) GetOutput() *Packet { return lp.getOutput(nil) }

func (lp *LocalPool) getOutput(led *Ledger) *Packet {
	if pkt := lp.takeEmpty(); pkt != nil {
		lp.Stats.Hits.Add(1)
		led.noteAcq(SrcLocal)
		return pkt
	}
	// A batch refill is global traffic by another name: one packet returned
	// now, the rest cached for future SrcLocal hits.
	if pkt := lp.refill(); pkt != nil {
		led.noteAcq(SrcGlobal)
		return pkt
	}
	return lp.pool.getOutput(led)
}

// GetEmpty obtains an empty packet from the local cache or, in a batch, from
// the global Empty sub-pool.
func (lp *LocalPool) GetEmpty() *Packet { return lp.getEmpty(nil) }

func (lp *LocalPool) getEmpty(led *Ledger) *Packet {
	if pkt := lp.takeEmpty(); pkt != nil {
		lp.Stats.Hits.Add(1)
		led.noteAcq(SrcLocal)
		return pkt
	}
	if pkt := lp.refill(); pkt != nil {
		led.noteAcq(SrcGlobal)
		return pkt
	}
	return nil
}

// Put returns a packet to the local tier: empties into the bounded empty
// cache (spilling a batch when full), non-empties into the steal window
// (going global when the window is full).
func (lp *LocalPool) Put(pkt *Packet) {
	if pkt.pool != lp.pool {
		panic("workpack: packet returned to a foreign pool")
	}
	if pkt.Empty() {
		lp.putEmpty(pkt)
		return
	}
	lp.putReady(pkt)
}

// PutDeferred passes deferred packets straight through: the Deferred
// sub-pool is scanned globally by DrainDeferred, so caching it locally would
// only hide unsafe objects from recirculation.
func (lp *LocalPool) PutDeferred(pkt *Packet) { lp.pool.PutDeferred(pkt) }

func (lp *LocalPool) putEmpty(pkt *Packet) {
	p := lp.pool
	forced := false
	if f := p.faults; f != nil && f.LocalSpill.Fire() {
		forced = true
	}
	if !forced && len(lp.empty) < lp.cap {
		lp.empty = append(lp.empty, pkt)
		p.localEmpty.Add(1)
		return
	}
	// Spill the incoming packet plus half the cache in one batch push. A
	// forced spill (fault injection) dumps the whole cache — the local-spill
	// storm degradation.
	lp.scratch = append(lp.scratch[:0], pkt)
	drop := lp.cap / 2
	if forced {
		drop = len(lp.empty)
	}
	for i := 0; i < drop && len(lp.empty) > 0; i++ {
		n := len(lp.empty)
		lp.scratch = append(lp.scratch, lp.empty[n-1])
		lp.empty = lp.empty[:n-1]
	}
	if cached := len(lp.scratch) - 1; cached > 0 {
		p.localEmpty.Add(-int64(cached))
	}
	p.pushBatchTo(Empty, lp.scratch)
	p.Stats.Puts.Add(int64(len(lp.scratch)))
	lp.Stats.Spills.Add(int64(len(lp.scratch)))
}

func (lp *LocalPool) putReady(pkt *Packet) {
	p := lp.pool
	if f := p.faults; f == nil || !f.LocalSpill.Fire() {
		for i := range lp.ready {
			if lp.ready[i].Load() == 0 {
				p.localReady.Add(1)
				lp.ready[i].Store(pkt.id + 1)
				return
			}
		}
	}
	// Window full (or spill forced): hand the packet to the global pool,
	// which counts the publication fence.
	p.Put(pkt)
	lp.Stats.Spills.Add(1)
}

// Flush returns every cached packet to the global pool. Workers call it on
// every exit path so post-run quiescence checks see the whole pool; the
// local remains registered and usable afterwards.
func (lp *LocalPool) Flush() {
	p := lp.pool
	for {
		pkt := lp.takeReady()
		if pkt == nil {
			break
		}
		p.Put(pkt)
	}
	if n := len(lp.empty); n > 0 {
		p.localEmpty.Add(-int64(n))
		lp.scratch = append(lp.scratch[:0], lp.empty...)
		lp.empty = lp.empty[:0]
		p.pushBatchTo(Empty, lp.scratch)
		p.Stats.Puts.Add(int64(n))
		lp.Stats.Spills.Add(int64(n))
	}
}

// CachedEmpty returns the number of empty packets currently cached.
func (lp *LocalPool) CachedEmpty() int { return len(lp.empty) }

// CachedReady returns the number of packets currently in the steal window
// (racy: thieves may claim concurrently).
func (lp *LocalPool) CachedReady() int {
	n := 0
	for i := range lp.ready {
		if lp.ready[i].Load() != 0 {
			n++
		}
	}
	return n
}

// LocalCached returns the pool-wide counts of packets parked in local
// caches: empty-class and ready-class. Estimates while threads run, exact at
// quiescence.
func (p *Pool) LocalCached() (empty, ready int64) {
	return p.localEmpty.Load(), p.localReady.Load()
}

// LocalStatsSum aggregates the local tier's counters across every registered
// local cache plus the pool-level steal count.
func (p *Pool) LocalStatsSum() LocalStatsSum {
	sum := LocalStatsSum{Steals: p.steals.Load()}
	lps := p.locals.Load()
	if lps == nil {
		return sum
	}
	for _, lp := range *lps {
		sum.Hits += lp.Stats.Hits.Load()
		sum.Spills += lp.Stats.Spills.Load()
		sum.Refills += lp.Stats.Refills.Load()
	}
	return sum
}

package workpack

// Baselines for the work packet mechanism: tracing threads cycle packets
// through the pool (one CAS per get/put) and push/pop grey references at
// BFS rates. The parallel variant measures pool contention at host-core
// counts.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mcgc/internal/heapsim"
)

func BenchmarkPacketPushPop(b *testing.B) {
	pool := NewPool(4, 0)
	pkt := pool.GetEmpty()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Push(heapsim.Addr(i))
		if _, ok := pkt.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool(64, 32)
	for i := 0; i < b.N; i++ {
		pkt := p.GetOutput()
		pkt.Push(1)
		p.Put(pkt)
		in := p.GetInput()
		in.Pop()
		p.Put(in)
	}
}

// BenchmarkPoolMatrix measures the lock-free sub-pools under explicit
// contention levels: GOMAXPROCS 1/2/4/8 crossed with three get/put mixes.
// Each run reports the CAS retry rate (failed head CASes per operation) next
// to ns/op, which is the contention signal the versioned-head design is
// supposed to keep low. The committed baseline lives in BENCH_workpack.json.
func BenchmarkPoolMatrix(b *testing.B) {
	mixes := []struct {
		name string
		run  func(p *Pool, id, n int)
	}{
		// cycle: bare packet circulation, one get + one put per op — the
		// hottest path of the pool itself.
		{"cycle", func(p *Pool, id, n int) {
			for i := 0; i < n; i++ {
				pkt := p.GetOutput()
				if pkt == nil {
					continue
				}
				if !pkt.Full() {
					pkt.Push(heapsim.Addr(id + 1))
				}
				p.Put(pkt)
			}
		}},
		// pushpop: the tracer discipline at BFS rates, 1 push : 1 pop, so
		// packets migrate between sub-pools as they fill and drain.
		{"pushpop", func(p *Pool, id, n int) {
			tr := NewTracer(p)
			for i := 0; i < n; i++ {
				tr.Push(heapsim.Addr(id*n + i + 1))
				tr.Pop()
			}
			tr.Release()
		}},
		// handoff: disjoint producers and consumers, so every entry crosses
		// goroutines through the pool.
		{"handoff", func(p *Pool, id, n int) {
			tr := NewTracer(p)
			if id%2 == 0 {
				for i := 0; i < n; i++ {
					if !tr.Push(heapsim.Addr(id*n + i + 1)) {
						tr.Release()
					}
				}
			} else {
				for i := 0; i < n; i++ {
					if _, ok := tr.Pop(); !ok {
						tr.Release()
						runtime.Gosched()
					}
				}
			}
			tr.Release()
		}},
	}
	for _, procs := range []int{1, 2, 4, 8} {
		for _, mix := range mixes {
			b.Run(fmt.Sprintf("%s/procs=%d", mix.name, procs), func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				p := NewPool(256, 32)
				perG := b.N/procs + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				for g := 0; g < procs; g++ {
					wg.Add(1)
					go func(id int) {
						defer wg.Done()
						mix.run(p, id, perG)
					}(g)
				}
				wg.Wait()
				b.StopTimer()
				ops := int64(perG) * int64(procs)
				b.ReportMetric(float64(p.Stats.CASRetries.Load())/float64(ops), "retries/op")
			})
		}
	}
}

func BenchmarkPoolContended(b *testing.B) {
	p := NewPool(256, 32)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pkt := p.GetOutput()
			if pkt == nil {
				continue
			}
			if !pkt.Full() {
				pkt.Push(1)
			}
			p.Put(pkt)
		}
	})
}

package workpack

// Baselines for the work packet mechanism: tracing threads cycle packets
// through the pool (one CAS per get/put) and push/pop grey references at
// BFS rates. The parallel variant measures pool contention at host-core
// counts.

import (
	"testing"

	"mcgc/internal/heapsim"
)

func BenchmarkPacketPushPop(b *testing.B) {
	pool := NewPool(4, 0)
	pkt := pool.GetEmpty()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Push(heapsim.Addr(i))
		if _, ok := pkt.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool(64, 32)
	for i := 0; i < b.N; i++ {
		pkt := p.GetOutput()
		pkt.Push(1)
		p.Put(pkt)
		in := p.GetInput()
		in.Pop()
		p.Put(in)
	}
}

func BenchmarkPoolContended(b *testing.B) {
	p := NewPool(256, 32)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pkt := p.GetOutput()
			if pkt == nil {
				continue
			}
			if !pkt.Full() {
				pkt.Push(1)
			}
			p.Put(pkt)
		}
	})
}

package workpack

// Baselines for the work packet mechanism: tracing threads cycle packets
// through the pool (one CAS per get/put) and push/pop grey references at
// BFS rates. The parallel variant measures pool contention at host-core
// counts.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"mcgc/internal/heapsim"
)

func BenchmarkPacketPushPop(b *testing.B) {
	pool := NewPool(4, 0)
	pkt := pool.GetEmpty()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.Push(heapsim.Addr(i))
		if _, ok := pkt.Pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

func BenchmarkPoolGetPut(b *testing.B) {
	p := NewPool(64, 32)
	for i := 0; i < b.N; i++ {
		pkt := p.GetOutput()
		pkt.Push(1)
		p.Put(pkt)
		in := p.GetInput()
		in.Pop()
		p.Put(in)
	}
}

// BenchmarkPoolMatrix measures the lock-free sub-pools under explicit
// contention levels: GOMAXPROCS 1..64 crossed with three get/put mixes and
// with the local packet tier off (every op on the shared sub-pool heads) and
// on (per-worker caches with batch refill/spill and steal windows). Each run
// reports the CAS retry rate (failed head CASes per operation) next to
// ns/op, which is the contention signal the sharding is supposed to keep
// flat as procs grow. The committed baseline lives in BENCH_workpack.json.
func BenchmarkPoolMatrix(b *testing.B) {
	// Each mix runs with lp == nil (global tier) or a per-goroutine local
	// cache (local tier).
	mixes := []struct {
		name string
		run  func(p *Pool, lp *LocalPool, id, n int)
	}{
		// cycle: bare packet circulation, one get + one put per op — the
		// hottest path of the pool itself.
		{"cycle", func(p *Pool, lp *LocalPool, id, n int) {
			for i := 0; i < n; i++ {
				var pkt *Packet
				if lp != nil {
					pkt = lp.GetOutput()
				} else {
					pkt = p.GetOutput()
				}
				if pkt == nil {
					continue
				}
				if !pkt.Full() {
					pkt.Push(heapsim.Addr(id + 1))
				}
				if lp != nil {
					lp.Put(pkt)
				} else {
					p.Put(pkt)
				}
			}
		}},
		// pushpop: the tracer discipline at BFS rates, 1 push : 1 pop, so
		// packets migrate between sub-pools as they fill and drain.
		{"pushpop", func(p *Pool, lp *LocalPool, id, n int) {
			tr := newMatrixTracer(p, lp)
			for i := 0; i < n; i++ {
				tr.Push(heapsim.Addr(id*n + i + 1))
				tr.Pop()
			}
			tr.Release()
		}},
		// handoff: disjoint producers and consumers, so every entry crosses
		// goroutines through the pool (or a steal window).
		{"handoff", func(p *Pool, lp *LocalPool, id, n int) {
			tr := newMatrixTracer(p, lp)
			if id%2 == 0 {
				for i := 0; i < n; i++ {
					if !tr.Push(heapsim.Addr(id*n + i + 1)) {
						tr.Release()
					}
				}
			} else {
				for i := 0; i < n; i++ {
					if _, ok := tr.Pop(); !ok {
						tr.Release()
						runtime.Gosched()
					}
				}
			}
			tr.Release()
		}},
	}
	for _, tier := range []string{"global", "local"} {
		for _, procs := range []int{1, 2, 4, 8, 16, 32, 64} {
			for _, mix := range mixes {
				b.Run(fmt.Sprintf("%s/%s/procs=%d", mix.name, tier, procs), func(b *testing.B) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					p := NewPool(256, 32)
					perG := b.N/procs + 1
					b.ResetTimer()
					var wg sync.WaitGroup
					for g := 0; g < procs; g++ {
						wg.Add(1)
						go func(id int) {
							defer wg.Done()
							var lp *LocalPool
							if tier == "local" {
								lp = p.NewLocal(DefaultLocalCache)
							}
							mix.run(p, lp, id, perG)
							if lp != nil {
								lp.Flush()
							}
						}(g)
					}
					wg.Wait()
					b.StopTimer()
					ops := int64(perG) * int64(procs)
					b.ReportMetric(float64(p.Stats.CASRetries.Load())/float64(ops), "retries/op")
					if tier == "local" {
						b.ReportMetric(float64(p.LocalStatsSum().Hits)/float64(ops), "localhits/op")
					}
				})
			}
		}
	}
}

// newMatrixTracer builds the benchmark's tracer facade for the chosen tier.
func newMatrixTracer(p *Pool, lp *LocalPool) *Tracer {
	if lp != nil {
		return NewLocalTracer(lp)
	}
	return NewTracer(p)
}

func BenchmarkPoolContended(b *testing.B) {
	p := NewPool(256, 32)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			pkt := p.GetOutput()
			if pkt == nil {
				continue
			}
			if !pkt.Full() {
				pkt.Push(1)
			}
			p.Put(pkt)
		}
	})
}

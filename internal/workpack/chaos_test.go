package workpack

import (
	"sync"
	"sync/atomic"
	"testing"

	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

// poolWithFaults builds a pool with the given chaos spec armed.
func poolWithFaults(t *testing.T, packets, capacity int, spec string) (*Pool, *faultinject.Plan) {
	t.Helper()
	plan := faultinject.MustParse(spec, 7)
	p := NewPool(packets, capacity)
	p.InjectFaults(&PoolFaults{
		CAS:         plan.Point(faultinject.PoolCAS),
		Exhaust:     plan.Point(faultinject.PoolExhaust),
		GetStall:    plan.Point(faultinject.PoolGetStall),
		PutStall:    plan.Point(faultinject.PoolPutStall),
		DeferStall:  plan.Point(faultinject.PoolDeferStall),
		LocalSpill:  plan.Point(faultinject.PoolLocalSpill),
		StealMiss:   plan.Point(faultinject.PoolStealMiss),
		RefillStall: plan.Point(faultinject.PoolRefillStall),
	})
	return p, plan
}

// checkQuiescent asserts the pool's quiescence invariants: every packet in
// exactly one sub-pool, gets matched by puts, and the occupancy counters
// exact (the paper's Section 4.3 counter estimates are exact at rest).
func checkQuiescent(t *testing.T, p *Pool, packets int) {
	t.Helper()
	total := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		total += p.Count(s)
	}
	if total != packets {
		t.Fatalf("sub-pool counts sum to %d, want %d", total, packets)
	}
	if gets, puts := p.Stats.Gets.Load(), p.Stats.Puts.Load(); gets != puts {
		t.Fatalf("gets %d != puts %d at quiescence", gets, puts)
	}
	seen := make(map[int32]bool)
	n := 0
	for s := SubPool(0); s < NumSubPools; s++ {
		for pkt := p.popFrom(s); pkt != nil; pkt = p.popFrom(s) {
			if seen[pkt.id] {
				t.Fatalf("packet %d linked twice", pkt.id)
			}
			seen[pkt.id] = true
			n++
		}
	}
	if n != packets {
		t.Fatalf("walked %d packets, want %d", n, packets)
	}
}

// TestPoolForcedExhaustion drives tracers against a pool whose Get paths are
// forced to fail a third of the time. Every push the tracers could not place
// is an overflow the caller must account for; at quiescence the entries
// still in packets plus the overflowed pushes must equal everything pushed,
// and the pool's structural invariants must be intact.
func TestPoolForcedExhaustion(t *testing.T) {
	const (
		packets = 8
		pktCap  = 4
		workers = 6
		rounds  = 3000
	)
	p, plan := poolWithFaults(t, packets, pktCap, "pool.exhaust=1/3")

	var pushed, popped, overflowed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			tr := NewTracer(p)
			for r := 0; r < rounds; r++ {
				if (seed+r)%2 == 0 {
					if tr.Push(heapsim.Addr(seed*rounds + r + 1)) {
						pushed.Add(1)
					} else {
						overflowed.Add(1)
					}
				} else if _, ok := tr.Pop(); ok {
					popped.Add(1)
				}
			}
			tr.Release()
		}(w)
	}
	wg.Wait()

	if plan.Point(faultinject.PoolExhaust).Fires() == 0 {
		t.Fatal("exhaustion fault never fired — the test exercised nothing")
	}
	if overflowed.Load() == 0 {
		t.Error("forced exhaustion produced no overflows")
	}
	// Conservation: every successful push was either popped or is still
	// sitting in a packet.
	if want := pushed.Load() - popped.Load(); p.EntriesInUse() != want {
		t.Errorf("entries in packets %d != pushed %d - popped %d",
			p.EntriesInUse(), pushed.Load(), popped.Load())
	}
	checkQuiescent(t, p, packets)
}

// TestPoolCASAmplification forces the head-CAS loops to lose at a fixed rate
// and checks the retries are accounted and the structure survives: forced
// losses land in CASRetries exactly like real contention.
func TestPoolCASAmplification(t *testing.T) {
	const (
		packets = 16
		workers = 4
		rounds  = 2000
	)
	p, plan := poolWithFaults(t, packets, 8, "pool.cas=1/4")

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				pkt := p.GetOutput()
				if pkt == nil {
					continue
				}
				if !pkt.Full() {
					pkt.Push(heapsim.Addr(seed + 1))
				}
				if (seed+r)%2 == 0 {
					pkt.Pop()
				}
				p.Put(pkt)
			}
		}(w)
	}
	wg.Wait()

	fires := plan.Point(faultinject.PoolCAS).Fires()
	if fires == 0 {
		t.Fatal("CAS fault never fired")
	}
	if retries := p.Stats.CASRetries.Load(); retries < fires {
		t.Errorf("CAS retries %d < forced losses %d — amplified contention not accounted", retries, fires)
	}
	checkQuiescent(t, p, packets)
}

// TestPoolDeferStallRecirculation holds deferred packets outside every
// sub-pool mid-drain (the DeferStall window) while other goroutines file new
// deferred work, then verifies the drain recirculated everything and the
// Deferred sub-pool reads empty.
func TestPoolDeferStallRecirculation(t *testing.T) {
	const packets = 16
	p, plan := poolWithFaults(t, packets, 4, "pool.deferstall=on:100us")

	var wg sync.WaitGroup
	var filed atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			tr := NewTracer(p)
			for r := 0; r < 200; r++ {
				if tr.PushDeferred(heapsim.Addr(seed*1000 + r + 1)) {
					filed.Add(1)
				}
				if r%8 == 7 {
					tr.Release()
				}
			}
			tr.Release()
		}(w)
	}
	drainDone := make(chan struct{})
	go func() {
		defer close(drainDone)
		for i := 0; i < 50; i++ {
			p.DrainDeferred()
		}
	}()
	wg.Wait()
	<-drainDone
	p.DrainDeferred() // final sweep after all producers stopped

	if plan.Point(faultinject.PoolDeferStall).Fires() == 0 {
		t.Fatal("defer stall never fired")
	}
	if !p.DeferredEmpty() {
		t.Errorf("deferred sub-pool still holds %d packets after drains", p.Count(Deferred))
	}
	if filed.Load() == 0 {
		t.Fatal("no deferred entries filed")
	}
	checkQuiescent(t, p, packets)
}

// TestPoolForcedLocalSpill arms the local-spill fault at full rate: every
// put through a LocalPool must go straight to the global pool, so the caches
// stay empty and the tier degrades to exactly the pre-sharding behavior —
// with the degradation visible in the spill counter.
func TestPoolForcedLocalSpill(t *testing.T) {
	const packets = 16
	p, plan := poolWithFaults(t, packets, 4, "pool.localspill=on")
	lp := p.NewLocal(4)

	for i := 0; i < 50; i++ {
		pkt := lp.GetOutput()
		if pkt == nil {
			t.Fatal("GetOutput failed")
		}
		if i%2 == 0 {
			pkt.Push(heapsim.Addr(i + 1))
			lp.Put(pkt)
			// A forced ready-put bypasses the steal window entirely.
			if lp.CachedReady() != 0 {
				t.Fatalf("round %d: forced spill parked a ready packet", i)
			}
			// The spilled ready packet is in the global pool; drain it so the
			// next round starts clean.
			in := p.GetInput()
			in.Pop()
			p.Put(in)
		} else {
			lp.Put(pkt)
			// A forced empty-put dumps the whole cache (refills may restock
			// it on the next get, but a put never leaves anything behind).
			if lp.CachedEmpty() != 0 {
				t.Fatalf("round %d: forced spill left %d empties cached",
					i, lp.CachedEmpty())
			}
		}
	}
	if plan.Point(faultinject.PoolLocalSpill).Fires() == 0 {
		t.Fatal("local-spill fault never fired")
	}
	if lp.Stats.Spills.Load() == 0 {
		t.Fatal("forced spills not accounted")
	}
	checkQuiescent(t, p, packets)
}

// TestPoolForcedStealMiss parks work in a local steal window and arms the
// steal-miss fault: Pool.GetInput must come back empty-handed even though a
// sibling holds a stealable packet — the degradation TracingDone's
// conservative accounting must survive (the cached packet still holds
// termination off).
func TestPoolForcedStealMiss(t *testing.T) {
	p, plan := poolWithFaults(t, 8, 4, "pool.stealmiss=on")
	victim := p.NewLocal(4)

	pkt := victim.GetOutput()
	pkt.Push(heapsim.Addr(7))
	victim.Put(pkt)
	if victim.CachedReady() != 1 {
		t.Fatalf("victim caches %d ready, want 1", victim.CachedReady())
	}
	if got := p.GetInput(); got != nil {
		t.Fatalf("GetInput returned packet %d despite forced steal miss", got.ID())
	}
	if plan.Point(faultinject.PoolStealMiss).Fires() == 0 {
		t.Fatal("steal-miss fault never fired")
	}
	if p.TracingDone() {
		t.Fatal("steal miss faked termination — cached ready packet not accounted")
	}
	// The owner's own window read is not a steal and must still work.
	if got := victim.GetInput(); got != pkt {
		t.Fatal("owner could not reclaim its own ready packet under steal miss")
	}
	pkt.Pop()
	victim.Put(pkt)
	victim.Flush()
	checkQuiescent(t, p, 8)
}

// TestPoolRefillStallSurvives stalls every batch refill and checks the local
// get path still completes (slowly) with the batch accounting intact.
func TestPoolRefillStallSurvives(t *testing.T) {
	p, plan := poolWithFaults(t, 8, 4, "pool.refillstall=on:50us")
	lp := p.NewLocal(4)
	for i := 0; i < 5; i++ {
		pkt := lp.GetOutput()
		if pkt == nil {
			t.Fatal("GetOutput failed under refill stall")
		}
		lp.Put(pkt)
		lp.Flush() // force the next get back through refill
	}
	if plan.Point(faultinject.PoolRefillStall).Fires() == 0 {
		t.Fatal("refill stall never fired")
	}
	checkQuiescent(t, p, 8)
}

// TestPoolFaultsDisabledZeroImpact verifies the nil-discipline end to end at
// the pool API: a pool with no faults injected behaves byte-identically on
// the counters to one with an armed-but-never-firing plan absent entirely.
func TestPoolFaultsDisabledZeroImpact(t *testing.T) {
	run := func(inject bool) (gets, puts, retries int64) {
		p := NewPool(8, 4)
		if inject {
			p.InjectFaults(nil) // explicit nil: the documented disabled state
		}
		tr := NewTracer(p)
		for i := 1; i <= 500; i++ {
			tr.Push(heapsim.Addr(i))
			if i%3 == 0 {
				tr.Pop()
			}
		}
		tr.Release()
		return p.Stats.Gets.Load(), p.Stats.Puts.Load(), p.Stats.CASRetries.Load()
	}
	g1, p1, r1 := run(false)
	g2, p2, r2 := run(true)
	if g1 != g2 || p1 != p2 || r1 != r2 {
		t.Errorf("nil fault injection changed behavior: (%d,%d,%d) vs (%d,%d,%d)",
			g1, p1, r1, g2, p2, r2)
	}
}

// Package runmeta defines the run-identification structs shared by every
// machine-readable output of the suite: the gcbench -json results file, the
// telemetry JSONL metrics sink, and the Chrome-trace export. Factoring them
// here keeps the field names (experiment, seed, worker count, ...) agreeing
// across sinks instead of being duplicated per writer.
package runmeta

// Suite identifies one gcbench invocation (one execution of the experiment
// matrix).
type Suite struct {
	// Scale is the experiment sizing ("quick", "default", "paper").
	Scale string `json:"scale"`
	// J is the host-parallelism the suite ran with.
	J int `json:"j"`
	// GoMaxProcs is the host GOMAXPROCS at startup.
	GoMaxProcs int `json:"gomaxprocs"`
	// StartedAt is the wall-clock start, RFC3339 UTC.
	StartedAt string `json:"started_at"`
}

// Run identifies one simulator run within an experiment. Name is unique
// within a suite (it is the runner job name, e.g. "fig1/wh=3/cgc").
type Run struct {
	Exp       string `json:"exp"`
	Name      string `json:"name"`
	Collector string `json:"collector,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	// Workers is the simulated processor count of the run (the parallel
	// GC worker count follows it unless overridden).
	Workers   int   `json:"workers,omitempty"`
	HeapBytes int64 `json:"heap_bytes,omitempty"`
}

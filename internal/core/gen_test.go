package core

import (
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

func newGenRig(heapBytes int64, procs int, nurseryBytes int64) (*machine.Machine, *mutator.Runtime, *Generational) {
	m := machine.New(procs)
	rt := mutator.NewRuntime(heapBytes, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := testCGCConfig()
	g := NewGenerational(rt, m, GenConfig{NurseryBytes: nurseryBytes, CGC: cfg})
	rt.SetCollector(g)
	g.SpawnBackground()
	return m, rt, g
}

// genChainDriver keeps rotating chains alive, rebuilding them in turn, with
// all long-lived structure reachable via the stack (precise under minors).
// It returns a verifier that walks every chain and checks stamps.
func genChainDriver(t *testing.T, rt *mutator.Runtime, chains, nodesPerChain int) (machine.StepFunc, func() int64) {
	th := rt.NewThread()
	th.Stack = make([]heapsim.Addr, chains)
	round := 0
	const stamp = uint64(0xabcdef12)
	step := func(ctx *machine.Context) machine.Control {
		slot := round % chains
		round++
		th.Stack[slot] = heapsim.Nil
		for i := 0; i < nodesPerChain; i++ {
			n := rt.Alloc(ctx, th, 1, 2)
			rt.Heap.SetPayload(n, 0, stamp+uint64(i))
			rt.SetRef(ctx, n, 0, th.Stack[slot])
			th.Stack[slot] = n
		}
		return machine.Continue
	}
	verify := func() int64 {
		var live int64
		for slot := 0; slot < chains; slot++ {
			n := th.Stack[slot]
			count := 0
			for n != heapsim.Nil {
				want := stamp + uint64(nodesPerChain-1-count)
				if got := rt.Heap.PayloadAt(n, 0); got != want {
					t.Fatalf("chain %d node %d: payload %#x, want %#x", slot, count, got, want)
				}
				live += int64(rt.Heap.SizeOf(n)) * heapsim.WordBytes
				n = rt.Heap.RefAt(n, 0)
				count++
			}
			if count != nodesPerChain && count != 0 {
				t.Fatalf("chain %d has %d nodes, want %d", slot, count, nodesPerChain)
			}
		}
		return live
	}
	return step, verify
}

func TestGenerationalMinorCollections(t *testing.T) {
	m, rt, g := newGenRig(4<<20, 2, 512<<10)
	step, verify := genChainDriver(t, rt, 8, 400)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(2 * vtime.Second))

	if len(g.Minors) == 0 {
		t.Fatal("no minor collections despite nursery churn")
	}
	verify()
	for i, ms := range g.Minors {
		if ms.Pause <= 0 {
			t.Fatalf("minor %d: non-positive pause", i)
		}
		if ms.NurseryUsed <= 0 {
			t.Fatalf("minor %d: empty nursery scavenged", i)
		}
	}
	if g.PromotedBytes == 0 {
		t.Fatal("nothing promoted despite live chains")
	}
}

func TestGenerationalMinorsMuchShorterThanOldPauses(t *testing.T) {
	// The whole point of the generational front end: nursery scavenges
	// are far shorter than full collections would be.
	m, rt, g := newGenRig(4<<20, 2, 256<<10)
	step, verify := genChainDriver(t, rt, 6, 300)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(3 * vtime.Second))
	verify()
	avgMinor, _ := g.MinorPauses()
	if avgMinor <= 0 {
		t.Fatal("no minors")
	}
	if len(g.Old().Cycles) > 0 {
		p, _, _ := SummarizePauses(g.Old().Cycles)
		if p.Avg > 0 && float64(avgMinor) > 0.8*float64(p.Avg) {
			t.Fatalf("minor pause %v not well below old-cycle pause %v", avgMinor, p.Avg)
		}
	}
}

func TestGenerationalSurvivesOldCycles(t *testing.T) {
	// Enough promotion pressure to trigger old-space concurrent cycles;
	// the chains must stay intact across minors AND old cycles, and the
	// heap invariants must hold at the end.
	m, rt, g := newGenRig(3<<20, 2, 256<<10)
	step, verify := genChainDriver(t, rt, 10, 500)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(4 * vtime.Second))

	if len(g.Old().Cycles) == 0 {
		t.Fatal("no old-space cycles despite promotion pressure")
	}
	verify()
	rt.RetireAllCaches()
	if err := VerifyHeap(rt, false); err != nil {
		t.Fatalf("heap invariants: %v", err)
	}
	if len(g.Minors) < 3 {
		t.Fatalf("only %d minors", len(g.Minors))
	}
}

func TestGenerationalRememberedSet(t *testing.T) {
	// An old object holding the only reference to a young object: the
	// minor must find it through the dirty card and promote the target.
	m, rt, g := newGenRig(4<<20, 1, 256<<10)
	th := rt.NewThread()
	checked := false
	m.AddThread("prog", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		// A large (old-space) holder object.
		holder := rt.Alloc(ctx, th, 300, 2) // 300 refs > LargeBytes => old space
		th.Stack = append(th.Stack, holder)
		// A young object referenced ONLY from the old holder.
		young := rt.Alloc(ctx, th, 0, 2)
		rt.Heap.SetPayload(young, 0, 4242)
		rt.SetRef(ctx, holder, 0, young)
		// Fill the nursery to force minors; the young object must survive
		// by promotion even though no stack slot references it.
		for i := 0; i < 200000; i++ {
			rt.Alloc(ctx, th, 0, 3)
		}
		v := rt.Heap.RefAt(holder, 0)
		if v == heapsim.Nil {
			t.Error("old->young reference lost")
		} else if got := rt.Heap.PayloadAt(v, 0); got != 4242 {
			t.Errorf("promoted target payload %d, want 4242", got)
		}
		if g.NurseryUsed() > 0 && v >= g.nurFrom && v < g.nurTo && len(g.Minors) > 0 {
			t.Error("target still in nursery after minors")
		}
		checked = true
		return machine.Finish
	})
	m.Run(vtime.Time(30 * vtime.Second))
	if !checked {
		t.Fatal("program did not finish")
	}
	if len(g.Minors) == 0 {
		t.Fatal("no minors happened")
	}
}

func TestGenerationalPacingFedByPromotion(t *testing.T) {
	m, rt, g := newGenRig(3<<20, 2, 256<<10)
	step, _ := genChainDriver(t, rt, 10, 500)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(3 * vtime.Second))
	if g.Old().TotalAllocBytes == 0 {
		t.Fatal("old-space pacer never saw allocation (promotion not fed)")
	}
	if g.Old().TotalAllocBytes < g.PromotedBytes/2 {
		t.Fatalf("pacer saw %d bytes, promoted %d", g.Old().TotalAllocBytes, g.PromotedBytes)
	}
}

func TestGenerationalBarrierAlwaysOn(t *testing.T) {
	_, rt, g := newGenRig(2<<20, 1, 256<<10)
	if !g.BarrierActive() {
		t.Fatal("generational barrier must be always on (remembered set)")
	}
	_ = rt
}

func TestGenerationalNurseryExcludedFromSweep(t *testing.T) {
	// After old cycles, no free-list chunk may lie in the nursery.
	m, rt, g := newGenRig(3<<20, 2, 256<<10)
	step, _ := genChainDriver(t, rt, 10, 500)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(3 * vtime.Second))
	if len(g.Old().Cycles) == 0 {
		t.Skip("no old cycles")
	}
	for _, c := range rt.Heap.FreeChunks() {
		if c.End() > g.nurFrom {
			t.Fatalf("free chunk [%d,%d) intrudes into the nursery at %d", c.Addr, c.End(), g.nurFrom)
		}
	}
}

func TestGenerationalWithLazySweep(t *testing.T) {
	m := machine.New(2)
	rt := mutator.NewRuntime(3<<20, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := testCGCConfig()
	cfg.LazySweep = true
	g := NewGenerational(rt, m, GenConfig{NurseryBytes: 256 << 10, CGC: cfg})
	rt.SetCollector(g)
	g.SpawnBackground()
	step, verify := genChainDriver(t, rt, 10, 500)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(3 * vtime.Second))
	verify()
	if len(g.Minors) == 0 {
		t.Fatal("no minors")
	}
	for i, cs := range g.Old().Cycles {
		if cs.SweepTime != 0 {
			t.Fatalf("cycle %d swept inside the pause under lazy sweep", i)
		}
	}
}

func TestGenerationalWithCompaction(t *testing.T) {
	m := machine.New(2)
	rt := mutator.NewRuntime(4<<20, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := testCGCConfig()
	cfg.Compaction = true
	g := NewGenerational(rt, m, GenConfig{NurseryBytes: 256 << 10, CGC: cfg})
	rt.SetCollector(g)
	g.SpawnBackground()
	step, verify := genChainDriver(t, rt, 10, 500)
	m.AddThread("mut", machine.PriorityNormal, step)
	m.Run(vtime.Time(3 * vtime.Second))
	verify()
	rt.RetireAllCaches()
	if err := VerifyHeap(rt, false); err != nil {
		t.Fatalf("invariants under gen+compaction: %v", err)
	}
	if st := g.Old().Compactor(); st != nil {
		// Compaction must never touch the nursery.
		if st.AreaTo > g.nurFrom && st.AreaFrom < g.nurTo {
			t.Fatalf("compaction area [%d,%d) overlaps the nursery [%d,%d)",
				st.AreaFrom, st.AreaTo, g.nurFrom, g.nurTo)
		}
	}
}

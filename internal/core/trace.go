// Package core implements the paper's collectors: the parallel
// stop-the-world mark-sweep baseline (STW, the "mature collector" of the
// IBM JVM the paper builds on) and the parallel, incremental, mostly
// concurrent collector (CGC) that is the paper's contribution.
//
// The collectors share a tracing engine built on work packets
// (internal/workpack), a parallel bitwise sweep, and the card-cleaning
// machinery; the mostly concurrent collector adds the pacing formulas of
// Section 3 and the background tracing threads.
package core

import (
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
	"mcgc/internal/workpack"
)

// charger abstracts the two time sinks tracing work can be charged to: a
// machine.Context (mutator increments, background threads) or a
// machine.Worker (stop-the-world parallel phases).
type charger interface {
	Charge(d vtime.Duration)
}

// engine is the tracing core shared by both collectors.
type engine struct {
	rt    *mutator.Runtime
	pool  *workpack.Pool
	costs machine.Costs

	// concurrentMode enables the Section 5.2 safe/unsafe allocation-bit
	// protocol: during concurrent tracing a popped reference whose
	// object's allocation bit is not yet published is deferred instead of
	// traced. During stop-the-world phases every cache has been flushed,
	// so the check is skipped.
	concurrentMode bool

	// comp, when non-nil, is the incremental compactor (Section 2.3): the
	// engine records every scanned slot pointing into the evacuation area
	// and pins root-referenced area objects.
	comp *compactor

	// nurFrom/nurTo bound the nursery region under the generational
	// extension. The old-space collector never marks nursery addresses:
	// the nursery is a root *source* (its objects' old-space targets are
	// marked when the nursery is scanned at cycle start and rescanned in
	// the pause), and nursery space is reclaimed by minor collections,
	// not by sweep.
	nurFrom, nurTo heapsim.Addr

	// rememberedCards preserves the generational remembered set across
	// card cleaning: cleaning clears a card's dirty indicator, but if the
	// card still holds old-to-young pointers the next minor collection
	// needs it. cleanCard records such cards here; minor collections scan
	// them alongside the dirty cards, and the cycle end flushes them back
	// to dirty indicators. Always empty without a nursery.
	rememberedCards []int

	// Counters for the fence/overflow accounting (Section 5, Table 4).
	markFences   int64 // one per input packet pre-scanned in concurrent mode
	deferred     int64 // objects deferred by the allocation-bit protocol
	overflows    int64 // pushes degraded to mark-plus-dirty-card
	bytesTraced  int64 // cumulative bytes of objects scanned
	objsTraced   int64
	cardsCleaned int64 // cards processed by cleanCard
}

func newEngine(rt *mutator.Runtime, packets, packetCap int) *engine {
	return &engine{
		rt:    rt,
		pool:  workpack.NewPool(packets, packetCap),
		costs: rt.Costs,
	}
}

// markAndPush claims the object's mark bit; if this call claimed it, the
// reference is queued for tracing. On packet overflow the object stays
// marked and its card is dirtied so the card-cleaning pass retraces it
// (Section 4.3). Returns the number of bytes of new tracing work created
// (zero if already marked).
func (e *engine) markAndPush(ch charger, tr *workpack.Tracer, a heapsim.Addr) {
	if a == heapsim.Nil {
		return
	}
	if a >= e.nurFrom && a < e.nurTo {
		// Nursery objects are never marked by the old-space collector.
		return
	}
	if !e.rt.Heap.MarkBits.TestAndSet(int(a)) {
		return
	}
	ch.Charge(e.costs.CAS)
	if !tr.Push(a) {
		e.overflows++
		e.rt.Cards.DirtyObject(a)
	}
}

// traceObject scans every reference slot of a marked object, marking and
// queueing unmarked children. It returns the object's size in bytes (the
// unit of tracing work for the pacing formulas).
func (e *engine) traceObject(ch charger, tr *workpack.Tracer, a heapsim.Addr) int64 {
	words, refs := e.rt.Heap.Header(a)
	bytes := int64(words) * heapsim.WordBytes
	ch.Charge(machine.ForBytes(e.costs.TraceBytePs, bytes))
	for i := 0; i < refs; i++ {
		child := e.rt.Heap.RefAt(a, i)
		if e.comp != nil && e.comp.inArea(child) {
			e.comp.noteSlot(ch, a, i)
		}
		e.markAndPush(ch, tr, child)
	}
	e.bytesTraced += bytes
	e.objsTraced++
	return bytes
}

// traceFromPackets pops and traces references until budgetBytes of objects
// have been scanned or no tracing work remains. It returns the bytes
// actually traced. In concurrent mode it applies the Section 5.2 protocol:
// before popping from a fresh input packet it tests the allocation bits of
// all entries (one fence for the whole group), deferring the unsafe ones.
func (e *engine) traceFromPackets(ch charger, tr *workpack.Tracer, budgetBytes int64) int64 {
	var done int64
	lastInput := tr.Input()
	for done < budgetBytes {
		a, ok := tr.Pop()
		if tr.Input() != lastInput {
			// A fresh input packet: in concurrent mode its entries'
			// allocation bits are tested as a group behind one fence
			// (Section 5.2).
			lastInput = tr.Input()
			if lastInput != nil {
				e.prescanFence(ch)
			}
		}
		if !ok {
			break
		}
		if e.concurrentMode && !e.rt.Heap.AllocBits.Test(int(a)) {
			// Unsafe: the object's initializing stores may not be
			// visible yet. Defer it (Section 5.2).
			e.deferred++
			ch.Charge(e.costs.PacketOp)
			if !tr.PushDeferred(a) {
				// No packet available to defer into: fall back to the
				// overflow treatment — the object is already marked, so
				// dirty its card for retracing.
				e.overflows++
				e.rt.Cards.DirtyObject(a)
			}
			continue
		}
		done += e.traceObject(ch, tr, a)
	}
	return done
}

// prescanFence models the tracer-side fence of the Section 5.2 protocol:
// one fence per group of objects (per input packet) rather than one per
// object. Charged whenever a tracing participant starts on a new input
// packet in concurrent mode.
func (e *engine) prescanFence(ch charger) {
	if e.concurrentMode {
		e.markFences++
		ch.Charge(e.costs.Fence)
	}
}

// scanRoots pushes all current roots (globals and every thread stack).
// Used by the stop-the-world phases, where the whole root set is rescanned.
func (e *engine) scanRoots(ch charger, tr *workpack.Tracer) {
	e.rt.ForEachRoot(func(a heapsim.Addr) {
		e.markAndPush(ch, tr, a)
	})
	// Charge the conservative scan of every slot, including nil ones.
	ch.Charge(e.costs.StackScanSlot * vtime.Duration(e.rt.RootCount()))
}

// scanThreadStack pushes one thread's stack slots (the concurrent phase
// scans each stack exactly once, at the thread's first allocation).
func (e *engine) scanThreadStack(ch charger, tr *workpack.Tracer, th *mutator.Thread) {
	for _, a := range th.Stack {
		if e.comp != nil {
			e.comp.notePin(a) // conservatively scanned: unmovable
		}
		e.markAndPush(ch, tr, a)
	}
	ch.Charge(e.costs.StackScanSlot * vtime.Duration(len(th.Stack)))
}

// scanGlobals pushes the global roots.
func (e *engine) scanGlobals(ch charger, tr *workpack.Tracer) {
	for _, a := range e.rt.Globals() {
		if e.comp != nil {
			e.comp.notePin(a)
		}
		e.markAndPush(ch, tr, a)
	}
	ch.Charge(e.costs.StackScanSlot * vtime.Duration(len(e.rt.Globals())))
}

// cleanCard rescans the marked objects whose headers lie on the card,
// retracing each (they may now reference unmarked objects). It returns the
// bytes retraced.
func (e *engine) cleanCard(ch charger, tr *workpack.Tracer, card int) int64 {
	e.cardsCleaned++
	e.rt.Cards.NoteCleaned(1)
	ch.Charge(e.costs.CardScan)
	from, to := e.rt.Cards.CardBounds(card)
	if int(to) > e.rt.Heap.SizeWords() {
		to = heapsim.Addr(e.rt.Heap.SizeWords())
	}
	var retraced int64
	hasYoungRef := false
	e.rt.Heap.ObjectsIn(from, to, func(a heapsim.Addr) {
		if e.rt.Heap.MarkBits.Test(int(a)) {
			retraced += e.traceObject(ch, tr, a)
		}
		if e.nurTo > 0 && !hasYoungRef {
			refs := e.rt.Heap.RefCount(a)
			for i := 0; i < refs; i++ {
				if v := e.rt.Heap.RefAt(a, i); v >= e.nurFrom && v < e.nurTo {
					hasYoungRef = true
					break
				}
			}
		}
	})
	if hasYoungRef {
		// Keep the generational remembered set intact (see field doc).
		e.rememberedCards = append(e.rememberedCards, card)
	}
	return retraced
}

// scanNursery treats the whole nursery as a root set: every published
// nursery object's reference slots are scanned and their old-space targets
// marked. Done at old-cycle start and again in the pause.
func (e *engine) scanNursery(ch charger, tr *workpack.Tracer) {
	e.scanNurserySegment(ch, tr, e.nurFrom, e.nurTo)
}

// nurserySegments returns how many segment tasks the nursery scan splits
// into, so the stop-the-world rescan parallelizes across workers.
func (e *engine) nurserySegments() int {
	if e.nurTo == 0 {
		return 0
	}
	const segWords = 64 << 10 / heapsim.WordBytes * 8 // 512 KB segments
	n := (int(e.nurTo-e.nurFrom) + segWords - 1) / segWords
	if n < 1 {
		n = 1
	}
	return n
}

// scanNurserySegmentTask scans the k-th segment (see nurserySegments).
func (e *engine) scanNurserySegmentTask(ch charger, tr *workpack.Tracer, k int) {
	total := int(e.nurTo - e.nurFrom)
	n := e.nurserySegments()
	segWords := (total + n - 1) / n
	from := e.nurFrom + heapsim.Addr(k*segWords)
	to := from + heapsim.Addr(segWords)
	if to > e.nurTo {
		to = e.nurTo
	}
	e.scanNurserySegment(ch, tr, from, to)
}

func (e *engine) scanNurserySegment(ch charger, tr *workpack.Tracer, from, to heapsim.Addr) {
	if e.nurTo == 0 || from >= to {
		return
	}
	e.rt.Heap.ObjectsIn(from, to, func(a heapsim.Addr) {
		words, refs := e.rt.Heap.Header(a)
		ch.Charge(machine.ForBytes(e.costs.TraceBytePs, int64(words)*heapsim.WordBytes))
		for i := 0; i < refs; i++ {
			e.markAndPush(ch, tr, e.rt.Heap.RefAt(a, i))
		}
	})
}

// drainAll traces until the pool is exhausted (no budget). Stop-the-world
// marking uses it via RunParallel workers.
func (e *engine) drainAll(ch charger, tr *workpack.Tracer) int64 {
	const unbounded = int64(1) << 62
	return e.traceFromPackets(ch, tr, unbounded)
}

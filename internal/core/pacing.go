package core

import (
	"mcgc/internal/heapsim"
	"mcgc/internal/pacing"
)

// The Section 3 pacing machinery lives in the backend-neutral
// internal/pacing package; this file is the simulator backend's thin
// adapter onto it. The simulator's pacing "word" is one byte of simulated
// heap, so the configuration and every pacer call are in bytes here.

// PacingConfig holds the Section 3 tuning parameters (see pacing.Config;
// word-valued fields are heap bytes for this backend).
type PacingConfig = pacing.Config

// DefaultPacing returns the configuration used in the paper's default runs.
func DefaultPacing() PacingConfig { return pacing.Default() }

// heapBytesView feeds the simulated heap's free/occupied bytes to the
// pacer: the narrow HeapView the formulas sample at every decision point.
type heapBytesView struct{ h *heapsim.Heap }

func (v heapBytesView) FreeWords() int64     { return v.h.FreeBytes() }
func (v heapBytesView) OccupiedWords() int64 { return v.h.OccupiedBytes() }

// newPacer builds the shared formula policy over the simulated heap. The
// simulator drives the concrete FormulaPolicy rather than pacing.Policy: it
// plots the fine-grained surface (Predictions, Best, BestPrimed) that only
// the formula exposes.
func newPacer(cfg PacingConfig, h *heapsim.Heap) *pacing.FormulaPolicy {
	return pacing.NewFormula(cfg, heapBytesView{h})
}

package core

import (
	"mcgc/internal/stats"
)

// PacingConfig holds the Section 3 tuning parameters.
type PacingConfig struct {
	// K0 is the desired allocator tracing rate: bytes traced per byte
	// allocated ("typically 5 to 10"; the paper's default runs use 8.0).
	K0 float64
	// KMax caps the adaptive rate; "typically 2*K0". Zero means 2*K0.
	KMax float64
	// C is the corrective term applied when tracing is behind schedule:
	// the rate used is K + (K-K0)*C.
	C float64
	// SmoothAlpha is the exponential smoothing factor for the L, M and
	// Best predictors.
	SmoothAlpha float64
	// InitialDirtyFraction seeds the M predictor before any history: the
	// fraction of occupied bytes expected to be on dirty cards (the paper
	// observes about 10% of the heap dirty when cleaning is deferred).
	InitialDirtyFraction float64
	// HeadroomBytes is added to the kickoff threshold. The generational
	// extension sets it to the nursery size: old-space consumption
	// arrives in whole-nursery promotion bursts, so the concurrent phase
	// must start early enough to absorb one.
	HeadroomBytes int64
}

// DefaultPacing returns the configuration used in the paper's default runs.
func DefaultPacing() PacingConfig {
	return PacingConfig{
		K0:                   8.0,
		C:                    1.0,
		SmoothAlpha:          0.4,
		InitialDirtyFraction: 0.05,
	}
}

func (p PacingConfig) kmax() float64 {
	if p.KMax > 0 {
		return p.KMax
	}
	return 2 * p.K0
}

// pacer implements the kickoff and progress formulas of Section 3.1 and the
// background-tracing accounting of Section 3.2.
type pacer struct {
	cfg PacingConfig

	// L predicts the bytes to be traced in the concurrent phase; M
	// predicts the bytes on dirty cards that must additionally be
	// scanned. Both are exponential smoothing averages of past cycles.
	l *stats.ExpSmooth
	m *stats.ExpSmooth

	// best is the smoothed ratio of background tracing to mutator
	// allocation ("Best ... used as a prediction for the near-future
	// tracing rate of the background threads").
	best *stats.ExpSmooth

	// Per-cycle progress state.
	traced int64 // T: bytes traced since the concurrent phase began

	// Background measurement window.
	windowAlloc int64
	windowBg    int64
}

func newPacer(cfg PacingConfig) *pacer {
	return &pacer{
		cfg:  cfg,
		l:    stats.NewExpSmooth(cfg.SmoothAlpha),
		m:    stats.NewExpSmooth(cfg.SmoothAlpha),
		best: stats.NewExpSmooth(cfg.SmoothAlpha),
	}
}

// predictions returns the current L and M estimates, seeding them from the
// heap state when no history exists.
func (p *pacer) predictions(occupiedBytes int64) (l, m float64) {
	l = p.l.Value()
	if !p.l.Primed() {
		l = float64(occupiedBytes)
	}
	m = p.m.Value()
	if !p.m.Primed() {
		m = p.cfg.InitialDirtyFraction * float64(occupiedBytes)
	}
	return l, m
}

// kickoffThreshold returns the free-memory level below which the concurrent
// phase starts: (L+M)/K0 plus the configured headroom.
func (p *pacer) kickoffThreshold(occupiedBytes int64) float64 {
	l, m := p.predictions(occupiedBytes)
	return (l+m)/p.cfg.K0 + float64(p.cfg.HeadroomBytes)
}

// shouldKickoff evaluates the kickoff formula: start the concurrent phase
// when free memory drops below (L+M)/K0.
func (p *pacer) shouldKickoff(freeBytes, occupiedBytes int64) bool {
	return float64(freeBytes) < p.kickoffThreshold(occupiedBytes)
}

// startCycle resets the per-cycle progress state.
func (p *pacer) startCycle() {
	p.traced = 0
	p.windowAlloc = 0
	p.windowBg = 0
}

// noteTraced accounts tracing work from any participant (T accumulates
// both mutator and background tracing).
func (p *pacer) noteTraced(bytes int64) { p.traced += bytes }

// noteBackground accounts background-thread tracing for the B window.
func (p *pacer) noteBackground(bytes int64) {
	p.traced += bytes
	p.windowBg += bytes
}

// noteAllocation feeds the allocation side of the B window; when the window
// is full, B is sampled into Best.
const bWindowBytes = 1 << 20

func (p *pacer) noteAllocation(bytes int64) {
	p.windowAlloc += bytes
	if p.windowAlloc >= bWindowBytes {
		b := float64(p.windowBg) / float64(p.windowAlloc)
		p.best.Add(b)
		p.windowAlloc = 0
		p.windowBg = 0
	}
}

// rate evaluates the progress formula and the background discount, and
// returns the tracing rate a mutator must apply to its current allocation:
// bytes of tracing per byte allocated.
//
//	K = (M + L - T) / F      (negative => KMax: L or M were underestimated)
//	if K < Best: K = 0       (background threads are keeping up)
//	else:        K -= Best
//	if K > K0:   K += (K-K0)*C, capped at KMax
func (p *pacer) rate(freeBytes, occupiedBytes int64) float64 {
	k, _, _ := p.rateDetail(freeBytes, occupiedBytes)
	return k
}

// rateDetail is rate plus the intermediate terms the telemetry layer
// records: the corrective addition applied when tracing fell behind K0, and
// the Best discount in effect.
func (p *pacer) rateDetail(freeBytes, occupiedBytes int64) (k, corrective, best float64) {
	l, m := p.predictions(occupiedBytes)
	kmax := p.cfg.kmax()
	best = p.best.Value()
	// The headroom shifts the completion target: tracing should finish
	// while that much free memory remains (one promotion burst, under the
	// generational extension), not at the exact moment of exhaustion.
	freeBytes -= p.cfg.HeadroomBytes
	if freeBytes <= 0 {
		return kmax, 0, best
	}
	k = (m + l - float64(p.traced)) / float64(freeBytes)
	if k < 0 {
		return kmax, 0, best
	}
	if k < best {
		return 0, 0, best
	}
	k -= best
	if k > p.cfg.K0 {
		corrective = (k - p.cfg.K0) * p.cfg.C
		k += corrective
	}
	if k > kmax {
		k = kmax
	}
	return k, corrective, best
}

// endCycle records the cycle's actual traced volume and dirty-card volume
// into the L and M predictors.
func (p *pacer) endCycle(tracedBytes, dirtyCardBytes int64) {
	p.l.Add(float64(tracedBytes))
	p.m.Add(float64(dirtyCardBytes))
}

// tracedBytes returns T.
func (p *pacer) tracedBytes() int64 { return p.traced }

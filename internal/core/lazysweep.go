package core

import (
	"mcgc/internal/gctrace"
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
)

// Lazy sweep is the Section 7 future-work extension: sweeping is deferred
// out of the stop-the-world pause and performed incrementally — "techniques
// similar to those used for concurrent tracing to delay sweeping until
// needed and spread sweeping work between mutator threads and idle low
// priority background threads". After the mark phase the pause ends
// immediately; allocation-cache refills then sweep a few sections ahead of
// the allocator, and an allocation failure sweeps just far enough to
// produce a chunk that satisfies the request.
//
// Sections are swept strictly in address order so the cross-boundary merge
// state (cover/pending, as in sweep.go) can be carried incrementally.

// lazySweeper is the sweep continuation left behind by a lazy-mode cycle.
type lazySweeper struct {
	s *sweeper
	h *heapsim.Heap

	k       int          // next section to sweep
	cover   heapsim.Addr // end of live coverage seen so far
	pending heapsim.Addr // start of an open free run, or Nil
}

// newLazySweeper invalidates the old free list (everything free will be
// rediscovered section by section) and returns the continuation.
func newLazySweeper(h *heapsim.Heap, costs machine.Costs, limitWords int) *lazySweeper {
	h.InstallFreeList(nil, 0)
	return &lazySweeper{s: newSweeper(h, costs, limitWords), h: h, cover: 1}
}

// done reports whether every section has been swept.
func (ls *lazySweeper) done() bool { return ls.k >= ls.s.numSections() }

// emit releases the free run [from, to): clears its dead allocation bits
// and returns it to the free list (ReturnChunk files sub-minimum runs as
// dark matter).
func (ls *lazySweeper) emit(from, to heapsim.Addr) int {
	if from >= to {
		return 0
	}
	ls.h.AllocBits.ClearRange(int(from), int(to))
	words := int(to - from)
	ls.h.ReturnChunk(heapsim.Chunk{Addr: from, Words: words})
	return words
}

// sweepOne sweeps the next section and feeds its free runs to the heap. It
// returns the largest chunk (in words) made available by this call.
func (ls *lazySweeper) sweepOne(ch charger) int {
	if ls.done() {
		return 0
	}
	k := ls.k
	ls.k++
	ls.s.sweepSection(ch, k)
	res := &ls.s.sections[k]
	secFrom, secTo := ls.s.sectionBounds(k)

	largest := 0
	if !res.hasLive {
		if ls.cover < secTo && ls.pending == heapsim.Nil {
			ls.pending = vmax(ls.cover, secFrom)
		}
	} else {
		if ls.pending == heapsim.Nil && ls.cover < res.firstLive {
			ls.pending = vmax(ls.cover, secFrom)
		}
		if ls.pending != heapsim.Nil && ls.pending < res.firstLive {
			largest = max(largest, ls.emit(ls.pending, res.firstLive))
		}
		ls.pending = heapsim.Nil
		for _, c := range res.interior {
			// Interior gaps had their allocation bits cleared during
			// sweepSection already.
			ls.h.ReturnChunk(c)
			largest = max(largest, c.Words)
		}
		if res.lastEnd > ls.cover {
			ls.cover = res.lastEnd
		}
		if res.lastEnd < secTo {
			ls.pending = res.lastEnd
		}
	}
	if ls.done() && ls.pending != heapsim.Nil {
		largest = max(largest, ls.emit(ls.pending, heapsim.Addr(ls.s.limitWords)))
		ls.pending = heapsim.Nil
	}
	return largest
}

// lazySweepBytes advances the continuation by roughly `bytes` of heap; the
// CGC calls it from every allocation pacing point.
func (c *CGC) lazySweepBytes(ctx *machine.Context, bytes int64) {
	if c.lazy == nil {
		return
	}
	sections := int(bytes/(sweepSectionWords*heapsim.WordBytes)) + 1
	for i := 0; i < sections && !c.lazy.done(); i++ {
		c.lazy.sweepOne(ctx)
	}
	if c.lazy.done() {
		c.lazy = nil
		c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.LazySweepDone, FreeBytes: c.rt.Heap.FreeBytes()})
	}
}

// lazyFinish drains the whole continuation (allocation failure, or a new
// cycle is about to need the mark bits).
func (c *CGC) lazyFinish(ctx *machine.Context) {
	if c.lazy == nil {
		return
	}
	for !c.lazy.done() {
		c.lazy.sweepOne(ctx)
	}
	c.lazy = nil
	c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.LazySweepDone, FreeBytes: c.rt.Heap.FreeBytes()})
}

package core

import (
	"math/rand"
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

// The collector tests drive a churning mutator that maintains a shadow
// model of the object graph it builds. Every allocation gets a unique id
// stored in payload slot 0; the shadow records the id and the reference
// slots. After a run, every shadow-reachable object must exist in the heap
// with matching id and references — a collector that freed (or allowed the
// reuse of) a live object fails the comparison.

type shadowObj struct {
	id    uint64
	words int
	refs  []heapsim.Addr
}

type churner struct {
	rt     *mutator.Runtime
	th     *mutator.Thread
	r      *rand.Rand
	nextID uint64

	shadow map[heapsim.Addr]*shadowObj

	// The retained population holds residency near the target the way the
	// paper sizes its heaps for 60% occupancy. It is organised like real
	// transaction data: a directory object (a large ref array, like a
	// hash table's bucket array) points at blocks; each block is a linked
	// list of nodes allocated consecutively, and blocks are replaced
	// wholesale — so death is clustered and sweep recovers usable chunks
	// instead of confetti.
	directory heapsim.Addr
	numBlocks int

	// leaves is an immortal pool the nodes' data edges point into, so
	// edge rewrites never resurrect replaced nodes.
	leaves []heapsim.Addr

	initDone        bool
	residencyPct    int // retained share of the heap (default 55)
	maxGarbageRoots int

	allocs int64
}

// Shapes.
const (
	nodeRefs     = 2 // next, leaf edge
	nodePayload  = 4
	blockNodes   = 64
	leafPoolSize = 128
	leafPayload  = 6
)

func newChurner(rt *mutator.Runtime, th *mutator.Thread, seed int64) *churner {
	c := &churner{
		rt:              rt,
		th:              th,
		r:               rand.New(rand.NewSource(seed)),
		shadow:          make(map[heapsim.Addr]*shadowObj),
		residencyPct:    55,
		maxGarbageRoots: 16,
	}
	// Stack slot 0 anchors the directory once it exists.
	th.Stack = append(th.Stack, heapsim.Nil)
	return c
}

func (c *churner) blockBytes() int64 {
	return int64(blockNodes*heapsim.ObjectWords(nodeRefs, nodePayload)) * heapsim.WordBytes
}

// step performs one mutation. The first call builds the retained
// population; afterwards it churns: short-lived garbage, block replacement
// (constant residency, clustered garbage) and edge rewrites that exercise
// the write barrier.
func (c *churner) step(ctx *machine.Context) {
	if !c.initDone {
		c.initialize(ctx)
		return
	}
	switch c.r.Intn(10) {
	case 0, 1, 2, 3, 4, 5:
		c.allocGarbage(ctx)
	case 6, 7:
		c.replaceBlock(ctx)
	case 8:
		// Rewrite a leaf edge in a random block head: barrier work.
		b := c.r.Intn(c.numBlocks)
		node := c.rt.Heap.RefAt(c.directory, b)
		if node != heapsim.Nil {
			leaf := c.leaves[c.r.Intn(len(c.leaves))]
			c.rt.SetRef(ctx, node, 1, leaf)
			c.shadow[node].refs[1] = leaf
		}
	case 9:
		// Drop a garbage root (slots 0 and 1 hold the directory and the
		// leaf anchor, which are permanent).
		if len(c.th.Stack) > 2 {
			i := 2 + c.r.Intn(len(c.th.Stack)-2)
			c.th.Stack = append(c.th.Stack[:i], c.th.Stack[i+1:]...)
		} else {
			c.allocGarbage(ctx)
		}
	}
}

// initialize builds the leaf pool, the directory and the retained blocks up
// to ~55% residency.
func (c *churner) initialize(ctx *machine.Context) {
	// Every allocation below can trigger a collection, so — exactly as a
	// real mutator's stack frames would — temporaries must be rooted on
	// the simulated stack for as long as they are otherwise unreachable.
	for i := 0; i < leafPoolSize; i++ {
		l := c.allocNode(ctx, 0, leafPayload)
		c.leaves = append(c.leaves, l)
		c.th.Stack = append(c.th.Stack, l) // temporary root until anchored
	}
	target := c.rt.Heap.UsableBytes() * int64(c.residencyPct) / 100
	c.numBlocks = int(target / c.blockBytes())
	if c.numBlocks < 4 {
		c.numBlocks = 4
	}
	// The directory is a large object: numBlocks ref slots.
	dir := c.rt.Alloc(ctx, c.th, c.numBlocks, 1)
	c.allocs++
	c.nextID++
	c.rt.Heap.SetPayload(dir, 0, c.nextID)
	c.shadow[dir] = &shadowObj{
		id:    c.nextID,
		words: heapsim.ObjectWords(c.numBlocks, 1),
		refs:  make([]heapsim.Addr, c.numBlocks),
	}
	c.directory = dir
	c.th.Stack[0] = dir
	// Move the leaves off the stack into an anchor object at stack slot 1.
	anchor := c.allocNode(ctx, leafPoolSize, 1)
	for i, l := range c.leaves {
		c.rt.SetRef(ctx, anchor, i, l)
		c.shadow[anchor].refs[i] = l
	}
	c.th.Stack = append(c.th.Stack[:1], anchor)
	for b := 0; b < c.numBlocks; b++ {
		c.installBlock(ctx, b)
	}
	c.initDone = true
}

// installBlock allocates a fresh block (a linked list of blockNodes nodes,
// allocated consecutively) and stores its head in directory slot b.
func (c *churner) installBlock(ctx *machine.Context, b int) {
	// The list under construction is reachable only from the local
	// variable head, so mirror it in a dedicated stack slot: any of the
	// allocations below may run a collection.
	c.th.Stack = append(c.th.Stack, heapsim.Nil)
	slot := len(c.th.Stack) - 1
	head := heapsim.Nil
	for i := 0; i < blockNodes; i++ {
		n := c.allocNode(ctx, nodeRefs, nodePayload)
		c.rt.SetRef(ctx, n, 0, head)
		c.shadow[n].refs[0] = head
		leaf := c.leaves[c.r.Intn(len(c.leaves))]
		c.rt.SetRef(ctx, n, 1, leaf)
		c.shadow[n].refs[1] = leaf
		head = n
		c.th.Stack[slot] = head
	}
	c.rt.SetRef(ctx, c.directory, b, head)
	c.shadow[c.directory].refs[b] = head
	c.th.Stack = c.th.Stack[:slot]
}

// replaceBlock rebuilds one block: the old one becomes clustered garbage.
func (c *churner) replaceBlock(ctx *machine.Context) {
	c.installBlock(ctx, c.r.Intn(c.numBlocks))
}

// allocNode allocates one object and records it in the shadow.
func (c *churner) allocNode(ctx *machine.Context, refs, payload int) heapsim.Addr {
	a := c.rt.Alloc(ctx, c.th, refs, payload)
	c.allocs++
	c.nextID++
	c.rt.Heap.SetPayload(a, 0, c.nextID)
	c.shadow[a] = &shadowObj{
		id:    c.nextID,
		words: heapsim.ObjectWords(refs, payload),
		refs:  make([]heapsim.Addr, refs),
	}
	return a
}

// allocGarbage makes a small object that dies quickly: rooted briefly in a
// rotating stack slot, often referencing retained data (so card cleaning
// sees cross references).
func (c *churner) allocGarbage(ctx *machine.Context) {
	refs := c.r.Intn(3)
	payload := 1 + c.r.Intn(6)
	a := c.allocNode(ctx, refs, payload)
	for i := 0; i < refs; i++ {
		if c.r.Intn(2) == 0 {
			t := c.leaves[c.r.Intn(len(c.leaves))]
			c.rt.SetRef(ctx, a, i, t)
			c.shadow[a].refs[i] = t
		}
	}
	if c.r.Intn(3) > 0 {
		if len(c.th.Stack)-2 >= c.maxGarbageRoots {
			i := 2 + c.r.Intn(len(c.th.Stack)-2)
			c.th.Stack[i] = a
		} else {
			c.th.Stack = append(c.th.Stack, a)
		}
	}
}

// verify walks the shadow graph from the roots and checks the heap agrees.
func (c *churner) verify(t *testing.T) int64 {
	t.Helper()
	// Publish any allocation bits still batched in the cache (Section
	// 5.2): outside a stop, the youngest objects are legitimately
	// unpublished.
	c.th.Cache.Flush()
	h := c.rt.Heap
	seen := make(map[heapsim.Addr]bool)
	var stack []heapsim.Addr
	for _, a := range c.th.Stack {
		if a != heapsim.Nil && !seen[a] {
			seen[a] = true
			stack = append(stack, a)
		}
	}
	var reachableBytes int64
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s := c.shadow[a]
		if s == nil {
			t.Fatalf("reachable object %d missing from shadow (test bug)", a)
		}
		if !h.AllocBits.Test(int(a)) {
			t.Fatalf("reachable object %d (id %d) lost its allocation bit: collected while live", a, s.id)
		}
		if got := h.SizeOf(a); got != s.words {
			t.Fatalf("object %d: heap size %d, shadow %d (memory reused while live)", a, got, s.words)
		}
		if got := h.PayloadAt(a, 0); got != s.id {
			t.Fatalf("object %d: id %d, shadow %d (memory reused while live)", a, got, s.id)
		}
		if got := h.RefCount(a); got != len(s.refs) {
			t.Fatalf("object %d: refcount %d, shadow %d", a, got, len(s.refs))
		}
		reachableBytes += int64(s.words) * heapsim.WordBytes
		for i, want := range s.refs {
			got := h.RefAt(a, i)
			if got != want {
				t.Fatalf("object %d slot %d: ref %d, shadow %d", a, i, got, want)
			}
			if want != heapsim.Nil && !seen[want] {
				seen[want] = true
				stack = append(stack, want)
			}
		}
	}
	return reachableBytes
}

// testEnv couples a machine, runtime and churner for one collector run.
type testEnv struct {
	m  *machine.Machine
	rt *mutator.Runtime
	ch *churner
}

// newEnv builds the environment; the caller attaches a collector before
// calling run.
func newEnv(heapBytes int64, procs int) *testEnv {
	m := machine.New(procs)
	rt := mutator.NewRuntime(heapBytes, mutator.DefaultConfig(), machine.DefaultCosts())
	return &testEnv{m: m, rt: rt}
}

// run churns until the virtual deadline.
func (e *testEnv) run(seed int64, deadline vtime.Duration) {
	th := e.rt.NewThread()
	e.ch = newChurner(e.rt, th, seed)
	e.m.AddThread("churner", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		for i := 0; i < 32; i++ {
			e.ch.step(ctx)
		}
		return machine.Continue
	})
	e.m.Run(vtime.Time(deadline))
}

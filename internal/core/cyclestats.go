package core

import (
	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// CycleStats records one garbage collection cycle, with the components the
// paper's evaluation reports.
type CycleStats struct {
	Reason string // "alloc-failure", "conc-done", "kickoff"

	// Timeline.
	ConcStartAt vtime.Time // concurrent phase start (CGC only; zero for STW)
	RequestedAt vtime.Time // stop-the-world requested
	StoppedAt   vtime.Time // all threads parked
	MarkEndAt   vtime.Time
	EndAt       vtime.Time // world resumed

	// Pause components (all within the stop-the-world window).
	Pause       vtime.Duration // RequestedAt -> EndAt, the paper's pause time
	MarkTime    vtime.Duration // final marking including in-pause card cleaning
	SweepTime   vtime.Duration
	RootTime    vtime.Duration // included in MarkTime; reported separately
	CompactTime vtime.Duration // incremental compaction, when enabled

	// Work volumes.
	BytesTracedConc  int64 // traced during the concurrent phase (CGC)
	BytesTracedStw   int64 // traced during the pause
	CardsCleanedConc int
	CardsCleanedStw  int
	CardsLeft        int // dirty cards pending when an allocation failure cut the phase short

	// Heap state.
	LiveAfter        int64 // occupied bytes right after the cycle
	FreeAfter        int64
	LargestFreeAfter int64 // largest free chunk right after the cycle
	FreeAtConcEnd    int64 // free bytes when the concurrent phase completed (premature-GC criterion)

	ConcCompleted bool // concurrent phase finished all work before the trigger

	// Allocation snapshots for the Table 3 utilization measurement: the
	// collector's cumulative allocation counter at the previous cycle's
	// end, at this cycle's concurrent start, and at the stop request.
	PrevEndAt        vtime.Time
	AllocAtPrevEnd   int64
	AllocAtConcStart int64
	AllocAtStw       int64

	// Incremental tracing quality (CGC; Table 4 inputs).
	Increments     int64
	TracingFactors stats.Welford // per-increment achieved/assigned ratio
	BgBytes        int64         // bytes traced by background threads this cycle
	CASAtStart     int64         // pool CAS counter snapshot at cycle start
	CASAtEnd       int64
}

// MarkOnlyPause returns the pause minus the sweep component — the quantity
// the paper projects for lazy sweep.
func (c *CycleStats) MarkOnlyPause() vtime.Duration { return c.Pause - c.SweepTime }

// PreConcRate returns the application allocation rate (bytes per virtual
// second) between the previous cycle's end and this cycle's concurrent
// start — the "pre-concurrent" rate of Table 3. Zero if unmeasurable.
func (c *CycleStats) PreConcRate() float64 {
	d := c.ConcStartAt.Sub(c.PrevEndAt)
	if d <= 0 || c.ConcStartAt == 0 {
		return 0
	}
	return float64(c.AllocAtConcStart-c.AllocAtPrevEnd) / d.Seconds()
}

// ConcRate returns the application allocation rate while the concurrent
// phase was active. Zero if unmeasurable.
func (c *CycleStats) ConcRate() float64 {
	d := c.RequestedAt.Sub(c.ConcStartAt)
	if d <= 0 || c.ConcStartAt == 0 {
		return 0
	}
	return float64(c.AllocAtStw-c.AllocAtConcStart) / d.Seconds()
}

// SummarizePauses reduces a cycle list to the pause statistics the paper's
// figures plot.
func SummarizePauses(cycles []CycleStats) (pause, mark, sweep stats.DurationSummary) {
	var ps, ms, ss []vtime.Duration
	for i := range cycles {
		ps = append(ps, cycles[i].Pause)
		ms = append(ms, cycles[i].MarkTime)
		ss = append(ss, cycles[i].SweepTime)
	}
	return stats.Summarize(ps), stats.Summarize(ms), stats.Summarize(ss)
}

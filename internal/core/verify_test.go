package core

import (
	"strings"
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

func TestVerifyHeapCleanAfterCycles(t *testing.T) {
	// The shadow churner is address-keyed, so it only drives non-moving
	// configurations; the compaction case gets a chain-churn driver whose
	// bookkeeping is re-read through the heap.
	for _, mode := range []struct {
		name string
		cfg  func() CGCConfig
	}{
		{"default", testCGCConfig},
		{"lazy", func() CGCConfig { c := testCGCConfig(); c.LazySweep = true; return c }},
	} {
		t.Run(mode.name, func(t *testing.T) {
			env, col := runCGC(t, 2<<20, 2, mode.cfg(), 51, 1500*vtime.Millisecond)
			if len(col.Cycles) == 0 {
				t.Fatal("no cycles")
			}
			env.rt.RetireAllCaches()
			if err := VerifyHeap(env.rt, false); err != nil {
				t.Fatalf("heap invariants violated after %s run: %v", mode.name, err)
			}
		})
	}
	t.Run("compaction", func(t *testing.T) {
		env, col := newCompactingEnv(2<<20, 2)
		rt := env.rt
		th := rt.NewThread()
		done := false
		env.m.AddThread("chains", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
			// Keep two rotating chains alive, rebuilding them in turn.
			if len(th.Stack) == 0 {
				th.Stack = append(th.Stack, heapsim.Nil, heapsim.Nil)
			}
			for round := 0; round < 400; round++ {
				slot := round % 2
				th.Stack[slot] = heapsim.Nil
				for i := 0; i < 800; i++ {
					n := rt.Alloc(ctx, th, 1, 2)
					rt.SetRef(ctx, n, 0, th.Stack[slot])
					th.Stack[slot] = n
				}
			}
			done = true
			return machine.Finish
		})
		env.m.Run(vtime.Time(120 * vtime.Second))
		if !done {
			t.Fatal("driver did not finish")
		}
		if len(col.Cycles) == 0 {
			t.Fatal("no cycles")
		}
		rt.RetireAllCaches()
		if err := VerifyHeap(rt, false); err != nil {
			t.Fatalf("heap invariants violated after compaction run: %v", err)
		}
		if st := col.Compactor(); st.EvacuatedObjects == 0 {
			t.Log("note: no objects were evacuated this run")
		}
	})
}

func TestVerifyHeapAfterSTWBaseline(t *testing.T) {
	env := newEnv(1<<20, 2)
	col := NewSTW(env.rt, env.m, 64, 32, 2)
	env.rt.SetCollector(col)
	env.run(52, vtime.Second)
	env.rt.RetireAllCaches()
	if err := VerifyHeap(env.rt, true); err != nil {
		t.Fatalf("invariants after STW run: %v", err)
	}
}

// The verifier must actually catch corruption: seed specific defects and
// confirm the error names them.
func TestVerifyHeapDetectsDefects(t *testing.T) {
	build := func() (*mutator.Runtime, heapsim.Addr, heapsim.Addr) {
		m := machine.New(1)
		rt := mutator.NewRuntime(1<<18, mutator.DefaultConfig(), machine.DefaultCosts())
		col := NewSTW(rt, m, 16, 16, 1)
		rt.SetCollector(col)
		th := rt.NewThread()
		var a, b heapsim.Addr
		m.AddThread("p", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
			a = rt.Alloc(ctx, th, 2, 2)
			b = rt.Alloc(ctx, th, 0, 2)
			rt.SetRef(ctx, a, 0, b)
			th.Stack = append(th.Stack, a, b)
			return machine.Finish
		})
		m.Run(vtime.Time(vtime.Second))
		rt.RetireAllCaches()
		return rt, a, b
	}

	t.Run("clean", func(t *testing.T) {
		rt, _, _ := build()
		if err := VerifyHeap(rt, true); err != nil {
			t.Fatalf("clean heap flagged: %v", err)
		}
	})
	t.Run("dangling reference", func(t *testing.T) {
		rt, a, b := build()
		rt.Heap.AllocBits.Clear(int(b)) // simulate wrongly-freed target
		err := VerifyHeap(rt, true)
		if err == nil || !strings.Contains(err.Error(), "dangling") {
			t.Fatalf("err = %v, want dangling reference", err)
		}
		_ = a
	})
	t.Run("stray mark bit", func(t *testing.T) {
		rt, a, _ := build()
		rt.Heap.MarkBits.Set(int(a) + 1) // inside the object body
		err := VerifyHeap(rt, true)
		if err == nil || !strings.Contains(err.Error(), "mark bit") {
			t.Fatalf("err = %v, want stray mark bit", err)
		}
	})
	t.Run("bad root", func(t *testing.T) {
		rt, a, _ := build()
		rt.Threads()[0].Stack = append(rt.Threads()[0].Stack, a+1)
		err := VerifyHeap(rt, true)
		if err == nil || !strings.Contains(err.Error(), "root") {
			t.Fatalf("err = %v, want bad root", err)
		}
	})
	t.Run("overlapping alloc bit", func(t *testing.T) {
		rt, a, _ := build()
		rt.Heap.AllocBits.Set(int(a) + 1) // phantom object inside a real one
		err := VerifyHeap(rt, true)
		if err == nil {
			t.Fatal("overlap not detected")
		}
	})
}

package core

import (
	"fmt"

	"mcgc/internal/gctrace"
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workpack"
)

// markQuantumBytes bounds one parallel-mark step so RunParallel interleaves
// workers at a realistic granularity.
const markQuantumBytes = 16 << 10

// STW is the parallel stop-the-world mark-sweep collector: the mature
// baseline the paper builds on and compares against (its parallel marker
// follows Endo et al as cited in Section 2.2, here realized with work
// packets; its sweep is the parallel bitwise sweep).
type STW struct {
	rt      *mutator.Runtime
	m       *machine.Machine
	eng     *engine
	workers int
	tel     *coreTel

	// Trace, when set, receives structured collection events.
	Trace gctrace.Sink

	Cycles []CycleStats
}

func (c *STW) emit(e gctrace.Event) {
	if c.Trace != nil {
		c.Trace.Emit(e)
	}
}

// NewSTW creates the baseline collector. workers is the number of parallel
// GC threads used during the pause; the paper uses one per processor.
func NewSTW(rt *mutator.Runtime, m *machine.Machine, packets, packetCap, workers int) *STW {
	if workers <= 0 {
		workers = m.Processors()
	}
	return &STW{rt: rt, m: m, eng: newEngine(rt, packets, packetCap), workers: workers}
}

// AttachTelemetry connects a metrics registry and/or timeline (either may be
// nil; both nil disables instrumentation entirely).
func (c *STW) AttachTelemetry(reg *telemetry.Registry, tl *telemetry.Timeline) {
	c.tel = newCoreTel(reg, tl)
}

// FinishTelemetry flushes the run's cumulative counters into the registry.
func (c *STW) FinishTelemetry() {
	c.tel.finishRun(c.eng.pool, c.eng)
}

// Name implements mutator.Collector.
func (c *STW) Name() string { return "stw" }

// OnCacheRefill implements mutator.Collector; the baseline does no
// incremental work.
func (c *STW) OnCacheRefill(*machine.Context, *mutator.Thread, int64) {}

// OnLargeAlloc implements mutator.Collector.
func (c *STW) OnLargeAlloc(*machine.Context, *mutator.Thread, int64) {}

// BarrierActive implements mutator.Collector: the baseline needs no write
// barrier.
func (c *STW) BarrierActive() bool { return false }

// OnAllocFailure implements mutator.Collector: run a full collection.
func (c *STW) OnAllocFailure(ctx *machine.Context, th *mutator.Thread) {
	c.Collect(ctx, "alloc-failure")
}

// Collect performs one full stop-the-world collection.
func (c *STW) Collect(ctx *machine.Context, reason string) {
	var cs CycleStats
	cs.Reason = reason
	c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.PauseStart, Reason: reason})
	c.m.StopTheWorld(ctx, "stw:"+reason, func(stoppedAt vtime.Time) vtime.Time {
		cs.RequestedAt = ctx.Now()
		cs.StoppedAt = stoppedAt
		c.rt.RetireAllCaches()
		c.rt.Heap.MarkBits.ClearAll()
		markEnd := stwMarkPhase(c.eng, c.rt, stoppedAt, c.workers)
		cs.MarkEndAt = markEnd
		cs.MarkTime = markEnd.Sub(stoppedAt)
		c.emit(gctrace.Event{At: markEnd, Kind: gctrace.MarkEnd})
		sweepEnd, _ := runParallelSweep(c.rt.Heap, c.rt.Costs, markEnd, c.workers, 0)
		cs.SweepTime = sweepEnd.Sub(markEnd)
		c.emit(gctrace.Event{At: sweepEnd, Kind: gctrace.SweepEnd, FreeBytes: c.rt.Heap.FreeBytes()})
		return sweepEnd
	})
	cs.EndAt = ctx.Now()
	cs.Pause = cs.EndAt.Sub(cs.RequestedAt)
	cs.BytesTracedStw = c.eng.bytesTraced
	cs.LiveAfter = c.rt.Heap.OccupiedBytes()
	cs.FreeAfter = c.rt.Heap.FreeBytes()
	cs.LargestFreeAfter = int64(c.rt.Heap.LargestFreeChunk()) * heapsimWordBytes
	c.eng.bytesTraced = 0
	c.Cycles = append(c.Cycles, cs)
	c.tel.noteCycle(&cs, c.eng.pool)
	c.emit(gctrace.Event{
		At:            cs.EndAt,
		Kind:          gctrace.PauseEnd,
		Reason:        reason,
		PauseDuration: cs.Pause,
		LiveBytes:     cs.LiveAfter,
		FreeBytes:     cs.FreeAfter,
	})
}

// Engine exposes the tracing engine's pool for instrumentation.
func (c *STW) Engine() *workpack.Pool { return c.eng.pool }

// stwMarkPhase completes marking with parallel workers while the world is
// stopped: scan all roots, drain the packets, then repeatedly clean any
// cards dirtied by the overflow fallback (and, for the mostly concurrent
// collector, by mutators since the last concurrent cleaning pass) until no
// work remains. It returns the phase end time.
func stwMarkPhase(e *engine, rt *mutator.Runtime, start vtime.Time, workers int) vtime.Time {
	e.concurrentMode = false
	tracers := make([]*workpack.Tracer, workers)
	for i := range tracers {
		tracers[i] = workpack.NewTracer(e.pool)
	}

	// Root-scan tasks: one per mutator thread stack, plus one for globals,
	// plus (under the generational extension) one for the whole nursery.
	threads := rt.Threads()
	rootCursor := 0
	nurSegs := e.nurserySegments()
	rootTasks := len(threads) + 1 + nurSegs

	// Card-clean tasks are (re)filled each outer round.
	var cards []int
	cardCursor := 0

	end := start
	for round := 0; ; round++ {
		end = machine.RunParallel(end, workers, func(w *machine.Worker) bool {
			tr := tracers[w.ID]
			// Phase order per Section 2.2: clean dirty cards, rescan
			// stacks, complete marking — all interleaved freely since
			// each is just a source of grey objects.
			if rootCursor < rootTasks {
				task := rootCursor
				rootCursor++
				switch {
				case task < len(threads):
					e.scanThreadStack(w, tr, threads[task])
				case task == len(threads):
					e.scanGlobals(w, tr)
				default:
					e.scanNurserySegmentTask(w, tr, task-len(threads)-1)
				}
				return true
			}
			if cardCursor < len(cards) {
				card := cards[cardCursor]
				cardCursor++
				e.cleanCard(w, tr, card)
				return true
			}
			if e.traceFromPackets(w, tr, markQuantumBytes) > 0 {
				return true
			}
			tr.Release()
			// Releasing may have recirculated buffered work.
			return e.pool.HasTracingWork()
		})
		for _, tr := range tracers {
			tr.Release()
		}
		// The world is stopped, so registration needs no mutator fence.
		cards = rt.Cards.RegisterAndClear(cards[:0])
		cardCursor = 0
		if len(cards) == 0 {
			if !e.pool.TracingDone() {
				panic("core: mark phase ended with tracing work outstanding")
			}
			return end
		}
		if round > 1000 {
			panic(fmt.Sprintf("core: mark phase did not converge (%d dirty cards remain)", len(cards)))
		}
	}
}

// assertNoFloatingRoots is a debugging helper used by tests: it verifies
// that every object reachable from the current roots is marked.
func assertNoFloatingRoots(rt *mutator.Runtime) error {
	h := rt.Heap
	var stack []heapsim.Addr
	seen := make(map[heapsim.Addr]bool)
	rt.ForEachRoot(func(a heapsim.Addr) {
		if !seen[a] {
			seen[a] = true
			stack = append(stack, a)
		}
	})
	for len(stack) > 0 {
		a := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !h.MarkBits.Test(int(a)) {
			return fmt.Errorf("reachable object %d is unmarked", a)
		}
		refs := h.RefCount(a)
		for i := 0; i < refs; i++ {
			if c := h.RefAt(a, i); c != heapsim.Nil && !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return nil
}

package core

import (
	"fmt"
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

// TestTortureConfigurations sweeps the collector's configuration space with
// the shadow-model churner (non-moving configs) or the chain driver (moving
// configs), asserting safety and heap invariants on each. It is the broad
// insurance policy behind the targeted tests.
func TestTortureConfigurations(t *testing.T) {
	type tc struct {
		name   string
		moving bool
		cfg    CGCConfig
		procs  int
		heap   int64
	}
	base := func() CGCConfig {
		c := DefaultCGCConfig()
		c.Packets = 128
		c.PacketCap = 64
		c.BackgroundThreads = 0
		return c
	}
	var cases []tc
	for _, k0 := range []float64{1, 8, 16} {
		c := base()
		c.Pacing.K0 = k0
		cases = append(cases, tc{name: fmt.Sprintf("k0=%g", k0), cfg: c, procs: 2, heap: 2 << 20})
	}
	for _, packets := range []int{8, 64, 512} {
		c := base()
		c.Packets = packets
		c.PacketCap = 32
		cases = append(cases, tc{name: fmt.Sprintf("packets=%d", packets), cfg: c, procs: 2, heap: 2 << 20})
	}
	for _, bg := range []int{1, 4} {
		c := base()
		c.BackgroundThreads = bg
		cases = append(cases, tc{name: fmt.Sprintf("bg=%d", bg), cfg: c, procs: 2, heap: 2 << 20})
	}
	{
		c := base()
		c.LazySweep = true
		cases = append(cases, tc{name: "lazy", cfg: c, procs: 2, heap: 2 << 20})
	}
	{
		c := base()
		c.CardPasses = 3
		cases = append(cases, tc{name: "threePasses", cfg: c, procs: 4, heap: 2 << 20})
	}
	{
		c := base()
		c.MutatorTracing = false
		c.BackgroundThreads = 2
		cases = append(cases, tc{name: "bgOnly", cfg: c, procs: 2, heap: 2 << 20})
	}
	{
		c := base()
		c.Compaction = true
		c.CompactAreaWords = (2 << 20) / heapsim.WordBytes / 8
		cases = append(cases, tc{name: "compaction", moving: true, cfg: c, procs: 2, heap: 2 << 20})
	}
	{
		c := base()
		c.Compaction = true
		c.CardPasses = 2
		c.BackgroundThreads = 2
		cases = append(cases, tc{name: "kitchenSink", moving: true, cfg: c, procs: 4, heap: 4 << 20})
	}

	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if !c.moving {
				env, col := runCGC(t, c.heap, c.procs, c.cfg, 7, 1200*vtime.Millisecond)
				if len(col.Cycles) == 0 {
					t.Fatal("no cycles")
				}
				env.ch.verify(t)
				env.rt.RetireAllCaches()
				if err := VerifyHeap(env.rt, false); err != nil {
					t.Fatal(err)
				}
				return
			}
			// Moving configs: chain driver (content-stamped, address-free).
			env := newEnv(c.heap, c.procs)
			col := NewCGC(env.rt, env.m, c.cfg)
			env.rt.SetCollector(col)
			col.SpawnBackground()
			th := env.rt.NewThread()
			step, verify := tortureChainDriver(t, env.rt, th)
			env.m.AddThread("chains", machine.PriorityNormal, step)
			env.m.Run(vtime.Time(1200 * vtime.Millisecond))
			if len(col.Cycles) == 0 {
				t.Fatal("no cycles")
			}
			verify()
			env.rt.RetireAllCaches()
			if err := VerifyHeap(env.rt, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// tortureChainDriver rebuilds rotating chains with payload stamps that do
// not depend on addresses (safe under compaction).
func tortureChainDriver(t *testing.T, rt *mutator.Runtime, th *mutator.Thread) (machine.StepFunc, func()) {
	const chains, nodes = 6, 500
	th.Stack = make([]heapsim.Addr, chains)
	round := 0
	step := func(ctx *machine.Context) machine.Control {
		slot := round % chains
		round++
		th.Stack[slot] = heapsim.Nil
		for i := 0; i < nodes; i++ {
			n := rt.Alloc(ctx, th, 1, 2)
			rt.Heap.SetPayload(n, 0, 0x5151+uint64(i))
			rt.SetRef(ctx, n, 0, th.Stack[slot])
			th.Stack[slot] = n
		}
		return machine.Continue
	}
	verify := func() {
		for slot := 0; slot < chains; slot++ {
			n := th.Stack[slot]
			count := 0
			for n != heapsim.Nil {
				want := 0x5151 + uint64(nodes-1-count)
				if got := rt.Heap.PayloadAt(n, 0); got != want {
					t.Fatalf("chain %d pos %d: payload %#x want %#x", slot, count, got, want)
				}
				n = rt.Heap.RefAt(n, 0)
				count++
			}
			if count != 0 && count != nodes {
				t.Fatalf("chain %d length %d", slot, count)
			}
		}
	}
	return step, verify
}

package core

import (
	"fmt"

	"mcgc/internal/gctrace"
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

// Generational combines the mostly concurrent collector with a generational
// front end — the combination the paper's introduction announces as future
// work ("we expect to combine our collector with a generational collector
// in a manner similar to Printezis and Detlefs [31]").
//
// Design, following Printezis–Detlefs:
//
//   - small objects are allocated in a nursery at the top of the heap
//     (thread allocation caches are carved from it by bump allocation);
//   - when the nursery fills, a brief stop-the-world minor collection
//     scavenges it: live nursery objects are promoted en masse into the
//     old space and every reference to them is fixed up; the roots of the
//     scavenge are the thread stacks, the globals and the old-space
//     objects on dirty cards — the same card table the mostly concurrent
//     collector uses serves as the generational remembered set, so the
//     write barrier is unchanged (it merely stays enabled between cycles);
//   - the old space is collected by the unmodified CGC: its sweep, lazy
//     sweep and compactor are bounded below the nursery, the nursery acts
//     as a root set for old-space marking (scanned at cycle start and
//     rescanned in the pause), and its pacing is driven by old-space
//     consumption — promoted bytes plus direct large-object allocation —
//     rather than raw nursery throughput.
//
// Unlike the base collector's conservative treatment of stacks, minor
// collections treat stacks precisely (slots are updated to the promoted
// copies); Printezis and Detlefs' JVM scanned stacks precisely too.
type Generational struct {
	rt  *mutator.Runtime
	m   *machine.Machine
	old *CGC

	nurFrom, nurTo heapsim.Addr
	nurCur         heapsim.Addr

	// Minors records every minor collection.
	Minors []MinorStats

	// PromotedBytes is cumulative across minors.
	PromotedBytes int64

	// promoRatio is the smoothed fraction of nursery allocation that
	// survives to promotion. The old-space pacer is fed continuously at
	// every nursery refill with allocation scaled by this ratio, so
	// incremental tracing tracks the old space's true consumption rate
	// without post-minor bursts. It starts conservatively high.
	promoRatio float64

	// cardScratch is the remembered-set card buffer, reused across minor
	// collections so the card-cleaning pass stops growing a fresh slice
	// per scavenge.
	cardScratch []int
}

// MinorStats records one minor collection.
type MinorStats struct {
	RequestedAt     vtime.Time
	Pause           vtime.Duration
	PromotedObjects int
	PromotedBytes   int64
	CardsScanned    int
	RootsUpdated    int
	NurseryUsed     int64 // bytes occupied at scavenge start
}

// GenConfig configures the generational collector.
type GenConfig struct {
	// NurseryBytes is the nursery size (default: heap/8).
	NurseryBytes int64
	// CGC configures the old-space collector.
	CGC CGCConfig
}

// NewGenerational reserves the nursery (the heap must be fresh) and builds
// the old-space collector around it.
func NewGenerational(rt *mutator.Runtime, m *machine.Machine, cfg GenConfig) *Generational {
	if cfg.NurseryBytes == 0 {
		cfg.NurseryBytes = rt.Heap.SizeBytes() / 8
	}
	nurWords := int(cfg.NurseryBytes / heapsim.WordBytes)
	region := rt.Heap.ReserveTop(nurWords)

	cgcCfg := cfg.CGC
	if cgcCfg.Packets == 0 {
		cgcCfg = DefaultCGCConfig()
	}
	cgcCfg.OldSpaceWords = int(region.Addr)
	// Old-space consumption arrives in whole-nursery bursts; the kickoff
	// must leave room for one.
	cgcCfg.Pacing.Headroom = cfg.NurseryBytes
	// Promotion bursts need a wider adaptive range than steady allocation.
	if cgcCfg.Pacing.KMax == 0 {
		cgcCfg.Pacing.KMax = 4 * cgcCfg.Pacing.K0
	}
	old := NewCGC(rt, m, cgcCfg)
	old.eng.nurFrom, old.eng.nurTo = region.Addr, region.End()

	g := &Generational{
		rt:         rt,
		m:          m,
		old:        old,
		nurFrom:    region.Addr,
		nurTo:      region.End(),
		nurCur:     region.Addr,
		promoRatio: 0.5, // conservative until the first minor measures it
	}
	// Mutator caches come from the nursery; retired tails stay there (the
	// space is reclaimed wholesale at the next scavenge).
	rt.CacheSource = g.carveCache
	rt.CacheTailSink = func(heapsim.Chunk) {}
	rt.BarrierNurseryFrom, rt.BarrierNurseryTo = region.Addr, region.End()
	// An old cycle clears the card table, which would destroy the
	// old-to-young remembered set — so every cycle begins with a minor
	// collection that empties the nursery first.
	old.beforeCycle = func(ctx *machine.Context) { g.minorCollect(ctx) }
	return g
}

// Old exposes the old-space collector (cycle stats, pool, fences).
func (g *Generational) Old() *CGC { return g.old }

// SpawnBackground starts the old-space collector's background threads.
func (g *Generational) SpawnBackground() { g.old.SpawnBackground() }

// Name implements mutator.Collector.
func (g *Generational) Name() string { return "gencgc" }

// BarrierActive implements mutator.Collector: under a generational scheme
// the card-marking barrier is always on — the dirty cards double as the
// old-to-young remembered set between concurrent cycles.
func (g *Generational) BarrierActive() bool { return true }

// carveCache bump-allocates an allocation cache from the nursery.
func (g *Generational) carveCache(want int) (heapsim.Chunk, bool) {
	avail := int(g.nurTo - g.nurCur)
	if avail < heapsim.MinChunkWords {
		return heapsim.Chunk{}, false
	}
	if want > avail {
		want = avail
	}
	c := heapsim.Chunk{Addr: g.nurCur, Words: want}
	g.nurCur += heapsim.Addr(want)
	g.rt.Heap.Stats.CacheRefills++
	return c, true
}

// NurseryUsed returns the bytes currently bump-allocated in the nursery.
func (g *Generational) NurseryUsed() int64 {
	return int64(g.nurCur-g.nurFrom) * heapsim.WordBytes
}

// OnCacheRefill implements mutator.Collector. Nursery allocation does not
// pace the old-space collector (promotion does), but a pending lazy sweep
// still advances here.
func (g *Generational) OnCacheRefill(ctx *machine.Context, th *mutator.Thread, bytes int64) {
	if g.old.lazy != nil {
		g.old.lazySweepBytes(ctx, 2*bytes)
	}
	if fed := int64(float64(bytes) * g.promoRatio); fed > 0 {
		g.old.onAllocation(ctx, th, fed)
	}
}

// OnLargeAlloc implements mutator.Collector: large objects go straight to
// the old space, so they feed the old-space pacer directly.
func (g *Generational) OnLargeAlloc(ctx *machine.Context, th *mutator.Thread, bytes int64) {
	g.old.onAllocation(ctx, th, bytes)
}

// OnAllocFailure implements mutator.Collector. A small-object failure means
// the nursery is exhausted: run a minor collection. If the nursery is
// already fresh (or a large allocation failed), the old space is the
// problem: delegate to the old-space collector.
func (g *Generational) OnAllocFailure(ctx *machine.Context, th *mutator.Thread) {
	freshNursery := g.NurseryUsed() < int64(g.rt.Cfg.CacheBytes)
	if freshNursery {
		g.old.OnAllocFailure(ctx, th)
		return
	}
	// Ensure the old space can absorb a worst-case promotion before
	// stopping the world for the scavenge (a nested stop is impossible).
	if g.rt.Heap.FreeBytes() < g.NurseryUsed() {
		g.old.OnAllocFailure(ctx, th)
	}
	g.minorCollect(ctx)
}

// minorCollect stops the world and scavenges the nursery: en-masse
// promotion with root and remembered-set fixup.
func (g *Generational) minorCollect(ctx *machine.Context) {
	if g.NurseryUsed() == 0 {
		return
	}
	var ms MinorStats
	ms.NurseryUsed = g.NurseryUsed()
	oldPhaseActive := g.old.CurrentPhase() == PhaseConcurrent
	g.old.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.MinorStart, LiveBytes: ms.NurseryUsed})
	h := g.rt.Heap
	costs := g.rt.Costs

	g.m.StopTheWorld(ctx, "gen:minor", func(stoppedAt vtime.Time) vtime.Time {
		ms.RequestedAt = ctx.Now()
		w := &machine.Worker{}
		w.Charge(vtime.Duration(stoppedAt))
		g.rt.RetireAllCaches()

		fwd := make(map[heapsim.Addr]heapsim.Addr)
		var queue []heapsim.Addr
		inNursery := func(a heapsim.Addr) bool { return a >= g.nurFrom && a < g.nurTo }
		promote := func(y heapsim.Addr) heapsim.Addr {
			if n, ok := fwd[y]; ok {
				return n
			}
			words := h.SizeOf(y)
			dst := h.AllocAvoiding(words, g.nurFrom, g.nurTo)
			if dst == heapsim.Nil {
				panic(fmt.Sprintf("core: promotion failed for %d words (old space full despite pre-check)", words))
			}
			h.MoveObject(y, dst)
			fwd[y] = dst
			queue = append(queue, dst)
			ms.PromotedObjects++
			ms.PromotedBytes += int64(words) * heapsim.WordBytes
			w.Charge(machine.ForBytes(costs.TraceBytePs, int64(words)*heapsim.WordBytes))
			return dst
		}

		// Roots: thread stacks and globals, updated precisely.
		for _, t := range g.rt.Threads() {
			for i, v := range t.Stack {
				if v != heapsim.Nil && inNursery(v) {
					t.Stack[i] = promote(v)
					ms.RootsUpdated++
				}
				w.Charge(costs.StackScanSlot)
			}
		}
		globals := g.rt.Globals()
		for i, v := range globals {
			if v != heapsim.Nil && inNursery(v) {
				globals[i] = promote(v)
				ms.RootsUpdated++
			}
			w.Charge(costs.StackScanSlot)
		}

		// Remembered set: old-space objects on dirty cards, plus cards
		// whose indicators a cleaning pass cleared while old-to-young
		// pointers remained (duplicates are harmless — promotion is
		// idempotent). While a concurrent old phase is active the dirty
		// indicators are scanned WITHOUT clearing: the old collector
		// still needs them for retracing, and clearing-then-redirtying
		// would make the dirty set only ever grow across minors.
		cards := g.cardScratch[:0]
		if oldPhaseActive {
			g.rt.Cards.ForEachDirty(func(c int) { cards = append(cards, c) })
		} else {
			cards = g.rt.Cards.RegisterAndClear(cards)
		}
		cards = append(cards, g.old.eng.rememberedCards...)
		g.old.eng.rememberedCards = g.old.eng.rememberedCards[:0]
		cards = append(cards, g.old.pendingRegisteredCards()...)
		for _, card := range cards {
			from, to := g.rt.Cards.CardBounds(card)
			if from >= g.nurFrom {
				continue // nursery card: the whole nursery is scavenged anyway
			}
			if to > g.nurFrom {
				to = g.nurFrom
			}
			w.Charge(costs.CardScan)
			ms.CardsScanned++
			h.ObjectsIn(from, to, func(o heapsim.Addr) {
				refs := h.RefCount(o)
				for i := 0; i < refs; i++ {
					v := h.RefAt(o, i)
					if v != heapsim.Nil && inNursery(v) {
						h.SetRefRaw(o, i, promote(v))
						if oldPhaseActive {
							// The store must be retraced by the old cycle.
							g.rt.Cards.DirtyObject(o)
						}
					}
				}
			})
		}
		g.cardScratch = cards // keep the grown buffer for the next minor
		// Scavenge the promoted copies transitively. No cards are dirtied
		// for the copies themselves: they are unmarked fresh old objects,
		// reached by the old cycle through their holders (whose cards the
		// fixup above dirties) or through the root rescan in the pause —
		// card cleaning only retraces marked objects, so dirtying a
		// copy's own card would be pure overhead.
		for len(queue) > 0 {
			o := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			refs := h.RefCount(o)
			for i := 0; i < refs; i++ {
				v := h.RefAt(o, i)
				if v != heapsim.Nil && inNursery(v) {
					h.SetRefRaw(o, i, promote(v))
				}
			}
		}

		// Reset the nursery: everything unpromoted is dead.
		h.AllocBits.ClearRange(int(g.nurFrom), int(g.nurTo))
		h.MarkBits.ClearRange(int(g.nurFrom), int(g.nurTo))
		g.nurCur = g.nurFrom
		return w.Now()
	})
	ms.Pause = ctx.Now().Sub(ms.RequestedAt)
	g.old.tel.noteMinor(&ms, ctx.Now())
	g.old.emit(gctrace.Event{
		At:            ctx.Now(),
		Kind:          gctrace.MinorEnd,
		PauseDuration: ms.Pause,
		PromotedBytes: ms.PromotedBytes,
	})
	g.PromotedBytes += ms.PromotedBytes
	if ms.NurseryUsed > 0 {
		sample := float64(ms.PromotedBytes) / float64(ms.NurseryUsed)
		g.promoRatio = 0.3*sample + 0.7*g.promoRatio
	}
	g.Minors = append(g.Minors, ms)
}

// MinorPauses summarizes the minor pauses.
func (g *Generational) MinorPauses() (avg, max vtime.Duration) {
	if len(g.Minors) == 0 {
		return 0, 0
	}
	var sum vtime.Duration
	for _, m := range g.Minors {
		sum += m.Pause
		if m.Pause > max {
			max = m.Pause
		}
	}
	return sum / vtime.Duration(len(g.Minors)), max
}

package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKickoffFormula(t *testing.T) {
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5, InitialDirtyFraction: 0})
	// Unprimed: L falls back to occupied bytes. Threshold = occupied/8.
	if p.shouldKickoff(100, 640) {
		t.Fatal("kickoff with free above threshold")
	}
	if !p.shouldKickoff(79, 640) {
		t.Fatal("no kickoff with free below threshold")
	}
	// Priming L and M moves the threshold: (L+M)/K0 = (800+160)/8 = 120.
	p.endCycle(800, 160)
	if p.shouldKickoff(121, 0) {
		t.Fatal("kickoff above primed threshold")
	}
	if !p.shouldKickoff(119, 0) {
		t.Fatal("no kickoff below primed threshold")
	}
}

func TestProgressFormulaBasic(t *testing.T) {
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5, C: 1})
	p.endCycle(8000, 0) // L = 8000, M = 0
	p.startCycle()
	// T=0, F=1000: K = 8000/1000 = 8 = K0, no correction.
	if k := p.rate(1000, 0); math.Abs(k-8) > 1e-9 {
		t.Fatalf("rate = %v, want 8", k)
	}
	// Tracing ahead of schedule: T=6000, F=1000 => K = 2.
	p.noteTraced(6000)
	if k := p.rate(1000, 0); math.Abs(k-2) > 1e-9 {
		t.Fatalf("rate = %v, want 2", k)
	}
}

func TestProgressFormulaNegativeMeansKMax(t *testing.T) {
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5})
	p.endCycle(1000, 0)
	p.startCycle()
	p.noteTraced(2000) // T > L+M: the predictions were underestimates
	if k := p.rate(500, 0); k != 16 {
		t.Fatalf("rate = %v, want KMax=16", k)
	}
	// Zero free memory is also the maximum rate.
	if k := p.rate(0, 0); k != 16 {
		t.Fatalf("rate at F=0 = %v, want KMax", k)
	}
}

func TestProgressCorrectiveTerm(t *testing.T) {
	// Behind schedule: K > K0 gets amplified by C.
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5, C: 1})
	p.endCycle(10000, 0)
	p.startCycle()
	// K = 10000/1000 = 10 > K0=8 => K + (K-K0)*C = 12.
	if k := p.rate(1000, 0); math.Abs(k-12) > 1e-9 {
		t.Fatalf("rate = %v, want 12", k)
	}
	// Capped at KMax.
	p2 := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5, C: 10})
	p2.endCycle(10000, 0)
	p2.startCycle()
	if k := p2.rate(1000, 0); k != 16 {
		t.Fatalf("rate = %v, want KMax cap 16", k)
	}
}

func TestBackgroundDiscount(t *testing.T) {
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 1.0, C: 1})
	p.endCycle(8000, 0)
	p.startCycle()
	// Background does 3 bytes per allocated byte: Best = 3.
	p.noteBackground(3 << 20)
	p.noteAllocation(1 << 20)
	if b := p.best.Value(); math.Abs(b-3) > 1e-9 {
		t.Fatalf("Best = %v, want 3", b)
	}
	// K would be 8; discounted by Best: 8-3 = 5 (below K0, no correction).
	p.traced = 0
	if k := p.rate(1000, 0); math.Abs(k-5) > 1e-9 {
		t.Fatalf("discounted rate = %v, want 5", k)
	}
	// Background fully keeping up: K < Best => 0. (Fresh pacer so T stays
	// small: noteBackground counts toward T too.)
	p3 := newPacer(PacingConfig{K0: 8, SmoothAlpha: 1.0, C: 1})
	p3.endCycle(8000, 0)
	p3.startCycle()
	p3.noteBackground(3 << 20)
	p3.noteAllocation(1 << 20)
	p3.traced = 0
	// K = 8000/8000 = 1 < Best = 3.
	if k := p3.rate(8000, 0); k != 0 {
		t.Fatalf("rate = %v, want 0 when background keeps up", k)
	}
}

func TestBackgroundWindowing(t *testing.T) {
	p := newPacer(DefaultPacing())
	p.startCycle()
	p.noteBackground(512 << 10)
	// Window not yet full: Best unprimed.
	p.noteAllocation(bWindowBytes / 2)
	if p.best.Primed() {
		t.Fatal("Best sampled before the window filled")
	}
	p.noteAllocation(bWindowBytes / 2)
	if !p.best.Primed() {
		t.Fatal("Best not sampled after a full window")
	}
	if b := p.best.Value(); b <= 0 || b > 1 {
		t.Fatalf("B sample = %v out of range", b)
	}
}

func TestKMaxDefaults(t *testing.T) {
	cfg := PacingConfig{K0: 5}
	if cfg.kmax() != 10 {
		t.Fatalf("default KMax = %v, want 2*K0", cfg.kmax())
	}
	cfg.KMax = 7
	if cfg.kmax() != 7 {
		t.Fatalf("explicit KMax = %v", cfg.kmax())
	}
}

// Property: the rate is always within [0, KMax] whatever the state.
func TestQuickRateBounded(t *testing.T) {
	f := func(l, m, traced, free uint32, bg uint16) bool {
		p := newPacer(DefaultPacing())
		p.endCycle(int64(l), int64(m))
		p.startCycle()
		p.noteTraced(int64(traced))
		p.noteBackground(int64(bg))
		p.noteAllocation(bWindowBytes)
		k := p.rate(int64(free), 0)
		return k >= 0 && k <= p.cfg.kmax()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionsSeedFromHeap(t *testing.T) {
	p := newPacer(PacingConfig{K0: 8, SmoothAlpha: 0.5, InitialDirtyFraction: 0.1})
	l, m := p.predictions(1000)
	if l != 1000 {
		t.Fatalf("unprimed L = %v, want occupied", l)
	}
	if m != 100 {
		t.Fatalf("unprimed M = %v, want 10%% of occupied", m)
	}
	p.endCycle(500, 50)
	l, m = p.predictions(1000)
	if l != 500 || m != 50 {
		t.Fatalf("primed L,M = %v,%v", l, m)
	}
}

func TestHeadroomShiftsKickoffAndCompletion(t *testing.T) {
	cfg := PacingConfig{K0: 8, SmoothAlpha: 0.5, HeadroomBytes: 1000}
	p := newPacer(cfg)
	p.endCycle(8000, 0)
	// Kickoff threshold = L/K0 + headroom = 1000 + 1000.
	if !p.shouldKickoff(1999, 0) {
		t.Fatal("kickoff should fire below threshold+headroom")
	}
	if p.shouldKickoff(2001, 0) {
		t.Fatal("kickoff fired above threshold+headroom")
	}
	// The progress formula targets completion with headroom remaining:
	// at free = headroom the rate is already maximal.
	p.startCycle()
	if k := p.rate(1000, 0); k != cfg.kmax() {
		t.Fatalf("rate at free==headroom = %v, want KMax", k)
	}
	// Above the headroom the effective free memory is reduced.
	if k := p.rate(2000, 0); math.Abs(k-8) > 1e-9 { // 8000/(2000-1000)=8
		t.Fatalf("rate = %v, want 8", k)
	}
}

package core

import (
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

func TestSTWCollectsGarbageAndPreservesLive(t *testing.T) {
	env := newEnv(2<<20, 2)
	col := NewSTW(env.rt, env.m, 64, 32, 2)
	env.rt.SetCollector(col)
	env.run(1, 2*vtime.Second)

	if len(col.Cycles) < 2 {
		t.Fatalf("only %d collections in a churning 2MB heap; expected several", len(col.Cycles))
	}
	reachable := env.ch.verify(t)
	if reachable <= 0 {
		t.Fatal("no reachable bytes; workload broken")
	}
	// Every cycle must have freed something and preserved marking sanity.
	for i, cs := range col.Cycles {
		if cs.Pause <= 0 {
			t.Fatalf("cycle %d: non-positive pause %v", i, cs.Pause)
		}
		if cs.MarkTime <= 0 || cs.SweepTime <= 0 {
			t.Fatalf("cycle %d: mark %v sweep %v", i, cs.MarkTime, cs.SweepTime)
		}
		if cs.FreeAfter <= 0 {
			t.Fatalf("cycle %d: no memory recovered", i)
		}
		if cs.Pause != cs.EndAt.Sub(cs.RequestedAt) {
			t.Fatalf("cycle %d: pause accounting inconsistent", i)
		}
	}
}

func TestSTWMarkCompleteness(t *testing.T) {
	// Directly after a collection, every reachable object must be marked.
	env := newEnv(1<<20, 1)
	col := NewSTW(env.rt, env.m, 64, 32, 1)
	env.rt.SetCollector(col)
	th := env.rt.NewThread()
	ch := newChurner(env.rt, th, 7)
	var checked bool
	env.m.AddThread("main", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		for i := 0; i < 4000; i++ {
			ch.step(ctx)
		}
		col.Collect(ctx, "forced")
		if err := assertNoFloatingRoots(env.rt); err != nil {
			t.Errorf("after forced collection: %v", err)
		}
		checked = true
		return machine.Finish
	})
	env.m.Run(vtime.Time(10 * vtime.Second))
	if !checked {
		t.Fatal("program never ran to the check")
	}
	env.ch = ch
	ch.verify(t)
}

func TestSTWByteConservation(t *testing.T) {
	env := newEnv(1<<20, 2)
	col := NewSTW(env.rt, env.m, 64, 32, 2)
	env.rt.SetCollector(col)
	env.run(3, vtime.Second)
	reachable := env.ch.verify(t)
	h := env.rt.Heap
	// occupied >= reachable (occupied also counts unreachable-but-unswept
	// and dark matter); and occupied + free == usable minus active cache.
	if h.OccupiedBytes() < reachable {
		t.Fatalf("occupied %d < reachable %d: over-collection", h.OccupiedBytes(), reachable)
	}
}

func TestSTWPacketOverflowRecovery(t *testing.T) {
	// A pool far too small for the live graph forces the overflow
	// fallback (mark + dirty card); the mark phase must still complete
	// via card cleaning rounds.
	env := newEnv(1<<20, 2)
	col := NewSTW(env.rt, env.m, 2, 4, 2) // 2 packets of 4 entries
	env.rt.SetCollector(col)
	env.run(5, vtime.Second)
	if col.eng.overflows == 0 {
		t.Fatal("expected overflow events with a starved pool")
	}
	env.ch.verify(t)
}

func TestSTWPauseScalesWithWorkers(t *testing.T) {
	// Same workload, 1 vs 4 workers on a 4-processor machine: the pause
	// must shrink substantially with parallel collection.
	pause := func(workers int) vtime.Duration {
		env := newEnv(4<<20, 4)
		col := NewSTW(env.rt, env.m, 256, 64, workers)
		env.rt.SetCollector(col)
		env.run(11, 2*vtime.Second)
		if len(col.Cycles) == 0 {
			t.Fatal("no collections")
		}
		p, _, _ := SummarizePauses(col.Cycles)
		return p.Avg
	}
	p1 := pause(1)
	p4 := pause(4)
	if float64(p4) > 0.6*float64(p1) {
		t.Fatalf("4-worker pause %v not much faster than 1-worker %v", p4, p1)
	}
}

func TestSTWNoBarrierActive(t *testing.T) {
	env := newEnv(1<<20, 1)
	col := NewSTW(env.rt, env.m, 64, 32, 1)
	env.rt.SetCollector(col)
	if col.BarrierActive() {
		t.Fatal("baseline collector must not require a write barrier")
	}
	env.run(2, 500*vtime.Millisecond)
	if env.rt.Cards.Stats.BarrierMarks != 0 {
		t.Fatalf("write barrier dirtied %d cards under the STW collector", env.rt.Cards.Stats.BarrierMarks)
	}
	env.ch.verify(t)
}

func TestSTWCacheTailNotLeaked(t *testing.T) {
	// After a collection, the space of retired caches must be back in
	// circulation: repeated collections on a steady-state workload keep
	// free space stable rather than draining.
	env := newEnv(1<<20, 1)
	col := NewSTW(env.rt, env.m, 64, 32, 1)
	env.rt.SetCollector(col)
	env.run(9, 2*vtime.Second)
	if len(col.Cycles) < 3 {
		t.Skipf("only %d cycles", len(col.Cycles))
	}
	first := col.Cycles[1].FreeAfter
	last := col.Cycles[len(col.Cycles)-1].FreeAfter
	if last < first/2 {
		t.Fatalf("free space after GC drained from %d to %d: leak", first, last)
	}
}

func TestDirectHeapSanity(t *testing.T) {
	// The harness churner keeps its shadow in sync even without GC: run
	// with a huge heap so no collection triggers, then verify.
	env := newEnv(64<<20, 1)
	col := NewSTW(env.rt, env.m, 64, 32, 1)
	env.rt.SetCollector(col)
	env.run(13, 200*vtime.Millisecond)
	if len(col.Cycles) != 0 {
		t.Fatalf("unexpected collections: %d", len(col.Cycles))
	}
	if env.ch.verify(t) == 0 {
		t.Fatal("nothing reachable")
	}
	if env.ch.allocs == 0 {
		t.Fatal("no allocations")
	}
	_ = heapsim.Nil
}

package core

import (
	"fmt"

	"mcgc/internal/cardtable"
	"mcgc/internal/gctrace"
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/pacing"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workpack"
)

// heapsimWordBytes mirrors heapsim.WordBytes for byte/word conversions.
const heapsimWordBytes = heapsim.WordBytes

// Phase is the mostly concurrent collector's coarse state.
type Phase int

const (
	// PhaseIdle: no collection in progress (the "pre-concurrent" period).
	PhaseIdle Phase = iota
	// PhaseConcurrent: concurrent tracing in progress; the write barrier
	// is active and allocations perform tracing increments.
	PhaseConcurrent
)

// CGCConfig configures the mostly concurrent collector.
type CGCConfig struct {
	// Packets and PacketCap size the work packet pool (the paper's
	// SPECjbb runs use 1000 packets of 493 entries).
	Packets   int
	PacketCap int
	// Workers is the parallel worker count for the stop-the-world phase;
	// zero means one per processor.
	Workers int
	// BackgroundThreads is the number of low-priority tracing threads
	// (the paper's default is 4). Zero disables background tracing — the
	// incremental-only ablation.
	BackgroundThreads int
	// BgQuantumBytes is the tracing quantum of one background step.
	BgQuantumBytes int64
	// Pacing holds the Section 3 parameters.
	Pacing PacingConfig
	// CardPasses is the number of concurrent card cleaning passes
	// (default 1; 2 reproduces the footnote-2 refinement).
	CardPasses int
	// MutatorTracing disables incremental tracing by mutators when false
	// while keeping the cycle structure — the background-only ablation.
	MutatorTracing bool
	// LazySweep defers sweeping out of the pause (the Section 7 future
	// work, implemented as an extension).
	LazySweep bool
	// Compaction enables incremental compaction (Section 2.3): one area
	// per cycle is evacuated during the pause and the remembered pointers
	// into it fixed up. Incompatible with LazySweep (evacuation needs the
	// swept free list); when both are set, compaction is skipped.
	Compaction bool
	// CompactAreaWords is the evacuation area size (0: heap/32).
	CompactAreaWords int
	// OldSpaceWords bounds the region this collector manages (0: the
	// whole heap). The generational extension sets it to the nursery
	// base so sweep, lazy sweep and compaction never touch the nursery.
	OldSpaceWords int
	// Trace, when set, receives structured collection events (the
	// equivalent of -verbose:gc).
	Trace gctrace.Sink
	// Metrics and Timeline, when set, receive the collector's telemetry
	// (see internal/telemetry). Leaving both nil disables instrumentation
	// at zero cost to the hot paths.
	Metrics  *telemetry.Registry
	Timeline *telemetry.Timeline
}

// DefaultCGCConfig returns the paper's default configuration.
func DefaultCGCConfig() CGCConfig {
	return CGCConfig{
		Packets:           1000,
		PacketCap:         workpack.DefaultCapacity,
		BackgroundThreads: 4,
		BgQuantumBytes:    8 << 10,
		Pacing:            DefaultPacing(),
		CardPasses:        1,
		MutatorTracing:    true,
	}
}

// CGC is the parallel, incremental, mostly concurrent collector — the
// paper's contribution. It implements mutator.Collector.
type CGC struct {
	rt    *mutator.Runtime
	m     *machine.Machine
	eng   *engine
	pacer *pacing.FormulaPolicy
	cfg   CGCConfig
	tel   *coreTel

	phase Phase

	// Concurrent-phase state.
	stacksScanned  int
	globalsScanned bool
	nurseryScanned bool  // generational: nursery-as-roots scan done this cycle
	cardPassesRun  int   // completed registration passes this cycle
	cards          []int // cards registered by the current pass
	cardCursor     int
	freeAtLastPass int64 // free bytes when the last pass started
	deferDrained   bool  // deferred pool drained once since last exhaustion

	// Lazy sweep continuation (non-nil while sections remain).
	lazy *lazySweeper

	cur    CycleStats
	Cycles []CycleStats

	// Aggregate counters across the run.
	TotalAllocBytes   int64
	ForcedFences      int64 // mutator fences forced by card-clean handshakes
	ConcCardsCleaned  int64
	FinalCardsCleaned int64

	// beforeCycle, when set, runs at the very start of startCycle (the
	// generational extension empties the nursery there, so clearing the
	// card table cannot lose remembered-set information).
	beforeCycle func(ctx *machine.Context)

	lastCycleEndAt      vtime.Time
	allocAtLastCycleEnd int64
}

// emit sends a trace event if a sink is configured.
func (c *CGC) emit(e gctrace.Event) {
	if c.cfg.Trace != nil {
		c.cfg.Trace.Emit(e)
	}
}

// NewCGC creates the collector. Call SpawnBackground to start its
// background threads, then attach it to the runtime.
func NewCGC(rt *mutator.Runtime, m *machine.Machine, cfg CGCConfig) *CGC {
	if cfg.Packets == 0 {
		cfg = DefaultCGCConfig()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = m.Processors()
	}
	if cfg.CardPasses <= 0 {
		cfg.CardPasses = 1
	}
	if cfg.BgQuantumBytes <= 0 {
		cfg.BgQuantumBytes = 8 << 10
	}
	c := &CGC{
		rt:    rt,
		m:     m,
		eng:   newEngine(rt, cfg.Packets, cfg.PacketCap),
		pacer: newPacer(cfg.Pacing, rt.Heap),
		cfg:   cfg,
		tel:   newCoreTel(cfg.Metrics, cfg.Timeline),
	}
	if cfg.Compaction && !cfg.LazySweep {
		c.eng.comp = newCompactor(rt.Heap, rt.Costs, cfg.CompactAreaWords, cfg.OldSpaceWords)
	}
	return c
}

// pendingRegisteredCards returns the cards a concurrent cleaning pass has
// registered (indicators already cleared) but not yet cleaned. Minor
// collections must scan them: their old-to-young pointers are invisible in
// the card table while they sit in this queue.
func (c *CGC) pendingRegisteredCards() []int {
	if c.cardCursor >= len(c.cards) {
		return nil
	}
	return c.cards[c.cardCursor:]
}

// Compactor exposes the incremental compactor's cumulative statistics (nil
// when compaction is disabled).
func (c *CGC) Compactor() *CompactStats {
	if c.eng.comp == nil {
		return nil
	}
	return &c.eng.comp.Total
}

// Name implements mutator.Collector.
func (c *CGC) Name() string { return "cgc" }

// Phase returns the collector's current phase.
func (c *CGC) CurrentPhase() Phase { return c.phase }

// BarrierActive implements mutator.Collector: reference stores dirty cards
// only while concurrent tracing runs.
func (c *CGC) BarrierActive() bool { return c.phase == PhaseConcurrent }

// Pool exposes the work packet pool for instrumentation (Section 6.3).
func (c *CGC) Pool() *workpack.Pool { return c.eng.pool }

// FenceAccounting summarizes the weak-ordering costs of Section 5 as
// observed in a run.
type FenceAccounting struct {
	MarkFences    int64 // tracer-side fences, one per input packet (5.2)
	PacketFences  int64 // producer-side fences, one per returned packet (5.1)
	ForcedFences  int64 // mutator fences forced by card-clean handshakes (5.3)
	AllocFences   int64 // mutator fences, one per allocation cache (5.2)
	BarrierFences int64 // fences in the write barrier: always zero (5.3)
	Deferred      int64 // objects deferred by the allocation-bit protocol
	Overflows     int64 // pushes degraded to mark-plus-dirty-card (4.3)
}

// Fences returns the accumulated fence accounting.
func (c *CGC) Fences() FenceAccounting {
	return FenceAccounting{
		MarkFences:   c.eng.markFences,
		PacketFences: c.eng.pool.Stats.ReturnFences.Load(),
		ForcedFences: c.ForcedFences,
		AllocFences:  c.rt.Heap.Stats.AllocFences,
		Deferred:     c.eng.deferred,
		Overflows:    c.eng.overflows,
	}
}

// Pacer counters for tests.
func (c *CGC) TracedThisCycle() int64 { return c.pacer.TracedWords() }

// SpawnBackground starts n low-priority background tracing threads on the
// machine (Section 3: "background threads run at low priority and make
// whatever progress is possible without burdening the system").
func (c *CGC) SpawnBackground() {
	for i := 0; i < c.cfg.BackgroundThreads; i++ {
		tr := workpack.NewTracer(c.eng.pool)
		c.m.AddThread(fmt.Sprintf("gc-bg-%d", i), machine.PriorityLow, func(ctx *machine.Context) machine.Control {
			if c.phase != PhaseConcurrent {
				// Idle background threads help with a pending lazy sweep
				// (Section 7) before going back to sleep.
				if c.lazy != nil {
					c.lazy.sweepOne(ctx)
					if c.lazy.done() {
						c.lazy = nil
					}
					return machine.Continue
				}
				ctx.Charge(c.rt.Costs.ThinkPoll)
				ctx.Sleep(500 * vtime.Microsecond)
				return machine.Continue
			}
			bgStart := ctx.Now()
			done := c.doConcurrentWork(ctx, tr, c.cfg.BgQuantumBytes, nil)
			tr.Release()
			if done > 0 {
				c.pacer.NoteBackgroundWork(done)
				c.cur.BgBytes += done
				c.tel.noteBgQuantum(ctx, bgStart, done)
			} else {
				// Nothing to do: yield and try again (Section 4.3).
				ctx.Charge(c.rt.Costs.ThinkPoll)
				if c.phase == PhaseConcurrent && c.terminationReady() {
					c.finishCycle(ctx, "conc-done")
				} else {
					ctx.Sleep(200 * vtime.Microsecond)
				}
			}
			return machine.Continue
		})
	}
}

// OnCacheRefill implements mutator.Collector: the main pacing point.
func (c *CGC) OnCacheRefill(ctx *machine.Context, th *mutator.Thread, bytes int64) {
	c.onAllocation(ctx, th, bytes)
}

// OnLargeAlloc implements mutator.Collector.
func (c *CGC) OnLargeAlloc(ctx *machine.Context, th *mutator.Thread, bytes int64) {
	c.onAllocation(ctx, th, bytes)
}

func (c *CGC) onAllocation(ctx *machine.Context, th *mutator.Thread, bytes int64) {
	c.TotalAllocBytes += bytes
	// Lazy sweep continuation takes precedence: replenish the free list
	// with roughly twice the allocation, so sweeping finishes well before
	// the heap is exhausted again.
	if c.lazy != nil {
		c.lazySweepBytes(ctx, 2*bytes)
	}
	switch c.phase {
	case PhaseIdle:
		if c.lazy == nil && c.pacer.Kickoff() {
			c.startCycle(ctx)
			c.increment(ctx, th, bytes)
		}
	case PhaseConcurrent:
		c.pacer.NoteAllocation(bytes)
		c.increment(ctx, th, bytes)
	}
}

// OnAllocFailure implements mutator.Collector.
func (c *CGC) OnAllocFailure(ctx *machine.Context, th *mutator.Thread) {
	if c.lazy != nil {
		// An allocation failure while a deferred sweep is pending means
		// the allocator outran it: complete the sweep. If the heap is
		// still too full the runtime retries and the next failure runs a
		// real collection.
		c.lazyFinish(ctx)
		return
	}
	switch c.phase {
	case PhaseConcurrent:
		c.finishCycle(ctx, "alloc-failure")
	default:
		c.directCollect(ctx)
	}
}

// startCycle initializes a new collection cycle (Section 2.1): clear the
// card table and the mark bits; the background threads notice the phase
// change and wake up.
func (c *CGC) startCycle(ctx *machine.Context) {
	if c.beforeCycle != nil {
		c.beforeCycle(ctx)
	}
	c.rt.Heap.MarkBits.ClearAll()
	c.rt.Cards.ClearAll()
	if c.eng.comp != nil {
		// The evacuation area is chosen before concurrent marking starts
		// (Section 2.3).
		c.eng.comp.beginCycle()
	}
	c.eng.concurrentMode = true
	c.pacer.StartCycle()
	c.stacksScanned = 0
	for _, t := range c.rt.Threads() {
		t.StackScanned = false
	}
	c.globalsScanned = false
	c.nurseryScanned = c.eng.nurTo == 0 // trivially done without a nursery
	c.cardPassesRun = 0
	c.cards = c.cards[:0]
	c.cardCursor = 0
	c.deferDrained = false
	c.cur = CycleStats{Reason: "kickoff", ConcStartAt: ctx.Now()}
	c.cur.CASAtStart = c.eng.pool.Stats.CASAttempts.Load()
	c.cur.PrevEndAt = c.lastCycleEndAt
	c.cur.AllocAtPrevEnd = c.allocAtLastCycleEnd
	c.cur.AllocAtConcStart = c.TotalAllocBytes
	c.phase = PhaseConcurrent
	if c.tel != nil {
		c.tel.noteKickoff(ctx.Now(), c.rt.Heap.FreeBytes(),
			c.pacer.KickoffThreshold())
	}
	c.emit(gctrace.Event{
		At:        ctx.Now(),
		Kind:      gctrace.CycleStart,
		Reason:    "kickoff",
		FreeBytes: c.rt.Heap.FreeBytes(),
	})
}

// increment performs one mutator tracing increment (Section 3): evaluate
// the progress formula, trace that much, and release the packets so other
// threads can compete for them.
func (c *CGC) increment(ctx *machine.Context, th *mutator.Thread, allocBytes int64) {
	start := ctx.Now()
	k, corrective, best := c.pacer.RateDetail()
	if !c.cfg.MutatorTracing {
		k = 0
	}
	budget := int64(k * float64(allocBytes))
	// The thread's first allocation in the phase scans its own stack even
	// when no tracing budget is assigned.
	tr := workpack.NewTracer(c.eng.pool)
	if th != nil && !th.StackScanned {
		th.StackScanned = true
		c.stacksScanned++
		c.eng.scanThreadStack(ctx, tr, th)
	}
	if !c.globalsScanned {
		c.globalsScanned = true
		c.eng.scanGlobals(ctx, tr)
	}
	if !c.nurseryScanned {
		c.nurseryScanned = true
		c.eng.scanNursery(ctx, tr) // no-op without a nursery
	}
	if budget <= 0 {
		tr.Release()
		c.tel.noteIncrement(ctx, start, k, corrective, best, 0, 0, c.eng.pool)
		return
	}
	done := c.doConcurrentWork(ctx, tr, budget, th)
	tr.Release()
	c.pacer.NoteTraced(done)
	c.cur.Increments++
	c.cur.TracingFactors.Add(float64(done) / float64(budget))
	c.tel.noteIncrement(ctx, start, k, corrective, best, budget, done, c.eng.pool)
	if c.phase == PhaseConcurrent && done < budget && c.terminationReady() {
		c.finishCycle(ctx, "conc-done")
	}
}

// doConcurrentWork performs up to budget bytes of concurrent collection
// work for any participant (mutator increment or background thread), in the
// paper's preference order: trace marked objects first, then clean cards
// (deferred as long as other tracing work exists), then scan the stacks of
// threads that have not allocated. It returns the work actually done, in
// bytes.
func (c *CGC) doConcurrentWork(ctx *machine.Context, tr *workpack.Tracer, budget int64, self *mutator.Thread) int64 {
	var done int64
	for done < budget && c.phase == PhaseConcurrent {
		progress := false
		// 1. Trace from the packet pool.
		if t := c.eng.traceFromPackets(ctx, tr, budget-done); t > 0 {
			done += t
			progress = true
			continue
		}
		// The pool looked dry, but this thread's own output packet may
		// hold buffered work (for example freshly scanned roots). Card
		// cleaning is deferred as long as ANY tracing work is available,
		// so publish the buffer and retry before moving on.
		if tr.HoldsPackets() {
			tr.Release()
			if c.eng.pool.HasTracingWork() {
				progress = true
				continue
			}
		}
		// 2. Card cleaning: start a pass if none is in progress and we
		// still have passes to run; otherwise clean the next card.
		if c.cardCursor < len(c.cards) {
			card := c.cards[c.cardCursor]
			c.cardCursor++
			retraced := c.eng.cleanCard(ctx, tr, card)
			done += int64(cardtable.CardBytes) + retraced
			c.ConcCardsCleaned++
			c.cur.CardsCleanedConc++
			progress = true
			continue
		}
		if c.cardPassesRun < c.cfg.CardPasses && c.cardPassDue() {
			c.startCardPass(ctx)
			progress = true
			continue
		}
		// 3. Scan a stack of a thread that has not allocated yet.
		if th := c.nextUnscannedThread(); th != nil {
			th.StackScanned = true
			c.stacksScanned++
			ctx.Charge(c.rt.Costs.HandshakePerThread)
			c.eng.scanThreadStack(ctx, tr, th)
			progress = true
			continue
		}
		// 4. Recirculate deferred packets once per exhaustion.
		if !c.deferDrained && !c.eng.pool.DeferredEmpty() {
			c.deferDrained = true
			if c.eng.pool.DrainDeferred() > 0 {
				progress = true
				continue
			}
		}
		if !progress {
			break
		}
	}
	if done > 0 {
		c.deferDrained = false
	}
	return done
}

// cardPassDue decides whether the next cleaning pass should start now.
// The first pass starts as soon as no other tracing work remains (cleaning
// is deferred as long as possible); a footnote-2 second pass is worth
// running only "when possible" — after the heap has filled appreciably
// since the previous pass, so the cards it cleans had time to accumulate
// and little time remains for them to be re-dirtied.
func (c *CGC) cardPassDue() bool {
	if c.cardPassesRun == 0 {
		return true
	}
	return c.rt.Heap.FreeBytes() < c.freeAtLastPass/4
}

// startCardPass runs the Section 5.3 registration: scan the card table
// registering dirty cards and clearing their indicators, then force every
// mutator through a fence. The cost of the handshake is charged to the
// thread performing the registration.
func (c *CGC) startCardPass(ctx *machine.Context) {
	c.cardPassesRun++
	c.freeAtLastPass = c.rt.Heap.FreeBytes()
	c.cards = c.rt.Cards.RegisterAndClear(c.cards[:0])
	c.cardCursor = 0
	ctx.Charge(c.rt.Costs.CardRegister * vtime.Duration(len(c.cards)+1))
	c.tel.noteCardPass(ctx.Now(), len(c.cards), c.eng.pool)
	c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.CardPass, Cards: len(c.cards)})
	// Step 2: one forced fence per mutator thread.
	n := len(c.rt.Threads())
	ctx.Charge(c.rt.Costs.HandshakePerThread * vtime.Duration(n))
	c.ForcedFences += int64(n)
}

func (c *CGC) nextUnscannedThread() *mutator.Thread {
	if c.stacksScanned >= len(c.rt.Threads()) {
		return nil
	}
	for _, t := range c.rt.Threads() {
		if !t.StackScanned {
			return t
		}
	}
	return nil
}

// terminationReady implements the Section 4.3 / 2.1 criteria: "all thread
// stacks scanned, each card cleaned once, and no marked objects left to
// trace". Cards dirtied again after the cleaning pass do not hold the phase
// open — they are left for the stop-the-world phase, which is exactly why
// cleaning is deferred as late as possible.
func (c *CGC) terminationReady() bool {
	return c.stacksScanned >= len(c.rt.Threads()) &&
		c.globalsScanned &&
		c.nurseryScanned &&
		c.cardPassesRun >= c.cfg.CardPasses &&
		c.cardCursor >= len(c.cards) &&
		c.eng.pool.DeferredEmpty() &&
		c.eng.pool.TracingDone()
}

// finishCycle runs the final stop-the-world phase (Section 2.2): stop all
// threads, clean remaining dirty cards, rescan all stacks, complete
// marking, and sweep (unless lazy sweep is on).
func (c *CGC) finishCycle(ctx *machine.Context, reason string) {
	cs := c.cur
	cs.Reason = reason
	cs.ConcCompleted = reason == "conc-done"
	cs.BytesTracedConc = c.pacer.TracedWords()
	cs.AllocAtStw = c.TotalAllocBytes
	if cs.ConcCompleted {
		cs.FreeAtConcEnd = c.rt.Heap.FreeBytes()
	} else {
		// "Cards Left": how much cleaning work remained when an
		// allocation failure halted the phase (Table 2 criterion).
		cs.CardsLeft = (len(c.cards) - c.cardCursor) + c.rt.Cards.CountDirty()
	}
	tracedBefore := c.eng.bytesTraced
	cardsBefore := c.eng.cardsCleaned

	c.phase = PhaseIdle // the write barrier stops once the world stops
	c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.PauseStart, Reason: reason})
	c.m.StopTheWorld(ctx, "cgc:"+reason, func(stoppedAt vtime.Time) vtime.Time {
		cs.RequestedAt = ctx.Now()
		cs.StoppedAt = stoppedAt
		c.rt.RetireAllCaches()
		// Every allocation bit is now published; deferred objects can be
		// traced normally.
		c.eng.pool.DrainDeferred()
		c.eng.concurrentMode = false
		// Re-register leftover cards from the interrupted concurrent pass
		// so the mark phase cleans them.
		for _, card := range c.cards[c.cardCursor:] {
			c.rt.Cards.DirtyCard(card)
		}
		markEnd := stwMarkPhase(c.eng, c.rt, stoppedAt, c.cfg.Workers)
		cs.MarkEndAt = markEnd
		cs.MarkTime = markEnd.Sub(stoppedAt)
		c.emit(gctrace.Event{At: markEnd, Kind: gctrace.MarkEnd, Cards: int(c.eng.cardsCleaned - cardsBefore)})
		if c.cfg.LazySweep {
			c.lazy = newLazySweeper(c.rt.Heap, c.rt.Costs, c.cfg.OldSpaceWords)
			return markEnd
		}
		sweepEnd, _ := runParallelSweep(c.rt.Heap, c.rt.Costs, markEnd, c.cfg.Workers, c.cfg.OldSpaceWords)
		cs.SweepTime = sweepEnd.Sub(markEnd)
		c.emit(gctrace.Event{At: sweepEnd, Kind: gctrace.SweepEnd, FreeBytes: c.rt.Heap.FreeBytes()})
		if c.eng.comp != nil {
			// Evacuate this cycle's area and fix up the remembered
			// pointers ("after sweep we evacuate the objects from the
			// area and fix up the references").
			cw := &machine.Worker{}
			cw.Charge(sweepEnd.Sub(0))
			c.eng.comp.run(cw)
			cs.CompactTime = c.eng.comp.Last.Time
			return cw.Now()
		}
		return sweepEnd
	})
	cs.EndAt = ctx.Now()
	cs.Pause = cs.EndAt.Sub(cs.RequestedAt)
	cs.BytesTracedStw = c.eng.bytesTraced - tracedBefore
	cs.CardsCleanedStw = int(c.eng.cardsCleaned - cardsBefore)
	c.FinalCardsCleaned += int64(cs.CardsCleanedStw)
	cs.LiveAfter = c.rt.Heap.OccupiedBytes()
	cs.FreeAfter = c.rt.Heap.FreeBytes()
	cs.LargestFreeAfter = int64(c.rt.Heap.LargestFreeChunk()) * heapsimWordBytes
	cs.CASAtEnd = c.eng.pool.Stats.CASAttempts.Load()

	dirtyBytes := int64(cs.CardsCleanedConc+cs.CardsCleanedStw) * cardtable.CardBytes
	c.pacer.EndCycle(cs.BytesTracedConc+cs.BytesTracedStw, dirtyBytes)
	c.cards = c.cards[:0]
	c.cardCursor = 0
	c.flushRememberedCards()
	c.lastCycleEndAt = cs.EndAt
	c.allocAtLastCycleEnd = c.TotalAllocBytes
	c.Cycles = append(c.Cycles, cs)
	c.tel.noteCycle(&cs, c.eng.pool)
	c.emit(gctrace.Event{
		At:            cs.EndAt,
		Kind:          gctrace.PauseEnd,
		Reason:        reason,
		PauseDuration: cs.Pause,
		LiveBytes:     cs.LiveAfter,
		FreeBytes:     cs.FreeAfter,
	})
}

// flushRememberedCards restores the dirty indicators of cards whose
// old-to-young pointers survived a cleaning pass (generational mode only;
// a no-op otherwise). The next minor collection will scan them.
func (c *CGC) flushRememberedCards() {
	for _, card := range c.eng.rememberedCards {
		c.rt.Cards.DirtyCard(card)
	}
	c.eng.rememberedCards = c.eng.rememberedCards[:0]
}

// directCollect is the degenerate path: an allocation failure with no
// concurrent phase in progress (the kickoff came too late). It behaves like
// the baseline collector for this cycle.
func (c *CGC) directCollect(ctx *machine.Context) {
	cs := CycleStats{Reason: "stw-direct"}
	tracedBefore := c.eng.bytesTraced
	c.emit(gctrace.Event{At: ctx.Now(), Kind: gctrace.PauseStart, Reason: "stw-direct"})
	c.m.StopTheWorld(ctx, "cgc:stw-direct", func(stoppedAt vtime.Time) vtime.Time {
		cs.RequestedAt = ctx.Now()
		cs.StoppedAt = stoppedAt
		c.rt.RetireAllCaches()
		c.rt.Heap.MarkBits.ClearAll()
		if c.eng.comp != nil {
			// No concurrent phase chose an area; choose one at the pause
			// start so direct collections still make compaction progress.
			c.eng.comp.beginCycle()
		}
		c.eng.concurrentMode = false
		markEnd := stwMarkPhase(c.eng, c.rt, stoppedAt, c.cfg.Workers)
		cs.MarkEndAt = markEnd
		cs.MarkTime = markEnd.Sub(stoppedAt)
		sweepEnd, _ := runParallelSweep(c.rt.Heap, c.rt.Costs, markEnd, c.cfg.Workers, c.cfg.OldSpaceWords)
		cs.SweepTime = sweepEnd.Sub(markEnd)
		if c.eng.comp != nil {
			cw := &machine.Worker{}
			cw.Charge(sweepEnd.Sub(0))
			c.eng.comp.run(cw)
			cs.CompactTime = c.eng.comp.Last.Time
			return cw.Now()
		}
		return sweepEnd
	})
	cs.EndAt = ctx.Now()
	cs.Pause = cs.EndAt.Sub(cs.RequestedAt)
	cs.BytesTracedStw = c.eng.bytesTraced - tracedBefore
	cs.LiveAfter = c.rt.Heap.OccupiedBytes()
	cs.FreeAfter = c.rt.Heap.FreeBytes()
	cs.LargestFreeAfter = int64(c.rt.Heap.LargestFreeChunk()) * heapsimWordBytes
	// Prime the predictors from what a concurrent phase would have seen.
	c.pacer.EndCycle(cs.BytesTracedStw, 0)
	c.flushRememberedCards()
	c.lastCycleEndAt = cs.EndAt
	c.allocAtLastCycleEnd = c.TotalAllocBytes
	c.Cycles = append(c.Cycles, cs)
	c.tel.noteCycle(&cs, c.eng.pool)
	c.emit(gctrace.Event{
		At:            cs.EndAt,
		Kind:          gctrace.PauseEnd,
		Reason:        "stw-direct",
		PauseDuration: cs.Pause,
		LiveBytes:     cs.LiveAfter,
		FreeBytes:     cs.FreeAfter,
	})
}

// FinishTelemetry flushes the run's cumulative pool/card/fence counters into
// the configured metrics registry. Call once after the simulation stops; a
// no-op when telemetry is disabled.
func (c *CGC) FinishTelemetry() {
	c.tel.finishRun(c.eng.pool, c.eng)
}

package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
)

// buildHeapWithLive allocates objects, marks the chosen ones, and returns
// the survivors. Objects are allocated large (published immediately) so the
// test controls layout exactly.
func buildHeapWithLive(t *testing.T, heapBytes int64, objWords []int, liveIdx map[int]bool) (*heapsim.Heap, []heapsim.Addr) {
	t.Helper()
	h := heapsim.NewHeap(heapBytes)
	var live []heapsim.Addr
	for i, w := range objWords {
		a := h.AllocLarge(w, 0)
		if a == heapsim.Nil {
			t.Fatalf("setup alloc %d failed", i)
		}
		if liveIdx[i] {
			h.MarkBits.Set(int(a))
			live = append(live, a)
		}
	}
	return h, live
}

func sweepAndCheck(t *testing.T, h *heapsim.Heap, live []heapsim.Addr, workers int) {
	t.Helper()
	_, _ = runParallelSweep(h, machine.DefaultCosts(), 0, workers, 0)
	// Live objects keep their allocation bits; everything else is clear.
	liveSet := make(map[heapsim.Addr]bool, len(live))
	var liveWords int64
	for _, a := range live {
		liveSet[a] = true
		liveWords += int64(h.SizeOf(a))
		if !h.AllocBits.Test(int(a)) {
			t.Fatalf("live object %d lost its allocation bit", a)
		}
	}
	h.ForEachObject(func(a heapsim.Addr) {
		if !liveSet[a] {
			t.Fatalf("dead object %d still has an allocation bit", a)
		}
	})
	// Byte conservation: usable = live + free + dark.
	total := int64(h.SizeWords()) - 1
	free := h.FreeBytes() / heapsim.WordBytes
	dark := h.Stats.DarkMatterWords
	if liveWords+free+dark != total {
		t.Fatalf("conservation: live %d + free %d + dark %d != %d", liveWords, free, dark, total)
	}
	// Free chunks must not overlap any live object.
	for _, c := range h.FreeChunks() {
		for _, a := range live {
			end := a + heapsim.Addr(h.SizeOf(a))
			if c.Addr < end && c.End() > a {
				t.Fatalf("free chunk [%d,%d) overlaps live object [%d,%d)", c.Addr, c.End(), a, end)
			}
		}
	}
}

func TestSweepAllDead(t *testing.T) {
	h, live := buildHeapWithLive(t, 1<<16, []int{10, 20, 30}, nil)
	sweepAndCheck(t, h, live, 2)
	if h.FreeBytes() != h.UsableBytes() {
		t.Fatalf("FreeBytes = %d after sweeping all-dead heap, want %d", h.FreeBytes(), h.UsableBytes())
	}
	if len(h.FreeChunks()) != 1 {
		t.Fatalf("all-dead heap swept into %d chunks, want 1 coalesced run", len(h.FreeChunks()))
	}
}

func TestSweepAllLive(t *testing.T) {
	sizes := []int{10, 20, 30, 40}
	liveIdx := map[int]bool{0: true, 1: true, 2: true, 3: true}
	h, live := buildHeapWithLive(t, 4096, sizes, liveIdx)
	sweepAndCheck(t, h, live, 2)
	if len(live) != 4 {
		t.Fatal("setup")
	}
}

func TestSweepAlternating(t *testing.T) {
	sizes := make([]int, 40)
	liveIdx := make(map[int]bool)
	for i := range sizes {
		sizes[i] = 10
		if i%2 == 0 {
			liveIdx[i] = true
		}
	}
	h, live := buildHeapWithLive(t, 1<<16, sizes, liveIdx)
	sweepAndCheck(t, h, live, 4)
	// Each interior dead 10-word object becomes a 10-word chunk; the last
	// object is dead too, so its gap coalesces with the heap tail.
	const want = 19 + 1
	chunks := h.FreeChunks()
	if len(chunks) != want {
		t.Fatalf("chunks = %d, want %d", len(chunks), want)
	}
}

func TestSweepObjectSpanningSections(t *testing.T) {
	// A live object bigger than a section must suppress the free runs of
	// the sections it covers.
	h := heapsim.NewHeap(int64(sweepSectionWords) * 4 * heapsim.WordBytes)
	small := h.AllocLarge(8, 0)
	big := h.AllocLarge(sweepSectionWords*2, 0) // spans >= 2 sections
	tail := h.AllocLarge(8, 0)
	h.MarkBits.Set(int(big))
	h.MarkBits.Set(int(tail))
	_ = small // dead
	sweepAndCheck(t, h, []heapsim.Addr{big, tail}, 3)
}

func TestSweepDeadSpanningObject(t *testing.T) {
	// A dead multi-section object coalesces into one big free run with
	// its neighbours.
	h := heapsim.NewHeap(int64(sweepSectionWords) * 4 * heapsim.WordBytes)
	a := h.AllocLarge(16, 0)
	dead := h.AllocLarge(sweepSectionWords*2+17, 0)
	b := h.AllocLarge(16, 0)
	_ = dead
	h.MarkBits.Set(int(a))
	h.MarkBits.Set(int(b))
	sweepAndCheck(t, h, []heapsim.Addr{a, b}, 2)
	// Between a and b there must be exactly one coalesced chunk.
	count := 0
	for _, c := range h.FreeChunks() {
		if c.Addr >= a && c.End() <= b+heapsim.Addr(16) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("dead spanning object left %d chunks between survivors, want 1", count)
	}
}

func TestSweepDarkMatter(t *testing.T) {
	// A dead 2-word object between live neighbours is below MinChunkWords
	// and becomes dark matter.
	h := heapsim.NewHeap(1 << 14)
	a := h.AllocLarge(8, 0)
	tiny := h.AllocLarge(2, 0)
	b := h.AllocLarge(8, 0)
	_ = tiny
	h.MarkBits.Set(int(a))
	h.MarkBits.Set(int(b))
	sweepAndCheck(t, h, []heapsim.Addr{a, b}, 1)
	if h.Stats.DarkMatterWords != 2 {
		t.Fatalf("DarkMatterWords = %d, want 2", h.Stats.DarkMatterWords)
	}
}

func TestSweepEmptyHeap(t *testing.T) {
	h := heapsim.NewHeap(1 << 14)
	_, free := runParallelSweep(h, machine.DefaultCosts(), 0, 4, 0)
	if free != h.UsableBytes() {
		t.Fatalf("free = %d, want %d", free, h.UsableBytes())
	}
}

func TestSweepWorkerCountInvariance(t *testing.T) {
	// The resulting free list must not depend on the worker count.
	build := func() (*heapsim.Heap, []heapsim.Addr) {
		r := rand.New(rand.NewSource(42))
		sizes := make([]int, 300)
		liveIdx := make(map[int]bool)
		for i := range sizes {
			sizes[i] = r.Intn(60) + 4
			if r.Intn(3) > 0 {
				liveIdx[i] = true
			}
		}
		h := heapsim.NewHeap(1 << 20)
		var live []heapsim.Addr
		for _, w := range sizes {
			a := h.AllocLarge(w, 0)
			if _, ok := liveIdx[len(live)]; ok && a != heapsim.Nil {
			}
			live = append(live, a)
		}
		var marked []heapsim.Addr
		for i, a := range live {
			if liveIdx[i] {
				h.MarkBits.Set(int(a))
				marked = append(marked, a)
			}
		}
		return h, marked
	}
	h1, _ := build()
	h4, _ := build()
	runParallelSweep(h1, machine.DefaultCosts(), 0, 1, 0)
	runParallelSweep(h4, machine.DefaultCosts(), 0, 4, 0)
	c1, c4 := h1.FreeChunks(), h4.FreeChunks()
	if len(c1) != len(c4) {
		t.Fatalf("chunk counts differ: %d vs %d", len(c1), len(c4))
	}
	for i := range c1 {
		if c1[i] != c4[i] {
			t.Fatalf("chunk %d differs: %+v vs %+v", i, c1[i], c4[i])
		}
	}
	if h1.FreeBytes() != h4.FreeBytes() {
		t.Fatal("free bytes differ across worker counts")
	}
}

func TestSweepMoreWorkersIsNotSlower(t *testing.T) {
	// Parallel sweep makespan with 4 workers should be well under the
	// single-worker makespan on a heap with many sections.
	build := func() *heapsim.Heap {
		h := heapsim.NewHeap(8 << 20)
		for {
			a := h.AllocLarge(32, 0)
			if a == heapsim.Nil {
				break
			}
			if a%3 != 0 {
				h.MarkBits.Set(int(a))
			}
		}
		return h
	}
	end1, _ := runParallelSweep(build(), machine.DefaultCosts(), 0, 1, 0)
	end4, _ := runParallelSweep(build(), machine.DefaultCosts(), 0, 4, 0)
	if float64(end4) > float64(end1)*0.5 {
		t.Fatalf("4-worker sweep %v not appreciably faster than 1-worker %v", end4, end1)
	}
}

// Property: random live/dead patterns always conserve bytes and never free
// a marked object.
func TestQuickSweepConservation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h := heapsim.NewHeap(1 << 18)
		var live []heapsim.Addr
		var liveWords int64
		for {
			w := r.Intn(200) + 4
			a := h.AllocLarge(w, 0)
			if a == heapsim.Nil {
				break
			}
			if r.Intn(2) == 0 {
				h.MarkBits.Set(int(a))
				live = append(live, a)
				liveWords += int64(h.SizeOf(a))
			}
		}
		workers := 1 + int(uint64(seed)%4)
		runParallelSweep(h, machine.DefaultCosts(), 0, workers, 0)
		for _, a := range live {
			if !h.AllocBits.Test(int(a)) {
				return false
			}
		}
		total := int64(h.SizeWords()) - 1
		return liveWords+h.FreeBytes()/heapsim.WordBytes+h.Stats.DarkMatterWords == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Lazy sweep must produce exactly the same free space as the eager sweep.
func TestLazySweepEquivalence(t *testing.T) {
	build := func(seed int64) *heapsim.Heap {
		r := rand.New(rand.NewSource(seed))
		h := heapsim.NewHeap(1 << 18)
		for {
			a := h.AllocLarge(r.Intn(120)+4, 0)
			if a == heapsim.Nil {
				break
			}
			if r.Intn(3) > 0 {
				h.MarkBits.Set(int(a))
			}
		}
		return h
	}
	for seed := int64(0); seed < 5; seed++ {
		eager := build(seed)
		lazy := build(seed)
		runParallelSweep(eager, machine.DefaultCosts(), 0, 4, 0)
		ls := newLazySweeper(lazy, machine.DefaultCosts(), 0)
		w := &machine.Worker{}
		for !ls.done() {
			ls.sweepOne(w)
		}
		if eager.FreeBytes() != lazy.FreeBytes() {
			t.Fatalf("seed %d: eager free %d != lazy free %d", seed, eager.FreeBytes(), lazy.FreeBytes())
		}
		ce, cl := eager.FreeChunks(), lazy.FreeChunks()
		if len(ce) != len(cl) {
			t.Fatalf("seed %d: chunk counts %d vs %d", seed, len(ce), len(cl))
		}
		for i := range ce {
			if ce[i] != cl[i] {
				t.Fatalf("seed %d: chunk %d %+v vs %+v", seed, i, ce[i], cl[i])
			}
		}
	}
}

package core

import (
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

// newCompactingEnv builds a CGC with incremental compaction over a small
// area so every cycle evacuates something.
func newCompactingEnv(heapBytes int64, procs int) (*testEnv, *CGC) {
	env := newEnv(heapBytes, procs)
	cfg := testCGCConfig()
	cfg.Compaction = true
	cfg.CompactAreaWords = int(heapBytes / heapsim.WordBytes / 8)
	col := NewCGC(env.rt, env.m, cfg)
	env.rt.SetCollector(col)
	col.SpawnBackground()
	return env, col
}

// TestCompactionGraphIntegrity builds a deterministic graph, forces cycles,
// and verifies the graph is intact via heap walks after objects moved. The
// shadow churner cannot be used (it is keyed by address), so this test uses
// content stamps that move with the object.
func TestCompactionGraphIntegrity(t *testing.T) {
	env, col := newCompactingEnv(2<<20, 2)
	rt := env.rt
	th := rt.NewThread()

	const nodes = 2000
	// Expected id at chain position i after the rebuild rounds: the front
	// half is rebuilt with ids 1000+i; the back half keeps the original
	// prepend-ordered ids (position i holds id 2999-i).
	wantID := func(i int) uint64 {
		if i < nodes/2 {
			return uint64(1000 + i)
		}
		// Back half: original prepend order, so position i holds the
		// (nodes-1-i)-th allocation.
		return uint64(1000 + nodes - 1 - i)
	}

	var ran bool
	env.m.AddThread("builder", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		// A chain of nodes rooted at stack slot 0, each with a payload id.
		th.Stack = append(th.Stack, heapsim.Nil)
		for i := 0; i < nodes; i++ {
			n := rt.Alloc(ctx, th, 1, 2)
			rt.Heap.SetPayload(n, 0, uint64(1000+i))
			rt.SetRef(ctx, n, 0, th.Stack[0])
			th.Stack[0] = n
		}
		// Churn: repeatedly rebuild the chain's front half to force many
		// GC cycles (and so many evacuations).
		for round := 0; round < 200; round++ {
			head := th.Stack[0]
			// Walk to the middle.
			cur := head
			for i := 0; i < nodes/2; i++ {
				cur = rt.Heap.RefAt(cur, 0)
			}
			// New front half linked onto the preserved back half.
			th.Stack = append(th.Stack, cur) // root the back half
			newHead := cur
			for i := nodes/2 - 1; i >= 0; i-- {
				n := rt.Alloc(ctx, th, 1, 2)
				rt.Heap.SetPayload(n, 0, uint64(1000+i))
				rt.SetRef(ctx, n, 0, newHead)
				newHead = n
				th.Stack[len(th.Stack)-1] = newHead
			}
			th.Stack = th.Stack[:len(th.Stack)-1]
			th.Stack[0] = newHead
		}
		ran = true
		return machine.Finish
	})
	env.m.Run(vtime.Time(60 * vtime.Second))
	if !ran {
		t.Fatal("builder did not finish")
	}
	if len(col.Cycles) == 0 {
		t.Fatal("no GC cycles")
	}
	st := col.Compactor()
	if st == nil {
		t.Fatal("compactor not attached")
	}
	if st.EvacuatedObjects == 0 && st.SlotsFixed == 0 {
		t.Skip("no evacuations occurred this run (layout-dependent)")
	}
	// Verify the chain end-to-end: ids in order, full length.
	cur := th.Stack[0]
	for i := 0; i < nodes; i++ {
		if cur == heapsim.Nil {
			t.Fatalf("chain broken at %d", i)
		}
		if got := rt.Heap.PayloadAt(cur, 0); got != wantID(i) {
			t.Fatalf("node %d has id %d, want %d (bad fixup)", i, got, wantID(i))
		}
		cur = rt.Heap.RefAt(cur, 0)
	}
	if cur != heapsim.Nil {
		t.Fatal("chain longer than built")
	}
}

// TestCompactionEvacuatesAndFrees checks the mechanics on a hand-built
// heap: marked unpinned objects leave the area, pinned ones stay, slots are
// fixed, and the vacated space returns to the free list.
func TestCompactionEvacuatesAndFrees(t *testing.T) {
	env, col := newCompactingEnv(1<<20, 1)
	rt := env.rt
	th := rt.NewThread()
	var inAreaObj, holder, pinnedObj heapsim.Addr
	env.m.AddThread("prog", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		comp := col.eng.comp
		// Fill some of the heap so addresses are spread out, then place
		// objects and run a direct collection with a chosen area.
		th.Stack = append(th.Stack, heapsim.Nil, heapsim.Nil)
		holder = rt.Alloc(ctx, th, 2, 2)
		th.Stack[0] = holder
		// Allocate until we get an object inside the next cycle's area.
		next := comp.cursor
		for i := 0; i < 100000; i++ {
			o := rt.Alloc(ctx, th, 1, 2)
			if o >= next && o < next+heapsim.Addr(comp.areaWords) {
				inAreaObj = o
				break
			}
		}
		if inAreaObj == heapsim.Nil {
			t.Error("could not place an object in the upcoming area")
			return machine.Finish
		}
		rt.Heap.SetPayload(inAreaObj, 0, 777)
		rt.SetRef(ctx, holder, 0, inAreaObj)
		// A pinned object: referenced directly from the stack.
		pinnedObj = rt.Alloc(ctx, th, 0, 2)
		if !comp.inArea(pinnedObj) {
			// Try to land one in the area; not critical if we cannot.
			for i := 0; i < 100000; i++ {
				o := rt.Alloc(ctx, th, 0, 2)
				if o >= next && o < next+heapsim.Addr(comp.areaWords) {
					pinnedObj = o
					break
				}
			}
		}
		th.Stack[1] = pinnedObj
		col.directCollect(ctx)
		return machine.Finish
	})
	env.m.Run(vtime.Time(30 * vtime.Second))

	st := col.Compactor()
	if st == nil || st.AreaTo == 0 {
		t.Fatal("compaction did not run")
	}
	// The holder's slot must now reference a live object with the payload,
	// wherever it lives.
	moved := rt.Heap.RefAt(holder, 0)
	if moved == heapsim.Nil {
		t.Fatal("holder slot lost")
	}
	if got := rt.Heap.PayloadAt(moved, 0); got != 777 {
		t.Fatalf("payload after compaction = %d, want 777", got)
	}
	if !rt.Heap.AllocBits.Test(int(moved)) {
		t.Fatal("moved object not published")
	}
	if inAreaObj >= st.AreaFrom && inAreaObj < st.AreaTo && st.EvacuatedObjects > 0 {
		if moved == inAreaObj {
			t.Log("object was pinned or move failed; acceptable but unexpected")
		}
	}
	// The pinned object must not have moved.
	if rt.Heap.AllocBits.Test(int(pinnedObj)) == false {
		t.Fatal("stack-referenced object vanished")
	}
}

// Note: the shadow-model churn harness (harness_test.go) is keyed by object
// address, so it deliberately runs only against non-moving configurations;
// end-to-end compaction integrity over a live workload is covered by
// TestJBBWithCompaction in internal/workload, whose integrity stamps move
// with the objects.

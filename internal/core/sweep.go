package core

import (
	"fmt"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

// Bitwise sweep (Section 2.2): free memory is found as the ranges between
// marked objects in the mark bit vector, in time essentially proportional
// to the number of live objects, parallelized by dividing the heap into
// sections that sweep workers claim.
//
// Because only object header words carry mark bits, a section's interior
// gaps (bounded on both sides by live objects of the same section) are
// definitely free, while its leading gap may be covered by a live object
// spanning in from an earlier section; a sequential merge resolves leading
// gaps and coalesces free runs across section boundaries.

// sweepSectionWords is the section granularity: 64 KB of heap.
const sweepSectionWords = 8192

// sectionResult is one section's contribution to the sweep.
type sectionResult struct {
	hasLive      bool
	firstLive    heapsim.Addr
	lastEnd      heapsim.Addr // end of the last live object starting in the section
	interior     []heapsim.Chunk
	interiorDark int64 // words of sub-minimum interior gaps
}

// sweeper performs one parallel bitwise sweep over the heap (or, under the
// generational extension, over the old space: limitWords excludes the
// nursery region at the top of the heap).
type sweeper struct {
	h          *heapsim.Heap
	costs      machine.Costs
	limitWords int
	sections   []sectionResult
	nextSec    int // shared claim cursor (deterministic under RunParallel)
}

func newSweeper(h *heapsim.Heap, costs machine.Costs, limitWords int) *sweeper {
	if limitWords <= 0 || limitWords > h.SizeWords() {
		limitWords = h.SizeWords()
	}
	n := (limitWords + sweepSectionWords - 1) / sweepSectionWords
	return &sweeper{h: h, costs: costs, limitWords: limitWords, sections: make([]sectionResult, n)}
}

func (s *sweeper) numSections() int { return len(s.sections) }

func (s *sweeper) sectionBounds(k int) (from, to heapsim.Addr) {
	from = heapsim.Addr(k * sweepSectionWords)
	if from == 0 {
		from = 1 // skip the heap sentinel word
	}
	to = heapsim.Addr((k + 1) * sweepSectionWords)
	if int(to) > s.limitWords {
		to = heapsim.Addr(s.limitWords)
	}
	return from, to
}

// claimSection hands out the next unswept section, or -1 when none remain.
func (s *sweeper) claimSection() int {
	if s.nextSec >= len(s.sections) {
		return -1
	}
	k := s.nextSec
	s.nextSec++
	return k
}

// sweepSection scans one section's mark bits, recording interior free runs
// and clearing the allocation bits of dead objects within them. The cost is
// charged to ch.
func (s *sweeper) sweepSection(ch charger, k int) {
	from, to := s.sectionBounds(k)
	res := &s.sections[k]
	ch.Charge(machine.ForBytes(s.costs.SweepBytePs, int64(to-from)*heapsim.WordBytes))

	mb := s.h.MarkBits
	prevEnd := heapsim.Nil
	for i := mb.NextSet(int(from)); i >= 0 && i < int(to); {
		a := heapsim.Addr(i)
		words := s.h.SizeOf(a)
		if words <= 0 {
			panic(fmt.Sprintf("core: sweep found marked word %d with corrupt header", a))
		}
		if !res.hasLive {
			res.hasLive = true
			res.firstLive = a
		} else if prevEnd < a {
			s.recordGap(ch, res, prevEnd, a)
		}
		prevEnd = a + heapsim.Addr(words)
		res.lastEnd = prevEnd
		next := mb.NextSet(i + 1)
		if next >= 0 && next < int(prevEnd) {
			// A marked word inside an object body means a reference to a
			// non-header word was marked — heap corruption.
			ow, or := s.h.Header(a)
			iw, ir := s.h.Header(heapsim.Addr(next))
			panic(fmt.Sprintf("core: mark bit inside object: outer %d (words=%d refs=%d alloc=%v) contains mark at %d (words=%d refs=%d alloc=%v)",
				a, ow, or, s.h.AllocBits.Test(int(a)),
				next, iw, ir, s.h.AllocBits.Test(next)))
		}
		i = next
	}
}

// recordGap files an interior free run, clearing dead allocation bits.
func (s *sweeper) recordGap(ch charger, res *sectionResult, from, to heapsim.Addr) {
	s.h.AllocBits.ClearRange(int(from), int(to))
	words := int(to - from)
	if words < heapsim.MinChunkWords {
		res.interiorDark += int64(words)
		return
	}
	res.interior = append(res.interior, heapsim.Chunk{Addr: from, Words: words})
	ch.Charge(s.costs.SweepChunk)
}

// merge resolves leading gaps, coalesces runs across section boundaries and
// returns the complete address-ordered free list plus dark-matter words.
// It must run after every section has been swept.
func (s *sweeper) merge(ch charger) (chunks []heapsim.Chunk, dark int64) {
	heapEnd := heapsim.Addr(s.limitWords)
	cover := heapsim.Addr(1) // end of live coverage seen so far
	pending := heapsim.Nil   // start of an open free run, or Nil
	flush := func(to heapsim.Addr) {
		if pending == heapsim.Nil || pending >= to {
			pending = heapsim.Nil
			return
		}
		s.h.AllocBits.ClearRange(int(pending), int(to))
		words := int(to - pending)
		if words < heapsim.MinChunkWords {
			dark += int64(words)
		} else {
			chunks = append(chunks, heapsim.Chunk{Addr: pending, Words: words})
			ch.Charge(s.costs.SweepChunk)
		}
		pending = heapsim.Nil
	}
	for k := range s.sections {
		secFrom, secTo := s.sectionBounds(k)
		res := &s.sections[k]
		dark += res.interiorDark
		if !res.hasLive {
			// Entire section is free except where covered from the left.
			if cover < secTo && pending == heapsim.Nil {
				pending = vmax(cover, secFrom)
			}
			continue
		}
		// Resolve the leading gap [cover|secFrom, firstLive).
		if pending == heapsim.Nil && cover < res.firstLive {
			pending = vmax(cover, secFrom)
		}
		flush(res.firstLive)
		chunks = append(chunks, res.interior...)
		if res.lastEnd > cover {
			cover = res.lastEnd
		}
		if res.lastEnd < secTo {
			pending = res.lastEnd
		}
	}
	flush(heapEnd)
	return chunks, dark
}

func vmax(a, b heapsim.Addr) heapsim.Addr {
	if a > b {
		return a
	}
	return b
}

// runParallelSweep executes the full sweep with n workers starting at
// virtual time start and installs the resulting free list. It returns the
// finish time and the total free bytes recovered.
func runParallelSweep(h *heapsim.Heap, costs machine.Costs, start vtime.Time, workers, limitWords int) (vtime.Time, int64) {
	s := newSweeper(h, costs, limitWords)
	end := machine.RunParallel(start, workers, func(w *machine.Worker) bool {
		k := s.claimSection()
		if k < 0 {
			return false
		}
		s.sweepSection(w, k)
		return true
	})
	// The merge is a short sequential pass; charge it to a single worker
	// timeline after the parallel phase.
	mw := &machine.Worker{}
	chunks, dark := s.merge(mw)
	h.InstallFreeList(chunks, dark)
	end = end.Add(mw.Now().Sub(0))
	return end, h.FreeBytes()
}

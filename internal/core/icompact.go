package core

import (
	"fmt"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

// Incremental compaction (Section 2.3, detailed in the companion paper the
// authors cite as [6]): full compaction of a large heap is incompatible
// with short pauses, but one area per cycle can be evacuated during the
// stop-the-world phase. The area is chosen before the concurrent mark
// phase begins; all pointers into it found while marking (concurrently and
// in the pause) are remembered; after sweep, the live objects of the area
// are evacuated and the remembered slots fixed up.
//
// Objects referenced from thread stacks or globals are pinned: the
// collector scans stacks conservatively (Section 2.2), so values that might
// be stack-held references cannot be relocated.

// slotRef remembers one reference slot observed pointing into the area.
type slotRef struct {
	holder heapsim.Addr
	slot   int32
}

// CompactStats summarizes one cycle's evacuation.
type CompactStats struct {
	AreaFrom, AreaTo heapsim.Addr
	EvacuatedObjects int
	EvacuatedBytes   int64
	PinnedObjects    int
	SlotsRemembered  int
	SlotsFixed       int
	FailedMoves      int // no space outside the area; object left in place
	Time             vtime.Duration
}

// compactor holds the per-cycle evacuation state.
type compactor struct {
	h     *heapsim.Heap
	costs machine.Costs

	areaWords  int
	limitWords int
	cursor     heapsim.Addr // next area start (rotates through the managed region)

	// Per-cycle state.
	active   bool
	from, to heapsim.Addr
	slots    []slotRef
	pinned   map[heapsim.Addr]bool

	Last  CompactStats
	Total CompactStats // cumulative across cycles (Area fields hold the last area)
}

// newCompactor creates a compactor evacuating areaWords per cycle within
// [1, limitWords) (0: the whole heap).
func newCompactor(h *heapsim.Heap, costs machine.Costs, areaWords, limitWords int) *compactor {
	if limitWords <= 0 || limitWords > h.SizeWords() {
		limitWords = h.SizeWords()
	}
	if areaWords <= 0 {
		areaWords = limitWords / 32
	}
	if areaWords < 2*sweepSectionWords {
		areaWords = 2 * sweepSectionWords
	}
	if areaWords > limitWords-1 {
		areaWords = limitWords - 1
	}
	return &compactor{h: h, costs: costs, areaWords: areaWords, limitWords: limitWords, cursor: 1}
}

// beginCycle selects the evacuation area for this cycle ("we choose an area
// to be evacuated before the start of the concurrent mark phase").
func (c *compactor) beginCycle() {
	c.active = true
	c.from = c.cursor
	c.to = c.from + heapsim.Addr(c.areaWords)
	limit := heapsim.Addr(c.limitWords)
	if c.to > limit {
		c.to = limit
	}
	c.cursor = c.to
	if c.cursor >= limit {
		c.cursor = 1
	}
	c.slots = c.slots[:0]
	c.pinned = make(map[heapsim.Addr]bool)
	c.Last = CompactStats{AreaFrom: c.from, AreaTo: c.to}
}

// inArea reports whether an address falls in this cycle's area.
func (c *compactor) inArea(a heapsim.Addr) bool {
	return c.active && a >= c.from && a < c.to
}

// noteSlot remembers that holder's reference slot i points into the area.
// Called from the tracing engine for every scanned slot whose value is in
// the area (both during the concurrent phase and the pause). Entries may go
// stale — the mutator can overwrite the slot — so fixup re-validates.
func (c *compactor) noteSlot(ch charger, holder heapsim.Addr, i int) {
	c.slots = append(c.slots, slotRef{holder: holder, slot: int32(i)})
	ch.Charge(c.costs.PacketOp)
}

// notePin marks an area object as unmovable because a root (conservatively
// scanned stack slot or global) references it.
func (c *compactor) notePin(a heapsim.Addr) {
	if c.inArea(a) {
		c.pinned[a] = true
	}
}

// run performs the evacuation after sweep, while the world is stopped:
// copy every marked, unpinned object out of the area, then fix up the
// remembered slots through the forwarding table, then free the vacated
// ranges. It returns the virtual time consumed.
func (c *compactor) run(w *machine.Worker) {
	if !c.active {
		return
	}
	start := w.Now()
	fwd := make(map[heapsim.Addr]heapsim.Addr)

	// Evacuate marked, unpinned objects.
	mb := c.h.MarkBits
	for i := mb.NextSet(int(c.from)); i >= 0 && i < int(c.to); i = mb.NextSet(i + 1) {
		old := heapsim.Addr(i)
		words := c.h.SizeOf(old)
		if words <= 0 {
			panic(fmt.Sprintf("core: compaction found marked word %d with corrupt header", old))
		}
		if c.pinned[old] {
			c.Last.PinnedObjects++
			i = int(old) + words - 1
			continue
		}
		dst := c.h.AllocAvoiding(words, c.from, c.to)
		if dst == heapsim.Nil {
			// No room outside the area: leave the object in place.
			c.Last.FailedMoves++
			i = int(old) + words - 1
			continue
		}
		c.h.MoveObject(old, dst)
		mb.Set(int(dst))
		fwd[old] = dst
		c.Last.EvacuatedObjects++
		c.Last.EvacuatedBytes += int64(words) * heapsim.WordBytes
		w.Charge(machine.ForBytes(c.costs.TraceBytePs, int64(words)*heapsim.WordBytes))
		i = int(old) + words - 1
	}

	// Fix up remembered slots. A holder that was itself evacuated is
	// resolved through the forwarding table; dead holders are skipped.
	c.Last.SlotsRemembered = len(c.slots)
	for _, s := range c.slots {
		holder := s.holder
		if nh, ok := fwd[holder]; ok {
			holder = nh
		} else if !mb.Test(int(holder)) {
			continue // holder died during the cycle; slot memory may be freed
		}
		v := c.h.RefAt(holder, int(s.slot))
		if nv, ok := fwd[v]; ok {
			c.h.SetRefRaw(holder, int(s.slot), nv)
			c.Last.SlotsFixed++
		}
		w.Charge(c.costs.PacketOp)
	}

	// Free the vacated space as maximal coalesced runs: clear the moved
	// objects' bits, pull the area's pre-existing free chunks off the
	// list, then walk the area's remaining allocation bits emitting the
	// gaps between survivors (pinned or failed moves) as single chunks.
	// Returning per-object fragments instead would shred the free list —
	// the opposite of what a compactor is for.
	for old := range fwd {
		c.h.AllocBits.Clear(int(old))
		mb.Clear(int(old))
	}
	c.h.ExtractFreeRange(c.from, c.to)
	cursor := c.from
	// An object spanning in from before the area covers its prefix.
	if p := c.h.AllocBits.PrevSet(int(c.from) - 1); p >= 0 {
		if end := heapsim.Addr(p) + heapsim.Addr(c.h.SizeOf(heapsim.Addr(p))); end > cursor {
			cursor = end
		}
	}
	for cursor < c.to {
		i := c.h.AllocBits.NextSet(int(cursor))
		if i < 0 || i >= int(c.to) {
			c.h.ReturnChunk(heapsim.Chunk{Addr: cursor, Words: int(c.to - cursor)})
			break
		}
		if heapsim.Addr(i) > cursor {
			c.h.ReturnChunk(heapsim.Chunk{Addr: cursor, Words: int(heapsim.Addr(i) - cursor)})
		}
		cursor = heapsim.Addr(i) + heapsim.Addr(c.h.SizeOf(heapsim.Addr(i)))
	}

	c.active = false
	c.Last.Time = w.Now().Sub(start)
	c.Total.AreaFrom, c.Total.AreaTo = c.Last.AreaFrom, c.Last.AreaTo
	c.Total.EvacuatedObjects += c.Last.EvacuatedObjects
	c.Total.EvacuatedBytes += c.Last.EvacuatedBytes
	c.Total.PinnedObjects += c.Last.PinnedObjects
	c.Total.SlotsRemembered += c.Last.SlotsRemembered
	c.Total.SlotsFixed += c.Last.SlotsFixed
	c.Total.FailedMoves += c.Last.FailedMoves
	c.Total.Time += c.Last.Time
}

package core

import (
	"testing"

	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

func testCGCConfig() CGCConfig {
	cfg := DefaultCGCConfig()
	cfg.Packets = 128
	cfg.PacketCap = 64
	cfg.BackgroundThreads = 0 // tests add them explicitly where relevant
	return cfg
}

func runCGC(t *testing.T, heapBytes int64, procs int, cfg CGCConfig, seed int64, d vtime.Duration) (*testEnv, *CGC) {
	t.Helper()
	env := newEnv(heapBytes, procs)
	col := NewCGC(env.rt, env.m, cfg)
	env.rt.SetCollector(col)
	col.SpawnBackground()
	env.run(seed, d)
	return env, col
}

func TestCGCPreservesLiveObjects(t *testing.T) {
	env, col := runCGC(t, 2<<20, 2, testCGCConfig(), 1, 2*vtime.Second)
	if len(col.Cycles) < 2 {
		t.Fatalf("only %d cycles", len(col.Cycles))
	}
	env.ch.verify(t)
}

func TestCGCRunsConcurrentCycles(t *testing.T) {
	env, col := runCGC(t, 2<<20, 2, testCGCConfig(), 2, 2*vtime.Second)
	conc := 0
	for _, cs := range col.Cycles {
		if cs.Reason == "conc-done" || cs.Reason == "alloc-failure" {
			conc++
		}
		if cs.ConcStartAt != 0 && cs.BytesTracedConc == 0 && cs.Reason == "conc-done" {
			t.Fatal("a concurrent cycle completed without tracing anything")
		}
	}
	if conc == 0 {
		t.Fatal("no cycle ever went through a concurrent phase")
	}
	env.ch.verify(t)
}

func TestCGCShorterPausesThanSTW(t *testing.T) {
	// The headline claim (Figure 1): the mostly concurrent collector cuts
	// the pause substantially versus the stop-the-world baseline on the
	// same workload.
	stwEnv := newEnv(4<<20, 4)
	stw := NewSTW(stwEnv.rt, stwEnv.m, 256, 64, 4)
	stwEnv.rt.SetCollector(stw)
	stwEnv.run(17, 3*vtime.Second)

	cfg := testCGCConfig()
	cfg.Packets = 256
	cgcEnv, cgc := runCGC(t, 4<<20, 4, cfg, 17, 3*vtime.Second)

	if len(stw.Cycles) == 0 || len(cgc.Cycles) == 0 {
		t.Fatalf("cycles: stw %d, cgc %d", len(stw.Cycles), len(cgc.Cycles))
	}
	ps, _, _ := SummarizePauses(stw.Cycles)
	pc, _, _ := SummarizePauses(cgc.Cycles)
	if float64(pc.Avg) > 0.7*float64(ps.Avg) {
		t.Fatalf("CGC avg pause %v not appreciably below STW %v", pc.Avg, ps.Avg)
	}
	stwEnv.ch.verify(t)
	cgcEnv.ch.verify(t)
}

func TestCGCWriteBarrierOnlyDuringConcurrentPhase(t *testing.T) {
	env, col := runCGC(t, 2<<20, 1, testCGCConfig(), 3, vtime.Second)
	if col.BarrierActive() {
		t.Fatal("barrier active outside a concurrent phase")
	}
	if env.rt.Cards.Stats.BarrierMarks == 0 {
		t.Fatal("write barrier never fired despite concurrent cycles")
	}
	env.ch.verify(t)
}

func TestCGCCardCleaningHappensConcurrently(t *testing.T) {
	_, col := runCGC(t, 2<<20, 2, testCGCConfig(), 4, 2*vtime.Second)
	if col.ConcCardsCleaned == 0 {
		t.Fatal("no cards cleaned during concurrent phases")
	}
	// The concurrent pass must force mutator fences (Section 5.3 step 2).
	if col.ForcedFences == 0 {
		t.Fatal("card cleaning never forced mutator fences")
	}
}

func TestCGCDefersUnpublishedObjects(t *testing.T) {
	// Concurrent tracing inevitably finds references to objects whose
	// allocation bits are still batched: the Section 5.2 protocol defers
	// them rather than tracing.
	_, col := runCGC(t, 2<<20, 2, testCGCConfig(), 5, 2*vtime.Second)
	if col.eng.deferred == 0 {
		t.Skip("no deferred objects this run (timing-dependent); other seeds cover it")
	}
	if !col.eng.pool.DeferredEmpty() && col.CurrentPhase() == PhaseIdle {
		t.Fatal("deferred packets leaked past cycle end")
	}
}

func TestCGCTracingFactorsRecorded(t *testing.T) {
	_, col := runCGC(t, 2<<20, 1, testCGCConfig(), 6, 2*vtime.Second)
	var incs int64
	for i := range col.Cycles {
		incs += col.Cycles[i].Increments
	}
	if incs == 0 {
		t.Fatal("no tracing increments recorded")
	}
}

func TestCGCMarkOnlyPauseWithLazySweep(t *testing.T) {
	cfg := testCGCConfig()
	base := cfg
	cfg.LazySweep = true
	envL, lazy := runCGC(t, 2<<20, 2, cfg, 7, 2*vtime.Second)
	envE, eager := runCGC(t, 2<<20, 2, base, 7, 2*vtime.Second)
	if len(lazy.Cycles) == 0 || len(eager.Cycles) == 0 {
		t.Fatalf("cycles: lazy %d eager %d", len(lazy.Cycles), len(eager.Cycles))
	}
	pl, _, _ := SummarizePauses(lazy.Cycles)
	pe, _, se := SummarizePauses(eager.Cycles)
	if se.Avg <= 0 {
		t.Fatal("eager cycles recorded no sweep time")
	}
	if pl.Avg >= pe.Avg {
		t.Fatalf("lazy-sweep pause %v not below eager %v", pl.Avg, pe.Avg)
	}
	envL.ch.verify(t)
	envE.ch.verify(t)
}

func TestCGCBackgroundThreadsSoakIdleTime(t *testing.T) {
	// A mutator with think time leaves the processor idle; background
	// threads must pick up tracing work there.
	cfg := testCGCConfig()
	cfg.BackgroundThreads = 2
	env := newEnv(2<<20, 1)
	col := NewCGC(env.rt, env.m, cfg)
	env.rt.SetCollector(col)
	col.SpawnBackground()
	th := env.rt.NewThread()
	ch := newChurner(env.rt, th, 8)
	env.m.AddThread("thinky", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		for i := 0; i < 16; i++ {
			ch.step(ctx)
		}
		ctx.Sleep(500 * vtime.Microsecond) // think time => idle CPU
		return machine.Continue
	})
	env.m.Run(vtime.Time(4 * vtime.Second))
	env.ch = ch
	var bg int64
	for i := range col.Cycles {
		bg += col.Cycles[i].BgBytes
	}
	if bg == 0 {
		t.Fatal("background threads traced nothing despite idle time")
	}
	ch.verify(t)
}

func TestCGCBackgroundStarvedWithoutIdleTime(t *testing.T) {
	// With the machine saturated by always-runnable mutators, the
	// low-priority background threads should do (almost) nothing.
	cfg := testCGCConfig()
	cfg.BackgroundThreads = 2
	env := newEnv(2<<20, 1)
	col := NewCGC(env.rt, env.m, cfg)
	env.rt.SetCollector(col)
	col.SpawnBackground()
	env.run(9, 2*vtime.Second)
	var bg, total int64
	for i := range col.Cycles {
		bg += col.Cycles[i].BgBytes
		total += col.Cycles[i].BytesTracedConc
	}
	if total == 0 {
		t.Fatal("no concurrent tracing at all")
	}
	if bg*10 > total {
		t.Fatalf("background traced %d of %d bytes on a saturated machine", bg, total)
	}
	env.ch.verify(t)
}

func TestCGCBackgroundOnlyAblation(t *testing.T) {
	// MutatorTracing off: cycles still complete (via background threads
	// when idle, else by allocation failure) and nothing live is lost.
	cfg := testCGCConfig()
	cfg.MutatorTracing = false
	cfg.BackgroundThreads = 2
	env, col := runCGC(t, 2<<20, 2, cfg, 10, 2*vtime.Second)
	if len(col.Cycles) == 0 {
		t.Fatal("no cycles")
	}
	env.ch.verify(t)
}

func TestCGCSecondCardPass(t *testing.T) {
	cfg := testCGCConfig()
	cfg.CardPasses = 2
	env, col := runCGC(t, 2<<20, 2, cfg, 11, 2*vtime.Second)
	if col.ConcCardsCleaned == 0 {
		t.Fatal("no concurrent card cleaning")
	}
	env.ch.verify(t)
}

func TestCGCHigherTracingRateLessFloatingGarbage(t *testing.T) {
	// Table 1's main trend: occupancy left after GC shrinks as the
	// tracing rate grows (less floating garbage).
	occupancy := func(k0 float64) float64 {
		cfg := testCGCConfig()
		cfg.Pacing.K0 = k0
		_, col := runCGC(t, 2<<20, 2, cfg, 12, 3*vtime.Second)
		if len(col.Cycles) < 2 {
			t.Fatalf("K0=%v: only %d cycles", k0, len(col.Cycles))
		}
		var sum float64
		for _, cs := range col.Cycles {
			sum += float64(cs.LiveAfter)
		}
		return sum / float64(len(col.Cycles))
	}
	low := occupancy(1)
	high := occupancy(10)
	if high >= low {
		t.Fatalf("avg occupancy after GC: K0=10 %.0f >= K0=1 %.0f; floating garbage trend inverted", high, low)
	}
}

func TestCGCStatsInternallyConsistent(t *testing.T) {
	_, col := runCGC(t, 2<<20, 2, testCGCConfig(), 13, 2*vtime.Second)
	for i, cs := range col.Cycles {
		if cs.EndAt < cs.RequestedAt || cs.StoppedAt < cs.RequestedAt || cs.MarkEndAt < cs.StoppedAt {
			t.Fatalf("cycle %d: timeline out of order %+v", i, cs)
		}
		if cs.Reason == "conc-done" && !cs.ConcCompleted {
			t.Fatalf("cycle %d: conc-done but not marked completed", i)
		}
		if cs.Reason == "conc-done" && cs.CardsLeft != 0 {
			t.Fatalf("cycle %d: completed concurrently but %d cards left", i, cs.CardsLeft)
		}
		if cs.CASAtEnd < cs.CASAtStart {
			t.Fatalf("cycle %d: CAS counters regressed", i)
		}
	}
}

func TestCGCDeterminism(t *testing.T) {
	// Two identical runs produce identical cycle logs: the whole stack —
	// machine, collector, workload — is deterministic.
	run := func() []CycleStats {
		_, col := runCGC(t, 2<<20, 2, testCGCConfig(), 99, 1500*vtime.Millisecond)
		return col.Cycles
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("cycle counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Pause != b[i].Pause || a[i].BytesTracedConc != b[i].BytesTracedConc ||
			a[i].LiveAfter != b[i].LiveAfter || a[i].Reason != b[i].Reason {
			t.Fatalf("cycle %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestCGCLazySweepUnderPressure(t *testing.T) {
	// A small heap at high residency forces allocation failures while the
	// deferred sweep is pending; the failure path must finish it rather
	// than OOM.
	cfg := testCGCConfig()
	cfg.LazySweep = true
	env, col := runCGC(t, 1<<20, 1, cfg, 31, 2*vtime.Second)
	if len(col.Cycles) < 2 {
		t.Fatalf("cycles = %d", len(col.Cycles))
	}
	for i, cs := range col.Cycles {
		if cs.SweepTime != 0 {
			t.Fatalf("cycle %d charged sweep inside the pause under lazy sweep", i)
		}
	}
	env.ch.verify(t)
}

func TestCGCManyThreadsShareTracing(t *testing.T) {
	// Several mutator threads all perform increments; the work packets
	// spread tracing across them.
	env := newEnv(4<<20, 4)
	cfg := testCGCConfig()
	cfg.Packets = 256
	col := NewCGC(env.rt, env.m, cfg)
	env.rt.SetCollector(col)
	col.SpawnBackground()
	churners := make([]*churner, 4)
	for i := range churners {
		th := env.rt.NewThread()
		ch := newChurner(env.rt, th, int64(40+i))
		ch.residencyPct = 13 // four churners share the heap
		churners[i] = ch
		env.m.AddThread("mut", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
			for k := 0; k < 16; k++ {
				ch.step(ctx)
			}
			return machine.Continue
		})
	}
	env.m.Run(vtime.Time(2 * vtime.Second))
	if len(col.Cycles) == 0 {
		t.Fatal("no cycles")
	}
	var incs int64
	for i := range col.Cycles {
		incs += col.Cycles[i].Increments
	}
	if incs == 0 {
		t.Fatal("no increments")
	}
	for _, ch := range churners {
		ch.verify(t)
	}
}

package core

import (
	"fmt"

	"mcgc/internal/heapsim"
	"mcgc/internal/mutator"
)

// VerifyHeap checks the full set of heap invariants the collectors rely
// on. It is meant for tests and debugging (it walks the entire heap); the
// collectors never need it for correctness.
//
// Invariants checked:
//
//  1. published objects do not overlap, have sane headers, and their
//     reference slots hold nil or addresses of published objects;
//  2. free-list chunks are address-ordered, non-overlapping, meet the
//     minimum size, and overlap no published object;
//  3. free byte accounting matches the free list;
//  4. every mark bit lies on a published object header (when marksClean
//     is false, i.e. between cycles mark bits are allowed to be stale on
//     dead objects — pass marksMustBeAllocated=false then);
//  5. every root refers to a published object.
//
// Allocation caches must be retired or flushed first (the runtime's
// youngest objects are legitimately unpublished mid-cache).
func VerifyHeap(rt *mutator.Runtime, marksMustBeAllocated bool) error {
	h := rt.Heap
	heapWords := h.SizeWords()

	// 1. Walk published objects.
	type span struct{ from, to int }
	var objects []span
	var walkErr error
	prevEnd := 0
	h.ForEachObject(func(a heapsim.Addr) {
		if walkErr != nil {
			return
		}
		words, refs := h.Header(a)
		if words < heapsim.HeaderWords || int(a)+words > heapWords {
			walkErr = fmt.Errorf("object %d: bad size %d", a, words)
			return
		}
		if refs > words-heapsim.HeaderWords {
			walkErr = fmt.Errorf("object %d: %d refs in %d words", a, refs, words)
			return
		}
		if int(a) < prevEnd {
			walkErr = fmt.Errorf("object %d overlaps previous object ending at %d", a, prevEnd)
			return
		}
		prevEnd = int(a) + words
		objects = append(objects, span{int(a), prevEnd})
		for i := 0; i < refs; i++ {
			v := h.RefAt(a, i)
			if v == heapsim.Nil {
				continue
			}
			if int(v) >= heapWords {
				walkErr = fmt.Errorf("object %d slot %d: address %d out of range", a, i, v)
				return
			}
			if !h.AllocBits.Test(int(v)) {
				walkErr = fmt.Errorf("object %d slot %d: dangling reference to %d", a, i, v)
				return
			}
		}
	})
	if walkErr != nil {
		return walkErr
	}

	inObject := func(w int) bool {
		// Binary search over the sorted object spans.
		lo, hi := 0, len(objects)
		for lo < hi {
			mid := (lo + hi) / 2
			if objects[mid].to <= w {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo < len(objects) && objects[lo].from <= w
	}

	// 2 + 3. Free list.
	var freeWords int64
	prev := heapsim.Chunk{}
	for i, c := range h.FreeChunks() {
		if c.Words < heapsim.MinChunkWords {
			return fmt.Errorf("free chunk %d at %d: %d words below minimum", i, c.Addr, c.Words)
		}
		if int(c.End()) > heapWords {
			return fmt.Errorf("free chunk %d at %d: extends past heap end", i, c.Addr)
		}
		if i > 0 && c.Addr < prev.End() {
			return fmt.Errorf("free chunk %d at %d overlaps or disorders previous ending %d", i, c.Addr, prev.End())
		}
		for _, o := range []int{int(c.Addr), int(c.End()) - 1} {
			if inObject(o) {
				return fmt.Errorf("free chunk at %d overlaps a published object", c.Addr)
			}
		}
		freeWords += int64(c.Words)
		prev = c
	}
	if got := h.FreeBytes(); got != freeWords*heapsim.WordBytes {
		return fmt.Errorf("free byte accounting %d != free list total %d", got, freeWords*heapsim.WordBytes)
	}

	// 4. Mark bits.
	if marksMustBeAllocated {
		for i := h.MarkBits.NextSet(0); i >= 0; i = h.MarkBits.NextSet(i + 1) {
			if !h.AllocBits.Test(i) {
				return fmt.Errorf("mark bit at %d without an allocation bit", i)
			}
		}
	}

	// 5. Roots.
	var rootErr error
	rt.ForEachRoot(func(a heapsim.Addr) {
		if rootErr != nil {
			return
		}
		if int(a) >= heapWords || !h.AllocBits.Test(int(a)) {
			rootErr = fmt.Errorf("root %d does not refer to a published object", a)
		}
	})
	return rootErr
}

package core

import (
	"mcgc/internal/machine"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workpack"
)

// Timeline tracks for GC-global activity. Simulated threads use their small
// machine IDs as track IDs; these live above telemetry.GlobalTrackBase so
// they can never collide, even in thousand-thread configurations.
const (
	TrackPauses = telemetry.GlobalTrackBase + iota
	TrackPhases
	TrackCycles
	TrackMinor
	TrackCards
	TrackPacing
	TrackPool
)

// Pause-class histogram bounds in milliseconds, shared by major and minor
// pause histograms (the paper's Figure 1 range runs from a few ms to ~1s).
var pauseBucketBoundsMs = []float64{0.1, 0.2, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}

// coreTel adapts a telemetry Registry/Timeline pair to the collectors'
// instrumentation points. A nil *coreTel is the disabled state: every method
// begins with a nil-receiver test, and the per-increment instruments are
// pre-bound so the enabled hot path performs no map lookups. Telemetry only
// observes — it never calls ctx.Charge — so enabling it cannot change any
// experiment result.
type coreTel struct {
	reg *telemetry.Registry
	tl  *telemetry.Timeline

	// Pre-bound per-increment instruments.
	gK          *telemetry.Gauge
	gCorrective *telemetry.Gauge
	gBest       *telemetry.Gauge
	cIncrements *telemetry.Counter
	cBgQuanta   *telemetry.Counter

	lastBest     float64
	bestPrimed   bool
	occCountdown int
}

// occSampleEvery is the increment interval between periodic pool-occupancy
// samples (occupancy is also sampled at every card pass and cycle boundary).
const occSampleEvery = 64

// newCoreTel returns nil — disabled telemetry — when both sinks are nil.
func newCoreTel(reg *telemetry.Registry, tl *telemetry.Timeline) *coreTel {
	if reg == nil && tl == nil {
		return nil
	}
	t := &coreTel{reg: reg, tl: tl}
	t.gK = reg.Gauge("gc.pacing.k")
	t.gCorrective = reg.Gauge("gc.pacing.corrective")
	t.gBest = reg.Gauge("gc.pacing.best")
	t.cIncrements = reg.Counter("gc.increments")
	t.cBgQuanta = reg.Counter("gc.bg_quanta")
	tl.SetThreadName(TrackPauses, "gc/pauses")
	tl.SetThreadName(TrackPhases, "gc/phases")
	tl.SetThreadName(TrackCycles, "gc/cycles")
	tl.SetThreadName(TrackCards, "gc/cards")
	return t
}

// threadTrack names the calling thread's track (idempotent) and returns its
// track ID.
func (t *coreTel) threadTrack(ctx *machine.Context) int64 {
	tid := int64(ctx.Thread().ID())
	t.tl.SetThreadName(tid, ctx.Thread().Name())
	return tid
}

// noteKickoff records the kickoff decision inputs at concurrent-phase start.
func (t *coreTel) noteKickoff(at vtime.Time, freeBytes int64, threshold float64) {
	if t == nil {
		return
	}
	t.reg.Gauge("gc.pacing.kickoff_free_bytes").Sample(at, float64(freeBytes))
	t.reg.Gauge("gc.pacing.kickoff_target_bytes").Sample(at, threshold)
	t.tl.Instant(TrackCycles, "kickoff", at,
		telemetry.Arg{Key: "free_bytes", Val: float64(freeBytes)},
		telemetry.Arg{Key: "target_bytes", Val: threshold})
}

// noteIncrement records one mutator tracing increment: the K trajectory
// (with the corrective term and the background discount Best), a span on
// the mutator's own track when the increment did real work, and a periodic
// pool-occupancy sample.
func (t *coreTel) noteIncrement(ctx *machine.Context, start vtime.Time, k, corrective, best float64, budget, done int64, pool *workpack.Pool) {
	if t == nil {
		return
	}
	at := ctx.Now()
	t.cIncrements.Add(1)
	t.gK.Sample(at, k)
	if corrective != 0 {
		t.gCorrective.Sample(at, corrective)
	}
	if !t.bestPrimed || best != t.lastBest {
		t.bestPrimed = true
		t.lastBest = best
		t.gBest.Sample(at, best)
	}
	t.tl.Counter(TrackPacing, "K", at, telemetry.Arg{Key: "k", Val: k})
	if budget > 0 {
		t.tl.Span(t.threadTrack(ctx), "increment", start, at,
			telemetry.Arg{Key: "k", Val: k},
			telemetry.Arg{Key: "budget_bytes", Val: float64(budget)},
			telemetry.Arg{Key: "done_bytes", Val: float64(done)})
	}
	if t.occCountdown--; t.occCountdown <= 0 {
		t.occCountdown = occSampleEvery
		t.samplePool(at, pool)
	}
}

// noteBgQuantum records one background-thread tracing quantum.
func (t *coreTel) noteBgQuantum(ctx *machine.Context, start vtime.Time, done int64) {
	if t == nil {
		return
	}
	t.cBgQuanta.Add(1)
	t.tl.Span(t.threadTrack(ctx), "bg-quantum", start, ctx.Now(),
		telemetry.Arg{Key: "done_bytes", Val: float64(done)})
}

// noteCardPass records a concurrent card registration pass and samples the
// pool occupancy (card passes bracket the phase transitions where the
// sub-pool distribution is most informative).
func (t *coreTel) noteCardPass(at vtime.Time, registered int, pool *workpack.Pool) {
	if t == nil {
		return
	}
	t.reg.Counter("cards.registered_passes").Add(1)
	t.reg.Gauge("cards.per_pass").Sample(at, float64(registered))
	t.tl.Instant(TrackCards, "card-pass", at,
		telemetry.Arg{Key: "registered", Val: float64(registered)})
	t.samplePool(at, pool)
}

// samplePool records the per-sub-pool packet counts as gauges and one
// stacked counter track.
func (t *coreTel) samplePool(at vtime.Time, pool *workpack.Pool) {
	if t == nil || pool == nil {
		return
	}
	occ := pool.Occupancy()
	args := make([]telemetry.Arg, 0, int(workpack.NumSubPools))
	for s := workpack.SubPool(0); s < workpack.NumSubPools; s++ {
		t.reg.Gauge("pool.occupancy."+s.String()).Sample(at, float64(occ[s]))
		args = append(args, telemetry.Arg{Key: s.String(), Val: float64(occ[s])})
	}
	t.tl.Counter(TrackPool, "pool-occupancy", at, args...)
}

// noteCycle records a completed collection cycle: pause/phase spans on the
// global tracks, the cycle-level gauges and histograms, and a pool snapshot.
// floating is the cycle's floating-garbage estimate in bytes (traced volume,
// including card retracing, in excess of the surviving live bytes — an
// upper bound).
func (t *coreTel) noteCycle(cs *CycleStats, pool *workpack.Pool) {
	if t == nil {
		return
	}
	at := cs.EndAt
	t.reg.Counter("gc.cycles").Add(1)
	t.reg.Gauge("gc.pause_ns").Sample(cs.RequestedAt, float64(cs.Pause))
	t.reg.Histogram("gc.pause_ms", pauseBucketBoundsMs...).Observe(cs.Pause.Milliseconds())
	t.reg.Histogram("gc.mark_ms", pauseBucketBoundsMs...).Observe(cs.MarkTime.Milliseconds())
	t.reg.Histogram("gc.sweep_ms", pauseBucketBoundsMs...).Observe(cs.SweepTime.Milliseconds())
	t.reg.Gauge("gc.cycle.mark_ms").Sample(at, cs.MarkTime.Milliseconds())
	t.reg.Gauge("gc.cycle.sweep_ms").Sample(at, cs.SweepTime.Milliseconds())
	if cs.CompactTime > 0 {
		t.reg.Gauge("gc.cycle.compact_ms").Sample(at, cs.CompactTime.Milliseconds())
	}
	traced := cs.BytesTracedConc + cs.BytesTracedStw
	floating := traced - cs.LiveAfter
	if floating < 0 {
		floating = 0
	}
	t.reg.Gauge("gc.cycle.floating_bytes").Sample(at, float64(floating))
	t.reg.Gauge("gc.cycle.live_after_bytes").Sample(at, float64(cs.LiveAfter))
	t.reg.Gauge("gc.cycle.conc_bytes").Sample(at, float64(cs.BytesTracedConc))
	t.reg.Gauge("gc.cycle.stw_bytes").Sample(at, float64(cs.BytesTracedStw))
	t.reg.Gauge("gc.cycle.bg_bytes").Sample(at, float64(cs.BgBytes))
	t.reg.Gauge("gc.cycle.cards_cleaned_conc").Sample(at, float64(cs.CardsCleanedConc))
	t.reg.Gauge("gc.cycle.cards_cleaned_stw").Sample(at, float64(cs.CardsCleanedStw))

	t.tl.Span(TrackPauses, "pause:"+cs.Reason, cs.RequestedAt, cs.EndAt,
		telemetry.Arg{Key: "pause_ms", Val: cs.Pause.Milliseconds()})
	markStart := cs.StoppedAt
	t.tl.Span(TrackPhases, "mark", markStart, cs.MarkEndAt)
	if cs.SweepTime > 0 {
		t.tl.Span(TrackPhases, "sweep", cs.MarkEndAt, cs.MarkEndAt.Add(cs.SweepTime))
	}
	if cs.CompactTime > 0 {
		compStart := cs.MarkEndAt.Add(cs.SweepTime)
		t.tl.Span(TrackPhases, "compact", compStart, compStart.Add(cs.CompactTime))
	}
	if cs.ConcStartAt != 0 {
		t.tl.Span(TrackCycles, "concurrent:"+cs.Reason, cs.ConcStartAt, cs.RequestedAt,
			telemetry.Arg{Key: "conc_bytes", Val: float64(cs.BytesTracedConc)},
			telemetry.Arg{Key: "increments", Val: float64(cs.Increments)})
	}
	t.samplePool(at, pool)
}

// noteMinor records one generational minor collection.
func (t *coreTel) noteMinor(ms *MinorStats, endAt vtime.Time) {
	if t == nil {
		return
	}
	t.reg.Counter("gc.minor.count").Add(1)
	t.reg.Gauge("gc.minor.pause_ns").Sample(ms.RequestedAt, float64(ms.Pause))
	t.reg.Histogram("gc.minor.pause_ms", pauseBucketBoundsMs...).Observe(ms.Pause.Milliseconds())
	t.reg.Gauge("gc.minor.promoted_bytes").Sample(endAt, float64(ms.PromotedBytes))
	t.tl.SetThreadName(TrackMinor, "gc/minor")
	t.tl.Span(TrackMinor, "minor", ms.RequestedAt, endAt,
		telemetry.Arg{Key: "promoted_bytes", Val: float64(ms.PromotedBytes)},
		telemetry.Arg{Key: "cards_scanned", Val: float64(ms.CardsScanned)})
}

// finishRun copies the run's cumulative pool, card and fence counters into
// the registry. Called once after the simulation stops (the atomics are
// cheap to read but there is no need to mirror them continuously).
func (t *coreTel) finishRun(pool *workpack.Pool, eng *engine) {
	if t == nil {
		return
	}
	ps := &pool.Stats
	t.reg.Counter("pool.cas_attempts").Set(ps.CASAttempts.Load())
	t.reg.Counter("pool.cas_retries").Set(ps.CASRetries.Load())
	t.reg.Counter("pool.gets").Set(ps.Gets.Load())
	t.reg.Counter("pool.puts").Set(ps.Puts.Load())
	t.reg.Counter("pool.return_fences").Set(ps.ReturnFences.Load())
	t.reg.Counter("pool.max_packets_in_use").Set(ps.MaxInUse.Load())
	t.reg.Counter("pool.max_slots_in_use").Set(ps.MaxSlotsInUse.Load())
	cards := &eng.rt.Cards.Stats
	t.reg.Counter("cards.dirtied").Set(cards.BarrierMarks)
	t.reg.Counter("cards.registered").Set(cards.CardsRegistered)
	t.reg.Counter("cards.cleaned").Set(cards.CardsCleaned)
	t.reg.Counter("gc.mark_fences").Set(eng.markFences)
	t.reg.Counter("gc.deferred_objects").Set(eng.deferred)
	t.reg.Counter("gc.overflows").Set(eng.overflows)
	t.reg.Counter("gc.bytes_traced").Set(eng.bytesTraced)
	t.reg.Counter("gc.objects_traced").Set(eng.objsTraced)
}

package live

import (
	"fmt"
	"sync/atomic"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/pacing"
	"mcgc/internal/vtime"
)

// engineStats are the counters shared by mutator, tracer and driver
// goroutines; everything here is atomic. Driver-only measurements (pauses,
// per-cycle oracle results) go straight into the Report.
type engineStats struct {
	marks          atomic.Int64 // objects claimed grey
	scans          atomic.Int64 // objects scanned from the pool
	rescans        atomic.Int64 // objects rescanned by card cleaning
	deferred       atomic.Int64 // unsafe objects pushed to the deferred pool
	deferredDrains atomic.Int64 // DrainDeferred invocations that found work
	deferOverflows atomic.Int64 // deferred pushes degraded to card dirtying
	overflows      atomic.Int64 // pushes degraded to mark+dirty (Section 4.3)
	cardPasses     atomic.Int64 // concurrent cleaning passes

	markNs   atomic.Int64 // concurrent mark phase wall time
	sweepNs  atomic.Int64 // concurrent sweep wall time
	activeNs atomic.Int64 // full markingActive window (mark + STW final + oracle)

	objectsAllocated atomic.Int64
	objectsFreed     atomic.Int64
	allocFailed      atomic.Int64
	allocFences      atomic.Int64 // one per published batch (Section 5.2)
	forcedFences     atomic.Int64 // one per mutator per handshake (5.3)
	mutatorOps       atomic.Int64

	pressureKicks atomic.Int64 // idle waits cut short by allocation pressure
	rescanRedirty atomic.Int64 // card rescans re-dirtied for unpublished objects

	// Degradation-ladder counters (degrade.go): rung-1 blocked-allocation
	// waits (and how many expired unfed), the total time spent blocked, and
	// rung-2 emergency STW collections.
	backpressureWaits    atomic.Int64
	backpressureTimeouts atomic.Int64
	backpressureNs       atomic.Int64
	emergencyCycles      atomic.Int64

	// Per-party tracing attribution: each successful scanObject charges its
	// slot words to exactly one of these, so their sum reconciles with
	// scans times the per-object slot count.
	traceMutatorWords   atomic.Int64 // scans paid as mutator allocation tax
	traceBgWords        atomic.Int64 // scans by throttled background tracers
	traceDedicatedWords atomic.Int64 // scans by dedicated tracers

	kickoffs        atomic.Int64 // cycles started by the kickoff formula
	pacedIncrements atomic.Int64 // allocation increments that consulted the pacer
}

// Report is what one Engine.Run hands back.
type Report struct {
	Cycles     int
	MutatorOps int64

	ObjectsAllocated int64
	ObjectsFreed     int64
	AllocFailed      int64

	Marks    int64
	Scans    int64
	Rescans  int64
	Deferred int64

	DeferredDrains int64
	Overflows      int64
	DeferOverflows int64
	CardPasses     int64

	CardsRegistered int64
	CardsCleaned    int64
	BarrierMarks    int64

	AllocFences  int64
	ForcedFences int64

	PoolCASRetries     int64
	FreeListRetries    int64
	PoolMaxInUse       int64
	PoolReturnFences   int64
	TracerSwapFallback int64

	// Sharding-tier counters: the local packet caches (hits, steals from
	// sibling caches, batch spills to the global pool), the free-list
	// shards (batch pops served by a non-home shard) and the write-barrier
	// card buffers (non-empty flushes).
	PoolLocalHits     int64
	PoolSteals        int64
	PoolSpills        int64
	PoolRefills       int64
	ArenaShardSteals  int64
	CardBufferFlushes int64

	LiveAtEnd     int
	FloatingTotal int64
	FloatingMax   int64
	LostObjects   int64
	// Violations holds the first few oracle findings verbatim (empty on a
	// correct run).
	Violations []string

	STWCount   int
	STWTotal   time.Duration
	STWMax     time.Duration
	MarkTotal  time.Duration // concurrent mark phases
	SweepTotal time.Duration
	// TracerActiveTotal is the full markingActive window — concurrent mark
	// plus STW final and the oracle — during which tracers may accrue idle
	// time. It is the denominator of the -balance idle fraction.
	TracerActiveTotal time.Duration

	// PressureKicks counts idle periods cut short because a mutator hit
	// allocation failure and signalled for an early collection.
	PressureKicks int64

	// Degradation-ladder results. BackpressureWaits counts rung-1 blocked
	// allocations (BackpressureTimeouts of which expired without memory);
	// BackpressureTotal is the summed stall time. EmergencyCycles counts
	// rung-2 synchronous full STW collections. TimeOK/TimeBackpressure/
	// TimeEmergency is the run's wall time split by ladder state.
	BackpressureWaits    int64
	BackpressureTimeouts int64
	BackpressureTotal    time.Duration
	EmergencyCycles      int64
	TimeOK               time.Duration
	TimeBackpressure     time.Duration
	TimeEmergency        time.Duration
	// DirectDirties is the card table's count of degradation-path dirtying
	// (DirtyCardAtomic); it must reconcile with Overflows + DeferOverflows +
	// RescanRedirties, the engine-side counts of the same three callers.
	DirectDirties   int64
	RescanRedirties int64

	// Per-party tracing attribution (the counters behind trace.mutator_words
	// / trace.bg_words / trace.dedicated_words): TraceMutatorWords +
	// TraceBgWords + TraceDedicatedWords == Scans * RefsPerObject.
	TraceMutatorWords   int64
	TraceBgWords        int64
	TraceDedicatedWords int64

	// Pacing (Section 3) results; meaningful when PacingEnabled.
	// PacingPolicy names the policy in charge ("formula", "slo", "none").
	PacingEnabled   bool
	PacingPolicy    string
	Kickoffs        int64   // cycles started by free < (L+M)/K0
	PacedIncrements int64   // allocation increments that consulted the pacer
	KFirst, KLast   float64 // progress-formula rate at the first/last increment
	KMin, KMax      float64 // rate range over the run
	CorrectiveMax   float64 // largest (K-K0)*C catch-up addition applied

	// SLO-controller results; meaningful when PacingPolicy is "slo".
	// SLOWindows counts latency windows the policy observed (SLOOverTarget
	// of them above the target); SLOBgFactor is the background-throttle
	// factor in effect at the end of the run.
	SLOWindows    int64
	SLOOverTarget int64
	SLOBgFactor   float64

	// Wedged reports that the termination watchdog aborted the run;
	// WedgePhase and WedgeDiagnosis say where and what the state looked like.
	Wedged         bool
	WedgePhase     string
	WedgeDiagnosis string

	// Faults holds the per-site fault-injection counters (nil when the run
	// had no chaos plan).
	Faults []faultinject.PointStat

	// Workers holds each tracing party's full-run work-flow ledger (nil when
	// accounting is off — no registry, timeline or fault plan); TermLatencyNs
	// holds one termination-detection latency sample per cycle where some
	// tracer drained early.
	Workers       []WorkerAccount
	TermLatencyNs []int64
}

func (e *Engine) noteSTW(start, end int64) {
	d := time.Duration(end - start)
	e.report.STWCount++
	e.report.STWTotal += d
	if d > e.report.STWMax {
		e.report.STWMax = d
	}
	// Same gauge name as the simulator backend, so gcstats -metrics computes
	// pause percentiles and MMU for live runs unchanged.
	e.cfg.Reg.Gauge("gc.pause_ns").Sample(vtime.Time(start), float64(end-start))
}

func (e *Engine) noteCycle(res OracleResult, freed int, at int64) {
	e.report.Cycles++
	e.report.LiveAtEnd = res.Live
	e.report.FloatingTotal += int64(res.Floating)
	if int64(res.Floating) > e.report.FloatingMax {
		e.report.FloatingMax = int64(res.Floating)
	}
	e.report.LostObjects += int64(res.Lost)
	e.sampleCycle(res, freed, at)
}

func (e *Engine) finishReport() {
	r := &e.report
	s := &e.stats
	r.MutatorOps = s.mutatorOps.Load()
	r.ObjectsAllocated = s.objectsAllocated.Load()
	r.ObjectsFreed = s.objectsFreed.Load()
	r.AllocFailed = s.allocFailed.Load()
	r.Marks = s.marks.Load()
	r.Scans = s.scans.Load()
	r.Rescans = s.rescans.Load()
	r.Deferred = s.deferred.Load()
	r.DeferredDrains = s.deferredDrains.Load()
	r.Overflows = s.overflows.Load()
	r.DeferOverflows = s.deferOverflows.Load()
	r.CardPasses = s.cardPasses.Load()
	r.AllocFences = s.allocFences.Load()
	r.ForcedFences = s.forcedFences.Load()
	r.MarkTotal = time.Duration(s.markNs.Load())
	r.SweepTotal = time.Duration(s.sweepNs.Load())
	r.TracerActiveTotal = time.Duration(s.activeNs.Load())

	r.PressureKicks = s.pressureKicks.Load()
	r.RescanRedirties = s.rescanRedirty.Load()

	r.BackpressureWaits = s.backpressureWaits.Load()
	r.BackpressureTimeouts = s.backpressureTimeouts.Load()
	r.BackpressureTotal = time.Duration(s.backpressureNs.Load())
	r.EmergencyCycles = s.emergencyCycles.Load()
	inState, _ := e.deg.snapshot(e.now())
	r.TimeOK = time.Duration(inState[DegOK])
	r.TimeBackpressure = time.Duration(inState[DegBackpressure])
	r.TimeEmergency = time.Duration(inState[DegEmergency])

	r.TraceMutatorWords = s.traceMutatorWords.Load()
	r.TraceBgWords = s.traceBgWords.Load()
	r.TraceDedicatedWords = s.traceDedicatedWords.Load()
	if e.pacer != nil {
		r.PacingEnabled = true
		r.PacingPolicy = pacing.Name(e.pacer.policy())
		r.Kickoffs = s.kickoffs.Load()
		sum := e.pacer.summary()
		r.PacedIncrements = sum.increments
		r.KFirst, r.KLast = sum.kFirst, sum.kLast
		r.KMin, r.KMax = sum.kMin, sum.kMax
		r.CorrectiveMax = sum.correctiveMax
		if st, ok := e.pacer.sloStats(); ok {
			r.SLOWindows = st.Windows
			r.SLOOverTarget = st.OverTarget
			r.SLOBgFactor = st.BgFactor
		}
	} else {
		r.PacingPolicy = "none"
	}

	cs := &e.arena.Cards.AtomicStats
	r.CardsRegistered = cs.CardsRegistered.Load()
	r.CardsCleaned = cs.CardsCleaned.Load()
	r.BarrierMarks = cs.BarrierMarks.Load()
	r.DirectDirties = cs.DirectDirties.Load()

	r.Faults = e.cfg.Faults.Snapshot()

	ps := &e.pool.Stats
	r.PoolCASRetries = ps.CASRetries.Load()
	r.PoolMaxInUse = ps.MaxInUse.Load()
	r.PoolReturnFences = ps.ReturnFences.Load()
	r.FreeListRetries = e.arena.FreeListRetries()

	ls := e.pool.LocalStatsSum()
	r.PoolLocalHits = ls.Hits
	r.PoolSteals = ls.Steals
	r.PoolSpills = ls.Spills
	r.PoolRefills = ls.Refills
	r.ArenaShardSteals = e.arena.ShardSteals()
	r.CardBufferFlushes = cs.BufferFlushes.Load()

	e.finishAccounting()
	e.flushTelemetry()
}

// String formats the report the way gcstress prints it.
func (r Report) String() string {
	oracle := "oracle: every cycle's live set ⊆ concurrent mark set"
	if r.LostObjects > 0 {
		oracle = fmt.Sprintf("ORACLE FAILED: %d live objects lost", r.LostObjects)
	}
	out := fmt.Sprintf(
		"cycles %d  mutator ops %d  alloc %d  freed %d  (alloc failed %d, pressure kicks %d)\n"+
			"marks %d  scans %d  rescans %d  deferred %d\n"+
			"trace words: mutator %d  bg %d  dedicated %d\n"+
			"overflows %d (defer %d, rescan redirty %d)  card passes %d  cards reg/cleaned %d/%d  barrier marks %d\n"+
			"fences: alloc %d  forced %d  pool-return %d\n"+
			"contention: pool CAS retries %d  free-list retries %d  pool max in use %d\n"+
			"floating garbage: total %d  max/cycle %d  live at end %d\n"+
			"pauses: %d  total %v  max %v  (concurrent: mark %v  sweep %v)\n%s",
		r.Cycles, r.MutatorOps, r.ObjectsAllocated, r.ObjectsFreed, r.AllocFailed, r.PressureKicks,
		r.Marks, r.Scans, r.Rescans, r.Deferred,
		r.TraceMutatorWords, r.TraceBgWords, r.TraceDedicatedWords,
		r.Overflows, r.DeferOverflows, r.RescanRedirties, r.CardPasses, r.CardsRegistered, r.CardsCleaned, r.BarrierMarks,
		r.AllocFences, r.ForcedFences, r.PoolReturnFences,
		r.PoolCASRetries, r.FreeListRetries, r.PoolMaxInUse,
		r.FloatingTotal, r.FloatingMax, r.LiveAtEnd,
		r.STWCount, r.STWTotal.Round(time.Microsecond), r.STWMax.Round(time.Microsecond),
		r.MarkTotal.Round(time.Microsecond), r.SweepTotal.Round(time.Microsecond),
		oracle)
	if r.PoolLocalHits+r.PoolSteals+r.PoolSpills+r.ArenaShardSteals+r.CardBufferFlushes > 0 {
		out += fmt.Sprintf("\nsharding: local hits %d  steals %d  spills %d (refills %d)  shard steals %d  card flushes %d",
			r.PoolLocalHits, r.PoolSteals, r.PoolSpills, r.PoolRefills, r.ArenaShardSteals, r.CardBufferFlushes)
	}
	if r.PacingEnabled {
		out += fmt.Sprintf("\npacing[%s]: kickoffs %d  increments %d  K first %.2f  last %.2f  range [%.2f, %.2f]  corrective max %.2f",
			r.PacingPolicy, r.Kickoffs, r.PacedIncrements, r.KFirst, r.KLast, r.KMin, r.KMax, r.CorrectiveMax)
	}
	if r.PacingPolicy == "slo" {
		out += fmt.Sprintf("\nslo: windows %d  over target %d  bg factor %.2f",
			r.SLOWindows, r.SLOOverTarget, r.SLOBgFactor)
	}
	if r.BackpressureWaits+r.EmergencyCycles > 0 {
		out += fmt.Sprintf("\nladder: backpressure waits %d (timeouts %d, stalled %v)  emergency cycles %d  time bp/emerg %v/%v",
			r.BackpressureWaits, r.BackpressureTimeouts, r.BackpressureTotal.Round(time.Microsecond),
			r.EmergencyCycles, r.TimeBackpressure.Round(time.Microsecond), r.TimeEmergency.Round(time.Microsecond))
	}
	if bal := r.balanceSummary(); bal != "" {
		out += "\n" + bal
	}
	if len(r.Faults) > 0 {
		out += "\nfaults:"
		for _, p := range r.Faults {
			out += fmt.Sprintf("  %s %d/%d", p.Name, p.Fires, p.Hits)
			if p.Jitters > 0 {
				out += fmt.Sprintf(" (jitter %d)", p.Jitters)
			}
		}
	}
	if r.Wedged {
		out += "\n" + r.WedgeDiagnosis
	}
	return out
}

package live

import (
	"sync"
	"sync/atomic"
	"time"

	"mcgc/internal/workpack"
)

// The graceful-degradation ladder: what the engine does when concurrency
// loses — when allocation outruns tracing and the free list runs dry.
//
// Rung 1, allocation backpressure: a failed allocation-cache refill becomes
// a bounded blocking wait with per-mutator exponential backoff. The waiting
// mutator keeps honoring safepoints and fence handshakes (so the collector
// it is waiting for can actually run), signals memory pressure so the driver
// kicks a cycle, and — with pacing on — repays a pressure-scaled tracing tax
// each round, so the debtors that exhausted the heap do the catch-up tracing.
//
// Rung 2, emergency collection: when backpressure waits start timing out, or
// pressure-kicked cycles repeatedly fail to free even one allocation batch,
// the driver escalates to a synchronous full STW collection — park every
// mutator, trace to completion inside the pause, sweep — with the oracle
// still armed. This is the paper's fallback the concurrent design exists to
// avoid; the ladder makes it a bounded last resort instead of a wedge.
//
// Rung 3 lives in internal/server: admission control reads Headroom and
// DegradationState and sheds allocating requests before the heap is driven
// into rungs 1 and 2, and evicts oldest entries on true exhaustion.

// DegState is the engine's current rung on the degradation ladder.
type DegState int32

const (
	// DegOK: allocation is being satisfied from the free list.
	DegOK DegState = iota
	// DegBackpressure: at least one mutator is blocked waiting for free
	// memory (rung 1).
	DegBackpressure
	// DegEmergency: the driver is running a synchronous full STW collection
	// (rung 2).
	DegEmergency
	numDegStates = 3
)

func (s DegState) String() string {
	switch s {
	case DegOK:
		return "ok"
	case DegBackpressure:
		return "backpressure"
	case DegEmergency:
		return "emergency"
	}
	return "invalid"
}

// LadderConfig tunes the degradation ladder. The zero value (Enabled false)
// preserves the historical fail-fast behavior: a failed refill returns Nil
// immediately and the caller retries or degrades on its own.
type LadderConfig struct {
	// Enabled turns rungs 1 and 2 on.
	Enabled bool
	// BackpressureWait is the deadline for one blocked allocation: a refill
	// that cannot be satisfied within it fails (and counts as a timeout,
	// which arms the emergency escalation). Default 20ms.
	BackpressureWait time.Duration
	// BackoffBase/BackoffCap bound the per-mutator exponential backoff
	// between refill retries. Defaults 20µs and 1ms.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// EmergencyMinFree is the per-cycle freed-object floor: a pressured
	// cycle that frees fewer objects than this counts as starved. Default
	// is the allocation batch size — "the cycle couldn't free a batch".
	EmergencyMinFree int
	// EmergencyAfter is how many consecutive starved pressured cycles (or
	// cycles with backpressure timeouts) escalate to an emergency STW
	// collection. Default 2.
	EmergencyAfter int
}

func (lc LadderConfig) withDefaults(allocBatch int) LadderConfig {
	if lc.BackpressureWait == 0 {
		lc.BackpressureWait = 20 * time.Millisecond
	}
	if lc.BackoffBase == 0 {
		lc.BackoffBase = 20 * time.Microsecond
	}
	if lc.BackoffCap == 0 {
		lc.BackoffCap = time.Millisecond
	}
	if lc.EmergencyMinFree == 0 {
		lc.EmergencyMinFree = allocBatch
	}
	if lc.EmergencyAfter == 0 {
		lc.EmergencyAfter = 2
	}
	return lc
}

// degStallCap bounds the buffered backpressure stall samples for arbitrarily
// long runs (the flush histograms them; the cap only loses tail samples).
const degStallCap = 1 << 15

// degTracker owns the ladder's observable state: the current rung, the
// time-in-state accounting, the blocked-waiter count and the buffered
// backpressure stall samples. Transitions happen on backpressure entry/exit
// and around emergency collections — rare enough that one small mutex is
// fine; the read side (DegradationState, polled by server admission on every
// allocating request) is a single atomic load.
type degTracker struct {
	stateAtomic atomic.Int32 // mirror of state for lock-free reads

	mu          sync.Mutex
	state       DegState
	since       int64 // engine-now of the last transition
	inState     [numDegStates]int64
	waiters     int
	emergency   bool
	stalls      []int64         // completed backpressure waits, ns
	transitions []degTransition // state changes, for the telemetry gauge
}

// degTransition is one recorded ladder-state change.
type degTransition struct {
	at    int64
	state DegState
}

// recompute folds elapsed time into the current state's bucket and applies
// the transition implied by (emergency, waiters). Caller holds mu.
func (d *degTracker) recompute(now int64) {
	next := DegOK
	switch {
	case d.emergency:
		next = DegEmergency
	case d.waiters > 0:
		next = DegBackpressure
	}
	if next == d.state {
		return
	}
	if now > d.since {
		d.inState[d.state] += now - d.since
	}
	d.state = next
	d.since = now
	d.stateAtomic.Store(int32(next))
	if len(d.transitions) < degStallCap {
		d.transitions = append(d.transitions, degTransition{at: now, state: next})
	}
}

// enterWait registers one mutator blocking on backpressure.
func (d *degTracker) enterWait(now int64) {
	d.mu.Lock()
	d.waiters++
	d.recompute(now)
	d.mu.Unlock()
}

// exitWait unregisters a blocked mutator and buffers its stall length.
func (d *degTracker) exitWait(now, stallNs int64) {
	d.mu.Lock()
	d.waiters--
	if len(d.stalls) < degStallCap {
		d.stalls = append(d.stalls, stallNs)
	}
	d.recompute(now)
	d.mu.Unlock()
}

// setEmergency flips the emergency rung on or off (driver only).
func (d *degTracker) setEmergency(now int64, on bool) {
	d.mu.Lock()
	d.emergency = on
	d.recompute(now)
	d.mu.Unlock()
}

// snapshot returns the time-in-state totals with the open interval folded in,
// plus the buffered stall samples. Driver only, at the end of the run.
func (d *degTracker) snapshot(now int64) (inState [numDegStates]int64, stalls []int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	inState = d.inState
	if now > d.since {
		inState[d.state] += now - d.since
	}
	return inState, append([]int64(nil), d.stalls...)
}

// transitionLog returns the recorded state changes. Driver only.
func (d *degTracker) transitionLog() []degTransition {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]degTransition(nil), d.transitions...)
}

// activeWaiters returns the number of mutators currently blocked on
// backpressure.
func (d *degTracker) activeWaiters() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.waiters
}

// BackpressureStallBounds returns the gc.backpressure_stall_ns histogram
// bounds: geometric from 1µs to beyond 250ms with ratio 1.25, the same shape
// as the server request-latency bounds so the two distributions line up in
// gcstats output.
func BackpressureStallBounds() []float64 {
	var bounds []float64
	for b := 1000.0; b < 2.5e8; b *= 1.25 {
		bounds = append(bounds, b)
	}
	return bounds
}

// Headroom returns the free fraction of the heap: free-list length over
// arena size, in [0,1]. Safe from any goroutine at any time — it is the
// signal server admission control polls per allocating request.
func (e *Engine) Headroom() float64 {
	return float64(e.arena.FreeLen()) / float64(e.arena.numObjects)
}

// DegradationState returns the engine's current rung on the degradation
// ladder. One atomic load; safe from any goroutine.
func (e *Engine) DegradationState() DegState {
	return DegState(e.deg.stateAtomic.Load())
}

// backpressureRefill is rung 1: the blocked-allocation wait a failed refill
// becomes when the ladder is enabled. The mutator publishes its part-filled
// batch (on a full heap it may never fill), signals pressure so the driver
// kicks a cycle, then loops: service safepoints and fences — the collection
// it is waiting for includes STW phases that need this very goroutine to
// park — pay the pressure-scaled tracing tax, retry the batch pop, and back
// off exponentially. It reports whether m.cache is now non-empty; false
// means the deadline expired with the heap still exhausted, which the driver
// reads as rung 1 having failed (arming rung 2).
func (m *mutator) backpressureRefill() bool {
	e := m.e
	lad := &e.cfg.Ladder
	m.publish()
	e.memPressure.Store(true)
	start := time.Now()
	e.deg.enterWait(e.now())
	e.stats.backpressureWaits.Add(1)
	ok := false
	deadline := start.Add(lad.BackpressureWait)
	nap := lad.BackoffBase
	for {
		m.maybePark()
		m.maybeAck()
		if e.shutdown.Load() {
			break
		}
		if e.pacer != nil && e.markingActive.Load() {
			e.payPressureTax(m)
		}
		m.cache = e.arena.PopFreeBatch(m.home, e.cfg.AllocBatch, m.cache[:0])
		if len(m.cache) > 0 {
			ok = true
			break
		}
		e.memPressure.Store(true)
		if time.Now().After(deadline) {
			e.stats.backpressureTimeouts.Add(1)
			break
		}
		time.Sleep(nap)
		if nap *= 2; nap > lad.BackoffCap {
			nap = lad.BackoffCap
		}
	}
	stall := time.Since(start).Nanoseconds()
	e.stats.backpressureNs.Add(stall)
	e.deg.exitWait(e.now(), stall)
	return ok
}

// payPressureTax is the backpressure variant of payAllocTax: a blocked
// mutator drains work packets against a pressure-scaled budget, charging the
// work to the same mutator-attribution counters, so waiting for the
// collector *is* helping the collector. Not feeding the B window is
// deliberate — nothing was allocated.
func (e *Engine) payPressureTax(m *mutator) {
	b := e.pacer.pressureBudget(int64(e.cfg.AllocBatch))
	if b.Words <= 0 {
		return
	}
	var tr *workpack.Tracer
	if m.local != nil {
		tr = workpack.NewLocalTracer(m.local)
	} else {
		tr = workpack.NewTracer(e.pool)
	}
	led := e.mutatorLedger(m.id)
	tr.SetLedger(led)
	var done int64
	for done < b.Words {
		a, ok := tr.Pop()
		if !ok {
			break
		}
		if e.scanObject(a, tr) {
			led.NoteTraced(int64(e.arena.refsPer))
			e.stats.traceMutatorWords.Add(int64(e.arena.refsPer))
			done++
		}
	}
	tr.Release()
	e.pacer.endIncrement(done)
}

// amplifyAlloc is the live.overload fault's payload: burn one extra
// allocation batch as instant garbage. The objects ride the normal pending
// batch — published with real allocation bits, never installed anywhere — so
// every invariant (Section 5.2 publication, free-list conservation, the
// oracle) sees ordinary allocation at roughly twice the real workload's rate.
func (m *mutator) amplifyAlloc() {
	extra := m.e.arena.PopFreeBatch(m.home, m.e.cfg.AllocBatch, nil)
	if len(extra) < m.e.cfg.AllocBatch {
		// A short batch means the amplified rate has scraped the bottom of
		// the free list: signal pressure even on partial success, so the
		// driver sees the overload before allocations start failing outright.
		m.e.memPressure.Store(true)
		if len(extra) == 0 {
			return
		}
	}
	m.pending = append(m.pending, extra...)
	if len(m.pending) >= m.e.cfg.AllocBatch {
		m.publish()
	}
}

// escalationCheck is the driver's rung-2 trigger, evaluated after every
// concurrent cycle: escalate when rung 1 visibly failed (a backpressure wait
// timed out since the last check), or when pressured cycles keep completing
// without freeing even one allocation batch. Consecutive-failure counting
// lives in driver-only fields; one productive cycle resets it.
func (e *Engine) escalationCheck(freed int) bool {
	if !e.cfg.Ladder.Enabled {
		return false
	}
	timeouts := e.stats.backpressureTimeouts.Load()
	timedOut := timeouts > e.lastBPTimeouts
	e.lastBPTimeouts = timeouts
	pressured := timedOut || e.memPressure.Load() || e.deg.activeWaiters() > 0
	if pressured && (timedOut || freed < e.cfg.Ladder.EmergencyMinFree) {
		e.starvedCycles++
	} else {
		e.starvedCycles = 0
	}
	if e.starvedCycles >= e.cfg.Ladder.EmergencyAfter {
		e.starvedCycles = 0
		return true
	}
	return false
}

// runEmergencyCycle is rung 2: a synchronous full collection inside one STW
// pause. The world parks via the ordinary safepoint machinery (mutators
// blocked in backpressure park too — their wait loop polls), the mark runs
// to its fixpoint with closeMark (tracers keep running during pauses, so the
// pause is still parallel), and the sweep happens before the world resumes —
// the whole point is that free memory exists the moment mutators wake. The
// STW oracle runs inside the pause like any cycle's: the emergency path is
// held to exactly the same correctness bar. Reports false when even the
// stopped-world fixpoint wedged (watchdog abort).
func (e *Engine) runEmergencyCycle() bool {
	drv := workpack.NewTracer(e.pool)
	e.deg.setEmergency(e.now(), true)
	e.stopTheWorld()
	pauseStart := e.now()
	e.fi.emergencyStall.Stall()

	// Fresh snapshot, exactly like STW init — but nothing resumes until the
	// heap has free memory again.
	e.arena.Mark.ClearAll()
	e.arena.Cards.RegisterAndClearAtomic(e.cardBuf[:0])
	e.cycleScanBase.Store(e.stats.scans.Load())
	e.firstDoneNs.Store(0)
	activeStart := e.now()
	e.cycleSeq.Add(1)
	e.markingActive.Store(true)
	e.scanRoots(drv)
	drv.Release()
	if !e.closeMark(drv) {
		e.deg.setEmergency(e.now(), false)
		e.abortWedged(drv, "emergency collection")
		return false
	}
	res := e.runOracle()
	toFree := e.collectGarbage()
	e.checkFreeConservation(len(toFree))
	e.markingActive.Store(false)
	e.stats.activeNs.Add(e.now() - activeStart)
	for _, obj := range toFree {
		e.arena.ZeroSlots(obj)
	}
	e.arena.PushFreeAll(toFree)
	e.stats.objectsFreed.Add(int64(len(toFree)))
	if len(toFree) > 0 {
		// The pressure that forced the escalation is answered; don't let a
		// stale flag immediately kick the next cycle.
		e.memPressure.Store(false)
	}
	pauseEnd := e.now()
	e.resumeWorld()
	e.deg.setEmergency(e.now(), false)
	e.stats.emergencyCycles.Add(1)
	e.noteSTW(pauseStart, pauseEnd)
	e.span("stw.emergency", pauseStart, pauseEnd)
	e.noteCycle(res, len(toFree), pauseEnd)
	return true
}

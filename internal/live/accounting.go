package live

import (
	"fmt"
	"sort"

	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workpack"
)

// Per-tracer work-flow accounting: every worker that traces — dedicated
// tracers, throttled background tracers, and (with pacing) mutators paying
// their allocation tax — carries a workpack.Ledger. Workers write their own
// ledgers with uncontended atomics; the driver snapshots them between
// phases, emits per-cycle tracer.cycle spans on per-worker tracks, and folds
// the end-of-run totals into the Report and the trace.worker.* counters that
// gcstats -balance reduces to the Section 6.3 quantities (skew, idle
// fraction, steal-hit rate, termination latency).
//
// Accounting arms only when the run carries a telemetry registry, a
// timeline, or a fault plan; a bare Engine keeps the nil-ledger fast path —
// one pointer test per packet operation, zero allocation, zero timestamps.

// workerTrackBase is the first timeline track of the per-worker span lanes
// (driver and heap lanes sit at GlobalTrackBase and +1).
const workerTrackBase = telemetry.GlobalTrackBase + 16

// workerAccount pairs one worker's ledger with its identity: a stable key
// ("d0" dedicated, "b2" background, "m1" mutator tax) used in metric names,
// and a dedicated timeline track.
type workerAccount struct {
	key   string
	kind  string // "dedicated", "bg" or "tax"
	led   *workpack.Ledger
	prev  workpack.LedgerSnap // last per-cycle flush (driver-only)
	track int64
}

// trackName renders the Chrome-trace thread name for this worker's lane.
func (a *workerAccount) trackName() string {
	switch a.kind {
	case "bg":
		return fmt.Sprintf("tracer %s (bg)", a.key)
	case "tax":
		return fmt.Sprintf("tracer %s (tax)", a.key)
	default:
		return fmt.Sprintf("tracer %s", a.key)
	}
}

// setupAccounting builds the worker accounts. Index layout mirrors the
// goroutine ids: [0,Tracers) dedicated, [Tracers,Tracers+BgTracers)
// background, then one account per mutator when pacing gives mutators
// tracing work.
func (e *Engine) setupAccounting() {
	cfg := e.cfg
	if cfg.Reg == nil && cfg.TL == nil && cfg.Faults == nil {
		return
	}
	muts := cfg.Mutators + cfg.ExtMutators // external mutators pay tax too
	n := cfg.Tracers + cfg.BgTracers
	if cfg.Pacing != nil {
		n += muts
	}
	e.accounts = make([]*workerAccount, n)
	for i := 0; i < cfg.Tracers; i++ {
		e.accounts[i] = &workerAccount{key: fmt.Sprintf("d%d", i), kind: "dedicated"}
	}
	for i := 0; i < cfg.BgTracers; i++ {
		id := cfg.Tracers + i
		e.accounts[id] = &workerAccount{key: fmt.Sprintf("b%d", id), kind: "bg"}
	}
	if cfg.Pacing != nil {
		for i := 0; i < muts; i++ {
			id := cfg.Tracers + cfg.BgTracers + i
			e.accounts[id] = &workerAccount{key: fmt.Sprintf("m%d", i), kind: "tax"}
		}
	}
	for i, a := range e.accounts {
		a.led = &workpack.Ledger{}
		a.track = workerTrackBase + int64(i)
	}
}

// tracerLedger returns the ledger for tracing goroutine id (dedicated or
// background), or nil when accounting is off.
func (e *Engine) tracerLedger(id int) *workpack.Ledger {
	if e.accounts == nil || id >= len(e.accounts) {
		return nil
	}
	return e.accounts[id].led
}

// mutatorLedger returns the allocation-tax ledger for mutator mid, or nil
// when accounting is off or mutators do not trace (no pacing).
func (e *Engine) mutatorLedger(mid int) *workpack.Ledger {
	if e.accounts == nil || e.cfg.Pacing == nil {
		return nil
	}
	return e.accounts[e.cfg.Tracers+e.cfg.BgTracers+mid].led
}

// flushWorkerCycle snapshots every account at the end of one mark phase and
// emits the cycle's deltas: a tracer.cycle span on the worker's own track
// (only for workers that did anything, so idle lanes stay empty) and the
// per-cycle words/idle gauges. Driver-only, like all Registry/Timeline use.
func (e *Engine) flushWorkerCycle(cycleStart, markEnd int64) {
	t := vtime.Time(markEnd)
	for i, a := range e.accounts {
		cur := a.led.Snap()
		d := cur.Sub(a.prev)
		a.prev = cur
		if !d.Active() {
			continue
		}
		e.cfg.Reg.Gauge("trace.worker."+a.key+".cycle_words").Sample(t, float64(d.Words))
		e.cfg.Reg.Gauge("trace.worker."+a.key+".cycle_idle_ns").Sample(t, float64(d.IdleNs))
		e.cfg.TL.Span(a.track, "tracer.cycle", vtime.Time(cycleStart), vtime.Time(markEnd),
			telemetry.Arg{Key: "worker", Val: float64(i)},
			telemetry.Arg{Key: "words", Val: float64(d.Words)},
			telemetry.Arg{Key: "acq", Val: float64(d.Acquired())},
			telemetry.Arg{Key: "steals", Val: float64(d.AcqSteal)},
			telemetry.Arg{Key: "idle_ns", Val: float64(d.IdleNs)})
	}
}

// noteTermLatency records one cycle's termination-detection latency: the gap
// between the first moment a tracer that had already contributed scans found
// no work (firstDoneNs, CAS-claimed by the tracers, reset by the driver
// whenever recirculation hands work back) and the driver observing
// TracingDone at markEnd. Cycles where no tracer went idle early have no
// latency sample — detection was immediate.
func (e *Engine) noteTermLatency(markEnd int64) {
	fd := e.firstDoneNs.Load()
	if fd <= 0 || markEnd <= fd {
		return
	}
	lat := markEnd - fd
	e.report.TermLatencyNs = append(e.report.TermLatencyNs, lat)
	e.cfg.Reg.Gauge("trace.term_latency_ns").Sample(vtime.Time(markEnd), float64(lat))
}

// WorkerAccount is the per-worker slice of the Report: the worker's stable
// key plus its full-run ledger totals.
type WorkerAccount struct {
	Key  string
	Kind string
	workpack.LedgerSnap
}

// finishAccounting folds the final ledger totals into the Report.
func (e *Engine) finishAccounting() {
	for _, a := range e.accounts {
		e.report.Workers = append(e.report.Workers, WorkerAccount{
			Key:        a.key,
			Kind:       a.kind,
			LedgerSnap: a.led.Snap(),
		})
	}
}

// flushWorkerTelemetry emits the end-of-run trace.worker.* counters (the
// series gcstats -balance consumes). Counters for a worker that never traced
// are suppressed, except words, so the worker's existence — and its zero —
// still reaches the balance view.
func (e *Engine) flushWorkerTelemetry() {
	reg := e.cfg.Reg
	if reg == nil || len(e.report.Workers) == 0 {
		return
	}
	set := func(name string, v int64) { reg.Counter(name).Set(v) }
	for _, w := range e.report.Workers {
		pre := "trace.worker." + w.Key + "."
		set(pre+"words", w.Words)
		if !w.Active() {
			continue
		}
		set(pre+"objects", w.Objects)
		set(pre+"acq_global", w.AcqGlobal)
		set(pre+"acq_local", w.AcqLocal)
		set(pre+"acq_steal", w.AcqSteal)
		set(pre+"produced", w.Produced)
		set(pre+"steal_attempts", w.StealAttempts)
		set(pre+"steal_hits", w.StealHits)
		set(pre+"idle_ns", w.IdleNs)
		set(pre+"pool_ns", w.PoolNs)
		if w.Hoarded > 0 {
			set(pre+"hoarded", w.Hoarded)
		}
	}
}

// balanceSummary reduces the Report's worker accounts to one line of the
// Section 6.3 quantities over the tracing goroutines (mutator-tax accounts
// are excluded: they trace on a different clock and would dilute the skew of
// the parallel tracers).
func (r Report) balanceSummary() string {
	var words []float64
	var idle, steals, attempts, hoarded int64
	for _, w := range r.Workers {
		if w.Kind == "tax" {
			continue
		}
		words = append(words, float64(w.Words))
		idle += w.IdleNs
		steals += w.StealHits
		attempts += w.StealAttempts
		hoarded += w.Hoarded
	}
	if len(words) == 0 {
		return ""
	}
	var sum, max float64
	for _, v := range words {
		sum += v
		if v > max {
			max = v
		}
	}
	if sum == 0 {
		return ""
	}
	mean := sum / float64(len(words))
	out := fmt.Sprintf("balance: %d tracers  words max/mean %.2f  gini %.3f  steal hits %d/%d  idle total %.1fms",
		len(words), max/mean, stats.Gini(words), steals, attempts, float64(idle)/1e6)
	if hoarded > 0 {
		out += fmt.Sprintf("  hoarded %d", hoarded)
	}
	if n := len(r.TermLatencyNs); n > 0 {
		lat := append([]int64(nil), r.TermLatencyNs...)
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		out += fmt.Sprintf("  term latency samples %d  p50 %.1fµs  max %.1fµs",
			n, float64(lat[n/2])/1e3, float64(lat[n-1])/1e3)
	}
	return out
}

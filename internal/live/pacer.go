package live

import (
	"sort"
	"sync"

	"mcgc/internal/pacing"
)

// The live backend's pacing "word" is one heap object: the arena is a flat
// array of fixed-size objects, so object counts are the natural unit for
// free memory (F), tracing progress (T, one per scanned object) and the
// L/M predictors. A pacing.Policy is single-threaded by contract;
// livePacer is the gate that serializes it — mutators paying their
// allocation tax, tracers reporting progress and the driver deciding
// kickoff all funnel through one mutex. Everything the telemetry layer
// wants (the K trajectory, the kickoff log) is buffered here under the same
// lock and drained by the driver at the end of the run, because the
// Registry/Timeline sinks are unsynchronized and driver-only.

// liveBestWindow is the default B-sampling window in objects. The paper's
// 1MB window assumes byte-denominated words; 4096 objects fills several
// times per marking phase at the default arena size, which is what Best
// needs to prime.
const liveBestWindow = 1 << 12

// kSampleEvery thins the recorded K trajectory: mutators evaluate the
// progress formula at every allocation-cache refill, which is far denser
// than a trajectory plot needs.
const kSampleEvery = 16

// kSampleCap bounds the trajectory buffer for arbitrarily long runs.
const kSampleCap = 1 << 16

// arenaObjectsView adapts the arena to the pacer's HeapView: free words are
// free-list entries, occupied words are everything else. FreeLen is one
// atomic load, cheap enough for every decision point.
type arenaObjectsView struct{ a *Arena }

func (v arenaObjectsView) FreeWords() int64 { return v.a.FreeLen() }
func (v arenaObjectsView) OccupiedWords() int64 {
	return int64(v.a.NumObjects()) - v.a.FreeLen()
}

// kSample is one recorded evaluation of the progress formula.
type kSample struct {
	at                  int64
	k, corrective, best float64
}

// kickoffPoint is one fired kickoff decision: the free level that crossed
// the threshold.
type kickoffPoint struct {
	at        int64
	free      int64
	threshold float64
}

// pacerSummary is the end-of-run digest finishReport copies into the Report.
type pacerSummary struct {
	increments                int64
	kFirst, kLast, kMin, kMax float64
	correctiveMax             float64
	kickoffs                  int
}

// livePacer wraps a pacing policy for concurrent use. It holds the Policy
// interface, not a concrete type: the engine decides at construction whether
// the run paces on the Section 3 formula alone or on the SLO controller, and
// everything behind the gate is policy-agnostic.
type livePacer struct {
	mu   sync.Mutex
	p    pacing.Policy
	view arenaObjectsView

	sum      pacerSummary
	samples  []kSample
	kickoffs []kickoffPoint
}

// buildPolicy resolves the engine config into a pacing policy over the
// arena: the SLO controller when an SLO config is present, the plain
// formula when only pacing parameters are, nil otherwise. The live
// backend's BestWindow default is applied to whichever formula config ends
// up in charge.
func buildPolicy(pc *pacing.Config, slo *pacing.SLOConfig, a *Arena) pacing.Policy {
	view := arenaObjectsView{a}
	if slo != nil && slo.Target > 0 {
		s := *slo
		if s.Formula == (pacing.Config{}) {
			if pc != nil {
				s.Formula = *pc
			} else {
				s.Formula = pacing.Default()
			}
		}
		if s.Formula.BestWindow == 0 {
			s.Formula.BestWindow = liveBestWindow
		}
		return pacing.NewSLO(s, view)
	}
	if pc == nil {
		return nil
	}
	cfg := *pc
	if cfg.BestWindow == 0 {
		cfg.BestWindow = liveBestWindow
	}
	return pacing.NewFormula(cfg, view)
}

func newLivePacer(p pacing.Policy, a *Arena) *livePacer {
	return &livePacer{p: p, view: arenaObjectsView{a}}
}

// policy exposes the wrapped Policy for capability probing (LatencyObserver,
// BgTuner) — the capabilities are concurrency-safe by contract, so handing
// them out from behind the gate is sound.
func (lp *livePacer) policy() pacing.Policy { return lp.p }

// sloStats snapshots the SLO controller counters, zero when the run paces
// on the plain formula.
func (lp *livePacer) sloStats() (pacing.SLOStats, bool) {
	if s, ok := lp.p.(*pacing.SLOPolicy); ok {
		return s.Stats(), true
	}
	return pacing.SLOStats{}, false
}

// kickoff evaluates the kickoff formula; a fired decision is logged with
// the free level and threshold that produced it. Only the driver calls it,
// but the gate is taken anyway: the predictors it reads are written by
// endCycle and raced by mutator increments.
func (lp *livePacer) kickoff(at int64) bool {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	if !lp.p.Kickoff() {
		return false
	}
	lp.kickoffs = append(lp.kickoffs, kickoffPoint{
		at:        at,
		free:      lp.view.FreeWords(),
		threshold: lp.p.KickoffThreshold(),
	})
	lp.sum.kickoffs++
	return true
}

func (lp *livePacer) threshold() float64 {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.p.KickoffThreshold()
}

func (lp *livePacer) startCycle() {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.p.StartCycle()
}

// incrementBudget is the mutators' entry point: one allocation-cache refill
// of allocObjs objects asks for its tracing budget. The K summary and the
// thinned trajectory are updated under the same lock.
func (lp *livePacer) incrementBudget(at, allocObjs int64) pacing.Budget {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	b := lp.p.IncrementBudget(allocObjs)
	s := &lp.sum
	if s.increments == 0 {
		s.kFirst, s.kMin, s.kMax = b.K, b.K, b.K
	}
	s.kLast = b.K
	if b.K < s.kMin {
		s.kMin = b.K
	}
	if b.K > s.kMax {
		s.kMax = b.K
	}
	if b.Corrective > s.correctiveMax {
		s.correctiveMax = b.Corrective
	}
	if s.increments%kSampleEvery == 0 && len(lp.samples) < kSampleCap {
		lp.samples = append(lp.samples, kSample{at, b.K, b.Corrective, b.Best})
	}
	s.increments++
	return b
}

// pressureBudget is the backpressure entry point: the tracing budget a
// mutator blocked on heap exhaustion owes per wait round. It does not feed
// the B window (nothing was allocated) and does not perturb the K summary —
// the pressure-scaled rate would skew the trajectory plots the ordinary tax
// produces.
func (lp *livePacer) pressureBudget(allocObjs int64) pacing.Budget {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.p.PressureBudget(allocObjs)
}

func (lp *livePacer) endIncrement(doneObjs int64) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.p.EndIncrement(doneObjs)
}

// noteTraced reports dedicated-tracer progress; noteBackground reports the
// throttled background tracers, which additionally feeds the B window so
// Best discounts them from the mutators' tax.
func (lp *livePacer) noteTraced(objs int64) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.p.NoteTraced(objs)
}

func (lp *livePacer) noteBackground(objs int64) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	lp.p.NoteBackgroundWork(objs)
}

// endCycle feeds the predictors with the cycle's actuals and returns the
// traced volume, mirroring the simulator backend: L learns T, M learns the
// dirty-card volume.
func (lp *livePacer) endCycle(dirtyCardObjs int64) (traced int64) {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	traced = lp.p.TracedWords()
	lp.p.EndCycle(traced, dirtyCardObjs)
	return traced
}

// summary returns the end-of-run digest. Driver only, after the workers
// have joined.
func (lp *livePacer) summary() pacerSummary {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return lp.sum
}

// trajectory returns the recorded K samples in time order. Mutators stamp
// the sample time before taking the gate, so neighbours can land a hair out
// of order; the flush sorts once instead of making every increment pay for
// ordering.
func (lp *livePacer) trajectory() []kSample {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	out := append([]kSample(nil), lp.samples...)
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out
}

// kickoffLog returns the fired kickoff decisions.
func (lp *livePacer) kickoffLog() []kickoffPoint {
	lp.mu.Lock()
	defer lp.mu.Unlock()
	return append([]kickoffPoint(nil), lp.kickoffs...)
}

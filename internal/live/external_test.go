package live

import (
	"sync"
	"testing"
	"time"

	"mcgc/internal/heapsim"
)

// extClient drives one external mutator like a trivial request handler:
// allocate an object, link it into a bounded chain held in a RootSet slot,
// and periodically truncate the chain so the tail becomes garbage.
func extClient(t *testing.T, eng *Engine, mt *Mut, rs *RootSet, slot int, wg *sync.WaitGroup) {
	defer wg.Done()
	defer mt.Retire()
	const maxChain = 24
	n := 0
	for i := 0; !eng.ShuttingDown(); i++ {
		mt.Poll()
		obj, ok := mt.Alloc()
		if !ok {
			continue
		}
		mt.Store(obj, 0, rs.Get(slot))
		rs.Set(slot, obj)
		if n++; n > maxChain {
			// Walk to the cut point and sever: everything past it is garbage
			// for the next cycle.
			p := obj
			for j := 0; j < maxChain-1 && p != heapsim.Nil; j++ {
				p = mt.Load(p, 0)
			}
			if p != heapsim.Nil {
				mt.Store(p, 0, heapsim.Nil)
			}
			n = maxChain
		}
		// Mirror the session pattern: the mutator's own root tracks the most
		// recent object too, then occasionally drops it.
		mt.SetRoot(0, obj)
		if i%64 == 63 {
			mt.SetRoot(0, heapsim.Nil)
		}
	}
	// Drop the chain on the way out so the mutator's retirement also tests
	// root-drop-then-retire ordering.
	mt.SetRoot(0, heapsim.Nil)
}

func TestExternalMutatorsOnly(t *testing.T) {
	eng := NewEngine(Config{
		Objects:      1 << 12,
		Mutators:     0,
		ExtMutators:  3,
		Tracers:      2,
		BgTracers:    1,
		Packets:      16,
		PacketCap:    8,
		Duration:     400 * time.Millisecond,
		Seed:         7,
		FaultOptions: FaultOptions{WedgeTimeout: 20 * time.Second},
	})
	rs := eng.NewRootSet(3)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go extClient(t, eng, eng.ExtMutator(i), rs, i, &wg)
	}
	rep := eng.Run()
	wg.Wait()

	if rep.Wedged {
		t.Fatalf("wedged: %s", rep.WedgeDiagnosis)
	}
	if rep.LostObjects > 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle: lost %d, violations %v", rep.LostObjects, rep.Violations)
	}
	if rep.Cycles < 1 {
		t.Fatalf("no collection cycles ran")
	}
	if rep.ObjectsAllocated == 0 || rep.MutatorOps == 0 {
		t.Fatalf("external mutators did nothing: alloc %d ops %d", rep.ObjectsAllocated, rep.MutatorOps)
	}
	if rep.ObjectsFreed == 0 {
		t.Fatalf("truncated chains never became garbage (alloc %d)", rep.ObjectsAllocated)
	}
	// The chains held in the RootSet must have survived the last cycle:
	// every address still rooted there carries its allocation bit.
	for i := 0; i < rs.Len(); i++ {
		for a, hops := rs.Get(i), 0; a != heapsim.Nil && hops < 64; hops++ {
			if !eng.Arena().Alloc.Test(int(a)) {
				t.Fatalf("rooted object %d was collected", a)
			}
			a = eng.Arena().LoadRef(a, 0)
		}
	}
}

// Mixed population: synthetic churn mutators and external handlers share the
// heap, the safepoints and the fence handshakes.
func TestExternalAndSyntheticMutatorsMixed(t *testing.T) {
	eng := NewEngine(Config{
		Objects:      1 << 12,
		Mutators:     2,
		ExtMutators:  2,
		Tracers:      2,
		Packets:      16,
		PacketCap:    8,
		Duration:     300 * time.Millisecond,
		Seed:         11,
		FaultOptions: FaultOptions{WedgeTimeout: 20 * time.Second},
	})
	rs := eng.NewRootSet(2)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go extClient(t, eng, eng.ExtMutator(i), rs, i, &wg)
	}
	rep := eng.Run()
	wg.Wait()

	if rep.Wedged {
		t.Fatalf("wedged: %s", rep.WedgeDiagnosis)
	}
	if rep.LostObjects > 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle: lost %d, violations %v", rep.LostObjects, rep.Violations)
	}
	if rep.Cycles < 1 {
		t.Fatalf("no collection cycles ran")
	}
}

func TestExtMutatorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero mutators of both kinds", func() {
		NewEngine(Config{Mutators: -1, Tracers: 1})
	})
	eng := NewEngine(Config{ExtMutators: 1, Tracers: 1, Duration: 10 * time.Millisecond})
	if eng.cfg.Mutators != 0 {
		t.Fatalf("ExtMutators-only config grew %d synthetic mutators", eng.cfg.Mutators)
	}
	mustPanic("out-of-range handle", func() { eng.ExtMutator(1) })
	mustPanic("empty root set", func() { eng.NewRootSet(0) })
}

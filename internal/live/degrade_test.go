package live

import (
	"sync"
	"testing"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

// ladderConfig is the shared baseline for the overload runs: a heap small
// enough that the live.overload amplifier actually exhausts it, with the
// ladder armed so exhaustion becomes backpressure instead of failed allocs.
func ladderConfig(plan *faultinject.Plan) Config {
	dur := 600 * time.Millisecond
	if testing.Short() {
		dur = 250 * time.Millisecond
	}
	return Config{
		Objects:         1 << 12,
		RootsPerMutator: 32,
		Mutators:        3,
		Tracers:         2,
		BgTracers:       1,
		Packets:         16,
		PacketCap:       8,
		AllocBatch:      32,
		CardPasses:      2,
		Duration:        dur,
		Seed:            1,
		FaultOptions:    FaultOptions{Faults: plan, WedgeTimeout: 10 * time.Second},
		LadderOptions:   LadderOptions{Ladder: LadderConfig{Enabled: true}},
	}
}

// TestOverloadBackpressure drives the collector at roughly double the real
// allocation rate (live.overload burns an extra batch per firing refill) with
// rung 1 armed: mutators must visibly block in backpressure waits instead of
// spinning on failed allocations, and the run must survive — no wedge, no
// lost objects, free-list conservation intact.
func TestOverloadBackpressure(t *testing.T) {
	plan := faultinject.MustParse("live.overload=on", 7)
	rep := NewEngine(ladderConfig(plan)).Run()
	t.Logf("\n%s", rep)

	if rep.Wedged {
		t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
	}
	if rep.LostObjects != 0 {
		t.Errorf("oracle lost %d live objects under overload", rep.LostObjects)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle: %s", v)
	}
	if rep.Cycles < 1 {
		t.Error("no cycle completed")
	}
	if rep.BackpressureWaits == 0 {
		t.Error("2x overload never drove a mutator into a backpressure wait")
	}
	if rep.BackpressureTotal == 0 {
		t.Error("backpressure waits recorded but no stall time accumulated")
	}
	if rep.TimeBackpressure == 0 {
		t.Error("ladder never spent time in the backpressure state")
	}
}

// TestOverloadEmergencyCollection arms rung 2 with a hair trigger — every
// pressured cycle counts as starved (EmergencyMinFree is the whole heap) and
// one starved cycle escalates — so sustained overload must produce emergency
// STW collections. The emergency path is held to the full correctness bar:
// the oracle runs inside its pause, so a lost object or conservation break
// fails the run exactly as in a concurrent cycle. The emergencystall fault
// rides along to widen the emergency pause window under -race.
func TestOverloadEmergencyCollection(t *testing.T) {
	plan := faultinject.MustParse("live.overload=on,live.emergencystall=1/2:200us", 7)
	cfg := ladderConfig(plan)
	cfg.Ladder.BackpressureWait = 2 * time.Millisecond
	cfg.Ladder.EmergencyMinFree = cfg.Objects
	cfg.Ladder.EmergencyAfter = 1
	rep := NewEngine(cfg).Run()
	t.Logf("\n%s", rep)

	if rep.Wedged {
		t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
	}
	if rep.LostObjects != 0 {
		t.Errorf("oracle lost %d live objects across emergency collections", rep.LostObjects)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle: %s", v)
	}
	if rep.EmergencyCycles == 0 {
		t.Fatal("hair-trigger escalation never ran an emergency collection")
	}
	if rep.TimeEmergency == 0 {
		t.Error("emergency cycles ran but no time was accounted to the emergency state")
	}
	// Emergency pauses are STW pauses; they must be in the pause accounting.
	if rep.STWTotal == 0 {
		t.Error("no STW time recorded despite emergency collections")
	}
}

// TestLadderDisabledKeepsFailFast pins the compatibility contract: with the
// zero-value LadderConfig the old degradation path is untouched — overload
// produces failed allocations and pressure kicks, never backpressure waits or
// emergency cycles.
func TestLadderDisabledKeepsFailFast(t *testing.T) {
	plan := faultinject.MustParse("live.overload=on", 7)
	cfg := ladderConfig(plan)
	cfg.Ladder = LadderConfig{}
	rep := NewEngine(cfg).Run()
	t.Logf("\n%s", rep)

	if rep.Wedged {
		t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
	}
	if rep.LostObjects != 0 {
		t.Errorf("oracle lost %d live objects", rep.LostObjects)
	}
	if rep.BackpressureWaits != 0 || rep.EmergencyCycles != 0 {
		t.Errorf("ladder disabled but engaged anyway: %d waits, %d emergency cycles",
			rep.BackpressureWaits, rep.EmergencyCycles)
	}
	if rep.AllocFailed == 0 {
		t.Error("overload with the ladder off should surface as failed allocations")
	}
}

// TestHeadroomAndDegradationState sanity-checks the two reads server
// admission control polls: a fresh engine reports a full free list and DegOK,
// and an overloaded run ends back in DegOK with its time-in-state totals
// covering the run.
func TestHeadroomAndDegradationState(t *testing.T) {
	plan := faultinject.MustParse("live.overload=on", 7)
	eng := NewEngine(ladderConfig(plan))
	if h := eng.Headroom(); h != 1 {
		t.Fatalf("fresh engine headroom %v, want 1", h)
	}
	if st := eng.DegradationState(); st != DegOK {
		t.Fatalf("fresh engine state %v, want ok", st)
	}
	rep := eng.Run()
	if st := eng.DegradationState(); st != DegOK {
		t.Errorf("post-run state %v, want ok (no waiter survives shutdown)", st)
	}
	if rep.TimeOK == 0 {
		t.Error("no time accounted to the ok state")
	}
	if h := eng.Headroom(); h < 0 || h > 1 {
		t.Errorf("headroom %v outside [0,1]", h)
	}
}

// TestAllocAfterRetirePanics pins the use-after-Retire contract: a retired
// handle panics deterministically on every protocol-touching method, and a
// second Retire panics instead of corrupting the engine's wait-group and
// cache accounting.
func TestAllocAfterRetirePanics(t *testing.T) {
	eng := NewEngine(Config{
		ExtMutators: 1,
		Tracers:     1,
		Duration:    10 * time.Millisecond,
	})
	mt := eng.ExtMutator(0)
	mt.Retire() // before Run: documented as legal

	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s after Retire did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Alloc", func() { mt.Alloc() })
	mustPanic("Poll", func() { mt.Poll() })
	mustPanic("Store", func() { mt.Store(0, 0, heapsim.Nil) })
	mustPanic("Load", func() { mt.Load(0, 0) })
	mustPanic("SetRoot", func() { mt.SetRoot(0, heapsim.Nil) })
	mustPanic("second Retire", func() { mt.Retire() })
}

// TestRetireDuringShutdownRace hammers the Retire path exactly where it
// races: every client retires the instant it observes ShuttingDown, while
// the driver is tearing down safepoints and waiting on the external
// population. Run under -race, the assertion is simply that the engine
// unwinds cleanly every time — no deadlock, no corruption, oracle intact.
func TestRetireDuringShutdownRace(t *testing.T) {
	rounds := 5
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		eng := NewEngine(Config{
			Objects:       1 << 10,
			ExtMutators:   4,
			Tracers:       2,
			Packets:       16,
			PacketCap:     8,
			Duration:      60 * time.Millisecond,
			Seed:          int64(round + 1),
			FaultOptions:  FaultOptions{WedgeTimeout: 10 * time.Second},
			LadderOptions: LadderOptions{Ladder: LadderConfig{Enabled: true, BackpressureWait: 2 * time.Millisecond}},
		})
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(mt *Mut) {
				defer wg.Done()
				for !eng.ShuttingDown() {
					mt.Poll()
					if obj, ok := mt.Alloc(); ok {
						mt.SetRoot(0, obj)
					}
				}
				// The race under test: Retire lands while the driver is mid
				// teardown. No cushioning poll, no delay.
				mt.Retire()
			}(eng.ExtMutator(i))
		}
		rep := eng.Run()
		wg.Wait()
		if rep.Wedged {
			t.Fatalf("round %d wedged:\n%s", round, rep.WedgeDiagnosis)
		}
		if rep.LostObjects != 0 || len(rep.Violations) > 0 {
			t.Fatalf("round %d oracle: lost %d, violations %v",
				round, rep.LostObjects, rep.Violations)
		}
	}
}

package live

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
)

func balanceConfig() Config {
	dur := 500 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	return Config{
		Objects:         1 << 13,
		RootsPerMutator: 48,
		Mutators:        3,
		Tracers:         4,
		Packets:         32,
		PacketCap:       8,
		Duration:        dur,
		Seed:            11,
	}
}

// skewOf computes max/mean words over the tracing (non-tax) workers.
func skewOf(t *testing.T, rep Report) float64 {
	t.Helper()
	var sum, max float64
	n := 0
	for _, w := range rep.Workers {
		if w.Kind == "tax" {
			continue
		}
		v := float64(w.Words)
		sum += v
		if v > max {
			max = v
		}
		n++
	}
	if n == 0 || sum == 0 {
		t.Fatal("no tracer words accounted")
	}
	return max / (sum / float64(n))
}

// giniOf computes the Gini coefficient of words over the tracing (non-tax)
// workers — the two-sided imbalance measure: unlike max/mean it also rises
// when one worker does much *less* than its share.
func giniOf(rep Report) float64 {
	var words []float64
	for _, w := range rep.Workers {
		if w.Kind != "tax" {
			words = append(words, float64(w.Words))
		}
	}
	return stats.Gini(words)
}

func termStats(rep Report) string {
	if len(rep.TermLatencyNs) == 0 {
		return "none"
	}
	lat := append([]int64(nil), rep.TermLatencyNs...)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, v := range lat {
		sum += v
	}
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p95=%.1fµs max=%.1fµs",
		len(lat), float64(sum)/float64(len(lat))/1e3, float64(lat[len(lat)/2])/1e3,
		float64(lat[len(lat)*95/100])/1e3, float64(lat[len(lat)-1])/1e3)
}

// TestWorkerAccountingReconciles checks the ledger identity that makes the
// balance view trustworthy: per-worker traced words sum exactly to the
// engine's per-party attribution, which itself equals scans times the
// per-object slot count.
func TestWorkerAccountingReconciles(t *testing.T) {
	cfg := balanceConfig()
	cfg.BgTracers = 1
	cfg.Reg = telemetry.NewRegistry()
	e := NewEngine(cfg)
	rep := e.Run()
	t.Logf("\n%s", rep)

	if rep.Wedged || rep.LostObjects != 0 {
		t.Fatalf("bad run: wedged=%t lost=%d", rep.Wedged, rep.LostObjects)
	}
	if want := cfg.Tracers + cfg.BgTracers; len(rep.Workers) != want {
		t.Fatalf("%d worker accounts, want %d", len(rep.Workers), want)
	}
	var words, acquired, produced int64
	for _, w := range rep.Workers {
		words += w.Words
		acquired += w.Acquired()
		produced += w.Produced
		if w.Objects*int64(e.Arena().RefsPerObject()) != w.Words {
			t.Errorf("worker %s: %d objects × %d refs != %d words",
				w.Key, w.Objects, e.Arena().RefsPerObject(), w.Words)
		}
	}
	if attributed := rep.TraceMutatorWords + rep.TraceBgWords + rep.TraceDedicatedWords; words != attributed {
		t.Errorf("worker words %d != attributed trace words %d", words, attributed)
	}
	if want := rep.Scans * int64(e.Arena().RefsPerObject()); words != want {
		t.Errorf("worker words %d != scans %d × refs", words, rep.Scans)
	}
	if acquired == 0 || produced == 0 {
		t.Errorf("acquisitions %d / productions %d never accounted", acquired, produced)
	}
	// The per-cycle flush must have emitted the balance series.
	found := false
	for _, g := range cfg.Reg.Gauges() {
		if g.Name() == "trace.worker.d0.cycle_words" {
			found = true
		}
	}
	if !found {
		t.Error("per-cycle gauge trace.worker.d0.cycle_words never sampled")
	}
}

// TestAccountingDisabledWhenBare pins the zero-perturbation contract at the
// engine level: without a registry, a timeline or a fault plan there are no
// ledgers at all, so the hot paths keep their nil fast path.
func TestAccountingDisabledWhenBare(t *testing.T) {
	cfg := balanceConfig()
	cfg.Duration = 150 * time.Millisecond
	e := NewEngine(cfg)
	if e.accounts != nil {
		t.Fatal("accounts built for a bare engine")
	}
	rep := e.Run()
	if rep.Workers != nil {
		t.Fatalf("bare run reports %d worker accounts", len(rep.Workers))
	}
	if rep.TermLatencyNs != nil {
		t.Fatalf("bare run reports %d termination samples", len(rep.TermLatencyNs))
	}
}

// termMeanNs returns the mean termination-detection latency (0 when no
// samples were recorded).
func termMeanNs(rep Report) float64 {
	if len(rep.TermLatencyNs) == 0 {
		return 0
	}
	var sum int64
	for _, v := range rep.TermLatencyNs {
		sum += v
	}
	return float64(sum) / float64(len(rep.TermLatencyNs))
}

// TestHoardSkewsBalance runs the same workload clean and with pool.hoard
// armed and requires the fault to visibly move both balance axes: the
// hoarding tracer ends up doing more of the work itself while siblings idle
// (skew), and the solo stalled drain of its backlog stretches the window
// between the pool first looking dry and marking actually ending
// (termination-detection latency). The local tier is disabled so all
// production is globally visible — with local caches on, most of each
// worker's flow is its own production and the hoarder has far less to
// capture (the balance-bench sweep shows both). The imbalance assertion uses
// the words-Gini rather than max/mean: a stalled hoarder becomes a min-side
// outlier (it sits on work instead of tracing it), which max/mean cannot
// see. Single runs are noisy on a loaded host (scheduler share swamps a few
// percent of redistribution), so both assertions compare means over pairs.
func TestHoardSkewsBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive A/B measurement: 1s runs, µs-scale latency compare; make balance-smoke covers it unraced")
	}
	run := func(spec string, seed int64) Report {
		cfg := balanceConfig()
		// 500ms runs under-sample the phase-tail hoard drains and flake the
		// termination axis; 1s matches the balance-smoke configuration that
		// separates reliably.
		cfg.Duration = time.Second
		cfg.LocalCache = -1
		cfg.Seed = seed
		cfg.Reg = telemetry.NewRegistry()
		if spec != "" {
			cfg.Faults = faultinject.MustParse(spec, 7)
		}
		rep := NewEngine(cfg).Run()
		if rep.Wedged || rep.LostObjects != 0 {
			t.Fatalf("bad run under %q: wedged=%t lost=%d", spec, rep.Wedged, rep.LostObjects)
		}
		return rep
	}

	const pairs = 3
	var cleanGini, hoardGini, cleanTerm, hoardTerm float64
	var hoarded int64
	for i := 0; i < pairs; i++ {
		seed := int64(11 + i)
		clean := run("", seed)
		hoard := run("pool.hoard=on:1ms", seed)
		cg, hg := giniOf(clean), giniOf(hoard)
		cleanGini += cg
		hoardGini += hg
		cleanTerm += termMeanNs(clean)
		hoardTerm += termMeanNs(hoard)
		t.Logf("pair %d: gini clean %.4f hoard %.4f (max/mean clean %.3f hoard %.3f)",
			i, cg, hg, skewOf(t, clean), skewOf(t, hoard))
		t.Logf("pair %d: term clean %s hoard %s", i, termStats(clean), termStats(hoard))
		for _, w := range hoard.Workers {
			if w.Kind != "tax" {
				t.Logf("pair %d hoard run %s: words %d idle %.1fms hoarded %d",
					i, w.Key, w.Words, float64(w.IdleNs)/1e6, w.Hoarded)
			}
			hoarded += w.Hoarded
			if w.HoardHeld != 0 {
				t.Errorf("worker %s still holds %d hoarded packets after Run", w.Key, w.HoardHeld)
			}
		}
	}
	cleanGini /= pairs
	hoardGini /= pairs
	cleanTerm /= pairs
	hoardTerm /= pairs
	t.Logf("means over %d pairs: gini clean %.4f hoard %.4f, term clean %.1fµs hoard %.1fµs",
		pairs, cleanGini, hoardGini, cleanTerm/1e3, hoardTerm/1e3)

	if hoarded == 0 {
		t.Fatal("pool.hoard never hoarded a packet")
	}
	if hoardGini <= cleanGini {
		t.Errorf("hoarding did not worsen mean words-Gini: clean %.4f, hoard %.4f", cleanGini, hoardGini)
	}
	if hoardTerm <= cleanTerm {
		t.Errorf("hoarding did not worsen mean termination latency: clean %.1fµs, hoard %.1fµs",
			cleanTerm/1e3, hoardTerm/1e3)
	}
}

package live

import (
	"testing"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/pacing"
)

// checkTraceWords asserts the attribution identity: every successful
// scanObject charges its slot words to exactly one of the three parties, so
// the per-party counters must reconcile exactly with the total scan volume.
func checkTraceWords(t *testing.T, rep Report, refsPer int) {
	t.Helper()
	got := rep.TraceMutatorWords + rep.TraceBgWords + rep.TraceDedicatedWords
	want := rep.Scans * int64(refsPer)
	if got != want {
		t.Errorf("trace words do not reconcile: mutator %d + bg %d + dedicated %d = %d, want scans %d * refs %d = %d",
			rep.TraceMutatorWords, rep.TraceBgWords, rep.TraceDedicatedWords, got, rep.Scans, refsPer, want)
	}
}

// pacedChaosConfig is chaosConfig with the Section 3 pacer enabled at the
// paper's defaults.
func pacedChaosConfig(plan *faultinject.Plan) Config {
	cfg := chaosConfig(plan)
	pc := pacing.Default()
	cfg.Pacing = &pc
	return cfg
}

// TestPacingSteadyState runs the paced engine with no faults and checks the
// whole Section 3 protocol end to end: cycles start via the kickoff formula
// (not the idle timer), mutators pay allocation-tax increments, the rate
// adapts over the run, every logged kickoff honours free < (L+M)/K0, and
// the per-party tracing attribution reconciles.
func TestPacingSteadyState(t *testing.T) {
	cfg := pacedChaosConfig(nil)
	cfg.Duration = 800 * time.Millisecond
	if testing.Short() {
		cfg.Duration = 300 * time.Millisecond
	}
	e := NewEngine(cfg)
	rep := e.Run()
	t.Logf("\n%s", rep)

	if rep.Wedged {
		t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
	}
	if rep.LostObjects != 0 {
		t.Errorf("oracle lost %d live objects", rep.LostObjects)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle: %s", v)
	}
	if !rep.PacingEnabled {
		t.Fatal("report does not show pacing enabled")
	}
	if rep.Cycles < 2 {
		t.Fatalf("only %d cycles completed; kickoff never fired?", rep.Cycles)
	}
	if rep.Kickoffs < 1 {
		t.Errorf("no cycle was started by the kickoff formula (pressure kicks %d)", rep.PressureKicks)
	}
	if rep.PacedIncrements == 0 {
		t.Error("mutators never paid an allocation-tax increment")
	}
	if rep.TraceMutatorWords == 0 {
		t.Error("mutator tax never repaid any tracing work")
	}
	// "K adapts at least once": the progress formula must have produced
	// more than one rate over the run.
	if rep.PacedIncrements >= 10 && rep.KMin == rep.KMax {
		t.Errorf("K never adapted over %d increments (constant %.2f)", rep.PacedIncrements, rep.KMin)
	}
	checkTraceWords(t, rep, cfg.withDefaults().RefsPerObject)

	// Every fired kickoff must satisfy the formula it claims to implement.
	log := e.pacer.kickoffLog()
	if len(log) != int(rep.Kickoffs) {
		t.Errorf("kickoff log has %d entries, report says %d", len(log), rep.Kickoffs)
	}
	for i, kp := range log {
		if float64(kp.free) >= kp.threshold {
			t.Errorf("kickoff %d fired with free %d >= threshold %.1f", i, kp.free, kp.threshold)
		}
	}
}

// TestPacingChaosMatrix re-runs the full 12-class fault matrix with pacing
// enabled: the allocation tax, the kickoff-driven cycle starts and the
// pacer gate must survive every injected degradation without losing a live
// object, wedging, or breaking the attribution identity.
//
// Kickoff-point determinism is covered at the pacer level: the live
// engine's goroutine interleaving is inherently nondeterministic, so the
// seeded same-inputs-same-kickoffs replay lives in internal/pacing
// (TestDeterministicKickoffPoints); here the per-kickoff formula invariant
// is asserted instead, which must hold under any schedule.
func TestPacingChaosMatrix(t *testing.T) {
	cases := []struct {
		name string
		spec string
	}{
		{"overflow", "pool.exhaust=1/3"},
		{"cas-contention", "pool.cas=1/2"},
		{"get-put-stalls", "pool.getstall=1/8:50us,pool.putstall=1/8:50us"},
		{"deferral", "pool.deferstall=2:100us"},
		{"clean-race", "card.cleanstall=1/4:50us"},
		{"tracer-stall", "live.tracerstall=4:200us"},
		{"fence-stall", "live.fencedelay=3:300us"},
		{"safepoint-stall", "live.safepointstall=5:200us"},
		{"bg-starve", "live.bgstarve=on:1ms"},
		{"alloc-failure", "live.allocfail=1/2"},
		{"jitter", "jitter=1/8"},
		{"everything", "pool.exhaust=1/5,pool.cas=1/4,card.cleanstall=1/8:20us,live.tracerstall=8:100us,live.allocfail=1/6,jitter=1/16"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := faultinject.MustParse(tc.spec, 7)
			cfg := pacedChaosConfig(plan)
			e := NewEngine(cfg)
			rep := e.Run()
			t.Logf("\n%s", rep)

			if rep.Wedged {
				t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
			}
			if rep.LostObjects != 0 {
				t.Errorf("oracle lost %d live objects under %q", rep.LostObjects, tc.spec)
			}
			for _, v := range rep.Violations {
				t.Errorf("oracle: %s", v)
			}
			if rep.Cycles < 1 {
				t.Error("no cycle completed")
			}
			if !e.Pool().TracingDone() || !e.Pool().DeferredEmpty() {
				t.Error("packet pool not quiescent after Run")
			}
			checkTraceWords(t, rep, cfg.withDefaults().RefsPerObject)
			for i, kp := range e.pacer.kickoffLog() {
				if float64(kp.free) >= kp.threshold {
					t.Errorf("kickoff %d fired with free %d >= threshold %.1f", i, kp.free, kp.threshold)
				}
			}
		})
	}
}

// TestPacingTracerStallDrivesCorrective arranges the scenario the corrective
// term exists for: background tracers prime Best (so the mutators' tax is
// discounted), then an injected stall collapses tracer throughput. Tracing
// falls behind the K0 schedule while free memory keeps shrinking, so the
// progress formula must push K above K0 and apply the (K-K0)*C catch-up.
func TestPacingTracerStallDrivesCorrective(t *testing.T) {
	plan := faultinject.MustParse("live.tracerstall=2:500us", 7)
	cfg := pacedChaosConfig(plan)
	cfg.Tracers = 1
	cfg.BgTracers = 2
	cfg.BgThrottle = 50 * time.Microsecond
	cfg.Duration = 900 * time.Millisecond
	if testing.Short() {
		cfg.Duration = 400 * time.Millisecond
	}
	pc := pacing.Default()
	pc.K0 = 4 // a lower schedule: easier for a stalled run to fall behind
	pc.BestWindow = 256
	cfg.Pacing = &pc

	rep := NewEngine(cfg).Run()
	t.Logf("\n%s", rep)
	if rep.Wedged || rep.LostObjects != 0 {
		t.Fatalf("bad run: wedged=%t lost=%d", rep.Wedged, rep.LostObjects)
	}
	if rep.PacedIncrements == 0 {
		t.Fatal("no paced increments — the stall scenario never ran")
	}
	if rep.KMax <= pc.K0 {
		t.Errorf("K never exceeded K0=%.0f under a tracer stall (max %.2f)", pc.K0, rep.KMax)
	}
	if rep.CorrectiveMax <= 0 {
		t.Errorf("corrective term never applied under a tracer stall (K range [%.2f, %.2f])",
			rep.KMin, rep.KMax)
	}
}

// TestPacingAllocFailureKicksOff wires injected allocation failure to the
// paced driver: with pacing enabled the inter-cycle wait is kickoffWait, and
// memory pressure must preempt it and start a collection immediately — the
// engine responds by collecting, not by idling on a full heap.
func TestPacingAllocFailureKicksOff(t *testing.T) {
	plan := faultinject.MustParse("live.allocfail=1/2", 3)
	cfg := pacedChaosConfig(plan)
	rep := NewEngine(cfg).Run()
	t.Logf("\n%s", rep)

	if rep.Wedged || rep.LostObjects != 0 {
		t.Fatalf("bad run: wedged=%t lost=%d", rep.Wedged, rep.LostObjects)
	}
	if rep.AllocFailed == 0 {
		t.Fatal("alloc failure injection never failed an allocation")
	}
	if rep.Cycles < 2 {
		t.Fatalf("only %d cycles — allocation failure did not trigger collection", rep.Cycles)
	}
	if rep.PressureKicks+rep.Kickoffs == 0 {
		t.Error("no cycle was triggered by pressure or the kickoff formula")
	}
}

package live

import (
	"testing"
	"time"
)

// TestStressOracle is the acceptance run: a long stress under -race with a
// configuration chosen to force every degradation path — packet overflow
// (tiny pool), deferred publication (large alloc batches), termination races
// (more tracers than packets can keep busy) — across many cycles. The STW
// oracle must find zero lost live objects in every one of them.
func TestStressOracle(t *testing.T) {
	dur := 11 * time.Second
	if testing.Short() {
		dur = 1 * time.Second
	}
	e := NewEngine(Config{
		Objects:         1 << 14,
		RootsPerMutator: 64, // 256 roots total: a live graph worth tracing
		Mutators:        4,
		Tracers:         3,
		BgTracers:       1,
		Packets:         10, // 80 pool entries < root count: overflow is certain
		PacketCap:       8,
		AllocBatch:      48, // large batches: long-unpublished alloc bits
		CardPasses:      3,
		Duration:        dur,
		Seed:            1,
	})
	rep := e.Run()
	t.Logf("\n%s", rep)

	if rep.LostObjects != 0 {
		t.Errorf("oracle lost %d live objects", rep.LostObjects)
	}
	for _, v := range rep.Violations {
		t.Errorf("oracle: %s", v)
	}
	if !testing.Short() {
		if rep.Cycles < 5 {
			t.Errorf("only %d cycles completed, want >= 5", rep.Cycles)
		}
		// The configuration is built to hit the degradation paths; if it
		// doesn't, the stress is not stressing what it claims to.
		if rep.Overflows == 0 {
			t.Error("no packet overflows — pool too large for the workload")
		}
		if rep.Deferred == 0 {
			t.Error("no deferred objects — publication batching not exercised")
		}
		if rep.ForcedFences == 0 {
			t.Error("no forced fences — card cleaning handshake not exercised")
		}
		if rep.CardsRegistered == 0 || rep.BarrierMarks == 0 {
			t.Error("write barrier / card registration not exercised")
		}
		if rep.ObjectsFreed == 0 {
			t.Error("nothing freed — sweep not exercised")
		}
	}
	if !e.Pool().TracingDone() || !e.Pool().DeferredEmpty() {
		t.Error("packet pool not quiescent after Run")
	}
	// Every scan is attributed to exactly one tracing party, pacing or not
	// (without pacing the mutator share is zero).
	checkTraceWords(t, rep, e.arena.refsPer)
	if rep.TraceMutatorWords != 0 {
		t.Errorf("mutator-paid tracing %d without pacing enabled", rep.TraceMutatorWords)
	}
}

// TestTerminationRaces floods the termination protocol: many tracers against
// a tiny heap and tiny packets, so tracers constantly race each other (and
// the driver) through get-before-return, Release and TracingDone.
func TestTerminationRaces(t *testing.T) {
	dur := 3 * time.Second
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	e := NewEngine(Config{
		Objects:    1 << 10,
		Mutators:   2,
		Tracers:    6,
		BgTracers:  2,
		Packets:    8,
		PacketCap:  4,
		AllocBatch: 4,
		Duration:   dur,
		IdlePeriod: 200 * time.Microsecond,
		Seed:       3,
		Shape:      "churn",
	})
	rep := e.Run()
	if rep.LostObjects != 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle violations: lost=%d %v", rep.LostObjects, rep.Violations)
	}
	if rep.Cycles < 2 {
		t.Fatalf("only %d cycles completed", rep.Cycles)
	}
	if !e.Pool().TracingDone() || !e.Pool().DeferredEmpty() {
		t.Error("packet pool not quiescent after Run")
	}
}

package live

import (
	"sync"
	"testing"
	"unsafe"

	"mcgc/internal/heapsim"
)

func TestDefaultFreeShards(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{1, 1},
		{256, 1},
		{512, 2},
		{1 << 12, 8},
		{1 << 15, 8}, // capped at 8 regardless of size
		{1 << 20, 8},
	} {
		if got := DefaultFreeShards(tc.n); got != tc.want {
			t.Errorf("DefaultFreeShards(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestNewArenaShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 1}, {1, 1}, {3, 2}, {4, 4}, {7, 4}, {64, 64}, {100, 64},
	} {
		a := NewArenaShards(1024, 2, tc.in)
		if got := a.NumFreeShards(); got != tc.want {
			t.Errorf("NewArenaShards(shards=%d): %d shards, want %d", tc.in, got, tc.want)
		}
		if got := a.FreeLen(); got != 1024 {
			t.Errorf("NewArenaShards(shards=%d): seeded %d free, want 1024", tc.in, got)
		}
	}
}

// TestShardResidueInvariant walks every shard and checks the sharding
// function: an object only ever lives on the shard its address residue names,
// and the seeded per-shard counts partition the arena exactly.
func TestShardResidueInvariant(t *testing.T) {
	const objects = 1000 // deliberately not a multiple of the shard count
	a := NewArenaShards(objects, 2, 4)

	var total int64
	for s := 0; s < a.NumFreeShards(); s++ {
		total += a.ShardLen(s)
	}
	if total != objects {
		t.Fatalf("shard counts sum to %d, want %d", total, objects)
	}

	seen := make(map[heapsim.Addr]bool)
	var buf []heapsim.Addr
	for s := 0; s < a.NumFreeShards(); s++ {
		want := a.ShardLen(s)
		buf = a.popBatchFrom(s, objects, buf[:0])
		if int64(len(buf)) != want {
			t.Fatalf("shard %d drained %d objects, count said %d", s, len(buf), want)
		}
		for _, o := range buf {
			if a.shardOf(o) != s {
				t.Fatalf("object %d (residue %d) found on shard %d", o, a.shardOf(o), s)
			}
			if seen[o] {
				t.Fatalf("object %d linked twice", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != objects {
		t.Fatalf("drained %d distinct objects, want %d", len(seen), objects)
	}
}

// TestPopFreeBatchHomeAndSteal pins the scan order: a pop is served by the
// home shard while it has objects (no steal counted), and falls over to the
// next shard — counting one steal — only on home exhaustion. The empty result
// comes only when every shard is empty, preserving the single-list
// alloc-failure signal.
func TestPopFreeBatchHomeAndSteal(t *testing.T) {
	const objects = 64
	a := NewArenaShards(objects, 2, 4)
	const home = 1

	var buf []heapsim.Addr
	// Drain the home shard: every batch comes from residue class 1.
	homeLen := a.ShardLen(home)
	for a.ShardLen(home) > 0 {
		buf = a.PopFreeBatch(home, 4, buf[:0])
		if len(buf) == 0 {
			t.Fatal("pop failed with home shard non-empty")
		}
		for _, o := range buf {
			if a.shardOf(o) != home {
				t.Fatalf("home pop returned object %d from shard %d", o, a.shardOf(o))
			}
		}
	}
	if homeLen == 0 {
		t.Fatal("home shard seeded empty")
	}
	if got := a.ShardSteals(); got != 0 {
		t.Fatalf("%d steals while home shard had objects, want 0", got)
	}

	// Next pop must steal from a sibling shard.
	buf = a.PopFreeBatch(home, 4, buf[:0])
	if len(buf) == 0 {
		t.Fatal("pop failed with sibling shards non-empty")
	}
	if a.shardOf(buf[0]) == home {
		t.Fatal("steal returned a home-shard object after home drain")
	}
	if got := a.ShardSteals(); got != 1 {
		t.Fatalf("steals = %d, want 1", got)
	}

	// Exhaust everything: only then may the batch come back empty.
	for {
		got := a.PopFreeBatch(home, 16, buf[:0])
		if len(got) == 0 {
			break
		}
	}
	if a.FreeLen() != 0 {
		t.Fatalf("free len %d after exhaustion, want 0", a.FreeLen())
	}
	if got := a.PopFree(); got != heapsim.Nil {
		t.Fatalf("PopFree on empty arena returned %d, want Nil", got)
	}
}

// TestPushFreeAllShardConservation round-trips the whole arena through the
// batch push: drain every shard, return everything with PushFreeAll, and
// require the exact seeded state back — per-shard counts, residue discipline
// and no duplicates. This is the sweep path's conservation identity.
func TestPushFreeAllShardConservation(t *testing.T) {
	const objects = 777
	a := NewArenaShards(objects, 2, 8)
	seedLens := make([]int64, a.NumFreeShards())
	for s := range seedLens {
		seedLens[s] = a.ShardLen(s)
	}

	var all []heapsim.Addr
	var buf []heapsim.Addr
	for s := 0; s < a.NumFreeShards(); s++ {
		for {
			buf = a.popBatchFrom(s, 32, buf[:0])
			if len(buf) == 0 {
				break
			}
			all = append(all, buf...)
		}
	}
	if len(all) != objects || a.FreeLen() != 0 {
		t.Fatalf("drained %d (free len %d), want %d and 0", len(all), a.FreeLen(), objects)
	}

	a.PushFreeAll(all)
	if got := a.FreeLen(); got != objects {
		t.Fatalf("free len %d after PushFreeAll, want %d", got, objects)
	}
	for s := 0; s < a.NumFreeShards(); s++ {
		if got := a.ShardLen(s); got != seedLens[s] {
			t.Fatalf("shard %d holds %d after round trip, want %d", s, got, seedLens[s])
		}
	}
	// Full walk: every object exactly once, each on its home shard.
	seen := make(map[heapsim.Addr]bool)
	for s := 0; s < a.NumFreeShards(); s++ {
		for {
			buf = a.popBatchFrom(s, 64, buf[:0])
			if len(buf) == 0 {
				break
			}
			for _, o := range buf {
				if a.shardOf(o) != s {
					t.Fatalf("object %d on shard %d, want %d", o, s, a.shardOf(o))
				}
				if seen[o] {
					t.Fatalf("object %d linked twice", o)
				}
				seen[o] = true
			}
		}
	}
	if len(seen) != objects {
		t.Fatalf("walked %d objects, want %d", len(seen), objects)
	}
}

// TestShardedFreeListConcurrent is the sharded twin of
// TestArenaFreeListConcurrent: workers with distinct home shards hammer
// batch pops and batch pushes; at quiescence the list holds every object
// exactly once.
func TestShardedFreeListConcurrent(t *testing.T) {
	const (
		objects = 4096
		workers = 8
		rounds  = 3000
	)
	a := NewArenaShards(objects, 2, 8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(home int) {
			defer wg.Done()
			var held []heapsim.Addr
			for r := 0; r < rounds; r++ {
				if len(held) < 24 {
					held = append(held, a.PopFreeBatch(home, 8, nil)...)
				}
				if r%3 == 0 && len(held) >= 8 {
					a.PushFreeAll(held[len(held)-8:])
					held = held[:len(held)-8]
				}
				if r%7 == 0 && len(held) > 0 {
					a.PushFree(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			a.PushFreeAll(held)
		}(w)
	}
	wg.Wait()

	if got := a.FreeLen(); got != objects {
		t.Fatalf("free list has %d objects at quiescence, want %d", got, objects)
	}
	seen := make(map[heapsim.Addr]bool)
	var buf []heapsim.Addr
	for s := 0; s < a.NumFreeShards(); s++ {
		for {
			buf = a.popBatchFrom(s, 64, buf[:0])
			if len(buf) == 0 {
				break
			}
			for _, o := range buf {
				if a.shardOf(o) != s {
					t.Fatalf("object %d migrated to shard %d", o, s)
				}
				if seen[o] {
					t.Fatalf("object %d linked twice", o)
				}
				seen[o] = true
			}
		}
	}
	if len(seen) != objects {
		t.Fatalf("walked %d objects, want %d", len(seen), objects)
	}
}

// TestSingleShardZeroPerturbation pins the disabled path: a one-shard arena
// (the pre-sharding configuration) runs pop/push with zero heap allocations
// and never counts a shard steal.
func TestSingleShardZeroPerturbation(t *testing.T) {
	a := NewArenaShards(1024, 2, -1)
	var held [8]heapsim.Addr
	if avg := testing.AllocsPerRun(200, func() {
		got := a.PopFreeBatch(0, 8, held[:0])
		a.PushFreeAll(got)
	}); avg != 0 {
		t.Fatalf("single-shard pop/push allocates %.1f per op, want 0", avg)
	}
	if got := a.ShardSteals(); got != 0 {
		t.Fatalf("single-shard arena counted %d steals, want 0", got)
	}
	if got := a.FreeLen(); got != 1024 {
		t.Fatalf("free len %d after round trips, want 1024", got)
	}
}

// TestFreeShardLayout pins the anti-false-sharing padding: one shard per
// cache line.
func TestFreeShardLayout(t *testing.T) {
	var sh freeShard
	if size := unsafe.Sizeof(sh); size != 64 {
		t.Errorf("freeShard size %d, want 64 (one cache line)", size)
	}
}

package live

import (
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
)

// Telemetry tracks. The live engine timestamps with wall-clock nanoseconds
// since Run started (the vtime axis of the sinks is just "ns"). Only the
// driver goroutine records, so the unsynchronized Registry/Timeline
// contract holds. Spans are recorded at completion time, which puts an
// enclosing span (cycle) after its children in the file — gcstats -check
// orders and nests per track rather than assuming file order.
const (
	gcTrack   = telemetry.GlobalTrackBase     // cycle + phase spans
	heapTrack = telemetry.GlobalTrackBase + 1 // heap occupancy counter
)

func (e *Engine) setupTelemetry() {
	e.cfg.TL.SetThreadName(gcTrack, "gc driver")
	e.cfg.TL.SetThreadName(heapTrack, "heap")
	for _, a := range e.accounts {
		e.cfg.TL.SetThreadName(a.track, a.trackName())
	}
}

// span records a completed phase on the GC track.
func (e *Engine) span(name string, start, end int64) {
	e.cfg.TL.Span(gcTrack, name, vtime.Time(start), vtime.Time(end))
}

// sampleCycle records the per-cycle gauges and the heap counter track.
func (e *Engine) sampleCycle(res OracleResult, freed int, at int64) {
	t := vtime.Time(at)
	reg := e.cfg.Reg
	reg.Gauge("live.objects").Sample(t, float64(res.Live))
	reg.Gauge("live.floating").Sample(t, float64(res.Floating))
	reg.Gauge("live.freed").Sample(t, float64(freed))
	reg.Gauge("live.free_list").Sample(t, float64(e.arena.FreeLen()))
	e.cfg.TL.Counter(heapTrack, "heap", t,
		telemetry.Arg{Key: "live", Val: float64(res.Live)},
		telemetry.Arg{Key: "floating", Val: float64(res.Floating)},
		telemetry.Arg{Key: "free", Val: float64(e.arena.FreeLen())})
	e.cfg.TL.Instant(gcTrack, "oracle.verdict", t,
		telemetry.Arg{Key: "lost", Val: float64(res.Lost)},
		telemetry.Arg{Key: "floating", Val: float64(res.Floating)})
}

// samplePacingKickoff records the kickoff decision inputs at cycle start,
// mirroring the simulator backend's instant (units are objects here, not
// bytes). Driver only.
func (e *Engine) samplePacingKickoff(at int64) {
	t := vtime.Time(at)
	free := float64(e.arena.FreeLen())
	threshold := e.pacer.threshold()
	e.cfg.Reg.Gauge("gc.pacing.kickoff_free_objs").Sample(t, free)
	e.cfg.Reg.Gauge("gc.pacing.kickoff_target_objs").Sample(t, threshold)
	e.cfg.TL.Instant(gcTrack, "kickoff", t,
		telemetry.Arg{Key: "free_objs", Val: free},
		telemetry.Arg{Key: "target_objs", Val: threshold})
}

// flushTelemetry copies the end-of-run report counters into the registry,
// mirroring the names the simulator backend emits where the concept is the
// same (pool.*, cards.*) and using live.* for engine-only counters.
func (e *Engine) flushTelemetry() {
	reg := e.cfg.Reg
	if reg == nil {
		return
	}
	r := &e.report
	set := func(name string, v int64) { reg.Counter(name).Set(v) }
	// run.vtime_ns is what gcstats -metrics divides pauses by for MMU; the
	// live engine's "virtual" time is wall time since Run started.
	set("run.vtime_ns", e.now())
	set("live.cycles", int64(r.Cycles))
	set("live.mutator_ops", r.MutatorOps)
	set("live.objects_allocated", r.ObjectsAllocated)
	set("live.objects_freed", r.ObjectsFreed)
	set("live.alloc_failed", r.AllocFailed)
	set("live.marks", r.Marks)
	set("live.scans", r.Scans)
	set("live.rescans", r.Rescans)
	set("live.deferred", r.Deferred)
	set("live.lost_objects", r.LostObjects)
	set("live.floating_total", r.FloatingTotal)
	set("live.stw_ns_total", r.STWTotal.Nanoseconds())
	set("live.stw_ns_max", r.STWMax.Nanoseconds())
	// The concurrent-mark wall total is what -balance divides idle time by.
	set("live.mark_ns_total", r.MarkTotal.Nanoseconds())
	set("live.tracer_active_ns_total", r.TracerActiveTotal.Nanoseconds())
	set("gc.overflows", r.Overflows)
	set("gc.card_passes", r.CardPasses)
	set("gc.forced_fences", r.ForcedFences)
	set("gc.alloc_fences", r.AllocFences)
	set("cards.registered", r.CardsRegistered)
	set("cards.cleaned", r.CardsCleaned)
	set("cards.barrier_marks", r.BarrierMarks)
	set("pool.cas_retries", r.PoolCASRetries)
	set("pool.return_fences", r.PoolReturnFences)
	set("pool.max_in_use", r.PoolMaxInUse)
	set("pool.local_hits", r.PoolLocalHits)
	set("pool.steals", r.PoolSteals)
	set("pool.spills", r.PoolSpills)
	set("arena.shard_steals", r.ArenaShardSteals)
	set("card.buffer_flushes", r.CardBufferFlushes)
	set("live.freelist_retries", r.FreeListRetries)
	set("live.pressure_kicks", r.PressureKicks)
	set("cards.direct_dirties", r.DirectDirties)
	set("live.rescan_redirties", r.RescanRedirties)
	set("trace.mutator_words", r.TraceMutatorWords)
	set("trace.bg_words", r.TraceBgWords)
	set("trace.dedicated_words", r.TraceDedicatedWords)
	if e.pacer != nil {
		set("gc.kickoffs", r.Kickoffs)
		set("gc.increments", r.PacedIncrements)
		// The buffered K trajectory drains here, under the same names the
		// simulator backend samples live, so gcstats reads both identically.
		// Mutators cannot touch the unsynchronized Registry mid-run; the
		// pacer gate buffered these for the driver.
		gK := reg.Gauge("gc.pacing.k")
		gCorr := reg.Gauge("gc.pacing.corrective")
		gBest := reg.Gauge("gc.pacing.best")
		for _, s := range e.pacer.trajectory() {
			t := vtime.Time(s.at)
			gK.Sample(t, s.k)
			if s.corrective != 0 {
				gCorr.Sample(t, s.corrective)
			}
			gBest.Sample(t, s.best)
		}
	}
	// SLO-controller counters: how many latency windows the policy saw and
	// how many crossed the target, plus the final throttle factor. gcserve's
	// -require-slo asserts on the same numbers from the Report.
	if r.PacingPolicy == "slo" {
		set("gc.slo.enabled", 1)
		set("gc.slo.windows", r.SLOWindows)
		set("gc.slo.over_target", r.SLOOverTarget)
		reg.Gauge("gc.slo.bg_factor").Sample(vtime.Time(e.now()), r.SLOBgFactor)
	}
	// Degradation ladder: counters, time-in-state, the state gauge (one
	// sample per transition, starting at ok) and the backpressure stall
	// distribution — everything gcstats -degradation reads back.
	set("gc.backpressure_ns", r.BackpressureTotal.Nanoseconds())
	set("gc.backpressure_waits", r.BackpressureWaits)
	set("gc.backpressure_timeouts", r.BackpressureTimeouts)
	set("gc.emergency_cycles", r.EmergencyCycles)
	set("gc.deg_ok_ns", r.TimeOK.Nanoseconds())
	set("gc.deg_backpressure_ns", r.TimeBackpressure.Nanoseconds())
	set("gc.deg_emergency_ns", r.TimeEmergency.Nanoseconds())
	if e.cfg.Ladder.Enabled {
		set("gc.ladder_enabled", 1)
	}
	if trs := e.deg.transitionLog(); len(trs) > 0 {
		g := reg.Gauge("gc.degradation_state")
		g.Sample(0, float64(DegOK))
		for _, tr := range trs {
			g.Sample(vtime.Time(tr.at), float64(tr.state))
		}
	}
	if _, stalls := e.deg.snapshot(e.now()); len(stalls) > 0 {
		h := reg.Histogram("gc.backpressure_stall_ns", BackpressureStallBounds()...)
		for _, ns := range stalls {
			h.Observe(float64(ns))
		}
	}
	if r.Wedged {
		set("live.wedged", 1)
	}
	e.flushWorkerTelemetry()
	// Per-site fault-injection counters, so a chaos run's metrics file records
	// which faults actually fired (gcstats -metrics prints them; chaos-smoke
	// asserts them nonzero).
	for _, p := range r.Faults {
		set("fault."+p.Name+".hits", p.Hits)
		set("fault."+p.Name+".fires", p.Fires)
		if p.Jitters > 0 {
			set("fault."+p.Name+".jitters", p.Jitters)
		}
	}
}

package live

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcgc/internal/cardtable"
	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
	"mcgc/internal/pacing"
	"mcgc/internal/telemetry"
	"mcgc/internal/workpack"
)

// ShardingOptions groups the hot-shared-structure knobs: how aggressively
// the per-worker tiers front the global pool, free list and card table.
type ShardingOptions struct {
	// LocalCache sizes the per-worker packet caches (workpack.LocalPool):
	// each tracing goroutine — and, with pacing, each mutator — fronts the
	// shared pool with a cache of this many packets per class. 0 picks
	// DefaultLocalCache clamped so the caches together cannot hoard more
	// than half the pool; negative disables the local tier.
	LocalCache int
	// FreeShards is the arena free-list shard count (rounded down to a
	// power of two, capped at MaxFreeShards). 0 picks DefaultFreeShards;
	// negative forces a single shard — the pre-sharding layout.
	FreeShards int
	// CardBuffer sizes the per-mutator write-barrier card buffers, flushed
	// at fence handshakes and safepoints. 0 picks the default (64);
	// negative disables buffering (every barrier dirties the table).
	CardBuffer int
}

// PacingOptions groups the pacing-policy selection. At most one policy runs
// a given engine: the SLO controller when SLO has a target, else the plain
// Section 3 formula when Pacing is set, else none (cycles start on the idle
// timer).
type PacingOptions struct {
	// Pacing enables the Section 3 pacer (nil disables). With pacing on,
	// cycles start when the kickoff formula fires instead of on the idle
	// timer, mutators pay a tracing tax at every allocation-cache refill
	// (IncrementBudget, repaid by draining work packets inline before the
	// refill returns), and background tracers report through
	// NoteBackgroundWork so Best discounts them. The pacing word unit for
	// this backend is one heap object.
	Pacing *pacing.Config

	// SLO selects the latency-feedback policy (pacing.SLOPolicy) when its
	// Target is set: the Section 3 formula stays the safety floor (taken
	// from SLO.Formula if nonzero, else from Pacing, else the defaults) and
	// the controller trades collector CPU for request tail latency against
	// the target. Feed the policy latency windows via
	// Engine.PacingPolicy() / pacing.LatencyObserver.
	SLO *pacing.SLOConfig

	// DisableCollection runs the workload with the collector off: no
	// cycles, no pacing, no write-barrier marking work — allocation simply
	// consumes the arena. This is the cost-distillation baseline (Cai &
	// Blackburn): size the arena so the run never exhausts it, and the
	// delta against an identical collected run is the collector's real
	// cost. Pacing and SLO are ignored when set.
	DisableCollection bool
}

// LadderOptions groups the graceful-degradation ladder.
type LadderOptions struct {
	// Ladder configures the graceful-degradation ladder (see degrade.go):
	// allocation backpressure on heap exhaustion and emergency STW
	// collection when backpressure fails. Disabled by default — the zero
	// value keeps the historical fail-fast allocation behavior.
	Ladder LadderConfig
}

// FaultOptions groups fault injection and the watchdog that catches what
// the faults wedge.
type FaultOptions struct {
	// Faults is an optional fault-injection plan (nil disables). Its points
	// are threaded through the engine, the packet pool and the card table.
	Faults *faultinject.Plan

	// WedgeTimeout is how long tracing may make zero progress mid-cycle
	// before the watchdog declares the cycle wedged, dumps diagnostics and
	// aborts the run. It must exceed any injected stall delay.
	WedgeTimeout time.Duration
}

// ObserveOptions groups the driver-owned telemetry sinks.
type ObserveOptions struct {
	// Reg and TL are optional driver-owned telemetry (nil disables; both
	// are nil-safe). Accounting ledgers arm when either is set or a fault
	// plan is.
	Reg *telemetry.Registry
	TL  *telemetry.Timeline
}

// Config sizes one live-engine run. Zero fields take the defaults below.
// The knobs beyond the core workload shape live in embedded option groups
// (sharding, pacing, ladder, faults, observation); their fields are
// promoted, so cfg.LocalCache and friends read and assign exactly as
// before — only composite literals name the group. Validate checks the
// whole config with one error vocabulary; the With* constructors build the
// groups field-by-field for callers that predate them.
type Config struct {
	Objects         int // arena size in objects
	RefsPerObject   int // reference slots per object
	RootsPerMutator int // root slots per mutator goroutine

	Mutators  int // mutator goroutines
	Tracers   int // dedicated tracing goroutines
	BgTracers int // low-priority (throttled) tracing goroutines

	// ExtMutators is the number of externally driven mutators: the engine
	// builds their per-mutator state (roots, allocation cache, card buffer,
	// tax ledger) but spawns no goroutine for them. The caller obtains a
	// handle per slot via ExtMutator and drives it from its own goroutine —
	// the server workload's request handlers are mutators of this heap. Every
	// external mutator counts toward safepoints and fence handshakes from the
	// moment Run starts, so each one must be actively polled (Mut.Poll) for
	// the whole run and retired (Mut.Retire) once ShuttingDown reports true;
	// Run does not return until all of them have retired.
	ExtMutators int

	Packets   int // work packet count (small values force overflow)
	PacketCap int // entries per packet

	AllocBatch int // allocation-bit publication batch (Section 5.2)
	CardPasses int // concurrent cleaning passes per cycle (Section 5.3)

	Duration   time.Duration // total run length (the last cycle may overrun)
	IdlePeriod time.Duration // mutator-only churn between cycles
	BgThrottle time.Duration // sleep between background-tracer packets

	Seed  int64
	Shape string // workload shape: "mixed", "churn" or "pointer"

	ShardingOptions
	PacingOptions
	LadderOptions
	FaultOptions
	ObserveOptions
}

// WithSharding returns a copy of c with the sharding knobs set.
func (c Config) WithSharding(localCache, freeShards, cardBuffer int) Config {
	c.ShardingOptions = ShardingOptions{LocalCache: localCache, FreeShards: freeShards, CardBuffer: cardBuffer}
	return c
}

// WithFormulaPacing returns a copy of c paced by the Section 3 formula. An
// SLO target set by WithSLOPacing survives (and wins: the formula becomes
// its floor), so the two constructors compose in either order.
func (c Config) WithFormulaPacing(pc pacing.Config) Config {
	c.PacingOptions.Pacing = &pc
	return c
}

// WithSLOPacing returns a copy of c paced by the SLO controller.
func (c Config) WithSLOPacing(sc pacing.SLOConfig) Config {
	c.PacingOptions.SLO = &sc
	return c
}

// WithLadder returns a copy of c with the degradation ladder configured.
func (c Config) WithLadder(l LadderConfig) Config {
	c.LadderOptions = LadderOptions{Ladder: l}
	return c
}

// WithFaults returns a copy of c with the fault plan and watchdog set.
func (c Config) WithFaults(plan *faultinject.Plan, wedgeTimeout time.Duration) Config {
	c.FaultOptions = FaultOptions{Faults: plan, WedgeTimeout: wedgeTimeout}
	return c
}

// WithSinks returns a copy of c with the telemetry sinks attached.
func (c Config) WithSinks(reg *telemetry.Registry, tl *telemetry.Timeline) Config {
	c.ObserveOptions = ObserveOptions{Reg: reg, TL: tl}
	return c
}

// pacingEnabled reports whether this run paces allocation at all: some
// policy is configured and collection is not disabled.
func (c Config) pacingEnabled() bool {
	return !c.DisableCollection && (c.Pacing != nil || (c.SLO != nil && c.SLO.Target > 0))
}

// cfgErr builds one entry of the config error vocabulary: every problem
// Validate reports reads "live: config: <field>: <problem>".
func cfgErr(field, format string, args ...any) error {
	return fmt.Errorf("live: config: %s: %s", field, fmt.Sprintf(format, args...))
}

// Validate checks the whole configuration — core shape and every option
// group — in one pass and returns every problem found, joined. It validates
// the config as given; defaults are applied afterwards, so zero values that
// mean "pick the default" are legal.
func (c Config) Validate() error {
	var errs []error
	bad := func(field, format string, args ...any) {
		errs = append(errs, cfgErr(field, format, args...))
	}
	if c.Objects < 0 {
		bad("Objects", "negative arena size %d", c.Objects)
	}
	if c.RefsPerObject < 0 {
		bad("RefsPerObject", "negative slot count %d", c.RefsPerObject)
	}
	if c.Mutators < 0 {
		bad("Mutators", "negative count %d", c.Mutators)
	}
	if c.ExtMutators < 0 {
		bad("ExtMutators", "negative count %d", c.ExtMutators)
	}
	if c.Tracers < 0 {
		bad("Tracers", "negative count %d", c.Tracers)
	}
	if c.BgTracers < 0 {
		bad("BgTracers", "negative count %d", c.BgTracers)
	}
	if c.Packets < 0 {
		bad("Packets", "negative count %d", c.Packets)
	}
	if c.PacketCap < 0 {
		bad("PacketCap", "negative capacity %d", c.PacketCap)
	}
	if c.CardPasses < 0 {
		bad("CardPasses", "negative pass count %d", c.CardPasses)
	}
	if c.Duration < 0 {
		bad("Duration", "negative run length %v", c.Duration)
	}
	if c.Pacing != nil && c.Pacing.K0 <= 0 {
		bad("Pacing.K0", "tracing rate must be positive, got %g", c.Pacing.K0)
	}
	if c.SLO != nil {
		if c.SLO.Target < 0 {
			bad("SLO.Target", "negative latency target %v", c.SLO.Target)
		}
		if c.SLO.FloorK < 0 || c.SLO.FloorK > 1 {
			bad("SLO.FloorK", "tax floor must be in (0,1], got %g", c.SLO.FloorK)
		}
		if c.SLO.BgMin < 0 || c.SLO.BgMax < 0 || (c.SLO.BgMax > 0 && c.SLO.BgMin > c.SLO.BgMax) {
			bad("SLO.BgMin", "throttle-factor bounds [%g,%g] are not an interval", c.SLO.BgMin, c.SLO.BgMax)
		}
		if c.SLO.Alpha < 0 || c.SLO.Alpha > 1 {
			bad("SLO.Alpha", "smoothing factor must be in (0,1], got %g", c.SLO.Alpha)
		}
	}
	if c.WedgeTimeout < 0 {
		bad("WedgeTimeout", "negative timeout %v", c.WedgeTimeout)
	}
	return errors.Join(errs...)
}

func (c Config) withDefaults() Config {
	def := func(p *int, v int) {
		if *p == 0 {
			*p = v
		}
	}
	def(&c.Objects, 1<<15)
	def(&c.RefsPerObject, 4)
	def(&c.RootsPerMutator, 16)
	if c.Mutators == 0 && c.ExtMutators == 0 {
		// A run driven entirely by external mutators keeps Mutators at zero;
		// the synthetic-churn default only applies when nobody else mutates.
		c.Mutators = 4
	}
	def(&c.Tracers, 2)
	def(&c.Packets, 64)
	def(&c.PacketCap, 32)
	def(&c.AllocBatch, 16)
	def(&c.CardPasses, 2)
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.IdlePeriod == 0 {
		c.IdlePeriod = 2 * time.Millisecond
	}
	if c.BgThrottle == 0 {
		c.BgThrottle = 200 * time.Microsecond
	}
	if c.Shape == "" {
		c.Shape = "mixed"
	}
	if c.WedgeTimeout == 0 {
		c.WedgeTimeout = 5 * time.Second
	}
	c.Ladder = c.Ladder.withDefaults(c.AllocBatch)
	return c
}

// Engine runs the mostly-concurrent collector on a real shared heap with
// real goroutines. Construct with NewEngine, execute with Run.
type Engine struct {
	cfg   Config
	arena *Arena
	pool  *workpack.Pool

	// markingActive gates the write barrier and wakes the tracers. It only
	// changes while the world is stopped, so every mutator op sees a
	// consistent value for its whole duration.
	markingActive atomic.Bool
	shutdown      atomic.Bool

	// Safepoint machinery: stopFlag is the mutators' fast-path check;
	// stopWorld/parked/activeMuts are the slow path under mu.
	mu         sync.Mutex
	cond       *sync.Cond
	stopWorld  bool
	stopFlag   atomic.Bool
	parked     int
	activeMuts int

	// fenceEpoch implements the card-cleaning handshake (Section 5.3 step
	// 2): the driver bumps it, every mutator acknowledges with an atomic
	// store at its next op boundary (publishing its allocation batch while
	// at it), and the driver waits for all acknowledgements.
	fenceEpoch atomic.Int64

	// pacer is the pacing policy behind its serialization gate; nil when no
	// policy is configured (cycles then start on the idle timer) and when
	// collection is disabled.
	pacer *livePacer
	// bgTuner is the policy's background-throttle capability, when it has
	// one (the SLO controller): concurrency-safe by contract, read by the
	// background tracers without the pacer gate.
	bgTuner pacing.BgTuner

	// muts holds every mutator: indices [0,cfg.Mutators) run the synthetic
	// workload on engine goroutines; the rest are externally driven (Mut
	// handles). extWG tracks the external ones — Run cannot finish its
	// report until every handle has retired, because retirement is what
	// returns their allocation caches and flushes their card buffers.
	muts    []*mutator
	wg      sync.WaitGroup
	extWG   sync.WaitGroup
	start   time.Time
	stats   engineStats
	cardBuf []int

	// extraRoots are collector root blocks owned by external code (a server
	// store's per-shard bucket heads), registered via NewRootSet before Run.
	extraRoots []*RootSet
	running    atomic.Bool

	// localCap is the resolved per-worker packet cache capacity (0 when the
	// local tier is disabled); cardBufCap likewise for the write-barrier
	// card buffers.
	localCap   int
	cardBufCap int

	// fi holds the engine's resolved fault points (each nil when disabled).
	fi engineFaults

	// accounts holds the per-worker work-flow ledgers (nil when accounting
	// is off — no Reg, no TL, no fault plan).
	accounts []*workerAccount
	// cycleScanBase snapshots the scan counter at each cycle's STW init;
	// firstDoneNs is CAS-claimed by the first tracer that contributed scans
	// this cycle and then found the pool dry, and reset by the driver when
	// recirculation (deferred drains, card passes) hands work back. The gap
	// to the driver's TracingDone observation is the cycle's
	// termination-detection latency.
	cycleScanBase atomic.Int64
	firstDoneNs   atomic.Int64
	// cycleSeq increments at every mark kickoff; a tracer only charges an
	// idle nap to its ledger when the nap ends in the same cycle it began,
	// so naps straddling a phase boundary never bill non-mark time as idle.
	cycleSeq atomic.Int64
	// memPressure is set by mutators on allocation failure; the driver's
	// inter-cycle wait polls it and kicks off the next collection early
	// (trigger-collection-and-retry instead of spinning on a full heap).
	memPressure atomic.Bool
	// worldStopped tracks whether the driver currently holds the world at a
	// safepoint; only the driver touches it (the wedge abort path must know
	// whether to resume before shutting down).
	worldStopped bool

	// deg tracks the degradation-ladder state (rung, time-in-state, blocked
	// waiters, backpressure stall samples); see degrade.go. The escalation
	// counters below it are driver-only: consecutive starved pressured
	// cycles, and the backpressure-timeout watermark of the last check.
	deg            degTracker
	starvedCycles  int
	lastBPTimeouts int64
	lastFreed      int

	oracleMarks *oracleScratch
	report      Report
}

// engineFaults are the live-engine-level fault points, resolved once at
// construction. Nil pointers are individually disabled sites.
type engineFaults struct {
	tracerStall    *faultinject.Point
	fenceDelay     *faultinject.Point
	safepointStall *faultinject.Point
	bgStarve       *faultinject.Point
	allocFail      *faultinject.Point
	wedge          *faultinject.Point
	hoard          *faultinject.Point
	overload       *faultinject.Point
	emergencyStall *faultinject.Point
}

// NewEngine validates the config and builds the arena, pool and workers.
// An invalid config panics with the joined Validate error; callers that
// want the error instead should call Validate themselves first.
func NewEngine(cfg Config) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	if cfg.Mutators+cfg.ExtMutators < 1 {
		panic(cfgErr("Mutators", "need at least one mutator (internal or external)"))
	}
	if cfg.Tracers+cfg.BgTracers < 1 {
		panic(cfgErr("Tracers", "need at least one tracing goroutine"))
	}
	e := &Engine{
		cfg:   cfg,
		arena: NewArenaShards(cfg.Objects, cfg.RefsPerObject, cfg.FreeShards),
		pool:  workpack.NewPool(cfg.Packets, cfg.PacketCap),
	}
	e.cond = sync.NewCond(&e.mu)
	e.oracleMarks = newOracleScratch(cfg.Objects)
	if !cfg.DisableCollection {
		if pol := buildPolicy(cfg.Pacing, cfg.SLO, e.arena); pol != nil {
			e.pacer = newLivePacer(pol, e.arena)
			if bt, ok := pol.(pacing.BgTuner); ok {
				e.bgTuner = bt
			}
		}
	} else {
		// Pre-fault the ref-slot pages now, at construction time. The
		// distillation baseline allocates linearly through an arena many
		// times the real run's, and first-touch page faults inside the
		// measured window would charge the baseline CPU the collector
		// doesn't owe (and add run-to-run noise that can push the distilled
		// overhead negative). One store per 4KiB page is enough.
		for i := 0; i < len(e.arena.slots); i += 1024 {
			e.arena.slots[i].Store(0)
		}
	}
	e.localCap = resolveLocalCache(cfg)
	e.cardBufCap = cfg.CardBuffer
	if e.cardBufCap == 0 {
		e.cardBufCap = 64
	}
	if e.cardBufCap < 0 {
		e.cardBufCap = 0
	}
	if pl := cfg.Faults; pl != nil {
		e.pool.InjectFaults(&workpack.PoolFaults{
			CAS:         pl.Point(faultinject.PoolCAS),
			Exhaust:     pl.Point(faultinject.PoolExhaust),
			GetStall:    pl.Point(faultinject.PoolGetStall),
			PutStall:    pl.Point(faultinject.PoolPutStall),
			DeferStall:  pl.Point(faultinject.PoolDeferStall),
			LocalSpill:  pl.Point(faultinject.PoolLocalSpill),
			StealMiss:   pl.Point(faultinject.PoolStealMiss),
			RefillStall: pl.Point(faultinject.PoolRefillStall),
		})
		e.arena.Cards.InjectCleanFault(pl.Point(faultinject.CardCleanStall))
		e.fi = engineFaults{
			tracerStall:    pl.Point(faultinject.LiveTracerStall),
			fenceDelay:     pl.Point(faultinject.LiveFenceDelay),
			safepointStall: pl.Point(faultinject.LiveSafepointStall),
			bgStarve:       pl.Point(faultinject.LiveBgStarve),
			allocFail:      pl.Point(faultinject.LiveAllocFail),
			wedge:          pl.Point(faultinject.LiveWedge),
			hoard:          pl.Point(faultinject.PoolHoard),
			overload:       pl.Point(faultinject.LiveOverload),
			emergencyStall: pl.Point(faultinject.LiveEmergencyStall),
		}
	}
	e.setupAccounting()
	for i := 0; i < cfg.Mutators+cfg.ExtMutators; i++ {
		e.muts = append(e.muts, newMutator(e, i))
	}
	e.extWG.Add(cfg.ExtMutators)
	return e
}

// resolveLocalCache turns Config.LocalCache into the per-worker cache
// capacity: negative disables the local tier, zero picks the default, and
// the result is clamped so the workers' empty caches together cannot park
// more than half the pool (a floor of one packet keeps tiny chaos configs
// exercising the tier — worst case they hoard like an exhausted pool, a
// degradation the overflow paths already survive).
func resolveLocalCache(cfg Config) int {
	if cfg.LocalCache < 0 {
		return 0
	}
	c := cfg.LocalCache
	if c == 0 {
		c = workpack.DefaultLocalCache
	}
	workers := cfg.Tracers + cfg.BgTracers
	if cfg.pacingEnabled() {
		workers += cfg.Mutators + cfg.ExtMutators
	}
	if workers > 0 {
		if lim := cfg.Packets / (2 * workers); c > lim {
			c = lim
		}
	}
	if c < 1 {
		c = 1
	}
	return c
}

// Arena exposes the engine's heap (tests inspect it after Run).
func (e *Engine) Arena() *Arena { return e.arena }

// Pool exposes the engine's work packet pool.
func (e *Engine) Pool() *workpack.Pool { return e.pool }

// PacingPolicy exposes the run's pacing policy (nil when pacing is off),
// for capability probing: a server workload asserts pacing.LatencyObserver
// on it and feeds latency windows in live. The protocol methods stay behind
// the engine's gate — callers may only use the concurrency-safe capability
// interfaces.
func (e *Engine) PacingPolicy() pacing.Policy {
	if e.pacer == nil {
		return nil
	}
	return e.pacer.policy()
}

func (e *Engine) now() int64 { return time.Since(e.start).Nanoseconds() }

// Run executes the workload for cfg.Duration — collection cycles separated
// by mutator-only idle periods — then shuts every goroutine down and
// returns the report. Run blocks; it is not reentrant.
func (e *Engine) Run() Report {
	e.start = time.Now()
	e.running.Store(true)
	e.setupTelemetry()

	e.mu.Lock()
	e.activeMuts = len(e.muts)
	e.mu.Unlock()
	// External mutators (indices past cfg.Mutators) are counted in activeMuts
	// but driven by caller goroutines, which must already be polling.
	for _, m := range e.muts[:e.cfg.Mutators] {
		e.wg.Add(1)
		go m.run()
	}
	for i := 0; i < e.cfg.Tracers; i++ {
		e.wg.Add(1)
		go e.traceLoop(i, false)
	}
	for i := 0; i < e.cfg.BgTracers; i++ {
		e.wg.Add(1)
		go e.traceLoop(e.cfg.Tracers+i, true)
	}

	deadline := e.start.Add(e.cfg.Duration)
	if e.cfg.DisableCollection {
		// Distillation baseline: the collector never runs. Mutators churn
		// uninterrupted until the deadline; allocation pressure has nothing
		// to kick, so idleWait's early return just re-enters the wait.
		for !time.Now().After(deadline) {
			e.idleWait()
		}
		e.shutdown.Store(true)
		e.wg.Wait()
		e.extWG.Wait()
		e.finishReport()
		return e.report
	}
	for {
		if !e.runCycle() {
			// Wedged: the watchdog already resumed the world, recorded the
			// diagnosis and shut the workers down.
			e.finishReport()
			return e.report
		}
		// Rung 2 of the degradation ladder: if backpressure waits timed out
		// or pressured cycles keep freeing next to nothing, fall back to a
		// synchronous full STW collection before resuming normal cadence.
		if e.escalationCheck(e.lastFreed) && !e.runEmergencyCycle() {
			e.finishReport()
			return e.report
		}
		if time.Now().After(deadline) {
			break
		}
		if e.pacer != nil {
			e.kickoffWait(deadline)
		} else {
			e.idleWait()
		}
	}

	e.shutdown.Store(true)
	e.wg.Wait()
	// External mutators retire themselves once they observe ShuttingDown;
	// their caches and card buffers are only accounted for after Retire.
	e.extWG.Wait()
	e.finishReport()
	return e.report
}

// idleWait is the mutator-only churn window between cycles. Allocation
// failure anywhere cuts it short: a mutator that found the free list empty
// has signalled memPressure, and the right response is to start collecting,
// not to keep churning on a full heap.
func (e *Engine) idleWait() {
	deadline := time.Now().Add(e.cfg.IdlePeriod)
	for {
		if e.memPressure.Swap(false) {
			e.stats.pressureKicks.Add(1)
			return
		}
		if !time.Now().Before(deadline) {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// kickoffWait replaces the fixed idle timer when pacing is enabled: the
// mutators churn until the kickoff formula fires (free < (L+M)/K0).
// Allocation pressure still preempts the formula — a mutator that found the
// free list empty must not wait for a threshold crossing that effectively
// already happened — and the run deadline bounds the wait on workloads that
// never fill the heap.
func (e *Engine) kickoffWait(deadline time.Time) {
	for {
		if e.memPressure.Swap(false) {
			e.stats.pressureKicks.Add(1)
			return
		}
		if e.pacer.kickoff(e.now()) {
			e.stats.kickoffs.Add(1)
			return
		}
		if !time.Now().Before(deadline) {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// runCycle is one full collection: STW init (clear marks, scan roots), the
// concurrent mark phase with card-cleaning passes and deferred drains, the
// STW final phase (closure, oracle, garbage collection), then concurrent
// sweep of the garbage back onto the free list. It reports false when the
// termination watchdog declared the cycle wedged and aborted the run.
func (e *Engine) runCycle() bool {
	drv := workpack.NewTracer(e.pool)
	cycleStart := e.now()

	var cleanedAtStart int64
	if e.pacer != nil {
		e.samplePacingKickoff(cycleStart)
		e.pacer.startCycle()
		cleanedAtStart = e.arena.Cards.AtomicStats.CardsCleaned.Load()
	}

	// --- STW init: snapshot the roots under a stopped world. ---
	e.stopTheWorld()
	initStart := e.now()
	e.arena.Mark.ClearAll()
	e.arena.Cards.RegisterAndClearAtomic(e.cardBuf[:0]) // drop stale dirt
	e.cycleScanBase.Store(e.stats.scans.Load())
	e.firstDoneNs.Store(0)
	activeStart := e.now()
	e.cycleSeq.Add(1)
	e.markingActive.Store(true)
	e.scanRoots(drv)
	drv.Release()
	initEnd := e.now()
	e.resumeWorld()
	e.noteSTW(initStart, initEnd)
	e.span("stw.init", initStart, initEnd)

	// --- Concurrent mark: tracers drain the pool while mutators run. ---
	passes := 0
	stall := time.Duration(0)
	watch := e.newWedgeWatch()
	for {
		if !e.pool.DeferredEmpty() {
			e.pool.DrainDeferred()
			e.stats.deferredDrains.Add(1)
			// Recirculated work re-opens the cycle: the next dry spell is a
			// fresh termination-detection interval.
			e.firstDoneNs.Store(0)
		}
		if e.pool.TracingDone() && e.pool.DeferredEmpty() {
			if passes >= e.cfg.CardPasses {
				break
			}
			// "As late as possible": clean cards only once tracing has
			// drained, so each pass catches the most mutation.
			passStart := e.now()
			cleaned, ok := e.cardPassConcurrent(drv)
			if !ok {
				e.abortWedged(drv, "card-pass fence handshake")
				return false
			}
			if cleaned {
				e.span("card.pass", passStart, e.now())
				e.firstDoneNs.Store(0)
			}
			passes++
			continue
		}
		time.Sleep(50 * time.Microsecond)
		if watch.stalled() {
			e.abortWedged(drv, "concurrent mark")
			return false
		}
		// If tracing stalls on deferred objects whose allocation batches
		// have not filled, a handshake forces every mutator to publish.
		if stall += 50 * time.Microsecond; stall >= time.Millisecond {
			if !e.forceFences() {
				e.abortWedged(drv, "mark-phase fence handshake")
				return false
			}
			stall = 0
		}
	}
	markEnd := e.now()
	e.stats.markNs.Add(markEnd - initEnd)
	e.span("mark.concurrent", initEnd, markEnd)
	e.noteTermLatency(markEnd)
	e.flushWorkerCycle(cycleStart, markEnd)

	// --- STW final: close the mark, run the oracle, collect garbage. ---
	e.stopTheWorld()
	finalStart := e.now()
	if !e.closeMark(drv) {
		e.abortWedged(drv, "final marking phase")
		return false
	}
	res := e.runOracle()
	toFree := e.collectGarbage()
	e.checkFreeConservation(len(toFree))
	e.lastFreed = len(toFree)
	e.markingActive.Store(false)
	e.stats.activeNs.Add(e.now() - activeStart)
	finalEnd := e.now()
	e.resumeWorld()
	e.noteSTW(finalStart, finalEnd)
	e.span("stw.final", finalStart, finalEnd)
	e.span("oracle", finalStart, finalEnd)

	// --- Concurrent sweep: garbage is unreachable, so zeroing and
	// free-listing it races with nothing. The batch push costs one CAS per
	// free-list shard instead of one per object. ---
	for _, obj := range toFree {
		e.arena.ZeroSlots(obj)
	}
	e.arena.PushFreeAll(toFree)
	e.stats.objectsFreed.Add(int64(len(toFree)))
	sweepEnd := e.now()
	e.stats.sweepNs.Add(sweepEnd - finalEnd)
	e.span("sweep", finalEnd, sweepEnd)
	e.span("cycle", cycleStart, sweepEnd)
	e.noteCycle(res, len(toFree), sweepEnd)
	if e.pacer != nil {
		// Feed the predictors the cycle's actuals, mirroring the simulator
		// backend: L learns the traced volume, M the dirty-card volume
		// (cleaned cards times the card's object span).
		cleaned := e.arena.Cards.AtomicStats.CardsCleaned.Load() - cleanedAtStart
		e.pacer.endCycle(cleaned * cardtable.CardWords)
	}
	return true
}

// closeMark reaches the marking fixpoint with the world stopped: caches are
// already published (mutators publish as they park), so deferred work, the
// remaining dirty cards and the roots are drained in rounds until nothing
// moves. Registration needs no mutator fence here — the world is stopped.
// It reports false when the fixpoint made no progress for the wedge
// deadline (e.g. a tracer holding a packet hostage keeps TracingDone false
// forever); the caller aborts via the watchdog instead of hanging CI.
func (e *Engine) closeMark(drv *workpack.Tracer) bool {
	watch := e.newWedgeWatch()
	for {
		work := false
		if e.pool.DrainDeferred() > 0 {
			work = true
		}
		e.cardBuf = e.arena.Cards.RegisterAndClearAtomic(e.cardBuf[:0])
		if len(e.cardBuf) > 0 {
			work = true
			for _, c := range e.cardBuf {
				e.rescanCard(c, drv)
			}
			e.arena.Cards.NoteCleanedAtomic(len(e.cardBuf))
		}
		e.scanRoots(drv)
		drv.Release()
		if !e.pool.TracingDone() || !e.pool.DeferredEmpty() {
			// Tracers are still running during the pause; let them drain —
			// but not forever.
			if watch.stalled() {
				return false
			}
			time.Sleep(20 * time.Microsecond)
			continue
		}
		if !work && e.arena.Cards.CountDirtyAtomic() == 0 {
			return true
		}
	}
}

// cardPassConcurrent is the three-step cleaning protocol of Section 5.3
// against running mutators: register-and-clear the dirty indicators, force
// every mutator through one fence, then rescan marked objects on the
// registered cards. cleaned is false when there was nothing to clean; ok is
// false when the fence handshake timed out (the run is wedged — a registered
// card must not be rescanned without its fence).
func (e *Engine) cardPassConcurrent(drv *workpack.Tracer) (cleaned, ok bool) {
	e.cardBuf = e.arena.Cards.RegisterAndClearAtomic(e.cardBuf[:0]) // step 1
	if len(e.cardBuf) == 0 {
		return false, true
	}
	if !e.forceFences() { // step 2
		return false, false
	}
	for _, c := range e.cardBuf {
		e.rescanCard(c, drv) // step 3
	}
	e.arena.Cards.NoteCleanedAtomic(len(e.cardBuf))
	drv.Release()
	e.stats.cardPasses.Add(1)
	return true, true
}

// rescanCard retraces the marked objects on one registered card. Unmarked
// objects are skipped: they are either garbage or will be scanned with
// fresh slot values when tracing reaches them. A marked object whose
// allocation bits are not yet visible cannot be scanned; its card is
// re-dirtied so a later pass (at the latest, the STW final phase, after
// every cache has published) retries.
func (e *Engine) rescanCard(card int, tr *workpack.Tracer) {
	from, to := e.arena.CardRange(card)
	for a := from; a < to; a++ {
		if !e.arena.Mark.TestAcquire(int(a)) {
			continue
		}
		if !e.arena.Alloc.TestAcquire(int(a)) {
			e.arena.Cards.DirtyCardAtomic(card)
			e.stats.rescanRedirty.Add(1)
			continue
		}
		for j := 0; j < e.arena.refsPer; j++ {
			if c := e.arena.LoadRef(a, j); c != heapsim.Nil {
				e.markAndPush(c, tr)
			}
		}
		e.stats.rescans.Add(1)
	}
}

// scanRoots marks and pushes every current root of every mutator. During
// STW init this is the snapshot the cycle traces from; in the final phase
// it is the root rescan that closes the cycle (marking is monotone, so
// repeated scans are cheap no-ops).
func (e *Engine) scanRoots(tr *workpack.Tracer) {
	for _, m := range e.muts {
		for i := range m.roots {
			if c := heapsim.Addr(m.roots[i].Load()); c != heapsim.Nil {
				e.markAndPush(c, tr)
			}
		}
	}
	for _, rs := range e.extraRoots {
		for i := range rs.slots {
			if c := heapsim.Addr(rs.slots[i].Load()); c != heapsim.Nil {
				e.markAndPush(c, tr)
			}
		}
	}
}

// scanObject traces one grey object popped from the pool. If the object's
// allocation bits are not yet visible (Section 5.2) it is deferred instead
// of scanned; if even the deferred packet is unavailable, its card is
// dirtied so the cleaning protocol retries it. It reports whether the
// object was actually scanned, so the caller — a dedicated tracer, a
// background tracer or a mutator paying its allocation tax — can attribute
// the work to exactly one party; the per-party word counters summed must
// equal scans times the per-object slot count.
func (e *Engine) scanObject(a heapsim.Addr, tr *workpack.Tracer) bool {
	if !e.arena.Alloc.TestAcquire(int(a)) {
		e.stats.deferred.Add(1)
		if !tr.PushDeferred(a) {
			e.arena.Cards.DirtyCardAtomic(e.arena.Cards.CardOf(a))
			e.stats.deferOverflows.Add(1)
		}
		return false
	}
	for j := 0; j < e.arena.refsPer; j++ {
		if c := e.arena.LoadRef(a, j); c != heapsim.Nil {
			e.markAndPush(c, tr)
		}
	}
	e.stats.scans.Add(1)
	return true
}

// payAllocTax implements the incremental half of Section 3 for the live
// backend: the refilling mutator asks the pacer for a tracing budget
// proportional to its allocation (K objects traced per object allocated)
// and repays it by draining work packets inline before the refill returns.
// Only the budget decision takes the pacer gate; the scanning itself runs
// lock-free against the shared pool like any tracer's. A budget the pool
// cannot cover (tracing already drained) is simply underpaid — EndIncrement
// reports what was done and the progress formula compensates.
func (e *Engine) payAllocTax(m *mutator, allocObjs int64) {
	b := e.pacer.incrementBudget(e.now(), allocObjs)
	var done int64
	if b.Words > 0 {
		var tr *workpack.Tracer
		if m.local != nil {
			tr = workpack.NewLocalTracer(m.local)
		} else {
			tr = workpack.NewTracer(e.pool)
		}
		led := e.mutatorLedger(m.id)
		tr.SetLedger(led)
		for done < b.Words {
			a, ok := tr.Pop()
			if !ok {
				break
			}
			if e.scanObject(a, tr) {
				led.NoteTraced(int64(e.arena.refsPer))
				e.stats.traceMutatorWords.Add(int64(e.arena.refsPer))
				done++
			}
		}
		tr.Release()
	}
	e.pacer.endIncrement(done)
	e.stats.pacedIncrements.Add(1)
}

// markAndPush claims an object with one atomic fetch-or and queues it for
// scanning. On packet overflow (both packets full, pool exhausted) it
// degrades per Section 4.3: the mark stands and the object's card is
// dirtied so a cleaning pass rescans it.
func (e *Engine) markAndPush(c heapsim.Addr, tr *workpack.Tracer) {
	if !e.arena.Mark.TestAndSetAtomic(int(c)) {
		return
	}
	e.stats.marks.Add(1)
	if !tr.Push(c) {
		e.arena.Cards.DirtyCardAtomic(e.arena.Cards.CardOf(c))
		e.stats.overflows.Add(1)
	}
}

// stopTheWorld requests a safepoint and blocks until every live mutator has
// parked (publishing its allocation batch on the way in). Tracers are never
// parked — they are the collector.
func (e *Engine) stopTheWorld() {
	e.mu.Lock()
	e.stopWorld = true
	e.stopFlag.Store(true)
	for e.parked < e.activeMuts {
		e.cond.Wait()
	}
	e.mu.Unlock()
	e.worldStopped = true
}

// resumeWorld releases the parked mutators.
func (e *Engine) resumeWorld() {
	e.worldStopped = false
	e.mu.Lock()
	e.stopWorld = false
	e.stopFlag.Store(false)
	e.cond.Broadcast()
	e.mu.Unlock()
}

// forceFences drives every mutator through one synchronization point: the
// driver bumps the epoch and spins until each live mutator has stored an
// acknowledgement (a release store the handshake counts as the one forced
// fence per mutator of Section 5.3). It reports false when some mutator
// failed to acknowledge within the wedge deadline — a registered card set
// must not be rescanned on the strength of a fence that never happened.
func (e *Engine) forceFences() bool {
	epoch := e.fenceEpoch.Add(1)
	deadline := time.Now().Add(e.cfg.WedgeTimeout)
	for _, m := range e.muts {
		for spins := 0; m.ackEpoch.Load() < epoch && !m.exited.Load(); spins++ {
			runtime.Gosched()
			// Check the clock only every so often: the handshake usually
			// completes in microseconds and time.Now is not free.
			if spins&1023 == 1023 && time.Now().After(deadline) {
				return false
			}
		}
	}
	return true
}

// traceLoop is one tracing goroutine. Background tracers throttle between
// packets, modelling the paper's low-priority threads that cede the
// processor to mutators.
func (e *Engine) traceLoop(id int, bg bool) {
	defer e.wg.Done()
	var lp *workpack.LocalPool
	var tr *workpack.Tracer
	if e.localCap > 0 {
		lp = e.pool.NewLocal(e.localCap)
		tr = workpack.NewLocalTracer(lp)
	} else {
		tr = workpack.NewTracer(e.pool)
	}
	led := e.tracerLedger(id)
	tr.SetLedger(led)
	if e.fi.hoard != nil && id == 0 && !bg {
		// The hoard fault elects the first dedicated tracer: one asymmetric
		// worker is what skews the balance; all of them hoarding is just a
		// smaller pool.
		tr.InjectHoard(e.fi.hoard)
	}
	for !e.shutdown.Load() {
		idle := 20 * time.Microsecond
		if bg {
			idle = e.bgSleep(e.cfg.BgThrottle)
		}
		if !e.markingActive.Load() {
			time.Sleep(100 * time.Microsecond)
			continue
		}
		if bg && e.fi.bgStarve.Fire() {
			// Starved background tracer: the scheduler never gives it a
			// slice while marking is active. Dedicated tracers must finish
			// the cycle without it.
			time.Sleep(max(e.fi.bgStarve.Delay(), e.cfg.BgThrottle))
			continue
		}
		if e.fi.wedge.Fire() {
			// A wedged tracer: it holds whatever packets it has checked out
			// and makes no progress until shutdown. This is the watchdog's
			// reason to exist — TracingDone stays false forever.
			for !e.shutdown.Load() {
				time.Sleep(100 * time.Microsecond)
			}
			break
		}
		a, ok := tr.Pop()
		if !ok {
			// Get-before-return already happened inside Pop; releasing
			// here is what lets TracingDone observe quiescence.
			tr.Release()
			if led != nil {
				// A tracer that already contributed scans this cycle and now
				// finds the pool dry stamps the termination clock: the gap to
				// the driver's TracingDone observation is the cycle's
				// detection latency.
				if e.markingActive.Load() && e.stats.scans.Load() > e.cycleScanBase.Load() {
					e.firstDoneNs.CompareAndSwap(0, e.now())
				}
				seq := e.cycleSeq.Load()
				idleStart := time.Now()
				time.Sleep(idle)
				// Only charge the nap if it ended inside the cycle it began:
				// the last nap of a phase straddles the boundary, and on an
				// oversubscribed box the late wake-up would bill the whole
				// STW final and sweep (or the inter-cycle gap) as tracer
				// idle, pushing the idle fraction past 100%.
				if e.markingActive.Load() && e.cycleSeq.Load() == seq {
					led.NoteIdle(time.Since(idleStart).Nanoseconds())
				}
			} else {
				time.Sleep(idle)
			}
			continue
		}
		e.fi.tracerStall.Stall()
		if e.scanObject(a, tr) {
			words := int64(e.arena.refsPer)
			led.NoteTraced(words)
			if bg {
				e.stats.traceBgWords.Add(words)
				if e.pacer != nil {
					e.pacer.noteBackground(1)
				}
			} else {
				e.stats.traceDedicatedWords.Add(words)
				if e.pacer != nil {
					e.pacer.noteTraced(1)
				}
			}
		}
		if bg {
			time.Sleep(e.bgSleep(e.cfg.BgThrottle / 4))
		}
	}
	// Every exit path — normal shutdown or a wedge abort — returns the
	// held packets, drains any hoard the fault built up, and spills the
	// whole local cache, so post-run quiescence checks account for every
	// packet in the global pool.
	tr.Release()
	tr.DrainHoard()
	if lp != nil {
		lp.Flush()
	}
}

// bgSleep scales a background-tracer sleep by the policy's throttle factor
// when the policy has one (the SLO controller): a factor under 1 runs the
// background tracers hotter, over 1 parks them longer. The factor is read
// lock-free — BgTuner is concurrency-safe by contract.
func (e *Engine) bgSleep(base time.Duration) time.Duration {
	if e.bgTuner == nil {
		return base
	}
	f := e.bgTuner.BgThrottleFactor()
	if f <= 0 || f == 1 {
		return base
	}
	return time.Duration(float64(base) * f)
}

// checkFreeConservation verifies, with the world stopped at the end of a
// cycle's STW final phase, that every arena object is in exactly one place:
// on a free-list shard, in the garbage batch about to be swept, published
// (alloc bit set), or parked in a mutator's allocation cache. Mutator caches
// are safe to read — their owners parked under mu after their last write —
// and pending batches are empty because every mutator publishes on the way
// into the safepoint. A mismatch means a shard lost or duplicated objects
// and is reported as an oracle violation.
func (e *Engine) checkFreeConservation(pendingFree int) {
	free := e.arena.FreeLen()
	allocated := int64(e.arena.Alloc.Count())
	var cached int64
	for _, m := range e.muts {
		cached += int64(len(m.cache))
	}
	got := free + int64(pendingFree) + allocated + cached
	if got != int64(e.arena.numObjects) {
		e.violation(
			"cycle %d: free-list conservation: free %d + pending %d + allocated %d + cached %d = %d, want %d",
			e.report.Cycles, free, pendingFree, allocated, cached, got, e.arena.numObjects)
	}
}

// newRNG hands each worker an independent deterministic stream.
func (e *Engine) newRNG(id int) *rand.Rand {
	return rand.New(rand.NewSource(e.cfg.Seed*1_000_003 + int64(id)))
}

package live

import (
	"strings"
	"testing"
	"time"

	"mcgc/internal/faultinject"
)

// chaosConfig is the shared baseline for the fault-matrix runs: small enough
// to finish quickly per class, shaped so every degradation path is in play.
func chaosConfig(plan *faultinject.Plan) Config {
	dur := 600 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	return Config{
		Objects:         1 << 13,
		RootsPerMutator: 48,
		Mutators:        3,
		Tracers:         2,
		BgTracers:       1,
		Packets:         12,
		PacketCap:       8,
		AllocBatch:      32,
		CardPasses:      2,
		Duration:        dur,
		Seed:            1,
		FaultOptions: FaultOptions{
			Faults:       plan,
			WedgeTimeout: 10 * time.Second, // fault stalls must not trip it
		},
	}
}

// TestChaosMatrix runs the collector once per fault class and asserts the
// STW oracle holds under each: injected exhaustion, stalls, contention and
// allocation failure may slow the cycle or grow floating garbage, but they
// must never lose a live object, break pool quiescence, or wedge. Each spec
// is also required to actually fire — a chaos run whose fault never triggers
// proves nothing.
func TestChaosMatrix(t *testing.T) {
	cases := []struct {
		name   string
		spec   string
		ladder *LadderConfig // non-nil arms the degradation ladder for the run
	}{
		{"overflow", "pool.exhaust=1/3", nil},
		{"cas-contention", "pool.cas=1/2", nil},
		{"get-put-stalls", "pool.getstall=1/8:50us,pool.putstall=1/8:50us", nil},
		{"deferral", "pool.deferstall=2:100us", nil},
		{"clean-race", "card.cleanstall=1/4:50us", nil},
		{"tracer-stall", "live.tracerstall=4:200us", nil},
		{"fence-stall", "live.fencedelay=3:300us", nil},
		{"safepoint-stall", "live.safepointstall=5:200us", nil},
		{"bg-starve", "live.bgstarve=on:1ms", nil},
		{"alloc-failure", "live.allocfail=1/2", nil},
		{"local-spill", "pool.localspill=1/2", nil},
		{"steal-miss", "pool.stealmiss=1/2", nil},
		{"hoard", "pool.hoard=on", nil},
		{"refill-stall", "pool.refillstall=1/4:50us", nil},
		{"jitter", "jitter=1/8", nil},
		{"everything", "pool.exhaust=1/5,pool.cas=1/4,card.cleanstall=1/8:20us,live.tracerstall=8:100us,live.allocfail=1/6,pool.localspill=1/6,pool.stealmiss=1/6,jitter=1/16", nil},
		// The overload classes run with the degradation ladder armed: the
		// amplifier must drive real backpressure, and the hair-trigger
		// escalation guarantees live.emergencystall gets an emergency pause to
		// fire in.
		{"overload", "live.overload=1/2",
			&LadderConfig{Enabled: true}},
		{"emergency-stall", "live.overload=on,live.emergencystall=on:100us",
			&LadderConfig{Enabled: true, BackpressureWait: 2 * time.Millisecond,
				EmergencyMinFree: 1 << 13, EmergencyAfter: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plan := faultinject.MustParse(tc.spec, 7)
			cfg := chaosConfig(plan)
			if tc.ladder != nil {
				cfg.Ladder = *tc.ladder
			}
			e := NewEngine(cfg)
			rep := e.Run()
			t.Logf("\n%s", rep)

			if rep.Wedged {
				t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
			}
			if rep.LostObjects != 0 {
				t.Errorf("oracle lost %d live objects under %q", rep.LostObjects, tc.spec)
			}
			for _, v := range rep.Violations {
				t.Errorf("oracle: %s", v)
			}
			if rep.Cycles < 1 {
				t.Error("no cycle completed")
			}
			if !e.Pool().TracingDone() || !e.Pool().DeferredEmpty() {
				t.Error("packet pool not quiescent after Run")
			}
			if got := e.Pool().EntriesInUse(); got != 0 {
				t.Errorf("%d packet entries still in flight after Run", got)
			}
			fired := false
			for _, p := range rep.Faults {
				if p.Explicit && p.Fires > 0 {
					fired = true
				}
				if p.Explicit && p.Fires == 0 && p.Name != faultinject.Jitter {
					t.Errorf("fault %s configured but never fired (%d hits)", p.Name, p.Hits)
				}
			}
			if !fired && tc.name != "jitter" {
				t.Error("no configured fault fired — the chaos run exercised nothing")
			}
			// The degradation counters must reconcile across layers: every
			// DirtyCardAtomic call is one of the engine's three degradations.
			if want := rep.Overflows + rep.DeferOverflows + rep.RescanRedirties; rep.DirectDirties != want {
				t.Errorf("card direct dirties %d != overflows %d + defer overflows %d + rescan redirties %d",
					rep.DirectDirties, rep.Overflows, rep.DeferOverflows, rep.RescanRedirties)
			}
		})
	}
}

// TestChaosDeterministicFires runs the same plan twice over the same
// workload and requires identical per-site hit/fire decisions wherever the
// hit count matches: the schedule may vary, the fault schedule may not.
func TestChaosDeterministicFires(t *testing.T) {
	run := func() []faultinject.PointStat {
		plan := faultinject.MustParse("pool.exhaust=1/3,live.allocfail=1/2", 42)
		cfg := chaosConfig(plan)
		cfg.Duration = 150 * time.Millisecond
		rep := NewEngine(cfg).Run()
		if rep.Wedged || rep.LostObjects != 0 {
			t.Fatalf("bad run: wedged=%t lost=%d", rep.Wedged, rep.LostObjects)
		}
		return rep.Faults
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("fault snapshots differ in length: %d vs %d", len(a), len(b))
	}
	// Exact hit counts vary with scheduling; the trigger function may not.
	// Re-evaluate both runs' decisions through a fresh plan and compare.
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("snapshot order differs: %s vs %s", a[i].Name, b[i].Name)
		}
		if a[i].Hits == b[i].Hits && a[i].Fires != b[i].Fires {
			t.Errorf("%s: same hits (%d) but fires %d vs %d — trigger not deterministic",
				a[i].Name, a[i].Hits, a[i].Fires, b[i].Fires)
		}
	}
}

// TestWatchdogCatchesWedge injects a total tracing wedge and requires the
// termination watchdog to abort the cycle with diagnostics — quickly, loudly
// and with the pool accounting intact — instead of hanging until the test
// binary's own timeout kills everything.
func TestWatchdogCatchesWedge(t *testing.T) {
	plan := faultinject.MustParse("live.wedge=on", 1)
	cfg := chaosConfig(plan)
	cfg.Duration = 30 * time.Second // the watchdog, not the clock, must end this
	cfg.WedgeTimeout = 300 * time.Millisecond

	e := NewEngine(cfg)
	done := make(chan Report, 1)
	go func() { done <- e.Run() }()

	var rep Report
	select {
	case rep = <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("watchdog did not fire: Run still blocked after 15s")
	}
	t.Logf("\n%s", rep)

	if !rep.Wedged {
		t.Fatal("run completed without tripping the watchdog despite live.wedge=on")
	}
	if rep.WedgeDiagnosis == "" {
		t.Error("wedged report carries no diagnosis")
	}
	for _, want := range []string{"WEDGED", "pool:", "trace:", "fence:", "cards:", "workers:", "live.wedge"} {
		if !strings.Contains(rep.WedgeDiagnosis, want) {
			t.Errorf("diagnosis missing %q:\n%s", want, rep.WedgeDiagnosis)
		}
	}
	// The abort path must still unwind cleanly: every goroutine joined and
	// every packet back in some sub-pool (wedged tracers release on
	// shutdown). Undrained entries legitimately remain — the wedge is the
	// reason they were never traced — so the check is packet conservation,
	// not TracingDone.
	occ := e.Pool().Occupancy()
	inPools := 0
	for _, n := range occ {
		inPools += n
	}
	if inPools != e.Pool().TotalPackets() {
		t.Errorf("only %d of %d packets back in the pool after wedge abort (occupancy %v)",
			inPools, e.Pool().TotalPackets(), occ)
	}
	ps := &e.Pool().Stats
	if gets, puts := ps.Gets.Load(), ps.Puts.Load(); gets != puts {
		t.Errorf("pool gets %d != puts %d after wedge abort — a packet leaked", gets, puts)
	}
}

// TestAllocFailureTriggersCollection wires injected allocation failure to the
// pacing response: mutators signal memory pressure, and the driver must cut
// idle periods short to collect early (PressureKicks > 0) rather than letting
// mutators spin on a heap the collector is in no hurry to sweep.
func TestAllocFailureTriggersCollection(t *testing.T) {
	plan := faultinject.MustParse("live.allocfail=1/2", 3)
	cfg := chaosConfig(plan)
	cfg.IdlePeriod = 50 * time.Millisecond // long enough that kicks are visible
	rep := NewEngine(cfg).Run()
	t.Logf("\n%s", rep)

	if rep.Wedged || rep.LostObjects != 0 {
		t.Fatalf("bad run: wedged=%t lost=%d", rep.Wedged, rep.LostObjects)
	}
	if rep.AllocFailed == 0 {
		t.Fatal("alloc failure injection never failed an allocation")
	}
	if rep.PressureKicks == 0 {
		t.Error("allocation failure never cut an idle period short")
	}
}

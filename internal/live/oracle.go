package live

import (
	"fmt"
	"strings"

	"mcgc/internal/bitvec"
	"mcgc/internal/heapsim"
)

// oracleScratch is the sequential marker's private state, reused across
// cycles. It is touched only by the driver, with the world stopped.
type oracleScratch struct {
	marks *bitvec.Vector
	stack []heapsim.Addr
}

func newOracleScratch(objects int) *oracleScratch {
	return &oracleScratch{marks: bitvec.New(objects + 1)}
}

// OracleResult is one cycle's ground-truth comparison.
type OracleResult struct {
	// Live is the number of objects reachable from the roots at the
	// closure point (the sequential mark).
	Live int
	// Floating is how many concurrently marked objects are unreachable —
	// garbage the cycle retains, exactly the paper's floating garbage.
	Floating int
	// Lost counts reachable objects the concurrent mark missed. Any
	// nonzero value is a collector bug: the object would have been swept.
	Lost int
}

// runOracle validates the concurrent mark against a sequential one. It runs
// in the STW final phase, after closeMark: mutators are parked (so the root
// arrays are the entire reachable frontier — mutators hold no references
// across safepoints) and tracing is quiescent. The concurrent mark set must
// be a superset of the sequential one; the difference is floating garbage.
// Violations are appended to the report (and counted in LostObjects).
func (e *Engine) runOracle() OracleResult {
	sc := e.oracleMarks
	sc.marks.ClearAll()
	sc.stack = sc.stack[:0]
	for _, m := range e.muts {
		for i := range m.roots {
			if c := heapsim.Addr(m.roots[i].Load()); c != heapsim.Nil && !sc.marks.Test(int(c)) {
				sc.marks.Set(int(c))
				sc.stack = append(sc.stack, c)
			}
		}
	}
	// External root blocks (a server store's live set) are ground truth too:
	// an object reachable only through a RootSet that the concurrent mark
	// missed is exactly the lost-object bug the oracle exists to catch.
	for _, rs := range e.extraRoots {
		for i := range rs.slots {
			if c := heapsim.Addr(rs.slots[i].Load()); c != heapsim.Nil && !sc.marks.Test(int(c)) {
				sc.marks.Set(int(c))
				sc.stack = append(sc.stack, c)
			}
		}
	}
	live := 0
	for len(sc.stack) > 0 {
		a := sc.stack[len(sc.stack)-1]
		sc.stack = sc.stack[:len(sc.stack)-1]
		live++
		for j := 0; j < e.arena.refsPer; j++ {
			if c := e.arena.LoadRef(a, j); c != heapsim.Nil && !sc.marks.Test(int(c)) {
				sc.marks.Set(int(c))
				sc.stack = append(sc.stack, c)
			}
		}
	}

	res := OracleResult{Live: live}
	hadViolations := len(e.report.Violations)
	for a := 1; a <= e.arena.numObjects; a++ {
		reachable := sc.marks.Test(a)
		marked := e.arena.Mark.Test(a)
		switch {
		case reachable && !marked:
			res.Lost++
			e.violation("cycle %d: live object %d not marked by concurrent trace (%s)",
				e.report.Cycles, a, e.describeObject(heapsim.Addr(a)))
		case reachable && !e.arena.Alloc.Test(a):
			e.violation("cycle %d: live object %d has no allocation bit (%s)",
				e.report.Cycles, a, e.describeObject(heapsim.Addr(a)))
		case marked && !reachable:
			res.Floating++
			if !e.arena.Alloc.Test(a) {
				e.violation("cycle %d: marked object %d has no allocation bit (%s)",
					e.report.Cycles, a, e.describeObject(heapsim.Addr(a)))
			}
		}
	}
	if len(e.report.Violations) > hadViolations {
		// One context line per failing cycle: the collector-wide state the
		// per-object lines are read against.
		e.violation("cycle %d context: %s", e.report.Cycles, e.oracleContext())
	}
	return res
}

// describeObject renders the collector's view of one address for an oracle
// violation: its mark and allocation bits, its card and that card's dirty
// state, and its outgoing references. Bounded output — violations are capped,
// and each line is one object.
func (e *Engine) describeObject(a heapsim.Addr) string {
	card := e.arena.Cards.CardOf(a)
	var b strings.Builder
	fmt.Fprintf(&b, "mark=%t alloc=%t card=%d dirty=%t refs=[",
		e.arena.Mark.Test(int(a)), e.arena.Alloc.Test(int(a)),
		card, e.arena.Cards.IsDirty(card))
	for j := 0; j < e.arena.refsPer; j++ {
		if j > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", e.arena.LoadRef(a, j))
	}
	b.WriteByte(']')
	return b.String()
}

// oracleContext summarizes the collector state at a failing oracle: packet
// pool occupancy, fence epoch, and card-table counters. It runs in the STW
// final phase, so the counts are exact.
func (e *Engine) oracleContext() string {
	occ := e.pool.Occupancy()
	cs := &e.arena.Cards.AtomicStats
	return fmt.Sprintf(
		"pool occupancy %v (total %d, entries in flight %d), fence epoch %d, "+
			"cards dirty %d registered %d cleaned %d, marks %d scans %d deferred %d overflows %d",
		occ, e.pool.TotalPackets(), e.pool.EntriesInUse(), e.fenceEpoch.Load(),
		e.arena.Cards.CountDirtyAtomic(), cs.CardsRegistered.Load(), cs.CardsCleaned.Load(),
		e.stats.marks.Load(), e.stats.scans.Load(), e.stats.deferred.Load(),
		e.stats.overflows.Load())
}

// collectGarbage lists every allocated, unmarked object and retracts its
// allocation bit, still under the stopped world. The returned objects are
// unreachable by construction, so the caller frees them concurrently.
func (e *Engine) collectGarbage() []heapsim.Addr {
	var toFree []heapsim.Addr
	for a := 1; a <= e.arena.numObjects; a++ {
		if e.arena.Alloc.Test(a) && !e.arena.Mark.Test(a) {
			e.arena.Alloc.Clear(a)
			toFree = append(toFree, heapsim.Addr(a))
		}
	}
	return toFree
}

func (e *Engine) violation(format string, args ...any) {
	if len(e.report.Violations) < 20 {
		e.report.Violations = append(e.report.Violations, fmt.Sprintf(format, args...))
	}
}

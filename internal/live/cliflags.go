package live

import (
	"flag"
	"fmt"
	"io"

	"mcgc/internal/pacing"
)

// CommonFlags is the flag vocabulary the live-engine CLIs (gcstress,
// gcserve) share: the sharding-tier knobs, the run-name override and the
// whole pacing flag set. Binding it from one place keeps the two commands
// from drifting — the same -localcache or -k0 spelling must mean the same
// thing whether the workload is synthetic churn or server traffic.
type CommonFlags struct {
	LocalCache int
	FreeShards int
	CardBuffer int
	Name       string

	// PacingOn gates whether Apply installs the pacing config; the knobs
	// themselves always parse so "-k0 3" without "-pacing" is not an error.
	PacingOn bool
	Pacing   pacing.Config

	pf *pacing.Flags
}

// BindCommonFlags registers the shared vocabulary on fs. pacingDefault is
// the -pacing default: gcstress keeps the historical opt-in false, gcserve
// paces by default (a server without an allocation tax just measures the
// free list draining).
func BindCommonFlags(fs *flag.FlagSet, pacingDefault bool) *CommonFlags {
	cf := &CommonFlags{Pacing: pacing.Default()}
	fs.IntVar(&cf.LocalCache, "localcache", 0, "per-worker packet cache per class (0 = default, negative disables the local tier)")
	fs.IntVar(&cf.FreeShards, "freeshards", 0, "free-list shards (0 = default, negative forces one shard)")
	fs.IntVar(&cf.CardBuffer, "cardbuf", 0, "per-mutator write-barrier card buffer (0 = default, negative dirties directly)")
	fs.StringVar(&cf.Name, "name", "", "override the run name in the sinks (so cat'ed JSONL files keep distinct runs)")
	fs.BoolVar(&cf.PacingOn, "pacing", pacingDefault, "enable Section 3 pacing: kickoff-driven cycles and a mutator allocation tax")
	cf.pf = pacing.Bind(fs, &cf.Pacing)
	return cf
}

// Apply copies the shared knobs onto an engine config (call after Parse).
func (cf *CommonFlags) Apply(cfg *Config) {
	cfg.LocalCache = cf.LocalCache
	cfg.FreeShards = cf.FreeShards
	cfg.CardBuffer = cf.CardBuffer
	if cf.PacingOn {
		p := cf.Pacing
		cfg.Pacing = &p
	}
}

// RunName returns the -name override, or fallback when none was given.
func (cf *CommonFlags) RunName(fallback string) string {
	if cf.Name != "" {
		return cf.Name
	}
	return fallback
}

// PrintHints forwards the pacing vocabulary's deprecated-alias migration
// hints (call after Parse, before using the values).
func (cf *CommonFlags) PrintHints(w io.Writer, prog string) {
	cf.pf.PrintHints(w, prog)
}

// String renders the sharding knobs for debug output.
func (cf *CommonFlags) String() string {
	return fmt.Sprintf("localcache=%d freeshards=%d cardbuf=%d pacing=%t",
		cf.LocalCache, cf.FreeShards, cf.CardBuffer, cf.PacingOn)
}

package live

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"mcgc/internal/faultinject"
	"mcgc/internal/pacing"
)

// CommonFlags is the flag vocabulary the live-engine CLIs (gcstress,
// gcserve) share: the sharding-tier knobs, the run-name override and the
// whole pacing flag set. Binding it from one place keeps the two commands
// from drifting — the same -localcache or -k0 spelling must mean the same
// thing whether the workload is synthetic churn or server traffic.
type CommonFlags struct {
	LocalCache int
	FreeShards int
	CardBuffer int
	Name       string

	// PacingOn gates whether Apply installs the pacing config; the knobs
	// themselves always parse so "-k0 3" without "-pacing" is not an error.
	PacingOn bool
	Pacing   pacing.Config

	// LadderOn gates the graceful-degradation ladder (degrade.go); the
	// tuning knobs parse regardless, like the pacing ones.
	LadderOn bool
	Ladder   LadderConfig

	// SLO is the latency-feedback controller configuration; a nonzero
	// SLO.Target (-slo-p99) selects pacing.SLOPolicy over the plain
	// formula. Its Section 3 floor comes from the shared Pacing knobs, so
	// -k0 and friends mean the same thing under either policy. The knobs
	// are bound here, once, for every live-engine CLI — gcstress, gcserve
	// and any future one — instead of each command re-registering them.
	SLO pacing.SLOConfig

	// Distillation (Cai & Blackburn "distilled cost") knobs, likewise bound
	// once for every CLI: Distill re-runs the same seeded workload with
	// collection disabled and reports the delta, DistillMult sizes the
	// baseline arena (live arena plus DistillMult times the real run's
	// measured allocations, so it never exhausts even though the baseline
	// runs faster), DistillJSON appends the distill.Record line a sweep
	// collects into a Pareto curve.
	Distill     bool
	DistillMult int
	DistillJSON string

	pf *pacing.Flags
}

// BindCommonFlags registers the shared vocabulary on fs. pacingDefault is
// the -pacing default: gcstress keeps the historical opt-in false, gcserve
// paces by default (a server without an allocation tax just measures the
// free list draining).
func BindCommonFlags(fs *flag.FlagSet, pacingDefault bool) *CommonFlags {
	cf := &CommonFlags{Pacing: pacing.Default()}
	fs.IntVar(&cf.LocalCache, "localcache", 0, "per-worker packet cache per class (0 = default, negative disables the local tier)")
	fs.IntVar(&cf.FreeShards, "freeshards", 0, "free-list shards (0 = default, negative forces one shard)")
	fs.IntVar(&cf.CardBuffer, "cardbuf", 0, "per-mutator write-barrier card buffer (0 = default, negative dirties directly)")
	fs.StringVar(&cf.Name, "name", "", "override the run name in the sinks (so cat'ed JSONL files keep distinct runs)")
	fs.BoolVar(&cf.PacingOn, "pacing", pacingDefault, "enable Section 3 pacing: kickoff-driven cycles and a mutator allocation tax")
	fs.BoolVar(&cf.LadderOn, "ladder", false, "enable the graceful-degradation ladder: allocation backpressure and emergency STW fallback")
	fs.DurationVar(&cf.Ladder.BackpressureWait, "bp-wait", 0, "deadline for one backpressured allocation (0 = default 20ms)")
	fs.IntVar(&cf.Ladder.EmergencyMinFree, "emergency-min", 0, "freed-object floor below which a pressured cycle counts as starved (0 = allocation batch)")
	fs.IntVar(&cf.Ladder.EmergencyAfter, "emergency-after", 0, "consecutive starved cycles before an emergency STW collection (0 = default 2)")
	pacing.BindSLO(fs, &cf.SLO)
	fs.BoolVar(&cf.Distill, "distill", false, "after the measured run, re-run the same seeded workload with collection disabled and report the distilled collector cost")
	fs.IntVar(&cf.DistillMult, "distill-mult", 4, "baseline arena headroom for -distill: arena objects plus this many times the real run's allocations (sized to never collect)")
	fs.StringVar(&cf.DistillJSON, "distill-json", "", "append the distilled-cost record as one JSON line to this file")
	cf.pf = pacing.Bind(fs, &cf.Pacing)
	return cf
}

// Apply copies the shared knobs onto an engine config (call after Parse).
func (cf *CommonFlags) Apply(cfg *Config) {
	cfg.LocalCache = cf.LocalCache
	cfg.FreeShards = cf.FreeShards
	cfg.CardBuffer = cf.CardBuffer
	if cf.PacingOn {
		p := cf.Pacing
		cfg.Pacing = &p
	}
	if cf.SLO.Target > 0 {
		s := cf.SLO
		s.Formula = cf.Pacing
		cfg.SLO = &s
	}
	if cf.LadderOn {
		cfg.Ladder = cf.Ladder
		cfg.Ladder.Enabled = true
	}
}

// RunName returns the -name override, or fallback when none was given.
func (cf *CommonFlags) RunName(fallback string) string {
	if cf.Name != "" {
		return cf.Name
	}
	return fallback
}

// PrintHints forwards the pacing vocabulary's deprecated-alias migration
// hints (call after Parse, before using the values).
func (cf *CommonFlags) PrintHints(w io.Writer, prog string) {
	cf.pf.PrintHints(w, prog)
}

// String renders the sharding knobs for debug output.
func (cf *CommonFlags) String() string {
	return fmt.Sprintf("localcache=%d freeshards=%d cardbuf=%d pacing=%t ladder=%t",
		cf.LocalCache, cf.FreeShards, cf.CardBuffer, cf.PacingOn, cf.LadderOn)
}

// The exit-code conventions every live-engine CLI follows (README "Exit
// codes"): 0 for a clean run, 1 for an invariant failure — oracle loss,
// broken accounting, an unmet -require-* assertion — and 2 for a wedge or
// hang, whether detected by the engine's watchdog or the CLI's hard timeout.
const (
	ExitOK        = 0
	ExitInvariant = 1
	ExitWedge     = 2
)

// ReproLine renders the one-line repro command a failing run prints: the
// program with the seeds and any extra flags that shaped the failure. The
// fault spec is included only when a plan was armed.
func ReproLine(prog string, seed int64, plan *faultinject.Plan, extra ...string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: reproduce with -seed %d", prog, seed)
	if plan.String() != "" {
		fmt.Fprintf(&b, " -chaos %q -chaos-seed %d", plan.String(), plan.Seed())
	}
	for _, e := range extra {
		if e != "" {
			b.WriteByte(' ')
			b.WriteString(e)
		}
	}
	return b.String()
}

// ReproFlags reconstructs the shared-vocabulary flags that differ from their
// defaults, for ReproLine's extra arguments — so the printed command really
// reproduces a run that had -ladder or -pacing on.
func (cf *CommonFlags) ReproFlags() string {
	var parts []string
	if cf.PacingOn {
		parts = append(parts, "-pacing")
	}
	if cf.LadderOn {
		parts = append(parts, "-ladder")
	}
	if cf.SLO.Target != 0 {
		parts = append(parts, fmt.Sprintf("-slo-p99 %s", cf.SLO.Target))
	}
	if cf.Ladder.BackpressureWait != 0 {
		parts = append(parts, fmt.Sprintf("-bp-wait %s", cf.Ladder.BackpressureWait))
	}
	if cf.Ladder.EmergencyMinFree != 0 {
		parts = append(parts, fmt.Sprintf("-emergency-min %d", cf.Ladder.EmergencyMinFree))
	}
	if cf.Ladder.EmergencyAfter != 0 {
		parts = append(parts, fmt.Sprintf("-emergency-after %d", cf.Ladder.EmergencyAfter))
	}
	if cf.LocalCache != 0 {
		parts = append(parts, fmt.Sprintf("-localcache %d", cf.LocalCache))
	}
	if cf.FreeShards != 0 {
		parts = append(parts, fmt.Sprintf("-freeshards %d", cf.FreeShards))
	}
	if cf.CardBuffer != 0 {
		parts = append(parts, fmt.Sprintf("-cardbuf %d", cf.CardBuffer))
	}
	return strings.Join(parts, " ")
}

// ReportExit maps a run report onto the exit-code conventions: ExitWedge for
// a watchdog abort, ExitInvariant for an oracle failure, ExitOK otherwise.
// CLI-specific assertions (-min-ops, -require-faults) layer ExitInvariant on
// top; a hard -timeout layers ExitWedge.
func ReportExit(rep *Report) int {
	switch {
	case rep.Wedged:
		return ExitWedge
	case rep.LostObjects > 0 || len(rep.Violations) > 0:
		return ExitInvariant
	}
	return ExitOK
}

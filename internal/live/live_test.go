package live

import (
	"sync"
	"testing"
	"time"

	"mcgc/internal/heapsim"
)

// Free-list conservation under contention: objects popped concurrently are
// unique while held, and every object is back on the list at quiescence.
func TestArenaFreeListConcurrent(t *testing.T) {
	const (
		objects = 4096
		workers = 8
		rounds  = 5000
	)
	a := NewArena(objects, 2)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			held := make([]heapsim.Addr, 0, 16)
			for r := 0; r < rounds; r++ {
				if len(held) < 16 {
					if obj := a.PopFree(); obj != heapsim.Nil {
						held = append(held, obj)
					}
				}
				if r%3 == 0 && len(held) > 0 {
					a.PushFree(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			for _, obj := range held {
				a.PushFree(obj)
			}
		}()
	}
	wg.Wait()
	if got := a.FreeLen(); got != objects {
		t.Fatalf("free list has %d objects at quiescence, want %d", got, objects)
	}
	// Walk the list: every object exactly once.
	seen := make(map[heapsim.Addr]bool)
	for i := 0; i < objects; i++ {
		obj := a.PopFree()
		if obj == heapsim.Nil {
			t.Fatalf("list ran out after %d pops (count said %d)", i, objects)
		}
		if seen[obj] {
			t.Fatalf("object %d linked twice", obj)
		}
		seen[obj] = true
	}
	if a.PopFree() != heapsim.Nil {
		t.Fatal("list still non-empty after full drain")
	}
}

func TestArenaCardRange(t *testing.T) {
	a := NewArena(100, 2)
	from, to := a.CardRange(0)
	if from != 1 || to != 64 {
		t.Fatalf("card 0 covers [%d,%d), want [1,64)", from, to)
	}
	from, to = a.CardRange(1)
	if from != 64 || to != 101 {
		t.Fatalf("card 1 covers [%d,%d), want [64,101)", from, to)
	}
}

// A short end-to-end run: cycles complete, the oracle is clean, and the
// pool and free list are quiescent afterwards.
func TestEngineShortRun(t *testing.T) {
	e := NewEngine(Config{
		Objects:  1 << 12,
		Mutators: 3,
		Tracers:  2,
		Duration: 300 * time.Millisecond,
		Seed:     42,
	})
	rep := e.Run()
	if rep.Cycles < 1 {
		t.Fatal("no cycles completed")
	}
	if rep.LostObjects != 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle violations: lost=%d %v", rep.LostObjects, rep.Violations)
	}
	if rep.ObjectsAllocated == 0 || rep.Marks == 0 || rep.Scans == 0 {
		t.Fatalf("engine idle: %+v", rep)
	}
	if !e.Pool().TracingDone() || !e.Pool().DeferredEmpty() {
		t.Fatal("packet pool not quiescent after Run")
	}
	// Conservation: allocated - freed - live-at-end floating remainder all
	// stay inside the arena, and the free list accounts for the rest.
	inUse := int64(e.Arena().NumObjects()) - e.Arena().FreeLen()
	if allocLive := rep.ObjectsAllocated - rep.ObjectsFreed; allocLive != inUse {
		t.Fatalf("allocated-freed = %d but %d objects off the free list", allocLive, inUse)
	}
}

// TestEngineShardingTiers runs the engine with each sharding tier forced on
// and forced off: both configurations must pass the oracle and the
// conservation checks, the sharded run must actually exercise the tiers
// (nonzero local hits, buffer flushes) and the unsharded run must not touch
// them at all (the pre-sharding behavior is still reachable).
func TestEngineShardingTiers(t *testing.T) {
	base := Config{
		Objects:  1 << 12,
		Mutators: 3,
		Tracers:  2,
		Duration: 300 * time.Millisecond,
		Seed:     11,
	}
	t.Run("sharded", func(t *testing.T) {
		cfg := base
		cfg.LocalCache, cfg.FreeShards, cfg.CardBuffer = 4, 4, 32
		e := NewEngine(cfg)
		rep := e.Run()
		if rep.LostObjects != 0 || len(rep.Violations) > 0 {
			t.Fatalf("sharded: lost=%d %v", rep.LostObjects, rep.Violations)
		}
		if e.Arena().NumFreeShards() != 4 {
			t.Fatalf("free shards = %d, want 4", e.Arena().NumFreeShards())
		}
		if rep.PoolLocalHits == 0 {
			t.Error("local packet caches never hit")
		}
		if rep.CardBufferFlushes == 0 {
			t.Error("card buffers never flushed")
		}
		if ce, cr := e.Pool().LocalCached(); ce != 0 || cr != 0 {
			t.Fatalf("local caches hold %d empty + %d ready after Run, want 0", ce, cr)
		}
	})
	t.Run("unsharded", func(t *testing.T) {
		cfg := base
		cfg.LocalCache, cfg.FreeShards, cfg.CardBuffer = -1, -1, -1
		e := NewEngine(cfg)
		rep := e.Run()
		if rep.LostObjects != 0 || len(rep.Violations) > 0 {
			t.Fatalf("unsharded: lost=%d %v", rep.LostObjects, rep.Violations)
		}
		if e.Arena().NumFreeShards() != 1 {
			t.Fatalf("free shards = %d, want 1", e.Arena().NumFreeShards())
		}
		if sum := rep.PoolLocalHits + rep.PoolSteals + rep.PoolSpills +
			rep.ArenaShardSteals + rep.CardBufferFlushes; sum != 0 {
			t.Fatalf("disabled tiers still counted traffic: %+v", rep)
		}
	})
}

// Each workload shape runs clean.
func TestEngineShapes(t *testing.T) {
	for _, shape := range []string{"mixed", "churn", "pointer"} {
		t.Run(shape, func(t *testing.T) {
			e := NewEngine(Config{
				Objects:  1 << 12,
				Mutators: 2,
				Tracers:  2,
				Duration: 200 * time.Millisecond,
				Seed:     7,
				Shape:    shape,
			})
			rep := e.Run()
			if rep.LostObjects != 0 || len(rep.Violations) > 0 {
				t.Fatalf("shape %s: lost=%d %v", shape, rep.LostObjects, rep.Violations)
			}
			if rep.Cycles < 1 || rep.ObjectsAllocated == 0 {
				t.Fatalf("shape %s idle: %+v", shape, rep)
			}
		})
	}
}

package live

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"mcgc/internal/heapsim"
)

// External mutators: the hooks that let a real workload — a server's request
// handlers rather than the engine's synthetic churn — allocate from the live
// arena, mutate it through the write barrier, and hold collector-visible
// roots. An external mutator is a first-class citizen of every protocol the
// synthetic ones run: it pays the Section 3 allocation tax at cache refills,
// publishes allocation bits in Section 5.2 batches, answers Section 5.3
// fence handshakes, and parks at safepoints. The engine provides the state;
// the caller provides the goroutine.

// Mut is the caller-facing handle of one external mutator. All methods must
// be invoked from a single goroutine (the one driving this mutator); the
// handle is not shareable. The goroutine must call Poll often — between
// requests, inside waits — because a safepoint blocks the whole collector
// until every mutator parks, and must never Poll while holding a lock that a
// running mutator could need (Poll may block for a full STW pause).
type Mut struct {
	m *mutator
}

// ExtMutator returns the handle for external mutator slot i of
// [0, Config.ExtMutators).
func (e *Engine) ExtMutator(i int) *Mut {
	if i < 0 || i >= e.cfg.ExtMutators {
		panic(fmt.Sprintf("live: external mutator %d of %d", i, e.cfg.ExtMutators))
	}
	return &Mut{m: e.muts[e.cfg.Mutators+i]}
}

// ShuttingDown reports whether Run has begun tearing the workload down.
// External mutators must Retire soon after observing true.
func (e *Engine) ShuttingDown() bool { return e.shutdown.Load() }

// ID returns this mutator's engine-wide id (external ids follow the
// synthetic ones).
func (mt *Mut) ID() int { return mt.m.id }

// NumRoots returns how many root slots this mutator owns
// (Config.RootsPerMutator).
func (mt *Mut) NumRoots() int { return len(mt.m.roots) }

// live asserts the handle has not retired and returns its mutator. Every
// protocol-touching method goes through it: a retired mutator has left the
// safepoint population and returned its allocation cache, so any further op
// would corrupt the engine's accounting in ways that only surface cycles
// later. A deterministic panic at the call site beats that.
func (mt *Mut) live(op string) *mutator {
	if mt.m.exited.Load() {
		panic(fmt.Sprintf("live: external mutator %d: %s after Retire", mt.m.id, op))
	}
	return mt.m
}

// Poll services the collector's protocols: it parks for a pending safepoint
// and acknowledges a pending fence handshake. It is the external mutator's
// op boundary — cheap when nothing is pending (two atomic loads).
func (mt *Mut) Poll() {
	m := mt.live("Poll")
	m.maybePark()
	m.maybeAck()
}

// Alloc takes one object from this mutator's allocation cache, refilling
// from the shared free list (and paying the allocation tax) as needed. The
// object is returned unreferenced: the caller must make it reachable — store
// it into a root slot or a reachable object — before its next Poll, or the
// collector may treat it as garbage once its batch publishes. ok is false on
// heap exhaustion; the failure signals memory pressure so the driver starts
// a collection, and the caller should treat the request as failed rather
// than spin.
func (mt *Mut) Alloc() (heapsim.Addr, bool) {
	m := mt.live("Alloc")
	m.ops++
	obj := m.takeFromCache()
	if obj == heapsim.Nil {
		m.e.stats.allocFailed.Add(1)
		// Same degradation as the synthetic path: publish the part-filled
		// batch (it may never fill on a full heap), signal for an early
		// collection, cede the processor so the collector can free memory.
		m.publish()
		m.e.memPressure.Store(true)
		runtime.Gosched()
		return heapsim.Nil, false
	}
	m.pending = append(m.pending, obj)
	if len(m.pending) >= m.e.cfg.AllocBatch {
		m.publish()
	}
	return obj, true
}

// Store writes ref slot j of obj through the write barrier.
func (mt *Mut) Store(obj heapsim.Addr, j int, v heapsim.Addr) {
	m := mt.live("Store")
	m.ops++
	m.store(obj, j, v)
}

// Load reads ref slot j of obj.
func (mt *Mut) Load(obj heapsim.Addr, j int) heapsim.Addr {
	m := mt.live("Load")
	m.ops++
	return m.e.arena.LoadRef(obj, j)
}

// SetRoot publishes v in root slot i: the collector scans it at STW init,
// rescans it at the final phase, and the oracle walks it as ground truth.
// Store Nil to drop the root (how retired sessions become garbage).
func (mt *Mut) SetRoot(i int, v heapsim.Addr) { mt.live("SetRoot").roots[i].Store(uint32(v)) }

// Root reads root slot i back.
func (mt *Mut) Root(i int) heapsim.Addr { return heapsim.Addr(mt.m.roots[i].Load()) }

// Retire permanently removes this mutator from the safepoint population,
// publishing its batch, flushing its cards and returning its allocation
// cache. Call exactly once, after ShuttingDown reports true (or before Run);
// retiring mid-run would race the mutator's unparked state against an
// in-progress pause. The mutator's roots keep their final values — drop them
// first if the retiring session's state should become garbage.
func (mt *Mut) Retire() {
	// The claim is a CAS so a second Retire panics deterministically even
	// when two goroutines misuse the handle concurrently — the loser must
	// never run exit() again or decrement extWG twice.
	if !mt.m.retired.CompareAndSwap(false, true) {
		panic(fmt.Sprintf("live: external mutator %d retired twice", mt.m.id))
	}
	mt.m.exit()
	mt.m.e.extWG.Done()
}

// RootSet is a block of collector root slots owned by external code rather
// than any one mutator — a server store's per-shard bucket heads, pinned
// for as long as the structure lives. Slots are atomics: any goroutine may
// Set while the driver scans. Register before Run via Engine.NewRootSet.
type RootSet struct {
	slots []atomic.Uint32
}

// NewRootSet registers n extra root slots with the collector. Must be called
// before Run — the driver reads extraRoots unlocked during root scans.
func (e *Engine) NewRootSet(n int) *RootSet {
	if e.running.Load() {
		panic("live: NewRootSet after Run started")
	}
	if n < 1 {
		panic(fmt.Sprintf("live: NewRootSet(%d)", n))
	}
	rs := &RootSet{slots: make([]atomic.Uint32, n)}
	e.extraRoots = append(e.extraRoots, rs)
	return rs
}

// Len returns the slot count.
func (r *RootSet) Len() int { return len(r.slots) }

// Get reads slot i.
func (r *RootSet) Get(i int) heapsim.Addr { return heapsim.Addr(r.slots[i].Load()) }

// Set publishes v in slot i (Nil drops the root). No write barrier is
// needed: root slots are not heap objects, and the final STW phase rescans
// every root before the cycle closes.
func (r *RootSet) Set(i int, v heapsim.Addr) { r.slots[i].Store(uint32(v)) }

package live

import (
	"strings"
	"testing"
	"time"

	"mcgc/internal/pacing"
)

func TestValidateErrors(t *testing.T) {
	base := func() Config {
		return Config{Objects: 1 << 12, Mutators: 2, Tracers: 1, Duration: 100 * time.Millisecond}
	}
	cases := []struct {
		name  string
		mut   func(*Config)
		field string // substring every message must carry
	}{
		{"negative objects", func(c *Config) { c.Objects = -1 }, "Objects"},
		{"negative refs", func(c *Config) { c.RefsPerObject = -2 }, "RefsPerObject"},
		{"negative mutators", func(c *Config) { c.Mutators = -1 }, "Mutators"},
		{"negative tracers", func(c *Config) { c.Tracers = -3 }, "Tracers"},
		{"negative duration", func(c *Config) { c.Duration = -time.Second }, "Duration"},
		{"pacing k0", func(c *Config) { c.Pacing = &pacing.Config{K0: -1} }, "Pacing.K0"},
		{"slo target", func(c *Config) {
			c.SLO = &pacing.SLOConfig{Target: -time.Millisecond}
		}, "SLO.Target"},
		{"slo floor", func(c *Config) {
			c.SLO = &pacing.SLOConfig{Target: time.Millisecond, FloorK: 1.5}
		}, "SLO.FloorK"},
		{"slo bg bounds", func(c *Config) {
			c.SLO = &pacing.SLOConfig{Target: time.Millisecond, BgMin: 4, BgMax: 2}
		}, "SLO.BgMin"},
		{"slo alpha", func(c *Config) {
			c.SLO = &pacing.SLOConfig{Target: time.Millisecond, Alpha: 2}
		}, "SLO.Alpha"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("Validate accepted an invalid config")
			}
			if !strings.Contains(err.Error(), "live: config: "+tc.field) {
				t.Fatalf("error %q does not name %s in the shared vocabulary", err, tc.field)
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestValidateJoinsAllProblems(t *testing.T) {
	cfg := Config{Objects: -1, Mutators: -1, Tracers: 1, Duration: time.Millisecond}
	err := cfg.Validate()
	if err == nil {
		t.Fatal("no error")
	}
	for _, field := range []string{"Objects", "Mutators"} {
		if !strings.Contains(err.Error(), field) {
			t.Fatalf("joined error %q missing %s", err, field)
		}
	}
}

func TestConfigConstructors(t *testing.T) {
	pc := pacing.Config{K0: 6}
	sc := pacing.SLOConfig{Target: 2 * time.Millisecond}
	plan := (*Config)(nil) // placeholder to keep the imports honest
	_ = plan
	cfg := Config{Objects: 1 << 10, Mutators: 1, Tracers: 1, Duration: time.Millisecond}.
		WithSharding(4, 2, 16).
		WithFormulaPacing(pc).
		WithSLOPacing(sc).
		WithLadder(LadderConfig{Enabled: true, EmergencyAfter: 3})
	if cfg.LocalCache != 4 || cfg.FreeShards != 2 || cfg.CardBuffer != 16 {
		t.Fatalf("sharding options not applied: %+v", cfg.ShardingOptions)
	}
	if cfg.Pacing == nil || cfg.Pacing.K0 != 6 {
		t.Fatalf("formula pacing not applied: %+v", cfg.PacingOptions)
	}
	if cfg.SLO == nil || cfg.SLO.Target != 2*time.Millisecond {
		t.Fatalf("slo pacing not applied: %+v", cfg.PacingOptions)
	}
	if !cfg.Ladder.Enabled || cfg.Ladder.EmergencyAfter != 3 {
		t.Fatalf("ladder options not applied: %+v", cfg.LadderOptions)
	}
	// Field promotion must keep the flat spellings working: these are the
	// compatibility guarantees the option-struct refactor preserves.
	cfg.LocalCache = 8
	if cfg.ShardingOptions.LocalCache != 8 {
		t.Fatal("flat field write did not reach the embedded struct")
	}
}

func TestNewEnginePanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewEngine accepted an invalid config")
		}
		if !strings.Contains(r.(error).Error(), "live: config: Objects") {
			t.Fatalf("panic %v does not use the config error vocabulary", r)
		}
	}()
	NewEngine(Config{Objects: -5, Mutators: 1, Tracers: 1, Duration: time.Millisecond})
}

// TestDisableCollectionRun: with collection disabled the engine runs the
// mutators against a static arena — no cycles, no pauses, no policy — which
// is exactly the distillation baseline's contract.
func TestDisableCollectionRun(t *testing.T) {
	cfg := Config{
		Objects:  1 << 14, // big enough that the mutators don't exhaust it in 200ms
		Mutators: 2,
		Tracers:  1,
		Duration: 200 * time.Millisecond,
		Seed:     7,
	}
	cfg.PacingOptions = PacingOptions{DisableCollection: true}
	e := NewEngine(cfg)
	if e.PacingPolicy() != nil {
		t.Fatal("collection-disabled engine built a pacing policy")
	}
	rep := e.Run()
	if rep.Cycles != 0 {
		t.Fatalf("collection-disabled run collected %d cycles", rep.Cycles)
	}
	if rep.STWCount != 0 {
		t.Fatalf("collection-disabled run paused %d times", rep.STWCount)
	}
	if rep.PacingPolicy != "none" {
		t.Fatalf("policy = %q, want none", rep.PacingPolicy)
	}
	if rep.MutatorOps == 0 {
		t.Fatal("mutators made no progress")
	}
}

// TestSLOPolicyWiring: a config with an SLO target builds the SLO policy,
// exposes it through PacingPolicy (for the latency feed) and reports its
// stats; feeding over-target windows mid-run must engage the controller.
func TestSLOPolicyWiring(t *testing.T) {
	cfg := Config{
		Objects:  1 << 12,
		Mutators: 2,
		Tracers:  1,
		Duration: 300 * time.Millisecond,
		Seed:     3,
	}
	cfg.SLO = &pacing.SLOConfig{Formula: pacing.Default(), Target: time.Millisecond}
	e := NewEngine(cfg)
	obs, ok := e.PacingPolicy().(pacing.LatencyObserver)
	if !ok {
		t.Fatalf("policy %T is not a LatencyObserver", e.PacingPolicy())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			obs.ObserveLatency(int64(5 * time.Millisecond)) // 5x over target
			time.Sleep(10 * time.Millisecond)
		}
	}()
	rep := e.Run()
	<-done
	if rep.PacingPolicy != "slo" {
		t.Fatalf("report policy = %q, want slo", rep.PacingPolicy)
	}
	if rep.SLOWindows == 0 {
		t.Fatal("report lost the controller's window count")
	}
	if rep.SLOOverTarget == 0 {
		t.Fatal("5x-over-target windows not counted as over target")
	}
	if rep.SLOBgFactor >= 1 {
		t.Fatalf("bg factor %v under sustained overshoot, want < 1", rep.SLOBgFactor)
	}
	if rep.LostObjects != 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle violations under the SLO policy: lost=%d %v", rep.LostObjects, rep.Violations)
	}
}

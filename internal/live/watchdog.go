package live

import (
	"fmt"
	"strings"
	"time"

	"mcgc/internal/workpack"
)

// wedgeWatch is the driver's termination-detection watchdog. The collector's
// termination test (Empty count == total packets) assumes every thread keeps
// making progress; a tracer that stalls forever while holding a packet makes
// TracingDone false for the rest of time and the driver would spin-wait
// silently. The watch samples an aggregate progress stamp and declares the
// cycle wedged when the stamp holds still for the configured deadline —
// progress of any kind (a mark, a scan, a pool op) resets the clock.
type wedgeWatch struct {
	e       *Engine
	last    int64
	since   time.Time
	timeout time.Duration
}

func (e *Engine) newWedgeWatch() *wedgeWatch {
	return &wedgeWatch{
		e:       e,
		last:    e.traceProgress(),
		since:   time.Now(),
		timeout: e.cfg.WedgeTimeout,
	}
}

// stalled samples the progress stamp and reports whether it has been static
// for the full wedge deadline. Only the driver calls it, between waits.
func (w *wedgeWatch) stalled() bool {
	if p := w.e.traceProgress(); p != w.last {
		w.last = p
		w.since = time.Now()
		return false
	}
	return time.Since(w.since) >= w.timeout
}

// traceProgress folds every tracing-side counter into one stamp. Any tracer
// or driver activity moves it: claims, scans, rescans, deferrals and drains,
// the overflow degradations, and raw pool traffic (a tracer shuffling
// packets without scanning is still alive). The fence epoch is deliberately
// excluded — mutators answering handshakes must not mask a dead trace.
func (e *Engine) traceProgress() int64 {
	s := &e.stats
	ps := &e.pool.Stats
	ls := e.pool.LocalStatsSum()
	stamp := s.marks.Load() + s.scans.Load() + s.rescans.Load() +
		s.deferred.Load() + s.deferredDrains.Load() +
		s.overflows.Load() + s.deferOverflows.Load() +
		ps.Gets.Load() + ps.Puts.Load() +
		// Local-tier traffic is progress too: a tracer living entirely off
		// its cache (hits) or off siblings (steals) never touches the
		// global Gets/Puts counters.
		ls.Hits + ls.Steals + ls.Spills + ls.Refills
	// A hoarding tracer withholds puts, so its cumulative hoard count stands
	// in for the pool traffic it suppressed.
	for _, a := range e.accounts {
		stamp += a.led.Hoarded.Load()
	}
	return stamp
}

// abortWedged is the fail-loudly path: capture a diagnosis while the wedged
// state is still in place, then unwind — resume the world if the driver holds
// it stopped, shut every worker down, and release the driver's own packets so
// the pool accounting closes. The run's report carries the diagnosis; callers
// (gcstress) print it and exit nonzero instead of hanging CI.
func (e *Engine) abortWedged(drv *workpack.Tracer, phase string) {
	e.report.Wedged = true
	e.report.WedgePhase = phase
	e.report.WedgeDiagnosis = e.wedgeDiagnosis(phase)

	e.shutdown.Store(true)
	if e.worldStopped {
		e.resumeWorld()
	}
	e.wg.Wait()
	// External mutators see ShuttingDown on their next poll and retire;
	// the report must not be finalized while their caches are outstanding.
	e.extWG.Wait()
	e.markingActive.Store(false)
	drv.Release()
}

// wedgeDiagnosis renders the collector's state for a wedged cycle: where
// every packet is, what the trace counters say, how far the fence handshake
// got per mutator, and what the card table and fault plan hold. Reads race
// with still-running goroutines by design — a diagnosis beats a deadlock.
func (e *Engine) wedgeDiagnosis(phase string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "WEDGED in %s: no tracing progress for %v\n", phase, e.cfg.WedgeTimeout)

	occ := e.pool.Occupancy()
	inPools := 0
	for _, n := range occ {
		inPools += n
	}
	fmt.Fprintf(&b, "  pool: total %d packets;", e.pool.TotalPackets())
	for s := workpack.SubPool(0); s < workpack.NumSubPools; s++ {
		fmt.Fprintf(&b, " %s %d", s, occ[s])
	}
	cachedEmpty, cachedReady := e.pool.LocalCached()
	fmt.Fprintf(&b, "; locally cached %d empty + %d ready; checked out %d; entries in flight %d\n",
		cachedEmpty, cachedReady,
		int64(e.pool.TotalPackets())-int64(inPools)-cachedEmpty-cachedReady,
		e.pool.EntriesInUse())
	ps := &e.pool.Stats
	ls := e.pool.LocalStatsSum()
	fmt.Fprintf(&b, "  pool ops: gets %d  puts %d  CAS retries %d  local hits %d  steals %d  spills %d\n",
		ps.Gets.Load(), ps.Puts.Load(), ps.CASRetries.Load(),
		ls.Hits, ls.Steals, ls.Spills)

	s := &e.stats
	fmt.Fprintf(&b, "  trace: marks %d  scans %d  rescans %d  deferred %d (drains %d)  overflows %d (defer %d)\n",
		s.marks.Load(), s.scans.Load(), s.rescans.Load(),
		s.deferred.Load(), s.deferredDrains.Load(),
		s.overflows.Load(), s.deferOverflows.Load())

	fmt.Fprintf(&b, "  fence: epoch %d; acks", e.fenceEpoch.Load())
	for _, m := range e.muts {
		state := ""
		if m.exited.Load() {
			state = " (exited)"
		}
		fmt.Fprintf(&b, " m%d=%d%s", m.id, m.ackEpoch.Load(), state)
	}
	b.WriteByte('\n')

	// Per-worker ledgers pinpoint an asymmetric tracer — one hoarding (held
	// packets the sub-pools cannot see) or starving (all idle, no words)
	// while the aggregates above look plausible.
	for _, a := range e.accounts {
		w := a.led.Snap()
		fmt.Fprintf(&b, "  workers: %s acq g/l/s %d/%d/%d  produced %d  words %d  idle %.1fms  steals %d/%d",
			a.key, w.AcqGlobal, w.AcqLocal, w.AcqSteal, w.Produced, w.Words,
			float64(w.IdleNs)/1e6, w.StealHits, w.StealAttempts)
		if w.Hoarded > 0 || w.HoardHeld > 0 {
			fmt.Fprintf(&b, "  HOARDING %d held (%d lifetime)", w.HoardHeld, w.Hoarded)
		}
		b.WriteByte('\n')
	}

	cs := &e.arena.Cards.AtomicStats
	fmt.Fprintf(&b, "  cards: dirty now %d; registered %d  cleaned %d  direct dirties %d\n",
		e.arena.Cards.CountDirtyAtomic(), cs.CardsRegistered.Load(),
		cs.CardsCleaned.Load(), cs.DirectDirties.Load())
	fmt.Fprintf(&b, "  heap: free list %d of %d objects (%d shards, %d shard steals)\n",
		e.arena.FreeLen(), e.arena.NumObjects(),
		e.arena.NumFreeShards(), e.arena.ShardSteals())
	fmt.Fprintf(&b, "  ladder: state %s  waiters %d  bp waits %d (timeouts %d)  emergency cycles %d\n",
		e.DegradationState(), e.deg.activeWaiters(),
		e.stats.backpressureWaits.Load(), e.stats.backpressureTimeouts.Load(),
		e.stats.emergencyCycles.Load())

	if snap := e.cfg.Faults.Snapshot(); len(snap) > 0 {
		fmt.Fprintf(&b, "  faults (spec %q seed %d):", e.cfg.Faults.String(), e.cfg.Faults.Seed())
		for _, p := range snap {
			fmt.Fprintf(&b, " %s hits=%d fires=%d", p.Name, p.Hits, p.Fires)
		}
		b.WriteByte('\n')
	}
	return strings.TrimRight(b.String(), "\n")
}

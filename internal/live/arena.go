// Package live is the second backend for the collector: where
// internal/machine runs the CGC algorithms on a simulated SMP with virtual
// time, this package runs them on a real shared heap mutated by real
// goroutines, under Go's memory model and the race detector.
//
// The heap is an arena of uniform objects, each a fixed number of reference
// slots stored as atomic words. Objects are addressed by heapsim.Addr
// (index, 1-based; 0 is nil) so the existing lock-free workpack.Pool carries
// live-engine grey references unchanged. N mutator goroutines allocate from
// a lock-free versioned-head free list, rewire graph edges and drop roots;
// M tracer goroutines (plus throttled background tracers) drain the packet
// pool concurrently. Everything the simulator can only assert by
// construction is exercised here under genuine contention: ABA-safe
// versioned-head CAS, the get-before-return termination protocol, overflow
// degrading to mark-and-dirty-card, atomic card dirtying against the
// three-step cleaning protocol, and the Section 5.1/5.2 publication
// protocols mapped onto sync/atomic.
//
// Correctness is established by an STW oracle: with mutators parked and the
// concurrent mark closed, a sequential mark from the live roots must be a
// subset of the concurrent mark set, and the difference is exactly floating
// garbage. See Engine.
package live

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"mcgc/internal/bitvec"
	"mcgc/internal/cardtable"
	"mcgc/internal/heapsim"
)

// Arena is the live engine's shared heap: numObjects uniform objects of
// refsPer reference slots each, plus the mark and allocation bit vectors
// and the card table. Object addresses run 1..numObjects; address 0 is nil,
// matching heapsim's reserved word 0.
type Arena struct {
	numObjects int
	refsPer    int
	slots      []atomic.Uint32 // (addr-1)*refsPer + slot

	// Mark bits are set by concurrent tracers (TestAndSetAtomic claims);
	// Alloc bits are published in batches by mutators (Section 5.2).
	Mark  *bitvec.Vector
	Alloc *bitvec.Vector
	// Cards maps object addresses to 64-object cards; the concurrent
	// dirtying/registration path of cardtable is used throughout.
	Cards *cardtable.Table

	// Free list: lock-free LIFO over object addresses with a versioned
	// head (the same ABA discipline as workpack's sub-pools, here under
	// allocation-rate contention from every mutator at once).
	next     []atomic.Int32 // next[addr-1] = next free addr, or 0
	freeHead atomic.Uint64  // version<<32 | addr (addr 0 = empty)
	freeLen  atomic.Int64

	// FreeListCAS / FreeListRetries count the allocation-path CAS traffic.
	FreeListCAS     atomic.Int64
	FreeListRetries atomic.Int64
}

// NewArena builds an arena with every object on the free list, all bits
// clear and all slots nil.
func NewArena(numObjects, refsPer int) *Arena {
	if numObjects < 1 || numObjects > 1<<24 {
		panic(fmt.Sprintf("live: bad arena size %d", numObjects))
	}
	if refsPer < 1 {
		panic(fmt.Sprintf("live: bad refs-per-object %d", refsPer))
	}
	a := &Arena{
		numObjects: numObjects,
		refsPer:    refsPer,
		slots:      make([]atomic.Uint32, numObjects*refsPer),
		Mark:       bitvec.New(numObjects + 1),
		Alloc:      bitvec.New(numObjects + 1),
		Cards:      cardtable.New(numObjects + 1),
		next:       make([]atomic.Int32, numObjects),
	}
	// Push in reverse so low addresses allocate first.
	for i := numObjects; i >= 1; i-- {
		a.PushFree(heapsim.Addr(i))
	}
	return a
}

// NumObjects returns the arena's object count.
func (a *Arena) NumObjects() int { return a.numObjects }

// RefsPerObject returns the number of reference slots per object.
func (a *Arena) RefsPerObject() int { return a.refsPer }

// FreeLen returns the current free-list length (racy estimate, exact at
// quiescence).
func (a *Arena) FreeLen() int64 { return a.freeLen.Load() }

// LoadRef atomically loads slot j of the object at addr.
func (a *Arena) LoadRef(addr heapsim.Addr, j int) heapsim.Addr {
	return heapsim.Addr(a.slots[(int(addr)-1)*a.refsPer+j].Load())
}

// StoreRef atomically stores v into slot j of the object at addr. The
// caller is responsible for the write barrier (Engine.writeBarrier).
func (a *Arena) StoreRef(addr heapsim.Addr, j int, v heapsim.Addr) {
	a.slots[(int(addr)-1)*a.refsPer+j].Store(uint32(v))
}

// casBackoff yields the processor once a free-list CAS loop has lost a few
// rounds, bounding the busy-spin when every mutator allocates at once (or
// when fault injection amplifies the contention).
func casBackoff(retries int) {
	if retries >= 4 {
		runtime.Gosched()
	}
}

// PopFree takes an object off the free list, or returns Nil when the heap
// is exhausted. The popped object's alloc bit is clear: it belongs to the
// caller's allocation cache until published (Section 5.2).
func (a *Arena) PopFree() heapsim.Addr {
	for retries := 0; ; retries++ {
		old := a.freeHead.Load()
		addr := heapsim.Addr(uint32(old))
		if addr == heapsim.Nil {
			return heapsim.Nil
		}
		next := uint32(a.next[addr-1].Load())
		a.FreeListCAS.Add(1)
		if a.freeHead.CompareAndSwap(old, (old>>32+1)<<32|uint64(next)) {
			a.freeLen.Add(-1)
			return addr
		}
		a.FreeListRetries.Add(1)
		casBackoff(retries)
	}
}

// PushFree returns an object to the free list. The caller must have cleared
// its alloc bit and nilled its slots (sweep does both).
func (a *Arena) PushFree(addr heapsim.Addr) {
	for retries := 0; ; retries++ {
		old := a.freeHead.Load()
		a.next[addr-1].Store(int32(uint32(old)))
		a.FreeListCAS.Add(1)
		if a.freeHead.CompareAndSwap(old, (old>>32+1)<<32|uint64(addr)) {
			a.freeLen.Add(1)
			return
		}
		a.FreeListRetries.Add(1)
		casBackoff(retries)
	}
}

// ZeroSlots nils every slot of the object at addr (sweep, before the object
// returns to the free list; the stores are atomic, but only the sweeper
// touches garbage).
func (a *Arena) ZeroSlots(addr heapsim.Addr) {
	base := (int(addr) - 1) * a.refsPer
	for j := 0; j < a.refsPer; j++ {
		a.slots[base+j].Store(0)
	}
}

// CardRange returns the object addresses [from, to) covered by a card,
// clipped to the arena.
func (a *Arena) CardRange(card int) (from, to heapsim.Addr) {
	lo, hi := a.Cards.CardBounds(card)
	if lo < 1 {
		lo = 1
	}
	if int(hi) > a.numObjects+1 {
		hi = heapsim.Addr(a.numObjects + 1)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Package live is the second backend for the collector: where
// internal/machine runs the CGC algorithms on a simulated SMP with virtual
// time, this package runs them on a real shared heap mutated by real
// goroutines, under Go's memory model and the race detector.
//
// The heap is an arena of uniform objects, each a fixed number of reference
// slots stored as atomic words. Objects are addressed by heapsim.Addr
// (index, 1-based; 0 is nil) so the existing lock-free workpack.Pool carries
// live-engine grey references unchanged. N mutator goroutines allocate from
// a sharded lock-free free list, rewire graph edges and drop roots;
// M tracer goroutines (plus throttled background tracers) drain the packet
// pool concurrently. Everything the simulator can only assert by
// construction is exercised here under genuine contention: ABA-safe
// versioned-head CAS, the get-before-return termination protocol, overflow
// degrading to mark-and-dirty-card, atomic card dirtying against the
// three-step cleaning protocol, and the Section 5.1/5.2 publication
// protocols mapped onto sync/atomic.
//
// Correctness is established by an STW oracle: with mutators parked and the
// concurrent mark closed, a sequential mark from the live roots must be a
// subset of the concurrent mark set, and the difference is exactly floating
// garbage. See Engine.
package live

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"mcgc/internal/bitvec"
	"mcgc/internal/cardtable"
	"mcgc/internal/heapsim"
)

// MaxFreeShards bounds the free-list shard count (PushFreeAll partitions
// into fixed-size per-shard chain heads).
const MaxFreeShards = 64

// freeShard is one shard of the free list: a lock-free LIFO over object
// addresses with a versioned head (the same ABA discipline as workpack's
// sub-pools). Padded so adjacent shards never share a cache line.
type freeShard struct {
	head    atomic.Uint64 // version<<32 | addr (addr 0 = empty)
	count   atomic.Int64
	cas     atomic.Int64 // head-CAS attempts on this shard
	retries atomic.Int64 // failed head CASes
	_       [4]int64
}

// Arena is the live engine's shared heap: numObjects uniform objects of
// refsPer reference slots each, plus the mark and allocation bit vectors
// and the card table. Object addresses run 1..numObjects; address 0 is nil,
// matching heapsim's reserved word 0.
type Arena struct {
	numObjects int
	refsPer    int
	slots      []atomic.Uint32 // (addr-1)*refsPer + slot

	// Mark bits are set by concurrent tracers (TestAndSetAtomic claims);
	// Alloc bits are published in batches by mutators (Section 5.2).
	Mark  *bitvec.Vector
	Alloc *bitvec.Vector
	// Cards maps object addresses to 64-object cards; the concurrent
	// dirtying/registration path of cardtable is used throughout.
	Cards *cardtable.Table

	// Free list: sharded by address so mutators with distinct home shards
	// allocate and free without touching the same head word. Every object
	// lives on the shard addr & shardMask; a mutator pops in batches from
	// its home shard and steals from the others only on exhaustion.
	next        []atomic.Int32 // next[addr-1] = next free addr, or 0
	shards      []freeShard
	shardMask   uint32
	shardSteals atomic.Int64 // batch pops served by a non-home shard
}

// DefaultFreeShards picks a power-of-two shard count for an arena of n
// objects: enough to spread allocation-rate contention, never so many that
// tiny test arenas get empty shards.
func DefaultFreeShards(n int) int {
	s := 1
	for s < 8 && n/(2*s) >= 256 {
		s *= 2
	}
	return s
}

// NewArena builds an arena with every object on the free list, all bits
// clear and all slots nil, using DefaultFreeShards shards.
func NewArena(numObjects, refsPer int) *Arena {
	return NewArenaShards(numObjects, refsPer, 0)
}

// NewArenaShards builds an arena with an explicit free-list shard count
// (rounded down to a power of two; 0 means DefaultFreeShards, negative
// means a single shard).
func NewArenaShards(numObjects, refsPer, shards int) *Arena {
	if numObjects < 1 || numObjects > 1<<24 {
		panic(fmt.Sprintf("live: bad arena size %d", numObjects))
	}
	if refsPer < 1 {
		panic(fmt.Sprintf("live: bad refs-per-object %d", refsPer))
	}
	if shards == 0 {
		shards = DefaultFreeShards(numObjects)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > MaxFreeShards {
		shards = MaxFreeShards
	}
	pow := 1
	for pow*2 <= shards {
		pow *= 2
	}
	shards = pow
	a := &Arena{
		numObjects: numObjects,
		refsPer:    refsPer,
		slots:      make([]atomic.Uint32, numObjects*refsPer),
		Mark:       bitvec.New(numObjects + 1),
		Alloc:      bitvec.New(numObjects + 1),
		Cards:      cardtable.New(numObjects + 1),
		next:       make([]atomic.Int32, numObjects),
		shards:     make([]freeShard, shards),
		shardMask:  uint32(shards - 1),
	}
	// Seed each shard with its residue class directly (no CAS needed before
	// the arena is shared), walking high to low so low addresses allocate
	// first within every shard.
	var heads [MaxFreeShards]uint32
	var counts [MaxFreeShards]int64
	for i := numObjects; i >= 1; i-- {
		s := uint32(i) & a.shardMask
		a.next[i-1].Store(int32(heads[s]))
		heads[s] = uint32(i)
		counts[s]++
	}
	for s := range a.shards {
		a.shards[s].head.Store(uint64(heads[s]))
		a.shards[s].count.Store(counts[s])
	}
	return a
}

// NumObjects returns the arena's object count.
func (a *Arena) NumObjects() int { return a.numObjects }

// RefsPerObject returns the number of reference slots per object.
func (a *Arena) RefsPerObject() int { return a.refsPer }

// NumFreeShards returns the free-list shard count.
func (a *Arena) NumFreeShards() int { return len(a.shards) }

// shardOf returns the home shard of an address.
func (a *Arena) shardOf(addr heapsim.Addr) int { return int(uint32(addr) & a.shardMask) }

// FreeLen returns the current free-list length across all shards (racy
// estimate, exact at quiescence).
func (a *Arena) FreeLen() int64 {
	var n int64
	for s := range a.shards {
		n += a.shards[s].count.Load()
	}
	return n
}

// ShardLen returns one shard's free count (racy estimate).
func (a *Arena) ShardLen(s int) int64 { return a.shards[s].count.Load() }

// FreeListCASes returns the total head-CAS attempts across shards.
func (a *Arena) FreeListCASes() int64 {
	var n int64
	for s := range a.shards {
		n += a.shards[s].cas.Load()
	}
	return n
}

// FreeListRetries returns the total failed head CASes across shards.
func (a *Arena) FreeListRetries() int64 {
	var n int64
	for s := range a.shards {
		n += a.shards[s].retries.Load()
	}
	return n
}

// ShardSteals returns how many batch pops were served by a non-home shard.
func (a *Arena) ShardSteals() int64 { return a.shardSteals.Load() }

// LoadRef atomically loads slot j of the object at addr.
func (a *Arena) LoadRef(addr heapsim.Addr, j int) heapsim.Addr {
	return heapsim.Addr(a.slots[(int(addr)-1)*a.refsPer+j].Load())
}

// StoreRef atomically stores v into slot j of the object at addr. The
// caller is responsible for the write barrier (Engine.writeBarrier).
func (a *Arena) StoreRef(addr heapsim.Addr, j int, v heapsim.Addr) {
	a.slots[(int(addr)-1)*a.refsPer+j].Store(uint32(v))
}

// casBackoff yields the processor once a free-list CAS loop has lost a few
// rounds, bounding the busy-spin when every mutator allocates at once (or
// when fault injection amplifies the contention).
func casBackoff(retries int) {
	if retries >= 4 {
		runtime.Gosched()
	}
}

// popBatchFrom unlinks up to k objects from one shard with a single
// versioned-head CAS (walk the next links of the head snapshot, then swing
// the head past the run; the version tag discards any walk that raced). The
// result aliases into's backing array.
func (a *Arena) popBatchFrom(s, k int, into []heapsim.Addr) []heapsim.Addr {
	sh := &a.shards[s]
	for retries := 0; ; retries++ {
		into = into[:0]
		old := sh.head.Load()
		cur := heapsim.Addr(uint32(old))
		if cur == heapsim.Nil {
			return into
		}
		for len(into) < k && cur != heapsim.Nil {
			into = append(into, cur)
			cur = heapsim.Addr(uint32(a.next[cur-1].Load()))
		}
		sh.cas.Add(1)
		if sh.head.CompareAndSwap(old, (old>>32+1)<<32|uint64(cur)) {
			sh.count.Add(-int64(len(into)))
			return into
		}
		sh.retries.Add(1)
		casBackoff(retries)
	}
}

// PopFreeBatch takes up to k objects off the free list with one CAS on the
// first non-empty shard, scanning from the caller's home shard so distinct
// mutators stay on distinct head words. It returns an empty slice only when
// every shard was observed empty — the alloc-failure signal, unchanged from
// the single-list arena. Popped objects' alloc bits are clear: they belong
// to the caller's allocation cache until published (Section 5.2).
func (a *Arena) PopFreeBatch(home, k int, into []heapsim.Addr) []heapsim.Addr {
	n := len(a.shards)
	for i := 0; i < n; i++ {
		s := (home + i) & int(a.shardMask)
		got := a.popBatchFrom(s, k, into)
		if len(got) > 0 {
			if i > 0 {
				a.shardSteals.Add(1)
			}
			return got
		}
	}
	return into[:0]
}

// PopFree takes one object off the free list, or returns Nil when the heap
// is exhausted (every shard empty).
func (a *Arena) PopFree() heapsim.Addr {
	var buf [1]heapsim.Addr
	got := a.PopFreeBatch(0, 1, buf[:0])
	if len(got) == 0 {
		return heapsim.Nil
	}
	return got[0]
}

// pushChain links a pre-chained run head..tail of n objects onto shard s
// with one CAS.
func (a *Arena) pushChain(s int, head, tail heapsim.Addr, n int64) {
	sh := &a.shards[s]
	for retries := 0; ; retries++ {
		old := sh.head.Load()
		a.next[tail-1].Store(int32(uint32(old)))
		sh.cas.Add(1)
		if sh.head.CompareAndSwap(old, (old>>32+1)<<32|uint64(head)) {
			sh.count.Add(n)
			return
		}
		sh.retries.Add(1)
		casBackoff(retries)
	}
}

// PushFree returns an object to its home shard. The caller must have cleared
// its alloc bit and nilled its slots (sweep does both).
func (a *Arena) PushFree(addr heapsim.Addr) {
	a.pushChain(a.shardOf(addr), addr, addr, 1)
}

// PushFreeAll returns a batch of objects to the free list with at most one
// CAS per shard: a single pass chains the objects through their next links
// by home shard, then each chain is pushed whole. Only the caller touches
// the (free) objects, so the chaining stores cannot race.
func (a *Arena) PushFreeAll(objs []heapsim.Addr) {
	if len(objs) == 0 {
		return
	}
	var heads, tails [MaxFreeShards]heapsim.Addr
	var counts [MaxFreeShards]int64
	for _, o := range objs {
		s := a.shardOf(o)
		if heads[s] == heapsim.Nil {
			heads[s], tails[s] = o, o
		} else {
			a.next[tails[s]-1].Store(int32(o))
			tails[s] = o
		}
		counts[s]++
	}
	for s := range a.shards {
		if counts[s] > 0 {
			a.pushChain(s, heads[s], tails[s], counts[s])
		}
	}
}

// ZeroSlots nils every slot of the object at addr (sweep, before the object
// returns to the free list; the stores are atomic, but only the sweeper
// touches garbage).
func (a *Arena) ZeroSlots(addr heapsim.Addr) {
	base := (int(addr) - 1) * a.refsPer
	for j := 0; j < a.refsPer; j++ {
		a.slots[base+j].Store(0)
	}
}

// CardRange returns the object addresses [from, to) covered by a card,
// clipped to the arena.
func (a *Arena) CardRange(card int) (from, to heapsim.Addr) {
	lo, hi := a.Cards.CardBounds(card)
	if lo < 1 {
		lo = 1
	}
	if int(hi) > a.numObjects+1 {
		hi = heapsim.Addr(a.numObjects + 1)
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

package live

import (
	"math/rand"
	"runtime"
	"sync/atomic"

	"mcgc/internal/cardtable"
	"mcgc/internal/heapsim"
	"mcgc/internal/workpack"
)

// opKind enumerates the mutator operations the workload shapes weight.
type opKind int

const (
	opAlloc  opKind = iota // allocate and install a new object
	opLink                 // store a reference into a reachable object
	opUnlink               // nil out a slot of a reachable object
	opDrop                 // drop a root (creates garbage)
	opWalk                 // read-only pointer chase
	numOps
)

// shapeWeights returns the op mix for a workload shape. "churn" is
// allocation-heavy (stresses publication, sweep and free-list CAS),
// "pointer" is mutation-heavy (stresses the barrier and card cleaning),
// "mixed" is in between.
func shapeWeights(shape string) [numOps]int {
	switch shape {
	case "churn":
		return [numOps]int{55, 15, 10, 15, 5}
	case "pointer":
		return [numOps]int{10, 40, 25, 5, 20}
	default: // mixed
		return [numOps]int{30, 25, 15, 10, 20}
	}
}

// mutator is one application goroutine. All of its persistent references
// live in roots — nothing is cached across ops — so a parked mutator's
// reachable set is exactly what the root arrays say, which is what makes
// the STW oracle's sequential mark an exact ground truth.
type mutator struct {
	e   *Engine
	id  int
	rng *rand.Rand

	// roots is this mutator's thread stack: atomic slots the driver scans
	// at STW init and rescans in the final phase.
	roots []atomic.Uint32

	// cache holds objects popped from the free list but not yet installed;
	// pending holds installed objects whose allocation bits are not yet
	// published (the Section 5.2 batch).
	cache   []heapsim.Addr
	pending []heapsim.Addr

	// home is this mutator's free-list shard: refills batch-pop from it and
	// steal from the other shards only on exhaustion.
	home int
	// cardBuf batches the write barrier's card stores; nil dirties the
	// shared table directly. It is flushed before every park and fence ack.
	cardBuf *cardtable.DirtyBuffer
	// local is the packet cache behind this mutator's allocation-tax
	// tracing (nil without pacing or with the local tier disabled).
	local *workpack.LocalPool

	lastEpoch int64
	ackEpoch  atomic.Int64
	exited    atomic.Bool
	// retired is the external handle's Retire claim (CAS-taken exactly
	// once); exited flips only after exit() has finished unwinding.
	retired atomic.Bool

	cum [numOps]int
	ops int64
}

func newMutator(e *Engine, id int) *mutator {
	m := &mutator{
		e:     e,
		id:    id,
		rng:   e.newRNG(100 + id),
		roots: make([]atomic.Uint32, e.cfg.RootsPerMutator),
		home:  id,
	}
	if e.cardBufCap > 0 {
		m.cardBuf = e.arena.Cards.NewDirtyBuffer(e.cardBufCap)
	}
	if e.pacer != nil && e.localCap > 0 {
		m.local = e.pool.NewLocal(e.localCap)
	}
	w := shapeWeights(e.cfg.Shape)
	sum := 0
	for i, v := range w {
		sum += v
		m.cum[i] = sum
	}
	return m
}

func (m *mutator) run() {
	defer m.e.wg.Done()
	for !m.e.shutdown.Load() {
		m.maybePark()
		m.maybeAck()
		m.step()
		if m.ops++; m.ops&63 == 0 {
			// Ops are sub-microsecond; on few-core hosts an unyielding
			// mutator would starve the driver and tracers for a whole
			// preemption slice.
			runtime.Gosched()
		}
	}
	m.exit()
}

// exit is the common retirement path of engine-driven and external mutators:
// publish what is installed, flush the buffered cards, return the uninstalled
// cache in one batch, spill the packet cache and leave the safepoint
// population. It must run outside any STW window the mutator has not parked
// for — callers reach it only after observing shutdown, which the driver
// sets with the world running.
func (m *mutator) exit() {
	m.publish()
	m.cardBuf.Flush()
	m.e.arena.PushFreeAll(m.cache)
	m.cache = nil
	if m.local != nil {
		m.local.Flush()
	}
	m.e.stats.mutatorOps.Add(m.ops)
	m.exited.Store(true)
	m.e.mu.Lock()
	m.e.activeMuts--
	m.e.cond.Broadcast()
	m.e.mu.Unlock()
}

// maybePark is the safepoint poll: one atomic load on the fast path. On the
// slow path the mutator publishes its allocation batch (caches are retired
// at a pause, as the paper's mutators do), then parks until the driver
// resumes the world.
func (m *mutator) maybePark() {
	if !m.e.stopFlag.Load() {
		return
	}
	// A stalling mutator stretches the STW latency for everyone: the driver
	// cannot proceed until the last straggler parks.
	m.e.fi.safepointStall.Stall()
	m.publish()
	m.cardBuf.Flush()
	m.e.mu.Lock()
	m.e.parked++
	m.e.cond.Broadcast()
	for m.e.stopWorld {
		m.e.cond.Wait()
	}
	m.e.parked--
	m.e.mu.Unlock()
}

// maybeAck answers a pending fence handshake (Section 5.3 step 2). The
// acknowledgement store is the forced fence; the batch publication rides on
// it, which also bounds how long an allocation bit can stay unpublished.
func (m *mutator) maybeAck() {
	if epoch := m.e.fenceEpoch.Load(); epoch != m.lastEpoch {
		m.lastEpoch = epoch
		m.publish()
		// The handshake is also the card buffer's bound: a registered card
		// set is rescanned only after every mutator acked, so flushing here
		// guarantees buffered dirt never outlives one cleaning pass.
		m.cardBuf.Flush()
		// A delay here holds the driver's forceFences spin mid-handshake:
		// the batch above is published but the ack is withheld.
		m.e.fi.fenceDelay.Stall()
		m.ackEpoch.Store(epoch)
		m.e.stats.forcedFences.Add(1)
	}
}

// publish makes the batch's allocation bits visible (Section 5.2: one fence
// for a whole cache of objects). During a cycle new objects are also marked
// — allocation is black, so the sweep cannot free an object whose contents
// the cycle never traced.
func (m *mutator) publish() {
	if len(m.pending) == 0 {
		return
	}
	marking := m.e.markingActive.Load()
	for _, obj := range m.pending {
		if marking {
			m.e.arena.Mark.TestAndSetAtomic(int(obj))
		}
		m.e.arena.Alloc.SetAtomic(int(obj))
	}
	m.e.stats.objectsAllocated.Add(int64(len(m.pending)))
	m.e.stats.allocFences.Add(1)
	m.pending = m.pending[:0]
}

func (m *mutator) step() {
	n := m.rng.Intn(m.cum[numOps-1])
	var op opKind
	for op = 0; n >= m.cum[op]; op++ {
	}
	switch op {
	case opAlloc:
		m.doAlloc()
	case opLink:
		if c := m.reachable(); c != heapsim.Nil {
			m.store(c, m.rng.Intn(m.e.arena.refsPer), m.reachable())
		}
	case opUnlink:
		if c := m.reachable(); c != heapsim.Nil {
			m.store(c, m.rng.Intn(m.e.arena.refsPer), heapsim.Nil)
		}
	case opDrop:
		m.roots[m.rng.Intn(len(m.roots))].Store(0)
	case opWalk:
		m.walk()
	}
}

// doAlloc takes an object from the allocation cache (refilling from the
// shared free list), links it into the graph, and queues its allocation bit
// for batched publication. Until that batch publishes, a tracer reaching
// the object takes the deferred path. On heap exhaustion the op degrades to
// dropping a root, so sustained pressure turns into garbage for the next
// cycle instead of a stall.
func (m *mutator) doAlloc() {
	obj := m.takeFromCache()
	if obj == heapsim.Nil {
		m.e.stats.allocFailed.Add(1)
		// Allocation stall: publish the part-filled batch now — with the
		// heap exhausted it may never fill, and an unpublished object would
		// bounce through the deferred pool until the next handshake — then
		// signal for an early collection and cede the processor so the
		// collector can produce free memory (trigger-and-retry, not spin).
		m.publish()
		m.e.memPressure.Store(true)
		runtime.Gosched()
		return
	}
	// Seed the new object with an edge into the existing graph half the
	// time, so the heap grows lists and trees rather than isolated cells.
	if t := m.reachable(); t != heapsim.Nil && m.rng.Intn(2) == 0 {
		m.store(obj, m.rng.Intn(m.e.arena.refsPer), t)
	}
	// Install: root it, or hang it off a reachable object.
	if c := m.reachable(); c != heapsim.Nil && m.rng.Intn(2) == 0 {
		m.store(c, m.rng.Intn(m.e.arena.refsPer), obj)
	} else {
		m.roots[m.rng.Intn(len(m.roots))].Store(uint32(obj))
	}
	m.pending = append(m.pending, obj)
	if len(m.pending) >= m.e.cfg.AllocBatch {
		m.publish()
	}
}

func (m *mutator) takeFromCache() heapsim.Addr {
	if len(m.cache) == 0 {
		// Injected heap exhaustion: the refill reports failure exactly as a
		// genuinely empty free list would, so the whole degradation chain
		// (publish part-filled batch, signal pressure, retry next op) runs.
		if m.e.fi.allocFail.Fire() {
			return heapsim.Nil
		}
		m.cache = m.e.arena.PopFreeBatch(m.home, m.e.cfg.AllocBatch, m.cache[:0])
		if len(m.cache) == 0 {
			// Rung 1 of the degradation ladder: with the ladder enabled a
			// failed refill becomes a bounded blocking wait (servicing
			// safepoints and paying the pressure tax) instead of an
			// immediate failure. Only a wait that times out — or the ladder
			// being off — surfaces as allocation failure to the caller.
			if !m.e.cfg.Ladder.Enabled || !m.backpressureRefill() {
				return heapsim.Nil
			}
		}
		// The allocation tax (Section 3.1): every cache refill is this
		// mutator's allocation increment, and the tracing budget it owes is
		// repaid inline before the refill returns. markingActive only flips
		// while the world is stopped, so its value is stable for the whole
		// tax payment.
		if m.e.pacer != nil && m.e.markingActive.Load() {
			m.e.payAllocTax(m, int64(len(m.cache)))
		}
		// Injected overload: the live.overload amplifier burns an extra
		// batch on top of this refill, so offered allocation outruns what
		// tracing can free and the ladder has to carry the run.
		if m.e.fi.overload.Fire() {
			m.amplifyAlloc()
		}
	}
	obj := m.cache[len(m.cache)-1]
	m.cache = m.cache[:len(m.cache)-1]
	return obj
}

// store writes a reference and runs the write barrier: dirty the card of
// the stored-into object, with no fence (Section 5.3) — the slot store
// itself is the only synchronized operation.
func (m *mutator) store(c heapsim.Addr, j int, v heapsim.Addr) {
	m.e.arena.StoreRef(c, j, v)
	if m.e.markingActive.Load() {
		if m.cardBuf != nil {
			m.cardBuf.DirtyObject(c)
		} else {
			m.e.arena.Cards.DirtyObjectAtomic(c)
		}
	}
}

// reachable returns some object reachable from this mutator's roots right
// now: a random root, followed by a few random hops.
func (m *mutator) reachable() heapsim.Addr {
	cur := heapsim.Addr(m.roots[m.rng.Intn(len(m.roots))].Load())
	if cur == heapsim.Nil {
		return heapsim.Nil
	}
	for hop := m.rng.Intn(4); hop > 0; hop-- {
		next := m.e.arena.LoadRef(cur, m.rng.Intn(m.e.arena.refsPer))
		if next == heapsim.Nil {
			break
		}
		cur = next
	}
	return cur
}

// walk is a read-only pointer chase — load traffic racing the tracers.
func (m *mutator) walk() {
	cur := heapsim.Addr(m.roots[m.rng.Intn(len(m.roots))].Load())
	for hop := 0; hop < 8 && cur != heapsim.Nil; hop++ {
		cur = m.e.arena.LoadRef(cur, m.rng.Intn(m.e.arena.refsPer))
	}
}

package vtime

import "testing"

func TestArithmetic(t *testing.T) {
	var tm Time
	tm = tm.Add(3 * Millisecond)
	if tm != Time(3*Millisecond) {
		t.Fatalf("Add: %v", tm)
	}
	if d := tm.Sub(Time(Millisecond)); d != 2*Millisecond {
		t.Fatalf("Sub: %v", d)
	}
	if !Time(1).Before(Time(2)) || !Time(2).After(Time(1)) {
		t.Fatal("Before/After")
	}
	if Max(Time(1), Time(2)) != 2 || Min(Time(1), Time(2)) != 1 {
		t.Fatal("Max/Min")
	}
}

func TestUnits(t *testing.T) {
	if (2 * Millisecond).Milliseconds() != 2.0 {
		t.Fatal("Milliseconds")
	}
	if (3 * Second).Seconds() != 3.0 {
		t.Fatal("Seconds")
	}
}

func TestString(t *testing.T) {
	for _, tc := range []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50us"},
		{3 * Millisecond, "3.00ms"},
		{1500 * Millisecond, "1.500s"},
	} {
		if got := tc.d.String(); got != tc.want {
			t.Fatalf("%d.String() = %q, want %q", int64(tc.d), got, tc.want)
		}
	}
	if got := Time(3 * Millisecond).String(); got != "3.00ms" {
		t.Fatalf("Time.String = %q", got)
	}
}

// Package vtime provides the virtual-time base used by the machine
// simulator. All GC and mutator work in the reproduction is charged in
// virtual nanoseconds so that experiments are deterministic and independent
// of the host's real processor count.
package vtime

import "fmt"

// Time is an instant in virtual nanoseconds since the start of a run.
type Time int64

// Duration is a span of virtual nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns t shifted by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Milliseconds returns the duration as floating-point milliseconds,
// the unit the paper reports pause times in.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", float64(d)/float64(Microsecond))
	case d < Second:
		return fmt.Sprintf("%.2fms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// String formats the instant as a duration since the run start.
func (t Time) String() string { return Duration(t).String() }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

package cardtable

import (
	"sync"
	"testing"

	"mcgc/internal/heapsim"
)

func TestRegisterAndClearAtomicBasic(t *testing.T) {
	ct := New(4096)                         // 64 cards
	ct.DirtyObjectAtomic(heapsim.Addr(10))  // card 0
	ct.DirtyObjectAtomic(heapsim.Addr(100)) // card 1
	ct.DirtyCardAtomic(63)
	if !ct.IsDirtyAtomic(0) || !ct.IsDirtyAtomic(1) || !ct.IsDirtyAtomic(63) {
		t.Fatal("dirty bits not set")
	}
	if got := ct.CountDirtyAtomic(); got != 3 {
		t.Fatalf("CountDirtyAtomic = %d, want 3", got)
	}
	cards := ct.RegisterAndClearAtomic(nil)
	if len(cards) != 3 || cards[0] != 0 || cards[1] != 1 || cards[2] != 63 {
		t.Fatalf("registered %v, want [0 1 63]", cards)
	}
	if got := ct.CountDirtyAtomic(); got != 0 {
		t.Fatalf("%d cards still dirty after register-and-clear", got)
	}
	if got := ct.AtomicStats.CardsRegistered.Load(); got != 3 {
		t.Fatalf("CardsRegistered = %d, want 3", got)
	}
	if got := ct.AtomicStats.BarrierMarks.Load(); got != 2 {
		t.Fatalf("BarrierMarks = %d, want 2", got)
	}
	ct.NoteCleanedAtomic(3)
	if got := ct.AtomicStats.CardsCleaned.Load(); got != 3 {
		t.Fatalf("CardsCleaned = %d, want 3", got)
	}
}

// Concurrent dirtying races with registration passes; no dirtying is ever
// lost: once the dirtiers stop, one final pass plus the accumulated passes
// have registered every card that was ever dirtied. Run with -race.
func TestConcurrentDirtyAndRegister(t *testing.T) {
	const (
		heapWords = 1 << 16 // 1024 cards
		dirtiers  = 6
		perWorker = 20000
	)
	ct := New(heapWords)
	everDirtied := make([]bool, ct.NumCards())
	var mu sync.Mutex

	registered := make(map[int]int)
	stop := make(chan struct{})
	var cleanerWg sync.WaitGroup
	cleanerWg.Add(1)
	go func() { // cleaning passes race with the dirtiers
		defer cleanerWg.Done()
		var buf []int
		for {
			buf = ct.RegisterAndClearAtomic(buf[:0])
			mu.Lock()
			for _, c := range buf {
				registered[c]++
			}
			mu.Unlock()
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < dirtiers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]bool, ct.NumCards())
			for i := 0; i < perWorker; i++ {
				a := heapsim.Addr((w*perWorker + i*37) % heapWords)
				ct.DirtyObjectAtomic(a)
				local[ct.CardOf(a)] = true
			}
			mu.Lock()
			for c, d := range local {
				if d {
					everDirtied[c] = true
				}
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(stop)
	cleanerWg.Wait()

	// Final quiescent pass catches anything dirtied after the cleaner's
	// last swap.
	for _, c := range ct.RegisterAndClearAtomic(nil) {
		registered[c]++
	}
	for c, d := range everDirtied {
		if d && registered[c] == 0 {
			t.Fatalf("card %d dirtied but never registered", c)
		}
	}
	for c := range registered {
		if !everDirtied[c] {
			t.Fatalf("card %d registered but never dirtied", c)
		}
	}
	if got := ct.CountDirtyAtomic(); got != 0 {
		t.Fatalf("%d cards dirty at quiescence", got)
	}
	if got := ct.AtomicStats.BarrierMarks.Load(); got != dirtiers*perWorker {
		t.Fatalf("BarrierMarks = %d, want %d", got, dirtiers*perWorker)
	}
}

// The single-writer simulator path must stay allocation-free.
func TestSimulatorPathAllocFree(t *testing.T) {
	ct := New(1 << 14)
	buf := make([]int, 0, ct.NumCards())
	allocs := testing.AllocsPerRun(100, func() {
		ct.DirtyObject(heapsim.Addr(123))
		ct.DirtyCard(5)
		buf = ct.RegisterAndClear(buf[:0])
		ct.NoteCleaned(len(buf))
	})
	if allocs != 0 {
		t.Fatalf("simulator card path allocates %v per run", allocs)
	}
}

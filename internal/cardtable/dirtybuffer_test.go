package cardtable

import (
	"testing"

	"mcgc/internal/heapsim"
)

func TestDirtyBufferBasics(t *testing.T) {
	tab := New(1024) // 16 cards
	b := tab.NewDirtyBuffer(8)

	// Nothing reaches the shared table until a flush.
	b.DirtyObject(heapsim.Addr(0))
	b.DirtyObject(heapsim.Addr(CardWords))
	if got := tab.CountDirtyAtomic(); got != 0 {
		t.Fatalf("table shows %d dirty cards before flush, want 0", got)
	}
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	b.Flush()
	if got := tab.CountDirtyAtomic(); got != 2 {
		t.Fatalf("table shows %d dirty cards after flush, want 2", got)
	}
	if !tab.IsDirtyAtomic(0) || !tab.IsDirtyAtomic(1) {
		t.Fatal("wrong cards dirtied")
	}
	if got := tab.AtomicStats.BufferFlushes.Load(); got != 1 {
		t.Fatalf("BufferFlushes = %d, want 1", got)
	}
	// An empty re-flush is free: no counter motion.
	b.Flush()
	if got := tab.AtomicStats.BufferFlushes.Load(); got != 1 {
		t.Fatalf("empty flush counted: BufferFlushes = %d, want 1", got)
	}
}

// TestDirtyBufferDedupAndBarrierMarks checks the adjacent-store dedup and the
// batched BarrierMarks credit: every barrier execution is counted even when
// consecutive stores collapse to one buffered card.
func TestDirtyBufferDedupAndBarrierMarks(t *testing.T) {
	tab := New(1024)
	b := tab.NewDirtyBuffer(8)

	// A mutator initialising an object: many stores, one card.
	for i := 0; i < 5; i++ {
		b.DirtyObject(heapsim.Addr(i))
	}
	if b.Pending() != 1 {
		t.Fatalf("adjacent stores buffered %d cards, want 1", b.Pending())
	}
	// Alternating cards defeat the last-card dedup (by design: it only
	// collapses runs, the common initialisation pattern).
	b.DirtyObject(heapsim.Addr(CardWords))
	b.DirtyObject(heapsim.Addr(0))
	if b.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", b.Pending())
	}
	b.Flush()
	if got := tab.AtomicStats.BarrierMarks.Load(); got != 7 {
		t.Fatalf("BarrierMarks = %d, want 7 (every execution counted)", got)
	}
	if got := tab.CountDirtyAtomic(); got != 2 {
		t.Fatalf("dirty cards = %d, want 2 (duplicates collapse in the table)", got)
	}
}

// TestDirtyBufferFlushOnFull fills the buffer to capacity and checks the
// automatic flush: the table is updated without an explicit Flush call.
func TestDirtyBufferFlushOnFull(t *testing.T) {
	tab := New(CardWords * 64)
	const capacity = 4
	b := tab.NewDirtyBuffer(capacity)
	for i := 0; i < capacity; i++ {
		b.DirtyObject(heapsim.Addr(i * 2 * CardWords)) // distinct, non-adjacent cards
	}
	if b.Pending() != 0 {
		t.Fatalf("pending = %d after filling to capacity, want 0 (auto-flush)", b.Pending())
	}
	if got := tab.CountDirtyAtomic(); got != capacity {
		t.Fatalf("dirty cards = %d, want %d", got, capacity)
	}
	if got := tab.AtomicStats.BufferFlushes.Load(); got != 1 {
		t.Fatalf("BufferFlushes = %d, want 1", got)
	}
}

// TestDirtyBufferNilSafe pins the nil-discipline: every method on a nil
// buffer is a no-op, so disabled configurations need no branches at fence
// and park call sites.
func TestDirtyBufferNilSafe(t *testing.T) {
	var b *DirtyBuffer
	b.DirtyObject(heapsim.Addr(1))
	b.Flush()
	if b.Pending() != 0 {
		t.Fatal("nil buffer pending != 0")
	}
}

// TestDirtyBufferRegisterInterleave drives the buffer against the three-step
// cleaning protocol: a card buffered across a registration pass is not lost —
// it surfaces in the next pass after the flush, exactly like a card dirtied
// just after its table word was registered.
func TestDirtyBufferRegisterInterleave(t *testing.T) {
	tab := New(CardWords * 16)
	b := tab.NewDirtyBuffer(16)

	b.DirtyObject(heapsim.Addr(3 * CardWords))
	// Pass 1 runs while the dirt is still private: sees nothing.
	if got := tab.RegisterAndClearAtomic(nil); len(got) != 0 {
		t.Fatalf("pass 1 registered %v, want none (dirt still buffered)", got)
	}
	b.Flush() // the fence handshake
	got := tab.RegisterAndClearAtomic(nil)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("pass 2 registered %v, want [3]", got)
	}
	if tab.CountDirtyAtomic() != 0 {
		t.Fatal("register-and-clear left dirt behind")
	}
}

// TestDirtyBufferZeroAllocSteadyState pins the barrier fast path and the
// flush at zero heap allocations once the buffer exists.
func TestDirtyBufferZeroAllocSteadyState(t *testing.T) {
	tab := New(CardWords * 64)
	b := tab.NewDirtyBuffer(16)
	var a heapsim.Addr
	if avg := testing.AllocsPerRun(200, func() {
		b.DirtyObject(a)
		a += CardWords
		if a >= CardWords*60 {
			a = 0
		}
	}); avg != 0 {
		t.Fatalf("buffered barrier allocates %.1f per op, want 0", avg)
	}
	b.Flush()
	if avg := testing.AllocsPerRun(50, func() {
		b.DirtyObject(1)
		b.Flush()
	}); avg != 0 {
		t.Fatalf("flush allocates %.1f per op, want 0", avg)
	}
}

// Package cardtable implements the card marking write-barrier state of the
// mostly concurrent collector (Section 2 of the paper) and the snapshot
// registration step of the fence-free write barrier protocol (Section 5.3).
//
// The heap is divided into 512-byte cards. The mutator's write barrier
// dirties the card of the object whose reference slot it stored into; it
// issues no fence (the paper's third fence-batching technique). Cleaning is
// a three-step protocol: register-and-clear the dirty indicators, force
// every mutator through one fence, then rescan marked objects on the
// registered cards.
package cardtable

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"mcgc/internal/bitvec"
	"mcgc/internal/faultinject"
	"mcgc/internal/heapsim"
)

const (
	// CardBytes is the card size used throughout the paper's evaluation
	// ("The card size is 512 bytes").
	CardBytes = 512
	// CardWords is the card size in heap words.
	CardWords = CardBytes / heapsim.WordBytes
	cardShift = 6 // log2(CardWords)
)

// Stats counts card activity for the experiment tables. These fields are
// maintained by the single-writer simulator path; the concurrent live-engine
// path counts into AtomicStats instead so the hot simulator loop stays free
// of atomic read-modify-writes it does not need.
type Stats struct {
	BarrierMarks    int64 // write-barrier executions (each dirties one card)
	RegisterPasses  int64 // snapshot registration passes
	CardsRegistered int64 // cumulative cards handed to cleaning
	CardsCleaned    int64 // cumulative cards rescanned by the cleaning step
}

// AtomicStats is the concurrency-safe mirror of Stats, maintained by the
// *Atomic methods, which many mutator and GC goroutines call at once.
type AtomicStats struct {
	BarrierMarks    atomic.Int64
	RegisterPasses  atomic.Int64
	CardsRegistered atomic.Int64
	CardsCleaned    atomic.Int64
	// DirectDirties counts DirtyCardAtomic calls — card dirtying that did
	// not come through the write barrier but from a degradation path (packet
	// overflow, deferred overflow, unpublished-object redirty). The tracing
	// engine's own degradation counters must reconcile with this total.
	DirectDirties atomic.Int64
	// BufferFlushes counts non-empty DirtyBuffer flushes into the table.
	BufferFlushes atomic.Int64
}

// Table tracks one dirty bit per card.
type Table struct {
	dirty *bitvec.Vector
	cards int

	// cleanStall is an optional fault point fired between word registrations
	// inside RegisterAndClearAtomic, widening the window in which concurrent
	// dirtying races the register-and-clear pass. Nil (the default) is free.
	cleanStall *faultinject.Point

	Stats       Stats
	AtomicStats AtomicStats
}

// New creates a card table covering a heap of heapWords words.
func New(heapWords int) *Table {
	if heapWords <= 0 {
		panic(fmt.Sprintf("cardtable: bad heap size %d", heapWords))
	}
	cards := (heapWords + CardWords - 1) / CardWords
	return &Table{dirty: bitvec.New(cards), cards: cards}
}

// InjectCleanFault installs the register-and-clear stall point (nil
// restores the disabled state). Call before the table is shared.
func (t *Table) InjectCleanFault(pt *faultinject.Point) { t.cleanStall = pt }

// NumCards returns the number of cards in the table.
func (t *Table) NumCards() int { return t.cards }

// CardOf returns the card index covering address a.
func (t *Table) CardOf(a heapsim.Addr) int { return int(a) >> cardShift }

// CardBounds returns the heap-address window [from, to) of a card.
func (t *Table) CardBounds(card int) (from, to heapsim.Addr) {
	if card < 0 || card >= t.cards {
		panic(fmt.Sprintf("cardtable: card %d out of range [0,%d)", card, t.cards))
	}
	return heapsim.Addr(card << cardShift), heapsim.Addr((card + 1) << cardShift)
}

// DirtyObject is the write barrier's card store: it dirties the card holding
// the object's header. Per Section 5.3 no fence accompanies this store.
func (t *Table) DirtyObject(a heapsim.Addr) {
	t.dirty.SetAtomic(int(a) >> cardShift)
	t.Stats.BarrierMarks++
}

// DirtyCard dirties a card directly (used by the work-packet overflow path,
// Section 4.3).
func (t *Table) DirtyCard(card int) {
	t.dirty.SetAtomic(card)
}

// IsDirty reports whether a card's dirty indicator is set.
func (t *Table) IsDirty(card int) bool { return t.dirty.Test(card) }

// CountDirty returns the number of dirty cards.
func (t *Table) CountDirty() int { return t.dirty.Count() }

// ClearAll clears every dirty indicator (collection-cycle initialization).
func (t *Table) ClearAll() { t.dirty.ClearAll() }

// ForEachDirty visits every dirty card without clearing its indicator. The
// generational extension's minor collections use it while a concurrent
// old-space phase is active: the scavenge needs the remembered set, and the
// old collector still needs the same cards for retracing, so nothing may be
// cleared.
func (t *Table) ForEachDirty(fn func(card int)) {
	for c := t.dirty.NextSet(0); c >= 0; c = t.dirty.NextSet(c + 1) {
		fn(c)
	}
}

// NoteCleaned records that n registered cards finished the rescan step
// (step 3 of the cleaning protocol). The tracing engine calls it so
// registered-vs-cleaned counts can be compared per pass.
func (t *Table) NoteCleaned(n int) { t.Stats.CardsCleaned += int64(n) }

// DirtyObjectAtomic is the write barrier's card store on the concurrent
// path: many mutator goroutines dirty cards at once while a cleaning pass
// may be registering. The dirty store itself is a single fetch-or; the
// execution count goes to AtomicStats.
func (t *Table) DirtyObjectAtomic(a heapsim.Addr) {
	t.dirty.TestAndSetAtomic(int(a) >> cardShift)
	t.AtomicStats.BarrierMarks.Add(1)
}

// DirtyCardAtomic dirties a card directly on the concurrent path (work
// packet overflow and deferred-overflow fallbacks, Section 4.3).
func (t *Table) DirtyCardAtomic(card int) {
	t.dirty.TestAndSetAtomic(card)
	t.AtomicStats.DirectDirties.Add(1)
}

// IsDirtyAtomic reports a card's dirty indicator with an atomic load, for
// readers racing with concurrent dirtying.
func (t *Table) IsDirtyAtomic(card int) bool { return t.dirty.TestAcquire(card) }

// CountDirtyAtomic counts dirty cards with atomic word loads, safe against
// concurrent dirtying. The result is a snapshot-estimate, exact at
// quiescence.
func (t *Table) CountDirtyAtomic() int {
	n := 0
	for w := 0; w < t.dirty.Words(); w++ {
		n += bits.OnesCount64(t.dirty.LoadWord(w))
	}
	return n
}

// NoteCleanedAtomic is NoteCleaned for the concurrent path.
func (t *Table) NoteCleanedAtomic(n int) { t.AtomicStats.CardsCleaned.Add(int64(n)) }

// DirtyBuffer batches one mutator's write-barrier card stores: instead of a
// fetch-or on the shared table per barrier, the card index is appended to a
// private buffer that is flushed — one fetch-or per distinct buffered card —
// when full and at every fence handshake and safepoint park. Only the
// fence-free barrier path may be buffered: the degradation paths
// (DirtyCardAtomic) stay direct, so the DirectDirties reconciliation
// identity is untouched. Delaying barrier dirt until the next handshake is
// safe for the three-step cleaning protocol: a card that misses one
// registration pass keeps its (buffered) indicator for the next pass or for
// the stop-the-world close, exactly like a card dirtied just after its
// table word was registered — and because every mutator flushes before
// parking, all buffers are empty whenever the world is stopped.
//
// A DirtyBuffer belongs to one goroutine; methods are nil-safe no-ops so
// disabled configurations need no branches at the call sites.
type DirtyBuffer struct {
	t       *Table
	cards   []int
	last    int   // last appended card + 1 (0 = none): adjacent-store dedup
	appends int64 // barrier executions since the last flush
}

// NewDirtyBuffer creates a write-barrier buffer of the given capacity over
// the table (minimum 1).
func (t *Table) NewDirtyBuffer(capacity int) *DirtyBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &DirtyBuffer{t: t, cards: make([]int, 0, capacity)}
}

// DirtyObject records the write barrier's card store into the buffer,
// flushing when the buffer fills. Consecutive stores into the same card — a
// mutator initialising an object's slots — collapse to one entry.
func (b *DirtyBuffer) DirtyObject(a heapsim.Addr) {
	if b == nil {
		return
	}
	c := int(a) >> cardShift
	b.appends++
	if c+1 == b.last {
		return
	}
	b.last = c + 1
	b.cards = append(b.cards, c)
	if len(b.cards) == cap(b.cards) {
		b.Flush()
	}
}

// Flush publishes every buffered card to the shared table and credits the
// batched barrier executions to AtomicStats.BarrierMarks.
func (b *DirtyBuffer) Flush() {
	if b == nil || b.appends == 0 {
		return
	}
	for _, c := range b.cards {
		b.t.dirty.TestAndSetAtomic(c)
	}
	b.t.AtomicStats.BarrierMarks.Add(b.appends)
	b.t.AtomicStats.BufferFlushes.Add(1)
	b.cards = b.cards[:0]
	b.last = 0
	b.appends = 0
}

// Pending returns the number of distinct cards currently buffered.
func (b *DirtyBuffer) Pending() int {
	if b == nil {
		return 0
	}
	return len(b.cards)
}

// RegisterAndClearAtomic is step 1 of the cleaning protocol on the
// concurrent path: it registers and clears every dirty indicator with one
// atomic swap per table word, so a card dirtied at any instant is observed
// by exactly one registration pass — a bit set between the pass's read and
// clear cannot be lost, which the separate scan-then-clear of the simulator
// path only guarantees single-threaded. Cards dirtied after their word is
// swapped keep their indicator for the next pass. The caller must still
// force every mutator through a fence (step 2) before rescanning the
// returned cards (step 3).
func (t *Table) RegisterAndClearAtomic(into []int) []int {
	t.AtomicStats.RegisterPasses.Add(1)
	registered := int64(0)
	for w := 0; w < t.dirty.Words(); w++ {
		if t.cleanStall != nil {
			// Mid-pass stall: words taken so far are registered while later
			// words are still accepting dirt — the exact interleaving the
			// take-word protocol must survive.
			t.cleanStall.Stall()
		}
		word := t.dirty.TakeWord(w)
		for word != 0 {
			card := w*64 + bits.TrailingZeros64(word)
			if card < t.cards {
				into = append(into, card)
				registered++
			}
			word &= word - 1
		}
	}
	t.AtomicStats.CardsRegistered.Add(registered)
	return into
}

// RegisterAndClear performs step 1 of the Section 5.3 cleaning protocol: it
// scans the card table, appends every dirty card's index to into, and clears
// the indicators of the registered cards. The caller must then force all
// mutators through a fence (step 2) before cleaning the returned cards
// (step 3).
//
// Cards dirtied again after this pass keep (or regain) their indicator and
// will be found by the next pass or by the stop-the-world phase.
func (t *Table) RegisterAndClear(into []int) []int {
	t.Stats.RegisterPasses++
	for c := t.dirty.NextSet(0); c >= 0; c = t.dirty.NextSet(c + 1) {
		t.dirty.ClearAtomic(c)
		into = append(into, c)
		t.Stats.CardsRegistered++
	}
	return into
}

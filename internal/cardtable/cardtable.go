// Package cardtable implements the card marking write-barrier state of the
// mostly concurrent collector (Section 2 of the paper) and the snapshot
// registration step of the fence-free write barrier protocol (Section 5.3).
//
// The heap is divided into 512-byte cards. The mutator's write barrier
// dirties the card of the object whose reference slot it stored into; it
// issues no fence (the paper's third fence-batching technique). Cleaning is
// a three-step protocol: register-and-clear the dirty indicators, force
// every mutator through one fence, then rescan marked objects on the
// registered cards.
package cardtable

import (
	"fmt"

	"mcgc/internal/bitvec"
	"mcgc/internal/heapsim"
)

const (
	// CardBytes is the card size used throughout the paper's evaluation
	// ("The card size is 512 bytes").
	CardBytes = 512
	// CardWords is the card size in heap words.
	CardWords = CardBytes / heapsim.WordBytes
	cardShift = 6 // log2(CardWords)
)

// Stats counts card activity for the experiment tables.
type Stats struct {
	BarrierMarks    int64 // write-barrier executions (each dirties one card)
	RegisterPasses  int64 // snapshot registration passes
	CardsRegistered int64 // cumulative cards handed to cleaning
	CardsCleaned    int64 // cumulative cards rescanned by the cleaning step
}

// Table tracks one dirty bit per card.
type Table struct {
	dirty *bitvec.Vector
	cards int

	Stats Stats
}

// New creates a card table covering a heap of heapWords words.
func New(heapWords int) *Table {
	if heapWords <= 0 {
		panic(fmt.Sprintf("cardtable: bad heap size %d", heapWords))
	}
	cards := (heapWords + CardWords - 1) / CardWords
	return &Table{dirty: bitvec.New(cards), cards: cards}
}

// NumCards returns the number of cards in the table.
func (t *Table) NumCards() int { return t.cards }

// CardOf returns the card index covering address a.
func (t *Table) CardOf(a heapsim.Addr) int { return int(a) >> cardShift }

// CardBounds returns the heap-address window [from, to) of a card.
func (t *Table) CardBounds(card int) (from, to heapsim.Addr) {
	if card < 0 || card >= t.cards {
		panic(fmt.Sprintf("cardtable: card %d out of range [0,%d)", card, t.cards))
	}
	return heapsim.Addr(card << cardShift), heapsim.Addr((card + 1) << cardShift)
}

// DirtyObject is the write barrier's card store: it dirties the card holding
// the object's header. Per Section 5.3 no fence accompanies this store.
func (t *Table) DirtyObject(a heapsim.Addr) {
	t.dirty.SetAtomic(int(a) >> cardShift)
	t.Stats.BarrierMarks++
}

// DirtyCard dirties a card directly (used by the work-packet overflow path,
// Section 4.3).
func (t *Table) DirtyCard(card int) {
	t.dirty.SetAtomic(card)
}

// IsDirty reports whether a card's dirty indicator is set.
func (t *Table) IsDirty(card int) bool { return t.dirty.Test(card) }

// CountDirty returns the number of dirty cards.
func (t *Table) CountDirty() int { return t.dirty.Count() }

// ClearAll clears every dirty indicator (collection-cycle initialization).
func (t *Table) ClearAll() { t.dirty.ClearAll() }

// ForEachDirty visits every dirty card without clearing its indicator. The
// generational extension's minor collections use it while a concurrent
// old-space phase is active: the scavenge needs the remembered set, and the
// old collector still needs the same cards for retracing, so nothing may be
// cleared.
func (t *Table) ForEachDirty(fn func(card int)) {
	for c := t.dirty.NextSet(0); c >= 0; c = t.dirty.NextSet(c + 1) {
		fn(c)
	}
}

// NoteCleaned records that n registered cards finished the rescan step
// (step 3 of the cleaning protocol). The tracing engine calls it so
// registered-vs-cleaned counts can be compared per pass.
func (t *Table) NoteCleaned(n int) { t.Stats.CardsCleaned += int64(n) }

// RegisterAndClear performs step 1 of the Section 5.3 cleaning protocol: it
// scans the card table, appends every dirty card's index to into, and clears
// the indicators of the registered cards. The caller must then force all
// mutators through a fence (step 2) before cleaning the returned cards
// (step 3).
//
// Cards dirtied again after this pass keep (or regain) their indicator and
// will be found by the next pass or by the stop-the-world phase.
func (t *Table) RegisterAndClear(into []int) []int {
	t.Stats.RegisterPasses++
	for c := t.dirty.NextSet(0); c >= 0; c = t.dirty.NextSet(c + 1) {
		t.dirty.ClearAtomic(c)
		into = append(into, c)
		t.Stats.CardsRegistered++
	}
	return into
}

package cardtable

import (
	"testing"
	"testing/quick"

	"mcgc/internal/heapsim"
)

func TestGeometry(t *testing.T) {
	tb := New(1000) // 1000 words -> 16 cards of 64 words
	if tb.NumCards() != 16 {
		t.Fatalf("NumCards = %d, want 16", tb.NumCards())
	}
	if c := tb.CardOf(0); c != 0 {
		t.Fatalf("CardOf(0) = %d", c)
	}
	if c := tb.CardOf(63); c != 0 {
		t.Fatalf("CardOf(63) = %d, want 0", c)
	}
	if c := tb.CardOf(64); c != 1 {
		t.Fatalf("CardOf(64) = %d, want 1", c)
	}
	from, to := tb.CardBounds(2)
	if from != 128 || to != 192 {
		t.Fatalf("CardBounds(2) = [%d,%d), want [128,192)", from, to)
	}
}

// The card-cleaning passes reuse one registration buffer per collector
// (cgc.cards, the STW mark phase's cards, gen's cardScratch); with a warm
// buffer a whole register pass must not allocate on the host.
func TestRegisterAndClearWarmBufferNoAllocs(t *testing.T) {
	tb := New(64 * 512) // 512 cards
	buf := make([]int, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		for c := 0; c < 48; c++ {
			tb.DirtyCard(c * 10)
		}
		buf = tb.RegisterAndClear(buf[:0])
	})
	if len(buf) != 48 {
		t.Fatalf("registered %d cards, want 48", len(buf))
	}
	if allocs != 0 {
		t.Fatalf("RegisterAndClear with a warm buffer allocates %.1f times per pass, want 0", allocs)
	}
}

func TestDirtyAndRegister(t *testing.T) {
	tb := New(64 * 100)
	tb.DirtyObject(heapsim.Addr(65))  // card 1
	tb.DirtyObject(heapsim.Addr(70))  // card 1 again
	tb.DirtyObject(heapsim.Addr(640)) // card 10
	if tb.CountDirty() != 2 {
		t.Fatalf("CountDirty = %d, want 2", tb.CountDirty())
	}
	if tb.Stats.BarrierMarks != 3 {
		t.Fatalf("BarrierMarks = %d, want 3", tb.Stats.BarrierMarks)
	}
	got := tb.RegisterAndClear(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 10 {
		t.Fatalf("RegisterAndClear = %v, want [1 10]", got)
	}
	if tb.CountDirty() != 0 {
		t.Fatal("indicators not cleared by registration")
	}
	// Re-dirtying after registration is observed by the next pass.
	tb.DirtyObject(heapsim.Addr(70))
	got = tb.RegisterAndClear(nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("second pass = %v, want [1]", got)
	}
	if tb.Stats.RegisterPasses != 2 || tb.Stats.CardsRegistered != 3 {
		t.Fatalf("stats = %+v", tb.Stats)
	}
}

func TestRegisterAppends(t *testing.T) {
	tb := New(64 * 8)
	tb.DirtyCard(3)
	base := []int{99}
	got := tb.RegisterAndClear(base)
	if len(got) != 2 || got[0] != 99 || got[1] != 3 {
		t.Fatalf("RegisterAndClear append = %v", got)
	}
}

func TestClearAll(t *testing.T) {
	tb := New(64 * 8)
	for c := 0; c < 8; c++ {
		tb.DirtyCard(c)
	}
	tb.ClearAll()
	if tb.CountDirty() != 0 {
		t.Fatal("ClearAll left dirty cards")
	}
}

func TestBoundsPanics(t *testing.T) {
	tb := New(64 * 4)
	for _, f := range []func(){
		func() { tb.CardBounds(-1) },
		func() { tb.CardBounds(4) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: registration returns exactly the set of distinct cards dirtied
// since the last pass, in ascending order.
func TestQuickRegistrationExactness(t *testing.T) {
	f := func(addrs []uint16) bool {
		tb := New(1 << 16)
		want := make(map[int]bool)
		for _, a := range addrs {
			addr := heapsim.Addr(a)
			tb.DirtyObject(addr)
			want[tb.CardOf(addr)] = true
		}
		got := tb.RegisterAndClear(nil)
		if len(got) != len(want) {
			return false
		}
		prev := -1
		for _, c := range got {
			if !want[c] || c <= prev {
				return false
			}
			prev = c
		}
		return tb.CountDirty() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachDirtyDoesNotClear(t *testing.T) {
	tb := New(64 * 16)
	tb.DirtyCard(2)
	tb.DirtyCard(9)
	var got []int
	tb.ForEachDirty(func(c int) { got = append(got, c) })
	if len(got) != 2 || got[0] != 2 || got[1] != 9 {
		t.Fatalf("ForEachDirty = %v, want [2 9]", got)
	}
	if tb.CountDirty() != 2 {
		t.Fatal("ForEachDirty cleared indicators")
	}
	// Registration afterwards still finds and clears them.
	reg := tb.RegisterAndClear(nil)
	if len(reg) != 2 || tb.CountDirty() != 0 {
		t.Fatalf("register after ForEachDirty = %v", reg)
	}
}

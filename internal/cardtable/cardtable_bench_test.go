package cardtable

// Baselines for the card-table kernels on the collector's hot paths: the
// concurrent cleaning passes walk dirty indicators with ForEachDirty /
// RegisterAndClear, and every barriered pointer store runs DirtyObject.

import (
	"testing"

	"mcgc/internal/heapsim"
)

const benchHeapWords = 1 << 20 // 16K cards at 64 words per card

func newDirtied(every int) *Table {
	t := New(benchHeapWords)
	for c := 0; c < t.NumCards(); c += every {
		t.DirtyCard(c)
	}
	return t
}

func BenchmarkForEachDirty(b *testing.B) {
	t := newDirtied(16)
	want := (t.NumCards() + 15) / 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		t.ForEachDirty(func(int) { n++ })
		if n != want {
			b.Fatalf("visited %d cards, want %d", n, want)
		}
	}
}

func BenchmarkRegisterAndClear(b *testing.B) {
	t := New(benchHeapWords)
	buf := make([]int, 0, t.NumCards())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for c := 0; c < t.NumCards(); c += 16 {
			t.DirtyCard(c)
		}
		b.StartTimer()
		buf = t.RegisterAndClear(buf[:0])
	}
	if len(buf) == 0 {
		b.Fatal("no cards registered")
	}
}

func BenchmarkDirtyObject(b *testing.B) {
	t := New(benchHeapWords)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.DirtyObject(heapsim.Addr(i & (benchHeapWords - 1)))
	}
}

package workload

import (
	"math/rand"
	"testing"

	"mcgc/internal/core"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

func newRig(heapBytes int64, procs int) (*machine.Machine, *mutator.Runtime, *core.CGC) {
	m := machine.New(procs)
	rt := mutator.NewRuntime(heapBytes, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := core.DefaultCGCConfig()
	cfg.Packets = 256
	cfg.PacketCap = 64
	cfg.BackgroundThreads = 1
	col := core.NewCGC(rt, m, cfg)
	rt.SetCollector(col)
	col.SpawnBackground()
	return m, rt, col
}

func TestPopulationBuildAndIntegrity(t *testing.T) {
	m, rt, _ := newRig(8<<20, 2)
	th := rt.NewThread()
	var pop *Population
	var done bool
	m.AddThread("builder", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		if pop == nil {
			pop = NewPopulation(rt, th, 2<<20)
		}
		if pop.BuildSome(ctx, 4) {
			done = true
			return machine.Finish
		}
		return machine.Continue
	})
	m.Run(vtime.Time(10 * vtime.Second))
	if !done {
		t.Fatal("population never completed")
	}
	if err := pop.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	got := pop.RetainedBytes()
	if got < (2<<20)*9/10 || got > (2<<20)*12/10 {
		t.Fatalf("RetainedBytes = %d, want about %d", got, 2<<20)
	}
}

func TestPopulationChurnKeepsIntegrity(t *testing.T) {
	m, rt, col := newRig(8<<20, 2)
	th := rt.NewThread()
	r := rand.New(rand.NewSource(3))
	var pop *Population
	built := false
	m.AddThread("churn", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		if !built {
			if pop == nil {
				pop = NewPopulation(rt, th, 4<<20)
			}
			built = pop.BuildSome(ctx, 4)
			return machine.Continue
		}
		pop.ReplaceBlock(ctx, th, r)
		pop.RewriteEdges(ctx, r, 3)
		if err := pop.ReadBlock(ctx, r); err != nil {
			t.Error(err)
			return machine.Finish
		}
		return machine.Continue
	})
	m.Run(vtime.Time(3 * vtime.Second))
	if len(col.Cycles) == 0 {
		t.Fatal("no GC cycles despite heavy churn")
	}
	if err := pop.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

func TestJBBRunsTransactions(t *testing.T) {
	m, rt, col := newRig(16<<20, 4)
	cfg := DefaultJBBConfig(4, 16<<20, 0.5, 4)
	j := NewJBB(rt, m, cfg)
	m.Run(vtime.Time(4 * vtime.Second))
	if !j.Ready() {
		t.Fatal("warehouses never finished building")
	}
	if j.Transactions() == 0 {
		t.Fatal("no transactions committed")
	}
	if err := j.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if len(col.Cycles) == 0 {
		t.Fatal("no GC cycles")
	}
	// Residency lands near the target.
	retained := j.RetainedBytes()
	want := int64(0.5 * float64(16<<20))
	if retained < want*8/10 || retained > want*12/10 {
		t.Fatalf("retained %d, want about %d", retained, want)
	}
}

func TestJBBThroughputScalesWithWarehouses(t *testing.T) {
	// More warehouses on a 4-way machine means more throughput up to
	// saturation (SPECjbb's basic property).
	tx := func(wh int) int64 {
		m, rt, _ := newRig(16<<20, 4)
		cfg := DefaultJBBConfig(wh, 16<<20, 0.5, 8)
		j := NewJBB(rt, m, cfg)
		m.Run(vtime.Time(3 * vtime.Second))
		if err := j.CheckIntegrity(); err != nil {
			t.Fatal(err)
		}
		return j.Transactions()
	}
	t1 := tx(1)
	t4 := tx(4)
	if t4 <= t1 {
		t.Fatalf("4 warehouses (%d tx) not faster than 1 (%d tx)", t4, t1)
	}
}

func TestPBOBThinkTimeCreatesIdle(t *testing.T) {
	// With think time, terminals sleep and background tracing happens; the
	// machine's busy fraction drops well below saturation.
	m, rt, col := newRig(16<<20, 2)
	cfg := DefaultJBBConfig(2, 16<<20, 0.5, 2)
	cfg.TerminalsPerWarehouse = 5
	cfg.ThinkTime = 2 * vtime.Millisecond
	j := NewJBB(rt, m, cfg)
	end := m.Run(vtime.Time(4 * vtime.Second))
	if err := j.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	busyFrac := float64(m.TotalBusy()) / (float64(end) * float64(m.Processors()))
	if busyFrac > 0.9 {
		t.Fatalf("busy fraction %.2f with think time; expected idle headroom", busyFrac)
	}
	var bg int64
	for i := range col.Cycles {
		bg += col.Cycles[i].BgBytes
	}
	if len(col.Cycles) > 0 && bg == 0 {
		t.Fatal("background threads traced nothing despite idle time")
	}
}

func TestJavacCompilesUnits(t *testing.T) {
	m, rt, col := newRig(8<<20, 1)
	cfg := DefaultJavacConfig(8<<20, 0.7)
	j := NewJavac(rt, m, cfg)
	m.Run(vtime.Time(6 * vtime.Second))
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if j.Units == 0 {
		t.Fatal("no compilation units completed")
	}
	if len(col.Cycles) == 0 {
		t.Fatal("no GC cycles for javac")
	}
}

func TestJavacPeakResidency(t *testing.T) {
	// Peak occupancy should approach the configured fraction.
	m, rt, _ := newRig(8<<20, 1)
	cfg := DefaultJavacConfig(8<<20, 0.7)
	j := NewJavac(rt, m, cfg)
	var peak int64
	for i := 0; i < 40; i++ {
		m.Run(m.Now() + vtime.Time(100*vtime.Millisecond))
		if occ := rt.Heap.OccupiedBytes(); occ > peak {
			peak = occ
		}
	}
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	frac := float64(peak) / float64(rt.Heap.UsableBytes())
	if frac < 0.45 || frac > 1.0 {
		t.Fatalf("peak residency %.2f, want near 0.7", frac)
	}
}

func TestJBBDeterminism(t *testing.T) {
	run := func() int64 {
		m, rt, _ := newRig(8<<20, 2)
		cfg := DefaultJBBConfig(2, 8<<20, 0.5, 2)
		j := NewJBB(rt, m, cfg)
		m.Run(vtime.Time(2 * vtime.Second))
		return j.Transactions()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("transactions differ across identical runs: %d vs %d", a, b)
	}
}

func TestJBBWithCompaction(t *testing.T) {
	// End-to-end incremental compaction (Section 2.3): run the warehouse
	// workload with an aggressive evacuation area and verify full graph
	// integrity afterwards — the stamps travel with moved objects, so a
	// missed fixup or bad copy fails the check.
	m := machine.New(2)
	rt := mutator.NewRuntime(16<<20, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := core.DefaultCGCConfig()
	cfg.Packets = 256
	cfg.PacketCap = 64
	cfg.BackgroundThreads = 1
	cfg.Compaction = true
	cfg.CompactAreaWords = (16 << 20) / 8 / 8 // an eighth of the heap per cycle
	col := core.NewCGC(rt, m, cfg)
	rt.SetCollector(col)
	col.SpawnBackground()

	cfgJ := DefaultJBBConfig(4, 16<<20, 0.5, 4)
	j := NewJBB(rt, m, cfgJ)
	m.Run(vtime.Time(4 * vtime.Second))
	if err := j.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after compaction cycles: %v", err)
	}
	if len(col.Cycles) < 2 {
		t.Fatalf("cycles = %d", len(col.Cycles))
	}
	st := col.Compactor()
	if st == nil {
		t.Fatal("compactor missing")
	}
	var evacuated int
	evacuated = st.EvacuatedObjects // last cycle only; any evidence suffices
	if evacuated == 0 && st.SlotsFixed == 0 && st.PinnedObjects == 0 {
		t.Log("warning: last cycle evacuated nothing; checking it at least chose an area")
		if st.AreaTo == 0 {
			t.Fatal("compaction never ran")
		}
	}
	if j.Transactions() == 0 {
		t.Fatal("no transactions")
	}
}

func TestJBBWithGenerationalCollector(t *testing.T) {
	// End-to-end generational run: minors promote warehouse data while
	// transactions churn; integrity must hold across minors and old-space
	// concurrent cycles.
	m := machine.New(2)
	rt := mutator.NewRuntime(16<<20, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := core.DefaultCGCConfig()
	cfg.Packets = 256
	cfg.PacketCap = 64
	cfg.BackgroundThreads = 1
	g := core.NewGenerational(rt, m, core.GenConfig{NurseryBytes: 1 << 20, CGC: cfg})
	rt.SetCollector(g)
	g.SpawnBackground()

	j := NewJBB(rt, m, DefaultJBBConfig(4, 16<<20, 0.5, 4))
	m.Run(vtime.Time(4 * vtime.Second))
	if err := j.CheckIntegrity(); err != nil {
		t.Fatalf("integrity under generational collection: %v", err)
	}
	if len(g.Minors) == 0 {
		t.Fatal("no minor collections")
	}
	if j.Transactions() == 0 {
		t.Fatal("no transactions")
	}
	avgMinor, maxMinor := g.MinorPauses()
	t.Logf("minors=%d avg=%v max=%v promoted=%dKB oldCycles=%d",
		len(g.Minors), avgMinor, maxMinor, g.PromotedBytes>>10, len(g.Old().Cycles))
}

func TestJavacWithGenerationalCollector(t *testing.T) {
	m := machine.New(1)
	rt := mutator.NewRuntime(25<<20, mutator.DefaultConfig(), machine.DefaultCosts())
	cfg := core.DefaultCGCConfig()
	cfg.Packets = 256
	cfg.PacketCap = 64
	cfg.BackgroundThreads = 1
	g := core.NewGenerational(rt, m, core.GenConfig{NurseryBytes: 2 << 20, CGC: cfg})
	rt.SetCollector(g)
	g.SpawnBackground()

	j := NewJavac(rt, m, DefaultJavacConfig(25<<20, 0.6))
	m.Run(vtime.Time(4 * vtime.Second))
	if j.Err != nil {
		t.Fatal(j.Err)
	}
	if j.NodesProcessed == 0 {
		t.Fatal("no progress")
	}
	if len(g.Minors) == 0 {
		t.Fatal("no minors for an allocation-heavy compiler")
	}
}

// Package workload implements the benchmark applications of the paper's
// evaluation as simulated mutator programs: a SPECjbb2000-like warehouse
// transaction workload (JBB), its more tunable pBOB variant with terminals
// and think times (PBOB), and a javac-like single-threaded compiler
// workload (Javac). See DESIGN.md for the substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
)

// Population is a retained object graph shaped like middle-tier business
// data: a directory object (a large reference array, like a hash table's
// bucket array) points at blocks; each block is a linked list of nodes
// allocated consecutively; node data edges point into an immortal leaf pool
// (shared reference data). Blocks are replaced wholesale — object death is
// clustered, as it is for real transaction working sets.
type Population struct {
	rt *mutator.Runtime

	// The directory and anchor are rooted in fixed slots of the owner's
	// stack and are always re-read through them: minor collections (the
	// generational extension) move stack-referenced objects and update
	// the slots precisely, so cached addresses would go stale. Leaves are
	// reachable only through the anchor and are likewise re-read per use
	// (see leaf).
	anchorSlot  int
	dirSlot     int
	built       bool
	numBlocks   int
	builtBlocks int

	// dirSlot and anchorSlot are the owning thread's stack slots that
	// root the structure.
	owner *mutator.Thread
}

// Node and pool shape parameters.
const (
	popNodeRefs    = 2 // next, leaf edge
	popNodePayload = 4
	popBlockNodes  = 64
	popLeafCount   = 64
	popLeafPayload = 6

	// nodeMagic seeds the per-node integrity words: payload[1] holds a
	// per-object creation nonce and payload[0] holds nodeMagic XOR that
	// nonce. The scheme is stable under a moving collector (incremental
	// compaction relocates objects, so an address-based stamp would break);
	// address-reuse detection is covered separately by the shadow-model
	// harness in internal/core's tests.
	nodeMagic = 0x6d63676367632502
)

// stampNonce is the process-wide creation nonce source for integrity
// stamps. Determinism does not require it to be seeded: checks only compare
// payload[0] against payload[1]. It is atomic because independent VMs run
// concurrently under the experiment harness; each stamp must read its
// nonce exactly once so the two payload words always agree.
var stampNonce atomic.Uint64

// stamp writes the integrity words of a freshly created object. The object
// must have at least two payload words.
func stamp(rt *mutator.Runtime, a heapsim.Addr) {
	n := stampNonce.Add(1)
	rt.Heap.SetPayload(a, 1, n)
	rt.Heap.SetPayload(a, 0, nodeMagic^n)
}

// checkStamp verifies an object's integrity words.
func checkStamp(rt *mutator.Runtime, a heapsim.Addr) bool {
	return rt.Heap.PayloadAt(a, 0) == nodeMagic^rt.Heap.PayloadAt(a, 1)
}

// BlockBytes returns the retained bytes one block holds.
func BlockBytes() int64 {
	return int64(popBlockNodes*heapsim.ObjectWords(popNodeRefs, popNodePayload)) * heapsim.WordBytes
}

// NewPopulation prepares a population of roughly retainedBytes, rooted on
// owner's stack. Construction is incremental: call BuildSome from the
// owner's machine steps until it reports done, so a multi-megabyte build
// does not become one unstoppable step (steps are the GC points).
func NewPopulation(rt *mutator.Runtime, owner *mutator.Thread, retainedBytes int64) *Population {
	p := &Population{rt: rt, owner: owner}
	p.numBlocks = int(retainedBytes / BlockBytes())
	if p.numBlocks < 2 {
		p.numBlocks = 2
	}
	return p
}

// BuildSome advances construction by up to maxBlocks blocks and reports
// whether the population is complete. The first call builds the leaf pool,
// anchor and directory. Any allocation may trigger collection, so
// construction roots its temporaries on the stack exactly as compiled code
// would keep them in frames.
func (p *Population) directory() heapsim.Addr { return p.owner.Stack[p.dirSlot] }
func (p *Population) anchor() heapsim.Addr    { return p.owner.Stack[p.anchorSlot] }

func (p *Population) BuildSome(ctx *machine.Context, maxBlocks int) bool {
	owner, rt := p.owner, p.rt
	if !p.built {
		// Leaf pool first, rooted on the stack until anchored.
		base := len(owner.Stack)
		for i := 0; i < popLeafCount; i++ {
			l := p.allocNode(ctx, 0, popLeafPayload)
			owner.Stack = append(owner.Stack, l)
		}
		anchor := p.allocNode(ctx, popLeafCount, 2)
		for i := 0; i < popLeafCount; i++ {
			rt.SetRef(ctx, anchor, i, owner.Stack[base+i])
		}
		owner.Stack = owner.Stack[:base]
		owner.Stack = append(owner.Stack, anchor)
		p.anchorSlot = len(owner.Stack) - 1

		dir := rt.Alloc(ctx, owner, p.numBlocks, 2)
		stamp(rt, dir)
		owner.Stack = append(owner.Stack, dir)
		p.dirSlot = len(owner.Stack) - 1
		p.built = true
		return false
	}
	for i := 0; i < maxBlocks && p.builtBlocks < p.numBlocks; i++ {
		p.installBlock(ctx, owner, p.builtBlocks)
		p.builtBlocks++
	}
	return p.builtBlocks >= p.numBlocks
}

// leaf returns leaf i, re-read through the anchor on every use so that a
// moving collector relocating the leaf pool is always observed.
func (p *Population) leaf(i int) heapsim.Addr {
	return p.rt.Heap.RefAt(p.anchor(), i)
}

// allocNode allocates an object on behalf of the population owner and
// stamps its integrity word.
func (p *Population) allocNode(ctx *machine.Context, refs, payload int) heapsim.Addr {
	a := p.rt.Alloc(ctx, p.owner, refs, payload)
	stamp(p.rt, a)
	return a
}

// installBlock builds a fresh block on behalf of th and installs it in
// directory slot b; the previous block (if any) becomes garbage.
func (p *Population) installBlock(ctx *machine.Context, th *mutator.Thread, b int) {
	// Root the under-construction list on th's stack, and always re-read
	// through the slot: a minor collection during any of the allocations
	// below may move the list head and update the slot precisely.
	th.Stack = append(th.Stack, heapsim.Nil)
	slot := len(th.Stack) - 1
	r := uint64(b)
	for i := 0; i < popBlockNodes; i++ {
		n := p.rt.Alloc(ctx, th, popNodeRefs, popNodePayload)
		stamp(p.rt, n)
		p.rt.SetRef(ctx, n, 0, th.Stack[slot])
		r = r*6364136223846793005 + 1442695040888963407
		p.rt.SetRef(ctx, n, 1, p.leaf(int(r>>33)%popLeafCount))
		th.Stack[slot] = n
	}
	p.rt.SetRef(ctx, p.directory(), b, th.Stack[slot])
	th.Stack = th.Stack[:slot]
}

// ReplaceBlock rebuilds a random block on behalf of th (any terminal
// thread). The old block becomes clustered garbage.
func (p *Population) ReplaceBlock(ctx *machine.Context, th *mutator.Thread, r *rand.Rand) {
	p.installBlock(ctx, th, r.Intn(p.numBlocks))
}

// RewriteEdges flips n leaf edges in random block heads: pure write-barrier
// traffic with no allocation.
func (p *Population) RewriteEdges(ctx *machine.Context, r *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		head := p.rt.Heap.RefAt(p.directory(), r.Intn(p.numBlocks))
		if head == heapsim.Nil {
			continue
		}
		p.rt.SetRef(ctx, head, 1, p.leaf(r.Intn(popLeafCount)))
	}
}

// ReadBlock walks one block, verifying link integrity as it goes. It
// models the read-mostly part of a transaction and doubles as a liveness
// check: a collected-but-reachable node fails the magic test.
func (p *Population) ReadBlock(ctx *machine.Context, r *rand.Rand) error {
	b := r.Intn(p.numBlocks)
	n := p.rt.Heap.RefAt(p.directory(), b)
	count := 0
	for n != heapsim.Nil {
		if !checkStamp(p.rt, n) {
			return fmt.Errorf("workload: block %d node %d failed integrity", b, n)
		}
		n = p.rt.Heap.RefAt(n, 0)
		count++
		if count > popBlockNodes {
			return fmt.Errorf("workload: block %d list longer than built (%d)", b, count)
		}
	}
	if count != popBlockNodes {
		return fmt.Errorf("workload: block %d has %d nodes, want %d", b, count, popBlockNodes)
	}
	return nil
}

// CheckIntegrity verifies the whole population: every block reachable,
// every node intact, every leaf intact.
func (p *Population) CheckIntegrity() error {
	h := p.rt.Heap
	if !checkStamp(p.rt, p.directory()) {
		return fmt.Errorf("workload: directory failed integrity")
	}
	for b := 0; b < p.numBlocks; b++ {
		n := h.RefAt(p.directory(), b)
		count := 0
		for n != heapsim.Nil {
			if !checkStamp(p.rt, n) {
				return fmt.Errorf("workload: block %d node %d corrupt", b, n)
			}
			leaf := h.RefAt(n, 1)
			if leaf != heapsim.Nil && !checkStamp(p.rt, leaf) {
				return fmt.Errorf("workload: leaf %d corrupt", leaf)
			}
			n = h.RefAt(n, 0)
			count++
		}
		if count != popBlockNodes {
			return fmt.Errorf("workload: block %d has %d nodes, want %d", b, count, popBlockNodes)
		}
	}
	return nil
}

// RetainedBytes returns the steady-state retained size of the population.
func (p *Population) RetainedBytes() int64 {
	return int64(p.numBlocks)*BlockBytes() +
		int64(heapsim.ObjectWords(p.numBlocks, 1))*heapsim.WordBytes +
		int64(popLeafCount*heapsim.ObjectWords(0, popLeafPayload))*heapsim.WordBytes
}

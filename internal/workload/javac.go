package workload

import (
	"fmt"
	"math/rand"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

// Javac models the SPECjvm98 javac benchmark: a single-threaded compiler
// that repeatedly parses a source unit into a tree (peak retention), walks
// it allocating temporaries (attribution/codegen), and releases it. The
// paper runs it on a uniprocessor with a 25 MB heap at 70% occupancy.
//
// Work is performed in bounded quanta (a few hundred nodes per machine
// step) so the collector can stop the thread at realistic latitude — steps
// are the simulation's GC points.
type JavacConfig struct {
	// TreeBytes is the peak size of one compilation unit's AST.
	TreeBytes int64
	// TreeFanout is the children per interior node.
	TreeFanout int
	// TempPerNode is how many temporaries the walk allocates per tree
	// node visited.
	TempPerNode int
	// NodesPerStep bounds the work done between GC points.
	NodesPerStep int
	Seed         int64
}

// DefaultJavacConfig sizes the AST so that peak occupancy is about the
// given fraction of the heap.
func DefaultJavacConfig(heapBytes int64, peakResidency float64) JavacConfig {
	return JavacConfig{
		TreeBytes:    int64(peakResidency * float64(heapBytes) * 0.8),
		TreeFanout:   4,
		TempPerNode:  2,
		NodesPerStep: 256,
		Seed:         1,
	}
}

type javacPhase int

const (
	javacParse javacPhase = iota
	javacWalk
)

// Javac is the running workload.
type Javac struct {
	rt  *mutator.Runtime
	cfg JavacConfig
	th  *mutator.Thread
	r   *rand.Rand

	phase     javacPhase
	nodesGoal int
	built     int
	frameBase int
	// walkBase marks where the walk cursor segment begins on the thread
	// stack. The walk cursor lives ON the simulated stack — it models the
	// compiler's recursion frames — so its entries are roots, and under
	// incremental compaction they pin their targets exactly as a
	// conservatively scanned native stack would.
	walkBase int

	Units int64 // compilation units completed
	// NodesProcessed counts parse+walk node visits: a fine-grained
	// throughput measure (whole units are too coarse for short windows).
	NodesProcessed int64
	Err            error
}

// AST node shape: fanout refs + 3 payload words.
const javacNodePayload = 3

// NewJavac creates the workload and registers its single thread.
func NewJavac(rt *mutator.Runtime, m *machine.Machine, cfg JavacConfig) *Javac {
	if cfg.TreeFanout < 1 || cfg.TreeBytes <= 0 {
		panic(fmt.Sprintf("workload: bad javac config %+v", cfg))
	}
	if cfg.NodesPerStep <= 0 {
		cfg.NodesPerStep = 256
	}
	j := &Javac{
		rt:  rt,
		cfg: cfg,
		th:  rt.NewThread(),
		r:   rand.New(rand.NewSource(cfg.Seed)),
	}
	nodeWords := heapsim.ObjectWords(cfg.TreeFanout, javacNodePayload)
	j.nodesGoal = int(cfg.TreeBytes / (int64(nodeWords) * heapsim.WordBytes))
	if j.nodesGoal < 1 {
		j.nodesGoal = 1
	}
	j.frameBase = len(j.th.Stack)
	m.AddThread("javac", machine.PriorityNormal, j.step)
	return j
}

func (j *Javac) step(ctx *machine.Context) machine.Control {
	if j.Err != nil {
		return machine.Finish
	}
	var err error
	switch j.phase {
	case javacParse:
		err = j.parseQuantum(ctx)
	case javacWalk:
		err = j.walkQuantum(ctx)
	}
	if err != nil {
		j.Err = err
		return machine.Finish
	}
	return machine.Continue
}

// parseQuantum builds a bounded number of AST nodes bottom-up, keeping the
// frontier rooted on the stack (nodes are only reachable from locals until
// linked to a parent).
func (j *Javac) parseQuantum(ctx *machine.Context) error {
	for q := 0; q < j.cfg.NodesPerStep && j.built < j.nodesGoal; q++ {
		n := j.rt.Alloc(ctx, j.th, j.cfg.TreeFanout, javacNodePayload)
		stamp(j.rt, n)
		j.built++
		j.NodesProcessed++
		adopt := j.r.Intn(j.cfg.TreeFanout + 1)
		for i := 0; i < adopt && len(j.th.Stack) > j.frameBase; i++ {
			child := j.th.Stack[len(j.th.Stack)-1]
			j.th.Stack = j.th.Stack[:len(j.th.Stack)-1]
			j.rt.SetRef(ctx, n, i, child)
		}
		j.th.Stack = append(j.th.Stack, n)
	}
	if j.built >= j.nodesGoal {
		// Parse complete: begin the attribution walk over the forest. The
		// walk cursor segment starts as a copy of the forest roots.
		j.phase = javacWalk
		j.walkBase = len(j.th.Stack)
		j.th.Stack = append(j.th.Stack, j.th.Stack[j.frameBase:j.walkBase]...)
	}
	return nil
}

// walkQuantum visits a bounded number of nodes, checking integrity and
// allocating attribution temporaries; when the walk completes the unit is
// released (the whole AST becomes garbage at once).
func (j *Javac) walkQuantum(ctx *machine.Context) error {
	for q := 0; q < j.cfg.NodesPerStep && len(j.th.Stack) > j.walkBase; q++ {
		n := j.th.Stack[len(j.th.Stack)-1]
		j.th.Stack = j.th.Stack[:len(j.th.Stack)-1]
		j.NodesProcessed++
		if !checkStamp(j.rt, n) {
			return fmt.Errorf("workload: javac AST node %d corrupt", n)
		}
		for i := 0; i < j.cfg.TempPerNode; i++ {
			j.rt.Alloc(ctx, j.th, 0, 1+j.r.Intn(4)) // immediately-dead temporary
		}
		for i := 0; i < j.cfg.TreeFanout; i++ {
			if c := j.rt.Heap.RefAt(n, i); c != heapsim.Nil {
				j.th.Stack = append(j.th.Stack, c)
			}
		}
	}
	if len(j.th.Stack) <= j.walkBase {
		// Unit done: release the AST and pause briefly (I/O for the next
		// source file) — on a uniprocessor this is where a background GC
		// thread gets to run.
		j.th.Stack = j.th.Stack[:j.frameBase]
		j.built = 0
		j.phase = javacParse
		j.Units++
		ctx.Sleep(200 * vtime.Microsecond)
	}
	return nil
}

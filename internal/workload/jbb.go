package workload

import (
	"fmt"
	"math/rand"

	"mcgc/internal/machine"
	"mcgc/internal/mutator"
	"mcgc/internal/vtime"
)

// JBBConfig configures the warehouse transaction workload. With one
// terminal per warehouse and no think time it models SPECjbb2000; with many
// terminals and think time it models pBOB in autoserver mode.
type JBBConfig struct {
	// Warehouses is the number of warehouses (the SPECjbb load knob).
	Warehouses int
	// TerminalsPerWarehouse is the number of threads per warehouse
	// (1 for SPECjbb; the paper's pBOB runs use 25).
	TerminalsPerWarehouse int
	// RetainedPerWarehouse is the steady-state live data per warehouse.
	// The paper sizes heaps so that residency is 60% at the top warehouse
	// count.
	RetainedPerWarehouse int64
	// ThinkTime is the mean per-transaction think time (zero: none).
	// Think time idles the processor, which is what lets the collector's
	// low-priority background threads soak up cycles.
	ThinkTime vtime.Duration
	// TxGarbageObjects is the number of temporary objects a transaction
	// allocates.
	TxGarbageObjects int
	// BlockReplacePercent is the chance (0-100) a transaction replaces
	// one block of its warehouse's data.
	BlockReplacePercent int
	// Seed makes runs reproducible.
	Seed int64
}

// DefaultJBBConfig returns a SPECjbb-like configuration: heap residency is
// reached at `warehouses` warehouses for the given heap size.
func DefaultJBBConfig(warehouses int, heapBytes int64, residencyAtMax float64, maxWarehouses int) JBBConfig {
	perWh := int64(residencyAtMax * float64(heapBytes) / float64(maxWarehouses))
	return JBBConfig{
		Warehouses:            warehouses,
		TerminalsPerWarehouse: 1,
		RetainedPerWarehouse:  perWh,
		TxGarbageObjects:      24,
		BlockReplacePercent:   30,
		Seed:                  1,
	}
}

// warehouse is one warehouse's retained data plus its transaction counter.
type warehouse struct {
	pop   *Population
	ready bool
	tx    int64
}

// JBB is a running warehouse workload bound to a runtime and machine.
type JBB struct {
	rt  *mutator.Runtime
	cfg JBBConfig

	warehouses []*warehouse

	// Err records the first integrity failure observed by any terminal;
	// the workload stops transacting once set.
	Err error
}

// NewJBB creates the workload and registers its terminal threads on the
// machine. Threads initialize their warehouse's population lazily on first
// dispatch, then run transactions until the machine deadline.
func NewJBB(rt *mutator.Runtime, m *machine.Machine, cfg JBBConfig) *JBB {
	if cfg.Warehouses <= 0 || cfg.TerminalsPerWarehouse <= 0 {
		panic(fmt.Sprintf("workload: bad JBB config %+v", cfg))
	}
	j := &JBB{rt: rt, cfg: cfg}
	for w := 0; w < cfg.Warehouses; w++ {
		wh := &warehouse{}
		j.warehouses = append(j.warehouses, wh)
		for t := 0; t < cfg.TerminalsPerWarehouse; t++ {
			th := rt.NewThread()
			r := rand.New(rand.NewSource(cfg.Seed + int64(w*1000+t)))
			first := t == 0
			name := fmt.Sprintf("wh%d-t%d", w, t)
			m.AddThread(name, machine.PriorityNormal, j.terminalStep(wh, th, r, first))
		}
	}
	return j
}

// terminalStep returns the step function of one terminal thread.
func (j *JBB) terminalStep(wh *warehouse, th *mutator.Thread, r *rand.Rand, builder bool) machine.StepFunc {
	return func(ctx *machine.Context) machine.Control {
		if j.Err != nil {
			return machine.Finish
		}
		if !wh.ready {
			if !builder {
				// Wait for the warehouse's first terminal to build the
				// population.
				ctx.Charge(100 * vtime.Nanosecond)
				ctx.Sleep(50 * vtime.Microsecond)
				return machine.Continue
			}
			if wh.pop == nil {
				wh.pop = NewPopulation(j.rt, th, j.cfg.RetainedPerWarehouse)
			}
			// A few blocks per step keeps steps stoppable.
			wh.ready = wh.pop.BuildSome(ctx, 4)
			return machine.Continue
		}
		if err := j.transaction(ctx, wh, th, r); err != nil {
			j.Err = err
			return machine.Finish
		}
		if j.cfg.ThinkTime > 0 {
			// Exponential-ish jitter around the mean keeps terminals from
			// phase-locking.
			jitter := vtime.Duration(r.Int63n(int64(j.cfg.ThinkTime)))
			ctx.Sleep(j.cfg.ThinkTime/2 + jitter)
		}
		return machine.Continue
	}
}

// transaction models one business transaction: read some warehouse data,
// allocate temporaries (order forms, result sets — short-lived garbage),
// update references, and occasionally replace a block of warehouse data.
func (j *JBB) transaction(ctx *machine.Context, wh *warehouse, th *mutator.Thread, r *rand.Rand) error {
	if err := wh.pop.ReadBlock(ctx, r); err != nil {
		return err
	}
	// Temporaries: rooted in a transaction frame, dead when it returns.
	base := len(th.Stack)
	for i := 0; i < j.cfg.TxGarbageObjects; i++ {
		refs := r.Intn(3)
		payload := 2 + r.Intn(7)
		a := j.rt.Alloc(ctx, th, refs, payload)
		stamp(j.rt, a)
		if refs > 0 && len(th.Stack) > base {
			// Link to a previous temporary: small temp graphs.
			j.rt.SetRef(ctx, a, 0, th.Stack[base+r.Intn(len(th.Stack)-base)])
		}
		th.Stack = append(th.Stack, a)
	}
	// Old-object mutation is sparse in SPECjbb-like workloads: most stores
	// hit fresh transaction objects. A heavy rewrite rate re-dirties
	// cleaned cards and inflates the stop-the-world cleaning share.
	if r.Intn(4) == 0 {
		wh.pop.RewriteEdges(ctx, r, 1)
	}
	if r.Intn(100) < j.cfg.BlockReplacePercent {
		wh.pop.ReplaceBlock(ctx, th, r)
	}
	// Transaction frame pops: temporaries become garbage.
	th.Stack = th.Stack[:base]
	wh.tx++
	return nil
}

// Transactions returns the total committed transactions.
func (j *JBB) Transactions() int64 {
	var n int64
	for _, wh := range j.warehouses {
		n += wh.tx
	}
	return n
}

// CheckIntegrity verifies every warehouse population.
func (j *JBB) CheckIntegrity() error {
	if j.Err != nil {
		return j.Err
	}
	for w, wh := range j.warehouses {
		if !wh.ready {
			return fmt.Errorf("workload: warehouse %d never initialized", w)
		}
		if err := wh.pop.CheckIntegrity(); err != nil {
			return fmt.Errorf("warehouse %d: %w", w, err)
		}
	}
	return nil
}

// RetainedBytes returns the steady-state retained size across warehouses.
func (j *JBB) RetainedBytes() int64 {
	var n int64
	for _, wh := range j.warehouses {
		if wh.pop != nil {
			n += wh.pop.RetainedBytes()
		}
	}
	return n
}

// Ready reports whether every warehouse population has been built (the
// warmup condition for throughput measurement).
func (j *JBB) Ready() bool {
	for _, wh := range j.warehouses {
		if !wh.ready {
			return false
		}
	}
	return true
}

package pacing

import (
	"math"
	"sync/atomic"
	"time"
)

// SLOConfig tunes the latency-feedback pacing policy. The controller wraps a
// FormulaPolicy built from Formula: the Section 3 geometry remains the
// safety floor, and the SLO terms only ever move the policy to the *safe*
// side of it (earlier kickoff, hotter background tracers) or shave the
// mutator tax within a bounded fraction of the formula's rate.
type SLOConfig struct {
	// Formula is the Section 3 parameter set the controller floors on.
	Formula Config
	// Target is the latency objective: the windowed worst request latency
	// (the live p99 proxy gcserve feeds) the controller steers toward.
	Target time.Duration
	// Gain is the proportional gain applied to the error ratio
	// (observed/target - 1). Zero means DefaultSLOGain.
	Gain float64
	// FloorK is the lowest fraction of the formula's tracing rate the
	// controller may shave the mutator tax to; the remainder is shifted to
	// the background tracers. Zero means DefaultSLOFloorK.
	FloorK float64
	// BgMin and BgMax bound the background-throttle factor: BgMin is the
	// hottest the controller runs the background tracers when latency is
	// over target (factor < 1 shortens their parking), BgMax the laziest
	// when latency is comfortably under it. Zeroes mean DefaultSLOBgMin
	// and DefaultSLOBgMax.
	BgMin float64
	BgMax float64
	// Alpha smooths the observed latency windows; zero means
	// DefaultSLOAlpha.
	Alpha float64
	// KickoffBoost caps the multiplier the controller may apply to the
	// formula's kickoff threshold when latency is over target (kick off
	// earlier, never later). Zero means DefaultSLOKickoffBoost.
	KickoffBoost float64
}

// Defaults for the zero-valued SLOConfig fields.
const (
	DefaultSLOGain         = 1.0
	DefaultSLOFloorK       = 0.25
	DefaultSLOBgMin        = 0.125
	DefaultSLOBgMax        = 4.0
	DefaultSLOAlpha        = 0.3
	DefaultSLOKickoffBoost = 2.0
)

// DefaultSLO returns the controller defaults over the paper's formula
// defaults, with the target left for the caller to set.
func DefaultSLO() SLOConfig {
	return SLOConfig{Formula: Default()}
}

func (c SLOConfig) gain() float64 {
	if c.Gain > 0 {
		return c.Gain
	}
	return DefaultSLOGain
}

func (c SLOConfig) floorK() float64 {
	if c.FloorK > 0 {
		return c.FloorK
	}
	return DefaultSLOFloorK
}

func (c SLOConfig) bgMin() float64 {
	if c.BgMin > 0 {
		return c.BgMin
	}
	return DefaultSLOBgMin
}

func (c SLOConfig) bgMax() float64 {
	if c.BgMax > 0 {
		return c.BgMax
	}
	return DefaultSLOBgMax
}

func (c SLOConfig) alpha() float64 {
	if c.Alpha > 0 {
		return c.Alpha
	}
	return DefaultSLOAlpha
}

func (c SLOConfig) kickoffBoost() float64 {
	if c.KickoffBoost > 1 {
		return c.KickoffBoost
	}
	return DefaultSLOKickoffBoost
}

// SLOStats is a snapshot of the controller's observation counters, for
// reports and telemetry.
type SLOStats struct {
	// Windows is the number of latency windows observed.
	Windows int64
	// OverTarget is how many of them exceeded the target.
	OverTarget int64
	// Signal is the smoothed windowed worst latency, in nanoseconds.
	Signal float64
	// BgFactor is the background-throttle factor currently in effect.
	BgFactor float64
}

// SLOPolicy trades collector CPU for request tail latency against a target.
// It wraps a FormulaPolicy and consumes a live latency signal — the per-
// window worst request latency a server workload feeds through
// ObserveLatency. While the signal sits under the target the policy behaves
// exactly like the formula, except that it parks the background tracers
// longer (up to BgMax) to save CPU. When the signal crosses the target it
// spends CPU to pull the tail back: background tracers run hotter (down to
// BgMin), kickoff fires earlier (threshold scaled up to KickoffBoost), and
// the mutators' inline tax is shaved toward FloorK of the formula rate so
// request paths stall less — but never below it, and never when the heap is
// inside half the kickoff threshold, so the geometry's completion guarantee
// survives the controller.
//
// The pacing-protocol methods are single-threaded like every Policy;
// ObserveLatency and BgThrottleFactor are safe for concurrent use.
type SLOPolicy struct {
	f    *FormulaPolicy
	cfg  SLOConfig
	heap HeapView

	// Controller state, written by ObserveLatency (feeder goroutine) and
	// read by the pacing-protocol methods (policy gate): float64 bits.
	signal   atomic.Uint64 // smoothed windowed worst latency, ns
	bgFactor atomic.Uint64 // background-throttle factor

	windows    atomic.Int64
	overTarget atomic.Int64
}

var (
	_ Policy          = (*SLOPolicy)(nil)
	_ LatencyObserver = (*SLOPolicy)(nil)
	_ BgTuner         = (*SLOPolicy)(nil)
)

// NewSLO builds the latency-feedback policy over the given heap view.
func NewSLO(cfg SLOConfig, heap HeapView) *SLOPolicy {
	p := &SLOPolicy{
		f:    NewFormula(cfg.Formula, heap),
		cfg:  cfg,
		heap: heap,
	}
	p.bgFactor.Store(math.Float64bits(1.0))
	return p
}

// PolicyName identifies the policy in reports and benchmark records.
func (p *SLOPolicy) PolicyName() string { return "slo" }

// Config returns the controller configuration.
func (p *SLOPolicy) Config() SLOConfig { return p.cfg }

// Formula returns the wrapped Section 3 policy (the safety floor).
func (p *SLOPolicy) Formula() *FormulaPolicy { return p.f }

// ObserveLatency feeds one completed latency window's worst request latency.
// Safe for concurrent use; the smoothed signal and the background-throttle
// factor are recomputed here so the hot pacing methods only load them.
func (p *SLOPolicy) ObserveLatency(ns int64) {
	if ns <= 0 || p.cfg.Target <= 0 {
		return
	}
	p.windows.Add(1)
	if ns > int64(p.cfg.Target) {
		p.overTarget.Add(1)
	}
	alpha := p.cfg.alpha()
	var s float64
	for {
		old := p.signal.Load()
		s = math.Float64frombits(old)
		if s == 0 {
			s = float64(ns)
		} else {
			s = alpha*float64(ns) + (1-alpha)*s
		}
		if p.signal.CompareAndSwap(old, math.Float64bits(s)) {
			break
		}
	}
	p.bgFactor.Store(math.Float64bits(p.bgFactorFor(s / float64(p.cfg.Target))))
}

// bgFactorFor maps the error ratio to a background-throttle factor: 1 at
// the target, sliding toward BgMin as latency overshoots and toward BgMax
// as it undershoots, with the gain setting the slope on both sides.
func (p *SLOPolicy) bgFactorFor(ratio float64) float64 {
	g := p.cfg.gain()
	var f float64
	if ratio >= 1 {
		f = 1 / (1 + g*(ratio-1))
		if min := p.cfg.bgMin(); f < min {
			f = min
		}
	} else {
		f = 1 + g*(1-ratio)
		if max := p.cfg.bgMax(); f > max {
			f = max
		}
	}
	return f
}

// ratio returns smoothed-signal/target, or 0 while no signal exists.
func (p *SLOPolicy) ratio() float64 {
	if p.cfg.Target <= 0 {
		return 0
	}
	s := math.Float64frombits(p.signal.Load())
	if s == 0 {
		return 0
	}
	return s / float64(p.cfg.Target)
}

// BgThrottleFactor returns the multiplier the backend applies to its base
// background-tracer throttle. Safe for concurrent use.
func (p *SLOPolicy) BgThrottleFactor() float64 {
	return math.Float64frombits(p.bgFactor.Load())
}

// Stats snapshots the controller's observation counters.
func (p *SLOPolicy) Stats() SLOStats {
	return SLOStats{
		Windows:    p.windows.Load(),
		OverTarget: p.overTarget.Load(),
		Signal:     math.Float64frombits(p.signal.Load()),
		BgFactor:   p.BgThrottleFactor(),
	}
}

// KickoffThreshold scales the formula's threshold up (never down) by the
// clamped overshoot, so a run that is missing its latency target starts
// cycles earlier and spreads the tracing over more free memory.
func (p *SLOPolicy) KickoffThreshold() float64 {
	t := p.f.KickoffThreshold()
	if r := p.ratio(); r > 1 {
		boost := 1 + p.cfg.gain()*(r-1)
		if max := p.cfg.kickoffBoost(); boost > max {
			boost = max
		}
		t *= boost
	}
	return t
}

// Kickoff fires whenever the formula fires — the geometry floor — or when
// free memory drops below the boosted threshold.
func (p *SLOPolicy) Kickoff() bool {
	return p.f.Kickoff() || float64(p.heap.FreeWords()) < p.KickoffThreshold()
}

// taxScale returns the factor applied to the formula's budget: 1 while the
// signal is at or under target or the heap is too close to kickoff for
// shaving to be safe, sliding toward FloorK as latency overshoots.
func (p *SLOPolicy) taxScale() float64 {
	r := p.ratio()
	if r <= 1 {
		return 1
	}
	// Safety floor: inside half the kickoff threshold the geometry is in
	// charge — tracing must not fall behind, whatever the tail looks like.
	if float64(p.heap.FreeWords()) < p.f.KickoffThreshold()/2 {
		return 1
	}
	s := 1 / (1 + p.cfg.gain()*(r-1))
	if floor := p.cfg.floorK(); s < floor {
		s = floor
	}
	return s
}

// IncrementBudget shaves the formula's budget by the controller's tax scale:
// the shaved tracing debt does not vanish — T advances more slowly, so the
// progress formula re-levies it (with correction) across later increments
// and the unthrottled background tracers.
func (p *SLOPolicy) IncrementBudget(allocWords int64) Budget {
	b := p.f.IncrementBudget(allocWords)
	if s := p.taxScale(); s < 1 && b.Words > 0 {
		b.Words = int64(float64(b.Words) * s)
		b.K *= s
	}
	return b
}

// PressureBudget passes through unshaved: backpressure means the heap is
// already exhausted, where the latency controller has no business easing
// the debtors' repayment.
func (p *SLOPolicy) PressureBudget(allocWords int64) Budget {
	return p.f.PressureBudget(allocWords)
}

// The remaining protocol methods delegate to the formula floor.

func (p *SLOPolicy) StartCycle()                 { p.f.StartCycle() }
func (p *SLOPolicy) EndIncrement(done int64)     { p.f.EndIncrement(done) }
func (p *SLOPolicy) NoteTraced(words int64)      { p.f.NoteTraced(words) }
func (p *SLOPolicy) NoteAllocation(words int64)  { p.f.NoteAllocation(words) }
func (p *SLOPolicy) NoteBackgroundWork(w int64)  { p.f.NoteBackgroundWork(w) }
func (p *SLOPolicy) EndCycle(traced, dirt int64) { p.f.EndCycle(traced, dirt) }
func (p *SLOPolicy) Rate() float64               { return p.f.Rate() }
func (p *SLOPolicy) TracedWords() int64          { return p.f.TracedWords() }

// RateDetail reports the formula's terms with the controller's tax scale
// applied to K, matching what IncrementBudget would hand out.
func (p *SLOPolicy) RateDetail() (k, corrective, best float64) {
	k, corrective, best = p.f.RateDetail()
	if s := p.taxScale(); s < 1 {
		k *= s
	}
	return k, corrective, best
}

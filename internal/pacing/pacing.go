// Package pacing implements the Section 3 machinery of "A Parallel,
// Incremental and Concurrent GC for Servers" as a backend-neutral API: the
// kickoff formula free < (L+M)/K0, the per-increment progress formula
// K = (M+L-T)/F, the Best discount for background tracing, and the
// corrective term applied when tracing falls behind schedule.
//
// The package is deliberately unit-agnostic. Every quantity — heap state,
// allocation volume, tracing work — is measured in "words", where a word is
// whatever unit the backend's HeapView reports: the simulator backend
// (internal/core) feeds heap bytes, the live backend (internal/live) feeds
// whole objects. The formulas only ever relate these quantities to each
// other, so any consistent unit works; absolute defaults that depend on the
// unit (the Best sampling window) are configurable.
//
// The package is organized around the Policy interface (policy.go): the
// decision surface a backend drives. FormulaPolicy below is the paper's
// policy — pure heap geometry; SLOPolicy (slo.go) wraps a FormulaPolicy
// with a latency-feedback controller. A policy is single-threaded: the
// simulator calls it from one goroutine by construction, and concurrent
// backends must wrap it in their own lock (see internal/live's pacer gate).
// Two call styles are offered:
//
//   - The high-level entry points Kickoff, IncrementBudget, EndIncrement and
//     NoteBackgroundWork are the whole protocol for a backend that taxes
//     allocation: ask Kickoff at allocation points while idle, then per
//     allocation call IncrementBudget, repay the returned budget by tracing,
//     and report it with EndIncrement.
//   - The fine-grained methods (NoteAllocation, RateDetail, NoteTraced)
//     expose the same state transitions separately for backends that need
//     to interleave them differently; IncrementBudget is exactly
//     NoteAllocation followed by RateDetail.
package pacing

import (
	"mcgc/internal/stats"
)

// Config holds the Section 3 tuning parameters. All word-valued fields are
// in the caller's HeapView unit.
type Config struct {
	// K0 is the desired allocator tracing rate: words traced per word
	// allocated ("typically 5 to 10"; the paper's default runs use 8.0).
	K0 float64
	// KMax caps the adaptive rate; "typically 2*K0". Zero means 2*K0.
	KMax float64
	// C is the corrective term applied when tracing is behind schedule:
	// the rate used is K + (K-K0)*C.
	C float64
	// SmoothAlpha is the exponential smoothing factor for the L, M and
	// Best predictors.
	SmoothAlpha float64
	// InitialDirtyFraction seeds the M predictor before any history: the
	// fraction of occupied words expected to be on dirty cards (the paper
	// observes about 10% of the heap dirty when cleaning is deferred).
	InitialDirtyFraction float64
	// Headroom is added to the kickoff threshold, in words. The
	// generational extension sets it to the nursery size: old-space
	// consumption arrives in whole-nursery promotion bursts, so the
	// concurrent phase must start early enough to absorb one.
	Headroom int64
	// BestWindow is the allocation volume over which the background
	// tracing ratio B is sampled into Best (Section 3.2). Zero means
	// DefaultBestWindow, the paper's 1MB window — appropriate when words
	// are bytes; backends with coarser words set their own.
	BestWindow int64
	// PressureTaxFactor scales the tracing budget of a *blocked* allocator:
	// a mutator waiting out allocation backpressure repays its stalled
	// increment at this multiple of the ordinary rate, so the debtors that
	// drove the heap to exhaustion do the catch-up tracing instead of the
	// whole population slowing uniformly. Zero means DefaultPressureTax.
	PressureTaxFactor float64
}

// DefaultBestWindow is the B-sampling window used when Config.BestWindow is
// zero: 1MB, matching the paper when words are bytes.
const DefaultBestWindow = 1 << 20

// DefaultPressureTax is the PressureTaxFactor used when the config leaves it
// zero: blocked allocators repay at twice the ordinary rate.
const DefaultPressureTax = 2.0

// Default returns the configuration used in the paper's default runs.
func Default() Config {
	return Config{
		K0:                   8.0,
		C:                    1.0,
		SmoothAlpha:          0.4,
		InitialDirtyFraction: 0.05,
	}
}

// EffectiveKMax resolves the KMax default: 2*K0 when unset.
func (c Config) EffectiveKMax() float64 {
	if c.KMax > 0 {
		return c.KMax
	}
	return 2 * c.K0
}

func (c Config) bestWindow() int64 {
	if c.BestWindow > 0 {
		return c.BestWindow
	}
	return DefaultBestWindow
}

// EffectivePressureTax resolves the PressureTaxFactor default.
func (c Config) EffectivePressureTax() float64 {
	if c.PressureTaxFactor > 0 {
		return c.PressureTaxFactor
	}
	return DefaultPressureTax
}

// HeapView is the narrow heap interface the pacer reads. Both methods are
// sampled at every decision point, so they should be cheap; they are called
// only from whatever goroutine drives the policy.
type HeapView interface {
	// FreeWords is F: the memory currently available to allocation.
	FreeWords() int64
	// OccupiedWords is the allocated volume the predictors seed from
	// before any cycle history exists.
	OccupiedWords() int64
}

// Budget is one increment's tracing assignment: the work the allocating
// thread must repay, plus the intermediate terms telemetry records.
type Budget struct {
	// Words is the tracing volume owed for this allocation: K times the
	// allocation size, zero when the background threads are keeping up.
	Words int64
	// K is the rate the progress formula produced (after discount,
	// correction and clamping).
	K float64
	// Corrective is the (K-K0)*C addition applied because tracing fell
	// behind K0, zero otherwise.
	Corrective float64
	// Best is the smoothed background tracing rate discounted from K.
	Best float64
}

// FormulaPolicy implements the kickoff and progress formulas of Section 3.1
// and the background-tracing accounting of Section 3.2: the paper's pacing
// policy, driven purely by heap geometry. Construct with NewFormula; not
// safe for concurrent use.
type FormulaPolicy struct {
	cfg  Config
	heap HeapView

	// L predicts the words to be traced in the concurrent phase; M
	// predicts the words on dirty cards that must additionally be
	// scanned. Both are exponential smoothing averages of past cycles.
	l *stats.ExpSmooth
	m *stats.ExpSmooth

	// best is the smoothed ratio of background tracing to mutator
	// allocation ("Best ... used as a prediction for the near-future
	// tracing rate of the background threads").
	best *stats.ExpSmooth

	// Per-cycle progress state.
	traced int64 // T: words traced since the concurrent phase began

	// Background measurement window.
	windowAlloc int64
	windowBg    int64
}

var _ Policy = (*FormulaPolicy)(nil)

// NewFormula builds the Section 3 formula policy over the given heap view.
func NewFormula(cfg Config, heap HeapView) *FormulaPolicy {
	return &FormulaPolicy{
		cfg:  cfg,
		heap: heap,
		l:    stats.NewExpSmooth(cfg.SmoothAlpha),
		m:    stats.NewExpSmooth(cfg.SmoothAlpha),
		best: stats.NewExpSmooth(cfg.SmoothAlpha),
	}
}

// Config returns the configuration the pacer was built with.
func (p *FormulaPolicy) Config() Config { return p.cfg }

// Predictions returns the current L and M estimates, seeding them from the
// heap state when no history exists.
func (p *FormulaPolicy) Predictions() (l, m float64) {
	occupied := p.heap.OccupiedWords()
	l = p.l.Value()
	if !p.l.Primed() {
		l = float64(occupied)
	}
	m = p.m.Value()
	if !p.m.Primed() {
		m = p.cfg.InitialDirtyFraction * float64(occupied)
	}
	return l, m
}

// KickoffThreshold returns the free-memory level below which the concurrent
// phase starts: (L+M)/K0 plus the configured headroom.
func (p *FormulaPolicy) KickoffThreshold() float64 {
	l, m := p.Predictions()
	return (l+m)/p.cfg.K0 + float64(p.cfg.Headroom)
}

// Kickoff evaluates the kickoff formula against the current heap state:
// start the concurrent phase when free memory drops below (L+M)/K0.
func (p *FormulaPolicy) Kickoff() bool {
	return float64(p.heap.FreeWords()) < p.KickoffThreshold()
}

// StartCycle resets the per-cycle progress state. Call when the concurrent
// phase begins.
func (p *FormulaPolicy) StartCycle() {
	p.traced = 0
	p.windowAlloc = 0
	p.windowBg = 0
}

// NoteTraced accounts tracing work from any participant (T accumulates
// mutator, dedicated and background tracing alike).
func (p *FormulaPolicy) NoteTraced(words int64) { p.traced += words }

// EndIncrement reports the tracing work an increment actually performed
// against its budget. It is NoteTraced under the name the allocation-tax
// protocol uses; a backend that could not repay the full budget simply
// reports less, and the progress formula compensates on the next increment.
func (p *FormulaPolicy) EndIncrement(doneWords int64) { p.NoteTraced(doneWords) }

// NoteBackgroundWork accounts background-thread tracing: it advances T and
// feeds the B window so Best discounts the background threads' near-future
// rate from the mutators' tax.
func (p *FormulaPolicy) NoteBackgroundWork(words int64) {
	p.traced += words
	p.windowBg += words
}

// NoteAllocation feeds the allocation side of the B window; when the window
// is full, B is sampled into Best.
func (p *FormulaPolicy) NoteAllocation(words int64) {
	p.windowAlloc += words
	if p.windowAlloc >= p.cfg.bestWindow() {
		b := float64(p.windowBg) / float64(p.windowAlloc)
		p.best.Add(b)
		p.windowAlloc = 0
		p.windowBg = 0
	}
}

// IncrementBudget is the allocation-tax entry point: feed the allocation
// into the B window, evaluate the progress formula, and return the tracing
// budget the allocator owes. Repay it by tracing, then call EndIncrement
// with the work actually done.
func (p *FormulaPolicy) IncrementBudget(allocWords int64) Budget {
	p.NoteAllocation(allocWords)
	k, corrective, best := p.RateDetail()
	return Budget{
		Words:      int64(k * float64(allocWords)),
		K:          k,
		Corrective: corrective,
		Best:       best,
	}
}

// PressureBudget is the backpressure variant of IncrementBudget: the tracing
// budget a mutator owes while it is *blocked* on an exhausted heap, waiting
// for the collector to free its stalled allocation. The allocation is not
// fed into the B window — nothing was actually allocated yet — and the rate
// is scaled by PressureTaxFactor with a floor of the stalled volume itself,
// so a blocked debtor always contributes at least one batch of tracing per
// wait round even when the progress formula reads zero.
func (p *FormulaPolicy) PressureBudget(allocWords int64) Budget {
	k, corrective, best := p.RateDetail()
	words := int64(k * p.cfg.EffectivePressureTax() * float64(allocWords))
	if words < allocWords {
		words = allocWords
	}
	return Budget{Words: words, K: k, Corrective: corrective, Best: best}
}

// Rate evaluates the progress formula and the background discount, and
// returns the tracing rate a mutator must apply to its current allocation:
// words of tracing per word allocated.
//
//	K = (M + L - T) / F      (negative => KMax: L or M were underestimated)
//	if K < Best: K = 0       (background threads are keeping up)
//	else:        K -= Best
//	if K > K0:   K += (K-K0)*C, capped at KMax
func (p *FormulaPolicy) Rate() float64 {
	k, _, _ := p.RateDetail()
	return k
}

// RateDetail is Rate plus the intermediate terms the telemetry layer
// records: the corrective addition applied when tracing fell behind K0, and
// the Best discount in effect.
func (p *FormulaPolicy) RateDetail() (k, corrective, best float64) {
	l, m := p.Predictions()
	kmax := p.cfg.EffectiveKMax()
	best = p.best.Value()
	// The headroom shifts the completion target: tracing should finish
	// while that much free memory remains (one promotion burst, under the
	// generational extension), not at the exact moment of exhaustion.
	free := p.heap.FreeWords() - p.cfg.Headroom
	if free <= 0 {
		return kmax, 0, best
	}
	k = (m + l - float64(p.traced)) / float64(free)
	if k < 0 {
		return kmax, 0, best
	}
	if k < best {
		return 0, 0, best
	}
	k -= best
	if k > p.cfg.K0 {
		corrective = (k - p.cfg.K0) * p.cfg.C
		k += corrective
	}
	if k > kmax {
		k = kmax
	}
	return k, corrective, best
}

// EndCycle records the cycle's actual traced volume and dirty-card volume
// into the L and M predictors.
func (p *FormulaPolicy) EndCycle(tracedWords, dirtyCardWords int64) {
	p.l.Add(float64(tracedWords))
	p.m.Add(float64(dirtyCardWords))
}

// TracedWords returns T, the tracing volume accumulated this cycle.
func (p *FormulaPolicy) TracedWords() int64 { return p.traced }

// Best returns the smoothed background tracing rate (zero before the first
// full window).
func (p *FormulaPolicy) Best() float64 { return p.best.Value() }

// BestPrimed reports whether Best has absorbed at least one full window.
func (p *FormulaPolicy) BestPrimed() bool { return p.best.Primed() }

package pacing

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// policyCase builds one Policy implementation over a fresh fakeHeap, for the
// conformance suite that every policy must pass regardless of how it bends
// the formula.
type policyCase struct {
	name  string
	build func(free, occupied int64) (Policy, *fakeHeap)
}

func policyCases() []policyCase {
	formula := Config{K0: 8, SmoothAlpha: 0.5, C: 2, Headroom: 50}
	return []policyCase{
		{"formula", func(free, occupied int64) (Policy, *fakeHeap) {
			h := &fakeHeap{free: free, occupied: occupied}
			return NewFormula(formula, h), h
		}},
		{"slo", func(free, occupied int64) (Policy, *fakeHeap) {
			h := &fakeHeap{free: free, occupied: occupied}
			return NewSLO(SLOConfig{Formula: formula, Target: time.Millisecond}, h), h
		}},
		{"slo-hot", func(free, occupied int64) (Policy, *fakeHeap) {
			// The controller under heavy latency pressure: the conformance
			// properties must hold at the extremes of the control range too.
			h := &fakeHeap{free: free, occupied: occupied}
			p := NewSLO(SLOConfig{Formula: formula, Target: time.Millisecond}, h)
			for i := 0; i < 16; i++ {
				p.ObserveLatency(int64(20 * time.Millisecond))
			}
			return p, h
		}},
	}
}

// TestPolicyKickoffMonotone: with the policy's other state fixed, shrinking
// free memory never turns a firing kickoff back off. A policy violating this
// could skip collection entirely while the heap drains.
func TestPolicyKickoffMonotone(t *testing.T) {
	for _, tc := range policyCases() {
		t.Run(tc.name, func(t *testing.T) {
			p, h := tc.build(1<<20, 4096)
			p.EndCycle(8000, 800) // prime the predictors
			fired := false
			for free := int64(1 << 20); free >= 0; free -= 1 << 12 {
				h.free = free
				k := p.Kickoff()
				if fired && !k {
					t.Fatalf("kickoff regressed from firing to not at free=%d", free)
				}
				fired = fired || k
			}
			if !fired {
				t.Fatal("kickoff never fired even at free=0")
			}
		})
	}
}

// TestPolicyBudgetNonNegative: budgets and rates must never go negative, for
// any allocation size, heap state or predictor history — a negative budget
// would credit the mutator with tracing work.
func TestPolicyBudgetNonNegative(t *testing.T) {
	for _, tc := range policyCases() {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			p, h := tc.build(1<<16, 1<<14)
			p.EndCycle(int64(rng.Intn(1<<14)), int64(rng.Intn(1<<10)))
			p.StartCycle()
			for i := 0; i < 500; i++ {
				h.free = int64(rng.Intn(1 << 17))
				h.occupied = int64(rng.Intn(1 << 15))
				alloc := int64(rng.Intn(1 << 10))
				if b := p.IncrementBudget(alloc); b.Words < 0 || b.K < 0 {
					t.Fatalf("IncrementBudget(%d) = %+v at free=%d", alloc, b, h.free)
				}
				if b := p.PressureBudget(alloc); b.Words < 0 || b.K < 0 {
					t.Fatalf("PressureBudget(%d) = %+v at free=%d", alloc, b, h.free)
				}
				if r := p.Rate(); r < 0 || math.IsNaN(r) {
					t.Fatalf("Rate() = %v", r)
				}
				if th := p.KickoffThreshold(); th < 0 || math.IsNaN(th) {
					t.Fatalf("KickoffThreshold() = %v", th)
				}
				p.NoteTraced(int64(rng.Intn(1 << 9)))
				if i%50 == 49 {
					p.EndIncrement(int64(rng.Intn(1 << 9)))
					p.EndCycle(int64(rng.Intn(1<<14)), int64(rng.Intn(1<<10)))
					p.StartCycle()
				}
			}
		})
	}
}

// TestPolicyDeterminism: two instances fed the identical seeded script must
// produce identical budgets — policies may keep smoothed state but not
// hidden randomness or wall-clock dependence.
func TestPolicyDeterminism(t *testing.T) {
	for _, tc := range policyCases() {
		t.Run(tc.name, func(t *testing.T) {
			run := func() []Budget {
				rng := rand.New(rand.NewSource(42))
				p, h := tc.build(1<<16, 1<<14)
				var out []Budget
				for cycle := 0; cycle < 5; cycle++ {
					p.StartCycle()
					for i := 0; i < 100; i++ {
						h.free = int64(1<<16 - rng.Intn(1<<15))
						out = append(out, p.IncrementBudget(int64(rng.Intn(256))))
						p.NoteTraced(int64(rng.Intn(512)))
						p.NoteBackgroundWork(int64(rng.Intn(128)))
						p.NoteAllocation(int64(rng.Intn(256)))
					}
					p.EndIncrement(int64(rng.Intn(512)))
					p.EndCycle(int64(rng.Intn(1<<14)), int64(rng.Intn(1<<10)))
				}
				return out
			}
			a, b := run(), run()
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("budget %d differs between identical runs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestPolicyName covers the report vocabulary: nil, the formula, and any
// policy that names itself.
func TestPolicyName(t *testing.T) {
	h := &fakeHeap{free: 100}
	if got := Name(nil); got != "none" {
		t.Fatalf("Name(nil) = %q", got)
	}
	if got := Name(NewFormula(Default(), h)); got != "formula" {
		t.Fatalf("Name(formula) = %q", got)
	}
	if got := Name(NewSLO(DefaultSLO(), h)); got != "slo" {
		t.Fatalf("Name(slo) = %q", got)
	}
}

// TestSLOKickoffSupersetOfFormula: wherever the formula fires, the SLO policy
// must fire too — the controller may only move kickoff earlier, never later
// than the geometry requires.
func TestSLOKickoffSupersetOfFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		h := &fakeHeap{}
		cfg := Config{K0: 4 + float64(rng.Intn(12)), SmoothAlpha: 0.5, Headroom: int64(rng.Intn(1 << 10))}
		f := NewFormula(cfg, h)
		s := NewSLO(SLOConfig{Formula: cfg, Target: time.Millisecond}, h)
		traced, dirty := int64(rng.Intn(1<<14)), int64(rng.Intn(1<<10))
		f.EndCycle(traced, dirty)
		s.EndCycle(traced, dirty)
		// Random latency history, including runs far over target.
		for i := 0; i < rng.Intn(8); i++ {
			s.ObserveLatency(int64(rng.Intn(int(10 * time.Millisecond))))
		}
		h.free = int64(rng.Intn(1 << 16))
		h.occupied = int64(rng.Intn(1 << 15))
		if f.Kickoff() && !s.Kickoff() {
			t.Fatalf("trial %d: formula fires at free=%d but SLO does not", trial, h.free)
		}
	}
}

// TestSLOTaxFloor: however far latency overshoots, the shaved budget must
// stay at or above FloorK of the formula's budget — and must not be shaved
// at all when free memory is inside half the kickoff threshold.
func TestSLOTaxFloor(t *testing.T) {
	cfg := Config{K0: 8, SmoothAlpha: 0.5}
	target := time.Millisecond
	h := &fakeHeap{free: 1 << 16, occupied: 1 << 14}
	fh := &fakeHeap{free: 1 << 16, occupied: 1 << 14}
	s := NewSLO(SLOConfig{Formula: cfg, Target: target, FloorK: 0.25}, h)
	f := NewFormula(cfg, fh)
	s.EndCycle(1<<14, 0)
	f.EndCycle(1<<14, 0)
	s.StartCycle()
	f.StartCycle()
	// Latency 1000x over target: the scale must bottom out at the floor.
	for i := 0; i < 32; i++ {
		s.ObserveLatency(int64(1000 * target))
	}
	const alloc = 512
	sb, fb := s.IncrementBudget(alloc), f.IncrementBudget(alloc)
	if fb.Words == 0 {
		t.Fatal("formula budget unexpectedly zero; test needs a real tax")
	}
	if sb.Words >= fb.Words {
		t.Fatalf("overshoot did not shave the tax: slo %d vs formula %d", sb.Words, fb.Words)
	}
	if min := int64(0.25*float64(fb.Words)) - 1; sb.Words < min {
		t.Fatalf("tax shaved below floor: slo %d, floor %d (formula %d)", sb.Words, min, fb.Words)
	}
	// Inside half the kickoff threshold the shave must vanish entirely.
	h.free = int64(s.Formula().KickoffThreshold()/2) - 1
	fh.free = h.free
	sb, fb = s.IncrementBudget(alloc), f.IncrementBudget(alloc)
	if sb.Words != fb.Words {
		t.Fatalf("tax shaved inside the safety floor: slo %d vs formula %d", sb.Words, fb.Words)
	}
}

// TestSLOBgFactorDirection: over target the background tracers run hotter
// (factor < 1, clamped at BgMin); under target they park longer (factor > 1,
// clamped at BgMax); with no samples the factor is exactly 1.
func TestSLOBgFactorDirection(t *testing.T) {
	target := time.Millisecond
	build := func() *SLOPolicy {
		// Gain 8 so both clamps actually bind: the undershoot slope is
		// 1 + gain*(1-ratio), which never reaches BgMax at small gains.
		return NewSLO(SLOConfig{Formula: Default(), Target: target, Gain: 8, BgMin: 0.125, BgMax: 4}, &fakeHeap{free: 1 << 16})
	}
	p := build()
	if f := p.BgThrottleFactor(); f != 1 {
		t.Fatalf("no-sample factor = %v, want 1", f)
	}
	p.ObserveLatency(int64(2 * target))
	if f := p.BgThrottleFactor(); f >= 1 {
		t.Fatalf("over-target factor = %v, want < 1", f)
	}
	for i := 0; i < 64; i++ {
		p.ObserveLatency(int64(1000 * target))
	}
	if f := p.BgThrottleFactor(); f != 0.125 {
		t.Fatalf("extreme overshoot factor = %v, want BgMin=0.125", f)
	}
	p = build()
	p.ObserveLatency(int64(target) / 2)
	if f := p.BgThrottleFactor(); f <= 1 {
		t.Fatalf("under-target factor = %v, want > 1", f)
	}
	for i := 0; i < 64; i++ {
		p.ObserveLatency(1)
	}
	if f := p.BgThrottleFactor(); f != 4 {
		t.Fatalf("extreme undershoot factor = %v, want BgMax=4", f)
	}
}

// TestSLONoSignalMatchesFormula: before any latency window arrives, every
// budget and threshold must be exactly the formula's — the controller is
// purely additive on top of a signal.
func TestSLONoSignalMatchesFormula(t *testing.T) {
	cfg := Config{K0: 8, SmoothAlpha: 0.5, C: 2, Headroom: 100}
	hs := &fakeHeap{free: 1 << 16, occupied: 1 << 14}
	hf := &fakeHeap{free: 1 << 16, occupied: 1 << 14}
	s := NewSLO(SLOConfig{Formula: cfg, Target: time.Millisecond}, hs)
	f := NewFormula(cfg, hf)
	rng := rand.New(rand.NewSource(9))
	for cycle := 0; cycle < 3; cycle++ {
		s.StartCycle()
		f.StartCycle()
		for i := 0; i < 50; i++ {
			free := int64(rng.Intn(1 << 16))
			hs.free, hf.free = free, free
			alloc := int64(rng.Intn(512))
			if sb, fb := s.IncrementBudget(alloc), f.IncrementBudget(alloc); sb != fb {
				t.Fatalf("budget diverges without a signal: %+v vs %+v", sb, fb)
			}
			if st, ft := s.KickoffThreshold(), f.KickoffThreshold(); st != ft {
				t.Fatalf("threshold diverges without a signal: %v vs %v", st, ft)
			}
			traced := int64(rng.Intn(1 << 9))
			s.NoteTraced(traced)
			f.NoteTraced(traced)
		}
		traced, dirty := int64(rng.Intn(1<<14)), int64(rng.Intn(1<<10))
		s.EndCycle(traced, dirty)
		f.EndCycle(traced, dirty)
	}
}

// TestSLOSmoothing pins the signal EWMA: the first window seeds it, later
// windows blend by alpha.
func TestSLOSmoothing(t *testing.T) {
	p := NewSLO(SLOConfig{Formula: Default(), Target: time.Millisecond, Alpha: 0.5}, &fakeHeap{free: 1 << 16})
	p.ObserveLatency(1000)
	if s := p.Stats().Signal; s != 1000 {
		t.Fatalf("seed signal = %v, want 1000", s)
	}
	p.ObserveLatency(2000)
	if s := p.Stats().Signal; s != 1500 {
		t.Fatalf("smoothed signal = %v, want 1500", s)
	}
	st := p.Stats()
	if st.Windows != 2 || st.OverTarget != 0 {
		t.Fatalf("stats = %+v, want 2 windows, 0 over target", st)
	}
	p.ObserveLatency(int64(2 * time.Millisecond))
	if st := p.Stats(); st.OverTarget != 1 {
		t.Fatalf("over-target count = %d, want 1", st.OverTarget)
	}
}

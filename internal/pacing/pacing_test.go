package pacing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeHeap is a mutable HeapView for driving the formulas directly.
type fakeHeap struct {
	free, occupied int64
}

func (h *fakeHeap) FreeWords() int64     { return h.free }
func (h *fakeHeap) OccupiedWords() int64 { return h.occupied }

func newTestPacer(cfg Config, free, occupied int64) (*FormulaPolicy, *fakeHeap) {
	h := &fakeHeap{free: free, occupied: occupied}
	return NewFormula(cfg, h), h
}

func TestKickoffFormula(t *testing.T) {
	p, h := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, InitialDirtyFraction: 0}, 100, 640)
	// Unprimed: L falls back to occupied words. Threshold = occupied/8.
	if p.Kickoff() {
		t.Fatal("kickoff with free above threshold")
	}
	h.free = 79
	if !p.Kickoff() {
		t.Fatal("no kickoff with free below threshold")
	}
	// Priming L and M moves the threshold: (L+M)/K0 = (800+160)/8 = 120.
	p.EndCycle(800, 160)
	h.occupied = 0
	h.free = 121
	if p.Kickoff() {
		t.Fatal("kickoff above primed threshold")
	}
	h.free = 119
	if !p.Kickoff() {
		t.Fatal("no kickoff below primed threshold")
	}
}

func TestProgressFormulaBasic(t *testing.T) {
	p, h := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, C: 1}, 1000, 0)
	p.EndCycle(8000, 0) // L = 8000, M = 0
	p.StartCycle()
	// T=0, F=1000: K = 8000/1000 = 8 = K0, no correction.
	if k := p.Rate(); math.Abs(k-8) > 1e-9 {
		t.Fatalf("rate = %v, want 8", k)
	}
	// Tracing ahead of schedule: T=6000, F=1000 => K = 2.
	p.NoteTraced(6000)
	if k := p.Rate(); math.Abs(k-2) > 1e-9 {
		t.Fatalf("rate = %v, want 2", k)
	}
	_ = h
}

func TestProgressFormulaNegativeMeansKMax(t *testing.T) {
	// T > M+L: the predictions were underestimates; the formula goes
	// negative and must clamp to KMax, not to zero or a negative budget.
	p, h := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5}, 500, 0)
	p.EndCycle(1000, 0)
	p.StartCycle()
	p.NoteTraced(2000)
	if k := p.Rate(); k != 16 {
		t.Fatalf("rate = %v, want KMax=16", k)
	}
	// Zero free memory (F -> 0) is also the maximum rate, with no division.
	h.free = 0
	if k := p.Rate(); k != 16 {
		t.Fatalf("rate at F=0 = %v, want KMax", k)
	}
	// Negative free memory (over-committed heap) clamps the same way.
	h.free = -100
	if k := p.Rate(); k != 16 {
		t.Fatalf("rate at F<0 = %v, want KMax", k)
	}
}

func TestProgressCorrectiveTerm(t *testing.T) {
	// Behind schedule: K > K0 gets amplified by C.
	p, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, C: 1}, 1000, 0)
	p.EndCycle(10000, 0)
	p.StartCycle()
	// K = 10000/1000 = 10 > K0=8 => K + (K-K0)*C = 12.
	if k := p.Rate(); math.Abs(k-12) > 1e-9 {
		t.Fatalf("rate = %v, want 12", k)
	}
	k, corrective, _ := p.RateDetail()
	if math.Abs(corrective-2) > 1e-9 {
		t.Fatalf("corrective = %v, want 2 (k=%v)", corrective, k)
	}
	// Capped at KMax.
	p2, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, C: 10}, 1000, 0)
	p2.EndCycle(10000, 0)
	p2.StartCycle()
	if k := p2.Rate(); k != 16 {
		t.Fatalf("rate = %v, want KMax cap 16", k)
	}
}

// TestCorrectiveCatchUp drives a cycle where tracing stalls while the heap
// drains, and requires the corrective term to grow monotonically: the
// further behind schedule, the harder the tax.
func TestCorrectiveCatchUp(t *testing.T) {
	p, h := newTestPacer(Config{K0: 4, KMax: 100, SmoothAlpha: 0.5, C: 1}, 2000, 0)
	p.EndCycle(10000, 0)
	p.StartCycle()
	var lastK, lastCorr float64
	for _, free := range []int64{2000, 1500, 1000, 500} {
		h.free = free
		k, corr, _ := p.RateDetail()
		if k < lastK || corr < lastCorr {
			t.Fatalf("K/corrective not monotone under a stall: free=%d K=%v (prev %v) corrective=%v (prev %v)",
				free, k, lastK, corr, lastCorr)
		}
		lastK, lastCorr = k, corr
	}
	if lastCorr == 0 {
		t.Fatal("corrective term never engaged while tracing was behind schedule")
	}
}

func TestBackgroundDiscount(t *testing.T) {
	p, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 1.0, C: 1}, 1000, 0)
	p.EndCycle(8000, 0)
	p.StartCycle()
	// Background does 3 words per allocated word: Best = 3.
	p.NoteBackgroundWork(3 << 20)
	p.NoteAllocation(1 << 20)
	if b := p.Best(); math.Abs(b-3) > 1e-9 {
		t.Fatalf("Best = %v, want 3", b)
	}
	// K would be 8; discounted by Best: 8-3 = 5 (below K0, no correction).
	p.traced = 0
	if k := p.Rate(); math.Abs(k-5) > 1e-9 {
		t.Fatalf("discounted rate = %v, want 5", k)
	}
	// Background fully keeping up: K < Best => 0. (Fresh pacer so T stays
	// small: NoteBackgroundWork counts toward T too.)
	p3, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 1.0, C: 1}, 8000, 0)
	p3.EndCycle(8000, 0)
	p3.StartCycle()
	p3.NoteBackgroundWork(3 << 20)
	p3.NoteAllocation(1 << 20)
	p3.traced = 0
	// K = 8000/8000 = 1 < Best = 3.
	if k := p3.Rate(); k != 0 {
		t.Fatalf("rate = %v, want 0 when background keeps up", k)
	}
}

func TestBackgroundWindowing(t *testing.T) {
	p, _ := newTestPacer(Default(), 0, 0)
	p.StartCycle()
	p.NoteBackgroundWork(512 << 10)
	// Window not yet full: Best unprimed.
	p.NoteAllocation(DefaultBestWindow / 2)
	if p.BestPrimed() {
		t.Fatal("Best sampled before the window filled")
	}
	p.NoteAllocation(DefaultBestWindow / 2)
	if !p.BestPrimed() {
		t.Fatal("Best not sampled after a full window")
	}
	if b := p.Best(); b <= 0 || b > 1 {
		t.Fatalf("B sample = %v out of range", b)
	}
}

// TestBestSmoothing checks the exponential blend across windows: with
// alpha=0.5, a window of B=1 followed by a window of B=0 must leave 0.5.
func TestBestSmoothing(t *testing.T) {
	p, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, BestWindow: 100}, 0, 0)
	p.StartCycle()
	p.NoteBackgroundWork(100)
	p.NoteAllocation(100) // B = 1 primes Best
	if b := p.Best(); math.Abs(b-1) > 1e-9 {
		t.Fatalf("Best after first window = %v, want 1", b)
	}
	p.NoteAllocation(100) // B = 0: Best <- 0.5*0 + 0.5*1
	if b := p.Best(); math.Abs(b-0.5) > 1e-9 {
		t.Fatalf("Best after second window = %v, want 0.5", b)
	}
}

func TestConfiguredBestWindow(t *testing.T) {
	// A backend whose words are objects shrinks the window; the sampling
	// boundary must follow the configuration, not the 1MB byte default.
	p, _ := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, BestWindow: 64}, 0, 0)
	p.StartCycle()
	p.NoteBackgroundWork(32)
	p.NoteAllocation(63)
	if p.BestPrimed() {
		t.Fatal("Best sampled before the configured window filled")
	}
	p.NoteAllocation(1)
	if !p.BestPrimed() {
		t.Fatal("Best not sampled after the configured window filled")
	}
}

func TestKMaxDefaults(t *testing.T) {
	cfg := Config{K0: 5}
	if cfg.EffectiveKMax() != 10 {
		t.Fatalf("default KMax = %v, want 2*K0", cfg.EffectiveKMax())
	}
	cfg.KMax = 7
	if cfg.EffectiveKMax() != 7 {
		t.Fatalf("explicit KMax = %v", cfg.EffectiveKMax())
	}
}

// Property: the rate is always within [0, KMax] whatever the state.
func TestQuickRateBounded(t *testing.T) {
	f := func(l, m, traced, free uint32, bg uint16) bool {
		p, h := newTestPacer(Default(), int64(free), 0)
		p.EndCycle(int64(l), int64(m))
		p.StartCycle()
		p.NoteTraced(int64(traced))
		p.NoteBackgroundWork(int64(bg))
		p.NoteAllocation(DefaultBestWindow)
		h.free = int64(free)
		k := p.Rate()
		return k >= 0 && k <= p.cfg.EffectiveKMax()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionsSeedFromHeap(t *testing.T) {
	p, h := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, InitialDirtyFraction: 0.1}, 0, 1000)
	l, m := p.Predictions()
	if l != 1000 {
		t.Fatalf("unprimed L = %v, want occupied", l)
	}
	if m != 100 {
		t.Fatalf("unprimed M = %v, want 10%% of occupied", m)
	}
	p.EndCycle(500, 50)
	l, m = p.Predictions()
	if l != 500 || m != 50 {
		t.Fatalf("primed L,M = %v,%v", l, m)
	}
	_ = h
}

func TestHeadroomShiftsKickoffAndCompletion(t *testing.T) {
	cfg := Config{K0: 8, SmoothAlpha: 0.5, Headroom: 1000}
	p, h := newTestPacer(cfg, 1999, 0)
	p.EndCycle(8000, 0)
	// Kickoff threshold = L/K0 + headroom = 1000 + 1000.
	if !p.Kickoff() {
		t.Fatal("kickoff should fire below threshold+headroom")
	}
	h.free = 2001
	if p.Kickoff() {
		t.Fatal("kickoff fired above threshold+headroom")
	}
	// The progress formula targets completion with headroom remaining:
	// at free = headroom the rate is already maximal.
	p.StartCycle()
	h.free = 1000
	if k := p.Rate(); k != cfg.EffectiveKMax() {
		t.Fatalf("rate at free==headroom = %v, want KMax", k)
	}
	// Above the headroom the effective free memory is reduced.
	h.free = 2000
	if k := p.Rate(); math.Abs(k-8) > 1e-9 { // 8000/(2000-1000)=8
		t.Fatalf("rate = %v, want 8", k)
	}
}

// TestIncrementBudgetComposition: IncrementBudget must be exactly
// NoteAllocation followed by RateDetail — the two call styles may never
// diverge, because internal/core uses the fine-grained methods and
// internal/live uses the composed one.
func TestIncrementBudgetComposition(t *testing.T) {
	build := func() (*FormulaPolicy, *fakeHeap) {
		p, h := newTestPacer(Config{K0: 8, SmoothAlpha: 0.5, C: 1, BestWindow: 1000}, 1000, 0)
		p.EndCycle(10000, 100)
		p.StartCycle()
		p.NoteBackgroundWork(700)
		return p, h
	}
	a, _ := build()
	b, _ := build()
	for i := 0; i < 10; i++ {
		alloc := int64(100 + 37*i)
		got := a.IncrementBudget(alloc)
		b.NoteAllocation(alloc)
		k, corr, best := b.RateDetail()
		want := Budget{Words: int64(k * float64(alloc)), K: k, Corrective: corr, Best: best}
		if got != want {
			t.Fatalf("step %d: IncrementBudget %+v != composed %+v", i, got, want)
		}
		a.EndIncrement(got.Words / 2)
		b.NoteTraced(want.Words / 2)
	}
	if a.TracedWords() != b.TracedWords() {
		t.Fatalf("T diverged: %d vs %d", a.TracedWords(), b.TracedWords())
	}
}

// syntheticRun drives the full protocol over a seeded allocate/trace
// workload against a simulated heap and records every kickoff point (the
// allocation index at which Kickoff turned true) plus the K value of every
// increment.
func syntheticRun(seed int64) (kickoffs []int, ks []float64) {
	const heap = 1 << 20
	rng := rand.New(rand.NewSource(seed))
	h := &fakeHeap{free: heap, occupied: 0}
	p := NewFormula(Config{K0: 6, C: 1, SmoothAlpha: 0.4, InitialDirtyFraction: 0.05, BestWindow: 4096}, h)
	inCycle := false
	for i := 0; i < 20000; i++ {
		alloc := int64(rng.Intn(200) + 1)
		h.free -= alloc
		h.occupied += alloc
		if h.free < 0 {
			h.free = 0
		}
		if !inCycle {
			if p.Kickoff() {
				kickoffs = append(kickoffs, i)
				p.StartCycle()
				inCycle = true
			}
			continue
		}
		// Background threads contribute stochastically.
		if bg := int64(rng.Intn(100)); bg > 40 {
			p.NoteBackgroundWork(bg)
		}
		b := p.IncrementBudget(alloc)
		ks = append(ks, b.K)
		// Repay a seeded fraction of the budget.
		done := b.Words * int64(rng.Intn(100)+1) / 100
		p.EndIncrement(done)
		// Cycle completes once T covers the prediction; reclaim garbage.
		l, m := p.Predictions()
		if float64(p.TracedWords()) >= l+m || h.free == 0 {
			live := h.occupied * int64(rng.Intn(40)+30) / 100
			h.free += h.occupied - live
			h.occupied = live
			p.EndCycle(p.TracedWords(), int64(rng.Intn(int(m)+1)))
			inCycle = false
		}
	}
	return kickoffs, ks
}

// TestDeterministicKickoffPoints: the pacer is a pure function of its
// inputs — the same seeded workload must yield identical kickoff points and
// an identical K trajectory, and a different seed must not.
func TestDeterministicKickoffPoints(t *testing.T) {
	k1, ks1 := syntheticRun(11)
	k2, ks2 := syntheticRun(11)
	if len(k1) == 0 || len(ks1) == 0 {
		t.Fatalf("synthetic run produced no kickoffs (%d) or increments (%d); vacuous", len(k1), len(ks1))
	}
	if !equalInts(k1, k2) {
		t.Fatalf("same seed, different kickoff points:\n%v\n%v", k1, k2)
	}
	if !equalFloats(ks1, ks2) {
		t.Fatal("same seed, different K trajectories")
	}
	k3, _ := syntheticRun(12)
	if equalInts(k1, k3) {
		t.Fatal("different seeds produced identical kickoff points — the workload is not exercising the formulas")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package pacing

import (
	"flag"
	"fmt"
	"io"
)

// This file is the shared command-line vocabulary for the Section 3
// parameters: every command that exposes pacing knobs (gcsim, gcbench,
// gcstress) binds the same flag names onto a Config, so a -k0 means the
// same thing everywhere. Commands that used different spellings in earlier
// versions keep them as deprecated aliases that still parse but print a
// migration hint.

// Flags tracks the vocabulary bound to one flag.FlagSet, plus whatever
// deprecated aliases the command registered.
type Flags struct {
	fs         *flag.FlagSet
	deprecated map[string]string // old name -> canonical name
}

// Bind registers the canonical pacing vocabulary on fs, parsing into cfg;
// cfg's current values become the flag defaults. The returned Flags adds
// aliases and reports migration hints after parsing.
func Bind(fs *flag.FlagSet, cfg *Config) *Flags {
	f := BindRate(fs, &cfg.K0)
	fs.Float64Var(&cfg.KMax, "kmax", cfg.KMax, "cap on the adaptive tracing rate (0 = 2*K0)")
	fs.Float64Var(&cfg.C, "tracing-c", cfg.C, "corrective coefficient: the rate used is K+(K-K0)*C when tracing is behind schedule")
	fs.Float64Var(&cfg.SmoothAlpha, "smooth-alpha", cfg.SmoothAlpha, "exponential smoothing factor for the L, M and Best predictors")
	fs.Float64Var(&cfg.InitialDirtyFraction, "dirty-fraction", cfg.InitialDirtyFraction, "seed for the dirty-card predictor M before any cycle history")
	fs.Int64Var(&cfg.Headroom, "kickoff-headroom", cfg.Headroom, "words added to the kickoff threshold: start (and aim to finish) tracing this early")
	fs.Int64Var(&cfg.BestWindow, "best-window", cfg.BestWindow, "allocation window for sampling the background tracing rate Best (0 = backend default)")
	fs.Float64Var(&cfg.PressureTaxFactor, "pressure-tax", cfg.PressureTaxFactor, "tracing-rate multiplier for allocators blocked on backpressure (0 = default 2.0)")
	return f
}

// BindSLO registers the latency-feedback controller's vocabulary on fs,
// parsing into cfg. The Section 3 parameters inside cfg.Formula are NOT
// bound here — bind them with Bind against the same underlying Config so
// -k0 and friends keep one spelling; -slo-p99 0 (the default) leaves the
// SLO policy off entirely.
func BindSLO(fs *flag.FlagSet, cfg *SLOConfig) {
	fs.DurationVar(&cfg.Target, "slo-p99", cfg.Target, "request-latency target for the SLO pacing policy (0 = formula policy)")
	fs.Float64Var(&cfg.Gain, "slo-gain", cfg.Gain, "proportional gain of the SLO controller (0 = default 1.0)")
	fs.Float64Var(&cfg.FloorK, "slo-floor-k", cfg.FloorK, "lowest fraction of the formula tracing rate the controller may shave the mutator tax to (0 = default 0.25)")
	fs.Float64Var(&cfg.BgMin, "slo-bg-min", cfg.BgMin, "hottest background-throttle factor under latency pressure (0 = default 0.125)")
	fs.Float64Var(&cfg.BgMax, "slo-bg-max", cfg.BgMax, "laziest background-throttle factor when latency is under target (0 = default 4.0)")
	fs.Float64Var(&cfg.Alpha, "slo-alpha", cfg.Alpha, "smoothing factor for the observed latency windows (0 = default 0.3)")
	fs.Float64Var(&cfg.KickoffBoost, "slo-kickoff-boost", cfg.KickoffBoost, "cap on the kickoff-threshold multiplier under latency pressure (0 = default 2.0)")
}

// BindRate registers only the tracing-rate flags (-k0 and its
// -tracing-rate synonym), for commands whose remaining pacing parameters
// are fixed by experiment definitions.
func BindRate(fs *flag.FlagSet, k0 *float64) *Flags {
	fs.Float64Var(k0, "k0", *k0, "desired tracing rate K0: words traced per word allocated")
	f := &Flags{fs: fs, deprecated: map[string]string{}}
	f.synonym("tracing-rate", "k0") // the paper's name for the same knob
	return f
}

// synonym registers another accepted spelling of a canonical flag, sharing
// its value, without a deprecation hint.
func (f *Flags) synonym(name, canonical string) {
	f.fs.Var(f.lookup(canonical).Value, name, "synonym for -"+canonical)
}

// Alias registers old as a deprecated alias of canonical: it still parses
// (into the canonical flag's value), and Hints reports a migration line
// when the old spelling was actually used on the command line.
func (f *Flags) Alias(old, canonical string) {
	f.fs.Var(f.lookup(canonical).Value, old, "deprecated: use -"+canonical)
	f.deprecated[old] = canonical
}

func (f *Flags) lookup(canonical string) *flag.Flag {
	c := f.fs.Lookup(canonical)
	if c == nil {
		panic(fmt.Sprintf("pacing: no canonical flag -%s registered", canonical))
	}
	return c
}

// Hints returns one migration line per deprecated alias that was set on the
// command line. Call it after fs.Parse.
func (f *Flags) Hints() []string {
	var out []string
	f.fs.Visit(func(fl *flag.Flag) {
		if canonical, ok := f.deprecated[fl.Name]; ok {
			out = append(out, fmt.Sprintf("flag -%s is deprecated; use -%s", fl.Name, canonical))
		}
	})
	return out
}

// PrintHints writes the migration hints to w, prefixed with the program
// name the way flag errors are.
func (f *Flags) PrintHints(w io.Writer, prog string) {
	for _, h := range f.Hints() {
		fmt.Fprintf(w, "%s: %s\n", prog, h)
	}
}

package pacing

import (
	"flag"
	"io"
	"strings"
	"testing"
)

func newTestFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestBindCanonicalNames(t *testing.T) {
	cfg := Default()
	fs := newTestFlagSet()
	f := Bind(fs, &cfg)
	err := fs.Parse([]string{
		"-k0", "6", "-kmax", "20", "-tracing-c", "2",
		"-smooth-alpha", "0.5", "-dirty-fraction", "0.1",
		"-kickoff-headroom", "1024", "-best-window", "2048",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.K0 != 6 || cfg.KMax != 20 || cfg.C != 2 || cfg.SmoothAlpha != 0.5 ||
		cfg.InitialDirtyFraction != 0.1 || cfg.Headroom != 1024 || cfg.BestWindow != 2048 {
		t.Errorf("flags did not parse into config: %+v", cfg)
	}
	if hints := f.Hints(); len(hints) != 0 {
		t.Errorf("canonical names produced migration hints: %v", hints)
	}
}

func TestBindDefaultsFromConfig(t *testing.T) {
	cfg := Default()
	cfg.K0 = 12 // caller defaults must become flag defaults
	fs := newTestFlagSet()
	Bind(fs, &cfg)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if cfg.K0 != 12 {
		t.Errorf("unparsed flag overwrote the caller's default: K0=%v", cfg.K0)
	}
}

func TestTracingRateSynonym(t *testing.T) {
	cfg := Default()
	fs := newTestFlagSet()
	f := Bind(fs, &cfg)
	if err := fs.Parse([]string{"-tracing-rate", "5"}); err != nil {
		t.Fatal(err)
	}
	if cfg.K0 != 5 {
		t.Errorf("-tracing-rate did not set K0: %v", cfg.K0)
	}
	if hints := f.Hints(); len(hints) != 0 {
		t.Errorf("synonym produced migration hints: %v", hints)
	}
}

func TestDeprecatedAlias(t *testing.T) {
	cfg := Default()
	fs := newTestFlagSet()
	f := Bind(fs, &cfg)
	f.Alias("rate", "k0")
	if err := fs.Parse([]string{"-rate", "4"}); err != nil {
		t.Fatal(err)
	}
	if cfg.K0 != 4 {
		t.Errorf("deprecated alias did not set K0: %v", cfg.K0)
	}
	hints := f.Hints()
	if len(hints) != 1 || !strings.Contains(hints[0], "-rate") || !strings.Contains(hints[0], "-k0") {
		t.Errorf("want one -rate -> -k0 migration hint, got %v", hints)
	}
	var sb strings.Builder
	f.PrintHints(&sb, "gcsim")
	if got := sb.String(); !strings.HasPrefix(got, "gcsim: ") {
		t.Errorf("PrintHints output %q lacks the program prefix", got)
	}
}

func TestAliasNotUsedNoHint(t *testing.T) {
	cfg := Default()
	fs := newTestFlagSet()
	f := Bind(fs, &cfg)
	f.Alias("rate", "k0")
	if err := fs.Parse([]string{"-k0", "9"}); err != nil {
		t.Fatal(err)
	}
	if hints := f.Hints(); len(hints) != 0 {
		t.Errorf("unused alias produced hints: %v", hints)
	}
}

func TestBindRateOnly(t *testing.T) {
	k0 := 8.0
	fs := newTestFlagSet()
	BindRate(fs, &k0)
	if err := fs.Parse([]string{"-tracing-rate", "3"}); err != nil {
		t.Fatal(err)
	}
	if k0 != 3 {
		t.Errorf("BindRate synonym did not set k0: %v", k0)
	}
	if fs.Lookup("kmax") != nil {
		t.Error("BindRate registered the full vocabulary")
	}
}

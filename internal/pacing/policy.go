package pacing

// Policy is the pacing surface a backend drives: the decision points the
// Section 3 formulas answer, abstracted so more than one policy can answer
// them. FormulaPolicy is the paper's heap-geometry policy; SLOPolicy layers
// a latency-feedback controller on top of it. Backends hold a Policy and
// never care which one they were given.
//
// Like the concrete policies, a Policy is single-threaded: concurrent
// backends must serialize calls behind their own gate (internal/live's
// livePacer). The optional capability interfaces below are the exception —
// they are explicitly safe for concurrent use, because their callers (a
// server feeding latency windows, a background tracer reading its throttle)
// live outside the gate.
type Policy interface {
	// Kickoff reports whether the concurrent phase should start now.
	Kickoff() bool
	// KickoffThreshold is the free-memory level below which Kickoff fires.
	KickoffThreshold() float64
	// StartCycle resets per-cycle progress state when a cycle begins.
	StartCycle()
	// IncrementBudget is the allocation-tax entry point: the tracing budget
	// owed for one allocation increment.
	IncrementBudget(allocWords int64) Budget
	// PressureBudget is the backpressure variant: the tracing budget a
	// mutator blocked on an exhausted heap owes per wait round.
	PressureBudget(allocWords int64) Budget
	// EndIncrement reports the tracing work an increment actually performed.
	EndIncrement(doneWords int64)
	// NoteTraced accounts tracing work from any participant.
	NoteTraced(words int64)
	// NoteAllocation feeds the allocation side of the background-rate window.
	NoteAllocation(words int64)
	// NoteBackgroundWork accounts background-thread tracing.
	NoteBackgroundWork(words int64)
	// EndCycle records the cycle's actuals into the predictors.
	EndCycle(tracedWords, dirtyCardWords int64)
	// Rate is the current tracing rate (words traced per word allocated).
	Rate() float64
	// RateDetail is Rate plus the telemetry terms (corrective, Best).
	RateDetail() (k, corrective, best float64)
	// TracedWords is T, the tracing volume accumulated this cycle.
	TracedWords() int64
}

// LatencyObserver is implemented by policies that consume a live latency
// signal (SLOPolicy). ObserveLatency is safe for concurrent use — it is
// called from whatever goroutine watches the workload (a load generator's
// window feeder), not from behind the backend's policy gate.
type LatencyObserver interface {
	// ObserveLatency feeds one completed latency-window sample: the worst
	// request latency, in nanoseconds, seen in the window.
	ObserveLatency(ns int64)
}

// BgTuner is implemented by policies that modulate the background tracers'
// duty cycle. BgThrottleFactor is safe for concurrent use — background
// tracers read it between packets without taking the policy gate. The
// backend multiplies its base throttle by the factor: < 1 runs the
// background tracers hotter (spending CPU to relieve the mutator tax),
// > 1 parks them longer (saving CPU when the latency budget allows).
type BgTuner interface {
	BgThrottleFactor() float64
}

// Name reports a short policy identifier for reports and benchmark records:
// the policy's own name when it implements namer, "formula" for the plain
// FormulaPolicy, "none" for nil.
func Name(p Policy) string {
	if p == nil {
		return "none"
	}
	if n, ok := p.(interface{ PolicyName() string }); ok {
		return n.PolicyName()
	}
	return "formula"
}

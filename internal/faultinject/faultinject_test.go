package faultinject

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nope=1",                // unknown site
		"pool.cas",              // no rate
		"pool.cas=",             // empty rate
		"pool.cas=0",            // every-0
		"pool.cas=-3",           // negative
		"pool.cas=2/1",          // probability > 1
		"pool.cas=1/0",          // zero denominator
		"pool.cas=1:xyz",        // bad delay
		"pool.cas=1@0",          // bad limit
		"pool.cas=1,pool.cas=2", // duplicate
		"jitter=1/4,jitter=1/8", // duplicate jitter
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	pl, err := Parse("  ", 1)
	if err != nil || pl != nil {
		t.Fatalf("empty spec: got (%v, %v), want (nil, nil)", pl, err)
	}
	// The whole nil chain must no-op.
	pt := pl.Point(PoolCAS)
	if pt != nil {
		t.Fatal("nil plan handed out a point")
	}
	if pt.Fire() || pt.Hits() != 0 || pt.Fires() != 0 || pt.Name() != "" {
		t.Fatal("nil point not inert")
	}
	pt.Stall()
	pt.Sleep()
	if pl.Snapshot() != nil || pl.String() != "" || pl.Seed() != 0 {
		t.Fatal("nil plan not inert")
	}
}

func TestEveryNIsExact(t *testing.T) {
	pl := MustParse("pool.cas=3", 42)
	pt := pl.Point(PoolCAS)
	fires := 0
	for i := 0; i < 300; i++ {
		if pt.Fire() {
			fires++
		}
	}
	if fires != 100 {
		t.Fatalf("every-3 fired %d/300 times, want exactly 100", fires)
	}
	if pt.Hits() != 300 || pt.Fires() != 100 {
		t.Fatalf("counters hits=%d fires=%d, want 300/100", pt.Hits(), pt.Fires())
	}
}

func TestOnAndLimit(t *testing.T) {
	pt := MustParse("pool.exhaust=on@5", 1).Point(PoolExhaust)
	fires := 0
	for i := 0; i < 50; i++ {
		if pt.Fire() {
			fires++
		}
	}
	if fires != 5 {
		t.Fatalf("on@5 fired %d times, want 5", fires)
	}
	if pt.Fires() != 5 {
		t.Fatalf("Fires() = %d, want clamped to limit 5", pt.Fires())
	}
}

// Probability triggers are a pure function of (seed, hit index): the same
// plan replayed gives the identical fire pattern, and a different seed gives
// a different one.
func TestProbabilityDeterminism(t *testing.T) {
	pattern := func(seed int64) string {
		pt := MustParse("live.tracerstall=1/4", seed).Point(LiveTracerStall)
		var b strings.Builder
		for i := 0; i < 400; i++ {
			if pt.Fire() {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatal("same seed produced different fire patterns")
	}
	if c := pattern(8); c == a {
		t.Fatal("different seeds produced identical fire patterns")
	}
	// Rate sanity: 1/4 over 400 hits should land broadly near 100.
	n := strings.Count(a, "x")
	if n < 60 || n > 140 {
		t.Fatalf("1/4 trigger fired %d/400 times, far from expectation", n)
	}
}

// Sites are decorrelated: the same seed drives independent streams per site.
func TestSitesDecorrelated(t *testing.T) {
	pl := MustParse("pool.cas=1/2,pool.exhaust=1/2", 9)
	a, b := pl.Point(PoolCAS), pl.Point(PoolExhaust)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Fire() == b.Fire() {
			same++
		}
	}
	if same == 256 {
		t.Fatal("two 1/2 sites fired in lockstep; per-site seeds not mixed")
	}
}

func TestJitterOnlyPoints(t *testing.T) {
	pl := MustParse("jitter=1/2", 3)
	// Every known site gets a jitter-carrying point; none of them ever fires.
	for _, line := range Sites() {
		name := strings.Fields(line)[0]
		pt := pl.Point(name)
		if pt == nil {
			t.Fatalf("site %s has no jitter point", name)
		}
		for i := 0; i < 64; i++ {
			if pt.Fire() {
				t.Fatalf("jitter-only point %s fired", name)
			}
		}
		if pt.Jitters() == 0 {
			t.Errorf("site %s drew no jitter in 64 hits at rate 1/2", name)
		}
	}
	// Jitter-only points are not "configured": none is Explicit.
	for _, st := range pl.Snapshot() {
		if st.Explicit {
			t.Errorf("jitter-only point %s marked explicit", st.Name)
		}
	}
}

func TestSnapshot(t *testing.T) {
	pl := MustParse("pool.cas=2,live.allocfail=1/8:1ms", 5)
	pl.Point(PoolCAS).Fire()
	pl.Point(PoolCAS).Fire()
	snap := pl.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d points, want 2 explicit: %+v", len(snap), snap)
	}
	if snap[0].Name != LiveAllocFail || snap[1].Name != PoolCAS {
		t.Fatalf("snapshot not sorted by name: %+v", snap)
	}
	if snap[1].Hits != 2 || snap[1].Fires != 1 {
		t.Fatalf("pool.cas counters %+v, want hits=2 fires=1", snap[1])
	}
	if !snap[0].Explicit || snap[0].Hits != 0 {
		t.Fatalf("unreached explicit point %+v, want explicit with 0 hits", snap[0])
	}
	if d := pl.Point(LiveAllocFail).Delay(); d != time.Millisecond {
		t.Fatalf("delay = %v, want 1ms", d)
	}
}

// Concurrent hits never lose counts and never fire beyond the limit.
func TestConcurrentCounts(t *testing.T) {
	pt := MustParse("pool.putstall=2@100", 11).Point(PoolPutStall)
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	var fires atomic64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if pt.Fire() {
					fires.add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := pt.Hits(); got != goroutines*per {
		t.Fatalf("hits = %d, want %d", got, goroutines*per)
	}
	if got := fires.load(); got != 100 {
		t.Fatalf("fired %d times, want exactly the limit 100", got)
	}
}

// atomic64 avoids importing sync/atomic's Int64 just for the test.
type atomic64 struct {
	mu sync.Mutex
	v  int64
}

func (a *atomic64) add(d int64) { a.mu.Lock(); a.v += d; a.mu.Unlock() }
func (a *atomic64) load() int64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }

// Package faultinject is a seeded, deterministic fault-point registry for
// forcing the collector's rarely-taken paths on demand: packet overflow
// degrading to mark-and-dirty-card (Section 4.3), the Deferred-pool weak
// ordering protocol (Section 5.2), the get-before-return termination race and
// the three-step card-cleaning handshake (Section 5.3). A healthy run only
// hits these when the scheduler cooperates; a chaos plan makes them fire at a
// chosen, reproducible rate.
//
// The design follows the telemetry layer's nil-discipline: a nil *Plan hands
// out nil *Points, and every Point method no-ops on a nil receiver, so an
// instrumented hot path costs one pointer test and nothing else when
// injection is disabled. Decisions are functions of (seed, site name, hit
// index) only — no time, no global RNG — so a fault schedule is reproducible
// from the spec string and seed alone (hit indices are assigned by atomic
// increment, so under real concurrency the per-hit decisions are fixed even
// though which goroutine draws which index may vary).
//
// Spec grammar (comma-separated entries):
//
//	site=rate[:delay][@limit]
//
//	rate  := "on"           fire at every hit
//	       | N              fire at every Nth hit (deterministic in count)
//	       | A/B            fire a given hit with probability A/B (seeded hash)
//	delay := Go duration    how long Stall-style sites block when they fire
//	                        (default: a bare runtime.Gosched)
//	limit := positive int   stop firing after this many fires
//
// The pseudo-site "jitter" is the schedule perturbator: its rate and delay
// apply at *every* registered hook site's every hit, independently of the
// site's own trigger, so a plan of just "jitter=1/16" shakes goroutine
// interleavings at each hook without changing any outcome — useful for
// widening the state space -race explores.
package faultinject

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// The registered fault sites. Each constant names one hook threaded through
// workpack, cardtable or live; Parse rejects names outside this set.
const (
	// PoolCAS amplifies contention on the sub-pool head CAS loops: a firing
	// hit is treated as a lost CAS and retried (workpack.Pool push/pop).
	PoolCAS = "pool.cas"
	// PoolExhaust forces GetInput/GetOutput/GetEmpty to report an exhausted
	// pool, driving the overflow and deferred-overflow degradations.
	PoolExhaust = "pool.exhaust"
	// PoolGetStall stalls inside the pool Get paths.
	PoolGetStall = "pool.getstall"
	// PoolPutStall stalls inside Pool.Put/PutDeferred.
	PoolPutStall = "pool.putstall"
	// PoolDeferStall stalls between packets while DrainDeferred recirculates
	// the Deferred sub-pool.
	PoolDeferStall = "pool.deferstall"
	// PoolLocalSpill forces a worker's local packet cache to spill to the
	// global pool even when the cache has room — a local-spill storm that
	// degrades the local tier back to global-CAS traffic.
	PoolLocalSpill = "pool.localspill"
	// PoolStealMiss forces the sibling-cache steal scan to report a miss, so
	// callers take the pool-exhausted degradation even while a sibling hoards
	// ready packets.
	PoolStealMiss = "pool.stealmiss"
	// PoolRefillStall stalls a worker's batch refill from the global Empty
	// sub-pool, widening the window where the local tier runs dry.
	PoolRefillStall = "pool.refillstall"
	// PoolHoard makes a tracer retain almost-full packets instead of
	// returning them: a firing hit on a non-empty Put withholds the packet
	// in a private hoard that neither the sub-pools nor the steal windows
	// can see. The hoarder eventually traces its hoard itself, so no work is
	// lost — but siblings idle, the work distribution skews toward the
	// hoarder and termination detection is delayed, which is exactly what
	// the per-tracer ledgers and gcstats -balance must make visible.
	PoolHoard = "pool.hoard"
	// CardCleanStall stalls between word registrations inside the concurrent
	// register-and-clear pass, widening the dirty-during-clean race window.
	CardCleanStall = "card.cleanstall"
	// LiveTracerStall stalls a tracer between popping a grey object and
	// scanning it.
	LiveTracerStall = "live.tracerstall"
	// LiveFenceDelay delays a mutator's fence acknowledgement (the Section
	// 5.3 step-2 handshake) after it has published its allocation batch.
	LiveFenceDelay = "live.fencedelay"
	// LiveSafepointStall delays a mutator between noticing a stop-the-world
	// request and parking, stretching STW latency.
	LiveSafepointStall = "live.safepointstall"
	// LiveBgStarve starves a background tracer: a firing hit makes it sleep
	// its delay instead of tracing.
	LiveBgStarve = "live.bgstarve"
	// LiveAllocFail injects allocation failure: the mutator's free-list
	// refill reports heap exhaustion, exercising the degrade-and-trigger-
	// collection path.
	LiveAllocFail = "live.allocfail"
	// LiveWedge wedges the cycle: a firing hit makes a tracer refuse to
	// trace. With rate "on" tracing never progresses and the engine's
	// termination watchdog must fire. Exists to prove the watchdog works.
	LiveWedge = "live.wedge"
	// LiveOverload amplifies the allocation rate: a firing allocation-cache
	// refill additionally burns a whole extra batch of free objects as
	// instant garbage, so offered allocation outruns what tracing frees and
	// the degradation ladder (backpressure, emergency collection, admission
	// control) must carry the run. Rate "on" is ~2x sustained overload.
	LiveOverload = "live.overload"
	// LiveEmergencyStall stalls the driver inside an emergency STW
	// collection, right after the world has parked — stretching the one
	// pause the ladder is supposed to keep rare and bounded.
	LiveEmergencyStall = "live.emergencystall"
	// Jitter is the pseudo-site for the schedule perturbator (see package
	// doc). It is not a hook of its own.
	Jitter = "jitter"
)

// siteDocs maps every real site to a one-line description (Sites and the
// gcstress -chaos list output use it).
var siteDocs = map[string]string{
	PoolCAS:            "amplify sub-pool head CAS contention (forced retries)",
	PoolExhaust:        "force pool exhaustion: Get* returns nil, degradations fire",
	PoolGetStall:       "stall inside pool Get paths",
	PoolPutStall:       "stall inside pool Put paths",
	PoolDeferStall:     "stall between packets in DrainDeferred",
	PoolLocalSpill:     "force local packet caches to spill to the global pool",
	PoolStealMiss:      "force the sibling-cache steal scan to miss",
	PoolRefillStall:    "stall a local cache's batch refill from the global pool",
	PoolHoard:          "make a tracer withhold non-empty packets (skews load balance)",
	CardCleanStall:     "stall inside register-and-clear (dirty-during-clean races)",
	LiveTracerStall:    "stall a tracer between pop and scan",
	LiveFenceDelay:     "delay a mutator's fence acknowledgement",
	LiveSafepointStall: "delay a mutator reaching its safepoint",
	LiveBgStarve:       "starve a background tracer for its delay",
	LiveAllocFail:      "inject allocation failure (free-list refill fails)",
	LiveWedge:          "wedge tracing so the termination watchdog must fire",
	LiveOverload:       "amplify the allocation rate: a firing refill burns an extra batch",
	LiveEmergencyStall: "stall inside an emergency STW collection",
}

// Sites returns every real fault site name, sorted, with its description —
// the source of truth for -chaos list output and the docs.
func Sites() []string {
	names := make([]string, 0, len(siteDocs))
	for n := range siteDocs {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		names[i] = fmt.Sprintf("%-20s %s", n, siteDocs[n])
	}
	return names
}

// Point is one named fault site's trigger state. All trigger parameters are
// immutable after Parse; only the counters move, so a Point is safe for
// concurrent use from any number of goroutines. A nil Point is the disabled
// state: every method no-ops.
type Point struct {
	name     string
	explicit bool // named in the spec (vs. jitter-only)

	every int64  // fire when hit%every == 0 (0: use num/den)
	num   uint64 // fire with probability num/den (den 0: never)
	den   uint64
	limit int64         // stop after this many fires (0: unlimited)
	delay time.Duration // Stall/Sleep block length (0: Gosched)
	seed  uint64

	jNum   uint64 // jitter probability at every hit
	jDen   uint64
	jDelay time.Duration

	hits    atomic.Int64
	fires   atomic.Int64
	jitters atomic.Int64
}

// splitmix64 is the per-hit hash: cheap, stateless, well mixed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Fire records one hit of the site and reports whether the fault takes
// effect at this hit. Schedule jitter, if configured, is applied first —
// even when the site's own trigger does not fire.
func (p *Point) Fire() bool {
	if p == nil {
		return false
	}
	k := uint64(p.hits.Add(1))
	if p.jDen != 0 && splitmix64(p.seed^0xA5A5A5A5^k)%p.jDen < p.jNum {
		p.jitters.Add(1)
		p.blockFor(p.jDelay)
	}
	fire := false
	switch {
	case p.every > 0:
		fire = int64(k)%p.every == 0
	case p.den > 0:
		fire = splitmix64(p.seed+k)%p.den < p.num
	}
	if !fire {
		return false
	}
	if p.limit > 0 && p.fires.Add(1) > p.limit {
		return false
	}
	if p.limit == 0 {
		p.fires.Add(1)
	}
	return true
}

// Stall fires the point and, when it fires, blocks for the configured delay
// (a bare Gosched when no delay was given). This is the whole contract for
// stall-style sites.
func (p *Point) Stall() {
	if p.Fire() {
		p.blockFor(p.delay)
	}
}

// Sleep blocks for the point's configured delay without consulting the
// trigger — for sites that call Fire themselves and then need the block.
func (p *Point) Sleep() {
	if p == nil {
		return
	}
	p.blockFor(p.delay)
}

func (p *Point) blockFor(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	} else {
		runtime.Gosched()
	}
}

// Delay returns the point's configured delay (0 on nil or when unset).
func (p *Point) Delay() time.Duration {
	if p == nil {
		return 0
	}
	return p.delay
}

// Name returns the site name ("" on nil).
func (p *Point) Name() string {
	if p == nil {
		return ""
	}
	return p.name
}

// Hits returns how many times the site was reached.
func (p *Point) Hits() int64 {
	if p == nil {
		return 0
	}
	return p.hits.Load()
}

// Fires returns how many hits took the fault (clamped to the @limit).
func (p *Point) Fires() int64 {
	if p == nil {
		return 0
	}
	n := p.fires.Load()
	if p.limit > 0 && n > p.limit {
		return p.limit
	}
	return n
}

// Jitters returns how many hits drew a schedule perturbation.
func (p *Point) Jitters() int64 {
	if p == nil {
		return 0
	}
	return p.jitters.Load()
}

// PointStat is one site's counters, snapshotted.
type PointStat struct {
	Name     string
	Hits     int64
	Fires    int64
	Jitters  int64
	Explicit bool // named in the spec (vs. created only to carry jitter)
}

// Plan is one run's parsed fault configuration. A nil Plan is the disabled
// state. Plans are immutable after Parse and safe to share.
type Plan struct {
	spec   string
	seed   int64
	points map[string]*Point
}

// Parse builds a Plan from a spec string (see the package doc for the
// grammar) and a seed. An empty spec returns a nil Plan: injection disabled.
func Parse(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	type trigger struct {
		every    int64
		num, den uint64
		limit    int64
		delay    time.Duration
	}
	parseTrigger := func(site, s string) (trigger, error) {
		var tr trigger
		if i := strings.IndexByte(s, '@'); i >= 0 {
			n, err := strconv.ParseInt(s[i+1:], 10, 64)
			if err != nil || n < 1 {
				return tr, fmt.Errorf("%s: bad limit %q", site, s[i+1:])
			}
			tr.limit, s = n, s[:i]
		}
		if i := strings.IndexByte(s, ':'); i >= 0 {
			d, err := time.ParseDuration(s[i+1:])
			if err != nil || d < 0 {
				return tr, fmt.Errorf("%s: bad delay %q", site, s[i+1:])
			}
			tr.delay, s = d, s[:i]
		}
		switch {
		case s == "on":
			tr.every = 1
		case strings.Contains(s, "/"):
			a, b, _ := strings.Cut(s, "/")
			num, err1 := strconv.ParseUint(a, 10, 32)
			den, err2 := strconv.ParseUint(b, 10, 32)
			if err1 != nil || err2 != nil || den == 0 || num > den {
				return tr, fmt.Errorf("%s: bad probability %q (want A/B with A<=B)", site, s)
			}
			tr.num, tr.den = num, den
		default:
			n, err := strconv.ParseInt(s, 10, 64)
			if err != nil || n < 1 {
				return tr, fmt.Errorf("%s: bad rate %q (want \"on\", N, or A/B)", site, s)
			}
			tr.every = n
		}
		return tr, nil
	}

	var jit trigger
	explicit := map[string]trigger{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		site = strings.TrimSpace(site)
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q is not site=rate", entry)
		}
		if site != Jitter && siteDocs[site] == "" {
			return nil, fmt.Errorf("faultinject: unknown site %q (known: %s)",
				site, strings.Join(knownNames(), ", "))
		}
		if _, dup := explicit[site]; dup || (site == Jitter && jit.den+uint64(jit.every) != 0) {
			return nil, fmt.Errorf("faultinject: site %q configured twice", site)
		}
		tr, err := parseTrigger(site, strings.TrimSpace(rest))
		if err != nil {
			return nil, fmt.Errorf("faultinject: %v", err)
		}
		if site == Jitter {
			// "jitter=on" and "jitter=N" mean probability 1 and 1/N: the
			// perturbator is per-hit probabilistic by nature.
			if tr.every > 0 {
				tr.num, tr.den = 1, uint64(tr.every)
				tr.every = 0
			}
			jit = tr
			continue
		}
		explicit[site] = tr
	}

	pl := &Plan{spec: spec, seed: seed, points: make(map[string]*Point)}
	for site := range siteDocs {
		tr, isExplicit := explicit[site]
		if !isExplicit && jit.den == 0 {
			continue // neither faulted nor jittered: stay nil → zero cost
		}
		pl.points[site] = &Point{
			name:     site,
			explicit: isExplicit,
			every:    tr.every,
			num:      tr.num,
			den:      tr.den,
			limit:    tr.limit,
			delay:    tr.delay,
			seed:     splitmix64(uint64(seed) ^ hashName(site)),
			jNum:     jit.num,
			jDen:     jit.den,
			jDelay:   jit.delay,
		}
	}
	return pl, nil
}

// MustParse is Parse for tests and trusted specs; it panics on error.
func MustParse(spec string, seed int64) *Plan {
	pl, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return pl
}

func knownNames() []string {
	names := make([]string, 0, len(siteDocs)+1)
	for n := range siteDocs {
		names = append(names, n)
	}
	names = append(names, Jitter)
	sort.Strings(names)
	return names
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603) // FNV-1a
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// Point returns the named site's point, or nil when the plan is nil or the
// site is neither faulted nor jittered. The result is what call sites store
// and test against nil.
func (pl *Plan) Point(name string) *Point {
	if pl == nil {
		return nil
	}
	return pl.points[name]
}

// Seed returns the plan's seed (0 on nil).
func (pl *Plan) Seed() int64 {
	if pl == nil {
		return 0
	}
	return pl.seed
}

// String returns the spec the plan was parsed from ("" on nil).
func (pl *Plan) String() string {
	if pl == nil {
		return ""
	}
	return pl.spec
}

// Snapshot returns the counters of every point that was explicitly
// configured or actually reached, sorted by name. Nil-safe.
func (pl *Plan) Snapshot() []PointStat {
	if pl == nil {
		return nil
	}
	var out []PointStat
	for _, p := range pl.points {
		if !p.explicit && p.hits.Load() == 0 {
			continue
		}
		out = append(out, PointStat{
			Name:     p.name,
			Hits:     p.Hits(),
			Fires:    p.Fires(),
			Jitters:  p.Jitters(),
			Explicit: p.explicit,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Package telemetry is the observability substrate for the simulator: a
// low-overhead metrics registry (counters, gauges sampled against virtual
// time, fixed-bucket histograms) plus two sinks — a JSONL metrics dump and a
// Chrome trace_event timeline loadable in Perfetto / chrome://tracing.
//
// Everything is nil-safe: a nil *Registry hands out nil instruments, and
// every instrument method no-ops on a nil receiver, so instrumented hot
// paths cost a single pointer test and zero allocations when telemetry is
// disabled. Each simulated VM owns at most one Registry/Timeline pair and
// runs on a single goroutine, so instruments are deliberately unsynchronized
// (the runner's host-parallelism is across VMs, never within one).
package telemetry

import (
	"sort"

	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// maxGaugeSamples caps per-gauge retention so paper-scale runs with
// per-increment sampling cannot grow without bound. The cap is count-based
// and therefore deterministic; Gauge.Dropped reports the overflow.
const maxGaugeSamples = 500_000

// Registry holds the named instruments of one run. The zero value is not
// used; construct with NewRegistry. A nil Registry is the disabled state.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls may pass nil bounds). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, h: stats.NewHistogram(bounds...)}
		r.hists[name] = h
	}
	return h
}

// Counters returns the registry's counters sorted by name (nil-safe).
func (r *Registry) Counters() []*Counter {
	if r == nil {
		return nil
	}
	out := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Gauges returns the registry's gauges sorted by name (nil-safe).
func (r *Registry) Gauges() []*Gauge {
	if r == nil {
		return nil
	}
	out := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Histograms returns the registry's histograms sorted by name (nil-safe).
func (r *Registry) Histograms() []*Histogram {
	if r == nil {
		return nil
	}
	out := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Counter is a monotonically adjusted int64. All methods no-op on nil.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Set overwrites the counter (used for end-of-run absolute values such as
// pool high-water marks).
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v = n
}

// Value returns the current value (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Sample is one gauge observation at a virtual-time instant.
type Sample struct {
	At vtime.Time
	V  float64
}

// Gauge is a time series of float64 samples keyed by virtual time. All
// methods no-op on nil.
type Gauge struct {
	name    string
	samples []Sample
	dropped int64
}

// Sample appends an observation. Past maxGaugeSamples the observation is
// counted but not retained.
func (g *Gauge) Sample(at vtime.Time, v float64) {
	if g == nil {
		return
	}
	if len(g.samples) >= maxGaugeSamples {
		g.dropped++
		return
	}
	g.samples = append(g.samples, Sample{At: at, V: v})
}

// Samples returns the retained observations (nil on nil).
func (g *Gauge) Samples() []Sample {
	if g == nil {
		return nil
	}
	return g.samples
}

// Dropped returns how many observations overflowed the retention cap.
func (g *Gauge) Dropped() int64 {
	if g == nil {
		return 0
	}
	return g.dropped
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Histogram wraps stats.Histogram with a name and nil-safety.
type Histogram struct {
	name string
	h    *stats.Histogram
}

// Observe records a sample (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.h.Observe(v)
}

// Hist exposes the underlying stats.Histogram (nil on nil receiver).
func (h *Histogram) Hist() *stats.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

package telemetry

import (
	"mcgc/internal/vtime"
)

// maxTimelineEvents caps per-run event retention; Dropped reports overflow.
// The cap is count-based, so it is deterministic for a given run.
const maxTimelineEvents = 250_000

// Track IDs below GlobalTrackBase belong to simulated machine threads (the
// machine allocates small consecutive IDs). GC-global tracks — pauses,
// phases, cycles, minor collections, card passes — live above the base so
// they can never collide with a thread even in thousand-thread configs.
const GlobalTrackBase int64 = 1 << 20

// Arg is one numeric key/value attached to a trace event.
type Arg struct {
	Key string
	Val float64
}

// Phases of the Chrome trace_event format used by the exporter.
const (
	phSpan    = 'X' // complete event: ts + dur
	phInstant = 'i'
	phCounter = 'C'
)

type traceEvent struct {
	ph   byte
	tid  int64
	name string
	ts   vtime.Time
	dur  vtime.Duration
	args []Arg
}

// Timeline accumulates the span/instant/counter events of one run for the
// Chrome-trace export. A nil Timeline is the disabled state: every method
// no-ops. Like Registry, a Timeline belongs to one single-goroutine VM and
// is unsynchronized.
type Timeline struct {
	events      []traceEvent
	threadNames map[int64]string
	threadOrder []int64
	dropped     int64
}

// NewTimeline creates an enabled timeline.
func NewTimeline() *Timeline {
	return &Timeline{threadNames: make(map[int64]string)}
}

// SetThreadName names a track. First write wins; registration order is
// preserved for the metadata section of the export.
func (t *Timeline) SetThreadName(tid int64, name string) {
	if t == nil {
		return
	}
	if _, ok := t.threadNames[tid]; ok {
		return
	}
	t.threadNames[tid] = name
	t.threadOrder = append(t.threadOrder, tid)
}

func (t *Timeline) push(ev traceEvent) {
	if len(t.events) >= maxTimelineEvents {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Span records a complete event on a track. Zero-length spans are widened to
// 1ns so they stay visible (and valid) in viewers.
func (t *Timeline) Span(tid int64, name string, start, end vtime.Time, args ...Arg) {
	if t == nil {
		return
	}
	d := end.Sub(start)
	if d <= 0 {
		d = 1
	}
	t.push(traceEvent{ph: phSpan, tid: tid, name: name, ts: start, dur: d, args: args})
}

// Instant records a point event on a track.
func (t *Timeline) Instant(tid int64, name string, at vtime.Time, args ...Arg) {
	if t == nil {
		return
	}
	t.push(traceEvent{ph: phInstant, tid: tid, name: name, ts: at, args: args})
}

// Counter records a counter-track sample; each Arg becomes a stacked series.
func (t *Timeline) Counter(tid int64, name string, at vtime.Time, series ...Arg) {
	if t == nil {
		return
	}
	t.push(traceEvent{ph: phCounter, tid: tid, name: name, ts: at, args: series})
}

// Dropped returns how many events overflowed the retention cap.
func (t *Timeline) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Len returns the retained event count.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

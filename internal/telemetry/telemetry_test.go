package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"mcgc/internal/runmeta"
	"mcgc/internal/vtime"
)

// The disabled path — nil registry, nil instruments, nil timeline — must add
// zero allocations to the hot loops it instruments.
func TestNoopPathAllocatesNothing(t *testing.T) {
	var reg *Registry
	var tl *Timeline
	ctr := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", 1, 2)
	if ctr != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ctr.Add(1)
		ctr.Set(7)
		g.Sample(5, 1.5)
		h.Observe(3)
		tl.Span(1, "s", 0, 10)
		tl.Instant(1, "i", 5)
		tl.Counter(1, "c", 5)
	})
	if allocs != 0 {
		t.Fatalf("no-op telemetry path allocated %v per run, want 0", allocs)
	}
	if ctr.Value() != 0 || len(g.Samples()) != 0 || tl.Len() != 0 {
		t.Fatal("nil instruments retained data")
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	c.Add(2)
	c.Add(3)
	if reg.Counter("a.count") != c {
		t.Fatal("counter not memoized by name")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	c.Set(9)
	if c.Value() != 9 {
		t.Fatalf("after Set: %d", c.Value())
	}

	g := reg.Gauge("b.gauge")
	g.Sample(10, 1.0)
	g.Sample(20, 2.0)
	if s := g.Samples(); len(s) != 2 || s[1].At != 20 || s[1].V != 2.0 {
		t.Fatalf("samples = %+v", g.Samples())
	}

	h := reg.Histogram("c.hist", 1, 10)
	h.Observe(5)
	if h.Hist().N() != 1 {
		t.Fatal("histogram did not record")
	}

	names := []string{}
	for _, ctr := range reg.Counters() {
		names = append(names, ctr.Name())
	}
	if len(names) != 1 || names[0] != "a.count" {
		t.Fatalf("counters = %v", names)
	}
}

func TestGaugeRetentionCap(t *testing.T) {
	g := NewRegistry().Gauge("big")
	for i := 0; i < maxGaugeSamples+10; i++ {
		g.Sample(vtime.Time(i), float64(i))
	}
	if len(g.Samples()) != maxGaugeSamples {
		t.Fatalf("retained %d, want cap %d", len(g.Samples()), maxGaugeSamples)
	}
	if g.Dropped() != 10 {
		t.Fatalf("dropped = %d, want 10", g.Dropped())
	}
}

func TestTimelineCapAndZeroWidth(t *testing.T) {
	tl := NewTimeline()
	tl.Span(1, "zero", 5, 5)
	if tl.events[0].dur != 1 {
		t.Fatalf("zero-width span dur = %d, want widened to 1", tl.events[0].dur)
	}
	for i := 0; i < maxTimelineEvents+5; i++ {
		tl.Instant(1, "i", vtime.Time(i))
	}
	if tl.Len() != maxTimelineEvents {
		t.Fatalf("retained %d events, want cap %d", tl.Len(), maxTimelineEvents)
	}
	if tl.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tl.Dropped())
	}
}

func buildCollector(order []int) *Collector {
	runs := []runmeta.Run{
		{Exp: "fig1", Name: "fig1/wh=1/cgc", Collector: "cgc", Seed: 1, Workers: 2},
		{Exp: "fig1", Name: "fig1/wh=2/cgc", Collector: "cgc", Seed: 2, Workers: 2},
		{Exp: "javac", Name: "javac/stw", Collector: "stw", Seed: 3, Workers: 1},
	}
	c := NewCollector(true)
	for _, i := range order {
		r := c.StartRun(runs[i])
		reg, tl := r.Registry, r.Timeline
		reg.Counter("gc.cycles").Add(int64(i + 1))
		reg.Gauge("gc.pacing.k").Sample(vtime.Time(100*(i+1)), float64(i)+0.5)
		reg.Histogram("gc.pause_ms", 1, 10, 100).Observe(float64(5 * (i + 1)))
		tl.SetThreadName(1, "mutator-1")
		tl.SetThreadName(GlobalTrackBase, "gc/pauses")
		tl.Span(1, "increment", 10, 20, Arg{Key: "k", Val: 2.5})
		tl.Span(1, "increment", 30, 45)
		tl.Span(GlobalTrackBase, "pause:handle-full", 50, 60)
		tl.Instant(GlobalTrackBase, "card-pass", 55)
		tl.Counter(GlobalTrackBase+1, "K", 10, Arg{Key: "k", Val: 2.5})
	}
	return c
}

// JSONL output must be byte-identical no matter what order runs registered
// in (the runner's completion order varies with -j), and every line must be
// standalone-parseable JSON.
func TestWriteJSONLDeterministicAcrossRegistrationOrder(t *testing.T) {
	suite := runmeta.Suite{Scale: "quick", J: 4, GoMaxProcs: 8, StartedAt: "2026-01-01T00:00:00Z"}
	var a, b bytes.Buffer
	if err := buildCollector([]int{0, 1, 2}).WriteJSONL(&a, suite); err != nil {
		t.Fatal(err)
	}
	if err := buildCollector([]int{2, 0, 1}).WriteJSONL(&b, suite); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL differs with registration order:\n%s\nvs\n%s", a.String(), b.String())
	}
	lines := bytes.Split(bytes.TrimSpace(a.Bytes()), []byte("\n"))
	if len(lines) < 1+3*4 {
		t.Fatalf("expected >= 13 lines, got %d", len(lines))
	}
	var first struct{ Type string }
	for i, ln := range lines {
		var m map[string]interface{}
		if err := json.Unmarshal(ln, &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, ln)
		}
		if i == 0 {
			if err := json.Unmarshal(ln, &first); err != nil || first.Type != "suite" {
				t.Fatalf("first line type %q, want suite", first.Type)
			}
		}
	}
}

func TestWriteTraceValidOrderedAndNamed(t *testing.T) {
	suite := runmeta.Suite{Scale: "quick", J: 1}
	var buf bytes.Buffer
	if err := buildCollector([]int{1, 2, 0}).WriteTrace(&buf, suite); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Pid  int64                  `json:"pid"`
			Tid  int64                  `json:"tid"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spanNames := map[string]bool{}
	threadNames := map[string]bool{}
	lastStart := map[[2]int64]float64{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spanNames[ev.Name] = true
			if ev.Dur <= 0 {
				t.Fatalf("span %q has dur %v", ev.Name, ev.Dur)
			}
			key := [2]int64{ev.Pid, ev.Tid}
			if ev.Ts < lastStart[key] {
				t.Fatalf("span %q out of order on track %v: ts %v after %v", ev.Name, key, ev.Ts, lastStart[key])
			}
			lastStart[key] = ev.Ts
		case "M":
			if ev.Name == "thread_name" {
				threadNames[ev.Args["name"].(string)] = true
			}
		}
	}
	for _, want := range []string{"increment", "pause:handle-full"} {
		if !spanNames[want] {
			t.Fatalf("missing span type %q; have %v", want, spanNames)
		}
	}
	if !threadNames["mutator-1"] || !threadNames["gc/pauses"] {
		t.Fatalf("missing thread names: %v", threadNames)
	}
	// pid assignment follows sorted (exp, name) order, not registration order.
	var procs []string
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs = append(procs, ev.Args["name"].(string))
		}
	}
	want := []string{"fig1/fig1/wh=1/cgc", "fig1/fig1/wh=2/cgc", "javac/javac/stw"}
	if len(procs) != 3 {
		t.Fatalf("process names = %v", procs)
	}
	for i := range want {
		if procs[i] != want[i] {
			t.Fatalf("process order = %v, want %v", procs, want)
		}
	}
}

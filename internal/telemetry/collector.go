package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"mcgc/internal/runmeta"
	"mcgc/internal/vtime"
)

// Run bundles one simulator run's identity with its instruments. The
// Registry is always present; the Timeline only when the collector was
// created with tracing on.
type Run struct {
	Meta     runmeta.Run
	Registry *Registry
	Timeline *Timeline
}

// Collector gathers the telemetry of a whole suite: one Run per simulator
// run plus a host-level registry for wall-clock runner stats. StartRun is
// safe to call from the runner's worker goroutines; each returned Run is
// then owned by its single VM goroutine. Output is sorted by (Exp, Name) at
// write time so it is byte-identical regardless of host parallelism; the
// host registry is inherently nondeterministic and is emitted after all run
// records, tagged "host", so deterministic consumers can stop early.
type Collector struct {
	withTrace bool

	mu   sync.Mutex
	runs []*Run
	host *Registry
}

// NewCollector creates a collector; withTrace controls whether runs get a
// Timeline.
func NewCollector(withTrace bool) *Collector {
	return &Collector{withTrace: withTrace, host: NewRegistry()}
}

// StartRun registers a run and returns its instrument bundle.
func (c *Collector) StartRun(meta runmeta.Run) *Run {
	r := &Run{Meta: meta, Registry: NewRegistry()}
	if c.withTrace {
		r.Timeline = NewTimeline()
	}
	c.mu.Lock()
	c.runs = append(c.runs, r)
	c.mu.Unlock()
	return r
}

// Host returns the suite-level registry for nondeterministic host metrics
// (wall-clock durations, worker utilization).
func (c *Collector) Host() *Registry { return c.host }

// Runs returns the registered runs sorted by (Exp, Name).
func (c *Collector) Runs() []*Run {
	c.mu.Lock()
	out := append([]*Run(nil), c.runs...)
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Meta.Exp != out[j].Meta.Exp {
			return out[i].Meta.Exp < out[j].Meta.Exp
		}
		return out[i].Meta.Name < out[j].Meta.Name
	})
	return out
}

// JSONL record shapes. Every line carries "type"; run-scoped lines carry the
// run name so each line is self-contained.
type jsonlSuite struct {
	Type string        `json:"type"`
	Meta runmeta.Suite `json:"meta"`
}

type jsonlRun struct {
	Type string      `json:"type"`
	Run  runmeta.Run `json:"run"`
}

type jsonlCounter struct {
	Type  string `json:"type"`
	Run   string `json:"run,omitempty"`
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

type jsonlGauge struct {
	Type    string    `json:"type"`
	Run     string    `json:"run,omitempty"`
	Name    string    `json:"name"`
	AtNs    []int64   `json:"at_ns"`
	V       []float64 `json:"v"`
	Dropped int64     `json:"dropped,omitempty"`
}

type jsonlHist struct {
	Type   string    `json:"type"`
	Run    string    `json:"run,omitempty"`
	Name   string    `json:"name"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	N      int64     `json:"n"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// WriteJSONL dumps the suite's metrics as JSON Lines: one suite line, then
// per run (sorted) a run line followed by its counter/gauge/hist lines, then
// the host registry tagged run="host".
func (c *Collector) WriteJSONL(w io.Writer, suite runmeta.Suite) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlSuite{Type: "suite", Meta: suite}); err != nil {
		return err
	}
	for _, r := range c.Runs() {
		if err := enc.Encode(jsonlRun{Type: "run", Run: r.Meta}); err != nil {
			return err
		}
		if err := writeRegistry(enc, r.Meta.Name, r.Registry); err != nil {
			return err
		}
	}
	if err := writeRegistry(enc, "host", c.host); err != nil {
		return err
	}
	return bw.Flush()
}

func writeRegistry(enc *json.Encoder, run string, reg *Registry) error {
	for _, ctr := range reg.Counters() {
		if err := enc.Encode(jsonlCounter{Type: "counter", Run: run, Name: ctr.Name(), Value: ctr.Value()}); err != nil {
			return err
		}
	}
	for _, g := range reg.Gauges() {
		rec := jsonlGauge{Type: "gauge", Run: run, Name: g.Name(), Dropped: g.Dropped()}
		samples := g.Samples()
		rec.AtNs = make([]int64, len(samples))
		rec.V = make([]float64, len(samples))
		for i, s := range samples {
			rec.AtNs[i] = int64(s.At)
			rec.V[i] = s.V
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	for _, h := range reg.Histograms() {
		sh := h.Hist()
		if err := enc.Encode(jsonlHist{
			Type: "hist", Run: run, Name: h.Name(),
			Bounds: sh.Bounds(), Counts: sh.Counts(),
			N: sh.N(), Sum: sh.Sum(), Min: sh.Min(), Max: sh.Max(),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Chrome trace_event JSON shapes. ts/dur are in microseconds per the format;
// virtual nanoseconds are divided down as floats (0.001µs resolution).
type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Pid  int64                  `json:"pid"`
	Tid  int64                  `json:"tid"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

func usec(t vtime.Time) float64        { return float64(t) / 1e3 }
func usecDur(d vtime.Duration) float64 { return float64(d) / 1e3 }

// WriteTrace dumps the suite's timelines in Chrome trace_event format
// (JSON object with a traceEvents array), loadable in Perfetto and
// chrome://tracing. Each run becomes a process (pid = 1-based index in
// sorted run order); each simulated thread or GC-global track becomes a
// thread within it.
func (c *Collector) WriteTrace(w io.Writer, suite runmeta.Suite) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"scale\":%q,\"j\":%d},\"traceEvents\":[", suite.Scale, suite.J); err != nil {
		return err
	}
	enc := json.NewEncoder(bw)
	first := true
	emit := func(ev interface{}) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		// Encoder.Encode appends '\n', which is harmless inside the array
		// and keeps the file greppable.
		return enc.Encode(ev)
	}
	for i, r := range c.Runs() {
		pid := int64(i + 1)
		if err := emit(metaEvent(pid, 0, "process_name", map[string]interface{}{"name": r.Meta.Exp + "/" + r.Meta.Name})); err != nil {
			return err
		}
		tl := r.Timeline
		if tl == nil {
			continue
		}
		for _, tid := range tl.threadOrder {
			if err := emit(metaEvent(pid, tid, "thread_name", map[string]interface{}{"name": tl.threadNames[tid]})); err != nil {
				return err
			}
			if err := emit(metaEvent(pid, tid, "thread_sort_index", map[string]interface{}{"sort_index": tid})); err != nil {
				return err
			}
		}
		for _, ev := range tl.events {
			ce := chromeEvent{Name: ev.name, Ph: string(ev.ph), Pid: pid, Tid: ev.tid, Ts: usec(ev.ts)}
			switch ev.ph {
			case phSpan:
				ce.Dur = usecDur(ev.dur)
			case phInstant:
				ce.S = "t"
			}
			if len(ev.args) > 0 {
				ce.Args = make(map[string]interface{}, len(ev.args))
				for _, a := range ev.args {
					ce.Args[a.Key] = a.Val
				}
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

func metaEvent(pid, tid int64, name string, args map[string]interface{}) chromeEvent {
	return chromeEvent{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: args}
}

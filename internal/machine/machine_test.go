package machine

import (
	"testing"

	"mcgc/internal/vtime"
)

const ms = vtime.Millisecond

func TestSingleThreadRun(t *testing.T) {
	m := New(1)
	steps := 0
	m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
		steps++
		ctx.Charge(1 * ms)
		if steps == 5 {
			return Finish
		}
		return Continue
	})
	end := m.Run(vtime.Time(1 * vtime.Second))
	if steps != 5 {
		t.Fatalf("steps = %d, want 5", steps)
	}
	if end != vtime.Time(4*ms) { // the 5th step starts at 4ms
		t.Fatalf("end frontier = %v, want 4ms", end)
	}
	if got := m.threads[0].CPUTime(); got != 5*ms {
		t.Fatalf("CPUTime = %v, want 5ms", got)
	}
}

func TestTwoProcessorsParallelism(t *testing.T) {
	// Two threads of 10 steps x 1ms each on 2 processors finish in 10ms
	// of virtual time, not 20.
	m := New(2)
	var finish [2]vtime.Time
	for i := 0; i < 2; i++ {
		i := i
		steps := 0
		m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
			steps++
			ctx.Charge(1 * ms)
			if steps == 10 {
				finish[i] = ctx.Now()
				return Finish
			}
			return Continue
		})
	}
	m.Run(vtime.Time(vtime.Second))
	for i, f := range finish {
		if f != vtime.Time(10*ms) {
			t.Fatalf("thread %d finished at %v, want 10ms", i, f)
		}
	}
}

func TestContention(t *testing.T) {
	// Two threads on one processor: 10 steps x 1ms each => 20ms total,
	// interleaved fairly (FIFO).
	m := New(1)
	var finish [2]vtime.Time
	for i := 0; i < 2; i++ {
		i := i
		steps := 0
		m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
			steps++
			ctx.Charge(1 * ms)
			if steps == 10 {
				finish[i] = ctx.Now()
				return Finish
			}
			return Continue
		})
	}
	m.Run(vtime.Time(vtime.Second))
	if finish[0] != vtime.Time(19*ms) || finish[1] != vtime.Time(20*ms) {
		t.Fatalf("finish times = %v, want 19ms/20ms", finish)
	}
}

func TestLowPriorityRunsOnlyWhenIdle(t *testing.T) {
	// One processor. A normal thread runs solidly for 10ms, then sleeps
	// 10ms, repeatedly. A low-priority thread should accumulate CPU only
	// during the sleeps.
	m := New(1)
	normalSteps, lowSteps := 0, 0
	var lowDuringBusy int
	busyUntil := vtime.Time(0)
	m.AddThread("mutator", PriorityNormal, func(ctx *Context) Control {
		normalSteps++
		ctx.Charge(10 * ms)
		busyUntil = ctx.Now()
		ctx.Sleep(10 * ms)
		if normalSteps == 5 {
			return Finish
		}
		return Continue
	})
	m.AddThread("bg", PriorityLow, func(ctx *Context) Control {
		if ctx.Now() < busyUntil {
			lowDuringBusy++
		}
		lowSteps++
		ctx.Charge(1 * ms)
		return Continue
	})
	m.Run(vtime.Time(200 * ms))
	if lowSteps == 0 {
		t.Fatal("low-priority thread never ran despite idle time")
	}
	if lowDuringBusy != 0 {
		t.Fatalf("low-priority thread ran %d times while the processor was owed to the mutator", lowDuringBusy)
	}
}

func TestLowPriorityStarvedWhenSaturated(t *testing.T) {
	// Two always-runnable normal threads on one processor leave no idle
	// time: the low-priority thread must never run.
	m := New(1)
	for i := 0; i < 2; i++ {
		m.AddThread("mutator", PriorityNormal, func(ctx *Context) Control {
			ctx.Charge(1 * ms)
			return Continue
		})
	}
	lowRan := false
	m.AddThread("bg", PriorityLow, func(ctx *Context) Control {
		lowRan = true
		ctx.Charge(1 * ms)
		return Continue
	})
	m.Run(vtime.Time(100 * ms))
	if lowRan {
		t.Fatal("low-priority thread ran on a saturated machine")
	}
}

func TestSleepWakesOnTime(t *testing.T) {
	m := New(1)
	var wakes []vtime.Time
	steps := 0
	m.AddThread("sleeper", PriorityNormal, func(ctx *Context) Control {
		wakes = append(wakes, ctx.Now())
		steps++
		ctx.Charge(1 * ms)
		ctx.Sleep(4 * ms)
		if steps == 3 {
			return Finish
		}
		return Continue
	})
	m.Run(vtime.Time(vtime.Second))
	want := []vtime.Time{0, vtime.Time(5 * ms), vtime.Time(10 * ms)}
	for i := range want {
		if wakes[i] != want[i] {
			t.Fatalf("wake %d at %v, want %v", i, wakes[i], want[i])
		}
	}
}

func TestDeadlineStopsRun(t *testing.T) {
	m := New(1)
	steps := 0
	m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
		steps++
		ctx.Charge(1 * ms)
		return Continue
	})
	m.Run(vtime.Time(10 * ms))
	if steps < 9 || steps > 11 {
		t.Fatalf("steps = %d, want about 10", steps)
	}
	// The run is resumable.
	m.Run(vtime.Time(20 * ms))
	if steps < 19 || steps > 22 {
		t.Fatalf("steps after resume = %d, want about 20", steps)
	}
}

func TestStopTheWorld(t *testing.T) {
	// Three threads on two processors. One triggers a 50ms collection at
	// its 5th step; afterwards everyone resumes at the pause end.
	m := New(2)
	var resumedAt vtime.Time
	steps := 0
	m.AddThread("trigger", PriorityNormal, func(ctx *Context) Control {
		steps++
		ctx.Charge(1 * ms)
		if steps == 5 {
			m.StopTheWorld(ctx, "test", func(stoppedAt vtime.Time) vtime.Time {
				return stoppedAt.Add(50 * ms)
			})
			resumedAt = ctx.Now()
			return Finish
		}
		return Continue
	})
	otherRunsDuringPause := 0
	var pauseWindow [2]vtime.Time
	m.AddThread("other", PriorityNormal, func(ctx *Context) Control {
		if pauseWindow[1] != 0 && ctx.Now() > pauseWindow[0] && ctx.Now() < pauseWindow[1] {
			otherRunsDuringPause++
		}
		ctx.Charge(1 * ms)
		return Continue
	})
	m.Run(vtime.Time(200 * ms))
	if len(m.Pauses) != 1 {
		t.Fatalf("recorded %d pauses, want 1", len(m.Pauses))
	}
	p := m.Pauses[0]
	pauseWindow[0], pauseWindow[1] = p.RequestedAt, p.ResumedAt
	if p.Duration() < 50*ms {
		t.Fatalf("pause duration %v, want >= 50ms", p.Duration())
	}
	if resumedAt != p.ResumedAt {
		t.Fatalf("trigger resumed at %v, pause ended at %v", resumedAt, p.ResumedAt)
	}
	if p.StopLatency < 0 {
		t.Fatalf("negative stop latency %v", p.StopLatency)
	}
	if otherRunsDuringPause != 0 {
		t.Fatalf("other thread ran %d times during the pause", otherRunsDuringPause)
	}
}

func TestStopTheWorldWaitsForInflightSteps(t *testing.T) {
	// A long step in flight on the other processor delays the full stop.
	m := New(2)
	longDone := false
	m.AddThread("long", PriorityNormal, func(ctx *Context) Control {
		ctx.Charge(30 * ms)
		longDone = true
		return Finish
	})
	m.AddThread("trigger", PriorityNormal, func(ctx *Context) Control {
		ctx.Charge(1 * ms)
		m.StopTheWorld(ctx, "test", func(stoppedAt vtime.Time) vtime.Time {
			return stoppedAt.Add(10 * ms)
		})
		return Finish
	})
	m.Run(vtime.Time(vtime.Second))
	_ = longDone
	p := m.Pauses[0]
	if p.StopLatency != 29*ms {
		t.Fatalf("stop latency = %v, want 29ms (in-flight step drain)", p.StopLatency)
	}
	if p.StoppedAt != vtime.Time(30*ms) {
		t.Fatalf("StoppedAt = %v, want 30ms", p.StoppedAt)
	}
}

func TestRunParallelBalancedWork(t *testing.T) {
	// 100 items of 1ms each on 4 workers: makespan 25ms.
	items := 100
	end := RunParallel(0, 4, func(w *Worker) bool {
		if items == 0 {
			return false
		}
		items--
		w.Charge(1 * ms)
		return true
	})
	if end < vtime.Time(25*ms) || end > vtime.Time(26*ms) {
		t.Fatalf("makespan = %v, want ~25ms", end)
	}
}

func TestRunParallelProducedWorkIsSeen(t *testing.T) {
	// A worker that goes idle must be revived when another produces work.
	produced := false
	var consumed bool
	work := 1
	end := RunParallel(0, 2, func(w *Worker) bool {
		if work > 0 {
			work--
			w.Charge(10 * ms)
			if !produced {
				produced = true
				work += 5 // new work appears late
			} else {
				consumed = true
			}
			return true
		}
		return false
	})
	if !consumed {
		t.Fatal("late-produced work was never consumed")
	}
	if end == 0 {
		t.Fatal("zero makespan")
	}
}

func TestRunParallelSingleWorker(t *testing.T) {
	n := 10
	end := RunParallel(vtime.Time(5*ms), 1, func(w *Worker) bool {
		if n == 0 {
			return false
		}
		n--
		w.Charge(1 * ms)
		return true
	})
	if end < vtime.Time(15*ms) {
		t.Fatalf("end = %v, want >= 15ms", end)
	}
}

func TestChargePanicsOnNegative(t *testing.T) {
	m := New(1)
	panicked := false
	m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
		if !panicked {
			func() {
				defer func() {
					if recover() != nil {
						panicked = true
					}
				}()
				ctx.Charge(-1)
			}()
		}
		return Finish
	})
	m.Run(vtime.Time(ms))
	if !panicked {
		t.Fatal("expected panic on negative charge")
	}
}

func TestZeroCostStepStillAdvancesTime(t *testing.T) {
	// A step that charges nothing must not livelock the machine.
	m := New(1)
	steps := 0
	m.AddThread("spinner", PriorityNormal, func(ctx *Context) Control {
		steps++
		return Continue
	})
	m.Run(vtime.Time(10 * vtime.Microsecond))
	if steps == 0 {
		t.Fatal("spinner never ran")
	}
	if steps > 20000 {
		t.Fatalf("spinner ran %d times in 10us; minimum dispatch cost not applied", steps)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []vtime.Time {
		m := New(3)
		var order []vtime.Time
		for i := 0; i < 5; i++ {
			i := i
			steps := 0
			m.AddThread("w", PriorityNormal, func(ctx *Context) Control {
				steps++
				ctx.Charge(vtime.Duration(i+1) * 100 * vtime.Microsecond)
				if steps%3 == 0 {
					ctx.Sleep(vtime.Duration(i) * 50 * vtime.Microsecond)
				}
				order = append(order, ctx.Now())
				if steps == 20 {
					return Finish
				}
				return Continue
			})
		}
		m.Run(vtime.Time(vtime.Second))
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestForBytes(t *testing.T) {
	if got := ForBytes(6300, 1000); got != vtime.Duration(6300) {
		t.Fatalf("ForBytes(6300ps, 1000B) = %v, want 6300ns", got)
	}
	if got := ForBytes(450, 2); got != 0 { // truncates below 1ns
		t.Fatalf("ForBytes small = %v, want 0", got)
	}
}

func TestAddThreadDuringRunIsSchedulable(t *testing.T) {
	m := New(1)
	childRan := false
	m.AddThread("parent", PriorityNormal, func(ctx *Context) Control {
		ctx.Charge(ms)
		m.AddThread("child", PriorityNormal, func(ctx *Context) Control {
			childRan = true
			ctx.Charge(ms)
			return Finish
		})
		return Finish
	})
	m.Run(vtime.Time(100 * ms))
	if !childRan {
		t.Fatal("dynamically added thread never ran")
	}
}

// Package machine is the deterministic discrete-event simulator that stands
// in for the paper's multiprocessor hardware (see DESIGN.md, substitution
// table). It provides:
//
//   - P virtual processors and any number of threads;
//   - two priorities — background GC threads run at PriorityLow and are
//     dispatched only when no normal thread is runnable, reproducing the
//     paper's "low-priority background threads soak up idle cycles";
//   - virtual-time accounting: each thread step charges a cost, pause
//     times and throughput fall out of the event schedule;
//   - stop-the-world support: a step may stop the machine, run a
//     collection (usually via RunParallel), and resume all threads at the
//     pause end;
//   - determinism: FIFO ready queues, index-ordered tie-breaks and no real
//     time or randomness, so every experiment is exactly reproducible.
package machine

import (
	"container/heap"
	"fmt"

	"mcgc/internal/vtime"
)

// Priority selects a thread's scheduling class.
type Priority int

const (
	// PriorityNormal is used by mutator threads.
	PriorityNormal Priority = iota
	// PriorityLow is used by background GC threads: they receive a
	// processor only when no normal thread is runnable at dispatch time.
	PriorityLow
)

// Control is a step function's directive to the scheduler.
type Control int

const (
	// Continue re-enqueues the thread for another step.
	Continue Control = iota
	// Finish removes the thread permanently.
	Finish
)

// StepFunc performs one unit of a thread's work. It charges virtual time
// through the Context and returns what the scheduler should do next. A call
// models the code between two GC-points, so the world can only stop at step
// boundaries — the simulator's analogue of the paper's observation that its
// collector needs no compiler-inserted safe points.
type StepFunc func(ctx *Context) Control

// Thread is one simulated thread.
type Thread struct {
	id       int
	name     string
	priority Priority
	step     StepFunc

	state    threadState
	wakeAt   vtime.Time
	cpuTime  vtime.Duration
	finished bool
}

// ID returns the thread's machine-assigned identifier.
func (t *Thread) ID() int { return t.id }

// Name returns the thread's diagnostic name.
func (t *Thread) Name() string { return t.name }

// CPUTime returns the total virtual time the thread has been charged.
func (t *Thread) CPUTime() vtime.Duration { return t.cpuTime }

type threadState int

const (
	stateReady threadState = iota
	stateSleeping
	stateRunning
	stateFinished
)

// Machine is the simulated multiprocessor.
type Machine struct {
	procs    []vtime.Time // per-processor next-free time
	busy     []vtime.Duration
	threads  []*Thread
	readyN   fifo // normal-priority ready queue
	readyL   fifo // low-priority ready queue
	sleepers sleeperHeap

	now      vtime.Time // latest dispatch start (monotonic)
	inStep   bool
	stopping bool

	// Pauses collects every stop-the-world interval for reporting.
	Pauses []Pause
}

// Pause records one stop-the-world interval.
type Pause struct {
	RequestedAt vtime.Time // the moment the triggering thread requested the stop
	StoppedAt   vtime.Time // all threads parked (in-flight steps drained)
	ResumedAt   vtime.Time // mutators run again
	Reason      string
	StopLatency vtime.Duration // StoppedAt - RequestedAt
}

// Duration returns the mutator-observed pause: request to resume, which is
// how the paper reports pause times.
func (p Pause) Duration() vtime.Duration { return p.ResumedAt.Sub(p.RequestedAt) }

// New creates a machine with the given number of processors.
func New(processors int) *Machine {
	if processors <= 0 {
		panic(fmt.Sprintf("machine: need at least one processor, got %d", processors))
	}
	return &Machine{
		procs: make([]vtime.Time, processors),
		busy:  make([]vtime.Duration, processors),
	}
}

// Processors returns the processor count.
func (m *Machine) Processors() int { return len(m.procs) }

// Now returns the current simulation frontier: the start time of the most
// recent dispatch.
func (m *Machine) Now() vtime.Time { return m.now }

// AddThread registers a thread. Threads may be added before or during a
// run; they become runnable immediately.
func (m *Machine) AddThread(name string, prio Priority, step StepFunc) *Thread {
	t := &Thread{id: len(m.threads), name: name, priority: prio, step: step}
	m.threads = append(m.threads, t)
	m.enqueue(t)
	return t
}

func (m *Machine) enqueue(t *Thread) {
	t.state = stateReady
	if t.priority == PriorityNormal {
		m.readyN.push(t)
	} else {
		m.readyL.push(t)
	}
}

// Run dispatches steps until no thread can ever run again (all finished) or
// the simulation frontier passes deadline. It returns the final frontier.
func (m *Machine) Run(deadline vtime.Time) vtime.Time {
	for {
		p := m.earliestProc()
		t0 := m.procs[p]
		// Wake every sleeper due by the dispatch time.
		m.wakeDue(t0)
		th := m.pickReady()
		if th == nil {
			// Nothing runnable: advance to the next wake-up.
			if m.sleepers.Len() == 0 {
				return m.now
			}
			next := m.sleepers.peek().wakeAt
			if m.procs[p] < next {
				m.procs[p] = next
			}
			if next > deadline {
				m.now = deadline
				return m.now
			}
			continue
		}
		start := m.procs[p]
		if start > deadline {
			// Put the thread back; the run is over.
			m.enqueue(th)
			m.now = deadline
			return m.now
		}
		m.now = start
		ctx := Context{m: m, th: th, proc: p, now: start}
		th.state = stateRunning
		m.inStep = true
		ctl := th.step(&ctx)
		m.inStep = false
		if ctx.now == start {
			// Every dispatch costs at least a nanosecond; a zero-cost
			// step would otherwise livelock virtual time.
			ctx.now = start.Add(vtime.Nanosecond)
		}
		elapsed := ctx.now.Sub(start)
		th.cpuTime += elapsed
		m.busy[p] += elapsed
		m.procs[p] = ctx.now
		if ctl == Finish {
			th.state = stateFinished
			th.finished = true
			continue
		}
		// The thread becomes ready only when its step's virtual time has
		// elapsed (plus any requested sleep) — a thread's steps must never
		// overlap themselves across processors.
		th.state = stateSleeping
		th.wakeAt = ctx.now.Add(ctx.sleep)
		heap.Push(&m.sleepers, sleeper{t: th, wakeAt: th.wakeAt})
	}
}

func (m *Machine) earliestProc() int {
	best := 0
	for i := 1; i < len(m.procs); i++ {
		if m.procs[i] < m.procs[best] {
			best = i
		}
	}
	return best
}

func (m *Machine) wakeDue(t vtime.Time) {
	for m.sleepers.Len() > 0 && !m.sleepers.peek().wakeAt.After(t) {
		s := heap.Pop(&m.sleepers).(sleeper)
		if s.t.state == stateSleeping && s.t.wakeAt == s.wakeAt {
			m.enqueue(s.t)
		}
	}
}

func (m *Machine) pickReady() *Thread {
	if th := m.readyN.pop(); th != nil {
		return th
	}
	return m.readyL.pop()
}

// BusyTime returns the busy virtual time of processor p.
func (m *Machine) BusyTime(p int) vtime.Duration { return m.busy[p] }

// TotalBusy returns the busy time summed over all processors.
func (m *Machine) TotalBusy() vtime.Duration {
	var sum vtime.Duration
	for _, b := range m.busy {
		sum += b
	}
	return sum
}

// Context is a thread's handle during one step.
type Context struct {
	m     *Machine
	th    *Thread
	proc  int
	now   vtime.Time
	sleep vtime.Duration
}

// Now returns the thread's current virtual time within the step.
func (c *Context) Now() vtime.Time { return c.now }

// Charge advances the thread's clock by the cost of work it just performed.
func (c *Context) Charge(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative charge %d", d))
	}
	c.now = c.now.Add(d)
}

// Sleep requests that after this step the thread sleeps for d.
func (c *Context) Sleep(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative sleep %d", d))
	}
	c.sleep = d
}

// Thread returns the executing thread.
func (c *Context) Thread() *Thread { return c.th }

// Machine returns the owning machine.
func (c *Context) Machine() *Machine { return c.m }

// StopTheWorld stops every thread and runs collect while the world is
// stopped. It is called from within a step (the thread that hit an
// allocation failure or detected concurrent-phase termination drives the
// collection). All in-flight steps on other processors complete first —
// that drain is the stop latency. collect receives the time at which the
// world is fully stopped and returns the time collection work finished;
// every processor then resumes at that time.
func (m *Machine) StopTheWorld(c *Context, reason string, collect func(stoppedAt vtime.Time) vtime.Time) {
	if !m.inStep {
		panic("machine: StopTheWorld outside a step")
	}
	if m.stopping {
		panic("machine: recursive StopTheWorld")
	}
	m.stopping = true
	defer func() { m.stopping = false }()

	requested := c.now
	stopped := requested
	for p, free := range m.procs {
		if p != c.proc && free > stopped {
			stopped = free
		}
	}
	end := collect(stopped)
	if end < stopped {
		panic("machine: collection ended before it began")
	}
	for p := range m.procs {
		if p == c.proc {
			continue
		}
		// Busy until their in-flight step completed, then paused.
		m.procs[p] = end
	}
	c.now = end
	m.Pauses = append(m.Pauses, Pause{
		RequestedAt: requested,
		StoppedAt:   stopped,
		ResumedAt:   end,
		Reason:      reason,
		StopLatency: stopped.Sub(requested),
	})
}

// fifo is a simple FIFO queue of threads.
type fifo struct {
	items []*Thread
	head  int
}

func (q *fifo) push(t *Thread) { q.items = append(q.items, t) }

func (q *fifo) pop() *Thread {
	if q.head >= len(q.items) {
		return nil
	}
	t := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return t
}

func (q *fifo) len() int { return len(q.items) - q.head }

// sleeper heap, ordered by wake time then thread id for determinism.
type sleeper struct {
	t      *Thread
	wakeAt vtime.Time
}

type sleeperHeap []sleeper

func (h sleeperHeap) Len() int { return len(h) }
func (h sleeperHeap) Less(i, j int) bool {
	if h[i].wakeAt != h[j].wakeAt {
		return h[i].wakeAt < h[j].wakeAt
	}
	return h[i].t.id < h[j].t.id
}
func (h sleeperHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sleeperHeap) Push(x any)   { *h = append(*h, x.(sleeper)) }
func (h *sleeperHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}
func (h sleeperHeap) peek() sleeper { return h[0] }

package machine

import (
	"fmt"

	"mcgc/internal/vtime"
)

// Worker is one participant of a RunParallel phase.
type Worker struct {
	ID    int
	clock vtime.Time
}

// Now returns the worker's current virtual time.
func (w *Worker) Now() vtime.Time { return w.clock }

// Charge advances the worker's clock by the cost of work it performed.
func (w *Worker) Charge(d vtime.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("machine: negative worker charge %d", d))
	}
	w.clock = w.clock.Add(d)
}

// pollCost is charged to a worker that looked for work and found none; it
// models the cost of the termination check and prevents zero-time spinning.
const pollCost = 200 * vtime.Nanosecond

// RunParallel simulates n workers running from start until global
// quiescence: the phase ends when every worker's most recent attempt (made
// after the last productive step by any worker) found no work. step must
// return true if the worker performed (and charged) some work, false if it
// found none. The returned time is the clock of the last worker to go idle
// — the parallel phase's makespan.
//
// The collectors use this for the stop-the-world mark and sweep phases: the
// workers pull work packets (or sweep sections), so the makespan directly
// reflects the load balancing quality of the work packet mechanism.
func RunParallel(start vtime.Time, n int, step func(w *Worker) bool) vtime.Time {
	if n <= 0 {
		panic(fmt.Sprintf("machine: RunParallel needs at least one worker, got %d", n))
	}
	workers := make([]Worker, n)
	idle := make([]bool, n)
	for i := range workers {
		workers[i] = Worker{ID: i, clock: start}
	}
	idleCount := 0
	for idleCount < n {
		// Pick the worker with the earliest clock (lowest ID breaks ties).
		best := 0
		for i := 1; i < n; i++ {
			if workers[i].clock < workers[best].clock {
				best = i
			}
		}
		w := &workers[best]
		if step(w) {
			// New work may now exist for everyone; un-idle all workers
			// so each must observe quiescence after this point.
			if idle[best] {
				idle[best] = false
			}
			if idleCount > 0 {
				for i := range idle {
					idle[i] = false
				}
				idleCount = 0
			}
		} else {
			w.Charge(pollCost)
			if !idle[best] {
				idle[best] = true
				idleCount++
			}
		}
	}
	end := start
	for i := range workers {
		if workers[i].clock > end {
			end = workers[i].clock
		}
	}
	return end
}

package machine

import "mcgc/internal/vtime"

// Costs is the virtual-time cost model: how many nanoseconds each primitive
// operation of the mutator/collector system takes on one processor of the
// simulated machine. The defaults are calibrated from the paper's own
// measurements on the 4-way 550 MHz Pentium III (see DESIGN.md §6 and
// EXPERIMENTS.md): they are chosen so the stop-the-world collector's pause
// times and the mutators' allocation rates land in the same regime as the
// paper's Figure 1 and Table 3, after which all comparisons between
// collectors are shape-faithful.
//
// All per-byte costs are expressed in picoseconds to keep integer
// arithmetic exact; use the ForBytes helper.
type Costs struct {
	// MutatorWorkPerAllocByte is the application work (transaction
	// compute) per byte it allocates, in picoseconds. Calibrated from
	// Table 3: 48.7 KB/ms aggregate pre-concurrent allocation rate on 4
	// processors ≈ 82 ns of single-processor work per byte.
	MutatorWorkPerAllocByte int64

	// TraceBytePs is the cost of tracing (scanning and marking out of) one
	// byte of a live object, in picoseconds. Calibrated from Figure 1:
	// STW average mark 235 ms over ~150 MB live on 4 processors
	// ≈ 6.3 ns/byte.
	TraceBytePs int64

	// SweepBytePs is the bitwise-sweep cost per byte of heap examined, in
	// picoseconds. Bitwise sweep walks the mark bit vector, so its real
	// per-heap-byte cost is small; calibrated so a 256 MB sweep takes
	// ~30 ms on 4 processors (Figure 1's pause minus mark).
	SweepBytePs int64

	// SweepChunk is the fixed cost of recording one free chunk.
	SweepChunk vtime.Duration

	// AllocHeader is the fixed per-object allocation cost (header write,
	// size-class logic).
	AllocHeader vtime.Duration

	// CacheRefill is the fixed cost of obtaining a new allocation cache
	// (free-list synchronization, zeroing bookkeeping).
	CacheRefill vtime.Duration

	// WriteBarrier is the mutator cost of one reference-store barrier:
	// the card-dirty store with — per Section 5.3 — no fence.
	WriteBarrier vtime.Duration

	// Fence is one memory synchronization instruction ("expensive
	// multi-cycle"): ~100 cycles at 550 MHz.
	Fence vtime.Duration

	// CAS is one compare-and-swap (work packet get/put, mark-bit claim
	// contention path).
	CAS vtime.Duration

	// PacketOp is the non-CAS bookkeeping of one packet get/put.
	PacketOp vtime.Duration

	// CardScan is the fixed cost of processing one card during cleaning
	// (locating objects via allocation bits); retracing marked objects on
	// the card is charged at TraceBytePs.
	CardScan vtime.Duration

	// CardRegister is the cost of registering one dirty card in the
	// snapshot pass.
	CardRegister vtime.Duration

	// StackScanSlot is the conservative-scan cost per stack slot (root).
	StackScanSlot vtime.Duration

	// HandshakePerThread is the collector-side cost of forcing one
	// mutator through a fence (Section 5.3 step 2): signalling plus the
	// mutator's fence.
	HandshakePerThread vtime.Duration

	// ThinkPoll is the background tracer's cost for one "no work" poll.
	ThinkPoll vtime.Duration
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		MutatorWorkPerAllocByte: 82_000, // 82 ns/byte
		TraceBytePs:             6_300,  // 6.3 ns/byte
		SweepBytePs:             450,    // 0.45 ns/byte of heap
		SweepChunk:              60 * vtime.Nanosecond,
		AllocHeader:             25 * vtime.Nanosecond,
		CacheRefill:             400 * vtime.Nanosecond,
		WriteBarrier:            6 * vtime.Nanosecond,
		Fence:                   180 * vtime.Nanosecond,
		CAS:                     45 * vtime.Nanosecond,
		PacketOp:                30 * vtime.Nanosecond,
		CardScan:                250 * vtime.Nanosecond,
		CardRegister:            25 * vtime.Nanosecond,
		StackScanSlot:           12 * vtime.Nanosecond,
		HandshakePerThread:      1500 * vtime.Nanosecond,
		ThinkPoll:               150 * vtime.Nanosecond,
	}
}

// ForBytes converts a picosecond-per-byte rate into a duration for n bytes.
func ForBytes(ps int64, n int64) vtime.Duration {
	return vtime.Duration(ps * n / 1000)
}

package mutator

import (
	"testing"

	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
	"mcgc/internal/vtime"
)

// recordingCollector captures hook invocations for assertions.
type recordingCollector struct {
	refills     []int64
	larges      []int64
	failures    int
	barrier     bool
	failureHook func()
}

func (c *recordingCollector) Name() string { return "recording" }
func (c *recordingCollector) OnCacheRefill(_ *machine.Context, _ *Thread, b int64) {
	c.refills = append(c.refills, b)
}
func (c *recordingCollector) OnLargeAlloc(_ *machine.Context, _ *Thread, b int64) {
	c.larges = append(c.larges, b)
}
func (c *recordingCollector) OnAllocFailure(_ *machine.Context, _ *Thread) {
	c.failures++
	if c.failureHook != nil {
		c.failureHook()
	}
}
func (c *recordingCollector) BarrierActive() bool { return c.barrier }

// drive runs fn as the single thread of a 1-processor machine.
func drive(t *testing.T, rt *Runtime, fn func(ctx *machine.Context)) {
	t.Helper()
	m := machine.New(1)
	ran := false
	m.AddThread("t", machine.PriorityNormal, func(ctx *machine.Context) machine.Control {
		fn(ctx)
		ran = true
		return machine.Finish
	})
	m.Run(vtime.Time(10 * vtime.Second))
	if !ran {
		t.Fatal("program did not run")
	}
}

func newRT(heap int64) (*Runtime, *recordingCollector) {
	rt := NewRuntime(heap, DefaultConfig(), machine.DefaultCosts())
	col := &recordingCollector{}
	rt.SetCollector(col)
	return rt, col
}

func TestAllocSmallUsesCache(t *testing.T) {
	rt, col := newRT(1 << 20)
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, th, 1, 2)
		b := rt.Alloc(ctx, th, 1, 2)
		if a == heapsim.Nil || b == heapsim.Nil {
			t.Error("alloc failed")
		}
		if b != a+4 {
			t.Errorf("expected bump allocation, got %d then %d", a, b)
		}
	})
	// One refill (first allocation faulted the cache in), no failures.
	if len(col.refills) != 1 || col.failures != 0 {
		t.Fatalf("refills=%d failures=%d", len(col.refills), col.failures)
	}
	if th.BytesAllocated != 2*4*heapsim.WordBytes {
		t.Fatalf("BytesAllocated = %d", th.BytesAllocated)
	}
}

func TestPaceDeltaIsExactAllocation(t *testing.T) {
	rt, col := newRT(1 << 20)
	rt.Cfg.CacheBytes = 1 << 10 // small cache: several refills
	th := rt.NewThread()
	var total int64
	drive(t, rt, func(ctx *machine.Context) {
		for i := 0; i < 100; i++ {
			rt.Alloc(ctx, th, 2, 5)
			total += int64(heapsim.ObjectWords(2, 5)) * heapsim.WordBytes
		}
	})
	var paced int64
	for _, b := range col.refills {
		paced += b
	}
	// Everything allocated before the last refill must have been paced.
	if paced > total || total-paced > int64(rt.Cfg.CacheBytes)*2 {
		t.Fatalf("paced %d of %d allocated", paced, total)
	}
}

func TestLargeObjectBypassesCache(t *testing.T) {
	rt, col := newRT(1 << 20)
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		words := rt.Cfg.LargeBytes / heapsim.WordBytes
		a := rt.Alloc(ctx, th, 4, words) // comfortably over the threshold
		if a == heapsim.Nil {
			t.Error("large alloc failed")
		}
		if rt.Heap.Flags(a)&heapsim.FlagLarge == 0 {
			t.Error("large object missing FlagLarge")
		}
		if !rt.Heap.AllocBits.Test(int(a)) {
			t.Error("large object not published immediately")
		}
	})
	if len(col.larges) != 1 {
		t.Fatalf("large hooks = %d, want 1", len(col.larges))
	}
}

func TestAllocFailureTriggersCollector(t *testing.T) {
	rt, _ := newRT(64 << 10)
	col := &recordingCollector{}
	rt.SetCollector(col)
	th := rt.NewThread()
	// The failure hook "collects": free everything by resetting the heap
	// free list to the whole heap (mark nothing, sweep everything).
	col.failureHook = func() {
		rt.RetireAllCaches()
		rt.Heap.AllocBits.ClearAll()
		rt.Heap.InstallFreeList([]heapsim.Chunk{{Addr: 1, Words: rt.Heap.SizeWords() - 1}}, 0)
	}
	drive(t, rt, func(ctx *machine.Context) {
		for i := 0; i < 5000; i++ {
			if rt.Alloc(ctx, th, 0, 6) == heapsim.Nil {
				t.Error("alloc failed despite collector")
				return
			}
		}
	})
	if col.failures == 0 {
		t.Fatal("allocation failure never triggered the collector")
	}
}

func TestOOMPanics(t *testing.T) {
	rt, _ := newRT(32 << 10)
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		defer func() {
			if recover() == nil {
				t.Error("expected OOM panic")
			}
			if rt.OOMs != 1 {
				t.Errorf("OOMs = %d", rt.OOMs)
			}
		}()
		for i := 0; i < 100000; i++ {
			rt.Alloc(ctx, th, 0, 6)
		}
	})
}

func TestWriteBarrierRespectsCollectorState(t *testing.T) {
	rt, col := newRT(1 << 20)
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, th, 2, 1)
		b := rt.Alloc(ctx, th, 0, 1)
		col.barrier = false
		rt.SetRef(ctx, a, 0, b)
		if rt.Cards.Stats.BarrierMarks != 0 {
			t.Error("card dirtied while barrier inactive")
		}
		col.barrier = true
		rt.SetRef(ctx, a, 1, b)
		if rt.Cards.Stats.BarrierMarks != 1 {
			t.Error("card not dirtied while barrier active")
		}
		if rt.Heap.RefAt(a, 0) != b || rt.Heap.RefAt(a, 1) != b {
			t.Error("reference stores lost")
		}
	})
}

func TestGlobalsAreRoots(t *testing.T) {
	rt, _ := newRT(1 << 20)
	th := rt.NewThread()
	g := rt.AddGlobal()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, th, 0, 1)
		rt.SetGlobal(ctx, g, a)
		th.Stack = append(th.Stack, a, heapsim.Nil)
		var roots []heapsim.Addr
		rt.ForEachRoot(func(r heapsim.Addr) { roots = append(roots, r) })
		if len(roots) != 2 {
			t.Errorf("roots = %v, want global + stack entry (nil skipped)", roots)
		}
		if rt.Global(g) != a {
			t.Error("global read back wrong")
		}
		if rt.RootCount() != 3 { // 1 global + 2 stack slots (incl. nil)
			t.Errorf("RootCount = %d, want 3", rt.RootCount())
		}
	})
}

func TestRetireAllCaches(t *testing.T) {
	rt, _ := newRT(1 << 20)
	t1, t2 := rt.NewThread(), rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, t1, 0, 1)
		b := rt.Alloc(ctx, t2, 0, 1)
		if rt.Heap.AllocBits.Test(int(a)) || rt.Heap.AllocBits.Test(int(b)) {
			t.Error("allocation bits published before flush")
		}
		rt.RetireAllCaches()
		if !rt.Heap.AllocBits.Test(int(a)) || !rt.Heap.AllocBits.Test(int(b)) {
			t.Error("RetireAllCaches did not publish allocation bits")
		}
	})
}

func TestThreadsRegistry(t *testing.T) {
	rt, _ := newRT(1 << 20)
	a := rt.NewThread()
	b := rt.NewThread()
	if a.ID != 0 || b.ID != 1 {
		t.Fatalf("thread IDs %d,%d", a.ID, b.ID)
	}
	if len(rt.Threads()) != 2 {
		t.Fatalf("Threads() = %d", len(rt.Threads()))
	}
}

func TestCacheSourceOverride(t *testing.T) {
	rt, _ := newRT(1 << 20)
	// A fake nursery: a reserved chunk handed out by a custom source.
	region, ok := rt.Heap.CarveCache(2048)
	if !ok {
		t.Fatal("carve failed")
	}
	cur := region.Addr
	var sunk int
	rt.CacheSource = func(want int) (heapsim.Chunk, bool) {
		avail := int(region.End() - cur)
		if avail <= 0 {
			return heapsim.Chunk{}, false
		}
		if want > avail {
			want = avail
		}
		c := heapsim.Chunk{Addr: cur, Words: want}
		cur += heapsim.Addr(want)
		return c, true
	}
	rt.CacheTailSink = func(heapsim.Chunk) { sunk++ }
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, th, 0, 2)
		if a < region.Addr || a >= region.End() {
			t.Errorf("allocation at %d outside the custom source region", a)
		}
		th.Cache.Retire()
	})
	if sunk == 0 {
		t.Fatal("retired tail did not reach the sink")
	}
}

func TestBarrierNurseryFilter(t *testing.T) {
	rt, col := newRT(1 << 20)
	col.barrier = true
	th := rt.NewThread()
	drive(t, rt, func(ctx *machine.Context) {
		a := rt.Alloc(ctx, th, 1, 2)
		b := rt.Alloc(ctx, th, 1, 2)
		// Pretend [a, a+4) is nursery: stores into a are exempt.
		rt.BarrierNurseryFrom, rt.BarrierNurseryTo = a, a+4
		before := rt.Cards.Stats.BarrierMarks
		rt.SetRef(ctx, a, 0, b) // young holder: filtered
		if rt.Cards.Stats.BarrierMarks != before {
			t.Error("store to nursery holder dirtied a card")
		}
		rt.SetRef(ctx, b, 0, a) // old holder: barrier fires
		if rt.Cards.Stats.BarrierMarks != before+1 {
			t.Error("store to old holder did not dirty a card")
		}
	})
}

// Package mutator implements the simulated application runtime: mutator
// threads with stacks (root sets), the allocation entry points that host
// the collector's pacing hooks (Section 3), and the card-marking write
// barrier with no fence (Sections 2 and 5.3).
//
// The package is collector-agnostic: a Collector implementation (the
// stop-the-world baseline or the mostly concurrent collector in
// internal/core) is attached to the Runtime and receives the allocation
// hooks the paper's design revolves around — every allocation-cache refill
// and every large-object allocation is an increment of concurrent
// collection work.
package mutator

import (
	"fmt"

	"mcgc/internal/cardtable"
	"mcgc/internal/heapsim"
	"mcgc/internal/machine"
)

// Config holds the runtime knobs shared by all experiments.
type Config struct {
	// CacheBytes is the allocation-cache (TLH) size; refills of this
	// amount are the incremental pacing points.
	CacheBytes int
	// LargeBytes is the direct-allocation threshold for large objects.
	LargeBytes int
}

// DefaultConfig returns the defaults used by the experiments.
func DefaultConfig() Config {
	return Config{CacheBytes: 16 << 10, LargeBytes: 2 << 10}
}

// Collector is the hook interface a garbage collector implements. All hooks
// run inside the calling thread's machine step and charge their costs to it.
type Collector interface {
	// Name identifies the collector in reports.
	Name() string
	// OnCacheRefill is invoked when th is about to obtain a new
	// allocation cache of refillBytes. This is the main incremental
	// pacing point: the mostly concurrent collector decides here whether
	// to start a cycle and how much tracing th must perform.
	OnCacheRefill(ctx *machine.Context, th *Thread, refillBytes int64)
	// OnLargeAlloc is the pacing point for a large-object allocation.
	OnLargeAlloc(ctx *machine.Context, th *Thread, bytes int64)
	// OnAllocFailure runs a full stop-the-world collection because the
	// heap could not satisfy an allocation.
	OnAllocFailure(ctx *machine.Context, th *Thread)
	// BarrierActive reports whether reference stores must dirty cards
	// (true while a concurrent marking phase is in progress).
	BarrierActive() bool
}

// Runtime is the shared mutator state: heap, card table, thread registry
// and global roots.
type Runtime struct {
	Heap  *heapsim.Heap
	Cards *cardtable.Table
	Costs machine.Costs
	Cfg   Config

	collector Collector
	threads   []*Thread
	globals   []heapsim.Addr

	// CacheSource, when set, overrides where allocation caches come from
	// (default: the heap free list). The generational extension points it
	// at the nursery's bump allocator.
	CacheSource func(want int) (heapsim.Chunk, bool)
	// CacheTailSink, when set, is installed as ReturnTail on every
	// thread's allocation cache, so retired cache tails return to the
	// cache source's space rather than the heap free list.
	CacheTailSink func(heapsim.Chunk)

	// BarrierNurseryFrom/To, when set, exempt stores into that region
	// from the card-marking barrier: a nursery is scavenged (and, during
	// old-space cycles, rescanned) wholesale, so dirtying its cards is
	// pure overhead. Zero values disable the filter.
	BarrierNurseryFrom, BarrierNurseryTo heapsim.Addr

	// OOMs counts allocations that failed even after collection.
	OOMs int64
}

// NewRuntime creates a runtime over a fresh heap of heapBytes.
func NewRuntime(heapBytes int64, cfg Config, costs machine.Costs) *Runtime {
	h := heapsim.NewHeap(heapBytes)
	return &Runtime{
		Heap:  h,
		Cards: cardtable.New(h.SizeWords()),
		Costs: costs,
		Cfg:   cfg,
	}
}

// SetCollector attaches the collector. It must be called before any
// allocation.
func (rt *Runtime) SetCollector(c Collector) { rt.collector = c }

// Collector returns the attached collector.
func (rt *Runtime) Collector() Collector { return rt.collector }

// Thread is one mutator thread's runtime state.
type Thread struct {
	ID    int
	Cache *heapsim.AllocCache

	// Stack is the thread's simulated stack: every entry is a root. The
	// owning workload pushes and pops references as it works.
	Stack []heapsim.Addr

	// StackScanned marks that this thread's stack was scanned during the
	// current concurrent phase (each stack is scanned once, at the
	// thread's first allocation after the phase starts — Section 2.1).
	StackScanned bool

	// BytesAllocated counts this thread's allocation, for the workload
	// statistics and the tracing-rate bookkeeping.
	BytesAllocated int64

	// lastPaced is the BytesAllocated value at this thread's previous
	// pacing event, so each hook receives the exact allocation since the
	// last one regardless of how large the carved cache actually was.
	lastPaced int64
}

// paceDelta returns (and consumes) the allocation since the last pacing
// event.
func (t *Thread) paceDelta() int64 {
	d := t.BytesAllocated - t.lastPaced
	t.lastPaced = t.BytesAllocated
	return d
}

// NewThread registers a new mutator thread.
func (rt *Runtime) NewThread() *Thread {
	t := &Thread{ID: len(rt.threads), Cache: heapsim.NewAllocCache(rt.Heap)}
	t.Cache.ReturnTail = rt.CacheTailSink
	rt.threads = append(rt.threads, t)
	return t
}

// Threads returns the registered threads.
func (rt *Runtime) Threads() []*Thread { return rt.threads }

// AddGlobal registers a global root cell initialized to Nil and returns its
// index.
func (rt *Runtime) AddGlobal() int {
	rt.globals = append(rt.globals, heapsim.Nil)
	return len(rt.globals) - 1
}

// Global reads global root i.
func (rt *Runtime) Global(i int) heapsim.Addr { return rt.globals[i] }

// SetGlobal stores a reference into global root i. Globals are rescanned
// during the final stop-the-world phase, so no barrier is needed, but the
// store is charged like any reference store.
func (rt *Runtime) SetGlobal(ctx *machine.Context, i int, v heapsim.Addr) {
	rt.globals[i] = v
	ctx.Charge(rt.Costs.WriteBarrier)
}

// Globals returns the global root cells.
func (rt *Runtime) Globals() []heapsim.Addr { return rt.globals }

// Alloc allocates an object with the given reference and payload slot
// counts on behalf of th, charging the mutator's application work, running
// the collector's pacing hooks, and triggering collection on allocation
// failure. It panics on out-of-memory (the simulation is deterministic, so
// an OOM means the experiment is misconfigured).
func (rt *Runtime) Alloc(ctx *machine.Context, th *Thread, refs, payload int) heapsim.Addr {
	words := heapsim.ObjectWords(refs, payload)
	bytes := int64(words) * heapsim.WordBytes
	ctx.Charge(rt.Costs.AllocHeader + machine.ForBytes(rt.Costs.MutatorWorkPerAllocByte, bytes))
	th.BytesAllocated += bytes

	if bytes >= int64(rt.Cfg.LargeBytes) {
		return rt.allocLarge(ctx, th, words, refs, bytes)
	}
	if a := th.Cache.TryAlloc(words, refs); a != heapsim.Nil {
		return a
	}
	// Cache exhausted: this is a GC point and a pacing point. The hook
	// receives the exact bytes allocated since the previous pacing event
	// (fragmentation can make actual caches much smaller than nominal).
	rt.collector.OnCacheRefill(ctx, th, th.paceDelta())
	if !rt.refillCache(ctx, th, words) {
		// Two failure rounds: under lazy sweep the first may only
		// complete the deferred sweep; the second runs a collection.
		ok := false
		for attempt := 0; attempt < 2 && !ok; attempt++ {
			rt.collector.OnAllocFailure(ctx, th)
			ok = rt.refillCache(ctx, th, words)
		}
		if !ok {
			rt.oom(ctx, bytes)
			return heapsim.Nil
		}
	}
	a := th.Cache.TryAlloc(words, refs)
	if a == heapsim.Nil {
		rt.oom(ctx, bytes)
	}
	return a
}

// refillCache carves a new allocation cache; it fails when the heap cannot
// provide a chunk that fits the pending allocation.
func (rt *Runtime) refillCache(ctx *machine.Context, th *Thread, needWords int) bool {
	ctx.Charge(rt.Costs.CacheRefill)
	want := rt.Cfg.CacheBytes / heapsim.WordBytes
	carve := rt.CacheSource
	if carve == nil {
		carve = rt.Heap.CarveCache
	}
	chunk, ok := carve(want)
	if !ok {
		return false
	}
	if chunk.Words < needWords {
		// Too small to satisfy even the pending allocation; put it back
		// and report failure so a collection runs.
		if rt.CacheTailSink != nil {
			rt.CacheTailSink(chunk)
		} else {
			rt.Heap.ReturnChunk(chunk)
		}
		return false
	}
	th.Cache.Refill(chunk)
	return true
}

func (rt *Runtime) allocLarge(ctx *machine.Context, th *Thread, words, refs int, bytes int64) heapsim.Addr {
	rt.collector.OnLargeAlloc(ctx, th, th.paceDelta())
	if a := rt.Heap.AllocLarge(words, refs); a != heapsim.Nil {
		return a
	}
	for attempt := 0; attempt < 2; attempt++ {
		rt.collector.OnAllocFailure(ctx, th)
		if a := rt.Heap.AllocLarge(words, refs); a != heapsim.Nil {
			return a
		}
	}
	rt.oom(ctx, bytes)
	return heapsim.Nil
}

func (rt *Runtime) oom(ctx *machine.Context, bytes int64) {
	rt.OOMs++
	panic(fmt.Sprintf("mutator: out of memory allocating %d bytes at %v (heap %d MB, free %d KB, largest chunk %d KB)",
		bytes, ctx.Now(), rt.Heap.SizeBytes()>>20, rt.Heap.FreeBytes()>>10,
		int64(rt.Heap.LargestFreeChunk())*heapsim.WordBytes>>10))
}

// SetRef stores a reference into obj's slot i, executing the write barrier:
// store the cell, then dirty the card — with no fence between them
// (Sections 2, 5.3). The card store only happens while a concurrent phase
// is active.
func (rt *Runtime) SetRef(ctx *machine.Context, obj heapsim.Addr, i int, v heapsim.Addr) {
	rt.Heap.SetRefRaw(obj, i, v)
	if rt.collector.BarrierActive() &&
		(obj < rt.BarrierNurseryFrom || obj >= rt.BarrierNurseryTo) {
		rt.Cards.DirtyObject(obj)
	}
	ctx.Charge(rt.Costs.WriteBarrier)
}

// RetireAllCaches flushes and retires every thread's allocation cache. The
// collectors call it when stopping the world so that sweep sees a heap
// where every word is either a published object or free space.
func (rt *Runtime) RetireAllCaches() {
	for _, t := range rt.threads {
		t.Cache.Retire()
	}
}

// ForEachRoot calls fn for every root: all global cells and every slot of
// every thread stack. Nil entries are skipped.
func (rt *Runtime) ForEachRoot(fn func(heapsim.Addr)) {
	for _, g := range rt.globals {
		if g != heapsim.Nil {
			fn(g)
		}
	}
	for _, t := range rt.threads {
		for _, a := range t.Stack {
			if a != heapsim.Nil {
				fn(a)
			}
		}
	}
}

// RootCount returns the total number of root slots (for stack-scan cost
// accounting).
func (rt *Runtime) RootCount() int {
	n := len(rt.globals)
	for _, t := range rt.threads {
		n += len(t.Stack)
	}
	return n
}

package weakmem

import "math/rand"

// This file expresses the three weak-ordering hazards of Section 5 as
// explorable two-CPU programs. Each trial runs one adversarial drain
// schedule (chosen by seed) and reports whether the anomaly the paper
// describes was observed. The corresponding tests assert that with the
// paper's fences no seed produces an anomaly, and with the fences removed
// some seed does.

// Result summarizes an exploration over many drain schedules.
type Result struct {
	Trials    int
	Anomalies int
	Fences    int // total fences executed across trials
}

// Explore runs trial for seeds [0, n) and accumulates the outcome.
func Explore(n int, trial func(seed int64) (anomaly bool, fences int)) Result {
	var r Result
	for s := 0; s < n; s++ {
		anomaly, fences := trial(int64(s))
		r.Trials++
		if anomaly {
			r.Anomalies++
		}
		r.Fences += fences
	}
	return r
}

// PacketHandoffTrial models Section 5.1: a producer fills a work packet
// (entries) and publishes it by storing the packet pointer into a pool
// (head). The consumer that observes the head must see every entry. The
// paper's fix is one fence before returning the packet; the consumer needs
// none because its loads are data-dependent on the head load.
func PacketHandoffTrial(seed int64, producerFence bool) (anomaly bool, fences int) {
	const (
		nEntries = 8
		headAddr = nEntries
		sentinel = 100
	)
	m := New(nEntries+1, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x9e3779b9))
	producer := m.CPU()
	consumer := m.CPU()

	steps := make([]func(), 0, nEntries+2)
	for i := 0; i < nEntries; i++ {
		i := i
		steps = append(steps, func() { producer.Store(i, sentinel+int64(i)) })
	}
	if producerFence {
		steps = append(steps, func() { producer.Fence() })
	}
	steps = append(steps, func() { producer.Store(headAddr, 1) })

	for _, step := range steps {
		step()
		m.DrainRandom(rng.Intn(3))
		if consumer.Load(headAddr) == 1 {
			for i := 0; i < nEntries; i++ {
				if consumer.Load(i) != sentinel+int64(i) {
					return true, producer.Fences + consumer.Fences
				}
			}
		}
	}
	m.DrainAll()
	return false, producer.Fences + consumer.Fences
}

// AllocPublishTrial models Section 5.2: a mutator initializes a batch of
// objects from its allocation cache and then publishes their allocation
// bits; a concurrent tracer must never trace an object whose initializing
// stores are not yet visible. The paper's fix is one fence per batch on the
// mutator side (and a matching fence on the tracer side between testing the
// allocation bits of a whole input packet and tracing, which this
// store-order model represents but cannot falsify).
func AllocPublishTrial(seed int64, mutatorFence bool) (anomaly bool, fences int) {
	const (
		objWords = 4
		bitAddr  = objWords
		initVal  = 7 // cells start at 0 = "uninitialized garbage"
	)
	m := New(objWords+1, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x51ed2701))
	mutator := m.CPU()
	tracer := m.CPU()

	steps := make([]func(), 0, objWords+2)
	for i := 0; i < objWords; i++ {
		i := i
		steps = append(steps, func() { mutator.Store(i, initVal) })
	}
	if mutatorFence {
		steps = append(steps, func() { mutator.Fence() })
	}
	steps = append(steps, func() { mutator.Store(bitAddr, 1) })

	for _, step := range steps {
		step()
		m.DrainRandom(rng.Intn(3))
		// Tracer protocol: test the allocation bit, fence, then trace.
		if tracer.Load(bitAddr) == 1 {
			tracer.Fence()
			for i := 0; i < objWords; i++ {
				if tracer.Load(i) != initVal {
					return true, mutator.Fences + tracer.Fences
				}
			}
		}
	}
	m.DrainAll()
	return false, mutator.Fences + tracer.Fences
}

// CardCleanTrial models Section 5.3: the write barrier stores a reference
// into a slot and then dirties the card, with no fence between them. The
// collector registers-and-clears dirty indicators, optionally forces every
// mutator through a fence, and only then cleans. Without the forced fence a
// drain schedule exists where the collector cleans the card yet misses the
// reference, and the card ends up clean — the object would be collected.
func CardCleanTrial(seed int64, forceMutatorFence bool) (anomaly bool, fences int) {
	const (
		slotAddr  = 0
		dirtyAddr = 1
		refVal    = 42
	)
	m := New(2, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x2c1b3c6d))
	mutator := m.CPU()
	collector := m.CPU()

	// Write barrier: slot store then card store, no fence.
	mutator.Store(slotAddr, refVal)
	mutator.Store(dirtyAddr, 1)

	for round := 0; round < 16; round++ {
		m.DrainRandom(rng.Intn(3))
		if collector.Load(dirtyAddr) != 1 {
			continue
		}
		// Step 1: register and clear the indicator. The collector's own
		// store must be visible before cleaning; it fences (cheap: once
		// per registration pass, not per barrier).
		collector.Store(dirtyAddr, 0)
		collector.Fence()
		// Step 2: force the mutator through a fence.
		if forceMutatorFence {
			mutator.Fence()
		}
		// Step 3: clean the card — scan the slot.
		sawRef := collector.Load(slotAddr) == refVal
		// End of cycle: let everything drain and see what the world
		// looks like. The anomaly is a missed reference with a clean
		// card: nothing will ever rescan the slot.
		m.DrainAll()
		cardDirty := collector.Load(dirtyAddr) == 1
		return !sawRef && !cardDirty, mutator.Fences + collector.Fences
	}
	m.DrainAll()
	return false, mutator.Fences + collector.Fences
}

package weakmem

import "math/rand"

// Litmus is a two-thread memory-model test in the classic litmus style:
// each thread runs a short program of steps, the adversary interleaves
// steps and drains store buffers randomly, and the outcome predicate is
// evaluated on the observed values. Exploring many seeds shows which
// outcomes the model permits — the standard way to characterize a memory
// model, and the frame the Section 5 protocols are verified in.
type Litmus struct {
	Name string
	// Cells is the shared-memory size.
	Cells int
	// T0 and T1 are the two programs; each step gets its CPU and an
	// observation vector to record loads into.
	T0, T1 []func(c *CPU, obs []int64)
	// Outcome evaluates the observations (T0's then T1's, concatenated).
	Outcome func(obs []int64) bool
	// ObsLen is the observation vector length per thread.
	ObsLen int
}

// Run executes the litmus test once under the given seed and reports
// whether the outcome predicate held.
func (l Litmus) Run(seed int64) bool {
	m := New(l.Cells, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x7f4a7c15))
	c0, c1 := m.CPU(), m.CPU()
	obs0 := make([]int64, l.ObsLen)
	obs1 := make([]int64, l.ObsLen)
	i0, i1 := 0, 0
	for i0 < len(l.T0) || i1 < len(l.T1) {
		// Randomly interleave the two programs, draining buffers between
		// steps.
		pick0 := i1 >= len(l.T1) || (i0 < len(l.T0) && rng.Intn(2) == 0)
		if pick0 {
			l.T0[i0](c0, obs0)
			i0++
		} else {
			l.T1[i1](c1, obs1)
			i1++
		}
		m.DrainRandom(rng.Intn(3))
	}
	m.DrainAll()
	return l.Outcome(append(append([]int64(nil), obs0...), obs1...))
}

// Permitted explores n seeds and reports how many runs satisfied the
// outcome predicate.
func (l Litmus) Permitted(n int) int {
	count := 0
	for s := 0; s < n; s++ {
		if l.Run(int64(s)) {
			count++
		}
	}
	return count
}

// MessagePassing is the canonical MP litmus test: T0 stores data then flag;
// T1 reads flag then data. The weak outcome (flag observed set but data
// observed stale) is permitted without fences and forbidden when T0 fences
// between its stores. withFence selects the variant.
func MessagePassing(withFence bool) Litmus {
	const (
		data = 0
		flag = 1
	)
	t0 := []func(c *CPU, obs []int64){
		func(c *CPU, _ []int64) { c.Store(data, 1) },
	}
	if withFence {
		t0 = append(t0, func(c *CPU, _ []int64) { c.Fence() })
	}
	t0 = append(t0, func(c *CPU, _ []int64) { c.Store(flag, 1) })
	return Litmus{
		Name:   "MP",
		Cells:  2,
		ObsLen: 2,
		T0:     t0,
		T1: []func(c *CPU, obs []int64){
			func(c *CPU, obs []int64) { obs[0] = c.Load(flag) },
			func(c *CPU, obs []int64) { obs[1] = c.Load(data) },
		},
		// The weak outcome: flag seen set, data seen unset.
		Outcome: func(obs []int64) bool { return obs[2] == 1 && obs[3] == 0 },
	}
}

// StoreBuffering is the canonical SB litmus test: each thread stores its
// own cell then reads the other's. The weak outcome (both read zero) is
// the signature of store buffers; fences between each thread's store and
// load forbid it.
func StoreBuffering(withFences bool) Litmus {
	const (
		x = 0
		y = 1
	)
	prog := func(mine, theirs int, slot int) []func(c *CPU, obs []int64) {
		p := []func(c *CPU, obs []int64){
			func(c *CPU, _ []int64) { c.Store(mine, 1) },
		}
		if withFences {
			p = append(p, func(c *CPU, _ []int64) { c.Fence() })
		}
		p = append(p, func(c *CPU, obs []int64) { obs[slot] = c.Load(theirs) })
		return p
	}
	return Litmus{
		Name:   "SB",
		Cells:  2,
		ObsLen: 1,
		T0:     prog(x, y, 0),
		T1:     prog(y, x, 0),
		// The weak outcome: both threads read the other's old value.
		Outcome: func(obs []int64) bool { return obs[0] == 0 && obs[1] == 0 },
	}
}

// Package weakmem simulates a weakly-ordered shared memory so the fence
// protocols of Section 5 of the paper can be demonstrated and tested.
//
// Model: every CPU has a store buffer. Stores enter the buffer in program
// order; they drain to shared memory at arbitrary later moments and may
// drain out of order with respect to other locations (per-location program
// order is preserved, as all weak-ordering architectures guarantee). Loads
// first snoop the CPU's own buffer (store-to-load forwarding) and otherwise
// read shared memory. Fence drains the buffer completely, making all
// preceding stores globally visible before the fence returns.
//
// The model covers store reordering, which is what all three anomalies in
// the paper are built from: stale packet contents (5.1), tracing an
// uninitialized object (5.2), and a cleaned card that misses an update
// (5.3). Load-side reordering is not modelled; the consumer-side fences the
// paper discusses are represented so they can be counted, but their absence
// cannot produce an anomaly in this model. Tests therefore exercise the
// producer-side direction of each protocol both ways: with the fence no
// interleaving shows the anomaly, and with the fence removed an adversarial
// drain schedule finds it.
package weakmem

import (
	"fmt"
	"math/rand"
)

// pendingStore is one entry of a store buffer.
type pendingStore struct {
	addr int
	val  int64
}

// Memory is a shared memory of fixed size with some number of CPUs.
type Memory struct {
	cells []int64
	cpus  []*CPU
	rng   *rand.Rand
}

// New creates a memory of size cells, all zero, using the given seed for
// drain scheduling decisions.
func New(size int, seed int64) *Memory {
	return &Memory{
		cells: make([]int64, size),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// CPU adds a processor with an empty store buffer.
func (m *Memory) CPU() *CPU {
	c := &CPU{mem: m, id: len(m.cpus)}
	m.cpus = append(m.cpus, c)
	return c
}

// DrainRandom makes up to n pending stores (across all CPUs) visible, each
// chosen uniformly among the drainable entries: an entry is drainable if no
// older store to the same location from the same CPU is still buffered.
// This is the adversary that produces weakly-ordered behaviours.
func (m *Memory) DrainRandom(n int) {
	for i := 0; i < n; i++ {
		type choice struct {
			cpu *CPU
			idx int
		}
		var choices []choice
		for _, c := range m.cpus {
			seen := make(map[int]bool)
			for j, s := range c.buf {
				if !seen[s.addr] {
					choices = append(choices, choice{c, j})
				}
				seen[s.addr] = true
			}
		}
		if len(choices) == 0 {
			return
		}
		ch := choices[m.rng.Intn(len(choices))]
		ch.cpu.drainIndex(ch.idx)
	}
}

// DrainAll flushes every store buffer (end-of-test quiescence). Unlike
// Fence it is scheduler machinery, not a program action, so it does not
// count toward any CPU's fence total.
func (m *Memory) DrainAll() {
	for _, c := range m.cpus {
		c.drainAll()
	}
}

// read returns the globally visible value of a cell.
func (m *Memory) read(addr int) int64 {
	m.check(addr)
	return m.cells[addr]
}

func (m *Memory) check(addr int) {
	if addr < 0 || addr >= len(m.cells) {
		panic(fmt.Sprintf("weakmem: address %d out of range [0,%d)", addr, len(m.cells)))
	}
}

// CPU is one processor with a private store buffer.
type CPU struct {
	mem    *Memory
	id     int
	buf    []pendingStore
	Fences int // fences this CPU has executed (for the Section 5 accounting)
}

// Store buffers a store; it becomes globally visible at some later drain.
func (c *CPU) Store(addr int, val int64) {
	c.mem.check(addr)
	c.buf = append(c.buf, pendingStore{addr, val})
}

// Load returns this CPU's view of a cell: the youngest buffered store to it,
// if any, else the globally visible value.
func (c *CPU) Load(addr int) int64 {
	c.mem.check(addr)
	for j := len(c.buf) - 1; j >= 0; j-- {
		if c.buf[j].addr == addr {
			return c.buf[j].val
		}
	}
	return c.mem.read(addr)
}

// Fence makes every buffered store globally visible, in program order, and
// counts itself.
func (c *CPU) Fence() {
	c.drainAll()
	c.Fences++
}

func (c *CPU) drainAll() {
	for _, s := range c.buf {
		c.mem.cells[s.addr] = s.val
	}
	c.buf = c.buf[:0]
}

// Pending returns the number of stores still buffered.
func (c *CPU) Pending() int { return len(c.buf) }

// drainIndex makes the store at buffer index j visible and removes it.
// Callers guarantee no older store to the same address remains buffered.
func (c *CPU) drainIndex(j int) {
	s := c.buf[j]
	c.mem.cells[s.addr] = s.val
	c.buf = append(c.buf[:j], c.buf[j+1:]...)
}

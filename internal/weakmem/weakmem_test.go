package weakmem

import (
	"testing"
	"testing/quick"
)

func TestStoreBufferForwarding(t *testing.T) {
	m := New(4, 1)
	c := m.CPU()
	c.Store(0, 11)
	if got := c.Load(0); got != 11 {
		t.Fatalf("own Load = %d, want 11 (store-to-load forwarding)", got)
	}
	other := m.CPU()
	if got := other.Load(0); got != 0 {
		t.Fatalf("other CPU sees %d before drain, want 0", got)
	}
	c.Fence()
	if got := other.Load(0); got != 11 {
		t.Fatalf("other CPU sees %d after fence, want 11", got)
	}
	if c.Fences != 1 {
		t.Fatalf("Fences = %d, want 1", c.Fences)
	}
}

func TestSameLocationOrderPreserved(t *testing.T) {
	// Per-location program order must hold under any drain schedule.
	f := func(seed int64) bool {
		m := New(1, seed)
		c := m.CPU()
		c.Store(0, 1)
		c.Store(0, 2)
		c.Store(0, 3)
		m.DrainRandom(1)
		v1 := m.read(0)
		m.DrainRandom(1)
		v2 := m.read(0)
		m.DrainAll()
		v3 := m.read(0)
		// Visible values must be a non-decreasing prefix walk 0,1,2,3.
		return v1 <= v2 && v2 <= v3 && v3 == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentLocationsCanReorder(t *testing.T) {
	// The model must be able to exhibit weak ordering at all: for some
	// seed the second store becomes visible before the first.
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		m := New(2, seed)
		c := m.CPU()
		c.Store(0, 1)
		c.Store(1, 1)
		m.DrainRandom(1)
		if m.read(1) == 1 && m.read(0) == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed reordered independent stores; model is too strong")
	}
}

func TestLoadSeesYoungestOwnStore(t *testing.T) {
	m := New(2, 3)
	c := m.CPU()
	c.Store(0, 1)
	c.Store(0, 2)
	if got := c.Load(0); got != 2 {
		t.Fatalf("Load = %d, want youngest buffered store 2", got)
	}
}

func TestPendingAndDrainAll(t *testing.T) {
	m := New(4, 9)
	c := m.CPU()
	c.Store(0, 1)
	c.Store(1, 2)
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", c.Pending())
	}
	m.DrainAll()
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after DrainAll", c.Pending())
	}
	if m.read(0) != 1 || m.read(1) != 2 {
		t.Fatal("DrainAll lost stores")
	}
}

func TestBoundsPanic(t *testing.T) {
	m := New(2, 0)
	c := m.CPU()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Store(2, 1)
}

const exploreTrials = 400

// Each protocol: with the paper's fence, no drain schedule shows the
// anomaly; with the fence removed, at least one schedule does. The "without"
// direction proves the test has teeth (the fences are necessary, not
// decorative).

func TestPacketHandoffProtocol(t *testing.T) {
	withFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return PacketHandoffTrial(seed, true)
	})
	if withFence.Anomalies != 0 {
		t.Fatalf("fenced packet handoff showed %d anomalies", withFence.Anomalies)
	}
	withoutFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return PacketHandoffTrial(seed, false)
	})
	if withoutFence.Anomalies == 0 {
		t.Fatal("unfenced packet handoff never failed; adversary too weak")
	}
}

func TestAllocPublishProtocol(t *testing.T) {
	withFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return AllocPublishTrial(seed, true)
	})
	if withFence.Anomalies != 0 {
		t.Fatalf("fenced allocation publish showed %d anomalies", withFence.Anomalies)
	}
	withoutFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return AllocPublishTrial(seed, false)
	})
	if withoutFence.Anomalies == 0 {
		t.Fatal("unfenced allocation publish never failed; adversary too weak")
	}
}

func TestCardCleanProtocol(t *testing.T) {
	withFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return CardCleanTrial(seed, true)
	})
	if withFence.Anomalies != 0 {
		t.Fatalf("forced-fence card cleaning showed %d anomalies", withFence.Anomalies)
	}
	withoutFence := Explore(exploreTrials, func(seed int64) (bool, int) {
		return CardCleanTrial(seed, false)
	})
	if withoutFence.Anomalies == 0 {
		t.Fatal("card cleaning without the forced fence never failed; adversary too weak")
	}
}

// The write barrier itself must execute zero fences in every schedule: the
// whole point of Section 5.3 is moving the cost to the collector.
func TestWriteBarrierIsFenceFree(t *testing.T) {
	r := Explore(100, func(seed int64) (bool, int) {
		m := New(2, seed)
		mutator := m.CPU()
		mutator.Store(0, 42) // slot
		mutator.Store(1, 1)  // card
		m.DrainAll()
		return false, mutator.Fences
	})
	if r.Fences != 0 {
		t.Fatalf("write barrier executed %d fences, want 0", r.Fences)
	}
}

const litmusTrials = 500

func TestMessagePassingLitmus(t *testing.T) {
	// Without a fence the model must permit the weak MP outcome; with the
	// fence it must forbid it. This characterizes the store-buffer model
	// against the textbook litmus test.
	if got := MessagePassing(false).Permitted(litmusTrials); got == 0 {
		t.Fatal("weak MP outcome never observed without fences; model too strong")
	}
	if got := MessagePassing(true).Permitted(litmusTrials); got != 0 {
		t.Fatalf("weak MP outcome observed %d times despite the fence", got)
	}
}

func TestStoreBufferingLitmus(t *testing.T) {
	if got := StoreBuffering(false).Permitted(litmusTrials); got == 0 {
		t.Fatal("weak SB outcome never observed without fences; model too strong")
	}
	if got := StoreBuffering(true).Permitted(litmusTrials); got != 0 {
		t.Fatalf("weak SB outcome observed %d times despite fences", got)
	}
}

package server

import (
	"fmt"
	"time"

	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
)

// DefaultWindow is the bucketing interval for the per-window worst request
// latency — the series gcstats -latency correlates against GC pauses.
const DefaultWindow = 20 * time.Millisecond

// DefaultLatencyBounds returns the shared request-latency histogram bounds:
// geometric from 1µs to beyond 2s with ratio 1.25 (~4 buckets per octave,
// coarse enough to stay one JSONL line, fine enough that p999 is a tight
// upper bound). Every per-client recorder uses the same bounds so their
// histograms merge exactly.
func DefaultLatencyBounds() []float64 {
	var bounds []float64
	for b := 1000.0; b < 2.5e9; b *= 1.25 {
		bounds = append(bounds, b)
	}
	return bounds
}

// recorder accumulates one client's request measurements. Owned by that
// client's goroutine for the whole run; merged by LoadGen.Wait afterwards —
// the unsynchronized telemetry Registry is never touched mid-run.
type recorder struct {
	hist *stats.Histogram

	issued, completed, failed int64
	hits, misses              int64
	puts, gets, dels, touches int64
	churns                    int64
	shed, evicted, retries    int64
}

func newRecorder(bounds []float64) *recorder {
	return &recorder{hist: stats.NewHistogram(bounds...)}
}

// Results is the load generator's merged end-of-run accounting.
type Results struct {
	Issued    int64 // requests started
	Completed int64 // requests finished successfully
	Failed    int64 // requests failed (allocation failure under heap pressure)

	Hits, Misses                 int64 // GET outcomes
	Puts, Gets, Deletes, Touches int64 // per-op counts
	Churns                       int64 // connection churn events (sessions dropped)

	// Admission-control outcomes. Shed requests are also counted in Failed —
	// the issued == completed + failed identity holds with or without
	// admission control; these break the failures down by cause.
	Shed    int64 // requests refused by admission control (ErrOverloaded)
	Evicted int64 // store entries evicted to recover from heap exhaustion
	Retries int64 // backoff-and-retry rounds shed PUTs went through

	// Hist is the merged request-latency histogram (nanoseconds).
	Hist *stats.Histogram
	// WindowNs buckets WindowMax: WindowMax[i] is the worst request latency
	// observed in window [i*WindowNs, (i+1)*WindowNs) of the run, 0 when the
	// window saw no request (burst-off phases, post-run tail).
	WindowNs  int64
	WindowMax []int64
}

// Flush copies the results into the telemetry registry as the server.*
// counters, the server.req_ns histogram and the server.req_window_max_ns
// gauge (one sample per non-empty window, stamped at the window's end).
// Driver-only, after the run — the Registry is unsynchronized.
func (r Results) Flush(reg *telemetry.Registry) {
	set := func(name string, v int64) { reg.Counter(name).Set(v) }
	set("server.ops", r.Completed)
	set("server.issued", r.Issued)
	set("server.failed", r.Failed)
	set("server.hits", r.Hits)
	set("server.misses", r.Misses)
	set("server.puts", r.Puts)
	set("server.gets", r.Gets)
	set("server.deletes", r.Deletes)
	set("server.touches", r.Touches)
	set("server.churn", r.Churns)
	set("server.shed", r.Shed)
	set("server.evicted", r.Evicted)
	set("server.retries", r.Retries)
	set("server.window_ns", r.WindowNs)
	reg.Histogram("server.req_ns", r.Hist.Bounds()...).Hist().Merge(r.Hist)
	g := reg.Gauge("server.req_window_max_ns")
	for i, v := range r.WindowMax {
		if v > 0 {
			g.Sample(vtime.Time(int64(i+1)*r.WindowNs), float64(v))
		}
	}
}

// String renders the one-line summary gcserve prints.
func (r Results) String() string {
	out := fmt.Sprintf(
		"requests: issued %d  completed %d  failed %d  (put %d  get %d hit/miss %d/%d  delete %d  touch %d  churn %d)",
		r.Issued, r.Completed, r.Failed, r.Puts, r.Gets, r.Hits, r.Misses, r.Deletes, r.Touches, r.Churns)
	if r.Shed+r.Evicted+r.Retries > 0 {
		out += fmt.Sprintf("\nadmission: shed %d  evicted %d  retries %d", r.Shed, r.Evicted, r.Retries)
	}
	if r.Hist.N() > 0 {
		out += fmt.Sprintf("\nlatency: p50 %s  p99 %s  p999 %s  max %s  mean %s",
			fmtNs(r.Hist.Quantile(stats.P50)), fmtNs(r.Hist.Quantile(stats.P99)),
			fmtNs(r.Hist.Quantile(stats.P999)), fmtNs(r.Hist.Max()), fmtNs(r.Hist.Mean()))
	}
	return out
}

// fmtNs renders nanoseconds human-readably.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

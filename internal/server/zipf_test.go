package server

import (
	"math"
	"testing"
)

// Distribution shape: over many draws the hottest key's observed frequency
// must sit within tolerance of the theoretical 1/H(n,theta), and the ranked
// frequencies must be monotone-ish (hot keys hotter than cold ones).
func TestZipfDistributionShape(t *testing.T) {
	const (
		n     = 100
		theta = 0.99
		draws = 200_000
	)
	z := NewZipf(12345, n, theta)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	top := float64(counts[0]) / draws
	want := z.TopFraction()
	if math.Abs(top-want) > 0.10*want {
		t.Fatalf("top-1 frequency %.4f outside ±10%% of theoretical %.4f", top, want)
	}
	// Coarse monotonicity: the hot decile must out-draw the cold decile by a
	// wide margin (pointwise monotonicity is too noisy at this sample size).
	hot, cold := 0, 0
	for k := 0; k < n/10; k++ {
		hot += counts[k]
		cold += counts[n-1-k]
	}
	if hot < 5*cold {
		t.Fatalf("hot decile %d not dominating cold decile %d", hot, cold)
	}
	// Every key should be reachable at this sample size.
	for k, c := range counts {
		if c == 0 {
			t.Fatalf("key %d never drawn in %d draws", k, draws)
		}
	}
}

// Seed stability: the exact draw sequence is pinned. If this golden breaks,
// the generator changed and every recorded benchmark's key sequence with it.
func TestZipfSeedStability(t *testing.T) {
	z := NewZipf(42, 16, 0.9)
	want := []uint64{7, 0, 1, 1, 0, 10, 0, 8, 1, 4, 0, 2}
	for i, w := range want {
		if got := z.Next(); got != w {
			t.Fatalf("draw %d: got %d, want %d", i, got, w)
		}
	}
	// Same seed, fresh generator: identical prefix.
	z2 := NewZipf(42, 16, 0.9)
	if g := z2.Next(); g != want[0] {
		t.Fatalf("fresh generator diverged: %d vs %d", g, want[0])
	}
	// Different seed: the prefix must differ somewhere.
	z3 := NewZipf(43, 16, 0.9)
	same := true
	for _, w := range want {
		if z3.Next() != w {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed 43 reproduced seed 42's draws")
	}
}

func TestZipfThetaZeroIsUniformish(t *testing.T) {
	const n, draws = 8, 80_000
	z := NewZipf(9, n, 0)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	for k, c := range counts {
		f := float64(c) / draws
		if math.Abs(f-1.0/n) > 0.02 {
			t.Fatalf("theta=0 key %d frequency %.4f, want ~%.4f", k, f, 1.0/n)
		}
	}
}

func TestZipfValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(1, 0, 1) },
		func() { NewZipf(1, 10, -1) },
		func() { NewZipf(1, 10, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad zipf params did not panic")
				}
			}()
			f()
		}()
	}
}

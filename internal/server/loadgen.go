package server

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcgc/internal/heapsim"
	"mcgc/internal/live"
)

// Client root slot conventions. Slot rootSession holds the head of the
// client's session-event chain (dropped on churn — the garbage source);
// slot rootPin holds the last GET hit (the reader-holds-reference root the
// collector must honor). LoadGen therefore needs RootsPerMutator >= 2.
const (
	rootSession = 0
	rootPin     = 1

	// sessionCap bounds the session-event chain; touches past the cap
	// truncate the tail so sessions don't grow without bound.
	sessionCap = 16

	// clientYieldEvery inserts a runtime.Gosched into the request loop so a
	// few hundred clients stay fair on small GOMAXPROCS hosts.
	clientYieldEvery = 64
)

// LoadConfig shapes the closed-loop load. Zero fields take defaults.
type LoadConfig struct {
	// Clients is the number of concurrent client goroutines; each drives one
	// of the engine's external mutators, so it must equal Config.ExtMutators.
	Clients int
	// Keys is the key-space size (default 4096) and Theta its Zipfian skew
	// (default 0.99, the classic hot-key profile).
	Keys  int
	Theta float64
	// Request mix: fractions of GETs, DELETEs and session touches; the
	// remainder are PUTs. Defaults 0.70 / 0.05 / 0.10 (so 15% PUTs).
	ReadFrac   float64
	DeleteFrac float64
	TouchFrac  float64
	// Burst duty cycle: when BurstPeriod > 0 and BurstDuty < 1, all clients
	// issue requests only during the first BurstDuty fraction of each period
	// (phase-locked to the run start, so load arrives in synchronized bursts)
	// and idle — still polling safepoints — for the rest.
	BurstPeriod time.Duration
	BurstDuty   float64
	// ChurnOps is the mean number of completed requests between connection
	// churn events, where a client drops every root it holds (its session
	// chain and pin become garbage) and reconnects fresh. 0 disables churn.
	ChurnOps int
	// Admission is the overload-shedding policy (admission.go). The zero
	// value keeps it disabled: requests fail only on heap exhaustion.
	Admission AdmissionConfig
	// WindowObserver, when non-nil, receives each completed latency
	// window's worst request latency (nanoseconds) live during the run — a
	// feeder goroutine walks the per-window maxima one window behind the
	// clock and skips empty windows. This is the feedback signal for the
	// SLO pacing policy: wire it to pacing.LatencyObserver.ObserveLatency.
	// The callback must be safe for concurrent use with the run.
	WindowObserver func(maxNs int64)
	// Seed derives each client's private request stream.
	Seed uint64
	// Duration should match the engine run length; it sizes the
	// windowed-max-latency array. Window defaults to DefaultWindow.
	Duration time.Duration
	Window   time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Keys == 0 {
		c.Keys = 4096
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.ReadFrac == 0 && c.DeleteFrac == 0 && c.TouchFrac == 0 {
		c.ReadFrac, c.DeleteFrac, c.TouchFrac = 0.70, 0.05, 0.10
	}
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	return c
}

// LoadGen runs Clients request loops against a Store, each on its own
// external mutator, and reduces their measurements to Results.
type LoadGen struct {
	cfg     LoadConfig
	eng     *live.Engine
	store   *Store
	adm     admission
	bounds  []float64
	recs    []*recorder
	windows []atomic.Int64
	start   time.Time
	wg      sync.WaitGroup
	// feedDone closes when the window-feeder goroutine (WindowObserver set)
	// has exited; nil when no observer is wired.
	feedDone chan struct{}
}

// NewLoadGen wires a generator to an engine and store. Call Start before
// eng.Run (the engine waits for every external mutator to Retire, which the
// clients only do once ShuttingDown flips) and Wait after it returns.
func NewLoadGen(eng *live.Engine, store *Store, cfg LoadConfig) *LoadGen {
	cfg = cfg.withDefaults()
	if cfg.Clients < 1 {
		panic(fmt.Sprintf("server: %d clients", cfg.Clients))
	}
	for _, f := range []float64{cfg.ReadFrac, cfg.DeleteFrac, cfg.TouchFrac, cfg.BurstDuty} {
		if f < 0 || f > 1 || math.IsNaN(f) {
			panic(fmt.Sprintf("server: fraction %v outside [0,1]", f))
		}
	}
	if s := cfg.ReadFrac + cfg.DeleteFrac + cfg.TouchFrac; s > 1 {
		panic(fmt.Sprintf("server: request mix sums to %v > 1", s))
	}
	nw := 4096
	if cfg.Duration > 0 {
		// Slack past the nominal run length: the final cycle's drain can
		// push requests beyond Duration.
		nw = int(cfg.Duration/cfg.Window) + 64
	}
	return &LoadGen{
		cfg:     cfg,
		eng:     eng,
		store:   store,
		adm:     admission{cfg: cfg.Admission.withDefaults(), eng: eng},
		bounds:  DefaultLatencyBounds(),
		recs:    make([]*recorder, cfg.Clients),
		windows: make([]atomic.Int64, nw),
	}
}

// Start launches the client goroutines. They begin issuing requests
// immediately; the engine's collector joins once eng.Run starts.
func (lg *LoadGen) Start() {
	lg.start = time.Now()
	lg.wg.Add(lg.cfg.Clients)
	for i := 0; i < lg.cfg.Clients; i++ {
		rec := newRecorder(lg.bounds)
		lg.recs[i] = rec
		c := &client{
			lg:   lg,
			m:    lg.eng.ExtMutator(i),
			rec:  rec,
			zipf: NewZipf(lg.cfg.Seed+uint64(i)*0x9E37, lg.cfg.Keys, lg.cfg.Theta),
			rng:  prng{state: lg.cfg.Seed ^ (uint64(i+1) * 0xA24B)},
		}
		go c.run()
	}
	if lg.cfg.WindowObserver != nil {
		lg.feedDone = make(chan struct{})
		go lg.feedWindows()
	}
}

// feedWindows streams completed latency windows to the configured observer.
// It trails the clock by one full window so most of a window's requests have
// posted their maxima before it is read; a request that outlives the lag
// (latency beyond one window) updates a slot the feeder already consumed
// and is seen by the end-of-run Results only. That approximation is fine
// for a control signal — the smoothed trend is what the policy consumes.
func (lg *LoadGen) feedWindows() {
	defer close(lg.feedDone)
	t := time.NewTicker(lg.cfg.Window)
	defer t.Stop()
	next := 0
	for !lg.eng.ShuttingDown() {
		<-t.C
		done := int(time.Since(lg.start)/lg.cfg.Window) - 1
		for ; next <= done && next < len(lg.windows); next++ {
			if v := lg.windows[next].Load(); v > 0 {
				lg.cfg.WindowObserver(v)
			}
		}
	}
}

// Wait blocks until every client has retired and merges their recorders.
func (lg *LoadGen) Wait() Results {
	lg.wg.Wait()
	if lg.feedDone != nil {
		// The feeder exits within one window of ShuttingDown flipping; wait
		// for it so the observer callback never races the driver's
		// post-run telemetry flush.
		<-lg.feedDone
	}
	res := Results{
		Hist:     newRecorder(lg.bounds).hist,
		WindowNs: int64(lg.cfg.Window),
	}
	for _, r := range lg.recs {
		res.Issued += r.issued
		res.Completed += r.completed
		res.Failed += r.failed
		res.Hits += r.hits
		res.Misses += r.misses
		res.Puts += r.puts
		res.Gets += r.gets
		res.Deletes += r.dels
		res.Touches += r.touches
		res.Churns += r.churns
		res.Shed += r.shed
		res.Evicted += r.evicted
		res.Retries += r.retries
		res.Hist.Merge(r.hist)
	}
	// Trim the unused tail so WindowMax covers exactly the active run.
	last := -1
	for i := range lg.windows {
		if lg.windows[i].Load() > 0 {
			last = i
		}
	}
	res.WindowMax = make([]int64, last+1)
	for i := range res.WindowMax {
		res.WindowMax[i] = lg.windows[i].Load()
	}
	return res
}

// observe records one request's latency into the client's histogram and the
// shared per-window maxima.
func (lg *LoadGen) observe(rec *recorder, began time.Time, d time.Duration) {
	rec.hist.Observe(float64(d.Nanoseconds()))
	idx := int(began.Sub(lg.start) / lg.cfg.Window)
	if idx < 0 || idx >= len(lg.windows) {
		return
	}
	w := &lg.windows[idx]
	for {
		cur := w.Load()
		if int64(d) <= cur || w.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// client is one closed-loop connection: draw a key, issue the next request,
// measure it, repeat — churning its session away every so often.
type client struct {
	lg   *LoadGen
	m    *live.Mut
	rec  *recorder
	zipf *Zipf
	rng  prng
}

func (c *client) run() {
	defer c.lg.wg.Done()
	defer c.m.Retire()
	lg, cfg, rec := c.lg, c.lg.cfg, c.rec
	churnAt := c.nextChurn()
	for iters := 0; !lg.eng.ShuttingDown(); iters++ {
		if iters%clientYieldEvery == 0 {
			runtime.Gosched()
		}
		// Burst gate: outside the duty window the client idles but keeps
		// honoring safepoints — an idle connection must not stall STW.
		if cfg.BurstPeriod > 0 && cfg.BurstDuty < 1 {
			phase := time.Since(lg.start) % cfg.BurstPeriod
			if phase >= time.Duration(cfg.BurstDuty*float64(cfg.BurstPeriod)) {
				c.m.Poll()
				time.Sleep(100 * time.Microsecond)
				continue
			}
		}
		began := time.Now()
		rec.issued++
		if c.request() {
			rec.completed++
		} else {
			rec.failed++
		}
		lg.observe(rec, began, time.Since(began))
		if cfg.ChurnOps > 0 {
			if churnAt--; churnAt <= 0 {
				c.churn()
				churnAt = c.nextChurn()
			}
		}
	}
}

// request issues one operation, chosen by the configured mix. The timed
// region deliberately includes the safepoint poll, any allocation-tax or
// refill stall, and the admission decision with its retry backoff — that
// interference is exactly what the latency histogram is for. Reports false on
// allocation failure (heap exhaustion) or when admission control sheds the
// request, so issued == completed + failed holds either way.
func (c *client) request() bool {
	c.m.Poll()
	key := c.zipf.Next()
	cfg, rec := c.lg.cfg, c.rec
	u := c.rng.float()
	switch {
	case u < cfg.ReadFrac:
		// Reads are never shed: they allocate nothing.
		rec.gets++
		if c.lg.store.Get(c.m, key, rootPin) {
			rec.hits++
		} else {
			rec.misses++
		}
		return true
	case u < cfg.ReadFrac+cfg.DeleteFrac:
		rec.dels++
		c.lg.store.Delete(c.m, key)
		return true
	case u < cfg.ReadFrac+cfg.DeleteFrac+cfg.TouchFrac:
		rec.touches++
		// Touches shed first (at twice the put watermark) and never retry:
		// session upkeep is the cheapest traffic to refuse under pressure.
		if err := c.lg.adm.admit("touch", 2*c.lg.adm.cfg.ShedWatermark); err != nil {
			rec.shed++
			return false
		}
		return c.touch()
	default:
		rec.puts++
		return c.put(key)
	}
}

// put runs one PUT through the admission ladder: shed when headroom is below
// the watermark, retrying with jittered backoff while the collector catches
// up; on true heap exhaustion — the allocation failed even after the engine's
// own backpressure — evict the oldest store entries, drop this client's own
// pin, and try once more before giving up.
func (c *client) put(key uint64) bool {
	adm := &c.lg.adm
	evicted := false
	for attempt := 0; ; attempt++ {
		if err := adm.admit("put", adm.cfg.ShedWatermark); err != nil {
			if attempt >= adm.cfg.MaxRetries {
				c.rec.shed++
				return false
			}
			c.backoff(attempt)
			continue
		}
		if c.lg.store.Put(c.m, key) {
			return true
		}
		if adm.cfg.Enabled && !evicted {
			evicted = true
			c.rec.evicted += int64(c.lg.store.EvictOldest(c.m, adm.cfg.EvictBatch))
			c.m.SetRoot(rootPin, heapsim.Nil)
			continue
		}
		return false
	}
}

// backoff sleeps a jittered exponential delay between shed-put retries,
// polling the safepoint on both sides so a retrying client never stalls a
// stop-the-world — backpressure that blocks the collector would feed the very
// overload it is meant to relieve.
func (c *client) backoff(attempt int) {
	c.rec.retries++
	base := c.lg.adm.cfg.RetryBackoff << uint(attempt)
	d := base/2 + time.Duration(c.rng.intn(int(base/2)+1))
	c.m.Poll()
	time.Sleep(d)
	c.m.Poll()
}

// touch prepends a freshly allocated event object to the client's session
// chain and truncates the chain at sessionCap so it stays bounded. The chain
// is rooted only by the client's rootSession slot — churn makes all of it
// garbage at once.
func (c *client) touch() bool {
	e, ok := c.m.Alloc()
	if !ok {
		return false
	}
	c.m.Store(e, slotNext, c.m.Root(rootSession))
	c.m.SetRoot(rootSession, e)
	n, p := 1, e
	for next := c.m.Load(p, slotNext); next != heapsim.Nil; next = c.m.Load(p, slotNext) {
		if n++; n > sessionCap {
			c.m.Store(p, slotNext, heapsim.Nil)
			break
		}
		p = next
	}
	return true
}

// churn simulates the connection dropping: every root the client holds is
// cleared, so its session chain and pinned entry are garbage for the next
// cycle, then the client "reconnects" after a short pause.
func (c *client) churn() {
	for i := 0; i < c.m.NumRoots(); i++ {
		c.m.SetRoot(i, heapsim.Nil)
	}
	c.rec.churns++
	c.m.Poll()
	time.Sleep(200 * time.Microsecond)
}

// nextChurn jitters the per-connection lifetime around ChurnOps so churn
// events spread out instead of arriving in lockstep.
func (c *client) nextChurn() int {
	if c.lg.cfg.ChurnOps <= 0 {
		return 0
	}
	return c.lg.cfg.ChurnOps/2 + 1 + c.rng.intn(c.lg.cfg.ChurnOps)
}

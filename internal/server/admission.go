package server

import (
	"errors"
	"fmt"
	"time"

	"mcgc/internal/live"
)

// ErrOverloaded is the sentinel a shed request unwraps to. Handlers refuse
// work with a typed error instead of failing an allocation deep inside the
// store: callers can errors.Is(err, ErrOverloaded) and back off, which is the
// whole point of admission control — the refusal is cheap and explicit where
// the allocation failure would be expensive and anonymous.
var ErrOverloaded = errors.New("server: overloaded")

// OverloadError is the typed refusal: which operation was shed, what the
// free-heap headroom was at the decision, and which rung of the collector's
// degradation ladder was active. It unwraps to ErrOverloaded.
type OverloadError struct {
	Op       string
	Headroom float64
	State    live.DegState
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("server: %s shed: headroom %.3f, collector %s", e.Op, e.Headroom, e.State)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// AdmissionConfig shapes the server's overload response — the third rung of
// the degradation ladder, sitting above the engine's allocation backpressure
// and emergency collection. Zero fields take defaults.
type AdmissionConfig struct {
	// Enabled gates the whole mechanism; disabled, requests behave exactly as
	// before this config existed (a put that exhausts the heap just fails).
	Enabled bool
	// ShedWatermark is the free-heap headroom fraction below which PUTs are
	// refused with ErrOverloaded. Touches — the cheapest traffic to refuse —
	// shed at twice the watermark, so session upkeep yields heap to stored
	// values first. Reads are never shed: they allocate nothing, and a server
	// that refuses reads under memory pressure is degrading the wrong axis.
	// Default 0.04.
	ShedWatermark float64
	// RetryBackoff is the base of the jittered exponential backoff a client
	// sleeps between shed-put retries (doubling per attempt). Default 200µs.
	RetryBackoff time.Duration
	// MaxRetries is how many backoff-and-retry rounds a shed PUT gets before
	// the client gives up and counts the request shed. Default 2.
	MaxRetries int
	// EvictBatch is how many oldest store entries to evict when a PUT hits
	// true heap exhaustion (allocation failed even after the engine's own
	// backpressure), before retrying the put once. Default 16.
	EvictBatch int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.ShedWatermark == 0 {
		c.ShedWatermark = 0.04
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 200 * time.Microsecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.EvictBatch == 0 {
		c.EvictBatch = 16
	}
	return c
}

// admission is the per-LoadGen admission controller. It holds no state of its
// own: every decision reads the engine's live headroom and degradation state,
// so the server's view can never go stale relative to the collector's.
type admission struct {
	cfg AdmissionConfig
	eng *live.Engine
}

// admit decides whether an allocating request may proceed. A request is shed
// when the collector is in an emergency collection (the heap is so far behind
// that the engine stopped the world — feeding it more allocation is pure
// harm) or when free-heap headroom is below the operation's watermark.
func (a *admission) admit(op string, watermark float64) error {
	if !a.cfg.Enabled {
		return nil
	}
	st := a.eng.DegradationState()
	h := a.eng.Headroom()
	if st == live.DegEmergency || h < watermark {
		return &OverloadError{Op: op, Headroom: h, State: st}
	}
	return nil
}

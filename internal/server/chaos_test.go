package server

import (
	"testing"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/live"
)

// TestServerChaosMatrix runs the server workload once per fault class: the
// store and its clients ride the same rare paths the gcstress matrix forces
// — packet exhaustion, stalls, contention, allocation failure — and under
// every one of them the STW oracle must hold, the packet pool must end
// quiescent, and the request accounting identity (issued == completed +
// failed) must survive. One representative spec per class keeps the matrix
// affordable under -race on small hosts.
func TestServerChaosMatrix(t *testing.T) {
	cases := []struct {
		name   string
		spec   string
		shedWM float64 // nonzero arms the ladder and admission at this watermark
	}{
		{"overflow", "pool.exhaust=1/3", 0},
		{"cas-contention", "pool.cas=1/2", 0},
		{"get-put-stalls", "pool.getstall=1/8:50us,pool.putstall=1/8:50us", 0},
		{"deferral", "pool.deferstall=2:100us", 0},
		{"clean-race", "card.cleanstall=1/4:50us", 0},
		{"tracer-stall", "live.tracerstall=4:200us", 0},
		{"fence-stall", "live.fencedelay=3:300us", 0},
		{"safepoint-stall", "live.safepointstall=5:200us", 0},
		{"bg-starve", "live.bgstarve=on:1ms", 0},
		{"alloc-failure", "live.allocfail=1/2", 0},
		{"local-spill", "pool.localspill=1/2", 0},
		{"refill-stall", "pool.refillstall=1/4:50us", 0},
		// The overload classes run the full three-rung ladder: allocation-rate
		// amplification drives backpressure and emergency collections in the
		// engine while admission control sheds and evicts in the server.
		{"overload", "live.overload=1/2", 0.10},
		// The near-zero watermark is the point: an effective watermark sheds
		// load before the heap ever exhausts (the overload row above shows
		// that), so forcing rung 2 requires admission that reacts too late.
		{"emergency-stall", "live.overload=on,live.emergencystall=on:100us", 0.005},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const clients = 4
			dur := 400 * time.Millisecond
			if testing.Short() {
				dur = 150 * time.Millisecond
			}
			cfg := live.Config{
				Objects:         1 << 13,
				RootsPerMutator: 8,
				Mutators:        0,
				ExtMutators:     clients,
				Tracers:         2,
				BgTracers:       1,
				Packets:         12,
				PacketCap:       8,
				Duration:        dur,
				Seed:            3,
				FaultOptions: live.FaultOptions{
					Faults:       faultinject.MustParse(tc.spec, 7),
					WedgeTimeout: 15 * time.Second, // fault stalls must not trip it
				},
			}
			lcfg := LoadConfig{
				Clients:  clients,
				Keys:     512,
				ChurnOps: 120,
				Seed:     3,
				Duration: dur,
			}
			if tc.shedWM > 0 {
				// Hair-trigger escalation: any pressured cycle that cannot
				// free the (whole-heap) floor escalates, so the
				// emergencystall site reliably gets a pause to fire in.
				cfg.Ladder = live.LadderConfig{
					Enabled:          true,
					BackpressureWait: 2 * time.Millisecond,
					EmergencyMinFree: 1 << 13,
					EmergencyAfter:   1,
				}
				lcfg.Admission = AdmissionConfig{Enabled: true, ShedWatermark: tc.shedWM}
			}
			eng := live.NewEngine(cfg)
			st := NewStore(eng, StoreConfig{Shards: 4, Buckets: 16})
			lg := NewLoadGen(eng, st, lcfg)
			lg.Start()
			rep := eng.Run()
			res := lg.Wait()
			t.Logf("\n%s\n%s", rep, res)

			if rep.Wedged {
				t.Fatalf("run wedged in %s:\n%s", rep.WedgePhase, rep.WedgeDiagnosis)
			}
			if rep.LostObjects != 0 {
				t.Errorf("oracle lost %d live objects under %q", rep.LostObjects, tc.spec)
			}
			for _, v := range rep.Violations {
				t.Errorf("oracle: %s", v)
			}
			if rep.Cycles < 1 {
				t.Error("no cycle completed")
			}
			if !eng.Pool().TracingDone() || !eng.Pool().DeferredEmpty() {
				t.Error("packet pool not quiescent after Run")
			}
			if got := eng.Pool().EntriesInUse(); got != 0 {
				t.Errorf("%d packet entries still in flight after Run", got)
			}
			if res.Issued != res.Completed+res.Failed {
				t.Errorf("request accounting broken under %q: issued %d != completed %d + failed %d",
					tc.spec, res.Issued, res.Completed, res.Failed)
			}
			if res.Completed == 0 {
				t.Error("no request completed — the fault starved the server entirely")
			}
			for _, p := range rep.Faults {
				if p.Explicit && p.Fires == 0 {
					t.Errorf("fault %s configured but never fired (%d hits)", p.Name, p.Hits)
				}
			}
		})
	}
}

// Package server is the server-shaped workload for the live collector: a
// sharded in-memory KV/session store whose values are real objects in the
// live arena — allocated through the engine's mutator path (so they pay the
// allocation tax and publish in batches), mutated through the write barrier,
// rooted through per-shard RootSets and traced and collected for real — plus
// a closed-loop load generator whose clients are external mutators issuing
// GET/PUT/DELETE/session-touch requests with Zipfian key skew, request
// bursts and connection churn. Every request is timed; the recorder reduces
// the latencies to the server.req_ns histogram and server.* counters the
// telemetry pipeline serializes and gcstats -latency reads back.
package server

import (
	"fmt"
	"math"
	"sort"
)

// Zipf is a seeded, deterministic Zipfian generator over keys [0, n):
// P(key = k) ∝ 1/(k+1)^theta, so key 0 is the hottest. Unlike math/rand's
// Zipf, the sequence is pinned by this implementation — a splitmix64 stream
// driving inverse-CDF lookup on a precomputed table — so a given
// (seed, n, theta) produces the same draws on every Go version, which is
// what the seed-stability golden test relies on.
type Zipf struct {
	rng prng
	cum []float64 // cum[k] = P(key <= k), ascending to 1
}

// NewZipf builds a generator for n keys with skew theta (0 = uniform;
// ~0.99 is the classic YCSB-style hot-key skew).
func NewZipf(seed uint64, n int, theta float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("server: zipf over %d keys", n))
	}
	if theta < 0 || math.IsNaN(theta) {
		panic(fmt.Sprintf("server: zipf theta %v", theta))
	}
	cum := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -theta)
		cum[k] = sum
	}
	for k := range cum {
		cum[k] /= sum
	}
	return &Zipf{rng: prng{state: seed}, cum: cum}
}

// Next draws the next key.
func (z *Zipf) Next() uint64 {
	u := z.rng.float()
	k := sort.SearchFloat64s(z.cum, u)
	if k >= len(z.cum) {
		k = len(z.cum) - 1
	}
	return uint64(k)
}

// TopFraction returns the theoretical probability of the hottest key — what
// the distribution-shape test checks observed frequencies against.
func (z *Zipf) TopFraction() float64 { return z.cum[0] }

// prng is a splitmix64 stream: tiny, seedable, and stable across platforms
// and Go versions (the stdlib makes no such promise for math/rand).
type prng struct {
	state uint64
}

func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	x := p.state
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// float returns a uniform draw in [0, 1) with 53 bits of precision.
func (p *prng) float() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// intn returns a uniform draw in [0, n).
func (p *prng) intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("server: intn(%d)", n))
	}
	return int(p.next() % uint64(n))
}

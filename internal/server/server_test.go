package server

import (
	"testing"
	"time"

	"mcgc/internal/heapsim"
	"mcgc/internal/live"
)

// testEngine builds a small engine shaped for the store tests: external
// mutators only, arena sized so churned garbage forces real cycles.
func testEngine(clients int, dur time.Duration, seed int64) *live.Engine {
	return live.NewEngine(live.Config{
		Objects:         1 << 12,
		RefsPerObject:   4,
		RootsPerMutator: 8,
		Mutators:        0,
		ExtMutators:     clients,
		Tracers:         2,
		BgTracers:       1,
		Packets:         16,
		PacketCap:       8,
		Duration:        dur,
		Seed:            seed,
		FaultOptions:    live.FaultOptions{WedgeTimeout: 20 * time.Second},
	})
}

// Store semantics, driven single-threaded through an external mutator with
// the engine idle — no collector in play, just the data structure.
func TestStoreBasics(t *testing.T) {
	eng := testEngine(1, time.Hour, 1)
	st := NewStore(eng, StoreConfig{Shards: 3, Buckets: 4, ValueObjs: 3})
	if st.Config().Shards != 4 {
		t.Fatalf("shards not rounded to power of two: %d", st.Config().Shards)
	}
	m := eng.ExtMutator(0)

	if st.Get(m, 1, rootPin) {
		t.Fatal("get on empty store hit")
	}
	if st.Delete(m, 1) {
		t.Fatal("delete on empty store reported existing key")
	}
	// Collide many keys into few buckets so the chains actually chain.
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		if !st.Put(m, k) {
			t.Fatalf("put %d failed with an empty heap", k)
		}
	}
	if st.Len() != keys {
		t.Fatalf("Len %d after %d puts", st.Len(), keys)
	}
	for k := uint64(0); k < keys; k++ {
		if !st.Get(m, k, rootPin) {
			t.Fatalf("get %d missed", k)
		}
		if m.Root(rootPin) == heapsim.Nil {
			t.Fatalf("get %d did not pin the entry", k)
		}
	}
	// Replacement: the index must point at a new head afterwards.
	st.Get(m, 5, rootPin)
	before := m.Root(rootPin)
	if !st.Put(m, 5) {
		t.Fatal("replacement put failed")
	}
	st.Get(m, 5, rootPin)
	if m.Root(rootPin) == before {
		t.Fatal("put did not replace the entry")
	}
	if st.Len() != keys {
		t.Fatalf("Len %d after replacement", st.Len())
	}
	// Delete every key, in an order that exercises head/middle/tail unlinks.
	for k := uint64(0); k < keys; k += 2 {
		if !st.Delete(m, k) {
			t.Fatalf("delete %d missed", k)
		}
	}
	for k := uint64(1); k < keys; k += 2 {
		if !st.Delete(m, k) {
			t.Fatalf("delete %d missed", k)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("Len %d after deleting everything", st.Len())
	}
	seen := 0
	st.Entries(func(uint64, heapsim.Addr) { seen++ })
	if seen != 0 {
		t.Fatalf("Entries walked %d entries on an empty store", seen)
	}
}

// The full workload under the live collector: clients hammer the store with
// the default mix plus churn, cycles run, and afterwards the request
// accounting identity holds and everything the index references is still
// allocated.
func TestServerWorkloadLive(t *testing.T) {
	const clients = 4
	dur := 500 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	eng := testEngine(clients, dur, 7)
	st := NewStore(eng, StoreConfig{Shards: 4, Buckets: 16, ValueObjs: 2})
	lg := NewLoadGen(eng, st, LoadConfig{
		Clients:  clients,
		Keys:     512,
		ChurnOps: 150,
		Seed:     7,
		Duration: dur,
	})
	lg.Start()
	rep := eng.Run()
	res := lg.Wait()
	t.Logf("\n%s\n%s", rep, res)

	if rep.Wedged {
		t.Fatalf("wedged: %s", rep.WedgeDiagnosis)
	}
	if rep.LostObjects > 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle: lost %d, violations %v", rep.LostObjects, rep.Violations)
	}
	if rep.Cycles < 1 {
		t.Fatal("no collection cycle completed")
	}
	if res.Issued == 0 || res.Completed == 0 {
		t.Fatalf("load generator idle: issued %d completed %d", res.Issued, res.Completed)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("request accounting broken: issued %d != completed %d + failed %d",
			res.Issued, res.Completed, res.Failed)
	}
	if res.Hist.N() != res.Issued {
		t.Fatalf("latency histogram has %d samples for %d issued requests", res.Hist.N(), res.Issued)
	}
	if res.Churns == 0 {
		t.Error("no connection churn despite ChurnOps")
	}
	if rep.ObjectsFreed == 0 {
		t.Error("churned sessions and dead entries never became garbage")
	}
	if len(res.WindowMax) == 0 {
		t.Error("no windowed latency maxima recorded")
	}
	// Post-run liveness: every entry the index still references must carry
	// its allocation bit, along with its whole payload chain.
	checked := 0
	st.Entries(func(key uint64, head heapsim.Addr) {
		checked++
		if !eng.Arena().Alloc.Test(int(head)) {
			t.Fatalf("entry %d head %d was collected while indexed", key, head)
		}
		for p := eng.Arena().LoadRef(head, slotPayload); p != heapsim.Nil; p = eng.Arena().LoadRef(p, slotNext) {
			if !eng.Arena().Alloc.Test(int(p)) {
				t.Fatalf("entry %d payload %d was collected while indexed", key, p)
			}
		}
	})
	if checked == 0 {
		t.Error("store empty after the run — nothing survived to verify")
	}
}

// Burst duty cycle: phase-locked on/off load with churn. The identity and
// oracle must hold and the off-phases must not wedge safepoints.
func TestServerBurstLoad(t *testing.T) {
	const clients = 3
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 200 * time.Millisecond
	}
	eng := testEngine(clients, dur, 13)
	st := NewStore(eng, StoreConfig{Shards: 2, Buckets: 8})
	lg := NewLoadGen(eng, st, LoadConfig{
		Clients:     clients,
		Keys:        256,
		BurstPeriod: 40 * time.Millisecond,
		BurstDuty:   0.5,
		ChurnOps:    100,
		Seed:        13,
		Duration:    dur,
	})
	lg.Start()
	rep := eng.Run()
	res := lg.Wait()

	if rep.Wedged {
		t.Fatalf("wedged during burst off-phase: %s", rep.WedgeDiagnosis)
	}
	if rep.LostObjects > 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle: lost %d, violations %v", rep.LostObjects, rep.Violations)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("request accounting broken: issued %d != completed %d + failed %d",
			res.Issued, res.Completed, res.Failed)
	}
	if res.Completed == 0 {
		t.Fatal("burst gate starved the clients entirely")
	}
}

func TestLoadGenValidation(t *testing.T) {
	eng := testEngine(1, time.Hour, 1)
	st := NewStore(eng, StoreConfig{})
	for name, f := range map[string]func(){
		"zero clients": func() { NewLoadGen(eng, st, LoadConfig{Clients: 0}) },
		"bad fraction": func() { NewLoadGen(eng, st, LoadConfig{Clients: 1, ReadFrac: 1.5}) },
		"mix over 1":   func() { NewLoadGen(eng, st, LoadConfig{Clients: 1, ReadFrac: 0.8, DeleteFrac: 0.3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

package server

import (
	"fmt"
	"sync"

	"mcgc/internal/heapsim"
	"mcgc/internal/live"
)

// Entry slot layout. Every stored value is a chain of arena objects: the
// head entry links into its shard bucket's doubly-linked list through
// slotNext/slotPrev, and hangs its payload chain (ValueObjs-1 further
// objects, singly linked through slotNext) off slotPayload. Payload objects
// only use slotNext. Requires RefsPerObject >= 3.
const (
	slotNext    = 0
	slotPrev    = 1
	slotPayload = 2
)

// StoreConfig sizes the store. Zero fields take defaults.
type StoreConfig struct {
	// Shards is the lock-striping width; rounded up to a power of two so
	// shard routing is key & (shards-1) — the issue's "key % shards" with a
	// power-of-two divisor. Default 8.
	Shards int
	// Buckets is the number of collector root slots (bucket-chain heads) per
	// shard. Default 64.
	Buckets int
	// ValueObjs is how many arena objects one stored value occupies (the
	// head entry plus ValueObjs-1 payload objects). Default 2.
	ValueObjs int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Buckets == 0 {
		c.Buckets = 64
	}
	if c.ValueObjs == 0 {
		c.ValueObjs = 2
	}
	return c
}

// Store is the sharded in-memory KV store. Each shard is a mutex, a
// key→entry index (ordinary Go map — the *keys* are metadata; only the
// *values* live in the collected arena) and a RootSet of bucket heads that
// makes the shard's whole live set reachable from collector roots. Handlers
// pass their own *live.Mut: allocation, barrier stores and loads are charged
// to the requesting client, exactly like a server thread running in a
// per-thread allocation context.
type Store struct {
	cfg    StoreConfig
	mask   uint64
	shards []storeShard
}

type storeShard struct {
	mu    sync.Mutex
	index map[uint64]heapsim.Addr
	roots *live.RootSet
	// order is the shard's insertion-order FIFO for EvictOldest: keys append
	// on fresh insert (not on replacement — a replaced key keeps its original
	// position, so "oldest" means oldest key, not oldest value). Deleted keys
	// linger as stale entries and are skipped lazily when popped; a key
	// deleted and re-put appears twice, and the first pop evicts whichever
	// entry is live then. All approximations in the direction that matters:
	// eviction is an emergency-recovery path, not an LRU.
	order []uint64
}

// NewStore builds the store and registers its per-shard root sets with the
// engine; it must therefore run before eng.Run.
func NewStore(eng *live.Engine, cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	if cfg.Shards < 1 || cfg.Buckets < 1 || cfg.ValueObjs < 1 {
		panic(fmt.Sprintf("server: bad store config %+v", cfg))
	}
	shards := 1
	for shards < cfg.Shards {
		shards <<= 1
	}
	cfg.Shards = shards
	if eng.Arena().RefsPerObject() < 3 {
		panic(fmt.Sprintf("server: store needs >= 3 ref slots per object, arena has %d",
			eng.Arena().RefsPerObject()))
	}
	s := &Store{cfg: cfg, mask: uint64(shards - 1), shards: make([]storeShard, shards)}
	for i := range s.shards {
		s.shards[i].index = make(map[uint64]heapsim.Addr)
		s.shards[i].roots = eng.NewRootSet(cfg.Buckets)
	}
	return s
}

// Config returns the resolved store configuration.
func (s *Store) Config() StoreConfig { return s.cfg }

func (s *Store) shardOf(key uint64) *storeShard { return &s.shards[key&s.mask] }

// bucketOf spreads keys of one shard over its bucket heads. The shard bits
// are shifted out first so bucket occupancy is not aliased to shard routing.
func (s *Store) bucketOf(key uint64) int {
	return int((key >> uint(popcount(s.mask))) % uint64(s.cfg.Buckets))
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Put stores a fresh value chain under key, replacing (and unlinking) any
// previous entry. The allocations happen outside the shard lock — an
// allocation can stall on a cache refill paying tax, and a safepoint poll
// must never run while a shard is locked — and the entry goes live only
// when linked under the lock. ok is false on heap exhaustion; a partially
// built chain is simply abandoned (unreachable, collected next cycle).
func (s *Store) Put(m *live.Mut, key uint64) bool {
	head, ok := m.Alloc()
	if !ok {
		return false
	}
	tail := head
	for i := 1; i < s.cfg.ValueObjs; i++ {
		p, allocOK := m.Alloc()
		if !allocOK {
			return false
		}
		if tail == head {
			m.Store(head, slotPayload, p)
		} else {
			m.Store(tail, slotNext, p)
		}
		tail = p
	}
	sh, b := s.shardOf(key), s.bucketOf(key)
	sh.mu.Lock()
	next := sh.roots.Get(b)
	m.Store(head, slotNext, next)
	m.Store(head, slotPrev, heapsim.Nil)
	if next != heapsim.Nil {
		m.Store(next, slotPrev, head)
	}
	sh.roots.Set(b, head)
	old, existed := sh.index[key]
	sh.index[key] = head
	if existed {
		s.unlink(m, sh, b, old)
	} else {
		sh.order = append(sh.order, key)
	}
	sh.mu.Unlock()
	return true
}

// EvictOldest removes up to n entries in approximate insertion order and
// returns how many were actually evicted. Each shard keeps a FIFO of inserted
// keys; eviction takes an equal quota from every shard, popping and skipping
// stale queue entries, so one pass spreads the damage instead of emptying
// shard 0 first. This is the recovery rung of the server's admission control:
// when a put fails even after the engine's own backpressure, the oldest
// stored values are the load we chose to shed.
func (s *Store) EvictOldest(m *live.Mut, n int) int {
	if n <= 0 {
		return 0
	}
	quota := (n + len(s.shards) - 1) / len(s.shards)
	evicted := 0
	for i := range s.shards {
		if evicted >= n {
			break
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		taken := 0
		for taken < quota && evicted < n && len(sh.order) > 0 {
			key := sh.order[0]
			sh.order = sh.order[1:]
			a, ok := sh.index[key]
			if !ok {
				continue // stale: deleted (or already evicted) since insert
			}
			s.unlink(m, sh, s.bucketOf(key), a)
			delete(sh.index, key)
			taken++
			evicted++
		}
		sh.mu.Unlock()
	}
	return evicted
}

// Get looks key up and, on a hit, walks the payload chain (the handler
// "deserializing" the value) and pins the entry into the client's root slot
// pin before the shard lock is released. The pin is what keeps an entry
// alive for the client even if another client deletes it concurrently — the
// classic reader-holds-reference pattern a collector must honor.
func (s *Store) Get(m *live.Mut, key uint64, pin int) bool {
	sh := s.shardOf(key)
	sh.mu.Lock()
	a, ok := sh.index[key]
	if ok {
		for p := m.Load(a, slotPayload); p != heapsim.Nil; p = m.Load(p, slotNext) {
		}
		m.SetRoot(pin, a)
	}
	sh.mu.Unlock()
	return ok
}

// Delete removes key's entry, unlinking it from its bucket chain. The
// payload chain stays attached to the unlinked head, so a reader that
// pinned the entry still sees a consistent value; with no pins the whole
// chain is garbage at the next cycle. ok reports whether the key existed.
func (s *Store) Delete(m *live.Mut, key uint64) bool {
	sh, b := s.shardOf(key), s.bucketOf(key)
	sh.mu.Lock()
	a, ok := sh.index[key]
	if ok {
		s.unlink(m, sh, b, a)
		delete(sh.index, key)
	}
	sh.mu.Unlock()
	return ok
}

// unlink splices entry x out of bucket b's doubly-linked chain. Caller holds
// the shard lock. The bucket links of x are cleared so the chain it leaves
// behind does not retain its neighbors once x itself is only held by pins.
func (s *Store) unlink(m *live.Mut, sh *storeShard, b int, x heapsim.Addr) {
	next := m.Load(x, slotNext)
	prev := m.Load(x, slotPrev)
	if prev == heapsim.Nil {
		sh.roots.Set(b, next)
	} else {
		m.Store(prev, slotNext, next)
	}
	if next != heapsim.Nil {
		m.Store(next, slotPrev, prev)
	}
	m.Store(x, slotNext, heapsim.Nil)
	m.Store(x, slotPrev, heapsim.Nil)
}

// Len returns the total number of entries across all shards.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.index)
		sh.mu.Unlock()
	}
	return n
}

// Entries calls f under each shard's lock with every (key, head) pair —
// post-run verification walks the index against the arena's liveness bits.
func (s *Store) Entries(f func(key uint64, head heapsim.Addr)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, a := range sh.index {
			f(k, a)
		}
		sh.mu.Unlock()
	}
}

package server

import (
	"errors"
	"testing"
	"time"

	"mcgc/internal/faultinject"
	"mcgc/internal/live"
)

// TestOverloadErrorUnwraps pins the typed-refusal contract: an OverloadError
// is matchable through errors.Is against the ErrOverloaded sentinel.
func TestOverloadErrorUnwraps(t *testing.T) {
	err := error(&OverloadError{Op: "put", Headroom: 0.01, State: live.DegBackpressure})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("OverloadError does not unwrap to ErrOverloaded: %v", err)
	}
	for _, want := range []string{"put", "0.010", "backpressure"} {
		if msg := err.Error(); !contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEvictOldest exercises the store's recovery rung directly, before any
// engine goroutine runs: entries evict in per-shard insertion order, stale
// FIFO entries (deleted keys) are skipped without counting, and Len reflects
// every removal.
func TestEvictOldest(t *testing.T) {
	eng := live.NewEngine(live.Config{
		Objects:     1 << 12,
		ExtMutators: 1,
		Tracers:     1,
		Duration:    10 * time.Millisecond,
	})
	st := NewStore(eng, StoreConfig{Shards: 4, Buckets: 16})
	m := eng.ExtMutator(0)

	const n = 40
	for k := uint64(0); k < n; k++ {
		if !st.Put(m, k) {
			t.Fatalf("put %d failed on an empty heap", k)
		}
	}
	if got := st.Len(); got != n {
		t.Fatalf("store has %d entries, want %d", got, n)
	}

	// Delete a few keys: their FIFO entries go stale and must not count
	// against the eviction quota.
	for _, k := range []uint64{0, 1, 2, 3} {
		if !st.Delete(m, k) {
			t.Fatalf("delete %d failed", k)
		}
	}

	if got := st.EvictOldest(m, 10); got != 10 {
		t.Fatalf("evicted %d entries, want 10", got)
	}
	if got := st.Len(); got != n-4-10 {
		t.Fatalf("store has %d entries after eviction, want %d", got, n-4-10)
	}

	// Draining the rest: the count must match exactly what was left, and a
	// further eviction on an empty store must report zero.
	if got := st.EvictOldest(m, n); got != n-4-10 {
		t.Fatalf("drain evicted %d, want %d", got, n-4-10)
	}
	if got := st.Len(); got != 0 {
		t.Fatalf("store has %d entries after drain, want 0", got)
	}
	if got := st.EvictOldest(m, 5); got != 0 {
		t.Fatalf("empty store evicted %d entries", got)
	}
}

// TestAdmissionShedsUnderOverload runs the full stack at 2x offered load with
// an aggressive watermark: admission control must shed real traffic, the
// request accounting identity must absorb the sheds as failures, and the run
// must survive with the oracle intact.
func TestAdmissionShedsUnderOverload(t *testing.T) {
	const clients = 4
	dur := 400 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	eng := live.NewEngine(live.Config{
		Objects:         1 << 12,
		RootsPerMutator: 8,
		ExtMutators:     clients,
		Tracers:         2,
		BgTracers:       1,
		Packets:         16,
		PacketCap:       8,
		Duration:        dur,
		Seed:            5,
		FaultOptions: live.FaultOptions{
			Faults:       faultinject.MustParse("live.overload=on", 7),
			WedgeTimeout: 15 * time.Second,
		},
		LadderOptions: live.LadderOptions{Ladder: live.LadderConfig{Enabled: true, BackpressureWait: 5 * time.Millisecond}},
	})
	st := NewStore(eng, StoreConfig{Shards: 4, Buckets: 16})
	lg := NewLoadGen(eng, st, LoadConfig{
		Clients:  clients,
		Keys:     512,
		ChurnOps: 120,
		Seed:     5,
		Duration: dur,
		// A watermark this high turns shedding on almost immediately under
		// the amplifier — the test wants the shed path, not a borderline run.
		Admission: AdmissionConfig{Enabled: true, ShedWatermark: 0.5},
	})
	lg.Start()
	rep := eng.Run()
	res := lg.Wait()
	t.Logf("\n%s\n%s", rep, res)

	if rep.Wedged {
		t.Fatalf("run wedged:\n%s", rep.WedgeDiagnosis)
	}
	if rep.LostObjects != 0 || len(rep.Violations) > 0 {
		t.Fatalf("oracle: lost %d, violations %v", rep.LostObjects, rep.Violations)
	}
	if res.Issued != res.Completed+res.Failed {
		t.Fatalf("request accounting broken: issued %d != completed %d + failed %d",
			res.Issued, res.Completed, res.Failed)
	}
	if res.Shed == 0 {
		t.Error("watermark 0.5 under 2x overload never shed a request")
	}
	if res.Shed > res.Failed {
		t.Errorf("shed %d > failed %d: sheds must be a subset of failures", res.Shed, res.Failed)
	}
	if res.Completed == 0 {
		t.Error("admission control starved the server entirely")
	}
}

// Package gctrace provides structured collection-event logging — the
// equivalent of a JVM's -verbose:gc — for the collectors in internal/core.
// A Sink receives one Event per phase transition; TextWriter renders the
// classic one-line-per-cycle log, and Recorder keeps events in memory for
// tests and tools.
package gctrace

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"mcgc/internal/vtime"
)

// Kind identifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// CycleStart: a concurrent collection cycle began (kickoff).
	CycleStart Kind = iota
	// PauseStart: the world is being stopped.
	PauseStart
	// MarkEnd: in-pause marking (including final card cleaning) finished.
	MarkEnd
	// SweepEnd: in-pause sweeping finished.
	SweepEnd
	// PauseEnd: the world resumed.
	PauseEnd
	// MinorStart / MinorEnd: a generational nursery scavenge.
	MinorStart
	MinorEnd
	// CardPass: a concurrent card-cleaning registration pass ran.
	CardPass
	// LazySweepDone: a deferred sweep continuation completed.
	LazySweepDone
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case CycleStart:
		return "cycle-start"
	case PauseStart:
		return "pause-start"
	case MarkEnd:
		return "mark-end"
	case SweepEnd:
		return "sweep-end"
	case PauseEnd:
		return "pause-end"
	case MinorStart:
		return "minor-start"
	case MinorEnd:
		return "minor-end"
	case CardPass:
		return "card-pass"
	case LazySweepDone:
		return "lazy-sweep-done"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one collection lifecycle notification.
type Event struct {
	At     vtime.Time
	Kind   Kind
	Reason string // trigger for pauses/cycles ("kickoff", "alloc-failure", ...)

	// Optional measurements, meaningful per kind.
	FreeBytes     int64
	LiveBytes     int64
	PauseDuration vtime.Duration // PauseEnd, MinorEnd
	Cards         int            // CardPass: registered; MarkEnd: cleaned in pause
	PromotedBytes int64          // MinorEnd
}

// Sink consumes events. Implementations must be cheap: collectors call
// Emit inline.
type Sink interface {
	Emit(Event)
}

// Multi fans an event out to several sinks.
func Multi(sinks ...Sink) Sink { return multi(sinks) }

type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		if s != nil {
			s.Emit(e)
		}
	}
}

// Recorder stores events in memory.
type Recorder struct {
	mu     sync.Mutex
	Events []Event
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	r.Events = append(r.Events, e)
	r.mu.Unlock()
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// TextWriter renders events as single log lines, one per event. Emits from
// concurrent VMs sharing one writer are serialized by a mutex, and each line
// is formatted into a private buffer before the single Write, so lines can
// never interleave mid-field even on writers that split small writes.
type TextWriter struct {
	W  io.Writer
	mu sync.Mutex
}

// Emit implements Sink.
func (t *TextWriter) Emit(e Event) {
	var b strings.Builder
	switch e.Kind {
	case CycleStart:
		fmt.Fprintf(&b, "[gc %v] cycle start (%s) free=%dKB\n", e.At, e.Reason, e.FreeBytes>>10)
	case PauseStart:
		fmt.Fprintf(&b, "[gc %v] pause start (%s)\n", e.At, e.Reason)
	case MarkEnd:
		fmt.Fprintf(&b, "[gc %v] mark end, %d cards cleaned in pause\n", e.At, e.Cards)
	case SweepEnd:
		fmt.Fprintf(&b, "[gc %v] sweep end, free=%dKB\n", e.At, e.FreeBytes>>10)
	case PauseEnd:
		fmt.Fprintf(&b, "[gc %v] pause end: %v, live=%dKB free=%dKB\n",
			e.At, e.PauseDuration, e.LiveBytes>>10, e.FreeBytes>>10)
	case MinorStart:
		fmt.Fprintf(&b, "[gc %v] minor start, nursery=%dKB\n", e.At, e.LiveBytes>>10)
	case MinorEnd:
		fmt.Fprintf(&b, "[gc %v] minor end: %v, promoted=%dKB\n",
			e.At, e.PauseDuration, e.PromotedBytes>>10)
	case CardPass:
		fmt.Fprintf(&b, "[gc %v] concurrent card pass: %d cards registered\n", e.At, e.Cards)
	case LazySweepDone:
		fmt.Fprintf(&b, "[gc %v] lazy sweep complete, free=%dKB\n", e.At, e.FreeBytes>>10)
	default:
		fmt.Fprintf(&b, "[gc %v] %s\n", e.At, e.Kind)
	}
	t.mu.Lock()
	io.WriteString(t.W, b.String())
	t.mu.Unlock()
}

package gctrace

import (
	"strings"
	"testing"

	"mcgc/internal/vtime"
)

func TestRecorder(t *testing.T) {
	var r Recorder
	r.Emit(Event{Kind: CycleStart})
	r.Emit(Event{Kind: PauseStart})
	r.Emit(Event{Kind: PauseEnd})
	r.Emit(Event{Kind: PauseStart})
	if r.Count(PauseStart) != 2 || r.Count(CycleStart) != 1 || r.Count(MinorEnd) != 0 {
		t.Fatalf("counts wrong: %+v", r.Events)
	}
}

func TestMulti(t *testing.T) {
	var a, b Recorder
	m := Multi(&a, nil, &b)
	m.Emit(Event{Kind: MarkEnd})
	if a.Count(MarkEnd) != 1 || b.Count(MarkEnd) != 1 {
		t.Fatal("multi did not fan out")
	}
}

func TestTextWriterFormats(t *testing.T) {
	var sb strings.Builder
	w := &TextWriter{W: &sb}
	at := vtime.Time(3 * vtime.Millisecond)
	events := []Event{
		{At: at, Kind: CycleStart, Reason: "kickoff", FreeBytes: 2048},
		{At: at, Kind: PauseStart, Reason: "conc-done"},
		{At: at, Kind: MarkEnd, Cards: 7},
		{At: at, Kind: SweepEnd, FreeBytes: 4096},
		{At: at, Kind: PauseEnd, PauseDuration: vtime.Millisecond, LiveBytes: 1024, FreeBytes: 4096},
		{At: at, Kind: MinorStart, LiveBytes: 8192},
		{At: at, Kind: MinorEnd, PauseDuration: vtime.Millisecond, PromotedBytes: 1 << 20},
		{At: at, Kind: CardPass, Cards: 42},
		{At: at, Kind: LazySweepDone, FreeBytes: 2048},
	}
	for _, e := range events {
		w.Emit(e)
	}
	out := sb.String()
	for _, want := range []string{
		"cycle start (kickoff)",
		"pause start (conc-done)",
		"mark end, 7 cards",
		"sweep end",
		"pause end: 1.00ms",
		"minor start, nursery=8KB",
		"minor end: 1.00ms, promoted=1024KB",
		"card pass: 42 cards",
		"lazy sweep complete",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != len(events) {
		t.Fatalf("%d lines for %d events", lines, len(events))
	}
}

func TestKindStrings(t *testing.T) {
	for k := CycleStart; k <= LazySweepDone; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "kind(") {
		t.Fatal("unknown kind should fall back")
	}
}

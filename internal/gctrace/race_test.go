package gctrace

import (
	"strings"
	"sync"
	"testing"

	"mcgc/internal/vtime"
)

// chunkWriter writes one byte per Write call, maximizing the window for
// interleaving if a sink ever issues more than one Write per line.
type chunkWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (c *chunkWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, by := range p {
		c.b.WriteByte(by)
	}
	return len(p), nil
}

// Concurrent background threads from independent VMs can share one trace
// sink (e.g. both logging to the process stderr). Run under -race; also
// checks no line is torn mid-field.
func TestTextWriterConcurrentEmitDoesNotInterleave(t *testing.T) {
	const (
		goroutines = 8
		perG       = 200
	)
	cw := &chunkWriter{}
	w := &TextWriter{W: cw}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				w.Emit(Event{
					At:            vtime.Time(g*perG + i),
					Kind:          PauseEnd,
					PauseDuration: vtime.Duration(i) * vtime.Millisecond,
					LiveBytes:     int64(g) << 20,
					FreeBytes:     int64(i) << 10,
				})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(cw.b.String(), "\n"), "\n")
	if len(lines) != goroutines*perG {
		t.Fatalf("got %d lines, want %d", len(lines), goroutines*perG)
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "[gc ") || !strings.Contains(ln, "pause end:") {
			t.Fatalf("torn line: %q", ln)
		}
	}
}

func TestRecorderConcurrentEmit(t *testing.T) {
	r := &Recorder{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(Event{Kind: CardPass, Cards: i})
			}
		}()
	}
	wg.Wait()
	if got := r.Count(CardPass); got != 8*500 {
		t.Fatalf("recorded %d events, want %d", got, 8*500)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// FragResult compares heap fragmentation with and without incremental
// compaction (Section 2.3) on a workload whose retained data turns over
// object by object — the pattern that shreds a non-moving free list.
type FragResult struct {
	PlainIndex, CompactIndex     float64 // avg over cycles of 1 - largest/free after GC
	PlainChunks, CompactChunks   int
	PlainLargest, CompactLargest int64 // bytes
	PlainPauseMs, CompactPauseMs float64
	EvacuatedMB                  float64
}

// fragRun is one variant's measurement.
type fragRun struct {
	Index   float64
	Chunks  int
	Largest int64
	PauseMs float64
	EvacMB  float64
}

// Fragmentation runs the comparison, one job per variant under ex.
func Fragmentation(ex *Exec, sc Scale) FragResult {
	run := func(compact bool) (idx float64, chunks int, largest int64, pauseMs float64, evacMB float64) {
		vm := gcsim.New(gcsim.Options{
			HeapBytes:             sc.JBBHeap,
			Processors:            4,
			Collector:             gcsim.CGC,
			TracingRate:           8,
			WorkPackets:           sc.Packets,
			IncrementalCompaction: compact,
		})
		// High block-replacement rate: constant turnover of retained data
		// interleaved with garbage is the fragmenting regime.
		jbb := vm.NewJBB(gcsim.JBBOptions{
			Warehouses:          8,
			MaxWarehouses:       8,
			ResidencyAtMax:      0.6,
			BlockReplacePercent: 60,
			Seed:                31,
		})
		for i := 0; i < 1000 && !jbb.Ready(); i++ {
			vm.RunFor(100 * gcsim.Millisecond)
		}
		vm.RunFor(sc.Measure)
		if err := jbb.CheckIntegrity(); err != nil {
			panic("experiments: " + err.Error())
		}
		// Sample fragmentation at cycle ends (right after each sweep and,
		// when enabled, compaction) — mid-mutation snapshots only measure
		// how fast the allocator refilled the holes.
		cycles := vm.Cycles()
		var idxSum float64
		var n int
		for i := range cycles {
			if cycles[i].FreeAfter > 0 {
				idxSum += 1 - float64(cycles[i].LargestFreeAfter)/float64(cycles[i].FreeAfter)
				n++
			}
		}
		if n > 0 {
			idx = idxSum / float64(n)
		}
		r := vm.Runtime().Heap.Fragmentation()
		rep := vm.Report()
		if st := vm.CGCCollector().Compactor(); st != nil {
			evacMB = float64(st.EvacuatedBytes) / (1 << 20)
		}
		return idx, r.Chunks, r.LargestBytes, rep.Pause.Avg.Milliseconds(), evacMB
	}
	jobs := []runner.Job[fragRun]{
		{Name: "frag/plain", Run: func() (fragRun, error) {
			idx, chunks, largest, pauseMs, evacMB := run(false)
			return fragRun{idx, chunks, largest, pauseMs, evacMB}, nil
		}},
		{Name: "frag/compact", Run: func() (fragRun, error) {
			idx, chunks, largest, pauseMs, evacMB := run(true)
			return fragRun{idx, chunks, largest, pauseMs, evacMB}, nil
		}},
	}
	runs := exec(ex, jobs)
	plain, compact := runs[0], runs[1]
	var res FragResult
	res.PlainIndex, res.PlainChunks, res.PlainLargest, res.PlainPauseMs = plain.Index, plain.Chunks, plain.Largest, plain.PauseMs
	res.CompactIndex, res.CompactChunks, res.CompactLargest, res.CompactPauseMs = compact.Index, compact.Chunks, compact.Largest, compact.PauseMs
	res.EvacuatedMB = compact.EvacMB
	return res
}

// RenderFragmentation prints the comparison.
func RenderFragmentation(r FragResult) string {
	var b strings.Builder
	b.WriteString("Fragmentation under retained-data turnover, with and without\n")
	b.WriteString("incremental compaction (Section 2.3):\n\n")
	tb := stats.NewTable("variant", "post-GC frag index", "end chunks", "end largest", "avg pause")
	tb.AddRow("no compaction",
		fmt.Sprintf("%.3f", r.PlainIndex),
		fmt.Sprintf("%d", r.PlainChunks),
		fmt.Sprintf("%d KB", r.PlainLargest>>10),
		fmt.Sprintf("%.1f ms", r.PlainPauseMs))
	tb.AddRow("incremental compaction",
		fmt.Sprintf("%.3f", r.CompactIndex),
		fmt.Sprintf("%d", r.CompactChunks),
		fmt.Sprintf("%d KB", r.CompactLargest>>10),
		fmt.Sprintf("%.1f ms", r.CompactPauseMs))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ncompactor evacuated %.1f MB across the run\n", r.EvacuatedMB)
	return b.String()
}

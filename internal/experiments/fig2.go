package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// Fig2Row is one warehouse count of Figure 2: pBOB with 25 terminals per
// warehouse on a large heap, comparing pause times.
type Fig2Row struct {
	Warehouses int
	Threads    int

	STWAvgMs, STWMaxMs               float64
	CGCAvgMs, CGCMaxMs, CGCMarkAvgMs float64
	CGCSweepAvgMs                    float64 // the paper: sweep grows to 42% of the pause
	OccupancyPct                     float64 // heap occupancy at the top of the range
}

// fig2Run is one collector's half of a Figure 2 row.
type fig2Run struct {
	AvgMs, MaxMs, MarkAvgMs, SweepAvgMs float64
	LiveAfter                           float64
}

// Fig2 reproduces Figure 2: pBOB from loWh to hiWh warehouses (the paper
// plots 40..80) at 25 terminals per warehouse with think time (autoserver
// mode idles the CPU), 4 processors and the larger packet pool. Every
// (warehouse, collector) configuration is an independent job under ex.
func Fig2(ex *Exec, sc Scale, loWh, hiWh, stepWh int) []Fig2Row {
	if loWh == 0 {
		loWh = 40
	}
	if hiWh == 0 {
		hiWh = 80
	}
	if stepWh == 0 {
		stepWh = 10
	}
	var whs []int
	var jobs []runner.Job[fig2Run]
	for wh := loWh; wh <= hiWh; wh += stepWh {
		whs = append(whs, wh)
		jopts := gcsim.JBBOptions{
			Warehouses:            wh,
			MaxWarehouses:         hiWh,
			ResidencyAtMax:        0.85, // the paper reaches 85% at 80 warehouses
			TerminalsPerWarehouse: 25,
			ThinkTime:             sc.PBOBThink,
			Seed:                  int64(200 + wh),
		}
		for _, col := range []gcsim.Collector{gcsim.STW, gcsim.CGC} {
			opts := gcsim.Options{
				HeapBytes:   sc.PBOBHeap,
				Processors:  4,
				Collector:   col,
				WorkPackets: sc.PBOBPackets,
			}
			if col == gcsim.CGC {
				opts.TracingRate = 8
			}
			name := fmt.Sprintf("fig2/wh=%d/%s", wh, col)
			ex.instrument(name, &opts, jopts.Seed)
			jobs = append(jobs, runner.Job[fig2Run]{
				Name: name,
				Run: func() (fig2Run, error) {
					r := runJBB(sc, opts, jopts)
					p, m, sw := r.pauseSummaries()
					return fig2Run{
						AvgMs:      ms(p.Avg),
						MaxMs:      ms(p.Max),
						MarkAvgMs:  ms(m.Avg),
						SweepAvgMs: ms(sw.Avg),
						LiveAfter:  r.avgLiveAfter(),
					}, nil
				},
			})
		}
	}
	runs := exec(ex, jobs)
	rows := make([]Fig2Row, 0, len(whs))
	for i, wh := range whs {
		stw, cgc := runs[2*i], runs[2*i+1]
		rows = append(rows, Fig2Row{
			Warehouses: wh,
			Threads:    wh * 25,
			STWAvgMs:   stw.AvgMs, STWMaxMs: stw.MaxMs,
			CGCAvgMs: cgc.AvgMs, CGCMaxMs: cgc.MaxMs,
			CGCMarkAvgMs:  cgc.MarkAvgMs,
			CGCSweepAvgMs: cgc.SweepAvgMs,
			OccupancyPct:  100 * cgc.LiveAfter / float64(sc.PBOBHeap),
		})
	}
	return rows
}

// RenderFig2 prints the table and plot.
func RenderFig2(rows []Fig2Row) string {
	var b strings.Builder
	b.WriteString("Figure 2: pBOB (25 terminals/warehouse, think time), tracing rate 8.0 (ms)\n\n")
	tb := stats.NewTable("warehouses", "threads", "STW avg", "STW max", "CGC avg", "CGC max", "CGC mark", "CGC sweep", "occupancy")
	var xs, stwAvg, stwMax, cgcAvg, cgcMax, cgcMark []float64
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%d", r.Warehouses),
			fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.1f", r.STWAvgMs),
			fmt.Sprintf("%.1f", r.STWMaxMs),
			fmt.Sprintf("%.1f", r.CGCAvgMs),
			fmt.Sprintf("%.1f", r.CGCMaxMs),
			fmt.Sprintf("%.1f", r.CGCMarkAvgMs),
			fmt.Sprintf("%.1f", r.CGCSweepAvgMs),
			fmt.Sprintf("%.0f%%", r.OccupancyPct),
		)
		xs = append(xs, float64(r.Warehouses))
		stwAvg = append(stwAvg, r.STWAvgMs)
		stwMax = append(stwMax, r.STWMaxMs)
		cgcAvg = append(cgcAvg, r.CGCAvgMs)
		cgcMax = append(cgcMax, r.CGCMaxMs)
		cgcMark = append(cgcMark, r.CGCMarkAvgMs)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	plot := stats.NewPlot("pBOB pause time (ms) vs warehouses", "warehouses", "ms", xs)
	plot.AddSeries("STW max", 'S', stwMax)
	plot.AddSeries("STW avg", 's', stwAvg)
	plot.AddSeries("CGC max", 'C', cgcMax)
	plot.AddSeries("CGC avg", 'c', cgcAvg)
	plot.AddSeries("CGC mark avg", 'm', cgcMark)
	b.WriteString(plot.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// TracingRateResult holds everything Tables 1, 2 and 3 report about one
// tracing-rate configuration of SPECjbb at the top warehouse count.
type TracingRateResult struct {
	Label string  // "STW", "TR 1", ...
	K0    float64 // 0 for the baseline

	// Table 1.
	Throughput      float64 // transactions per virtual second
	FloatingGarbage float64 // (avg occupancy after GC − STW's) / STW's
	AvgFinalCards   float64 // cards cleaned in the stop-the-world phase
	AvgPauseMs      float64
	MaxPauseMs      float64

	// Table 2 criteria (fractions of collections failing each one).
	CCRateFailPct    float64 // stw/conc cleaned ratio above 20%
	FreeSpaceFailPct float64 // >5% of heap free at concurrent completion
	CardsLeftPct     float64 // halted by allocation failure with cards left

	// Table 3.
	PreConcKBms float64 // pre-concurrent allocation rate, KB per virtual ms
	ConcKBms    float64 // allocation rate during the concurrent phase
	Utilization float64 // conc / pre-conc

	Cycles int

	// preWindowDegenerate marks a configuration whose pre-concurrent
	// windows were too short to measure (low tracing rates).
	preWindowDegenerate bool
}

// rateRun is one configuration's measurement, detached from its VM: the
// per-cycle stats are retained for the sequential reduction below, the VM
// itself dies with the job.
type rateRun struct {
	Throughput             float64
	AvgPauseMs, MaxPauseMs float64
	LiveAfter              float64
	Cycles                 []core.CycleStats
}

// TracingRates reproduces the Table 1/2/3 sweep: the stop-the-world
// baseline plus the mostly concurrent collector at the given K0 values
// (the paper uses 1, 4, 8, 10), all at maxWarehouses warehouses. The
// baseline and every rate are independent jobs under ex; the cross-run
// reductions (floating garbage against the baseline, degenerate-window
// substitution) happen sequentially once all runs are in.
func TracingRates(ex *Exec, sc Scale, rates []float64, warehouses int) []TracingRateResult {
	if len(rates) == 0 {
		rates = []float64{1, 4, 8, 10}
	}
	if warehouses <= 0 {
		warehouses = 8
	}
	jopts := gcsim.JBBOptions{
		Warehouses:     warehouses,
		MaxWarehouses:  warehouses,
		ResidencyAtMax: 0.6,
		Seed:           42,
	}

	measure := func(opts gcsim.Options) (rateRun, error) {
		r := runJBB(sc, opts, jopts)
		p, _, _ := r.pauseSummaries()
		return rateRun{
			Throughput: r.Throughput(),
			AvgPauseMs: ms(p.Avg),
			MaxPauseMs: ms(p.Max),
			LiveAfter:  r.avgLiveAfter(),
			Cycles:     r.Cycles,
		}, nil
	}
	stwName := fmt.Sprintf("tables/wh=%d/stw", warehouses)
	stwOpts := gcsim.Options{
		HeapBytes:   sc.JBBHeap,
		Processors:  4,
		Collector:   gcsim.STW,
		WorkPackets: sc.Packets,
	}
	ex.instrument(stwName, &stwOpts, jopts.Seed)
	jobs := []runner.Job[rateRun]{{
		Name: stwName,
		Run: func() (rateRun, error) {
			return measure(stwOpts)
		},
	}}
	for _, k0 := range rates {
		name := fmt.Sprintf("tables/wh=%d/tr=%g", warehouses, k0)
		opts := gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   gcsim.CGC,
			TracingRate: k0,
			WorkPackets: sc.Packets,
		}
		ex.instrument(name, &opts, jopts.Seed)
		jobs = append(jobs, runner.Job[rateRun]{
			Name: name,
			Run: func() (rateRun, error) {
				return measure(opts)
			},
		})
	}
	runs := exec(ex, jobs)

	stw := runs[0]
	stwLive := stw.LiveAfter
	results := []TracingRateResult{{
		Label:      "STW",
		Throughput: stw.Throughput,
		AvgPauseMs: stw.AvgPauseMs,
		MaxPauseMs: stw.MaxPauseMs,
		Cycles:     len(stw.Cycles),
	}}

	for ri, k0 := range rates {
		r := runs[ri+1]
		res := TracingRateResult{
			Label:      fmt.Sprintf("TR %g", k0),
			K0:         k0,
			Throughput: r.Throughput,
			Cycles:     len(r.Cycles),
			AvgPauseMs: r.AvgPauseMs,
			MaxPauseMs: r.MaxPauseMs,
		}
		if stwLive > 0 {
			res.FloatingGarbage = (r.LiveAfter - stwLive) / stwLive
		}

		heap := float64(sc.JBBHeap)
		var finalCards, ccFail, freeFail, cardsLeft int
		var preSum, concSum float64
		var preWindow, concWindow float64
		var rateN int
		for i := range r.Cycles {
			cs := &r.Cycles[i]
			finalCards += cs.CardsCleanedStw
			if cs.CardsCleanedConc == 0 ||
				float64(cs.CardsCleanedStw)/float64(cs.CardsCleanedConc) > 0.20 {
				ccFail++
			}
			if cs.ConcCompleted && float64(cs.FreeAtConcEnd) > 0.05*heap {
				freeFail++
			}
			if cs.CardsLeft > 0 {
				cardsLeft++
			}
			if pre, conc := cs.PreConcRate(), cs.ConcRate(); pre > 0 && conc > 0 {
				preSum += pre
				concSum += conc
				preWindow += cs.ConcStartAt.Sub(cs.PrevEndAt).Seconds()
				concWindow += cs.RequestedAt.Sub(cs.ConcStartAt).Seconds()
				rateN++
			}
		}
		// At low tracing rates the next concurrent phase starts almost
		// immediately after the previous cycle, so the pre-concurrent
		// window is too short to measure an allocation rate from (the
		// paper's footnote 6: "there is no pre-concurrent allocation rate
		// for tracing rate 1"). Mark such measurements degenerate; the
		// caller substitutes a longer-window configuration's rate, as the
		// paper substitutes tracing rate 4's.
		res.preWindowDegenerate = rateN == 0 || preWindow < 0.5*concWindow
		if n := len(r.Cycles); n > 0 {
			res.AvgFinalCards = float64(finalCards) / float64(n)
			res.CCRateFailPct = 100 * float64(ccFail) / float64(n)
			res.FreeSpaceFailPct = 100 * float64(freeFail) / float64(n)
			res.CardsLeftPct = 100 * float64(cardsLeft) / float64(n)
		}
		if rateN > 0 {
			// Bytes per virtual second → KB per virtual ms.
			res.PreConcKBms = preSum / float64(rateN) / 1024 / 1000
			res.ConcKBms = concSum / float64(rateN) / 1024 / 1000
		}
		results = append(results, res)
	}
	// Resolve degenerate pre-concurrent rates against the highest-rate
	// configuration with a healthy window, then compute utilizations.
	var refPre float64
	for i := len(results) - 1; i >= 1; i-- {
		if !results[i].preWindowDegenerate && results[i].PreConcKBms > 0 {
			refPre = results[i].PreConcKBms
			break
		}
	}
	for i := 1; i < len(results); i++ {
		r := &results[i]
		if r.preWindowDegenerate && refPre > 0 {
			r.PreConcKBms = refPre
		}
		if r.PreConcKBms > 0 {
			r.Utilization = r.ConcKBms / r.PreConcKBms
		}
	}
	return results
}

// RenderTable1 prints the Table 1 view of the sweep.
func RenderTable1(rs []TracingRateResult) string {
	var b strings.Builder
	b.WriteString("Table 1: the effects of different tracing rates (SPECjbb, 8 warehouses)\n\n")
	tb := stats.NewTable("measurement", rs[0].Label)
	header := []string{"measurement"}
	for _, r := range rs {
		header = append(header, r.Label)
	}
	tb = stats.NewTable(header...)
	row := func(name string, f func(r TracingRateResult) string) {
		cells := []string{name}
		for _, r := range rs {
			cells = append(cells, f(r))
		}
		tb.AddRow(cells...)
	}
	row("Throughput (tx/s)", func(r TracingRateResult) string { return fmt.Sprintf("%.0f", r.Throughput) })
	row("Floating garbage", func(r TracingRateResult) string {
		if r.K0 == 0 {
			return "0.0%"
		}
		return fmt.Sprintf("%.1f%%", 100*r.FloatingGarbage)
	})
	row("Avg final card cleaning", func(r TracingRateResult) string {
		if r.K0 == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", r.AvgFinalCards)
	})
	row("Average pause (ms)", func(r TracingRateResult) string { return fmt.Sprintf("%.1f", r.AvgPauseMs) })
	row("Max pause (ms)", func(r TracingRateResult) string { return fmt.Sprintf("%.1f", r.MaxPauseMs) })
	row("Cycles measured", func(r TracingRateResult) string { return fmt.Sprintf("%d", r.Cycles) })
	b.WriteString(tb.String())
	return b.String()
}

// RenderTable2 prints the metering-effectiveness criteria.
func RenderTable2(rs []TracingRateResult) string {
	var b strings.Builder
	b.WriteString("Table 2: effectiveness of metering (fraction of collections failing each criterion)\n\n")
	header := []string{"criterion"}
	for _, r := range rs {
		if r.K0 == 0 {
			continue
		}
		header = append(header, r.Label)
	}
	tb := stats.NewTable(header...)
	row := func(name string, f func(r TracingRateResult) string) {
		cells := []string{name}
		for _, r := range rs {
			if r.K0 == 0 {
				continue
			}
			cells = append(cells, f(r))
		}
		tb.AddRow(cells...)
	}
	row("CC Rate fails (>20% left to STW)", func(r TracingRateResult) string { return fmt.Sprintf("%.0f%%", r.CCRateFailPct) })
	row("Free Space fails (>5% free at completion)", func(r TracingRateResult) string { return fmt.Sprintf("%.1f%%", r.FreeSpaceFailPct) })
	row("Cards Left (halted with cards pending)", func(r TracingRateResult) string { return fmt.Sprintf("%.0f%%", r.CardsLeftPct) })
	b.WriteString(tb.String())
	return b.String()
}

// RenderTable3 prints the mutator-utilization measurement.
func RenderTable3(rs []TracingRateResult) string {
	var b strings.Builder
	b.WriteString("Table 3: mutator utilization while the concurrent collector is active\n\n")
	header := []string{"measurement"}
	for _, r := range rs {
		if r.K0 == 0 {
			continue
		}
		header = append(header, r.Label)
	}
	tb := stats.NewTable(header...)
	row := func(name string, f func(r TracingRateResult) string) {
		cells := []string{name}
		for _, r := range rs {
			if r.K0 == 0 {
				continue
			}
			cells = append(cells, f(r))
		}
		tb.AddRow(cells...)
	}
	row("pre-concurrent (KB/ms)", func(r TracingRateResult) string { return fmt.Sprintf("%.1f", r.PreConcKBms) })
	row("concurrent (KB/ms)", func(r TracingRateResult) string { return fmt.Sprintf("%.1f", r.ConcKBms) })
	row("utilization", func(r TracingRateResult) string { return fmt.Sprintf("%.0f%%", 100*r.Utilization) })
	b.WriteString(tb.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/stats"
	"mcgc/internal/weakmem"
)

// FenceResult reports Section 5's claims two ways: (a) fence counters from
// a real collector run, demonstrating the batching (one fence per
// allocation cache, one per returned packet, zero in the write barrier);
// (b) weak-memory model checking of the three protocols, demonstrating the
// fences are sufficient and necessary.
type FenceResult struct {
	Acc           core.FenceAccounting
	BarrierStores int64 // write barrier executions (each fence-free)
	CacheRefills  int64
	ObjectsAlloc  int64

	// Model checking outcomes (trials and anomalies found).
	PacketWith, PacketWithout weakmem.Result
	AllocWith, AllocWithout   weakmem.Result
	CardWith, CardWithout     weakmem.Result
}

// Fences runs a CGC SPECjbb configuration and the weakmem exploration.
func Fences(sc Scale) FenceResult {
	vm := gcsim.New(gcsim.Options{
		HeapBytes:   sc.JBBHeap,
		Processors:  4,
		Collector:   gcsim.CGC,
		TracingRate: 8,
		WorkPackets: sc.Packets,
	})
	jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8, MaxWarehouses: 8, ResidencyAtMax: 0.6, Seed: 9})
	for i := 0; i < 1000 && !jbb.Ready(); i++ {
		vm.RunFor(100 * gcsim.Millisecond)
	}
	vm.RunFor(sc.Measure)
	if err := jbb.CheckIntegrity(); err != nil {
		panic("experiments: " + err.Error())
	}
	var r FenceResult
	r.Acc = vm.CGCCollector().Fences()
	r.BarrierStores = vm.Runtime().Cards.Stats.BarrierMarks
	r.CacheRefills = vm.Runtime().Heap.Stats.CacheRefills
	r.ObjectsAlloc = vm.Runtime().Heap.Stats.ObjectsAllocated

	const trials = 300
	r.PacketWith = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.PacketHandoffTrial(s, true) })
	r.PacketWithout = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.PacketHandoffTrial(s, false) })
	r.AllocWith = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.AllocPublishTrial(s, true) })
	r.AllocWithout = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.AllocPublishTrial(s, false) })
	r.CardWith = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.CardCleanTrial(s, true) })
	r.CardWithout = weakmem.Explore(trials, func(s int64) (bool, int) { return weakmem.CardCleanTrial(s, false) })
	return r
}

// RenderFences prints both halves.
func RenderFences(r FenceResult) string {
	var b strings.Builder
	b.WriteString("Section 5: fence batching on weak-ordering hardware\n\n")
	tb := stats.NewTable("fence site", "count", "batching unit")
	tb.AddRow("allocation publish (5.2 mutator)", fmt.Sprintf("%d", r.Acc.AllocFences),
		fmt.Sprintf("1 per cache (%d refills, %d objects)", r.CacheRefills, r.ObjectsAlloc))
	tb.AddRow("packet return (5.1)", fmt.Sprintf("%d", r.Acc.PacketFences), "1 per non-empty packet returned")
	tb.AddRow("tracer pre-scan (5.2 collector)", fmt.Sprintf("%d", r.Acc.MarkFences), "1 per input packet")
	tb.AddRow("card-clean handshake (5.3)", fmt.Sprintf("%d", r.Acc.ForcedFences), "1 per mutator per registration pass")
	tb.AddRow("write barrier (5.3)", "0", fmt.Sprintf("none in %d barrier stores", r.BarrierStores))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ndeferred unsafe objects: %d, packet overflows: %d\n\n", r.Acc.Deferred, r.Acc.Overflows)

	b.WriteString("Weak-memory model checking (store-buffer adversary):\n\n")
	tb2 := stats.NewTable("protocol", "with fences", "fences removed")
	line := func(name string, w, wo weakmem.Result) {
		tb2.AddRow(name,
			fmt.Sprintf("%d/%d anomalies", w.Anomalies, w.Trials),
			fmt.Sprintf("%d/%d anomalies", wo.Anomalies, wo.Trials))
	}
	line("packet handoff (5.1)", r.PacketWith, r.PacketWithout)
	line("allocation publish (5.2)", r.AllocWith, r.AllocWithout)
	line("card cleaning (5.3)", r.CardWith, r.CardWithout)
	b.WriteString(tb2.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
	"mcgc/internal/weakmem"
)

// FenceResult reports Section 5's claims two ways: (a) fence counters from
// a real collector run, demonstrating the batching (one fence per
// allocation cache, one per returned packet, zero in the write barrier);
// (b) weak-memory model checking of the three protocols, demonstrating the
// fences are sufficient and necessary.
type FenceResult struct {
	Acc           core.FenceAccounting
	BarrierStores int64 // write barrier executions (each fence-free)
	CacheRefills  int64
	ObjectsAlloc  int64

	// Model checking outcomes (trials and anomalies found).
	PacketWith, PacketWithout weakmem.Result
	AllocWith, AllocWithout   weakmem.Result
	CardWith, CardWithout     weakmem.Result
}

// fenceCounters is the collector-run half of the fence measurement.
type fenceCounters struct {
	Acc           core.FenceAccounting
	BarrierStores int64
	CacheRefills  int64
	ObjectsAlloc  int64
}

// Fences runs a CGC SPECjbb configuration and the weakmem exploration:
// the collector run is one job, each of the six model-checking
// explorations another, all under ex.
func Fences(ex *Exec, sc Scale) FenceResult {
	counterJobs := []runner.Job[fenceCounters]{{
		Name: "fences/counters",
		Run: func() (fenceCounters, error) {
			vm := gcsim.New(gcsim.Options{
				HeapBytes:   sc.JBBHeap,
				Processors:  4,
				Collector:   gcsim.CGC,
				TracingRate: 8,
				WorkPackets: sc.Packets,
			})
			jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8, MaxWarehouses: 8, ResidencyAtMax: 0.6, Seed: 9})
			for i := 0; i < 1000 && !jbb.Ready(); i++ {
				vm.RunFor(100 * gcsim.Millisecond)
			}
			vm.RunFor(sc.Measure)
			if err := jbb.CheckIntegrity(); err != nil {
				panic("experiments: " + err.Error())
			}
			return fenceCounters{
				Acc:           vm.CGCCollector().Fences(),
				BarrierStores: vm.Runtime().Cards.Stats.BarrierMarks,
				CacheRefills:  vm.Runtime().Heap.Stats.CacheRefills,
				ObjectsAlloc:  vm.Runtime().Heap.Stats.ObjectsAllocated,
			}, nil
		},
	}}

	const trials = 300
	protocols := []struct {
		name  string
		trial func(s int64, fenced bool) (bool, int)
	}{
		{"packet", weakmem.PacketHandoffTrial},
		{"alloc", weakmem.AllocPublishTrial},
		{"card", weakmem.CardCleanTrial},
	}
	var wmJobs []runner.Job[weakmem.Result]
	for _, p := range protocols {
		for _, fenced := range []bool{true, false} {
			name := fmt.Sprintf("fences/model/%s/fenced=%t", p.name, fenced)
			wmJobs = append(wmJobs, runner.Job[weakmem.Result]{
				Name: name,
				Run: func() (weakmem.Result, error) {
					return weakmem.Explore(trials, func(s int64) (bool, int) { return p.trial(s, fenced) }), nil
				},
			})
		}
	}

	counters := exec(ex, counterJobs)[0]
	wm := exec(ex, wmJobs)

	var r FenceResult
	r.Acc = counters.Acc
	r.BarrierStores = counters.BarrierStores
	r.CacheRefills = counters.CacheRefills
	r.ObjectsAlloc = counters.ObjectsAlloc
	r.PacketWith, r.PacketWithout = wm[0], wm[1]
	r.AllocWith, r.AllocWithout = wm[2], wm[3]
	r.CardWith, r.CardWithout = wm[4], wm[5]
	return r
}

// RenderFences prints both halves.
func RenderFences(r FenceResult) string {
	var b strings.Builder
	b.WriteString("Section 5: fence batching on weak-ordering hardware\n\n")
	tb := stats.NewTable("fence site", "count", "batching unit")
	tb.AddRow("allocation publish (5.2 mutator)", fmt.Sprintf("%d", r.Acc.AllocFences),
		fmt.Sprintf("1 per cache (%d refills, %d objects)", r.CacheRefills, r.ObjectsAlloc))
	tb.AddRow("packet return (5.1)", fmt.Sprintf("%d", r.Acc.PacketFences), "1 per non-empty packet returned")
	tb.AddRow("tracer pre-scan (5.2 collector)", fmt.Sprintf("%d", r.Acc.MarkFences), "1 per input packet")
	tb.AddRow("card-clean handshake (5.3)", fmt.Sprintf("%d", r.Acc.ForcedFences), "1 per mutator per registration pass")
	tb.AddRow("write barrier (5.3)", "0", fmt.Sprintf("none in %d barrier stores", r.BarrierStores))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\ndeferred unsafe objects: %d, packet overflows: %d\n\n", r.Acc.Deferred, r.Acc.Overflows)

	b.WriteString("Weak-memory model checking (store-buffer adversary):\n\n")
	tb2 := stats.NewTable("protocol", "with fences", "fences removed")
	line := func(name string, w, wo weakmem.Result) {
		tb2.AddRow(name,
			fmt.Sprintf("%d/%d anomalies", w.Anomalies, w.Trials),
			fmt.Sprintf("%d/%d anomalies", wo.Anomalies, wo.Trials))
	}
	line("packet handoff (5.1)", r.PacketWith, r.PacketWithout)
	line("allocation publish (5.2)", r.AllocWith, r.AllocWithout)
	line("card cleaning (5.3)", r.CardWith, r.CardWithout)
	b.WriteString(tb2.String())
	return b.String()
}

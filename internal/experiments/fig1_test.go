package experiments

import "testing"

func TestFig1QuickShape(t *testing.T) {
	rows := Fig1(nil, QuickScale(), 4)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := RenderFig1(rows)
	t.Log("\n" + out)
	last := rows[len(rows)-1]
	if last.CGCAvgMs >= last.STWAvgMs {
		t.Fatalf("CGC avg %.2f not below STW %.2f at max warehouses", last.CGCAvgMs, last.STWAvgMs)
	}
	if last.CGCMarkAvgMs >= last.STWMarkAvgMs {
		t.Fatalf("CGC mark %.2f not below STW %.2f", last.CGCMarkAvgMs, last.STWMarkAvgMs)
	}
	if last.CGCThroughput > last.STWThroughput {
		t.Logf("note: CGC throughput %.0f above STW %.0f (no GC overhead visible at this scale)", last.CGCThroughput, last.STWThroughput)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// JavacResult compares the collectors on the javac workload: uniprocessor,
// 25 MB heap, 70% peak occupancy, a single background collector thread
// (Section 6.1's small-application measurement).
type JavacResult struct {
	STWAvgMs, STWMaxMs float64
	CGCAvgMs, CGCMaxMs float64
	STWUnits, CGCUnits int64 // whole compilation units (coarse)
	STWNodes, CGCNodes int64 // AST nodes processed (fine-grained throughput)
	ThroughputLossPct  float64
}

// javacRun is one collector's measurement.
type javacRun struct {
	AvgMs, MaxMs float64
	Units, Nodes int64
}

// Javac runs the comparison, one job per collector under ex.
func Javac(ex *Exec, sc Scale) JavacResult {
	run := func(opts gcsim.Options) (avg, max float64, units, nodes int64) {
		vm := gcsim.New(opts)
		j := vm.NewJavac(0.7)
		vm.RunFor(sc.Warmup)
		cyclesBefore := len(vm.Cycles())
		unitsBefore := j.Units
		nodesBefore := j.NodesProcessed
		vm.RunFor(sc.Measure * 2) // javac is single-threaded; give it time
		if j.Err != nil {
			panic("experiments: javac integrity failure: " + j.Err.Error())
		}
		vm.FinishTelemetry()
		if opts.Metrics != nil {
			opts.Metrics.Counter("run.vtime_ns").Set(int64(vm.Now()))
		}
		cycles := vm.Cycles()[cyclesBefore:]
		var ds []vtime.Duration
		var dmax vtime.Duration
		for i := range cycles {
			ds = append(ds, cycles[i].Pause)
			if cycles[i].Pause > dmax {
				dmax = cycles[i].Pause
			}
		}
		s := stats.Summarize(ds)
		return ms(s.Avg), ms(s.Max), j.Units - unitsBefore, j.NodesProcessed - nodesBefore
	}
	var jobs []runner.Job[javacRun]
	for _, col := range []gcsim.Collector{gcsim.STW, gcsim.CGC} {
		name := "javac/" + string(col)
		opts := gcsim.Options{
			HeapBytes:         sc.JavacHeap,
			Processors:        1,
			Collector:         col,
			WorkPackets:       sc.Packets,
			BackgroundThreads: 1, // "a single background collector thread"
		}
		ex.instrument(name, &opts, 0)
		jobs = append(jobs, runner.Job[javacRun]{
			Name: name,
			Run: func() (javacRun, error) {
				avg, max, units, nodes := run(opts)
				return javacRun{AvgMs: avg, MaxMs: max, Units: units, Nodes: nodes}, nil
			},
		})
	}
	runs := exec(ex, jobs)
	var r JavacResult
	r.STWAvgMs, r.STWMaxMs, r.STWUnits, r.STWNodes = runs[0].AvgMs, runs[0].MaxMs, runs[0].Units, runs[0].Nodes
	r.CGCAvgMs, r.CGCMaxMs, r.CGCUnits, r.CGCNodes = runs[1].AvgMs, runs[1].MaxMs, runs[1].Units, runs[1].Nodes
	if r.STWNodes > 0 {
		r.ThroughputLossPct = 100 * (1 - float64(r.CGCNodes)/float64(r.STWNodes))
	}
	return r
}

// RenderJavac prints the comparison.
func RenderJavac(r JavacResult) string {
	var b strings.Builder
	b.WriteString("javac (uniprocessor, 25 MB heap, 1 background thread)\n\n")
	tb := stats.NewTable("measurement", "STW", "CGC")
	tb.AddRow("avg pause (ms)", fmt.Sprintf("%.1f", r.STWAvgMs), fmt.Sprintf("%.1f", r.CGCAvgMs))
	tb.AddRow("max pause (ms)", fmt.Sprintf("%.1f", r.STWMaxMs), fmt.Sprintf("%.1f", r.CGCMaxMs))
	tb.AddRow("units compiled", fmt.Sprintf("%d", r.STWUnits), fmt.Sprintf("%d", r.CGCUnits))
	tb.AddRow("AST nodes processed", fmt.Sprintf("%d", r.STWNodes), fmt.Sprintf("%d", r.CGCNodes))
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nthroughput reduction for CGC: %.0f%% (paper: 12%%)\n", r.ThroughputLossPct)
	return b.String()
}

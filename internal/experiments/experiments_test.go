package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run at QuickScale and assert the paper's qualitative
// shapes, not absolute numbers (EXPERIMENTS.md records both).

func TestTracingRatesShapes(t *testing.T) {
	rs := TracingRates(nil, QuickScale(), []float64{1, 8}, 4)
	if len(rs) != 3 { // STW + 2 rates
		t.Fatalf("results = %d", len(rs))
	}
	t.Log("\n" + RenderTable1(rs))
	t.Log("\n" + RenderTable2(rs))
	t.Log("\n" + RenderTable3(rs))
	stw, tr1, tr8 := rs[0], rs[1], rs[2]
	// Pause: both CGC rates beat the baseline.
	if tr8.AvgPauseMs >= stw.AvgPauseMs {
		t.Errorf("TR8 pause %.2f not below STW %.2f", tr8.AvgPauseMs, stw.AvgPauseMs)
	}
	// Floating garbage: higher rate leaves less.
	if tr8.FloatingGarbage > tr1.FloatingGarbage {
		t.Errorf("floating garbage trend inverted: TR8 %.3f > TR1 %.3f", tr8.FloatingGarbage, tr1.FloatingGarbage)
	}
	// Utilization: lower rate leaves the mutators more headroom.
	if tr1.Utilization > 0 && tr8.Utilization > 0 && tr1.Utilization < tr8.Utilization {
		t.Errorf("utilization trend inverted: TR1 %.2f < TR8 %.2f", tr1.Utilization, tr8.Utilization)
	}
	for _, r := range rs[1:] {
		if r.Cycles == 0 {
			t.Errorf("%s: no cycles measured", r.Label)
		}
	}
}

func TestJavacShape(t *testing.T) {
	r := Javac(nil, QuickScale())
	t.Log("\n" + RenderJavac(r))
	if r.CGCUnits == 0 || r.STWUnits == 0 {
		t.Fatal("no compilation throughput measured")
	}
	if r.CGCAvgMs >= r.STWAvgMs {
		t.Errorf("javac CGC avg pause %.2f not below STW %.2f", r.CGCAvgMs, r.STWAvgMs)
	}
}

func TestPacketMemBounds(t *testing.T) {
	r := PacketMem(nil, QuickScale())
	t.Log("\n" + RenderPacketMem(r))
	if r.MaxSlotsInUse <= 0 || r.MaxPacketsInUse <= 0 {
		t.Fatal("watermarks not recorded")
	}
	if r.LowerBoundPct > r.UpperBoundPct {
		t.Fatalf("bounds inverted: %.3f%% > %.3f%%", r.LowerBoundPct, r.UpperBoundPct)
	}
	// The mechanism must stay a small fraction of the heap (paper: below
	// a quarter percent at full scale; allow slack at quick scale).
	if r.LowerBoundPct > 5 {
		t.Fatalf("packet slots use %.2f%% of the heap", r.LowerBoundPct)
	}
}

func TestFencesShape(t *testing.T) {
	r := Fences(nil, QuickScale())
	out := RenderFences(r)
	t.Log("\n" + out)
	if r.Acc.AllocFences == 0 || r.Acc.PacketFences == 0 {
		t.Fatal("fence counters empty")
	}
	// Batching: far fewer allocation fences than objects allocated.
	if r.Acc.AllocFences*10 > r.ObjectsAlloc {
		t.Errorf("allocation fences %d not well below objects %d", r.Acc.AllocFences, r.ObjectsAlloc)
	}
	// The write barrier executed fences exactly never.
	if !strings.Contains(out, "write barrier (5.3)") {
		t.Error("render missing write barrier row")
	}
	// Model checking: fences sufficient, and necessary.
	if r.PacketWith.Anomalies != 0 || r.AllocWith.Anomalies != 0 || r.CardWith.Anomalies != 0 {
		t.Error("anomalies observed with the paper's fences in place")
	}
	if r.PacketWithout.Anomalies == 0 || r.AllocWithout.Anomalies == 0 || r.CardWithout.Anomalies == 0 {
		t.Error("removing fences produced no anomalies; adversary too weak")
	}
}

func TestAblationShapes(t *testing.T) {
	rows := Ablations(nil, QuickScale())
	t.Log("\n" + RenderAblations(rows))
	byName := map[string]AblationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	base := byName["baseline (combined, 1 card pass)"]
	lazy := byName["lazy sweep"]
	if lazy.AvgPauseMs >= base.AvgPauseMs {
		t.Errorf("lazy sweep pause %.2f not below baseline %.2f", lazy.AvgPauseMs, base.AvgPauseMs)
	}
	if lazy.AvgSweepMs != 0 {
		t.Errorf("lazy sweep still has %.2fms sweep in the pause", lazy.AvgSweepMs)
	}
	second := byName["second card pass"]
	if second.FinalCards > base.FinalCards*1.5 && base.FinalCards > 0 {
		t.Errorf("second card pass left more cards (%.0f) than baseline (%.0f)", second.FinalCards, base.FinalCards)
	}
}

func TestFig2SmallRange(t *testing.T) {
	sc := QuickScale()
	rows := Fig2(nil, sc, 8, 16, 8) // scaled-down warehouse range for test speed
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	t.Log("\n" + RenderFig2(rows))
	for _, r := range rows {
		if r.CGCAvgMs >= r.STWAvgMs {
			t.Errorf("wh=%d: CGC avg %.2f not below STW %.2f", r.Warehouses, r.CGCAvgMs, r.STWAvgMs)
		}
		if r.CGCMarkAvgMs <= 0 {
			t.Errorf("wh=%d: no mark time recorded", r.Warehouses)
		}
	}
}

func TestTable4SmallRange(t *testing.T) {
	sc := QuickScale()
	rows := Table4(nil, sc, []int{2, 4}, 256)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	t.Log("\n" + RenderTable4(rows))
	for _, r := range rows {
		if r.AvgTracingFactor <= 0 {
			t.Errorf("wh=%d: tracing factor %.3f", r.Warehouses, r.AvgTracingFactor)
		}
		if r.AvgCostPerMB <= 0 {
			t.Errorf("wh=%d: no synchronization cost recorded", r.Warehouses)
		}
	}
}

func TestMMUShape(t *testing.T) {
	r := MMU(nil, QuickScale())
	t.Log("\n" + RenderMMU(r))
	if len(r.CGC) != len(r.WindowsMs) || len(r.STW) != len(r.WindowsMs) {
		t.Fatal("curve lengths wrong")
	}
	// CGC dominates STW at every window (its pauses are strictly shorter),
	// and both reach reasonable utilization at the largest window.
	for i := range r.WindowsMs {
		if r.CGC[i]+1e-9 < r.STW[i] {
			t.Errorf("window %.0fms: CGC MMU %.2f below STW %.2f", r.WindowsMs[i], r.CGC[i], r.STW[i])
		}
	}
	last := len(r.WindowsMs) - 1
	if r.CGC[last] <= 0.5 {
		t.Errorf("CGC MMU at %vms = %.2f; expected mostly-available mutators", r.WindowsMs[last], r.CGC[last])
	}
	// At small windows the stop-the-world collector must show zero
	// availability (its pauses exceed the window).
	if r.STW[0] != 0 {
		t.Errorf("STW MMU at 1ms = %.2f, want 0 (pauses are tens of ms)", r.STW[0])
	}
}

func TestGenerationalShape(t *testing.T) {
	r := Generational(nil, QuickScale())
	t.Log("\n" + RenderGenerational(r))
	if r.GenMinors == 0 {
		t.Fatal("no minors")
	}
	// Minor pauses must be far below full collections, and the nursery
	// must absorb enough allocation that the old space collects less
	// often than under CGC alone.
	if r.GenMinorAvgMs >= 0.5*r.STWAvgMs {
		t.Errorf("minor avg %.2fms not well below STW %.2fms", r.GenMinorAvgMs, r.STWAvgMs)
	}
	if r.CGCAvgMs >= r.STWAvgMs {
		t.Errorf("CGC avg %.2f not below STW %.2f", r.CGCAvgMs, r.STWAvgMs)
	}
	if r.GenOldCycles > r.CGCCycles {
		t.Errorf("generational ran %d old cycles, more than CGC's %d", r.GenOldCycles, r.CGCCycles)
	}
	if r.GenTx <= 0 {
		t.Error("no generational throughput")
	}
}

func TestFragmentationShape(t *testing.T) {
	r := Fragmentation(nil, QuickScale())
	t.Log("\n" + RenderFragmentation(r))
	if r.EvacuatedMB <= 0 {
		t.Fatal("compactor evacuated nothing")
	}
	// Compaction must leave the free memory less fragmented (bigger
	// largest chunk relative to free, i.e. lower index).
	if r.CompactIndex >= r.PlainIndex {
		t.Errorf("compaction did not reduce fragmentation: %.3f vs %.3f",
			r.CompactIndex, r.PlainIndex)
	}
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/stats"
)

// Fig1Row is one warehouse count of Figure 1: SPECjbb pause times under the
// stop-the-world baseline and the mostly concurrent collector.
type Fig1Row struct {
	Warehouses int

	STWAvgMs, STWMaxMs, STWMarkAvgMs float64
	CGCAvgMs, CGCMaxMs, CGCMarkAvgMs float64

	STWThroughput, CGCThroughput float64 // transactions / virtual second
	STWCycles, CGCCycles         int
}

// Fig1 reproduces Figure 1: SPECjbb from 1 to maxWarehouses warehouses with
// both collectors at tracing rate 8, plus the throughput comparison the
// paper quotes in the text (CGC loses about 10%).
func Fig1(sc Scale, maxWarehouses int) []Fig1Row {
	if maxWarehouses <= 0 {
		maxWarehouses = 8
	}
	rows := make([]Fig1Row, 0, maxWarehouses)
	for wh := 1; wh <= maxWarehouses; wh++ {
		row := Fig1Row{Warehouses: wh}
		jopts := gcsim.JBBOptions{
			Warehouses:     wh,
			MaxWarehouses:  maxWarehouses,
			ResidencyAtMax: 0.6,
			Seed:           int64(100 + wh),
		}
		stw := runJBB(sc, gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   gcsim.STW,
			WorkPackets: sc.Packets,
		}, jopts)
		p, m, _ := stw.pauseSummaries()
		row.STWAvgMs, row.STWMaxMs, row.STWMarkAvgMs = ms(p.Avg), ms(p.Max), ms(m.Avg)
		row.STWThroughput = stw.Throughput()
		row.STWCycles = len(stw.Cycles)

		cgc := runJBB(sc, gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   gcsim.CGC,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}, jopts)
		p, m, _ = cgc.pauseSummaries()
		row.CGCAvgMs, row.CGCMaxMs, row.CGCMarkAvgMs = ms(p.Avg), ms(p.Max), ms(m.Avg)
		row.CGCThroughput = cgc.Throughput()
		row.CGCCycles = len(cgc.Cycles)
		rows = append(rows, row)
	}
	return rows
}

// RenderFig1 prints the table and an ASCII rendition of the figure.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: SPECjbb pause times, tracing rate 8.0 (ms)\n\n")
	tb := stats.NewTable("warehouses", "STW avg", "STW max", "STW mark", "CGC avg", "CGC max", "CGC mark", "tput ratio")
	var xs, stwAvg, stwMax, cgcAvg, cgcMax []float64
	for _, r := range rows {
		ratio := 0.0
		if r.STWThroughput > 0 {
			ratio = r.CGCThroughput / r.STWThroughput
		}
		cell := func(cycles int, v float64) string {
			if cycles == 0 {
				return "-" // no collections in the window (few GCs at low load)
			}
			return fmt.Sprintf("%.1f", v)
		}
		tb.AddRow(
			fmt.Sprintf("%d", r.Warehouses),
			cell(r.STWCycles, r.STWAvgMs),
			cell(r.STWCycles, r.STWMaxMs),
			cell(r.STWCycles, r.STWMarkAvgMs),
			cell(r.CGCCycles, r.CGCAvgMs),
			cell(r.CGCCycles, r.CGCMaxMs),
			cell(r.CGCCycles, r.CGCMarkAvgMs),
			fmt.Sprintf("%.2f", ratio),
		)
		xs = append(xs, float64(r.Warehouses))
		stwAvg = append(stwAvg, r.STWAvgMs)
		stwMax = append(stwMax, r.STWMaxMs)
		cgcAvg = append(cgcAvg, r.CGCAvgMs)
		cgcMax = append(cgcMax, r.CGCMaxMs)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	plot := stats.NewPlot("Pause time (ms) vs warehouses", "warehouses", "ms", xs)
	plot.AddSeries("STW max", 'S', stwMax)
	plot.AddSeries("STW avg", 's', stwAvg)
	plot.AddSeries("CGC max", 'C', cgcMax)
	plot.AddSeries("CGC avg", 'c', cgcAvg)
	b.WriteString(plot.String())
	return b.String()
}

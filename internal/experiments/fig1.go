package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// Fig1Row is one warehouse count of Figure 1: SPECjbb pause times under the
// stop-the-world baseline and the mostly concurrent collector.
type Fig1Row struct {
	Warehouses int

	STWAvgMs, STWMaxMs, STWMarkAvgMs float64
	CGCAvgMs, CGCMaxMs, CGCMarkAvgMs float64

	STWThroughput, CGCThroughput float64 // transactions / virtual second
	STWCycles, CGCCycles         int
}

// fig1Run is one collector's half of a Figure 1 row, reduced inside the
// job so the VM can be collected as soon as the run ends.
type fig1Run struct {
	AvgMs, MaxMs, MarkAvgMs float64
	Throughput              float64
	Cycles                  int
}

// Fig1 reproduces Figure 1: SPECjbb from 1 to maxWarehouses warehouses with
// both collectors at tracing rate 8, plus the throughput comparison the
// paper quotes in the text (CGC loses about 10%). The 2×maxWarehouses
// configurations are independent jobs executed under ex.
func Fig1(ex *Exec, sc Scale, maxWarehouses int) []Fig1Row {
	if maxWarehouses <= 0 {
		maxWarehouses = 8
	}
	var jobs []runner.Job[fig1Run]
	for wh := 1; wh <= maxWarehouses; wh++ {
		jopts := gcsim.JBBOptions{
			Warehouses:     wh,
			MaxWarehouses:  maxWarehouses,
			ResidencyAtMax: 0.6,
			Seed:           int64(100 + wh),
		}
		for _, col := range []gcsim.Collector{gcsim.STW, gcsim.CGC} {
			opts := gcsim.Options{
				HeapBytes:   sc.JBBHeap,
				Processors:  4,
				Collector:   col,
				WorkPackets: sc.Packets,
			}
			if col == gcsim.CGC {
				opts.TracingRate = 8
			}
			name := fmt.Sprintf("fig1/wh=%d/%s", wh, col)
			ex.instrument(name, &opts, jopts.Seed)
			jobs = append(jobs, runner.Job[fig1Run]{
				Name: name,
				Run: func() (fig1Run, error) {
					r := runJBB(sc, opts, jopts)
					p, m, _ := r.pauseSummaries()
					return fig1Run{
						AvgMs:      ms(p.Avg),
						MaxMs:      ms(p.Max),
						MarkAvgMs:  ms(m.Avg),
						Throughput: r.Throughput(),
						Cycles:     len(r.Cycles),
					}, nil
				},
			})
		}
	}
	runs := exec(ex, jobs)
	rows := make([]Fig1Row, 0, maxWarehouses)
	for wh := 1; wh <= maxWarehouses; wh++ {
		stw, cgc := runs[2*(wh-1)], runs[2*(wh-1)+1]
		rows = append(rows, Fig1Row{
			Warehouses: wh,
			STWAvgMs:   stw.AvgMs, STWMaxMs: stw.MaxMs, STWMarkAvgMs: stw.MarkAvgMs,
			CGCAvgMs: cgc.AvgMs, CGCMaxMs: cgc.MaxMs, CGCMarkAvgMs: cgc.MarkAvgMs,
			STWThroughput: stw.Throughput, CGCThroughput: cgc.Throughput,
			STWCycles: stw.Cycles, CGCCycles: cgc.Cycles,
		})
	}
	return rows
}

// RenderFig1 prints the table and an ASCII rendition of the figure.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	b.WriteString("Figure 1: SPECjbb pause times, tracing rate 8.0 (ms)\n\n")
	tb := stats.NewTable("warehouses", "STW avg", "STW max", "STW mark", "CGC avg", "CGC max", "CGC mark", "tput ratio")
	var xs, stwAvg, stwMax, cgcAvg, cgcMax []float64
	for _, r := range rows {
		ratio := 0.0
		if r.STWThroughput > 0 {
			ratio = r.CGCThroughput / r.STWThroughput
		}
		cell := func(cycles int, v float64) string {
			if cycles == 0 {
				return "-" // no collections in the window (few GCs at low load)
			}
			return fmt.Sprintf("%.1f", v)
		}
		tb.AddRow(
			fmt.Sprintf("%d", r.Warehouses),
			cell(r.STWCycles, r.STWAvgMs),
			cell(r.STWCycles, r.STWMaxMs),
			cell(r.STWCycles, r.STWMarkAvgMs),
			cell(r.CGCCycles, r.CGCAvgMs),
			cell(r.CGCCycles, r.CGCMaxMs),
			cell(r.CGCCycles, r.CGCMarkAvgMs),
			fmt.Sprintf("%.2f", ratio),
		)
		xs = append(xs, float64(r.Warehouses))
		stwAvg = append(stwAvg, r.STWAvgMs)
		stwMax = append(stwMax, r.STWMaxMs)
		cgcAvg = append(cgcAvg, r.CGCAvgMs)
		cgcMax = append(cgcMax, r.CGCMaxMs)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	plot := stats.NewPlot("Pause time (ms) vs warehouses", "warehouses", "ms", xs)
	plot.AddSeries("STW max", 'S', stwMax)
	plot.AddSeries("STW avg", 's', stwAvg)
	plot.AddSeries("CGC max", 'C', cgcMax)
	plot.AddSeries("CGC avg", 'c', cgcAvg)
	b.WriteString(plot.String())
	return b.String()
}

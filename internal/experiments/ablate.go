package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// AblationRow is one design-choice variant measured on the same workload.
type AblationRow struct {
	Name        string
	AvgPauseMs  float64
	MaxPauseMs  float64
	AvgMarkMs   float64
	AvgSweepMs  float64
	Throughput  float64
	ConcDonePct float64 // cycles whose concurrent phase finished its work
	FinalCards  float64 // avg cards cleaned in the pause
}

// Ablations measures the design choices DESIGN.md calls out:
//
//   - lazy sweep (Section 7) vs sweeping inside the pause;
//   - a second concurrent card-cleaning pass (Section 2.1 footnote 2);
//   - incremental-only vs background-only vs combined tracing (Section 3);
//   - packet capacity (the BFS-degree / overflow trade of Section 4.4).
//
// One job per variant under ex.
func Ablations(ex *Exec, sc Scale) []AblationRow {
	base := func() gcsim.Options {
		return gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   gcsim.CGC,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}
	}
	// Combined incremental+background needs idle time for background
	// threads to matter: use a pBOB-flavoured workload.
	jopts := gcsim.JBBOptions{
		Warehouses:            8,
		MaxWarehouses:         8,
		ResidencyAtMax:        0.6,
		TerminalsPerWarehouse: 4,
		ThinkTime:             4 * vtime.Millisecond,
		Seed:                  77,
	}

	variants := []struct {
		name string
		opts gcsim.Options
	}{
		{"baseline (combined, 1 card pass)", base()},
		{"lazy sweep", func() gcsim.Options { o := base(); o.LazySweep = true; return o }()},
		{"second card pass", func() gcsim.Options { o := base(); o.CardPasses = 2; return o }()},
		{"incremental only (no bg threads)", func() gcsim.Options { o := base(); o.BackgroundThreads = -1; return o }()},
		{"background only (no mutator tracing)", func() gcsim.Options { o := base(); o.NoMutatorTracing = true; return o }()},
		{"small packets (cap 64)", func() gcsim.Options { o := base(); o.PacketCapacity = 64; return o }()},
		{"large packets (cap 2048)", func() gcsim.Options { o := base(); o.PacketCapacity = 2048; return o }()},
		{"incremental compaction", func() gcsim.Options { o := base(); o.IncrementalCompaction = true; return o }()},
	}

	var jobs []runner.Job[AblationRow]
	for _, v := range variants {
		name := "ablate/" + v.name
		ex.instrument(name, &v.opts, jopts.Seed)
		jobs = append(jobs, runner.Job[AblationRow]{
			Name: name,
			Run: func() (AblationRow, error) {
				r := runJBB(sc, v.opts, jopts)
				p, m, sw := r.pauseSummaries()
				row := AblationRow{
					Name:       v.name,
					AvgPauseMs: ms(p.Avg),
					MaxPauseMs: ms(p.Max),
					AvgMarkMs:  ms(m.Avg),
					AvgSweepMs: ms(sw.Avg),
					Throughput: r.Throughput(),
				}
				var concDone, finalCards int
				for i := range r.Cycles {
					if r.Cycles[i].ConcCompleted {
						concDone++
					}
					finalCards += r.Cycles[i].CardsCleanedStw
				}
				if n := len(r.Cycles); n > 0 {
					row.ConcDonePct = 100 * float64(concDone) / float64(n)
					row.FinalCards = float64(finalCards) / float64(n)
				}
				return row, nil
			},
		})
	}
	return exec(ex, jobs)
}

// RenderAblations prints the comparison.
func RenderAblations(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablations of the design choices (pBOB-flavoured workload, 4 terminals/wh, think time)\n\n")
	tb := stats.NewTable("variant", "avg pause", "max pause", "avg mark", "avg sweep", "tx/s", "conc-done", "final cards")
	for _, r := range rows {
		tb.AddRow(r.Name,
			fmt.Sprintf("%.2fms", r.AvgPauseMs),
			fmt.Sprintf("%.2fms", r.MaxPauseMs),
			fmt.Sprintf("%.2fms", r.AvgMarkMs),
			fmt.Sprintf("%.2fms", r.AvgSweepMs),
			fmt.Sprintf("%.0f", r.Throughput),
			fmt.Sprintf("%.0f%%", r.ConcDonePct),
			fmt.Sprintf("%.0f", r.FinalCards),
		)
	}
	b.WriteString(tb.String())
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// Table4Row is one thread-count configuration of the load balancing study.
type Table4Row struct {
	Warehouses int
	Threads    int

	AvgTracingFactor float64 // achieved/assigned per increment (starvation indicator)
	Fairness         float64 // standard deviation of tracing factors
	AvgCostPerMB     float64 // CAS operations per MB of live data, cycle average
	MaxCostPerMB     float64
}

// Table4 reproduces the load balancing evaluation: pBOB without think time
// (no idle), without background threads, 1000 packets, increasing terminal
// counts. The paper runs 625..1000 threads and watches the tracing factor
// stay flat, fairness degrade slowly until the packet pool is exhausted,
// and the normalized synchronization cost grow only moderately. One job
// per thread count under ex.
func Table4(ex *Exec, sc Scale, warehouseCounts []int, packets int) []Table4Row {
	if len(warehouseCounts) == 0 {
		warehouseCounts = []int{25, 30, 34, 36, 38, 40}
	}
	if packets == 0 {
		packets = 1000
	}
	maxWh := warehouseCounts[len(warehouseCounts)-1]
	var jobs []runner.Job[[]core.CycleStats]
	for _, wh := range warehouseCounts {
		jopts := gcsim.JBBOptions{
			Warehouses:            wh,
			MaxWarehouses:         maxWh,
			ResidencyAtMax:        0.6,
			TerminalsPerWarehouse: 25,
			Seed:                  int64(300 + wh),
		}
		name := fmt.Sprintf("table4/wh=%d", wh)
		opts := gcsim.Options{
			HeapBytes:         sc.Table4Heap,
			Processors:        4,
			Collector:         gcsim.CGC,
			TracingRate:       8,
			WorkPackets:       packets,
			BackgroundThreads: -1, // the paper measures without background threads
		}
		ex.instrument(name, &opts, jopts.Seed)
		jobs = append(jobs, runner.Job[[]core.CycleStats]{
			Name: name,
			Run: func() ([]core.CycleStats, error) {
				r := runJBB(sc, opts, jopts)
				return r.Cycles, nil
			},
		})
	}
	runs := exec(ex, jobs)

	var rows []Table4Row
	for wi, wh := range warehouseCounts {
		cycles := runs[wi]
		row := Table4Row{Warehouses: wh, Threads: wh * 25}
		var tfSum, fairSum float64
		var tfN int
		var costSum, costMax float64
		var costN int
		for i := range cycles {
			cs := &cycles[i]
			if cs.TracingFactors.N() > 0 {
				tfSum += cs.TracingFactors.Mean()
				fairSum += cs.TracingFactors.StdDev()
				tfN++
			}
			if cs.LiveAfter > 0 {
				cost := float64(cs.CASAtEnd-cs.CASAtStart) / (float64(cs.LiveAfter) / (1 << 20))
				costSum += cost
				if cost > costMax {
					costMax = cost
				}
				costN++
			}
		}
		if tfN > 0 {
			row.AvgTracingFactor = tfSum / float64(tfN)
			row.Fairness = fairSum / float64(tfN)
		}
		if costN > 0 {
			row.AvgCostPerMB = costSum / float64(costN)
			row.MaxCostPerMB = costMax
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 prints the load balancing table.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: the quality of load balancing (pBOB, no idle time, no background threads)\n\n")
	header := []string{"measurement"}
	for _, r := range rows {
		header = append(header, fmt.Sprintf("%dwh/%dthr", r.Warehouses, r.Threads))
	}
	tb := stats.NewTable(header...)
	row := func(name string, f func(r Table4Row) string) {
		cells := []string{name}
		for _, r := range rows {
			cells = append(cells, f(r))
		}
		tb.AddRow(cells...)
	}
	row("avg tracing factor", func(r Table4Row) string { return fmt.Sprintf("%.3f", r.AvgTracingFactor) })
	row("fairness (stddev)", func(r Table4Row) string { return fmt.Sprintf("%.3f", r.Fairness) })
	row("avg cost (CAS/MB live)", func(r Table4Row) string { return fmt.Sprintf("%.0f", r.AvgCostPerMB) })
	row("max cost (CAS/MB live)", func(r Table4Row) string { return fmt.Sprintf("%.0f", r.MaxCostPerMB) })
	b.WriteString(tb.String())
	return b.String()
}

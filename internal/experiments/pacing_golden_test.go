package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcgc/gcsim"
)

// The Section 3 pacing machinery was extracted from internal/core into the
// backend-neutral internal/pacing package. This golden test pins the
// refactor: a fixed simulator configuration must produce byte-identical
// per-cycle statistics to a fixture captured before the extraction. Any
// drift in the kickoff formula, the progress formula, the Best discount or
// the corrective term moves a cycle boundary and fails the comparison.
//
// Regenerate (only for a deliberate pacing-behaviour change) with:
//
//	UPDATE_PACING_GOLDEN=1 go test ./internal/experiments -run TestPacingGoldenFixture
func TestPacingGoldenFixture(t *testing.T) {
	sc := QuickScale()
	var b strings.Builder
	for _, wh := range []int{2, 4} {
		r := runJBB(sc, gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   gcsim.CGC,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}, gcsim.JBBOptions{
			Warehouses:     wh,
			MaxWarehouses:  4,
			ResidencyAtMax: 0.6,
			Seed:           int64(900 + wh),
		})
		if len(r.Cycles) == 0 {
			t.Fatalf("wh=%d measured no cycles; the fixture would be vacuous", wh)
		}
		fmt.Fprintf(&b, "== wh=%d cycles=%d\n", wh, len(r.Cycles))
		for i, cs := range r.Cycles {
			fmt.Fprintf(&b, "%3d %+v\n", i, cs)
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "pacing_golden.txt")
	if os.Getenv("UPDATE_PACING_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d bytes to %s", len(got), path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with UPDATE_PACING_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		// Locate the first differing line for a readable failure.
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Fatalf("pacing output diverged from the pre-refactor fixture at line %d:\n got: %s\nwant: %s", i+1, gl[i], wl[i])
			}
		}
		t.Fatalf("pacing output diverged from the fixture: got %d lines, want %d", len(gl), len(wl))
	}
}

package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/runmeta"
	"mcgc/internal/runner"
	"mcgc/internal/telemetry"
)

// The parallel harness must not change results: every simulated VM is
// deterministic and self-contained, so fanning the configuration matrix
// across workers has to produce byte-identical tables and identical
// per-cycle statistics to a sequential run.

func TestFig1ParallelMatchesSequential(t *testing.T) {
	sc := QuickScale()
	seq := Fig1(Seq(), sc, 3)
	par := Fig1(Parallel(4), sc, 3)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("rows differ between -j 1 and -j 4:\nseq: %+v\npar: %+v", seq, par)
	}
	seqRender, parRender := RenderFig1(seq), RenderFig1(par)
	if seqRender != parRender {
		t.Fatalf("rendered tables not byte-identical:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqRender, parRender)
	}
}

func TestPerCycleStatsParallelMatchesSequential(t *testing.T) {
	sc := QuickScale()
	// Four distinct configurations, each returning its full per-cycle
	// statistics; run the identical batch sequentially and with 4 workers.
	batch := func() []runner.Job[[]core.CycleStats] {
		var jobs []runner.Job[[]core.CycleStats]
		for wh := 1; wh <= 4; wh++ {
			jopts := gcsim.JBBOptions{
				Warehouses:     wh,
				MaxWarehouses:  4,
				ResidencyAtMax: 0.6,
				Seed:           int64(500 + wh),
			}
			jobs = append(jobs, runner.Job[[]core.CycleStats]{
				Name: fmt.Sprintf("det/wh=%d", wh),
				Run: func() ([]core.CycleStats, error) {
					r := runJBB(sc, gcsim.Options{
						HeapBytes:   sc.JBBHeap,
						Processors:  4,
						Collector:   gcsim.CGC,
						TracingRate: 8,
						WorkPackets: sc.Packets,
					}, jopts)
					return r.Cycles, nil
				},
			})
		}
		return jobs
	}
	seqResults, _ := runner.Run(1, batch())
	parResults, _ := runner.Run(4, batch())
	seq := runner.Values(seqResults)
	par := runner.Values(parResults)
	for i := range seq {
		if len(seq[i]) == 0 {
			t.Fatalf("job %d measured no cycles; the comparison is vacuous", i)
		}
		// Byte-level comparison of the formatted stats catches any field
		// drifting, including unexported ones %+v reaches.
		a, b := fmt.Sprintf("%+v", seq[i]), fmt.Sprintf("%+v", par[i])
		if a != b {
			t.Errorf("job %d per-cycle stats differ between -j 1 and -j 4:\nseq: %s\npar: %s", i, a, b)
		}
	}
}

// Telemetry output must be as deterministic as the tables: the collector
// sorts runs by (exp, name) at write time, every metric is keyed by virtual
// time, and nothing in the sinks consults the host clock, so the JSONL and
// trace files must come out byte-identical whatever J is.
func TestTelemetryDeterministicAcrossJ(t *testing.T) {
	sc := QuickScale()
	suite := runmeta.Suite{Scale: "quick"}
	dump := func(j int) (jsonl, trace string) {
		ex := Parallel(j)
		ex.Telemetry = telemetry.NewCollector(true)
		Fig1(ex, sc, 2)
		var mb, tb strings.Builder
		if err := ex.Telemetry.WriteJSONL(&mb, suite); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		if err := ex.Telemetry.WriteTrace(&tb, suite); err != nil {
			t.Fatalf("WriteTrace: %v", err)
		}
		return mb.String(), tb.String()
	}
	seqJSONL, seqTrace := dump(1)
	parJSONL, parTrace := dump(4)
	if seqJSONL != parJSONL {
		t.Errorf("telemetry JSONL differs between -j 1 and -j 4")
	}
	if seqTrace != parTrace {
		t.Errorf("telemetry trace differs between -j 1 and -j 4")
	}
	if len(seqJSONL) == 0 || seqJSONL == "\n" {
		t.Fatalf("telemetry JSONL is empty; the comparison is vacuous")
	}
}

// Enabling telemetry must not perturb the simulation: the instrumentation
// only observes virtual time and never charges it, so the rendered tables
// have to be byte-identical with and without a collector attached.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	sc := QuickScale()
	plain := Seq()
	bare := RenderFig1(Fig1(plain, sc, 2))
	instrumented := Seq()
	instrumented.Telemetry = telemetry.NewCollector(true)
	traced := RenderFig1(Fig1(instrumented, sc, 2))
	if bare != traced {
		t.Fatalf("enabling telemetry changed experiment results:\n--- bare ---\n%s\n--- instrumented ---\n%s", bare, traced)
	}
}

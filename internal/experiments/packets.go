package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/heapsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// PacketMemResult is the Section 6.3 watermark measurement: how much memory
// the work packet mechanism actually needs, as a fraction of the heap. The
// paper bounds it between 0.11% and 0.25% and calls 0.15% realistic.
type PacketMemResult struct {
	HeapBytes       int64
	MaxSlotsInUse   int64 // lower bound: occupied entries at the high-water mark
	MaxPacketsInUse int64 // upper bound: packets simultaneously checked out
	PacketCapacity  int

	LowerBoundPct float64 // slots * 8 bytes / heap
	UpperBoundPct float64 // packets * capacity * 8 bytes / heap
}

// PacketMem runs a SPECjbb configuration and reads the pool watermarks.
// Its matrix is a single configuration, but it still goes through ex so
// the run shows up in the harness telemetry.
func PacketMem(ex *Exec, sc Scale) PacketMemResult {
	jobs := []runner.Job[PacketMemResult]{{
		Name: "packets/watermarks",
		Run: func() (PacketMemResult, error) {
			vm := gcsim.New(gcsim.Options{
				HeapBytes:   sc.JBBHeap,
				Processors:  4,
				Collector:   gcsim.CGC,
				TracingRate: 8,
				WorkPackets: sc.Packets,
			})
			jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8, MaxWarehouses: 8, ResidencyAtMax: 0.6, Seed: 5})
			for i := 0; i < 1000 && !jbb.Ready(); i++ {
				vm.RunFor(100 * gcsim.Millisecond)
			}
			vm.RunFor(sc.Measure)
			if err := jbb.CheckIntegrity(); err != nil {
				panic("experiments: " + err.Error())
			}
			pool := vm.CGCCollector().Pool()
			r := PacketMemResult{
				HeapBytes:       sc.JBBHeap,
				MaxSlotsInUse:   pool.Stats.MaxSlotsInUse.Load(),
				MaxPacketsInUse: pool.Stats.MaxInUse.Load(),
				PacketCapacity:  pool.Capacity(),
			}
			r.LowerBoundPct = 100 * float64(r.MaxSlotsInUse*heapsim.WordBytes) / float64(r.HeapBytes)
			r.UpperBoundPct = 100 * float64(r.MaxPacketsInUse*int64(r.PacketCapacity)*heapsim.WordBytes) / float64(r.HeapBytes)
			return r, nil
		},
	}}
	return exec(ex, jobs)[0]
}

// RenderPacketMem prints the watermark analysis.
func RenderPacketMem(r PacketMemResult) string {
	var b strings.Builder
	b.WriteString("Work packet memory requirements (Section 6.3 watermarks)\n\n")
	tb := stats.NewTable("watermark", "value", "as % of heap")
	tb.AddRow("max slots in use (lower bound)",
		fmt.Sprintf("%d entries", r.MaxSlotsInUse),
		fmt.Sprintf("%.3f%%", r.LowerBoundPct))
	tb.AddRow("max packets in use (upper bound)",
		fmt.Sprintf("%d x %d entries", r.MaxPacketsInUse, r.PacketCapacity),
		fmt.Sprintf("%.3f%%", r.UpperBoundPct))
	b.WriteString(tb.String())
	b.WriteString("\npaper: bounded between 0.11% and 0.25% of the heap; 0.15% called realistic\n")
	return b.String()
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment builds the same configuration the
// paper describes — scaled by a Scale so a laptop run finishes in seconds —
// runs it on the simulated machine, and reduces the cycle statistics to the
// same rows or series the paper reports. cmd/gcbench prints them; the
// benchmarks in the repository root re-run them under `go test -bench`.
package experiments

import (
	"strings"
	"sync"

	"mcgc/gcsim"
	"mcgc/internal/core"
	"mcgc/internal/runmeta"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
	"mcgc/internal/telemetry"
	"mcgc/internal/vtime"
	"mcgc/internal/workload"
)

// Exec is the execution policy for an experiment: how many independent
// simulator runs may be in flight at once, and the accumulated runner
// telemetry of every batch executed through it. Every experiment's
// configuration matrix is expressed as a job list and executed through an
// Exec; results always come back in submission order, so the rendered
// tables are byte-identical whatever J is. A nil *Exec means sequential.
type Exec struct {
	// J is the maximum number of concurrent simulator runs (0 or 1 means
	// sequential; runner.Run treats <= 0 as GOMAXPROCS, so Exec pins the
	// default to 1 explicitly).
	J int

	// Telemetry, when set, collects per-run metrics and timeline events:
	// every instrumented run registers itself here, and the caller writes
	// the collector out (JSONL and/or Chrome trace) after the suite.
	Telemetry *telemetry.Collector

	mu    sync.Mutex
	stats []runner.Stats
}

// Seq returns a sequential execution policy.
func Seq() *Exec { return &Exec{J: 1} }

// Parallel returns a policy running up to j simulator runs concurrently.
func Parallel(j int) *Exec {
	if j < 1 {
		j = 1
	}
	return &Exec{J: j}
}

// TakeStats drains the telemetry accumulated since the last call: one
// runner.Stats per executed batch, in execution order.
func (ex *Exec) TakeStats() []runner.Stats {
	if ex == nil {
		return nil
	}
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := ex.stats
	ex.stats = nil
	return out
}

func (ex *Exec) note(st runner.Stats) {
	if ex == nil {
		return
	}
	ex.mu.Lock()
	ex.stats = append(ex.stats, st)
	ex.mu.Unlock()
}

// instrument attaches a telemetry run to opts when ex carries a collector
// (no-op otherwise, leaving opts.Metrics/Timeline nil so the simulator's
// instrumented paths cost nothing). The run is keyed by the job name, whose
// leading path segment is the experiment (e.g. "fig1/wh=3/cgc" → exp
// "fig1"). Called at job-construction time, before the batch runs, so run
// registration order is deterministic whatever J is.
func (ex *Exec) instrument(name string, opts *gcsim.Options, seed int64) {
	if ex == nil || ex.Telemetry == nil {
		return
	}
	exp := name
	if i := strings.IndexByte(name, '/'); i >= 0 {
		exp = name[:i]
	}
	col := string(opts.Collector)
	if col == "" {
		col = string(gcsim.CGC)
	}
	run := ex.Telemetry.StartRun(runmeta.Run{
		Exp:       exp,
		Name:      name,
		Collector: col,
		Seed:      seed,
		Workers:   opts.Processors,
		HeapBytes: opts.HeapBytes,
	})
	opts.Metrics = run.Registry
	opts.Timeline = run.Timeline
}

// exec runs a job batch under the policy and unwraps the values (panicking
// on job failure, matching the suite's historical behavior on integrity
// errors).
func exec[T any](ex *Exec, jobs []runner.Job[T]) []T {
	j := 1
	if ex != nil && ex.J > 1 {
		j = ex.J
	}
	results, st := runner.Run(j, jobs)
	ex.note(st)
	return runner.Values(results)
}

// Scale selects experiment sizing. The paper's hardware ran minutes-long
// benchmarks on a 256 MB (SPECjbb) and 2.5 GB (pBOB) heap; the default
// scale shrinks heaps and run lengths proportionally, which preserves every
// shape the paper reports (the collectors' work is proportional to heap
// contents, not wall time).
type Scale struct {
	// JBBHeap is the SPECjbb heap (paper: 256 MB).
	JBBHeap int64
	// PBOBHeap is the pBOB heap for Figure 2 (paper: 2.5 GB).
	PBOBHeap int64
	// Table4Heap is the pBOB heap for the load-balancing study
	// (paper: 1.2 GB).
	Table4Heap int64
	// JavacHeap is the javac heap (paper: 25 MB — kept as is).
	JavacHeap int64
	// Measure is the virtual measurement window per configuration.
	Measure vtime.Duration
	// Warmup is the extra virtual time after the workload reports ready.
	Warmup vtime.Duration
	// Packets is the SPECjbb work packet pool size (paper: 1000).
	Packets int
	// PBOBPackets is Figure 2's pool size (paper: 3000).
	PBOBPackets int
	// PBOBThink is the per-transaction think time of the pBOB terminals
	// (Figure 2; scaled with the heap so cycles still occur in the
	// measurement window).
	PBOBThink vtime.Duration
}

// DefaultScale finishes the full suite in a few minutes of real time.
func DefaultScale() Scale {
	return Scale{
		JBBHeap:     64 << 20,
		PBOBHeap:    192 << 20,
		Table4Heap:  96 << 20,
		JavacHeap:   25 << 20,
		Measure:     4 * vtime.Second,
		Warmup:      500 * vtime.Millisecond,
		Packets:     1000,
		PBOBPackets: 3000,
		PBOBThink:   20 * vtime.Millisecond,
	}
}

// PaperScale reproduces the paper's sizes exactly (minutes to hours of real
// time on one host CPU).
func PaperScale() Scale {
	s := DefaultScale()
	s.JBBHeap = 256 << 20
	s.PBOBHeap = 2560 << 20
	s.Table4Heap = 1200 << 20
	s.Measure = 8 * vtime.Second
	return s
}

// QuickScale is for the Go benchmarks: small enough for -bench iterations.
func QuickScale() Scale {
	s := DefaultScale()
	s.JBBHeap = 24 << 20
	s.PBOBHeap = 48 << 20
	s.Table4Heap = 32 << 20
	s.JavacHeap = 12 << 20
	s.Measure = 1500 * vtime.Millisecond
	s.Warmup = 200 * vtime.Millisecond
	s.Packets = 512
	s.PBOBPackets = 512
	s.PBOBThink = 4 * vtime.Millisecond
	return s
}

// runResult is one measured configuration.
type runResult struct {
	VM      *gcsim.VM
	JBB     *workload.JBB
	Cycles  []core.CycleStats // cycles inside the measurement window
	Tx      int64             // transactions inside the window
	Elapsed vtime.Duration    // the window length
}

// Throughput returns transactions per virtual second.
func (r runResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Tx) / r.Elapsed.Seconds()
}

// pauseSummaries reduces the window's cycles.
func (r runResult) pauseSummaries() (pause, mark, sweep stats.DurationSummary) {
	return core.SummarizePauses(r.Cycles)
}

// avgLiveAfter returns the mean post-GC occupancy in the window.
func (r runResult) avgLiveAfter() float64 {
	if len(r.Cycles) == 0 {
		return 0
	}
	var sum int64
	for i := range r.Cycles {
		sum += r.Cycles[i].LiveAfter
	}
	return float64(sum) / float64(len(r.Cycles))
}

// runJBB builds a VM + warehouse workload, warms it up (populations built,
// plus Scale.Warmup of steady running), and measures for Scale.Measure.
func runJBB(sc Scale, opts gcsim.Options, jopts gcsim.JBBOptions) runResult {
	vm := gcsim.New(opts)
	jbb := vm.NewJBB(jopts)
	// Warmup: run until every warehouse is built (bounded by a generous
	// deadline), then the configured extra settle time.
	for i := 0; i < 1000 && !jbb.Ready(); i++ {
		vm.RunFor(100 * vtime.Millisecond)
	}
	if !jbb.Ready() {
		panic("experiments: warehouses never became ready — heap too small for the configuration")
	}
	vm.RunFor(sc.Warmup)
	cyclesBefore := len(vm.Cycles())
	txBefore := jbb.Transactions()
	start := vm.Now()
	vm.RunFor(sc.Measure)
	if err := jbb.CheckIntegrity(); err != nil {
		panic("experiments: integrity failure: " + err.Error())
	}
	vm.FinishTelemetry()
	if opts.Metrics != nil {
		opts.Metrics.Counter("run.vtime_ns").Set(int64(vm.Now()))
		opts.Metrics.Counter("run.transactions").Set(jbb.Transactions())
	}
	all := vm.Cycles()
	return runResult{
		VM:      vm,
		JBB:     jbb,
		Cycles:  all[cyclesBefore:],
		Tx:      jbb.Transactions() - txBefore,
		Elapsed: vm.Now().Sub(start),
	}
}

func ms(d vtime.Duration) float64 { return d.Milliseconds() }

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/stats"
)

// GenResult compares the three collectors on the same workload: the
// baseline, the mostly concurrent collector, and the generational extension
// (the paper's announced future work — the Printezis–Detlefs combination).
type GenResult struct {
	STWAvgMs, STWMaxMs float64
	CGCAvgMs, CGCMaxMs float64

	GenMajorAvgMs, GenMajorMaxMs float64 // old-space cycle pauses
	GenMinorAvgMs, GenMinorMaxMs float64 // nursery scavenges
	GenMinors                    int
	GenOldCycles                 int
	CGCCycles                    int
	GenPromotedMB                float64

	STWTx, CGCTx, GenTx float64 // throughput, tx per virtual second
}

// Generational runs the comparison at 8 warehouses. The transaction mix is
// tilted toward short-lived temporaries (high young mortality): that is the
// regime a nursery exists for — under the default mix nearly half of all
// allocation is long-lived block data and en-masse promotion erases the
// generational advantage.
func Generational(sc Scale) GenResult {
	jopts := gcsim.JBBOptions{
		Warehouses:          8,
		MaxWarehouses:       8,
		ResidencyAtMax:      0.6,
		TxGarbageObjects:    48,
		BlockReplacePercent: 8,
		Seed:                23,
	}
	base := func(col gcsim.Collector) gcsim.Options {
		return gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   col,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}
	}
	var r GenResult

	stw := runJBB(sc, base(gcsim.STW), jopts)
	p, _, _ := stw.pauseSummaries()
	r.STWAvgMs, r.STWMaxMs, r.STWTx = ms(p.Avg), ms(p.Max), stw.Throughput()

	cgc := runJBB(sc, base(gcsim.CGC), jopts)
	p, _, _ = cgc.pauseSummaries()
	r.CGCAvgMs, r.CGCMaxMs, r.CGCTx = ms(p.Avg), ms(p.Max), cgc.Throughput()
	r.CGCCycles = len(cgc.Cycles)

	opts := base(gcsim.GenCGC)
	opts.NurseryBytes = sc.JBBHeap / 8
	gen := runJBB(sc, opts, jopts)
	p, _, _ = gen.pauseSummaries()
	r.GenMajorAvgMs, r.GenMajorMaxMs = ms(p.Avg), ms(p.Max)
	r.GenTx = gen.Throughput()
	g := gen.VM.Generational()
	avg, max := g.MinorPauses()
	r.GenMinorAvgMs, r.GenMinorMaxMs = ms(avg), ms(max)
	r.GenMinors = len(g.Minors)
	r.GenOldCycles = len(g.Old().Cycles)
	r.GenPromotedMB = float64(g.PromotedBytes) / (1 << 20)
	return r
}

// RenderGenerational prints the comparison.
func RenderGenerational(r GenResult) string {
	var b strings.Builder
	b.WriteString("Generational extension (future work from the paper's introduction):\n")
	b.WriteString("nursery scavenges in front of the mostly concurrent old-space collector\n\n")
	tb := stats.NewTable("collector", "avg pause", "max pause", "tx/s")
	tb.AddRow("STW", fmt.Sprintf("%.1f ms", r.STWAvgMs), fmt.Sprintf("%.1f ms", r.STWMaxMs), fmt.Sprintf("%.0f", r.STWTx))
	tb.AddRow("CGC", fmt.Sprintf("%.1f ms", r.CGCAvgMs), fmt.Sprintf("%.1f ms", r.CGCMaxMs), fmt.Sprintf("%.0f", r.CGCTx))
	tb.AddRow("GenCGC minor", fmt.Sprintf("%.2f ms", r.GenMinorAvgMs), fmt.Sprintf("%.2f ms", r.GenMinorMaxMs), fmt.Sprintf("%.0f", r.GenTx))
	tb.AddRow("GenCGC major", fmt.Sprintf("%.1f ms", r.GenMajorAvgMs), fmt.Sprintf("%.1f ms", r.GenMajorMaxMs), "")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nGenCGC: %d minors, %d old-space cycles (CGC alone ran %d), %.1f MB promoted\n",
		r.GenMinors, r.GenOldCycles, r.CGCCycles, r.GenPromotedMB)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
)

// GenResult compares the three collectors on the same workload: the
// baseline, the mostly concurrent collector, and the generational extension
// (the paper's announced future work — the Printezis–Detlefs combination).
type GenResult struct {
	STWAvgMs, STWMaxMs float64
	CGCAvgMs, CGCMaxMs float64

	GenMajorAvgMs, GenMajorMaxMs float64 // old-space cycle pauses
	GenMinorAvgMs, GenMinorMaxMs float64 // nursery scavenges
	GenMinors                    int
	GenOldCycles                 int
	CGCCycles                    int
	GenPromotedMB                float64

	STWTx, CGCTx, GenTx float64 // throughput, tx per virtual second
}

// genRun is one collector's measurement; the generational fields are only
// set for the GenCGC job.
type genRun struct {
	AvgMs, MaxMs float64
	Tput         float64
	Cycles       int

	MinorAvgMs, MinorMaxMs float64
	Minors, OldCycles      int
	PromotedMB             float64
}

// Generational runs the comparison at 8 warehouses, one job per collector
// under ex. The transaction mix is tilted toward short-lived temporaries
// (high young mortality): that is the regime a nursery exists for — under
// the default mix nearly half of all allocation is long-lived block data
// and en-masse promotion erases the generational advantage.
func Generational(ex *Exec, sc Scale) GenResult {
	jopts := gcsim.JBBOptions{
		Warehouses:          8,
		MaxWarehouses:       8,
		ResidencyAtMax:      0.6,
		TxGarbageObjects:    48,
		BlockReplacePercent: 8,
		Seed:                23,
	}
	base := func(col gcsim.Collector) gcsim.Options {
		return gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   col,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}
	}
	var jobs []runner.Job[genRun]
	for _, col := range []gcsim.Collector{gcsim.STW, gcsim.CGC, gcsim.GenCGC} {
		opts := base(col)
		if col == gcsim.GenCGC {
			opts.NurseryBytes = sc.JBBHeap / 8
		}
		name := "gen/" + string(col)
		ex.instrument(name, &opts, jopts.Seed)
		jobs = append(jobs, runner.Job[genRun]{
			Name: name,
			Run: func() (genRun, error) {
				run := runJBB(sc, opts, jopts)
				p, _, _ := run.pauseSummaries()
				out := genRun{
					AvgMs:  ms(p.Avg),
					MaxMs:  ms(p.Max),
					Tput:   run.Throughput(),
					Cycles: len(run.Cycles),
				}
				if col == gcsim.GenCGC {
					g := run.VM.Generational()
					avg, max := g.MinorPauses()
					out.MinorAvgMs, out.MinorMaxMs = ms(avg), ms(max)
					out.Minors = len(g.Minors)
					out.OldCycles = len(g.Old().Cycles)
					out.PromotedMB = float64(g.PromotedBytes) / (1 << 20)
				}
				return out, nil
			},
		})
	}
	runs := exec(ex, jobs)
	stw, cgc, gen := runs[0], runs[1], runs[2]

	var r GenResult
	r.STWAvgMs, r.STWMaxMs, r.STWTx = stw.AvgMs, stw.MaxMs, stw.Tput
	r.CGCAvgMs, r.CGCMaxMs, r.CGCTx = cgc.AvgMs, cgc.MaxMs, cgc.Tput
	r.CGCCycles = cgc.Cycles
	r.GenMajorAvgMs, r.GenMajorMaxMs = gen.AvgMs, gen.MaxMs
	r.GenTx = gen.Tput
	r.GenMinorAvgMs, r.GenMinorMaxMs = gen.MinorAvgMs, gen.MinorMaxMs
	r.GenMinors = gen.Minors
	r.GenOldCycles = gen.OldCycles
	r.GenPromotedMB = gen.PromotedMB
	return r
}

// RenderGenerational prints the comparison.
func RenderGenerational(r GenResult) string {
	var b strings.Builder
	b.WriteString("Generational extension (future work from the paper's introduction):\n")
	b.WriteString("nursery scavenges in front of the mostly concurrent old-space collector\n\n")
	tb := stats.NewTable("collector", "avg pause", "max pause", "tx/s")
	tb.AddRow("STW", fmt.Sprintf("%.1f ms", r.STWAvgMs), fmt.Sprintf("%.1f ms", r.STWMaxMs), fmt.Sprintf("%.0f", r.STWTx))
	tb.AddRow("CGC", fmt.Sprintf("%.1f ms", r.CGCAvgMs), fmt.Sprintf("%.1f ms", r.CGCMaxMs), fmt.Sprintf("%.0f", r.CGCTx))
	tb.AddRow("GenCGC minor", fmt.Sprintf("%.2f ms", r.GenMinorAvgMs), fmt.Sprintf("%.2f ms", r.GenMinorMaxMs), fmt.Sprintf("%.0f", r.GenTx))
	tb.AddRow("GenCGC major", fmt.Sprintf("%.1f ms", r.GenMajorAvgMs), fmt.Sprintf("%.1f ms", r.GenMajorMaxMs), "")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nGenCGC: %d minors, %d old-space cycles (CGC alone ran %d), %.1f MB promoted\n",
		r.GenMinors, r.GenOldCycles, r.CGCCycles, r.GenPromotedMB)
	return b.String()
}

package experiments

import (
	"fmt"
	"strings"

	"mcgc/gcsim"
	"mcgc/internal/runner"
	"mcgc/internal/stats"
	"mcgc/internal/vtime"
)

// MMUResult holds minimum-mutator-utilization curves for both collectors on
// the same workload. Section 6.2 of the paper discusses wanting the
// Cheng–Blelloch MMU but finding it "very difficult to measure when the
// number of threads exceeds the number of processors"; the simulator keeps
// the exact pause timeline, so the metric is computed directly here (as
// pause-based availability: incremental tracing tax shows up in Table 3's
// utilization, not in MMU).
type MMUResult struct {
	WindowsMs []float64
	STW, CGC  []float64
}

// MMU measures both collectors at 8 warehouses, one job per collector
// under ex.
func MMU(ex *Exec, sc Scale) MMUResult {
	windows := []vtime.Duration{
		1 * vtime.Millisecond,
		2 * vtime.Millisecond,
		5 * vtime.Millisecond,
		10 * vtime.Millisecond,
		20 * vtime.Millisecond,
		50 * vtime.Millisecond,
		100 * vtime.Millisecond,
		200 * vtime.Millisecond,
		500 * vtime.Millisecond,
	}
	run := func(opts gcsim.Options) []float64 {
		jopts := gcsim.JBBOptions{Warehouses: 8, MaxWarehouses: 8, ResidencyAtMax: 0.6, Seed: 6}
		r := runJBB(sc, opts, jopts)
		var pauses []stats.Interval
		var t0, t1 vtime.Time
		// Use the measurement window: from the first measured cycle's
		// request to the end of the run.
		if len(r.Cycles) == 0 {
			return make([]float64, len(windows))
		}
		t0 = r.Cycles[0].RequestedAt
		t1 = r.VM.Now()
		for i := range r.Cycles {
			pauses = append(pauses, stats.Interval{
				Start: r.Cycles[i].RequestedAt,
				End:   r.Cycles[i].EndAt,
			})
		}
		// Shift to a zero-based timeline.
		for i := range pauses {
			pauses[i].Start -= t0
			pauses[i].End -= t0
		}
		return stats.MMUCurve(pauses, t1.Sub(t0), windows)
	}
	res := MMUResult{}
	for _, w := range windows {
		res.WindowsMs = append(res.WindowsMs, w.Milliseconds())
	}
	var jobs []runner.Job[[]float64]
	for _, col := range []gcsim.Collector{gcsim.STW, gcsim.CGC} {
		name := "mmu/" + string(col)
		opts := gcsim.Options{
			HeapBytes:   sc.JBBHeap,
			Processors:  4,
			Collector:   col,
			TracingRate: 8,
			WorkPackets: sc.Packets,
		}
		ex.instrument(name, &opts, 6)
		jobs = append(jobs, runner.Job[[]float64]{
			Name: name,
			Run:  func() ([]float64, error) { return run(opts), nil },
		})
	}
	curves := exec(ex, jobs)
	res.STW, res.CGC = curves[0], curves[1]
	return res
}

// RenderMMU prints the curves.
func RenderMMU(r MMUResult) string {
	var b strings.Builder
	b.WriteString("Minimum mutator utilization (pause-based, SPECjbb 8 warehouses)\n\n")
	tb := stats.NewTable("window", "STW", "CGC")
	for i, w := range r.WindowsMs {
		tb.AddRow(
			fmt.Sprintf("%.0f ms", w),
			fmt.Sprintf("%.0f%%", 100*r.STW[i]),
			fmt.Sprintf("%.0f%%", 100*r.CGC[i]),
		)
	}
	b.WriteString(tb.String())
	b.WriteByte('\n')
	plot := stats.NewPlot("MMU vs window size (ms)", "window ms", "MMU", r.WindowsMs)
	plot.AddSeries("STW", 's', scale100(r.STW))
	plot.AddSeries("CGC", 'c', scale100(r.CGC))
	b.WriteString(plot.String())
	b.WriteString("\nthe paper could not measure MMU with more threads than processors\n")
	b.WriteString("(Section 6.2); the simulator computes it from the exact pause timeline.\n")
	return b.String()
}

func scale100(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = 100 * x
	}
	return out
}

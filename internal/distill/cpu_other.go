//go:build !unix

package distill

import "time"

// CPUClock is unavailable on this platform; arms report zero CPU and the
// CPU-overhead fields stay zero (the throughput and latency deltas still
// hold).
func CPUClock() time.Duration { return 0 }

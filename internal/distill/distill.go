// Package distill implements the cost-distillation methodology of Cai &
// Blackburn ("Distilling the Real Cost of Production Garbage Collectors"):
// run the workload twice — once for real, once with collection disabled on
// an arena sized to never collect — and report the delta as the collector's
// distilled cost. The baseline is the unreachable ideal (no cycles, no
// write-barrier work, no tax), so the deltas bound the collector's true
// overhead from above: throughput loss, tail-latency inflation, and the CPU
// the collector burns per unit of work.
//
// Records from a sweep (one per policy configuration) line up into a Pareto
// curve of collector CPU overhead versus p99 latency; MarkFrontier computes
// the frontier and the dominance relation gcstats' pareto view prints.
package distill

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Arm is one measured run: the real arm or the collection-disabled baseline.
type Arm struct {
	WallNs int64 `json:"wall_ns"`
	CPUNs  int64 `json:"cpu_ns"` // process CPU consumed during the arm (user+sys)

	// Completed counts the workload's unit of progress: requests for
	// gcserve, mutator ops for gcstress. Failed counts the ones refused
	// (allocation failure, shedding).
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed,omitempty"`

	// Throughput is Completed per wall second.
	Throughput float64 `json:"throughput"`

	// Latency quantiles in nanoseconds; zero when the workload is not
	// request-shaped (gcstress).
	P50Ns  float64 `json:"p50_ns,omitempty"`
	P99Ns  float64 `json:"p99_ns,omitempty"`
	P999Ns float64 `json:"p999_ns,omitempty"`

	// Collector activity during the arm — all zero on a valid baseline.
	Cycles      int   `json:"cycles"`
	STWNs       int64 `json:"stw_ns,omitempty"`
	AllocFailed int64 `json:"alloc_failed,omitempty"`
}

// FillThroughput computes the derived throughput field.
func (a *Arm) FillThroughput() {
	if a.WallNs > 0 {
		a.Throughput = float64(a.Completed) / (float64(a.WallNs) / float64(time.Second))
	}
}

// Record is one distilled measurement: a named policy configuration, its
// two arms, and the derived overheads.
type Record struct {
	// Name identifies the configuration in the sweep (e.g. "slo/2ms",
	// "formula/k0=8"); Policy is the pacing policy class ("formula", "slo",
	// "none").
	Name   string `json:"name"`
	Policy string `json:"policy"`

	Real     Arm `json:"real"`
	Baseline Arm `json:"baseline"`

	// CPUOverhead is the distilled collector CPU cost: the fractional
	// increase in CPU per completed unit over the baseline,
	// (cpuR/doneR - cpuB/doneB) / (cpuB/doneB). This is the x-axis of the
	// Pareto curve.
	CPUOverhead float64 `json:"cpu_overhead"`
	// GCCPUShare estimates the share of the real arm's CPU attributable to
	// collection: max(0, 1 - (cpuB/doneB)/(cpuR/doneR)).
	GCCPUShare float64 `json:"gc_cpu_share"`
	// ThroughputLoss is (tputB - tputR) / tputB: the fraction of ideal
	// throughput the collector costs.
	ThroughputLoss float64 `json:"throughput_loss"`
	// P99DeltaNs is realP99 - baselineP99: the tail inflation. The real
	// arm's absolute P99 (Real.P99Ns) is the y-axis of the Pareto curve.
	P99DeltaNs float64 `json:"p99_delta_ns,omitempty"`

	// BaselineContaminated flags a baseline that collected or exhausted
	// its arena — the record's deltas understate or garble the real cost
	// and must not enter a frontier. Raise -distill-mult.
	BaselineContaminated bool `json:"baseline_contaminated,omitempty"`

	// Frontier and DominatedBy are filled by MarkFrontier.
	Frontier    bool   `json:"frontier,omitempty"`
	DominatedBy string `json:"dominated_by,omitempty"`
}

// NewRecord derives the overhead fields from the two arms.
func NewRecord(name, policy string, real, baseline Arm) Record {
	r := Record{Name: name, Policy: policy, Real: real, Baseline: baseline}
	if baseline.Cycles > 0 || baseline.AllocFailed > 0 {
		r.BaselineContaminated = true
	}
	cpuPerR := perUnit(real.CPUNs, real.Completed)
	cpuPerB := perUnit(baseline.CPUNs, baseline.Completed)
	if cpuPerB > 0 {
		r.CPUOverhead = (cpuPerR - cpuPerB) / cpuPerB
	}
	if cpuPerR > 0 {
		r.GCCPUShare = 1 - cpuPerB/cpuPerR
		if r.GCCPUShare < 0 {
			r.GCCPUShare = 0
		}
	}
	if baseline.Throughput > 0 {
		r.ThroughputLoss = (baseline.Throughput - real.Throughput) / baseline.Throughput
	}
	if real.P99Ns > 0 && baseline.P99Ns > 0 {
		r.P99DeltaNs = real.P99Ns - baseline.P99Ns
	}
	return r
}

func perUnit(total, units int64) float64 {
	if units <= 0 {
		return 0
	}
	return float64(total) / float64(units)
}

// String renders the record the way the CLIs print it after a -distill run.
func (r Record) String() string {
	s := fmt.Sprintf(
		"distilled[%s policy=%s]:\n"+
			"  real:     %10.0f/s  cpu %8s  p99 %8s  (cycles %d, stw %s)\n"+
			"  baseline: %10.0f/s  cpu %8s  p99 %8s  (cycles %d)\n"+
			"  overhead: cpu/unit %+.1f%%  gc cpu share %.1f%%  throughput %+.1f%%  p99 %+s",
		r.Name, r.Policy,
		r.Real.Throughput, fmtNs(r.Real.CPUNs), fmtNsF(r.Real.P99Ns),
		r.Real.Cycles, fmtNs(r.Real.STWNs),
		r.Baseline.Throughput, fmtNs(r.Baseline.CPUNs), fmtNsF(r.Baseline.P99Ns),
		r.Baseline.Cycles,
		100*r.CPUOverhead, 100*r.GCCPUShare, -100*r.ThroughputLoss,
		fmtNsF(r.P99DeltaNs))
	if r.BaselineContaminated {
		s += "\n  WARNING: baseline contaminated (collected or exhausted); raise -distill-mult"
	}
	return s
}

func fmtNs(ns int64) string { return fmtNsF(float64(ns)) }

func fmtNsF(ns float64) string {
	switch {
	case ns == 0:
		return "-"
	case ns < 0:
		return "-" + fmtNsF(-ns)
	case ns < 1e3:
		return fmt.Sprintf("%.0fns", ns)
	case ns < 1e6:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	case ns < 1e9:
		return fmt.Sprintf("%.2fms", ns/1e6)
	default:
		return fmt.Sprintf("%.2fs", ns/1e9)
	}
}

// AppendJSON appends the record as one JSON line to path, creating the file
// if needed — the accumulation format a sweep's cells share.
func (r Record) AppendJSON(path string) error {
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(b, '\n'))
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// MedianByName collapses repeated cells — records sharing a Name — to the
// rep whose CPUOverhead is the median of its group, preserving first-
// appearance order. A sweep repeats each cell because the CPU-per-unit
// measurement is scheduling-noisy on small machines; the median rep (a real
// measured pair, not a synthetic average, so its arms stay coherent) is
// what enters the frontier. Contaminated reps are ignored unless every rep
// of a cell is contaminated.
func MedianByName(recs []Record) []Record {
	var order []string
	groups := map[string][]Record{}
	for _, r := range recs {
		if _, ok := groups[r.Name]; !ok {
			order = append(order, r.Name)
		}
		groups[r.Name] = append(groups[r.Name], r)
	}
	out := make([]Record, 0, len(order))
	for _, name := range order {
		g := groups[name]
		clean := g[:0:0]
		for _, r := range g {
			if !r.BaselineContaminated {
				clean = append(clean, r)
			}
		}
		if len(clean) > 0 {
			g = clean
		}
		sortByCPU(g)
		out = append(out, g[(len(g)-1)/2])
	}
	return out
}

func sortByCPU(recs []Record) {
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].CPUOverhead < recs[j-1].CPUOverhead; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
}

// MarkFrontier computes the Pareto frontier over (CPUOverhead, Real.P99Ns),
// lower better on both axes. A record is dominated when some other record is
// no worse on both axes and strictly better on at least one; dominated
// records get DominatedBy set to the name of one dominator (the one that is
// best on CPU among those that dominate it). Contaminated records never
// enter the frontier and dominate nothing.
func MarkFrontier(recs []Record) {
	valid := func(r *Record) bool { return !r.BaselineContaminated }
	for i := range recs {
		ri := &recs[i]
		ri.Frontier = false
		ri.DominatedBy = ""
		if !valid(ri) {
			continue
		}
		for j := range recs {
			rj := &recs[j]
			if i == j || !valid(rj) {
				continue
			}
			if dominates(rj, ri) && (ri.DominatedBy == "" || rj.CPUOverhead < dominatorCPU(recs, ri.DominatedBy)) {
				ri.DominatedBy = rj.Name
			}
		}
		ri.Frontier = ri.DominatedBy == ""
	}
}

// dominates reports whether a is no worse than b on both axes and strictly
// better on at least one.
func dominates(a, b *Record) bool {
	if a.CPUOverhead > b.CPUOverhead || a.Real.P99Ns > b.Real.P99Ns {
		return false
	}
	return a.CPUOverhead < b.CPUOverhead || a.Real.P99Ns < b.Real.P99Ns
}

func dominatorCPU(recs []Record, name string) float64 {
	for i := range recs {
		if recs[i].Name == name {
			return recs[i].CPUOverhead
		}
	}
	return 0
}

// ReadRecords parses a file of one-JSON-line records (AppendJSON output).
func ReadRecords(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []Record
	dec := json.NewDecoder(f)
	for dec.More() {
		var r Record
		if err := dec.Decode(&r); err != nil {
			return nil, fmt.Errorf("distill: %s: %w", path, err)
		}
		out = append(out, r)
	}
	return out, nil
}

package distill

import (
	"math"
	"path/filepath"
	"testing"
	"time"
)

func arm(cpuNs, completed int64, tput, p99 float64) Arm {
	return Arm{WallNs: int64(time.Second), CPUNs: cpuNs, Completed: completed, Throughput: tput, P99Ns: p99}
}

func TestNewRecordOverheads(t *testing.T) {
	// Real: 2000ns CPU/unit; baseline: 1000ns CPU/unit -> overhead 100%,
	// gc share 50%.
	real := arm(2000_000, 1000, 800, 5000)
	base := arm(1000_000, 1000, 1000, 2000)
	r := NewRecord("cell", "formula", real, base)
	if math.Abs(r.CPUOverhead-1.0) > 1e-9 {
		t.Fatalf("CPUOverhead = %v, want 1.0", r.CPUOverhead)
	}
	if math.Abs(r.GCCPUShare-0.5) > 1e-9 {
		t.Fatalf("GCCPUShare = %v, want 0.5", r.GCCPUShare)
	}
	if math.Abs(r.ThroughputLoss-0.2) > 1e-9 {
		t.Fatalf("ThroughputLoss = %v, want 0.2", r.ThroughputLoss)
	}
	if r.P99DeltaNs != 3000 {
		t.Fatalf("P99DeltaNs = %v, want 3000", r.P99DeltaNs)
	}
	if r.BaselineContaminated {
		t.Fatal("clean baseline flagged contaminated")
	}
}

func TestNewRecordContamination(t *testing.T) {
	real := arm(1, 1, 1, 1)
	base := arm(1, 1, 1, 1)
	base.Cycles = 1
	if r := NewRecord("a", "formula", real, base); !r.BaselineContaminated {
		t.Fatal("baseline with cycles not flagged")
	}
	base.Cycles = 0
	base.AllocFailed = 5
	if r := NewRecord("a", "formula", real, base); !r.BaselineContaminated {
		t.Fatal("baseline with allocation failures not flagged")
	}
}

func TestFillThroughput(t *testing.T) {
	a := Arm{WallNs: int64(2 * time.Second), Completed: 1000}
	a.FillThroughput()
	if a.Throughput != 500 {
		t.Fatalf("Throughput = %v, want 500", a.Throughput)
	}
}

func TestMarkFrontier(t *testing.T) {
	rec := func(name string, cpu, p99 float64, dirty bool) Record {
		r := Record{Name: name, CPUOverhead: cpu, BaselineContaminated: dirty}
		r.Real.P99Ns = p99
		return r
	}
	recs := []Record{
		rec("cheap-slow", 0.10, 9000, false),
		rec("mid", 0.20, 5000, false),
		rec("dominated", 0.30, 6000, false), // mid is better on both axes
		rec("fast-costly", 0.50, 1000, false),
		rec("dirty-best", 0.01, 100, true), // would dominate everything, but contaminated
	}
	MarkFrontier(recs)
	want := map[string]bool{"cheap-slow": true, "mid": true, "dominated": false, "fast-costly": true, "dirty-best": false}
	for _, r := range recs {
		if r.Frontier != want[r.Name] {
			t.Errorf("%s: frontier = %v, want %v (dominated by %q)", r.Name, r.Frontier, want[r.Name], r.DominatedBy)
		}
	}
	for _, r := range recs {
		if r.Name == "dominated" && r.DominatedBy != "mid" {
			t.Errorf("dominated cell names %q as dominator, want mid", r.DominatedBy)
		}
		if r.Name == "dirty-best" && r.DominatedBy != "" {
			t.Errorf("contaminated cell has DominatedBy %q; it must stay out of the relation", r.DominatedBy)
		}
	}
}

func TestMedianByName(t *testing.T) {
	rec := func(name string, cpu float64, dirty bool) Record {
		return Record{Name: name, CPUOverhead: cpu, BaselineContaminated: dirty}
	}
	recs := []Record{
		rec("a", 0.30, false),
		rec("b", 0.50, false),
		rec("a", 0.10, false),
		rec("a", 0.20, false),
		rec("c", 0.90, false),
		rec("c", 0.05, true), // contaminated rep must not be picked
	}
	got := MedianByName(recs)
	if len(got) != 3 {
		t.Fatalf("got %d cells, want 3", len(got))
	}
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("order = %s,%s,%s; want first-appearance a,b,c", got[0].Name, got[1].Name, got[2].Name)
	}
	if got[0].CPUOverhead != 0.20 {
		t.Fatalf("a's median = %v, want 0.20", got[0].CPUOverhead)
	}
	if got[2].CPUOverhead != 0.90 || got[2].BaselineContaminated {
		t.Fatalf("c picked %+v; the clean rep must win", got[2])
	}
	// All-contaminated cells still yield a (flagged) representative.
	dirty := MedianByName([]Record{rec("d", 0.1, true), rec("d", 0.2, true)})
	if len(dirty) != 1 || !dirty[0].BaselineContaminated {
		t.Fatalf("all-dirty cell = %+v", dirty)
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	a := NewRecord("a", "formula", arm(2000, 1, 10, 100), arm(1000, 1, 20, 50))
	b := NewRecord("b", "slo", arm(1500, 1, 15, 80), arm(1000, 1, 20, 50))
	for _, r := range []Record{a, b} {
		if err := r.AppendJSON(path); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("roundtrip = %+v", got)
	}
	if got[1].CPUOverhead != b.CPUOverhead {
		t.Fatalf("CPUOverhead lost in roundtrip: %v vs %v", got[1].CPUOverhead, b.CPUOverhead)
	}
}

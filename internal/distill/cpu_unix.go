//go:build unix

package distill

import (
	"syscall"
	"time"
)

// CPUClock returns the process's consumed CPU time (user + system) via
// getrusage. Sample it before and after an arm; the difference is the arm's
// CPUNs. The whole process is charged — collector goroutines, mutators and
// the harness alike — which is exactly what distillation wants: the baseline
// pays the same harness cost, so the delta isolates the collector.
func CPUClock() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

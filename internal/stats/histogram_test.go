package stats

import (
	"testing"

	"mcgc/internal/vtime"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	if h.N() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("fresh histogram not zero: n=%d sum=%v", h.N(), h.Sum())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if len(h.Counts()) != 4 {
		t.Fatalf("want 3 bounds + overflow bucket, got %d buckets", len(h.Counts()))
	}
}

func TestHistogramSingleton(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	h.Observe(7)
	if h.N() != 1 || h.Sum() != 7 || h.Mean() != 7 || h.Min() != 7 || h.Max() != 7 {
		t.Fatalf("singleton stats wrong: n=%d sum=%v min=%v max=%v", h.N(), h.Sum(), h.Min(), h.Max())
	}
	// 7 lands in the (1,10] bucket.
	if got := h.Counts()[1]; got != 1 {
		t.Fatalf("counts = %v", h.Counts())
	}
	for _, p := range []float64{0, 0.5, 1} {
		if got := h.Quantile(p); got != 10 {
			t.Fatalf("singleton quantile(%v) = %v, want bucket bound 10", p, got)
		}
	}
}

func TestHistogramDuplicates(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for i := 0; i < 5; i++ {
		h.Observe(10) // exactly on a bound: belongs to the (1,10] bucket
	}
	if h.Counts()[1] != 5 {
		t.Fatalf("bound-valued samples landed wrong: %v", h.Counts())
	}
	if h.Min() != 10 || h.Max() != 10 || h.Mean() != 10 {
		t.Fatalf("duplicate stats wrong: min=%v max=%v mean=%v", h.Min(), h.Max(), h.Mean())
	}
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("duplicate quantile = %v, want 10", got)
	}
}

func TestHistogramOverflowAndSpread(t *testing.T) {
	h := NewHistogram(1, 10)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	want := []int64{1, 1, 2}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Fatalf("counts = %v, want %v", h.Counts(), want)
		}
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("extremes: min=%v max=%v", h.Min(), h.Max())
	}
	// p100 falls in the overflow bucket, reported as the exact max.
	if got := h.Quantile(1); got != 500 {
		t.Fatalf("overflow quantile = %v, want 500", got)
	}
	if got := h.Quantile(0.25); got != 1 {
		t.Fatalf("p25 = %v, want first bound 1", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram(10, 10)
}

func TestQuantilesSharedSort(t *testing.T) {
	var ds []vtime.Duration
	for i := 100; i >= 1; i-- {
		ds = append(ds, vtime.Duration(i))
	}
	got := Quantiles(ds, 0, 0.5, 0.95, 1)
	want := []vtime.Duration{1, 50, 95, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("quantiles = %v, want %v", got, want)
		}
	}
	// Input not mutated.
	if ds[0] != 100 {
		t.Fatal("Quantiles mutated its input")
	}
	empty := Quantiles(nil, 0.5, 0.9)
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("empty quantiles = %v", empty)
	}
}

func TestQuantilesF(t *testing.T) {
	xs := []float64{3, 3, 1, 2, 3}
	got := QuantilesF(xs, 0, 0.5, 1)
	if got[0] != 1 || got[1] != 3 || got[2] != 3 {
		t.Fatalf("quantilesF = %v", got)
	}
	if out := QuantilesF(nil, 0.5); out[0] != 0 {
		t.Fatalf("empty quantilesF = %v", out)
	}
	if out := QuantilesF([]float64{42}, 0, 1); out[0] != 42 || out[1] != 42 {
		t.Fatalf("singleton quantilesF = %v", out)
	}
}

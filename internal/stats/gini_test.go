package stats

import (
	"math"
	"testing"
)

func TestGiniDegenerateInputs(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Fatalf("Gini(nil) = %v, want 0", g)
	}
	if g := Gini([]float64{7}); g != 0 {
		t.Fatalf("Gini(single) = %v, want 0", g)
	}
	if g := Gini([]float64{0, 0, 0, 0}); g != 0 {
		t.Fatalf("Gini(all zero) = %v, want 0", g)
	}
}

func TestGiniUniform(t *testing.T) {
	for _, n := range []int{2, 3, 16, 64} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 42.5
		}
		if g := Gini(xs); math.Abs(g) > 1e-12 {
			t.Fatalf("Gini(%d equal values) = %v, want 0", n, g)
		}
	}
}

func TestGiniDominance(t *testing.T) {
	// One worker holding everything: the coefficient is (n-1)/n, which
	// approaches 1 as n grows.
	for _, n := range []int{2, 4, 10, 100} {
		xs := make([]float64, n)
		xs[0] = 1000
		want := float64(n-1) / float64(n)
		if g := Gini(xs); math.Abs(g-want) > 1e-12 {
			t.Fatalf("Gini(1 of %d dominates) = %v, want %v", n, g, want)
		}
	}
}

func TestGiniKnownValues(t *testing.T) {
	// Hand-computed from the mean-absolute-difference definition:
	// G = sum_ij |xi-xj| / (2 n^2 mean).
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 3}, 0.25},
		{[]float64{0, 1}, 0.5},
		{[]float64{1, 2, 3, 4}, 0.25},
		{[]float64{2, 2, 2, 10}, 0.375},
	}
	for _, c := range cases {
		if g := Gini(c.xs); math.Abs(g-c.want) > 1e-12 {
			t.Fatalf("Gini(%v) = %v, want %v", c.xs, g, c.want)
		}
	}
}

func TestGiniOrderInvariantAndNonMutating(t *testing.T) {
	a := []float64{5, 1, 9, 3}
	b := []float64{9, 3, 5, 1}
	if ga, gb := Gini(a), Gini(b); ga != gb {
		t.Fatalf("Gini depends on order: %v vs %v", ga, gb)
	}
	if a[0] != 5 || a[3] != 3 {
		t.Fatalf("Gini mutated its input: %v", a)
	}
}

func TestGiniStarvedWorkerVisible(t *testing.T) {
	// The reason -balance carries Gini next to max/mean: a starved worker is
	// a min-side outlier, invisible to max/mean but not to Gini.
	even := []float64{100, 100, 100, 100}
	starved := []float64{100, 100, 100, 0}
	skew := func(xs []float64) float64 {
		var sum, max float64
		for _, v := range xs {
			sum += v
			if v > max {
				max = v
			}
		}
		return max / (sum / float64(len(xs)))
	}
	if s := skew(starved); s > 1.34 {
		t.Fatalf("test premise broken: max/mean %v should barely move", s)
	}
	if ge, gs := Gini(even), Gini(starved); gs <= ge+0.2 {
		t.Fatalf("Gini did not expose the starved worker: even %v starved %v", ge, gs)
	}
}

func TestGiniNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Gini accepted a negative value")
		}
	}()
	Gini([]float64{3, -1, 2})
}

func TestQuantileRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("QuantilesF accepted p outside [0,1]")
		}
	}()
	QuantilesF([]float64{1, 2, 3}, 1.5)
}

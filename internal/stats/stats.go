// Package stats provides the measurement helpers the experiments share:
// exponential smoothing (used by the collector's L, M and Best predictors),
// streaming mean/deviation accumulators (tracing-factor fairness, Table 4),
// pause-time summaries, and text rendering for the paper's tables and
// figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mcgc/internal/vtime"
)

// ExpSmooth is an exponential smoothing average: estimate ← a·sample +
// (1−a)·estimate. The paper uses it for the predictions L (bytes to trace),
// M (dirty-card bytes) and Best (background tracing rate).
type ExpSmooth struct {
	Alpha  float64
	value  float64
	primed bool
}

// NewExpSmooth returns a smoother with the given blending factor in (0,1].
func NewExpSmooth(alpha float64) *ExpSmooth {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: smoothing alpha %v out of (0,1]", alpha))
	}
	return &ExpSmooth{Alpha: alpha}
}

// Add feeds a sample. The first sample primes the estimate directly.
func (e *ExpSmooth) Add(sample float64) {
	if !e.primed {
		e.value = sample
		e.primed = true
		return
	}
	e.value = e.Alpha*sample + (1-e.Alpha)*e.value
}

// Value returns the current estimate (zero before any sample).
func (e *ExpSmooth) Value() float64 { return e.value }

// Primed reports whether at least one sample has been added.
func (e *ExpSmooth) Primed() bool { return e.primed }

// Welford is a streaming mean / standard-deviation accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add feeds a sample.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (zero with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n))
}

// DurationSummary summarizes a set of durations.
type DurationSummary struct {
	Count int
	Avg   vtime.Duration
	Max   vtime.Duration
	Min   vtime.Duration
	Total vtime.Duration
}

// Summarize reduces a slice of durations.
func Summarize(ds []vtime.Duration) DurationSummary {
	s := DurationSummary{Count: len(ds)}
	if len(ds) == 0 {
		return s
	}
	s.Min = ds[0]
	for _, d := range ds {
		s.Total += d
		if d > s.Max {
			s.Max = d
		}
		if d < s.Min {
			s.Min = d
		}
	}
	s.Avg = s.Total / vtime.Duration(len(ds))
	return s
}

// Gini returns the Gini coefficient of the given non-negative values: 0 for
// a perfectly even distribution, approaching 1 as one value dominates. The
// balance view uses it over per-tracer traced words because, unlike the
// max/mean skew ratio, it also exposes a *starved* worker (a min-side
// outlier leaves max/mean untouched). Returns 0 for fewer than two values or
// an all-zero set; panics on negative input.
func Gini(values []float64) float64 {
	if len(values) < 2 {
		return 0
	}
	xs := append([]float64(nil), values...)
	sort.Float64s(xs)
	if xs[0] < 0 {
		panic(fmt.Sprintf("stats: negative value %v in Gini input", xs[0]))
	}
	var sum, weighted float64
	for i, x := range xs {
		sum += x
		weighted += float64(i+1) * x
	}
	if sum == 0 {
		return 0
	}
	n := float64(len(xs))
	return 2*weighted/(n*sum) - (n+1)/n
}

// Table renders aligned text tables for the experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Plot renders a crude ASCII chart of one or more named series over a
// shared x axis, mirroring the paper's figures well enough to eyeball
// shapes in a terminal.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	xs     []float64
	series []plotSeries
}

type plotSeries struct {
	name   string
	marker byte
	ys     []float64
}

// NewPlot creates a plot with shared x values.
func NewPlot(title, xlabel, ylabel string, xs []float64) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, xs: xs}
}

// AddSeries attaches a series; ys must align with the plot's xs.
func (p *Plot) AddSeries(name string, marker byte, ys []float64) {
	if len(ys) != len(p.xs) {
		panic(fmt.Sprintf("stats: series %q has %d points, plot has %d", name, len(ys), len(p.xs)))
	}
	p.series = append(p.series, plotSeries{name, marker, ys})
}

// String renders the plot.
func (p *Plot) String() string {
	const (
		width  = 64
		height = 16
	)
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	if len(p.xs) == 0 || len(p.series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.series {
		for _, y := range s.ys {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if ymin > 0 {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	xmin, xmax := p.xs[0], p.xs[len(p.xs)-1]
	if xmax == xmin {
		xmax = xmin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range p.series {
		for i, y := range s.ys {
			col := int((p.xs[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = s.marker
			}
		}
	}
	for r, line := range grid {
		label := ""
		if r == 0 {
			label = fmt.Sprintf("%8.1f", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.1f", ymin)
		} else {
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-10.1f%*s%.1f   (%s)\n", strings.Repeat(" ", 8), xmin, width-24, "", xmax, p.XLabel)
	for _, s := range p.series {
		fmt.Fprintf(&b, "          %c = %s\n", s.marker, s.name)
	}
	return b.String()
}

// Canonical quantile points the reducers report. Request-latency tails go
// out to p999 (the paper's server evaluation is worst-case transaction time;
// Monk argues p99/p999 is what server scheduling actually keys on).
const (
	P50  = 0.50
	P95  = 0.95
	P99  = 0.99
	P999 = 0.999
)

// Percentile returns the p-quantile (0 <= p <= 1) of the durations using
// nearest-rank on a sorted copy. Pause-time distributions are commonly
// reported as p95/p99 alongside avg/max.
func Percentile(ds []vtime.Duration, p float64) vtime.Duration {
	return Quantiles(ds, p)[0]
}

// Quantiles returns the nearest-rank quantiles of the durations for every
// requested p in [0,1], sorting the input once. Empty input yields zeros.
func Quantiles(ds []vtime.Duration, ps ...float64) []vtime.Duration {
	out := make([]vtime.Duration, len(ps))
	if len(ds) == 0 {
		return out
	}
	sorted := append([]vtime.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, p := range ps {
		out[i] = sorted[nearestRank(p, len(sorted))]
	}
	return out
}

// QuantilesF is Quantiles over float64 samples (the telemetry sinks store
// gauge samples as float64).
func QuantilesF(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = sorted[nearestRank(p, len(sorted))]
	}
	return out
}

// nearestRank maps quantile p over n sorted samples to an index. The small-n
// edge cases matter for p999: with fewer than 1000 samples ceil(p*n) rounds
// to n, so every extreme quantile degrades to the max rather than reading
// past the slice, and a sample count of 1 answers every p with that sample.
func nearestRank(p float64, n int) int {
	if math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,1]", p))
	}
	rank := int(math.Ceil(p*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// Histogram is a fixed-bucket histogram: bounds are ascending upper bounds,
// sample i lands in the first bucket with v <= bounds[i], or the overflow
// bucket past the last bound. It also tracks exact count/sum/min/max so the
// mean is not bucket-quantized. The zero value is unusable; construct with
// NewHistogram. Not safe for concurrent use.
type Histogram struct {
	bounds []float64
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe records a sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the exact sample sum.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (zero with no samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min and Max return the exact extremes (zero with no samples).
func (h *Histogram) Min() float64 { return h.min }
func (h *Histogram) Max() float64 { return h.max }

// Bounds returns the bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Counts returns the per-bucket counts; the final entry is the overflow
// bucket beyond the last bound.
func (h *Histogram) Counts() []int64 { return h.counts }

// Quantile returns an upper-bound estimate of the p-quantile: the bound of
// the bucket containing the nearest-rank sample (Max for the overflow
// bucket). Exact for the extremes when they fall on the recorded min/max.
func (h *Histogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(nearestRank(p, int(h.n)))
	var seen int64
	for i, c := range h.counts {
		seen += c
		if rank < seen {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Merge folds other's samples into h. Both histograms must have identical
// bucket bounds — merging is how per-client latency recorders (each owned by
// one goroutine during a run) combine into the single histogram the
// telemetry sink serializes, and resampling across mismatched buckets would
// silently corrupt the tails.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic(fmt.Sprintf("stats: merging histograms with %d vs %d bounds", len(h.bounds), len(other.bounds)))
	}
	for i := range h.bounds {
		if h.bounds[i] != other.bounds[i] {
			panic(fmt.Sprintf("stats: merging histograms with different bounds at %d: %v != %v",
				i, h.bounds[i], other.bounds[i]))
		}
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.n == 0 || other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
	for i, c := range other.counts {
		h.counts[i] += c
	}
}

// RestoreHistogram rebuilds a Histogram from its serialized parts (the JSONL
// "hist" record), so offline reducers can query quantiles against the same
// bucket estimate the live side would have produced. counts must have one
// entry per bound plus the overflow bucket.
func RestoreHistogram(bounds []float64, counts []int64, sum, min, max float64) *Histogram {
	h := NewHistogram(bounds...)
	if len(counts) != len(h.counts) {
		panic(fmt.Sprintf("stats: restoring histogram with %d counts for %d bounds", len(counts), len(bounds)))
	}
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("stats: negative bucket count %d at %d", c, i))
		}
		h.counts[i] = c
		h.n += c
	}
	h.sum, h.min, h.max = sum, min, max
	return h
}

package stats

import (
	"math"
	"testing"

	"mcgc/internal/vtime"
)

// p999 over a large exact set: nearest-rank picks the ceil(0.999*2000) =
// 1998th smallest sample.
func TestQuantilesP999LargeSample(t *testing.T) {
	ds := make([]vtime.Duration, 2000)
	for i := range ds {
		ds[i] = vtime.Duration(i + 1) // 1..2000, already sorted values
	}
	qs := Quantiles(ds, P50, P99, P999, 1.0)
	want := []vtime.Duration{1000, 1980, 1998, 2000}
	for i, w := range want {
		if qs[i] != w {
			t.Fatalf("quantile %d: got %v, want %v", i, qs[i], w)
		}
	}
}

// With fewer samples than the quantile resolves, nearest-rank must degrade
// to the max — never index past the slice.
func TestQuantilesP999SmallSamples(t *testing.T) {
	cases := []struct {
		ds   []vtime.Duration
		want vtime.Duration
	}{
		{[]vtime.Duration{7}, 7},
		{[]vtime.Duration{3, 9}, 9},
		{[]vtime.Duration{5, 1, 3}, 5},
	}
	for _, c := range cases {
		if got := Quantiles(c.ds, P999)[0]; got != c.want {
			t.Fatalf("p999 of %v: got %v, want %v", c.ds, got, c.want)
		}
		// Every p on a single-element-ish set stays in range.
		for _, p := range []float64{0, P50, P95, P99, P999, 1} {
			q := Quantiles(c.ds, p)[0]
			if q < 1 || q > 9 {
				t.Fatalf("quantile %v of %v out of sample range: %v", p, c.ds, q)
			}
		}
	}
}

func TestQuantilesEmptyAndInvalid(t *testing.T) {
	if got := Quantiles(nil, P50, P999); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty input: got %v, want zeros", got)
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("quantile p=%v did not panic", p)
				}
			}()
			Quantiles([]vtime.Duration{1}, p)
		}()
	}
}

func TestQuantilesFP999(t *testing.T) {
	xs := make([]float64, 1500)
	for i := range xs {
		xs[i] = float64(i)
	}
	// ceil(0.999*1500)-1 = 1498
	if got := QuantilesF(xs, P999)[0]; got != 1498 {
		t.Fatalf("p999: got %v, want 1498", got)
	}
}

func TestHistogramQuantileP999(t *testing.T) {
	h := NewHistogram(10, 100, 1000, 10000)
	for i := 0; i < 2000; i++ {
		h.Observe(5) // bucket <=10
	}
	h.Observe(50000) // overflow bucket: the single tail sample
	h.Observe(50000)
	h.Observe(50000)
	// rank ceil(0.999*2003)-1 = 2001, which lands in the overflow bucket;
	// the estimate for the overflow bucket is the recorded max.
	if got := h.Quantile(P999); got != 50000 {
		t.Fatalf("p999: got %v, want 50000 (max)", got)
	}
	if got := h.Quantile(P50); got != 10 {
		t.Fatalf("p50: got %v, want bucket bound 10", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10, 100)
	b := NewHistogram(10, 100)
	a.Observe(5)
	a.Observe(50)
	b.Observe(500)
	b.Observe(2)
	a.Merge(b)
	if a.N() != 4 || a.Sum() != 557 || a.Min() != 2 || a.Max() != 500 {
		t.Fatalf("merged stats: n=%d sum=%v min=%v max=%v", a.N(), a.Sum(), a.Min(), a.Max())
	}
	wantCounts := []int64{2, 1, 1}
	for i, w := range wantCounts {
		if a.Counts()[i] != w {
			t.Fatalf("bucket %d: got %d, want %d", i, a.Counts()[i], w)
		}
	}
	// Merging an empty histogram is a no-op and must not disturb min/max.
	a.Merge(NewHistogram(10, 100))
	a.Merge(nil)
	if a.N() != 4 || a.Min() != 2 {
		t.Fatalf("empty merge disturbed state: n=%d min=%v", a.N(), a.Min())
	}
	// Merging into an empty histogram adopts the other's extremes.
	c := NewHistogram(10, 100)
	c.Merge(a)
	if c.N() != 4 || c.Min() != 2 || c.Max() != 500 {
		t.Fatalf("merge into empty: n=%d min=%v max=%v", c.N(), c.Min(), c.Max())
	}
}

func TestHistogramMergeMismatchPanics(t *testing.T) {
	a := NewHistogram(10, 100)
	for _, b := range []*Histogram{NewHistogram(10), NewHistogram(10, 200)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("mismatched merge did not panic")
				}
			}()
			b.Observe(1)
			a.Merge(b)
		}()
	}
}

func TestRestoreHistogramRoundTrip(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{1, 5, 50, 500, 5000, 7, 70} {
		h.Observe(v)
	}
	r := RestoreHistogram(h.Bounds(), h.Counts(), h.Sum(), h.Min(), h.Max())
	if r.N() != h.N() || r.Sum() != h.Sum() || r.Min() != h.Min() || r.Max() != h.Max() {
		t.Fatalf("round trip lost exact stats: %v vs %v", r, h)
	}
	for _, p := range []float64{0, P50, P95, P99, P999, 1} {
		if r.Quantile(p) != h.Quantile(p) {
			t.Fatalf("quantile %v diverged after restore: %v vs %v", p, r.Quantile(p), h.Quantile(p))
		}
	}
}

func TestRestoreHistogramValidation(t *testing.T) {
	for _, counts := range [][]int64{{1, 2}, {1, 2, 3, 4}, {1, -1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("restore with counts %v did not panic", counts)
				}
			}()
			RestoreHistogram([]float64{10, 100}, counts, 0, 0, 0)
		}()
	}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"mcgc/internal/vtime"
)

const mmuMs = vtime.Millisecond

func iv(s, e int64) Interval {
	return Interval{Start: vtime.Time(s) * vtime.Time(mmuMs), End: vtime.Time(e) * vtime.Time(mmuMs)}
}

func TestMMUNoPauses(t *testing.T) {
	if got := MMU(nil, 100*mmuMs, 10*mmuMs); got != 1 {
		t.Fatalf("MMU with no pauses = %v, want 1", got)
	}
}

func TestMMUSinglePause(t *testing.T) {
	pauses := []Interval{iv(50, 60)} // 10ms pause in a 100ms run
	// A 10ms window fully inside the pause: MMU = 0.
	if got := MMU(pauses, 100*mmuMs, 10*mmuMs); got != 0 {
		t.Fatalf("MMU(10ms) = %v, want 0", got)
	}
	// A 20ms window: worst case contains the whole pause: 1 - 10/20 = 0.5.
	if got := MMU(pauses, 100*mmuMs, 20*mmuMs); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("MMU(20ms) = %v, want 0.5", got)
	}
	// The whole run: 1 - 10/100.
	if got := MMU(pauses, 100*mmuMs, 100*mmuMs); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("MMU(100ms) = %v, want 0.9", got)
	}
}

func TestMMUAdjacentPauses(t *testing.T) {
	// Two 5ms pauses 5ms apart: a 15ms window catches both.
	pauses := []Interval{iv(10, 15), iv(20, 25)}
	if got := MMU(pauses, 100*mmuMs, 15*mmuMs); math.Abs(got-(1-10.0/15)) > 1e-9 {
		t.Fatalf("MMU(15ms) = %v, want %v", got, 1-10.0/15)
	}
	// A 5ms window inside one pause: 0.
	if got := MMU(pauses, 100*mmuMs, 5*mmuMs); got != 0 {
		t.Fatalf("MMU(5ms) = %v, want 0", got)
	}
}

func TestMMUWindowLargerThanRun(t *testing.T) {
	pauses := []Interval{iv(0, 10)}
	if got := MMU(pauses, 50*mmuMs, 500*mmuMs); math.Abs(got-0.8) > 1e-9 {
		t.Fatalf("MMU(clamped) = %v, want 0.8", got)
	}
}

func TestMMUCurveMonotone(t *testing.T) {
	// MMU is non-decreasing in the window size for isolated equal pauses.
	pauses := []Interval{iv(10, 12), iv(40, 42), iv(70, 72)}
	windows := []vtime.Duration{2 * mmuMs, 5 * mmuMs, 20 * mmuMs, 100 * mmuMs}
	curve := MMUCurve(pauses, 100*mmuMs, windows)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1]-1e-9 {
			t.Fatalf("curve not monotone: %v", curve)
		}
	}
	if curve[0] != 0 {
		t.Fatalf("2ms window inside a 2ms pause should be 0, got %v", curve[0])
	}
}

// Property: MMU matches a brute-force sliding window on small integers.
func TestQuickMMUMatchesBruteForce(t *testing.T) {
	f := func(raw []uint8) bool {
		const total = 200
		// Build non-overlapping unit pauses from the raw bytes.
		used := make([]bool, total)
		var pauses []Interval
		for _, b := range raw {
			s := int(b) % (total - 1)
			if !used[s] {
				used[s] = true
				pauses = append(pauses, Interval{Start: vtime.Time(s), End: vtime.Time(s + 1)})
			}
		}
		for _, w := range []int{1, 3, 7, 50} {
			got := MMU(pauses, total, vtime.Duration(w))
			// Brute force over every integer window start.
			worst := 0
			for s := 0; s+w <= total; s++ {
				in := 0
				for x := s; x < s+w; x++ {
					if x < total && used[x] {
						in++
					}
				}
				if in > worst {
					worst = in
				}
			}
			want := 1 - float64(worst)/float64(w)
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMMUPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MMU(nil, 100, 0)
}

package stats

import (
	"fmt"
	"sort"

	"mcgc/internal/vtime"
)

// Interval is a half-open span of virtual time during which mutators were
// stopped.
type Interval struct {
	Start, End vtime.Time
}

// MMU computes the Minimum Mutator Utilization for one window size: the
// smallest fraction of any window of length w that was NOT spent inside a
// stop-the-world pause, over [0, total). Cheng and Blelloch proposed the
// metric; the paper (Section 6.2) notes it is very difficult to measure on
// real hardware when threads outnumber processors — the simulator has the
// exact pause timeline, so it can be computed directly.
//
// pauses must be non-overlapping. A window larger than the run measures the
// whole run.
func MMU(pauses []Interval, total vtime.Duration, w vtime.Duration) float64 {
	if w <= 0 {
		panic(fmt.Sprintf("stats: bad MMU window %d", w))
	}
	if total <= 0 {
		return 1
	}
	if w > total {
		w = total
	}
	ps := append([]Interval(nil), pauses...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Start < ps[j].Start })

	// pauseIn returns the pause time intersecting [t, t+w).
	pauseIn := func(t vtime.Time) vtime.Duration {
		end := t.Add(w)
		var sum vtime.Duration
		for _, p := range ps {
			if p.End <= t {
				continue
			}
			if p.Start >= end {
				break
			}
			s, e := p.Start, p.End
			if s < t {
				s = t
			}
			if e > end {
				e = end
			}
			sum += e.Sub(s)
		}
		return sum
	}

	// The worst window either starts at a pause start or ends at a pause
	// end (sliding the window otherwise only decreases its pause content).
	worst := vtime.Duration(0)
	consider := func(t vtime.Time) {
		if t < 0 {
			t = 0
		}
		if t.Add(w) > vtime.Time(total) {
			t = vtime.Time(total - w)
		}
		if p := pauseIn(t); p > worst {
			worst = p
		}
	}
	for _, p := range ps {
		consider(p.Start)
		consider(p.End.Add(-w))
	}
	if worst > w {
		worst = w
	}
	return 1 - float64(worst)/float64(w)
}

// MMUCurve evaluates MMU over a set of window sizes.
func MMUCurve(pauses []Interval, total vtime.Duration, windows []vtime.Duration) []float64 {
	out := make([]float64, len(windows))
	for i, w := range windows {
		out[i] = MMU(pauses, total, w)
	}
	return out
}

package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mcgc/internal/vtime"
)

func TestExpSmoothPrimesOnFirstSample(t *testing.T) {
	e := NewExpSmooth(0.3)
	if e.Primed() || e.Value() != 0 {
		t.Fatal("fresh smoother not zero/unprimed")
	}
	e.Add(100)
	if !e.Primed() || e.Value() != 100 {
		t.Fatalf("after first sample: %v", e.Value())
	}
	e.Add(0)
	if got := e.Value(); math.Abs(got-70) > 1e-9 {
		t.Fatalf("after 0.3-blend: %v, want 70", got)
	}
}

func TestExpSmoothConverges(t *testing.T) {
	e := NewExpSmooth(0.5)
	for i := 0; i < 50; i++ {
		e.Add(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Fatalf("did not converge: %v", e.Value())
	}
}

func TestExpSmoothValidation(t *testing.T) {
	for _, alpha := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", alpha)
				}
			}()
			NewExpSmooth(alpha)
		}()
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-9 {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", w.StdDev())
	}
}

func TestWelfordFewSamples(t *testing.T) {
	var w Welford
	if w.StdDev() != 0 || w.Mean() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Add(5)
	if w.StdDev() != 0 {
		t.Fatal("single-sample stddev not zero")
	}
}

// Property: Welford agrees with the two-pass formulas.
func TestQuickWelfordMatchesTwoPass(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		if len(xs) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		sd := math.Sqrt(ss / float64(len(xs)))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.StdDev()-sd) < 1e-6*(1+sd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	ds := []vtime.Duration{3 * vtime.Millisecond, 1 * vtime.Millisecond, 2 * vtime.Millisecond}
	s := Summarize(ds)
	if s.Count != 3 || s.Min != vtime.Millisecond || s.Max != 3*vtime.Millisecond {
		t.Fatalf("summary %+v", s)
	}
	if s.Avg != 2*vtime.Millisecond || s.Total != 6*vtime.Millisecond {
		t.Fatalf("summary %+v", s)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Avg != 0 {
		t.Fatalf("empty summary %+v", empty)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("pause", "66 ms")
	tb.AddRow("throughput-with-long-name", "17970")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	// Columns align: "value" appears at the same offset in all rows.
	col := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][col:], "66 ms") {
		t.Fatalf("misaligned row: %q", lines[2])
	}
	// Missing cells render blank, extra cells are dropped.
	tb2 := NewTable("a", "b")
	tb2.AddRow("x")
	tb2.AddRow("1", "2", "3")
	if !strings.Contains(tb2.String(), "x") {
		t.Fatal("short row lost")
	}
}

func TestPlotRendering(t *testing.T) {
	p := NewPlot("Pause times", "warehouses", "ms", []float64{1, 2, 3, 4})
	p.AddSeries("stw", '*', []float64{100, 200, 250, 280})
	p.AddSeries("cgc", 'o', []float64{40, 60, 65, 66})
	out := p.String()
	if !strings.Contains(out, "Pause times") || !strings.Contains(out, "* = stw") {
		t.Fatalf("plot missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("plot missing markers")
	}
	// Mismatched series length panics.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	p.AddSeries("bad", 'x', []float64{1})
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("t", "x", "y", nil)
	if !strings.Contains(p.String(), "no data") {
		t.Fatal("empty plot should say so")
	}
}

func TestPercentile(t *testing.T) {
	var ds []vtime.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, vtime.Duration(i))
	}
	if got := Percentile(ds, 0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := Percentile(ds, 0.95); got != 95 {
		t.Fatalf("p95 = %v, want 95", got)
	}
	if got := Percentile(ds, 1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	if got := Percentile(ds, 0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty = %v", got)
	}
	// The input must not be mutated (sorted copy).
	shuffled := []vtime.Duration{5, 1, 4, 2, 3}
	Percentile(shuffled, 0.5)
	if shuffled[0] != 5 || shuffled[4] != 3 {
		t.Fatal("Percentile mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad p")
		}
	}()
	Percentile(ds, 1.5)
}

package bitvec

import (
	"sync"
	"testing"
)

func TestTestAndSetAtomic(t *testing.T) {
	v := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if !v.TestAndSetAtomic(i) {
			t.Fatalf("TestAndSetAtomic(%d) on clear bit = false", i)
		}
		if v.TestAndSetAtomic(i) {
			t.Fatalf("TestAndSetAtomic(%d) on set bit = true", i)
		}
		if !v.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if got := v.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
}

func TestWordOps(t *testing.T) {
	v := New(128)
	if v.Words() != 2 {
		t.Fatalf("Words = %d, want 2", v.Words())
	}
	if old := v.OrWord(0, 0b1011); old != 0 {
		t.Fatalf("OrWord old = %#x, want 0", old)
	}
	if old := v.OrWord(0, 0b0110); old != 0b1011 {
		t.Fatalf("OrWord old = %#x, want 0b1011", old)
	}
	if got := v.LoadWord(0); got != 0b1111 {
		t.Fatalf("LoadWord = %#x, want 0b1111", got)
	}
	v.OrWord(1, 1<<63)
	if !v.Test(127) {
		t.Fatal("OrWord(1, 1<<63) did not set bit 127")
	}
	if got := v.TakeWord(0); got != 0b1111 {
		t.Fatalf("TakeWord = %#x, want 0b1111", got)
	}
	if got := v.LoadWord(0); got != 0 {
		t.Fatalf("word not cleared by TakeWord: %#x", got)
	}
	if got := v.TakeWord(1); got != 1<<63 {
		t.Fatalf("TakeWord(1) = %#x", got)
	}
}

// Concurrent claim: every bit is claimed by exactly one of the racing
// goroutines. Run with -race.
func TestTestAndSetAtomicConcurrent(t *testing.T) {
	const (
		bits    = 1 << 12
		workers = 8
	)
	v := New(bits)
	wins := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < bits; i++ {
				if v.TestAndSetAtomic(i) {
					wins[w] = append(wins[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, ws := range wins {
		total += len(ws)
	}
	if total != bits {
		t.Fatalf("claims = %d, want %d (each bit claimed exactly once)", total, bits)
	}
	if got := v.Count(); got != bits {
		t.Fatalf("Count = %d, want %d", got, bits)
	}
}

// Concurrent take-vs-or: whatever the setters set is seen by exactly one
// TakeWord, with no lost or duplicated bits. Run with -race.
func TestTakeWordConcurrent(t *testing.T) {
	const (
		words   = 64
		setters = 4
		rounds  = 2000
	)
	v := New(words * 64)
	var wg sync.WaitGroup
	var takenMu sync.Mutex
	taken := make([]uint64, words) // accumulated bits observed by takers
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // taker
		defer wg.Done()
		for {
			select {
			case <-stop:
				// Final sweep after all setters are done.
				for w := 0; w < words; w++ {
					bits := v.TakeWord(w)
					takenMu.Lock()
					if taken[w]&bits != 0 {
						t.Errorf("word %d: bits %#x taken twice", w, taken[w]&bits)
					}
					taken[w] |= bits
					takenMu.Unlock()
				}
				return
			default:
			}
			for w := 0; w < words; w++ {
				bits := v.TakeWord(w)
				if bits == 0 {
					continue
				}
				takenMu.Lock()
				if taken[w]&bits != 0 {
					t.Errorf("word %d: bits %#x taken twice", w, taken[w]&bits)
				}
				taken[w] |= bits
				takenMu.Unlock()
			}
		}
	}()
	var swg sync.WaitGroup
	for s := 0; s < setters; s++ {
		swg.Add(1)
		go func(s int) {
			defer swg.Done()
			for r := 0; r < rounds; r++ {
				w := (s*rounds + r) % words
				v.OrWord(w, 1<<(uint(s*7+r)%64))
			}
		}(s)
	}
	swg.Wait()
	close(stop)
	wg.Wait()
	// Every word must be fully drained.
	for w := 0; w < words; w++ {
		if got := v.LoadWord(w); got != 0 {
			t.Fatalf("word %d still has bits %#x after final take", w, got)
		}
	}
}

// Package bitvec implements the dense bit vectors the collector keeps
// alongside the heap: the mark bit vector and the allocation bit vector,
// each holding one bit per 8-byte heap word (Section 2 of the paper).
//
// Mark bits are set concurrently by many tracing threads, so the vector
// offers atomic test-and-set. Bitwise sweep (Section 2.2) needs fast scans
// for runs of clear bits, which NextSet/NextClear provide using per-word
// bit tricks rather than per-bit loops.
package bitvec

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"
)

const (
	wordBits  = 64
	wordShift = 6
	wordMask  = wordBits - 1
)

// Vector is a fixed-length bit vector. The zero value is unusable; create
// vectors with New.
type Vector struct {
	bits []uint64
	n    int
}

// New returns a vector of n bits, all clear.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{
		bits: make([]uint64, (n+wordMask)/wordBits),
		n:    n,
	}
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Test reports whether bit i is set. It uses a plain load; callers that
// race with concurrent setters and need a fresh answer should use TestAcquire.
func (v *Vector) Test(i int) bool {
	v.check(i)
	return v.bits[i>>wordShift]&(1<<(uint(i)&wordMask)) != 0
}

// TestAcquire reports whether bit i is set using an atomic load.
func (v *Vector) TestAcquire(i int) bool {
	v.check(i)
	return atomic.LoadUint64(&v.bits[i>>wordShift])&(1<<(uint(i)&wordMask)) != 0
}

// Set sets bit i without synchronization. It must not race with other
// mutations of the same word.
func (v *Vector) Set(i int) {
	v.check(i)
	v.bits[i>>wordShift] |= 1 << (uint(i) & wordMask)
}

// Clear clears bit i without synchronization.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.bits[i>>wordShift] &^= 1 << (uint(i) & wordMask)
}

// casBackoff yields the processor once a word-CAS loop has lost a few
// rounds: neighbouring-bit writers sharing a word resolve in a try or two,
// so persistent failure means a sustained contender that needs cycles to
// finish (fault injection can amplify contention arbitrarily).
func casBackoff(retries int) {
	if retries >= 4 {
		runtime.Gosched()
	}
}

// TestAndSet atomically sets bit i and reports whether this call changed it
// from clear to set. Concurrent tracers use this to claim an object: exactly
// one of the racing callers receives true.
func (v *Vector) TestAndSet(i int) bool {
	v.check(i)
	addr := &v.bits[i>>wordShift]
	mask := uint64(1) << (uint(i) & wordMask)
	for retries := 0; ; retries++ {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return true
		}
		casBackoff(retries)
	}
}

// TestAndSetAtomic atomically sets bit i with a single fetch-or (no CAS
// retry loop) and reports whether this call changed it from clear to set.
// It is the claim operation the live engine's tracers use under real
// contention, where the CAS loop of TestAndSet would retry whenever two
// tracers claim neighbouring bits of the same word.
func (v *Vector) TestAndSetAtomic(i int) bool {
	v.check(i)
	mask := uint64(1) << (uint(i) & wordMask)
	return atomic.OrUint64(&v.bits[i>>wordShift], mask)&mask == 0
}

// Words returns the number of 64-bit words backing the vector.
func (v *Vector) Words() int { return len(v.bits) }

// LoadWord atomically loads backing word w. Bit i of the result is bit
// w*64+i of the vector.
func (v *Vector) LoadWord(w int) uint64 {
	return atomic.LoadUint64(&v.bits[w])
}

// OrWord atomically ors mask into backing word w and returns the word's
// previous value. Concurrent writers sharing a word (e.g. card dirtying)
// batch up to 64 bit-sets into one fetch-or.
func (v *Vector) OrWord(w int, mask uint64) uint64 {
	return atomic.OrUint64(&v.bits[w], mask)
}

// TakeWord atomically reads and clears backing word w, returning the bits
// that were set. It is the register-and-clear primitive of the concurrent
// card-cleaning path: every bit set at the instant of the swap is observed
// by exactly one taker, and bits set afterwards are preserved for the next
// pass — no set is ever lost between a separate load and clear.
func (v *Vector) TakeWord(w int) uint64 {
	return atomic.SwapUint64(&v.bits[w], 0)
}

// SetAtomic atomically sets bit i.
func (v *Vector) SetAtomic(i int) {
	v.check(i)
	addr := &v.bits[i>>wordShift]
	mask := uint64(1) << (uint(i) & wordMask)
	for retries := 0; ; retries++ {
		old := atomic.LoadUint64(addr)
		if old&mask != 0 || atomic.CompareAndSwapUint64(addr, old, old|mask) {
			return
		}
		casBackoff(retries)
	}
}

// ClearAtomic atomically clears bit i.
func (v *Vector) ClearAtomic(i int) {
	v.check(i)
	addr := &v.bits[i>>wordShift]
	mask := uint64(1) << (uint(i) & wordMask)
	for retries := 0; ; retries++ {
		old := atomic.LoadUint64(addr)
		if old&mask == 0 || atomic.CompareAndSwapUint64(addr, old, old&^mask) {
			return
		}
		casBackoff(retries)
	}
}

// ClearAll clears every bit. Callers must ensure no concurrent access.
func (v *Vector) ClearAll() {
	clear(v.bits)
}

// ClearRange clears bits [from, to). Callers must ensure no concurrent
// access to the affected words.
func (v *Vector) ClearRange(from, to int) {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) for length %d", from, to, v.n))
	}
	if from == to {
		return
	}
	first, last := from>>wordShift, (to-1)>>wordShift
	lowMask := ^uint64(0) << (uint(from) & wordMask)
	highMask := ^uint64(0) >> (wordMask - (uint(to-1) & wordMask))
	if first == last {
		v.bits[first] &^= lowMask & highMask
		return
	}
	v.bits[first] &^= lowMask
	for w := first + 1; w < last; w++ {
		v.bits[w] = 0
	}
	v.bits[last] &^= highMask
}

// SetRange sets bits [from, to). Callers must ensure no concurrent access.
func (v *Vector) SetRange(from, to int) {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) for length %d", from, to, v.n))
	}
	if from == to {
		return
	}
	first, last := from>>wordShift, (to-1)>>wordShift
	lowMask := ^uint64(0) << (uint(from) & wordMask)
	highMask := ^uint64(0) >> (wordMask - (uint(to-1) & wordMask))
	if first == last {
		v.bits[first] |= lowMask & highMask
		return
	}
	v.bits[first] |= lowMask
	for w := first + 1; w < last; w++ {
		v.bits[w] = ^uint64(0)
	}
	v.bits[last] |= highMask
}

// NextSet returns the index of the first set bit at or after from, or -1 if
// none exists. It scans word-at-a-time.
func (v *Vector) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	w := from >> wordShift
	word := v.bits[w] >> (uint(from) & wordMask)
	if word != 0 {
		i := from + bits.TrailingZeros64(word)
		if i < v.n {
			return i
		}
		return -1
	}
	for w++; w < len(v.bits); w++ {
		if v.bits[w] != 0 {
			i := w<<wordShift + bits.TrailingZeros64(v.bits[w])
			if i < v.n {
				return i
			}
			return -1
		}
	}
	return -1
}

// NextClear returns the index of the first clear bit at or after from, or -1
// if none exists.
func (v *Vector) NextClear(from int) int {
	if from < 0 {
		from = 0
	}
	if from >= v.n {
		return -1
	}
	w := from >> wordShift
	word := ^(v.bits[w]) >> (uint(from) & wordMask)
	if word != 0 {
		i := from + bits.TrailingZeros64(word)
		if i < v.n {
			return i
		}
		return -1
	}
	for w++; w < len(v.bits); w++ {
		if v.bits[w] != ^uint64(0) {
			i := w<<wordShift + bits.TrailingZeros64(^v.bits[w])
			if i < v.n {
				return i
			}
			return -1
		}
	}
	return -1
}

// Count returns the number of set bits in the whole vector.
func (v *Vector) Count() int {
	total := 0
	for _, w := range v.bits {
		total += bits.OnesCount64(w)
	}
	return total
}

// CountRange returns the number of set bits in [from, to).
func (v *Vector) CountRange(from, to int) int {
	if from < 0 || to > v.n || from > to {
		panic(fmt.Sprintf("bitvec: bad range [%d,%d) for length %d", from, to, v.n))
	}
	total := 0
	for i := v.NextSet(from); i >= 0 && i < to; i = v.NextSet(i + 1) {
		total++
	}
	return total
}

// CopyFrom overwrites this vector's bits with src's. The lengths must match.
// Used by the card-cleaning snapshot step (Section 5.3).
func (v *Vector) CopyFrom(src *Vector) {
	if v.n != src.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, src.n))
	}
	copy(v.bits, src.bits)
}

// PrevSet returns the index of the last set bit at or before from, or -1 if
// none exists.
func (v *Vector) PrevSet(from int) int {
	if from >= v.n {
		from = v.n - 1
	}
	if from < 0 {
		return -1
	}
	w := from >> wordShift
	word := v.bits[w] & (^uint64(0) >> (wordMask - (uint(from) & wordMask)))
	if word != 0 {
		return w<<wordShift + 63 - bits.LeadingZeros64(word)
	}
	for w--; w >= 0; w-- {
		if v.bits[w] != 0 {
			return w<<wordShift + 63 - bits.LeadingZeros64(v.bits[w])
		}
	}
	return -1
}

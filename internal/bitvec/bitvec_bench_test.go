package bitvec

// Baselines for the simulator's hottest bit-vector kernels: the sweep scans
// runs of mark/alloc bits with NextSet/NextClear, and nursery resets clear
// whole address ranges with ClearRange. Future kernel PRs compare against
// these numbers.

import (
	"math/rand"
	"testing"
)

const benchBits = 1 << 20

func newStrided(stride int) *Vector {
	v := New(benchBits)
	for i := 0; i < benchBits; i += stride {
		v.Set(i)
	}
	return v
}

func benchmarkNextSet(b *testing.B, stride int) {
	v := newStrided(stride)
	b.SetBytes(benchBits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for c := v.NextSet(0); c >= 0; c = v.NextSet(c + 1) {
			n++
		}
		if n != (benchBits+stride-1)/stride {
			b.Fatalf("visited %d bits", n)
		}
	}
}

func BenchmarkNextSetDense(b *testing.B)  { benchmarkNextSet(b, 3) }    // live-heap-like
func BenchmarkNextSetSparse(b *testing.B) { benchmarkNextSet(b, 4096) } // card-indicator-like

func BenchmarkNextClear(b *testing.B) {
	v := New(benchBits)
	v.SetRange(0, benchBits)
	for i := 0; i < benchBits; i += 512 {
		v.Clear(i)
	}
	b.SetBytes(benchBits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for c := v.NextClear(0); c >= 0; c = v.NextClear(c + 1) {
			n++
		}
		if n != benchBits/512 {
			b.Fatalf("visited %d bits", n)
		}
	}
}

func BenchmarkClearRange(b *testing.B) {
	v := New(benchBits)
	b.SetBytes(benchBits / 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.SetRange(0, benchBits)
		v.ClearRange(7, benchBits-9) // unaligned ends exercise the partial-word paths
	}
}

func BenchmarkTestAndSet(b *testing.B) {
	v := New(benchBits)
	r := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.TestAndSet(r.Intn(benchBits))
	}
}

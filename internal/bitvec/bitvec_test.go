package bitvec

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	v := New(200)
	for i := 0; i < 200; i += 3 {
		v.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if got := v.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 200; i += 3 {
		v.Clear(i)
	}
	if v.Count() != 0 {
		t.Fatalf("Count = %d after clearing all, want 0", v.Count())
	}
}

func TestTestAndSet(t *testing.T) {
	v := New(64)
	if !v.TestAndSet(13) {
		t.Fatal("first TestAndSet returned false")
	}
	if v.TestAndSet(13) {
		t.Fatal("second TestAndSet returned true")
	}
	if !v.Test(13) {
		t.Fatal("bit 13 not set")
	}
}

func TestTestAndSetUniqueWinner(t *testing.T) {
	// Exactly one goroutine claims each bit even under contention.
	const bitsN = 512
	const workers = 8
	v := New(bitsN)
	wins := make([][]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < bitsN; i++ {
				if v.TestAndSet(i) {
					wins[w] = append(wins[w], i)
				}
			}
		}(w)
	}
	wg.Wait()
	claimed := make(map[int]int)
	for w := range wins {
		for _, i := range wins[w] {
			claimed[i]++
		}
	}
	if len(claimed) != bitsN {
		t.Fatalf("claimed %d distinct bits, want %d", len(claimed), bitsN)
	}
	for i, n := range claimed {
		if n != 1 {
			t.Fatalf("bit %d claimed %d times", i, n)
		}
	}
}

func TestClearRange(t *testing.T) {
	for _, tc := range []struct{ n, from, to int }{
		{130, 0, 130},
		{130, 5, 9},
		{130, 0, 64},
		{130, 63, 65},
		{130, 64, 128},
		{130, 7, 7},
		{130, 129, 130},
		{64, 0, 64},
		{1, 0, 1},
	} {
		v := New(tc.n)
		v.SetRange(0, tc.n)
		v.ClearRange(tc.from, tc.to)
		for i := 0; i < tc.n; i++ {
			want := i < tc.from || i >= tc.to
			if got := v.Test(i); got != want {
				t.Fatalf("n=%d ClearRange(%d,%d): bit %d = %v, want %v",
					tc.n, tc.from, tc.to, i, got, want)
			}
		}
	}
}

func TestSetRange(t *testing.T) {
	v := New(200)
	v.SetRange(10, 150)
	for i := 0; i < 200; i++ {
		want := i >= 10 && i < 150
		if got := v.Test(i); got != want {
			t.Fatalf("bit %d = %v, want %v", i, got, want)
		}
	}
	if got := v.CountRange(0, 200); got != 140 {
		t.Fatalf("CountRange = %d, want 140", got)
	}
}

func TestNextSetNextClear(t *testing.T) {
	v := New(300)
	for _, i := range []int{0, 63, 64, 65, 200, 299} {
		v.Set(i)
	}
	wantSets := []int{0, 63, 64, 65, 200, 299}
	var got []int
	for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(wantSets) {
		t.Fatalf("NextSet walk found %v, want %v", got, wantSets)
	}
	for k := range got {
		if got[k] != wantSets[k] {
			t.Fatalf("NextSet walk found %v, want %v", got, wantSets)
		}
	}
	if i := v.NextClear(0); i != 1 {
		t.Fatalf("NextClear(0) = %d, want 1", i)
	}
	if i := v.NextClear(63); i != 66 {
		t.Fatalf("NextClear(63) = %d, want 66", i)
	}
	full := New(64)
	full.SetRange(0, 64)
	if i := full.NextClear(0); i != -1 {
		t.Fatalf("NextClear on full vector = %d, want -1", i)
	}
	empty := New(64)
	if i := empty.NextSet(0); i != -1 {
		t.Fatalf("NextSet on empty vector = %d, want -1", i)
	}
}

func TestNextSetPastEnd(t *testing.T) {
	v := New(10)
	v.Set(9)
	if i := v.NextSet(10); i != -1 {
		t.Fatalf("NextSet(len) = %d, want -1", i)
	}
	if i := v.NextSet(-5); i != 9 {
		t.Fatalf("NextSet(-5) = %d, want 9", i)
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(100), New(100)
	a.SetRange(20, 40)
	b.CopyFrom(a)
	for i := 0; i < 100; i++ {
		if a.Test(i) != b.Test(i) {
			t.Fatalf("bit %d differs after CopyFrom", i)
		}
	}
	// The copy is independent.
	a.Set(99)
	if b.Test(99) {
		t.Fatal("CopyFrom aliased the underlying storage")
	}
}

// Property: NextSet enumerates exactly the set bits, in order, for any
// pattern of sets.
func TestQuickNextSetEnumeratesSets(t *testing.T) {
	f := func(idxs []uint16) bool {
		const n = 1 << 12
		v := New(n)
		want := make(map[int]bool)
		for _, x := range idxs {
			i := int(x) % n
			v.Set(i)
			want[i] = true
		}
		seen := 0
		prev := -1
		for i := v.NextSet(0); i >= 0; i = v.NextSet(i + 1) {
			if !want[i] || i <= prev {
				return false
			}
			prev = i
			seen++
		}
		return seen == len(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ClearRange then CountRange agree with a reference model.
func TestQuickRangesMatchModel(t *testing.T) {
	f := func(ops []struct {
		From, To uint16
		Set      bool
	}) bool {
		const n = 1 << 11
		v := New(n)
		model := make([]bool, n)
		for _, op := range ops {
			from, to := int(op.From)%n, int(op.To)%n
			if from > to {
				from, to = to, from
			}
			if op.Set {
				v.SetRange(from, to)
				for i := from; i < to; i++ {
					model[i] = true
				}
			} else {
				v.ClearRange(from, to)
				for i := from; i < to; i++ {
					model[i] = false
				}
			}
		}
		for i := 0; i < n; i++ {
			if v.Test(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnBadIndex(t *testing.T) {
	v := New(16)
	for _, f := range []func(){
		func() { v.Test(-1) },
		func() { v.Test(16) },
		func() { v.Set(16) },
		func() { v.ClearRange(4, 2) },
		func() { v.SetRange(0, 17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestConcurrentSetClearDistinctWords(t *testing.T) {
	// Atomic ops on distinct bits of the same word do not lose updates.
	v := New(64)
	var wg sync.WaitGroup
	for b := 0; b < 64; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				v.SetAtomic(b)
				if !v.TestAcquire(b) {
					t.Errorf("bit %d lost after SetAtomic", b)
					return
				}
				v.ClearAtomic(b)
			}
			v.SetAtomic(b)
		}(b)
	}
	wg.Wait()
	if v.Count() != 64 {
		t.Fatalf("Count = %d, want 64", v.Count())
	}
}

func TestPrevSet(t *testing.T) {
	v := New(300)
	for _, i := range []int{0, 63, 64, 65, 200, 299} {
		v.Set(i)
	}
	for _, tc := range []struct{ from, want int }{
		{299, 299}, {298, 200}, {200, 200}, {199, 65}, {65, 65},
		{64, 64}, {63, 63}, {62, 0}, {0, 0}, {1000, 299},
	} {
		if got := v.PrevSet(tc.from); got != tc.want {
			t.Fatalf("PrevSet(%d) = %d, want %d", tc.from, got, tc.want)
		}
	}
	empty := New(64)
	if got := empty.PrevSet(63); got != -1 {
		t.Fatalf("PrevSet on empty = %d", got)
	}
	if got := v.PrevSet(-1); got != -1 {
		t.Fatalf("PrevSet(-1) = %d", got)
	}
}

// Property: PrevSet agrees with a linear scan.
func TestQuickPrevSetMatchesScan(t *testing.T) {
	f := func(idxs []uint16, fromRaw uint16) bool {
		const n = 1 << 12
		v := New(n)
		for _, x := range idxs {
			v.Set(int(x) % n)
		}
		from := int(fromRaw) % n
		want := -1
		for i := from; i >= 0; i-- {
			if v.Test(i) {
				want = i
				break
			}
		}
		return v.PrevSet(from) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

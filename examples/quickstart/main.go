// Quickstart: build a simulated 4-way server with the mostly concurrent
// collector, run a warehouse workload for five virtual seconds, and print
// the pause-time report.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mcgc/gcsim"
)

func main() {
	// A 64 MB heap on a 4-processor machine, collected by the paper's
	// parallel incremental mostly-concurrent collector at tracing rate 8.
	vm := gcsim.New(gcsim.Options{
		HeapBytes:  64 << 20,
		Processors: 4,
		Collector:  gcsim.CGC,
	})

	// A SPECjbb-like workload: 8 warehouses of transaction data at 60%
	// heap residency.
	jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8})

	vm.RunFor(5 * gcsim.Second)

	if err := jbb.CheckIntegrity(); err != nil {
		log.Fatalf("heap integrity: %v", err)
	}

	fmt.Println(vm.Report())
	fmt.Printf("transactions: %d in %v of virtual time\n", jbb.Transactions(), vm.Now())

	// The same workload under the stop-the-world baseline, for contrast.
	base := gcsim.New(gcsim.Options{
		HeapBytes:  64 << 20,
		Processors: 4,
		Collector:  gcsim.STW,
	})
	baseJBB := base.NewJBB(gcsim.JBBOptions{Warehouses: 8})
	base.RunFor(5 * gcsim.Second)
	if err := baseJBB.CheckIntegrity(); err != nil {
		log.Fatalf("heap integrity: %v", err)
	}
	fmt.Println()
	fmt.Println(base.Report())
	fmt.Printf("transactions: %d in %v of virtual time\n", baseJBB.Transactions(), base.Now())
}

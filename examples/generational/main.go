// Generational: the future work the paper's introduction announces — the
// mostly concurrent collector combined with a generational front end "in a
// manner similar to Printezis and Detlefs". A nursery absorbs the
// allocation storm; brief scavenges promote survivors; the old space is
// collected concurrently and paced by the promotion rate.
//
// The example runs the same temporary-heavy server workload under all three
// collectors and prints the pause landscape.
//
// Run with:
//
//	go run ./examples/generational
package main

import (
	"fmt"
	"log"

	"mcgc/gcsim"
)

func run(col gcsim.Collector) {
	vm := gcsim.New(gcsim.Options{
		HeapBytes:    64 << 20,
		Processors:   4,
		Collector:    col,
		NurseryBytes: 8 << 20,
	})
	// A transaction mix with high young mortality: many short-lived
	// temporaries, rare replacement of long-lived data. This is the
	// regime a nursery exists for.
	jbb := vm.NewJBB(gcsim.JBBOptions{
		Warehouses:          8,
		ResidencyAtMax:      0.45, // generational setups size the old space generously
		TxGarbageObjects:    48,
		BlockReplacePercent: 8,
		Seed:                3,
	})
	vm.RunFor(6 * gcsim.Second)
	if err := jbb.CheckIntegrity(); err != nil {
		log.Fatalf("%s: heap integrity: %v", col, err)
	}
	rep := vm.Report()
	rate := float64(jbb.Transactions()) / gcsim.Duration(vm.Now()).Seconds()
	fmt.Printf("%-7s  tx/s=%-7.0f old cycles=%-3d avg pause=%-10v max pause=%v\n",
		col, rate, rep.Cycles, rep.Pause.Avg, rep.Pause.Max)
	if g := vm.Generational(); g != nil {
		avg, max := g.MinorPauses()
		fmt.Printf("         minors=%d avg=%v max=%v, promoted %d MB\n",
			len(g.Minors), avg, max, g.PromotedBytes>>20)
	}
}

func main() {
	fmt.Println("temporary-heavy server workload, 64 MB heap, 4 CPUs")
	fmt.Println()
	run(gcsim.STW)
	run(gcsim.CGC)
	run(gcsim.GenCGC)
	fmt.Println("\nthe nursery absorbs the allocation storm in brief scavenges and cuts")
	fmt.Println("the old-space cycle count; the old space is still collected mostly")
	fmt.Println("concurrently when promotion fills it.")
}

// Compiler: the javac scenario — a single-threaded batch application on a
// uniprocessor with a small heap, the opposite end of the design space from
// the multi-gigabyte server. The paper measures it to show the collector
// also behaves for small applications (Section 6.1: max pause 41 ms vs the
// baseline's 167 ms on a 25 MB heap).
//
// Run with:
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"log"

	"mcgc/gcsim"
)

func compile(col gcsim.Collector) {
	vm := gcsim.New(gcsim.Options{
		HeapBytes:         25 << 20, // the paper's javac heap
		Processors:        1,
		Collector:         col,
		BackgroundThreads: 1, // "a single background collector thread"
	})
	javac := vm.NewJavac(0.7) // 70% peak occupancy, per the paper
	vm.RunFor(10 * gcsim.Second)
	if javac.Err != nil {
		log.Fatalf("compiler workload: %v", javac.Err)
	}
	rep := vm.Report()
	fmt.Printf("%-4s  units=%-5d  cycles=%-3d  avg pause=%-10v  max pause=%v\n",
		col, javac.Units, rep.Cycles, rep.Pause.Avg, rep.Pause.Max)
}

func main() {
	fmt.Println("javac-like compiler on a uniprocessor, 25 MB heap, 70% peak occupancy")
	fmt.Println()
	compile(gcsim.STW)
	compile(gcsim.CGC)
	fmt.Println("\n(paper: STW 138/167 ms avg/max; CGC 34/41 ms, 12% throughput cost)")
}

// Webserver: a pBOB-style middle-tier server — many client terminals with
// think time between requests — demonstrating the paper's central design
// point: think time idles processors, and the collector's low-priority
// background threads soak up those cycles, so most tracing costs the
// mutators nothing.
//
// The example runs the same server twice: once with background threads and
// once without (incremental-only), and shows how much of the concurrent
// tracing moved off the request path.
//
// Run with:
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"log"

	"mcgc/gcsim"
)

func run(backgroundThreads int) {
	bg := backgroundThreads
	if bg == 0 {
		bg = -1 // facade convention: negative forces zero
	}
	vm := gcsim.New(gcsim.Options{
		HeapBytes:         96 << 20,
		Processors:        4,
		Collector:         gcsim.CGC,
		BackgroundThreads: bg,
	})
	// 200 client terminals (8 warehouses x 25), each thinking 20 ms
	// between requests: the processors are mostly idle.
	server := vm.NewJBB(gcsim.JBBOptions{
		Warehouses:            8,
		TerminalsPerWarehouse: 25,
		ThinkTime:             20 * gcsim.Millisecond,
	})
	vm.RunFor(10 * gcsim.Second)
	if err := server.CheckIntegrity(); err != nil {
		log.Fatalf("heap integrity: %v", err)
	}

	var bgBytes, concBytes int64
	for _, cs := range vm.Cycles() {
		bgBytes += cs.BgBytes
		concBytes += cs.BytesTracedConc
	}
	rep := vm.Report()
	fmt.Printf("background threads: %d\n", backgroundThreads)
	fmt.Printf("  requests served:   %d\n", server.Transactions())
	fmt.Printf("  avg pause:         %v (max %v)\n", rep.Pause.Avg, rep.Pause.Max)
	share := 0.0
	if concBytes > 0 {
		share = 100 * float64(bgBytes) / float64(concBytes)
	}
	fmt.Printf("  concurrent tracing: %d KB, of which background threads did %.0f%%\n",
		concBytes>>10, share)
	busy := vm.Machine().TotalBusy()
	total := gcsim.Duration(vm.Now()) * gcsim.Duration(vm.Machine().Processors())
	fmt.Printf("  processor utilization: %.0f%%\n\n", 100*float64(busy)/float64(total))
}

func main() {
	fmt.Println("pBOB-style server: 200 terminals, 20ms think time, 4 CPUs")
	fmt.Println()
	run(4) // the paper's default: incremental + background combined
	run(0) // incremental only: mutators carry all the tracing
}

// Tuner: sweep the tracing rate K0 — the collector's single most important
// knob (Section 3) — on one workload and print the trade-off the paper's
// Table 1 documents: low rates start concurrent collection early and cheap
// for the mutators but accumulate floating garbage and leave work for the
// pause; high rates start late, keep the heap clean, and shorten pauses at
// a higher incremental cost.
//
// Run with:
//
//	go run ./examples/tuner
package main

import (
	"fmt"
	"log"

	"mcgc/gcsim"
)

func main() {
	fmt.Println("tracing-rate sweep: SPECjbb-like, 64 MB heap, 8 warehouses, 4 CPUs")
	fmt.Println()
	fmt.Printf("%-6s %-12s %-12s %-12s %-14s %-10s\n",
		"K0", "avg pause", "max pause", "tx/s", "occupancy", "conc-done")
	for _, k0 := range []float64{1, 2, 4, 8, 10, 16} {
		vm := gcsim.New(gcsim.Options{
			HeapBytes:   64 << 20,
			Processors:  4,
			Collector:   gcsim.CGC,
			TracingRate: k0,
		})
		jbb := vm.NewJBB(gcsim.JBBOptions{Warehouses: 8, Seed: 11})
		vm.RunFor(6 * gcsim.Second)
		if err := jbb.CheckIntegrity(); err != nil {
			log.Fatalf("K0=%v: %v", k0, err)
		}
		rep := vm.Report()
		concPct := 0.0
		if rep.Cycles > 0 {
			concPct = 100 * float64(rep.ConcDone) / float64(rep.Cycles)
		}
		fmt.Printf("%-6g %-12v %-12v %-12.0f %-14s %.0f%%\n",
			k0, rep.Pause.Avg, rep.Pause.Max,
			float64(jbb.Transactions())/gcsim.Duration(vm.Now()).Seconds(),
			fmt.Sprintf("%d KB", rep.AvgLiveAfter>>10), concPct)
	}
	fmt.Println("\nhigher K0: less floating garbage (lower occupancy), shorter pauses,")
	fmt.Println("but tracing starts later and costs the mutators more while it runs.")
}

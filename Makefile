# Developer/CI entry points. `make ci` is the gate: vet, build, full test
# suite, race detector on the concurrency-stressed packages, then a
# quick-scale parallel run of the experiment suite as a runner smoke test.

GO ?= go

# Packages with real goroutine concurrency (lock-free packet pool, the
# weak-memory checker, the parallel experiment runner, the shared trace
# emitter, the live collector engine and its atomic bit/card layers) or
# that drive it.
RACE_PKGS = ./internal/runner ./internal/workpack ./internal/weakmem ./internal/core ./internal/gctrace ./internal/live ./internal/bitvec ./internal/cardtable ./internal/server

.PHONY: ci vet build test race smoke trace-smoke stress-smoke chaos-smoke pacing-smoke balance-smoke balance-bench serve-smoke serve-bench overload-smoke overload-bench slo-smoke distill-smoke distill-bench bench fmt

ci: vet build test race smoke trace-smoke stress-smoke chaos-smoke pacing-smoke balance-smoke serve-smoke overload-smoke slo-smoke distill-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

# Exercise the parallel harness end to end: a few experiments at quick
# scale with 4 workers, emitting the JSON telemetry to a throwaway file.
smoke:
	$(GO) run ./cmd/gcbench -exp fig1,javac,packets -scale quick -j 4 -json /tmp/gcbench-smoke.json
	@rm -f /tmp/gcbench-smoke.json

# Exercise the telemetry pipeline end to end: run one experiment with the
# metrics and trace sinks attached, then validate both files with gcstats
# (the trace check parses the file the way Perfetto would).
trace-smoke:
	$(GO) run ./cmd/gcbench -exp fig1 -scale quick -j 4 \
		-metrics /tmp/gcbench-smoke.jsonl -trace /tmp/gcbench-smoke-trace.json
	$(GO) run ./cmd/gcstats metrics -metrics /tmp/gcbench-smoke.jsonl -run wh=8
	$(GO) run ./cmd/gcstats check -trace /tmp/gcbench-smoke-trace.json
	@rm -f /tmp/gcbench-smoke.jsonl /tmp/gcbench-smoke-trace.json

# Exercise the live engine end to end under the race detector: a short
# gcstress run on the real shared heap with both telemetry sinks, validated
# by gcstats. The STW oracle inside the engine fails the run (exit 1) if any
# cycle loses a live object.
stress-smoke:
	$(GO) run -race ./cmd/gcstress -duration 2s -packets 10 -packetcap 8 -roots 64 \
		-metrics /tmp/gcstress-smoke.jsonl -trace /tmp/gcstress-smoke-trace.json
	$(GO) run ./cmd/gcstats metrics -metrics /tmp/gcstress-smoke.jsonl
	$(GO) run ./cmd/gcstats check -trace /tmp/gcstress-smoke-trace.json
	@rm -f /tmp/gcstress-smoke.jsonl /tmp/gcstress-smoke-trace.json

# Exercise the fault-injection layer end to end under the race detector: one
# race-enabled gcstress run per fault class with fixed seeds. -require-faults
# makes each run fail unless its configured fault actually fired, the STW
# oracle fails it on any lost object, and -timeout backstops a hang with a
# goroutine dump (exit 2). The last run injects a total tracing wedge and
# asserts the termination watchdog aborts it with exit 2 instead of hanging.
CHAOS_RUN = $(GO) run -race ./cmd/gcstress -duration 1s -packets 12 -packetcap 8 -roots 48 \
	-chaos-seed 7 -require-faults -timeout 120s -wedge-timeout 30s

chaos-smoke:
	$(CHAOS_RUN) -chaos "pool.exhaust=1/3" -metrics /tmp/gcchaos-smoke.jsonl
	$(CHAOS_RUN) -chaos "pool.cas=1/3,jitter=1/16"
	$(CHAOS_RUN) -chaos "pool.deferstall=2:100us" -allocbatch 48
	$(CHAOS_RUN) -chaos "card.cleanstall=1/4:50us" -shape pointer
	$(CHAOS_RUN) -chaos "live.tracerstall=4:200us"
	$(CHAOS_RUN) -chaos "live.fencedelay=3:300us" -shape pointer
	$(CHAOS_RUN) -chaos "live.allocfail=1/2"
	$(CHAOS_RUN) -chaos "pool.localspill=1/2"
	$(CHAOS_RUN) -chaos "pool.stealmiss=1/2"
	$(CHAOS_RUN) -chaos "pool.refillstall=1/4:50us"
	$(CHAOS_RUN) -chaos "pool.exhaust=1/3" -localcache -1 -freeshards -1 -cardbuf -1
	$(GO) run ./cmd/gcstats metrics -metrics /tmp/gcchaos-smoke.jsonl
	@rm -f /tmp/gcchaos-smoke.jsonl
	@echo "chaos-smoke: verifying the watchdog aborts a wedged run..."
	@$(GO) build -race -o /tmp/gcstress-chaos ./cmd/gcstress
	@/tmp/gcstress-chaos -duration 60s -chaos "live.wedge=on" -chaos-seed 7 \
		-wedge-timeout 2s -timeout 120s >/tmp/gcchaos-wedge.out 2>&1; \
	status=$$?; rm -f /tmp/gcstress-chaos; \
	if [ $$status -ne 2 ]; then \
		echo "chaos-smoke: wedge run exited $$status, want 2"; cat /tmp/gcchaos-wedge.out; rm -f /tmp/gcchaos-wedge.out; exit 1; \
	fi; \
	grep -q "WEDGED in" /tmp/gcchaos-wedge.out || { echo "chaos-smoke: no wedge diagnosis in output"; cat /tmp/gcchaos-wedge.out; rm -f /tmp/gcchaos-wedge.out; exit 1; }; \
	rm -f /tmp/gcchaos-wedge.out; echo "chaos-smoke: watchdog ok"

# Exercise the Section 3 pacer end to end under the race detector: a paced
# gcstress run where cycles start via the kickoff formula and mutators repay
# allocation tax by draining work packets. -require-paced fails the run
# unless at least one paced increment happened and no allocation failed;
# gcstats must then show a non-trivial K trajectory from the emitted metrics.
pacing-smoke:
	$(GO) run -race ./cmd/gcstress -pacing -objects 65536 -kickoff-headroom 8192 \
		-duration 2s -seed 5 -require-paced -metrics /tmp/gcpacing-smoke.jsonl
	$(GO) run ./cmd/gcstats metrics -metrics /tmp/gcpacing-smoke.jsonl | tee /tmp/gcpacing-smoke.out
	@grep -q "K: " /tmp/gcpacing-smoke.out || { echo "pacing-smoke: no K trajectory in gcstats output"; exit 1; }
	@grep -q "kickoffs: " /tmp/gcpacing-smoke.out || { echo "pacing-smoke: no kickoff count in gcstats output"; exit 1; }
	@rm -f /tmp/gcpacing-smoke.jsonl /tmp/gcpacing-smoke.out

# Exercise the per-tracer work-flow accounting end to end, in two legs.
# Leg 1 puts the accounting itself under the race detector: a paced gcstress
# run at 8 tracers (plus a background tracer and mutator-tax workers) with
# both sinks attached; gcstats -balance must report the skew and termination
# fields, and -check must accept the per-worker trace tracks (proper nesting,
# one worker per track). Leg 2 is the hoard A/B gate on the regular binary —
# the race detector's ~10x slowdown would drown the microsecond-scale
# termination timing — three fixed seeds per arm cat'ed into one file, then
# -check-hoard requires the pool.hoard runs to show strictly worse words-Gini
# AND strictly worse mean termination latency than the clean runs, while the
# engine's own STW oracle and quiescence identities still pass inside every
# run.
BALANCE_AB = -duration 1s -mutators 3 -tracers 4 -bg 0 -objects 8192 -roots 48 \
	-packets 32 -packetcap 8 -localcache -1 -timeout 120s

balance-smoke:
	$(GO) run -race ./cmd/gcstress -pacing -duration 1s -mutators 3 -tracers 8 -bg 1 \
		-objects 8192 -roots 48 -packets 32 -packetcap 8 -localcache -1 -seed 11 \
		-name paced8 -metrics /tmp/gcbalance-paced.jsonl -trace /tmp/gcbalance-paced.trace
	$(GO) run ./cmd/gcstats balance -metrics /tmp/gcbalance-paced.jsonl | tee /tmp/gcbalance-paced.out
	@grep -q "skew max/mean" /tmp/gcbalance-paced.out || { echo "balance-smoke: no skew field in -balance output"; exit 1; }
	@grep -q "termination:" /tmp/gcbalance-paced.out || { echo "balance-smoke: no termination field in -balance output"; exit 1; }
	$(GO) run ./cmd/gcstats check -trace /tmp/gcbalance-paced.trace
	@$(GO) build -o /tmp/gcstress-balance ./cmd/gcstress
	@rm -f /tmp/gcbalance-ab.jsonl
	@for s in 11 12 13; do \
		/tmp/gcstress-balance $(BALANCE_AB) -seed $$s -name clean$$s \
			-metrics /tmp/gcbalance-run.jsonl || exit 1; \
		cat /tmp/gcbalance-run.jsonl >> /tmp/gcbalance-ab.jsonl; \
		/tmp/gcstress-balance $(BALANCE_AB) -seed $$s -name hoard$$s \
			-chaos "pool.hoard=on:1ms" -chaos-seed 7 -require-faults \
			-metrics /tmp/gcbalance-run.jsonl || exit 1; \
		cat /tmp/gcbalance-run.jsonl >> /tmp/gcbalance-ab.jsonl; \
	done
	$(GO) run ./cmd/gcstats check-hoard -metrics /tmp/gcbalance-ab.jsonl
	@rm -f /tmp/gcbalance-paced.jsonl /tmp/gcbalance-paced.trace /tmp/gcbalance-paced.out \
		/tmp/gcbalance-run.jsonl /tmp/gcbalance-ab.jsonl /tmp/gcstress-balance

# Sweep tracer counts x local-tier on/off and reduce each cell to its balance
# quantities (skew, Gini, idle fraction, steal-hit rate, termination latency
# percentiles). One JSON object per cell lands in BENCH_balance.json.
balance-bench:
	@$(GO) build -o /tmp/gcstress-bb ./cmd/gcstress
	@$(GO) build -o /tmp/gcstats-bb ./cmd/gcstats
	@rm -f /tmp/gcbalance-bench.jsonl
	@for t in 4 8 16 32 64; do for tier in on off; do \
		lc=0; [ $$tier = off ] && lc=-1; \
		echo "balance-bench: tracers=$$t local-tier=$$tier"; \
		/tmp/gcstress-bb -duration 1s -mutators 3 -tracers $$t -bg 0 -objects 8192 \
			-roots 48 -packets 32 -packetcap 8 -localcache $$lc -seed 11 \
			-name "t=$$t/local=$$tier" -metrics /tmp/gcbalance-cell.jsonl >/dev/null || exit 1; \
		cat /tmp/gcbalance-cell.jsonl >> /tmp/gcbalance-bench.jsonl; \
	done; done
	/tmp/gcstats-bb balance -metrics /tmp/gcbalance-bench.jsonl -json > BENCH_balance.json
	@rm -f /tmp/gcbalance-cell.jsonl /tmp/gcbalance-bench.jsonl /tmp/gcstress-bb /tmp/gcstats-bb
	@echo "balance-bench: wrote BENCH_balance.json"

# Exercise the server workload end to end under the race detector: a short
# gcserve run (closed-loop clients with Zipfian skew and churn driving the
# sharded store on the live heap) that must complete real requests
# (-min-ops), keep the request accounting identity, and pass the per-cycle
# STW oracle; gcstats -latency must then reduce the metrics to throughput,
# the latency tail and the pause correlation.
serve-smoke:
	$(GO) run -race ./cmd/gcserve -clients 16 -duration 2s -objects 32768 \
		-churn 300 -min-ops 1000 -metrics /tmp/gcserve-smoke.jsonl
	$(GO) run ./cmd/gcstats latency -metrics /tmp/gcserve-smoke.jsonl | tee /tmp/gcserve-smoke.out
	@grep -q "throughput: " /tmp/gcserve-smoke.out || { echo "serve-smoke: no throughput in -latency output"; exit 1; }
	@grep -q "p999 " /tmp/gcserve-smoke.out || { echo "serve-smoke: no p999 in -latency output"; exit 1; }
	@grep -q "lost objects 0" /tmp/gcserve-smoke.out || { echo "serve-smoke: oracle reported lost objects"; exit 1; }
	@rm -f /tmp/gcserve-smoke.jsonl /tmp/gcserve-smoke.out

# Client-scaling sweep: client counts x local-tier on/off, each cell reduced
# to throughput, latency tail, MMU and the pause-latency correlation. One
# JSON object per cell lands in BENCH_serve.json.
serve-bench:
	@$(GO) build -o /tmp/gcserve-sb ./cmd/gcserve
	@$(GO) build -o /tmp/gcstats-sb ./cmd/gcstats
	@rm -f /tmp/gcserve-bench.jsonl
	@for c in 32 64 128 256 512; do for tier in on off; do \
		lc=0; [ $$tier = off ] && lc=-1; \
		echo "serve-bench: clients=$$c local-tier=$$tier"; \
		/tmp/gcserve-sb -clients $$c -duration 2s -objects 65536 -seed 11 \
			-localcache $$lc -name "serve/c=$$c/local=$$tier" \
			-metrics /tmp/gcserve-cell.jsonl >/dev/null || exit 1; \
		cat /tmp/gcserve-cell.jsonl >> /tmp/gcserve-bench.jsonl; \
	done; done
	/tmp/gcstats-sb latency -metrics /tmp/gcserve-bench.jsonl -json > BENCH_serve.json
	@rm -f /tmp/gcserve-cell.jsonl /tmp/gcserve-bench.jsonl /tmp/gcserve-sb /tmp/gcstats-sb
	@echo "serve-bench: wrote BENCH_serve.json"

# Exercise the graceful-degradation ladder end to end under the race
# detector: a gcserve run at 2x offered load (live.overload doubles every
# client's allocation rate) with all three rungs armed — allocation
# backpressure, hair-trigger emergency escalation (any pressured cycle that
# cannot free the whole-heap floor escalates), and admission control at a
# 10% headroom watermark. -require-degraded fails the run unless load was
# actually shed AND an emergency collection actually ran, -require-faults
# fails it unless the amplifier fired, the STW oracle fails it on any lost
# object, and the watchdog must never trip. gcstats -degradation must then
# reduce the metrics to the time-in-state ladder view.
OVERLOAD_LADDER = -ladder -bp-wait 2ms -emergency-min 16384 -emergency-after 1 \
	-admission -shed-watermark 0.10

overload-smoke:
	$(GO) run -race ./cmd/gcserve -clients 16 -duration 2s -objects 16384 \
		-churn 300 -min-ops 500 -seed 11 \
		-chaos "live.overload=on" -chaos-seed 7 -require-faults \
		$(OVERLOAD_LADDER) -require-degraded -timeout 120s \
		-metrics /tmp/gcoverload-smoke.jsonl
	$(GO) run ./cmd/gcstats degradation -metrics /tmp/gcoverload-smoke.jsonl | tee /tmp/gcoverload-smoke.out
	@grep -q "ladder on" /tmp/gcoverload-smoke.out || { echo "overload-smoke: -degradation does not show the ladder armed"; exit 1; }
	@grep -Eq "collections: [0-9]+ cycles, [1-9][0-9]* emergency" /tmp/gcoverload-smoke.out || { echo "overload-smoke: no emergency collections in -degradation output"; exit 1; }
	@grep -q "admission: shed " /tmp/gcoverload-smoke.out || { echo "overload-smoke: no sheds in -degradation output"; exit 1; }
	@grep -q "outcome: survived" /tmp/gcoverload-smoke.out || { echo "overload-smoke: run did not survive the overload"; exit 1; }
	@rm -f /tmp/gcoverload-smoke.jsonl /tmp/gcoverload-smoke.out

# Overload sweep: offered load 1x/1.5x/2x (the live.overload amplifier off,
# at 1/2, and always-on) crossed with ladder+admission on/off. Each cell
# reduces to the time-in-state fractions, stall percentiles, emergency and
# shed counts, and the survival verdict. The ladder-off overload cells are
# allowed to exit nonzero — unbounded allocation failure without the ladder
# is exactly what the sweep documents — but their metrics still land in the
# file. One JSON object per cell lands in BENCH_overload.json.
overload-bench:
	@$(GO) build -o /tmp/gcserve-ob ./cmd/gcserve
	@$(GO) build -o /tmp/gcstats-ob ./cmd/gcstats
	@rm -f /tmp/gcoverload-bench.jsonl
	@for load in 1x 1.5x 2x; do for ladder in on off; do \
		chaos=""; \
		[ $$load = 1.5x ] && chaos="-chaos live.overload=1/2 -chaos-seed 7"; \
		[ $$load = 2x ] && chaos="-chaos live.overload=on -chaos-seed 7"; \
		lflags=""; [ $$ladder = on ] && lflags="$(OVERLOAD_LADDER)"; \
		echo "overload-bench: load=$$load ladder=$$ladder"; \
		/tmp/gcserve-ob -clients 16 -duration 2s -objects 16384 -churn 300 -seed 11 \
			$$chaos $$lflags -name "overload/load=$$load/ladder=$$ladder" \
			-metrics /tmp/gcoverload-cell.jsonl >/dev/null 2>&1; \
		status=$$?; \
		if [ $$status -ne 0 ] && [ $$ladder = on ]; then \
			echo "overload-bench: ladder-on cell failed (exit $$status)"; exit 1; \
		fi; \
		cat /tmp/gcoverload-cell.jsonl >> /tmp/gcoverload-bench.jsonl; \
	done; done
	/tmp/gcstats-ob degradation -metrics /tmp/gcoverload-bench.jsonl -json > BENCH_overload.json
	@rm -f /tmp/gcoverload-cell.jsonl /tmp/gcoverload-bench.jsonl /tmp/gcserve-ob /tmp/gcstats-ob
	@echo "overload-bench: wrote BENCH_overload.json"

# Exercise the SLO pacing policy end to end under the race detector: gcserve
# paces on pacing.SLOPolicy (-slo-p99 selects it over the formula), the load
# generator streams each 20ms window's worst request latency into the
# controller, and -require-slo fails the run unless the policy observed
# windows AND the merged p99 met the target. The 50ms target is deliberately
# generous: the race detector's ~10x slowdown on one core inflates every
# latency, and the smoke gates the feedback loop's plumbing, not a tuned
# tail. The report greps then require the controller to have visibly run.
slo-smoke:
	$(GO) run -race ./cmd/gcserve -clients 16 -duration 2s -objects 32768 \
		-slo-p99 50ms -require-slo -min-ops 1000 -timeout 120s -seed 11 \
		> /tmp/gcslo-smoke.out
	@cat /tmp/gcslo-smoke.out
	@grep -q "pacing\[slo\]:" /tmp/gcslo-smoke.out || { echo "slo-smoke: report does not show the slo policy in charge"; exit 1; }
	@grep -Eq "slo: windows [1-9]" /tmp/gcslo-smoke.out || { echo "slo-smoke: controller observed no latency windows"; exit 1; }
	@rm -f /tmp/gcslo-smoke.out

# Exercise the cost-distillation harness end to end: one paced gcserve run
# plus its collection-disabled baseline (arena sized from the real run's
# measured allocations), with the distilled record appended as JSON and
# reduced by gcstats pareto. The run itself exits 1 if the baseline is
# contaminated (collected or exhausted), so the smoke gates both the
# harness and the arena sizing.
distill-smoke:
	$(GO) run ./cmd/gcserve -clients 16 -duration 1s -objects 32768 -seed 11 \
		-pacing -min-ops 1000 -timeout 120s \
		-distill -distill-json /tmp/gcdistill-smoke.jsonl
	$(GO) run ./cmd/gcstats pareto -distill /tmp/gcdistill-smoke.jsonl | tee /tmp/gcdistill-smoke.out
	@grep -q "FRONTIER" /tmp/gcdistill-smoke.out || { echo "distill-smoke: no frontier cell in pareto output"; exit 1; }
	@rm -f /tmp/gcdistill-smoke.jsonl /tmp/gcdistill-smoke.out

# Distilled-cost sweep (Cai & Blackburn): formula K0 in {4,8,16} against SLO
# targets {1ms,5ms} on the same server workload and seed. Every cell is a
# -distill pair — the measured run plus its collection-disabled ideal — and
# gcstats pareto reduces the cells to the Pareto curve of collector CPU
# overhead vs request p99, with the frontier-annotated records landing in
# BENCH_distill.json.
# The cell geometry (4 clients, 1+1 tracers) is deliberately lean: this
# container has one core, and an oversubscribed scheduler drowns the
# CPU-per-unit measurement in run-to-run noise. At this size the cells
# repeat within a couple of points.
DISTILL_CELL = -clients 4 -tracers 1 -bg 1 -duration 3s -objects 32768 -seed 11 -pacing

distill-bench:
	@$(GO) build -o /tmp/gcserve-db ./cmd/gcserve
	@$(GO) build -o /tmp/gcstats-db ./cmd/gcstats
	@rm -f /tmp/gcdistill-bench.jsonl
	@for rep in 1 2 3; do \
		for k in 4 8 16; do \
			echo "distill-bench: formula k0=$$k (rep $$rep)"; \
			/tmp/gcserve-db $(DISTILL_CELL) -k0 $$k -name "formula/k0=$$k" \
				-distill -distill-json /tmp/gcdistill-bench.jsonl >/dev/null || exit 1; \
		done; \
		for t in 1ms 5ms; do \
			echo "distill-bench: slo p99=$$t (rep $$rep)"; \
			/tmp/gcserve-db $(DISTILL_CELL) -slo-p99 $$t -name "slo/p99=$$t" \
				-distill -distill-json /tmp/gcdistill-bench.jsonl >/dev/null || exit 1; \
		done; \
	done
	/tmp/gcstats-db pareto -distill /tmp/gcdistill-bench.jsonl
	/tmp/gcstats-db pareto -distill /tmp/gcdistill-bench.jsonl -json > BENCH_distill.json
	@rm -f /tmp/gcdistill-bench.jsonl /tmp/gcserve-db /tmp/gcstats-db
	@echo "distill-bench: wrote BENCH_distill.json"

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

# Developer/CI entry points. `make ci` is the gate: vet, build, full test
# suite, race detector on the concurrency-stressed packages, then a
# quick-scale parallel run of the experiment suite as a runner smoke test.

GO ?= go

# Packages with real goroutine concurrency (lock-free packet pool, the
# weak-memory checker, the parallel experiment runner, the shared trace
# emitter, the live collector engine and its atomic bit/card layers) or
# that drive it.
RACE_PKGS = ./internal/runner ./internal/workpack ./internal/weakmem ./internal/core ./internal/gctrace ./internal/live ./internal/bitvec ./internal/cardtable

.PHONY: ci vet build test race smoke trace-smoke stress-smoke bench fmt

ci: vet build test race smoke trace-smoke stress-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short $(RACE_PKGS)

# Exercise the parallel harness end to end: a few experiments at quick
# scale with 4 workers, emitting the JSON telemetry to a throwaway file.
smoke:
	$(GO) run ./cmd/gcbench -exp fig1,javac,packets -scale quick -j 4 -json /tmp/gcbench-smoke.json
	@rm -f /tmp/gcbench-smoke.json

# Exercise the telemetry pipeline end to end: run one experiment with the
# metrics and trace sinks attached, then validate both files with gcstats
# (the trace check parses the file the way Perfetto would).
trace-smoke:
	$(GO) run ./cmd/gcbench -exp fig1 -scale quick -j 4 \
		-metrics /tmp/gcbench-smoke.jsonl -trace /tmp/gcbench-smoke-trace.json
	$(GO) run ./cmd/gcstats -metrics /tmp/gcbench-smoke.jsonl -run wh=8
	$(GO) run ./cmd/gcstats -trace /tmp/gcbench-smoke-trace.json -check
	@rm -f /tmp/gcbench-smoke.jsonl /tmp/gcbench-smoke-trace.json

# Exercise the live engine end to end under the race detector: a short
# gcstress run on the real shared heap with both telemetry sinks, validated
# by gcstats. The STW oracle inside the engine fails the run (exit 1) if any
# cycle loses a live object.
stress-smoke:
	$(GO) run -race ./cmd/gcstress -duration 2s -packets 10 -packetcap 8 -roots 64 \
		-metrics /tmp/gcstress-smoke.jsonl -trace /tmp/gcstress-smoke-trace.json
	$(GO) run ./cmd/gcstats -metrics /tmp/gcstress-smoke.jsonl
	$(GO) run ./cmd/gcstats -trace /tmp/gcstress-smoke-trace.json -check
	@rm -f /tmp/gcstress-smoke.jsonl /tmp/gcstress-smoke-trace.json

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l . && test -z "$$(gofmt -l .)"

module mcgc

go 1.22

module mcgc

go 1.23

package mcgc

// One benchmark per table and figure of the paper's evaluation (Section 6),
// plus the ablation sweep. Each runs the corresponding experiment at
// QuickScale and reports the headline quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates every artefact's shape in one
// command. cmd/gcbench prints the full tables at larger scales.

import (
	"testing"

	"mcgc/internal/experiments"
)

func BenchmarkFig1SPECjbbPauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig1(nil, experiments.QuickScale(), 4)
		last := rows[len(rows)-1]
		b.ReportMetric(last.STWAvgMs, "ms-stw-avg-pause")
		b.ReportMetric(last.CGCAvgMs, "ms-cgc-avg-pause")
		b.ReportMetric(last.CGCMarkAvgMs, "ms-cgc-avg-mark")
		if last.STWThroughput > 0 {
			b.ReportMetric(last.CGCThroughput/last.STWThroughput, "throughput-ratio")
		}
	}
}

func BenchmarkFig2PBOBPauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig2(nil, experiments.QuickScale(), 8, 16, 8)
		last := rows[len(rows)-1]
		b.ReportMetric(last.STWAvgMs, "ms-stw-avg-pause")
		b.ReportMetric(last.CGCAvgMs, "ms-cgc-avg-pause")
		b.ReportMetric(last.CGCSweepAvgMs/last.CGCAvgMs, "sweep-share-of-pause")
	}
}

func BenchmarkTable1TracingRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.TracingRates(nil, experiments.QuickScale(), []float64{1, 8}, 4)
		tr1, tr8 := rs[1], rs[2]
		b.ReportMetric(100*tr1.FloatingGarbage, "pct-floating-tr1")
		b.ReportMetric(100*tr8.FloatingGarbage, "pct-floating-tr8")
		b.ReportMetric(tr8.AvgPauseMs, "ms-tr8-avg-pause")
	}
}

func BenchmarkTable2Metering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.TracingRates(nil, experiments.QuickScale(), []float64{1, 8}, 4)
		tr1, tr8 := rs[1], rs[2]
		b.ReportMetric(tr1.CardsLeftPct, "pct-cards-left-tr1")
		b.ReportMetric(tr8.CardsLeftPct, "pct-cards-left-tr8")
		b.ReportMetric(tr8.FreeSpaceFailPct, "pct-freespace-fail-tr8")
	}
}

func BenchmarkTable3Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs := experiments.TracingRates(nil, experiments.QuickScale(), []float64{1, 8}, 4)
		tr1, tr8 := rs[1], rs[2]
		b.ReportMetric(100*tr1.Utilization, "pct-utilization-tr1")
		b.ReportMetric(100*tr8.Utilization, "pct-utilization-tr8")
	}
}

func BenchmarkTable4LoadBalancing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(nil, experiments.QuickScale(), []int{2, 4}, 256)
		last := rows[len(rows)-1]
		b.ReportMetric(last.AvgTracingFactor, "tracing-factor")
		b.ReportMetric(last.Fairness, "fairness-stddev")
		b.ReportMetric(last.AvgCostPerMB, "cas-per-mb-live")
	}
}

func BenchmarkJavacSmallApp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Javac(nil, experiments.QuickScale())
		b.ReportMetric(r.STWAvgMs, "ms-stw-avg-pause")
		b.ReportMetric(r.CGCAvgMs, "ms-cgc-avg-pause")
	}
}

func BenchmarkPacketMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PacketMem(nil, experiments.QuickScale())
		b.ReportMetric(r.LowerBoundPct, "pct-heap-lower")
		b.ReportMetric(r.UpperBoundPct, "pct-heap-upper")
	}
}

func BenchmarkFenceAccounting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fences(nil, experiments.QuickScale())
		if r.Acc.AllocFences > 0 {
			b.ReportMetric(float64(r.ObjectsAlloc)/float64(r.Acc.AllocFences), "objects-per-alloc-fence")
		}
		b.ReportMetric(float64(r.Acc.PacketFences), "packet-fences")
		b.ReportMetric(0, "write-barrier-fences")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(nil, experiments.QuickScale())
		for _, r := range rows {
			switch r.Name {
			case "baseline (combined, 1 card pass)":
				b.ReportMetric(r.AvgPauseMs, "ms-baseline-pause")
			case "lazy sweep":
				b.ReportMetric(r.AvgPauseMs, "ms-lazysweep-pause")
			}
		}
	}
}

func BenchmarkMMUCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.MMU(nil, experiments.QuickScale())
		last := len(r.WindowsMs) - 1
		b.ReportMetric(100*r.STW[last], "pct-stw-mmu-large-window")
		b.ReportMetric(100*r.CGC[last], "pct-cgc-mmu-large-window")
	}
}

func BenchmarkGenerational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Generational(nil, experiments.QuickScale())
		b.ReportMetric(r.GenMinorAvgMs, "ms-minor-avg-pause")
		b.ReportMetric(r.GenMajorAvgMs, "ms-major-avg-pause")
		b.ReportMetric(r.CGCAvgMs, "ms-cgc-avg-pause")
	}
}

// Command gcsim runs a single configuration of the simulated JVM with every
// knob exposed, and prints the collector's cycle log and summary. It is the
// exploratory companion to cmd/gcbench's fixed experiments.
//
// Examples:
//
//	gcsim -collector cgc -heap 64 -warehouses 8 -k0 8 -duration 5
//	gcsim -collector stw -heap 64 -warehouses 8
//	gcsim -collector cgc -workload javac -heap 25 -procs 1 -bg 1
//	gcsim -collector cgc -lazysweep -verbose
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mcgc/gcsim"
	"mcgc/internal/pacing"
	"mcgc/internal/vtime"
)

func main() {
	var (
		collector  = flag.String("collector", "cgc", "collector: cgc or stw")
		heapMB     = flag.Int64("heap", 64, "heap size in MB")
		procs      = flag.Int("procs", 4, "simulated processors")
		wl         = flag.String("workload", "jbb", "workload: jbb, pbob, javac")
		warehouses = flag.Int("warehouses", 8, "jbb/pbob warehouses")
		terminals  = flag.Int("terminals", 0, "terminals per warehouse (default 1; pbob default 25)")
		think      = flag.Int64("think", 0, "pbob think time in ms (pbob default 20)")
		packets    = flag.Int("packets", 1000, "work packets in the pool")
		packetCap  = flag.Int("packetcap", 0, "entries per packet (default 493)")
		bg         = flag.Int("bg", 4, "background tracing threads (0 disables)")
		cardPasses = flag.Int("cardpasses", 1, "concurrent card cleaning passes")
		lazySweep  = flag.Bool("lazysweep", false, "defer sweep out of the pause (Section 7)")
		compaction = flag.Bool("compact", false, "incremental compaction (Section 2.3)")
		noMutator  = flag.Bool("nomutatortracing", false, "background-only tracing ablation")
		duration   = flag.Int64("duration", 5, "virtual seconds to simulate")
		residency  = flag.Float64("residency", 0.6, "target heap residency at the configured warehouse count")
		seed       = flag.Int64("seed", 1, "workload seed")
		verbose    = flag.Bool("verbose", false, "print every collection cycle")
		trace      = flag.Bool("gctrace", false, "stream -verbose:gc style lines as the run progresses")
		heapstats  = flag.Bool("heapstats", false, "print fragmentation and object-size statistics at the end")
	)
	// The Section 3 pacing parameters use the shared vocabulary of
	// internal/pacing; the original -rate spelling still parses but
	// suggests -k0.
	pacingCfg := pacing.Default()
	pacingFlags := pacing.Bind(flag.CommandLine, &pacingCfg)
	pacingFlags.Alias("rate", "k0")
	flag.Parse()
	pacingFlags.PrintHints(os.Stderr, "gcsim")

	bgThreads := *bg
	if bgThreads == 0 {
		bgThreads = -1 // the facade uses negative to force zero
	}
	var traceW io.Writer
	if *trace {
		traceW = os.Stdout
	}
	vm := gcsim.New(gcsim.Options{
		GCTrace:               traceW,
		HeapBytes:             *heapMB << 20,
		Processors:            *procs,
		Collector:             gcsim.Collector(*collector),
		TracingRate:           pacingCfg.K0,
		Pacing:                &pacingCfg,
		WorkPackets:           *packets,
		PacketCapacity:        *packetCap,
		BackgroundThreads:     bgThreads,
		CardPasses:            *cardPasses,
		LazySweep:             *lazySweep,
		IncrementalCompaction: *compaction,
		NoMutatorTracing:      *noMutator,
	})

	var integrity func() error
	var txCount func() int64
	switch *wl {
	case "jbb", "pbob":
		jopts := gcsim.JBBOptions{
			Warehouses:     *warehouses,
			MaxWarehouses:  *warehouses,
			ResidencyAtMax: *residency,
			Seed:           *seed,
		}
		if *wl == "pbob" {
			jopts.TerminalsPerWarehouse = 25
			jopts.ThinkTime = 20 * vtime.Millisecond
		}
		if *terminals > 0 {
			jopts.TerminalsPerWarehouse = *terminals
		}
		if *think > 0 {
			jopts.ThinkTime = vtime.Duration(*think) * vtime.Millisecond
		}
		j := vm.NewJBB(jopts)
		integrity = j.CheckIntegrity
		txCount = j.Transactions
	case "javac":
		j := vm.NewJavac(0.7)
		integrity = func() error { return j.Err }
		txCount = func() int64 { return j.Units }
	default:
		fmt.Fprintf(os.Stderr, "gcsim: unknown workload %q\n", *wl)
		os.Exit(2)
	}

	vm.RunFor(vtime.Duration(*duration) * vtime.Second)

	if err := integrity(); err != nil {
		fmt.Fprintf(os.Stderr, "gcsim: INTEGRITY FAILURE: %v\n", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Println("cycle log:")
		for i, cs := range vm.Cycles() {
			fmt.Printf("  %3d %-13s pause=%-10v mark=%-10v sweep=%-10v tracedConc=%-8d cardsConc=%-5d cardsStw=%-5d liveAfter=%dKB\n",
				i, cs.Reason, cs.Pause, cs.MarkTime, cs.SweepTime,
				cs.BytesTracedConc>>10, cs.CardsCleanedConc, cs.CardsCleanedStw, cs.LiveAfter>>10)
		}
		fmt.Println()
	}
	fmt.Println(vm.Report())
	fmt.Printf("work completed: %d transactions/units in %v of virtual time\n", txCount(), vm.Now())
	if cgc := vm.CGCCollector(); cgc != nil {
		f := cgc.Fences()
		fmt.Printf("fences: alloc=%d packet=%d prescan=%d forced=%d (write barrier: 0); deferred=%d overflows=%d\n",
			f.AllocFences, f.PacketFences, f.MarkFences, f.ForcedFences, f.Deferred, f.Overflows)
		pool := cgc.Pool()
		fmt.Printf("packets: max in use %d/%d, max slots %d\n",
			pool.Stats.MaxInUse.Load(), pool.TotalPackets(), pool.Stats.MaxSlotsInUse.Load())
		if st := cgc.Compactor(); st != nil {
			fmt.Printf("compaction: evacuated %d objects (%d KB), pinned %d, fixed %d/%d slots, %d failed moves\n",
				st.EvacuatedObjects, st.EvacuatedBytes>>10, st.PinnedObjects,
				st.SlotsFixed, st.SlotsRemembered, st.FailedMoves)
		}
	}
	if *heapstats {
		fmt.Println("\nheap statistics:")
		fmt.Print(vm.Runtime().Heap.Fragmentation())
		hist, objects, live := vm.Runtime().Heap.ObjectSizeHistogram()
		fmt.Printf("objects: %d, live %d KB; size histogram:\n", objects, live>>10)
		for i, n := range hist {
			if n == 0 {
				continue
			}
			fmt.Printf("  [%6dB..%6dB): %d\n", 1<<i, 1<<(i+1), n)
		}
	}
}
